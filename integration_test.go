package repro

import (
	"testing"

	"repro/internal/core"
	"repro/internal/defense"
	"repro/internal/device"
	"repro/internal/workload"
)

// TestIntegrationQuickstartFlow exercises the README quickstart end to end
// at the paper's full parameters (51,200-entry tables, 4,000/12,000
// defender thresholds): an undefended device falls to the clipboard
// attack and soft-reboots; a defended device identifies and kills the
// attacker with a wide safety margin.
func TestIntegrationQuickstartFlow(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale integration test")
	}

	// Part 1: undefended.
	dev, err := device.Boot(device.Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	evil, err := dev.Apps().Install("com.evil.app")
	if err != nil {
		t.Fatal(err)
	}
	atk, err := workload.NewAttacker(dev, evil, "clipboard.addPrimaryClipChangedListener")
	if err != nil {
		t.Fatal(err)
	}
	for dev.SystemServer().Alive() {
		if err := atk.Step(); err != nil {
			break
		}
	}
	if dev.SoftReboots() != 1 {
		t.Fatalf("undefended device: SoftReboots = %d, want 1", dev.SoftReboots())
	}
	if atk.Calls() < 20000 || atk.Calls() > 30000 {
		t.Fatalf("attack took %d calls; expected ≈24,900 for a 51,200 table at 2 refs/call", atk.Calls())
	}

	// Part 2: defended, paper thresholds.
	pd, err := core.NewProtectedDevice(device.Config{Seed: 1}, defense.Config{})
	if err != nil {
		t.Fatal(err)
	}
	evil2, err := pd.Device.Apps().Install("com.evil.app")
	if err != nil {
		t.Fatal(err)
	}
	atk2, err := workload.NewAttacker(pd.Device, evil2, "clipboard.addPrimaryClipChangedListener")
	if err != nil {
		t.Fatal(err)
	}
	for evil2.Running() {
		if err := atk2.Step(); err != nil {
			break
		}
	}
	hist := pd.Defender.History()
	if len(hist) != 1 {
		t.Fatalf("defended device: %d detections, want 1", len(hist))
	}
	det := hist[0]
	if !det.Recovered || len(det.Killed) != 1 || det.Killed[0] != "com.evil.app" {
		t.Fatalf("detection = %+v", det)
	}
	if pd.Device.SoftReboots() != 0 {
		t.Fatal("defended device rebooted")
	}
	// The defender acted with most of the table still free.
	peak := pd.Device.SystemServer().VM().PeakGlobalRefCount()
	if peak > 16000 {
		t.Fatalf("peak JGR %d; the defender should have acted near 12,000+baseline", peak)
	}
	stats := pd.Device.Stats()
	if stats.SoftReboots != 0 || stats.Services != 104 {
		t.Fatalf("stats = %+v", stats)
	}
}
