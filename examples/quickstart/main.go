// Quickstart: boot a simulated Android 6.0.1 device, crash it with the
// clipboard JGRE attack from the paper's §II-A, then boot a second device
// with the JGRE Defender attached and watch the same attack get detected
// and stopped.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/defense"
	"repro/internal/device"
	"repro/internal/workload"
)

func main() {
	log.SetFlags(0)

	fmt.Println("== Part 1: undefended device ==")
	undefended()
	fmt.Println()
	fmt.Println("== Part 2: device with the JGRE Defender ==")
	defended()
}

// undefended shows the raw attack: a zero-permission app floods
// clipboard.addPrimaryClipChangedListener until system_server's JGR table
// overflows and the device soft-reboots.
func undefended() {
	dev, err := device.Boot(device.Config{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("booted: %d services, %d processes, system_server JGR baseline %d (cap %d)\n",
		len(dev.ServiceManager().ListServices()), dev.Kernel().RunningCount(),
		dev.SystemServer().VM().GlobalRefCount(), dev.SystemServer().VM().MaxGlobal())

	evil, err := dev.Apps().Install("com.evil.app") // note: zero permissions requested
	if err != nil {
		log.Fatal(err)
	}
	atk, err := workload.NewAttacker(dev, evil, "clipboard.addPrimaryClipChangedListener")
	if err != nil {
		log.Fatal(err)
	}
	ss := dev.SystemServer()
	for ss.Alive() {
		if err := atk.Step(); err != nil {
			break
		}
		if atk.Calls()%5000 == 0 {
			fmt.Printf("  t=%7.1fs  calls=%6d  system_server JGR=%d\n",
				dev.Clock().Now().Seconds(), atk.Calls(), ss.VM().GlobalRefCount())
		}
	}
	fmt.Printf("system_server aborted after %d calls at t=%.1fs: %s\n",
		atk.Calls(), dev.Clock().Now().Seconds(), ss.ExitReason())
	fmt.Printf("soft reboots: %d (the whole device went down)\n", dev.SoftReboots())
}

// defended shows the countermeasure: the same attack is detected by JGR
// correlation and the attacker is force-stopped before exhaustion.
func defended() {
	dev, err := device.Boot(device.Config{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	def, err := defense.New(dev, defense.Config{}) // paper defaults: alarm 4,000 / engage 12,000
	if err != nil {
		log.Fatal(err)
	}
	evil, _ := dev.Apps().Install("com.evil.app")
	atk, err := workload.NewAttacker(dev, evil, "clipboard.addPrimaryClipChangedListener")
	if err != nil {
		log.Fatal(err)
	}
	for evil.Running() {
		if err := atk.Step(); err != nil {
			break
		}
	}
	for _, det := range def.History() {
		fmt.Printf("defender engaged at t=%.1fs on %s: %d IPC records analysed in %v\n",
			det.EngagedAt.Seconds(), det.Victim, det.Records, det.AnalysisTime)
		for i, s := range det.Scores {
			if i == 3 {
				break
			}
			fmt.Printf("  rank %d: uid %d %-20s jgre_score=%d\n", i+1, s.Uid, s.Package, s.Score)
		}
		fmt.Printf("  killed: %v, victim recovered: %v\n", det.Killed, det.Recovered)
	}
	fmt.Printf("attacker made %d calls before being stopped; system_server alive: %v; soft reboots: %d\n",
		atk.Calls(), dev.SystemServer().Alive(), dev.SoftReboots())
	fmt.Println()
	dev.DumpState(os.Stdout)
}
