// Audit: run the paper's four-step JGRE analysis methodology (§III) over
// the synthesized AOSP-6.0.1 corpus — IPC method extraction, JGR entry
// extraction, risky-IPC detection and sifting, then dynamic verification
// on a booted device — and print a vulnerability report in the shape of
// the paper's §IV.
//
// Run with: go run ./examples/audit
package main

import (
	"fmt"
	"log"

	"repro/internal/analysis"
	"repro/internal/core"
)

func main() {
	log.SetFlags(0)

	fmt.Println("auditing the synthesized Android 6.0.1 codebase (this runs the full pipeline)...")
	res, err := core.Audit(core.AuditConfig{
		ThirdPartyApps: 1000, // the paper's Google Play scan size
		Dynamic:        true,
		VerifyCalls:    200,
		Seed:           1,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println()
	fmt.Print(core.FormatFunnel(res.Funnel()))

	fmt.Println()
	fmt.Print(analysis.FormatSiftReport(res.Sift))

	fmt.Println()
	fmt.Print(core.FormatFindings(res.Verify))

	fmt.Println()
	fmt.Print(core.FormatTableIV())
	fmt.Println()
	fmt.Print(core.FormatTableV())
}
