// Bypass: reproduce the paper's §IV-C — Android's shipped JGRE defenses
// are either client-side helper quotas (trivially skipped by talking to
// the raw binder, Code-Snippet 2) or per-process constraints (one of
// which, enqueueToast, trusts a caller-supplied package name,
// Code-Snippet 3).
//
// Run with: go run ./examples/bypass
package main

import (
	"fmt"
	"log"

	"repro/internal/catalog"
	"repro/internal/device"
	"repro/internal/services"
)

func main() {
	log.SetFlags(0)

	dev, err := device.Boot(device.Config{Seed: 5})
	if err != nil {
		log.Fatal(err)
	}

	wifiDemo(dev)
	fmt.Println()
	toastDemo(dev)
	fmt.Println()
	inputDemo(dev)
}

// wifiDemo replays Code-Snippets 1 and 2: WifiManager's MAX_ACTIVE_LOCKS
// guard holds for well-behaved apps, and evaporates for an app calling
// IWifiManager directly.
func wifiDemo(dev *device.Device) {
	row, _ := catalog.InterfaceByName("wifi.acquireWifiLock")
	app, err := dev.Apps().Install("com.wifi.app", "WAKE_LOCK")
	if err != nil {
		log.Fatal(err)
	}
	client, err := dev.NewClient(app, "wifi")
	if err != nil {
		log.Fatal(err)
	}
	svc := dev.Service("wifi")

	fmt.Println("-- wifi.acquireWifiLock through WifiManager (Code-Snippet 1) --")
	helper := services.NewHelper(client, row)
	var helperErr error
	for i := 0; i < 60; i++ {
		if helperErr = helper.Acquire(); helperErr != nil {
			break
		}
	}
	fmt.Printf("helper stopped at %d active locks: %v\n", helper.Active(), helperErr)
	fmt.Printf("service-side entries: %d (quota %d held)\n", svc.EntryCount(row.Method), row.GuardLimit)

	fmt.Println("-- same interface via the raw binder (Code-Snippet 2) --")
	for i := 0; i < 200; i++ {
		if err := client.Register(row.Method); err != nil {
			log.Fatalf("direct call %d failed: %v", i, err)
		}
	}
	fmt.Printf("service-side entries now: %d — the helper guard never ran\n", svc.EntryCount(row.Method))
	app.ForceStop("demo done")
}

// toastDemo replays Code-Snippet 3: the per-package toast quota exempts
// "system toasts", but system-ness is judged from a spoofable string.
func toastDemo(dev *device.Device) {
	row, _ := catalog.InterfaceByName("notification.enqueueToast")
	app, err := dev.Apps().Install("com.toast.app") // zero permissions
	if err != nil {
		log.Fatal(err)
	}
	client, err := dev.NewClient(app, "notification")
	if err != nil {
		log.Fatal(err)
	}
	svc := dev.Service("notification")

	fmt.Println("-- notification.enqueueToast with the honest package name --")
	var quotaErr error
	honest := 0
	for i := 0; i < 100; i++ {
		if quotaErr = client.Register(row.Method); quotaErr != nil {
			break
		}
		honest++
	}
	fmt.Printf("refused after %d toasts: %v\n", honest, quotaErr)

	fmt.Println(`-- now claiming pkg="android" (Code-Snippet 3) --`)
	for i := 0; i < 300; i++ {
		if err := client.RegisterAs(row.Method, "android", client.NewToken()); err != nil {
			log.Fatalf("spoofed toast %d refused: %v", i, err)
		}
	}
	fmt.Printf("service-side toast entries: %d — the quota never applied\n", svc.EntryCount(row.Method))
	app.ForceStop("demo done")
}

// inputDemo shows a guard that actually works: the input service keys its
// quota on the kernel-reported caller pid, which cannot be spoofed.
func inputDemo(dev *device.Device) {
	app, err := dev.Apps().Install("com.input.app")
	if err != nil {
		log.Fatal(err)
	}
	client, err := dev.NewClient(app, "input")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("-- input.registerInputDevicesChangedListener (correct per-process guard) --")
	ok, refused := 0, 0
	for i := 0; i < 20; i++ {
		if err := client.RegisterAs("registerInputDevicesChangedListener", "android", client.NewToken()); err != nil {
			refused++
		} else {
			ok++
		}
	}
	fmt.Printf("accepted %d, refused %d — spoofing does not help against pid-keyed quotas\n", ok, refused)
}
