// Overhead: quantify what the JGRE Defender costs a *benign* device —
// the flip side of the paper's Fig. 10. The same 20-app workload runs on
// a stock device and on a defended one; virtual time tells us how much
// slower the defended device finished, and the defender's history shows
// zero false engagements.
//
// Run with: go run ./examples/overhead
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"repro/internal/defense"
	"repro/internal/device"
	"repro/internal/workload"
)

const (
	apps     = 20
	ipcCalls = 4000
)

func main() {
	log.SetFlags(0)

	stock, calls := run(false)
	defended, _ := run(true)

	fmt.Printf("workload: %d benign apps, %d IPC calls each run\n\n", apps, calls)
	fmt.Printf("stock device:    %8.2fs of virtual time\n", stock.Seconds())
	fmt.Printf("defended device: %8.2fs of virtual time\n", defended.Seconds())
	overhead := 100 * float64(defended-stock) / float64(stock)
	fmt.Printf("defense overhead on a fully benign workload: %.1f%%\n", overhead)
	fmt.Println("\n(the paper's Fig. 10 measures the per-IPC cost of the same recording;")
	fmt.Println(" here it is amortized over realistic app behaviour, which is mostly idle)")
}

// run executes the benign workload and returns the virtual time consumed
// by the same number of scheduler steps.
func run(withDefense bool) (time.Duration, int) {
	dev, err := device.Boot(device.Config{Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	var def *defense.Defender
	if withDefense {
		if def, err = defense.New(dev, defense.Config{}); err != nil {
			log.Fatal(err)
		}
	}
	sched := workload.NewScheduler(dev)
	if _, err := workload.Population(dev, sched, apps, 7, 300*time.Millisecond); err != nil {
		log.Fatal(err)
	}
	start := dev.Clock().Now()
	steps := sched.Run(nil, ipcCalls)
	elapsed := dev.Clock().Now() - start

	if withDefense {
		if n := len(def.History()); n != 0 {
			fmt.Fprintf(os.Stderr, "unexpected: defender engaged %d times on benign load\n", n)
			os.Exit(1)
		}
	}
	return elapsed, steps
}
