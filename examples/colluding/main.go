// Colluding: reproduce the paper's multi-app attack scenario (§V-C,
// Fig. 9): four colluding malicious apps each flood a different vulnerable
// interface while an IPC-heavy-but-benign app hammers an innocent method;
// the JGRE Defender must rank and kill exactly the colluders.
//
// Run with: go run ./examples/colluding
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/defense"
	"repro/internal/device"
	"repro/internal/workload"
)

func main() {
	log.SetFlags(0)

	pd, err := core.NewProtectedDevice(device.Config{Seed: 42}, defense.Config{KeepRaw: true})
	if err != nil {
		log.Fatal(err)
	}
	dev, def := pd.Device, pd.Defender
	sched := workload.NewScheduler(dev)

	// Ten ordinary apps going about their business.
	if _, err := workload.Population(dev, sched, 10, 42, 2*time.Second); err != nil {
		log.Fatal(err)
	}

	// Four colluders on four different vulnerable interfaces.
	targets := []string{
		"audio.startWatchingRoutes",
		"clipboard.addPrimaryClipChangedListener",
		"midi.registerListener",
		"content.registerContentObserver",
	}
	for i, tgt := range targets {
		app, err := dev.Apps().Install(fmt.Sprintf("com.collude.app%d", i))
		if err != nil {
			log.Fatal(err)
		}
		atk, err := workload.NewAttacker(dev, app, tgt)
		if err != nil {
			log.Fatal(err)
		}
		sched.Add(atk)
		fmt.Printf("colluder %s (uid %d) attacks %s\n", app.Package(), app.Uid(), tgt)
	}

	// The busy bystander: benign IPC every 0–100 ms.
	chattyApp, err := dev.Apps().Install("com.chatty.app")
	if err != nil {
		log.Fatal(err)
	}
	chatty, err := workload.NewChattyApp(dev, chattyApp, 7)
	if err != nil {
		log.Fatal(err)
	}
	sched.Add(chatty)
	fmt.Printf("bystander %s (uid %d) fires benign IPC with 0-100 ms gaps\n\n", chattyApp.Package(), chattyApp.Uid())

	sched.Run(func() bool { return len(def.History()) > 0 }, 5_000_000)

	hist := def.History()
	if len(hist) == 0 {
		log.Fatal("defender never engaged")
	}
	det := hist[0]
	fmt.Printf("defender engaged at t=%.1fs; %d records analysed in %v\n",
		det.EngagedAt.Seconds(), det.Records, det.AnalysisTime)
	fmt.Println("ranking (suspicious IPC calls):")
	for i, s := range det.Scores {
		if i == 6 {
			break
		}
		fmt.Printf("  #%d uid %d %-22s %8d\n", i+1, s.Uid, s.Package, s.Score)
	}
	fmt.Printf("killed: %v\n", det.Killed)
	fmt.Printf("bystander survived: %v, chatty calls made: %d\n", chattyApp.Running(), chatty.Calls())
	fmt.Printf("system_server recovered: %v (JGR now %d), soft reboots: %d\n",
		det.Recovered, dev.SystemServer().VM().GlobalRefCount(), dev.SoftReboots())

	fmt.Println("\ndevice journal (last 8 events):")
	dev.Journal().Dump(os.Stdout, 8)
}
