#!/bin/bash
# Regenerates every full-scale experiment output in this directory.
set -x
go run ./cmd/jgre-analyze > results/analyze.txt 2>&1
go run ./cmd/jgre-baseline -scale full > results/fig4.txt 2>&1
go run ./cmd/jgre-attack -fig 3 -scale full > results/fig3.txt 2>&1
go run ./cmd/jgre-attack -fig 5 -scale full > results/fig5.txt 2>&1
go run ./cmd/jgre-attack -fig 6 -scale full > results/fig6.txt 2>&1
go run ./cmd/jgre-attack -obs2 -scale full > results/obs2.txt 2>&1
go run ./cmd/jgre-attack -bypass > results/bypass.txt 2>&1
go run ./cmd/jgre-defend -fig 10 -scale full > results/fig10.txt 2>&1
go run ./cmd/jgre-defend -fig 9 -scale full > results/fig9.txt 2>&1
go run ./cmd/jgre-defend -delays -scale full > results/delays.txt 2>&1
go run ./cmd/jgre-defend -fig 8 -scale full > results/fig8.txt 2>&1
go run ./cmd/jgre-defend -multipath -scale full > results/multipath.txt 2>&1
go run ./cmd/jgre-defend -thresholds > results/thresholds.txt 2>&1
go run ./cmd/jgre-defend -limitations -scale full > results/limitations.txt 2>&1
go run ./cmd/jgre-defend -patch > results/patch.txt 2>&1
go run ./cmd/jgre-report -o results/report.md
echo ALL DONE
