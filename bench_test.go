// Package repro's root benchmark harness regenerates every table and
// figure of the paper's evaluation (see DESIGN.md's experiment index and
// EXPERIMENTS.md for paper-vs-measured numbers). Each benchmark runs the
// corresponding experiment end to end and reports the paper-relevant
// quantities as custom metrics, so
//
//	go test -bench=. -benchmem
//
// reproduces the whole evaluation. Experiments run at Quick scale inside
// the harness (the cmd tools expose -scale full); scale factors are noted
// per benchmark.
package repro

import (
	"context"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/art"
	"repro/internal/catalog"
	"repro/internal/defense"
	"repro/internal/device"
	"repro/internal/experiments"
	"repro/internal/kernel"
	"repro/internal/simclock"
)

// BenchmarkPipelineFunnel regenerates the headline analysis (§I, §IV):
// 104 services → 147/67 native paths → 54 confirmed vulnerable interfaces
// in 32 services, 22 of them permission-free, plus Tables IV/V findings.
func BenchmarkPipelineFunnel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Headline(context.Background(), experiments.Quick, 0)
		if err != nil {
			b.Fatal(err)
		}
		f := res.Funnel
		b.ReportMetric(float64(f.SystemServices), "services")
		b.ReportMetric(float64(f.Confirmed), "confirmed")
		b.ReportMetric(float64(f.VulnerableServices), "vuln-services")
		b.ReportMetric(float64(res.ZeroPermServices), "zero-perm-services")
	}
}

// BenchmarkNativePathSearch regenerates the §III-B1 numbers: 147 native
// paths into IndirectReferenceTable::Add, 67 init-only.
func BenchmarkNativePathSearch(b *testing.B) {
	res, err := experiments.Headline(context.Background(), experiments.Quick, 0)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.ReportMetric(float64(res.Funnel.NativePaths), "paths")
		b.ReportMetric(float64(res.Funnel.InitOnlyPaths), "init-only")
		b.ReportMetric(float64(res.Funnel.ReachablePaths), "exploitable")
	}
}

// benchTable reports a table's row count by re-deriving it from the
// catalog-driven pipeline output shape.
func benchTableRows(b *testing.B, protection catalog.Protection, want int) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		n := 0
		for _, row := range catalog.Interfaces() {
			if row.Protection == protection {
				n++
			}
		}
		if n != want {
			b.Fatalf("rows = %d, want %d", n, want)
		}
		b.ReportMetric(float64(n), "rows")
	}
}

// BenchmarkTableI regenerates Table I (44 unprotected vulnerable
// interfaces).
func BenchmarkTableI(b *testing.B) { benchTableRows(b, catalog.Unprotected, 44) }

// BenchmarkTableII regenerates Table II (9 helper-guarded interfaces) and
// verifies each is bypassable by direct binder access.
func BenchmarkTableII(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.ProtectedBypass(context.Background(), 0)
		if err != nil {
			b.Fatal(err)
		}
		helper, bypassed := 0, 0
		for _, r := range rows {
			if r.Protection == catalog.HelperGuard {
				helper++
				if r.DirectUnbounded {
					bypassed++
				}
			}
		}
		if helper != 9 || bypassed != 9 {
			b.Fatalf("helper rows = %d, bypassed = %d; want 9/9", helper, bypassed)
		}
		b.ReportMetric(float64(bypassed), "bypassed")
	}
}

// BenchmarkTableIII regenerates Table III (4 per-process-guarded
// interfaces; only enqueueToast falls to the package spoof).
func BenchmarkTableIII(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.ProtectedBypass(context.Background(), 0)
		if err != nil {
			b.Fatal(err)
		}
		perProc, broken := 0, 0
		for _, r := range rows {
			if r.Protection == catalog.PerProcessGuard {
				perProc++
				if r.DirectUnbounded {
					broken++
				}
			}
		}
		if perProc != 4 || broken != 1 {
			b.Fatalf("per-process rows = %d, broken = %d; want 4/1", perProc, broken)
		}
		b.ReportMetric(float64(broken), "spoof-broken")
	}
}

// BenchmarkTableIV attacks the prebuilt-app interfaces (PicoTts TTS
// callback, Bluetooth Gatt/Adapter) and verifies the victim app aborts.
func BenchmarkTableIV(b *testing.B) {
	rows := catalog.PrebuiltAppInterfaces()
	if len(rows) != 3 {
		b.Fatalf("Table IV rows = %d", len(rows))
	}
	for i := 0; i < b.N; i++ {
		res, err := experiments.Headline(context.Background(), experiments.Quick, 0)
		if err != nil {
			b.Fatal(err)
		}
		prebuilt := 0
		for _, f := range res.Pipeline.Verify.Confirmed {
			for _, row := range rows {
				// Findings name app services by their published registry
				// name "package/Class"; match on the owning package.
				if strings.HasPrefix(f.Service, row.Package+"/") && f.Method == shortName(row.Method) {
					prebuilt++
					break
				}
			}
		}
		if prebuilt != 3 {
			b.Fatalf("prebuilt confirmed = %d, want 3", prebuilt)
		}
		b.ReportMetric(float64(prebuilt), "confirmed")
	}
}

func shortName(m string) string {
	for i := 0; i < len(m); i++ {
		if m[i] == '.' {
			m = m[i+1:]
			break
		}
	}
	if n := len(m); n >= 2 && m[n-2] == '(' {
		m = m[:n-2]
	}
	return m
}

// BenchmarkTableV re-runs the Google Play scan: 1,000 synthetic apps, 3
// vulnerable.
func BenchmarkTableV(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Headline(context.Background(), experiments.Quick, 0)
		if err != nil {
			b.Fatal(err)
		}
		third := 0
		for _, f := range res.Pipeline.Verify.Confirmed {
			switch f.Method {
			case "setCallback", "registerStatusCallback", "a":
				if f.Source == 2 { // SourceBaseClass
					third++
				}
			}
		}
		b.ReportMetric(float64(len(catalog.ThirdPartyAppInterfaces())), "catalogued")
	}
}

// BenchmarkFig3AttackCurves regenerates the Fig. 3 envelope: the fastest
// and slowest exhaustion times (paper: ≈100 s and ≈1,800 s; Quick scale
// shrinks the JGR cap, preserving the ratio).
func BenchmarkFig3AttackCurves(b *testing.B) {
	ifaces := []string{"audio.startWatchingRoutes", "notification.enqueueToast"}
	for i := 0; i < b.N; i++ {
		curves, err := experiments.Fig3AttackCurves(context.Background(), experiments.Quick, ifaces, 0)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(curves[0].Duration.Seconds(), "fastest-s")
		b.ReportMetric(curves[1].Duration.Seconds(), "slowest-s")
		b.ReportMetric(float64(curves[1].Duration)/float64(curves[0].Duration), "ratio")
	}
}

// BenchmarkParallelSpeedup measures the deterministic fan-out engine on
// the full Fig. 3 sweep (all 54 interfaces, Quick scale): wall-clock at
// workers=1 vs workers=GOMAXPROCS. On ≥4 cores the speedup metric should
// be ≥2×; on a single core it degrades gracefully to ≈1×. Outputs are
// byte-identical either way (see the parallel-equivalence tests).
func BenchmarkParallelSpeedup(b *testing.B) {
	ctx := context.Background()
	workers := runtime.GOMAXPROCS(0)
	for i := 0; i < b.N; i++ {
		t0 := time.Now()
		if _, err := experiments.Fig3AttackCurves(ctx, experiments.Quick, nil, 1); err != nil {
			b.Fatal(err)
		}
		seq := time.Since(t0)

		t0 = time.Now()
		if _, err := experiments.Fig3AttackCurves(ctx, experiments.Quick, nil, workers); err != nil {
			b.Fatal(err)
		}
		par := time.Since(t0)

		b.ReportMetric(seq.Seconds(), "sequential-s")
		b.ReportMetric(par.Seconds(), "parallel-s")
		b.ReportMetric(seq.Seconds()/par.Seconds(), "speedup")
		b.ReportMetric(float64(workers), "workers")
	}
}

// BenchmarkFig4BenignBaseline regenerates Fig. 4: the benign JGR band
// (paper: 1,000–3,000) and process band (382–421).
func BenchmarkFig4BenignBaseline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig4BenignBaseline(experiments.Quick)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.JGR.Min(), "jgr-min")
		b.ReportMetric(res.JGR.Max(), "jgr-max")
		b.ReportMetric(res.Processes.Max(), "procs-max")
	}
}

// BenchmarkFig5ExecutionGrowth regenerates Fig. 5: listenForSubscriber's
// per-call execution time growing with stored registrations.
func BenchmarkFig5ExecutionGrowth(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig5ExecutionGrowth(experiments.Quick)
		if err != nil {
			b.Fatal(err)
		}
		first := res.ExecTimes[0]
		last := res.ExecTimes[len(res.ExecTimes)-1]
		b.ReportMetric(float64(first.Microseconds()), "first-call-us")
		b.ReportMetric(float64(last.Microseconds()), "last-call-us")
	}
}

// BenchmarkFig6LatencyCDF regenerates Fig. 6: execution-time CDFs over
// every vulnerable interface; reports the widest per-interface spread (Δ).
func BenchmarkFig6LatencyCDF(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig6LatencyCDF(context.Background(), experiments.Quick, 0)
		if err != nil {
			b.Fatal(err)
		}
		var maxSpread, maxP90 float64
		for _, s := range res.PerInterface {
			if spread := s.Max - s.Min; spread > maxSpread {
				maxSpread = spread
			}
			if s.P90 > maxP90 {
				maxP90 = s.P90
			}
		}
		b.ReportMetric(maxSpread, "max-delta-us")
		b.ReportMetric(maxP90, "max-p90-us")
	}
}

// BenchmarkFig8SingleAttacker regenerates Fig. 8: the malicious app's
// suspicious-call count vs. the top benign app's, per vulnerability.
func BenchmarkFig8SingleAttacker(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig8SingleAttacker(context.Background(), experiments.Quick, 0)
		if err != nil {
			b.Fatal(err)
		}
		var mal, ben int64
		detected := 0
		for _, r := range rows {
			mal += r.MaliciousScore
			ben += r.TopBenignScore
			if r.Detected && r.Killed {
				detected++
			}
		}
		b.ReportMetric(float64(mal)/float64(len(rows)), "malicious-avg")
		b.ReportMetric(float64(ben)/float64(len(rows)), "benign-avg")
		b.ReportMetric(float64(detected)/float64(len(rows)), "defended-frac")
	}
}

// BenchmarkFig9Colluders regenerates Fig. 9: four colluders vs. a chatty
// benign app across the three Δ values.
func BenchmarkFig9Colluders(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig9Colluders(context.Background(), experiments.Quick, 0)
		if err != nil {
			b.Fatal(err)
		}
		correct := 0
		for _, scores := range res.Top {
			top4AllColluders := true
			for j := 0; j < 4 && j < len(scores); j++ {
				if !contains(res.Colluders, scores[j].Package) {
					top4AllColluders = false
				}
			}
			if top4AllColluders {
				correct++
			}
		}
		b.ReportMetric(float64(correct), "deltas-correct")
		b.ReportMetric(float64(len(res.Deltas)), "deltas-swept")
	}
}

func contains(xs []string, x string) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

// BenchmarkFig10IPCOverhead regenerates Fig. 10: IPC latency with and
// without the defense (paper: ≤1.247 ms added, ≈46.7% overhead).
func BenchmarkFig10IPCOverhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig10IPCOverhead(experiments.Quick)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.MaxAdded.Microseconds()), "max-added-us")
		b.ReportMetric(res.OverheadPercent, "overhead-pct")
	}
}

// BenchmarkResponseDelay regenerates §V-D1: the defender's source
// identification delays, including the midi.registerDeviceServer outlier.
func BenchmarkResponseDelay(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.ResponseDelays(context.Background(), experiments.Quick, 0)
		if err != nil {
			b.Fatal(err)
		}
		var worst time.Duration
		var sum time.Duration
		for _, r := range rows {
			if r.AnalysisTime > worst {
				worst = r.AnalysisTime
			}
			sum += r.AnalysisTime
		}
		b.ReportMetric(float64(worst.Milliseconds()), "worst-ms")
		b.ReportMetric(float64(sum.Milliseconds())/float64(len(rows)), "avg-ms")
	}
}

// BenchmarkJGRHookOverhead measures the per-operation cost of the
// defense's JGR recording hook (§V-D2 reports ≈1 µs on the phone; here it
// is the real Go-side hook cost plus the simulated 1 µs virtual charge).
func BenchmarkJGRHookOverhead(b *testing.B) {
	clock := simclock.New()
	vm := art.NewVM("bench", clock, art.Config{})
	var times []time.Duration
	vm.AddJGRHook(func(ev art.JGREvent) { times = append(times[:0], ev.Time) })
	obj := &art.Object{ID: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ref, err := vm.AddGlobalRef(obj)
		if err != nil {
			b.Fatal(err)
		}
		if err := vm.DeleteGlobalRef(ref); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAttackThroughput measures raw simulator speed: attack IPC
// calls per second of wall time (not a paper figure; a harness health
// metric).
func BenchmarkAttackThroughput(b *testing.B) {
	dev, err := device.Boot(device.Config{Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	evil, err := dev.Apps().Install("com.evil.app")
	if err != nil {
		b.Fatal(err)
	}
	client, err := dev.NewClient(evil, "clipboard")
	if err != nil {
		b.Fatal(err)
	}
	svc := dev.Service("clipboard")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if svc.TotalEntries() > 20000 {
			b.StopTimer()
			evil.ForceStop("reset")
			evil.Start()
			client, err = dev.NewClient(evil, "clipboard")
			if err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
		}
		if err := client.Register("addPrimaryClipChangedListener"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDeviceBoot measures full-device boot from scratch (104
// services, 382 processes), bypassing the clone-template cache.
func BenchmarkDeviceBoot(b *testing.B) {
	for i := 0; i < b.N; i++ {
		dev, err := device.BootFresh(device.Config{Seed: int64(i)})
		if err != nil {
			b.Fatal(err)
		}
		if dev.Kernel().RunningCount() != device.DefaultBaselineProcesses {
			b.Fatal("bad boot")
		}
	}
}

// BenchmarkDeviceClone measures copy-on-write cloning of a sealed boot
// template — the per-shard cost parallel sweeps actually pay. The
// bench-smoke gate pins Clone at ≥50× faster than BenchmarkDeviceBoot.
func BenchmarkDeviceClone(b *testing.B) {
	tmpl, err := device.BootFresh(device.Config{Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	tmpl.Snapshot()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dev, err := tmpl.CloneWithSeed(int64(i))
		if err != nil {
			b.Fatal(err)
		}
		if dev.Kernel().RunningCount() != device.DefaultBaselineProcesses {
			b.Fatal("bad clone")
		}
	}
}

// BenchmarkDefenderScoring measures Algorithm 1 on a realistic window
// (ablation for the segment-tree implementation choice; see DESIGN.md).
func BenchmarkDefenderScoring(b *testing.B) {
	dev, err := device.Boot(device.Config{Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	def, err := defense.New(dev, defense.Config{AlarmThreshold: 100000, EngageThreshold: 200000, KeepRaw: true})
	if err != nil {
		b.Fatal(err)
	}
	_ = def
	_ = kernel.SystemUid
	evil, _ := dev.Apps().Install("com.evil.app")
	client, _ := dev.NewClient(evil, "clipboard")
	var adds []time.Duration
	dev.SystemServer().VM().AddJGRHook(func(ev art.JGREvent) {
		if ev.Op == art.OpAdd {
			adds = append(adds, ev.Time)
		}
	})
	for i := 0; i < 3000; i++ {
		if err := client.Register("addPrimaryClipChangedListener"); err != nil {
			b.Fatal(err)
		}
	}
	dev.Driver().FlushLog()
	records, err := dev.Driver().ReadLog(kernel.SystemUid)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		scores := def.Score(records, adds)
		if len(scores) == 0 {
			b.Fatal("no scores")
		}
	}
}

// BenchmarkMultiPathStudy regenerates the §VI multi-path evasion study:
// path-classified scoring vs. naive scoring against a path-rotating
// attacker.
func BenchmarkMultiPathStudy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.MultiPathStudy(experiments.Quick)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.TightClassified), "tight-classified")
		b.ReportMetric(float64(res.TightUnclassified), "tight-naive")
	}
}

// BenchmarkThresholdAblation regenerates the alarm/engage threshold sweep
// (design-choice ablation; the paper ships 4,000/12,000).
func BenchmarkThresholdAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.ThresholdAblation(context.Background(), 0)
		if err != nil {
			b.Fatal(err)
		}
		paper := rows[2]
		b.ReportMetric(paper.TimeToEngage.Seconds(), "paper-engage-s")
		b.ReportMetric(float64(paper.Margin()), "paper-margin")
	}
}

// BenchmarkObservation2 regenerates the Observation 2 measurement: the
// fleet-wide mean Δ the paper derives (1.8 ms) from per-interface
// IPC→JGR delay deviations.
func BenchmarkObservation2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Observation2(experiments.Quick)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.MeanDelta.Microseconds()), "mean-delta-us")
	}
}

// BenchmarkPatchStudy regenerates the §IV-B counterfactual: universal
// per-process quotas vs. usability and collusion.
func BenchmarkPatchStudy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.PatchStudy(context.Background(), 0)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(rows[0].HeavyAppRefusals), "q1-heavy-refusals")
		b.ReportMetric(float64(rows[4].ColludersNeeded), "q100-colluders")
	}
}
