# Build / test / CI entry points. `make ci` is the full gate: vet, the
# tier-1 build+test flow, the race detector over the concurrent
# experiment engine and everything that runs on it, and a short fuzz
# smoke over the IPC-record parser.

GO ?= go

.PHONY: build test vet race fuzz-smoke bench bench-json bench-fleet-json bench-profile bench-smoke cover ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# The parallel engine and its consumers must stay race-clean: the fan-out
# pool, the converted experiment sweeps, the pipeline's parallel
# dynamic-verification stage, the scenario registry that drives them, the
# fault-injected defense/binder/faults telemetry path, the event
# queue and the device snapshot/clone layer every concurrent shard now
# boots through, plus the tracing-enabled paths (binder span emission,
# art JGR hooks, defender causal spans, the recorder/exporter) and the
# traced-fleet capture that runs them across worker goroutines.
race:
	$(GO) test -race ./internal/parallel ./internal/experiments ./internal/analysis ./internal/scenario ./internal/defense ./internal/binder ./internal/faults ./internal/event ./internal/device ./internal/chaos ./internal/fleet ./internal/art ./internal/trace ./cmd/jgre-trace

# Coverage-guided fuzzing smoke: the kernel log-record parser (the one
# spot where the defender consumes a wire format), the differential pin
# of the streaming correlator against the retained segment-tree
# reference implementation, the event queue's ordering invariant
# (virtual time, then priority, then sequence) under arbitrary
# push/pop interleavings, the defender checkpoint codec (decode
# never panics on arbitrary bytes; any accepted input re-encodes
# byte-identically), and the Chrome trace-event exporter (never panics
# on arbitrary span records, always emits schema-valid JSON).
fuzz-smoke:
	$(GO) test -fuzz=FuzzParseIPCRecord -fuzztime=10s -run '^$$' ./internal/binder
	$(GO) test -fuzz=FuzzCorrelatorDifferential -fuzztime=5s -run '^$$' ./internal/defense
	$(GO) test -fuzz=FuzzEventQueue -fuzztime=5s -run '^$$' ./internal/event
	$(GO) test -fuzz=FuzzCheckpointRoundTrip -fuzztime=5s -run '^$$' ./internal/defense
	$(GO) test -fuzz=FuzzTraceExport -fuzztime=5s -run '^$$' ./internal/trace

# Regenerate the sequential-vs-parallel sweep timings (BENCH_parallel.json).
bench-json:
	$(GO) run ./cmd/jgre-bench -bench-json BENCH_parallel.json

# Regenerate the fleet slot-mode throughput comparison (BENCH_fleet.json):
# devices/sec for recycled vs cloned-per-device vs freshly-booted slots,
# with allocation accounting.
bench-fleet-json:
	$(GO) run ./cmd/jgre-bench -fleet-json BENCH_fleet.json

bench:
	$(GO) test -bench=. -benchmem -run '^$$'

# Profile the sweep engine's hot path. Inspect with
# `go tool pprof cpu.pprof` / `go tool pprof mem.pprof`.
bench-profile:
	$(GO) run ./cmd/jgre-bench -cpuprofile cpu.pprof -memprofile mem.pprof -bench-json -

# One iteration of every micro-benchmark: catches benchmarks that broke
# (compile errors, fixture failures, b.Fatal) without paying full timing
# runs in CI. The grep asserts the telemetry-overhead comparison pair
# actually ran — it is the guard on the instrumented hot path — and the
# awk gate holds the streaming correlator at >=10x over the PR-5
# incremental baseline (68,356,328 ns/op, BENCH_hotpath.json): a
# regression past 6,835,632 ns/op fails CI.
bench-smoke:
	$(GO) test -bench=. -benchtime=1x -run '^$$' ./internal/binder ./internal/defense ./internal/telemetry \
		| tee /tmp/jgre-bench-smoke.out
	@grep -q 'BenchmarkTelemetryOverhead/instrumented' /tmp/jgre-bench-smoke.out \
		|| { echo 'bench-smoke: telemetry overhead benchmark did not run'; exit 1; }
	@awk '/^BenchmarkCorrelate\/incremental/ { found = 1; if ($$3 + 0 > 6835632) { \
			printf "bench-smoke: BenchmarkCorrelate/incremental %s ns/op exceeds the 10x target (6835632 ns/op)\n", $$3; exit 1 } } \
		END { if (!found) { print "bench-smoke: BenchmarkCorrelate/incremental did not run"; exit 1 } }' \
		/tmp/jgre-bench-smoke.out
	$(GO) test -bench='^BenchmarkDevice(Boot|Clone)$$' -benchtime=400x -run '^$$' . \
		| tee /tmp/jgre-clone-smoke.out
	@awk '/^BenchmarkDeviceBoot/ { boot = $$3 + 0 } /^BenchmarkDeviceClone/ { clone = $$3 + 0 } \
		END { if (!boot || !clone) { print "bench-smoke: device boot/clone benchmarks did not run"; exit 1 } \
			ratio = boot / clone; \
			if (ratio < 50) { printf "bench-smoke: clone is only %.1fx faster than boot (want >= 50x)\n", ratio; exit 1 } \
			printf "bench-smoke: device clone %.1fx faster than boot\n", ratio }' \
		/tmp/jgre-clone-smoke.out
	$(GO) test -bench='^BenchmarkTransactLogged$$' -benchtime=2000x -run '^$$' ./internal/binder \
		| tee /tmp/jgre-hotpath-smoke.out
	@awk '/^BenchmarkTransactLogged\/unbounded/ { ub = $$3 + 0 } /^BenchmarkTransactLogged\/ring-flood/ { rf = $$3 + 0 } \
		END { if (!ub || !rf) { print "bench-smoke: hot-path benchmarks did not run"; exit 1 } \
			if (ub > 2214) { printf "bench-smoke: tracing-off unbounded hot path %d ns/op exceeds 2214 (5%% over the 2109 BENCH_hotpath.json baseline)\n", ub; exit 1 } \
			if (rf > 2640) { printf "bench-smoke: tracing-off ring-flood hot path %d ns/op exceeds 2640 (5%% over the 2514 BENCH_hotpath.json baseline)\n", rf; exit 1 } \
			printf "bench-smoke: tracing-off hot path %d / %d ns/op (gates 2214 / 2640)\n", ub, rf }' \
		/tmp/jgre-hotpath-smoke.out
	$(GO) test -bench='^BenchmarkFleet$$' -benchtime=2x -run '^$$' ./internal/fleet \
		| tee /tmp/jgre-fleet-smoke.out
	@awk '/^BenchmarkFleet\/recycle/ { for (i = 1; i <= NF; i++) if ($$i == "devices/sec") rec = $$(i-1) + 0 } \
		/^BenchmarkFleet\/clone/ { for (i = 1; i <= NF; i++) if ($$i == "devices/sec") cl = $$(i-1) + 0 } \
		END { if (!rec || !cl) { print "bench-smoke: fleet slot-mode benchmarks did not run"; exit 1 } \
			ratio = rec / cl; \
			if (ratio < 2) { printf "bench-smoke: fleet recycle only %.2fx clone-per-device throughput (want >= 2x)\n", ratio; exit 1 } \
			printf "bench-smoke: fleet recycle %.1fx clone-per-device throughput\n", ratio }' \
		/tmp/jgre-fleet-smoke.out

# Coverage floors. The telemetry registry's zero-alloc counters and
# Prometheus renderer are pure library code every layer leans on, so
# they stay at >= 85% statement coverage. The chaos engine and
# supervisor gate every recovery claim the chaos-* scenarios make, so
# their fault-schedule and backoff paths stay at >= 75%; likewise the
# fleet engine's chunking/merge/slot-mode paths back every fleet-*
# rollup, so internal/fleet holds >= 75%. The trace package (recorder
# ring, ID minting, Chrome exporter) backs every byte-identity claim the
# tracing layer makes, so it holds >= 80%.
cover:
	$(GO) test -cover -coverprofile=/tmp/jgre-telemetry.cover ./internal/telemetry
	@total=$$($(GO) tool cover -func=/tmp/jgre-telemetry.cover | awk '/^total:/ {sub(/%/, "", $$3); print $$3}'); \
		echo "internal/telemetry coverage: $$total%"; \
		awk -v t="$$total" 'BEGIN { exit (t >= 85.0) ? 0 : 1 }' \
		|| { echo "cover: internal/telemetry coverage $$total% below 85% floor"; exit 1; }
	$(GO) test -cover -coverprofile=/tmp/jgre-chaos.cover ./internal/chaos
	@total=$$($(GO) tool cover -func=/tmp/jgre-chaos.cover | awk '/^total:/ {sub(/%/, "", $$3); print $$3}'); \
		echo "internal/chaos coverage: $$total%"; \
		awk -v t="$$total" 'BEGIN { exit (t >= 75.0) ? 0 : 1 }' \
		|| { echo "cover: internal/chaos coverage $$total% below 75% floor"; exit 1; }
	$(GO) test -cover -coverprofile=/tmp/jgre-fleet.cover ./internal/fleet
	@total=$$($(GO) tool cover -func=/tmp/jgre-fleet.cover | awk '/^total:/ {sub(/%/, "", $$3); print $$3}'); \
		echo "internal/fleet coverage: $$total%"; \
		awk -v t="$$total" 'BEGIN { exit (t >= 75.0) ? 0 : 1 }' \
		|| { echo "cover: internal/fleet coverage $$total% below 75% floor"; exit 1; }
	$(GO) test -cover -coverprofile=/tmp/jgre-trace.cover ./internal/trace
	@total=$$($(GO) tool cover -func=/tmp/jgre-trace.cover | awk '/^total:/ {sub(/%/, "", $$3); print $$3}'); \
		echo "internal/trace coverage: $$total%"; \
		awk -v t="$$total" 'BEGIN { exit (t >= 80.0) ? 0 : 1 }' \
		|| { echo "cover: internal/trace coverage $$total% below 80% floor"; exit 1; }

ci: vet build test race fuzz-smoke bench-smoke cover
