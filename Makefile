# Build / test / CI entry points. `make ci` is the full gate: vet, the
# tier-1 build+test flow, and the race detector over the concurrent
# experiment engine and everything that runs on it.

GO ?= go

.PHONY: build test vet race bench bench-json ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# The parallel engine and its consumers must stay race-clean: the fan-out
# pool, the converted experiment sweeps, the pipeline's parallel
# dynamic-verification stage, and the scenario registry that drives them.
race:
	$(GO) test -race ./internal/parallel ./internal/experiments ./internal/analysis ./internal/scenario

# Regenerate the sequential-vs-parallel sweep timings (BENCH_parallel.json).
bench-json:
	$(GO) run ./cmd/jgre-bench -bench-json BENCH_parallel.json

bench:
	$(GO) test -bench=. -benchmem -run '^$$'

ci: vet build test race
