// Package simclock provides a deterministic virtual clock for the Android
// device simulation. All timestamps in the simulator are expressed as a
// time.Duration since (virtual) device boot, so experiments are exactly
// reproducible and "hours" of attack time execute in milliseconds.
package simclock

import (
	"fmt"
	"sync"
	"time"
)

// Clock is a monotonic virtual clock. The zero value is a clock at boot
// time (t = 0), ready to use.
//
// Clock is safe for concurrent use, although the simulation core drives it
// from a single goroutine for determinism.
type Clock struct {
	mu      sync.Mutex
	now     time.Duration
	horizon []func() (time.Duration, bool)
}

// New returns a clock starting at t = 0.
func New() *Clock { return &Clock{} }

// Now returns the current virtual time since boot.
func (c *Clock) Now() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Advance moves the clock forward by d. It panics if d is negative: the
// simulator's clock is monotonic and a negative advance always indicates a
// bug in the caller.
func (c *Clock) Advance(d time.Duration) {
	if d < 0 {
		panic(fmt.Sprintf("simclock: negative advance %v", d))
	}
	c.mu.Lock()
	c.now += d
	c.mu.Unlock()
}

// Set moves the clock to an absolute time t. It panics if t is earlier than
// the current time.
func (c *Clock) Set(t time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if t < c.now {
		panic(fmt.Sprintf("simclock: Set(%v) would move clock backwards from %v", t, c.now))
	}
	c.now = t
}

// AdvanceTo moves the clock forward to the absolute time t, the
// event-loop primitive: unlike Set it tolerates a target at or before the
// current time (a no-op), because an event popped at the current instant
// — or scheduled "now" by an actor whose Step already advanced the clock
// through IPC costs — must not panic the core.
func (c *Clock) AdvanceTo(t time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if t > c.now {
		c.now = t
	}
}

// AttachHorizon registers a deadline source consulted by NextDeadline —
// typically an event queue's Peek. The source returns its earliest
// pending virtual time, or ok=false when it has nothing scheduled.
// Sources cannot be detached; a source for a drained queue simply reports
// ok=false.
func (c *Clock) AttachHorizon(fn func() (time.Duration, bool)) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.horizon = append(c.horizon, fn)
}

// NextDeadline returns the earliest pending deadline across all attached
// horizon sources; ok is false when no source has anything scheduled.
// It is the introspection point for "how far could virtual time jump" —
// dashboards and the workload scheduler's telemetry read it.
func (c *Clock) NextDeadline() (time.Duration, bool) {
	c.mu.Lock()
	sources := c.horizon
	c.mu.Unlock()
	var (
		best  time.Duration
		found bool
	)
	for _, fn := range sources {
		if at, ok := fn(); ok && (!found || at < best) {
			best, found = at, true
		}
	}
	return best, found
}
