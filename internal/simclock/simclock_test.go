package simclock

import (
	"sync"
	"testing"
	"time"
)

func TestZeroValueIsBootTime(t *testing.T) {
	var c Clock
	if got := c.Now(); got != 0 {
		t.Fatalf("zero-value clock Now() = %v, want 0", got)
	}
}

func TestAdvanceAccumulates(t *testing.T) {
	c := New()
	c.Advance(3 * time.Second)
	c.Advance(500 * time.Millisecond)
	if got, want := c.Now(), 3500*time.Millisecond; got != want {
		t.Fatalf("Now() = %v, want %v", got, want)
	}
}

func TestAdvanceZeroIsNoop(t *testing.T) {
	c := New()
	c.Advance(time.Minute)
	c.Advance(0)
	if got, want := c.Now(), time.Minute; got != want {
		t.Fatalf("Now() = %v, want %v", got, want)
	}
}

func TestAdvanceNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Advance(-1) did not panic")
		}
	}()
	New().Advance(-1)
}

func TestSetForward(t *testing.T) {
	c := New()
	c.Set(time.Hour)
	if got := c.Now(); got != time.Hour {
		t.Fatalf("Now() = %v, want %v", got, time.Hour)
	}
	// Setting to the same instant is allowed.
	c.Set(time.Hour)
}

func TestSetBackwardPanics(t *testing.T) {
	c := New()
	c.Advance(time.Hour)
	defer func() {
		if recover() == nil {
			t.Fatal("Set(past) did not panic")
		}
	}()
	c.Set(time.Minute)
}

func TestAdvanceToForwardOnly(t *testing.T) {
	c := New()
	c.AdvanceTo(time.Second)
	if got := c.Now(); got != time.Second {
		t.Fatalf("Now() = %v, want %v", got, time.Second)
	}
	// Targets at or before the current time are no-ops, not panics: an
	// event popped at the current instant must not crash the core.
	c.AdvanceTo(time.Second)
	c.AdvanceTo(time.Millisecond)
	if got := c.Now(); got != time.Second {
		t.Fatalf("Now() after backward AdvanceTo = %v, want %v", got, time.Second)
	}
}

func TestNextDeadlineAcrossHorizonSources(t *testing.T) {
	c := New()
	if _, ok := c.NextDeadline(); ok {
		t.Fatal("NextDeadline with no sources reported a deadline")
	}
	empty := true
	c.AttachHorizon(func() (time.Duration, bool) {
		if empty {
			return 0, false
		}
		return 3 * time.Second, true
	})
	if _, ok := c.NextDeadline(); ok {
		t.Fatal("NextDeadline with only empty sources reported a deadline")
	}
	c.AttachHorizon(func() (time.Duration, bool) { return 5 * time.Second, true })
	if at, ok := c.NextDeadline(); !ok || at != 5*time.Second {
		t.Fatalf("NextDeadline = (%v, %v), want (5s, true)", at, ok)
	}
	empty = false
	if at, ok := c.NextDeadline(); !ok || at != 3*time.Second {
		t.Fatalf("NextDeadline = (%v, %v), want (3s, true)", at, ok)
	}
}

func TestConcurrentAdvance(t *testing.T) {
	c := New()
	const (
		workers = 8
		perG    = 1000
	)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < perG; j++ {
				c.Advance(time.Microsecond)
			}
		}()
	}
	wg.Wait()
	if got, want := c.Now(), workers*perG*time.Microsecond; got != want {
		t.Fatalf("Now() = %v, want %v", got, want)
	}
}
