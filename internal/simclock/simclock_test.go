package simclock

import (
	"sync"
	"testing"
	"time"
)

func TestZeroValueIsBootTime(t *testing.T) {
	var c Clock
	if got := c.Now(); got != 0 {
		t.Fatalf("zero-value clock Now() = %v, want 0", got)
	}
}

func TestAdvanceAccumulates(t *testing.T) {
	c := New()
	c.Advance(3 * time.Second)
	c.Advance(500 * time.Millisecond)
	if got, want := c.Now(), 3500*time.Millisecond; got != want {
		t.Fatalf("Now() = %v, want %v", got, want)
	}
}

func TestAdvanceZeroIsNoop(t *testing.T) {
	c := New()
	c.Advance(time.Minute)
	c.Advance(0)
	if got, want := c.Now(), time.Minute; got != want {
		t.Fatalf("Now() = %v, want %v", got, want)
	}
}

func TestAdvanceNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Advance(-1) did not panic")
		}
	}()
	New().Advance(-1)
}

func TestSetForward(t *testing.T) {
	c := New()
	c.Set(time.Hour)
	if got := c.Now(); got != time.Hour {
		t.Fatalf("Now() = %v, want %v", got, time.Hour)
	}
	// Setting to the same instant is allowed.
	c.Set(time.Hour)
}

func TestSetBackwardPanics(t *testing.T) {
	c := New()
	c.Advance(time.Hour)
	defer func() {
		if recover() == nil {
			t.Fatal("Set(past) did not panic")
		}
	}()
	c.Set(time.Minute)
}

func TestConcurrentAdvance(t *testing.T) {
	c := New()
	const (
		workers = 8
		perG    = 1000
	)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < perG; j++ {
				c.Advance(time.Microsecond)
			}
		}()
	}
	wg.Wait()
	if got, want := c.Now(), workers*perG*time.Microsecond; got != want {
		t.Fatalf("Now() = %v, want %v", got, want)
	}
}
