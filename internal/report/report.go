// Package report renders a complete Markdown security-assessment
// artifact from a pipeline run and a defense evaluation — the document a
// team would attach to the bug reports the paper filed with the Android
// Security Team.
package report

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"repro/internal/analysis"
	"repro/internal/catalog"
	"repro/internal/defense"
	"repro/internal/device"
	"repro/internal/experiments"
	"repro/internal/fleet"
)

// Input bundles everything a report can cover. Any field may be left
// zero; the corresponding section is omitted.
type Input struct {
	// Title heads the document.
	Title string
	// Pipeline is the audit result (with or without dynamic
	// verification).
	Pipeline *analysis.PipelineResult
	// Detections are defender engagements to document.
	Detections []defense.Detection
	// Telemetry optionally documents the demo device's IPC-log health
	// counters (records generated vs. lost to drops, ring eviction and
	// failed reads) — the evidence-pipeline integrity behind Detections.
	Telemetry *device.Stats
	// FleetForensics optionally includes a traced fleet run's causal
	// rollup: attack→evidence→detection latency distributions and per-uid
	// attribution accuracy from the flight recorders.
	FleetForensics *fleet.Result
	// Thresholds optionally includes the alarm/engage ablation table.
	Thresholds []experiments.ThresholdRow
	// Patch optionally includes the §IV-B universal-quota counterfactual.
	Patch []experiments.PatchRow
	// GeneratedAt stamps the document (virtual or wall time string).
	GeneratedAt string
}

// Write renders the report to w.
func Write(w io.Writer, in Input) error {
	title := in.Title
	if title == "" {
		title = "JGRE Vulnerability Assessment"
	}
	p := func(format string, args ...interface{}) {
		fmt.Fprintf(w, format, args...)
	}
	p("# %s\n\n", title)
	if in.GeneratedAt != "" {
		p("_Generated: %s_\n\n", in.GeneratedAt)
	}
	p("JNI Global Reference (JGR) exhaustion audit per Gu et al., DSN 2017: every\n")
	p("process's runtime aborts past %d global references; IPC interfaces that\n", catalog.JGRThreshold)
	p("retain caller binders let any authorized app drive a victim there.\n\n")

	if in.Pipeline != nil {
		writePipeline(p, in.Pipeline)
	}
	if len(in.Detections) > 0 {
		writeDetections(p, in.Detections)
	}
	if s := in.Telemetry; s != nil && (s.IPCLogSeq > 0 || s.TraceDropped > 0 || s.Defender != nil) {
		p("## Telemetry health\n\n")
		p("| Counter | Value |\n|---|---|\n")
		p("| IPC-log records generated | %d |\n", s.IPCLogSeq)
		p("| Lost to injected drops | %d |\n", s.IPCLogDropped)
		p("| Lost to ring-buffer eviction | %d |\n", s.IPCLogRingDropped)
		p("| Failed log reads | %d |\n", s.IPCLogReadErrors)
		p("| Binder transactions total | %d |\n", s.Transactions)
		p("| Trace-journal events evicted | %d |\n", s.TraceDropped)
		if s.TraceSpans > 0 || s.TraceSpanDrops > 0 || s.FlightDumps > 0 {
			p("| Flight-recorder spans held | %d |\n", s.TraceSpans)
			p("| Flight-recorder spans evicted | %d |\n", s.TraceSpanDrops)
			p("| Flight-recorder dumps | %d |\n", s.FlightDumps)
		}
		p("\n")
		if s.TraceDropped > 0 {
			p("> %d journal events were evicted by the bounded trace ring: the forensic\n", s.TraceDropped)
			p("> timeline in this report is incomplete.\n\n")
		}
		if s.TraceSpanDrops > 0 {
			p("> %d causal spans were evicted from the bounded flight-recorder ring:\n", s.TraceSpanDrops)
			p("> span chains in the trace export may be missing their oldest links.\n\n")
		}
		if h := s.Defender; h != nil {
			p("### Defender health\n\n")
			p("| Indicator | Value |\n|---|---|\n")
			p("| Engagements | %d |\n", h.Detections)
			p("| Last-window coverage | %.2f |\n", h.Coverage)
			p("| Fallback attribution (last window) | %v |\n", h.FallbackUsed)
			p("| Log-read retries (cumulative) | %d |\n", h.ReadRetries)
			p("| Analysis restarts (cumulative) | %d |\n", h.AnalysisRestarts)
			p("| Innocent-kill guard stops (cumulative) | %d |\n", h.GuardStops)
			p("\n")
		}
	}
	if in.FleetForensics != nil {
		writeFleetForensics(p, in.FleetForensics)
	}
	if len(in.Thresholds) > 0 {
		p("## Defender threshold ablation\n\n")
		p("| Alarm | Engage | Time to engage | Peak JGR | Margin | Defended |\n|---|---|---|---|---|---|\n")
		for _, r := range in.Thresholds {
			p("| %d | %d | %.1fs | %d | %d | %v |\n",
				r.Alarm, r.Engage, r.TimeToEngage.Seconds(), r.PeakJGR, r.Margin(), r.Defended)
		}
		p("\n")
	}
	if len(in.Patch) > 0 {
		p("## Universal per-process-quota counterfactual (§IV-B)\n\n")
		p("| Quota | Single attacker blocked | Heavy-app refusals | Colluders to reboot |\n|---|---|---|---|\n")
		for _, r := range in.Patch {
			colluders := fmt.Sprintf("%d", r.ColludersNeeded)
			if r.ColludersNeeded == 0 {
				colluders = ">80"
			}
			p("| %d | %v | %d | %s |\n", r.Quota, r.SingleBlocked, r.HeavyAppRefusals, colluders)
		}
		p("\n")
	}
	p("## Remediation guidance\n\n")
	p("- Client-side (helper class) quotas are advisory only: enforce limits in the\n")
	p("  service, keyed on `Binder.getCallingPid()`/`getCallingUid()`, never on\n")
	p("  caller-supplied identifiers (the `enqueueToast` \"android\" spoof).\n")
	p("- Static quotas trade usability against collusion resistance; a dynamic\n")
	p("  monitor over the shared JGR table (the JGRE Defender) covers both.\n")
	p("- Registrations must be bounded or reclaimed: pair every `register` with\n")
	p("  death-linked cleanup and an `unregister` path.\n")
	return nil
}

func writePipeline(p func(string, ...interface{}), res *analysis.PipelineResult) {
	f := res.Funnel()
	p("## Analysis pipeline summary\n\n")
	p("| Stage | Count |\n|---|---|\n")
	p("| System services registered | %d (%d native) |\n", f.SystemServices, f.NativeServices)
	p("| IPC methods extracted | %d |\n", f.IPCMethods)
	p("| Native paths to `IndirectReferenceTable::Add` | %d (%d init-only) |\n", f.NativePaths, f.InitOnlyPaths)
	p("| Risky IPC methods | %d |\n", f.RiskyMethods)
	p("| Discarded by sift rules | %d |\n", f.SiftedMethods)
	p("| Candidates | %d |\n", f.Candidates)
	if res.Verify != nil {
		p("| **Confirmed vulnerable** | **%d** |\n", f.Confirmed)
		p("| Cleared dynamically | %d |\n", f.RejectedDynamic)
	}
	p("\n")

	if res.Verify == nil {
		p("### Static candidates (dynamic verification not run)\n\n")
		for _, rm := range res.Sift.Kept {
			p("- `%s`\n", rm.IPC.FullName())
		}
		p("\n")
		return
	}

	p("### Confirmed vulnerable interfaces\n\n")
	p("| Interface | Growth/call | Permission required | Shipped guard |\n|---|---|---|---|\n")
	findings := append([]analysis.Finding(nil), res.Verify.Confirmed...)
	sort.Slice(findings, func(i, j int) bool { return findings[i].FullName() < findings[j].FullName() })
	for _, fd := range findings {
		perm := "none"
		if fd.Permission != "" {
			perm = "`" + fd.Permission + "`"
		}
		guard := "none"
		if row, ok := catalog.InterfaceByName(fd.FullName()); ok {
			switch row.Protection {
			case catalog.HelperGuard:
				guard = fmt.Sprintf("helper `%s` (bypassable)", row.HelperClass)
			case catalog.PerProcessGuard:
				if row.Bypassable {
					guard = "per-process quota (bypassable)"
				} else {
					guard = "per-process quota"
				}
			}
		}
		p("| `%s` | +%.1f JGR | %s | %s |\n", fd.FullName(), fd.GrowthPerCall, perm, guard)
	}
	p("\n### Cleared by dynamic testing\n\n")
	for _, rej := range res.Verify.Rejected {
		p("- `%s.%s` — %s\n", rej.Service, rej.Method, rej.Reason)
	}
	p("\n")
}

// writeFleetForensics renders a traced fleet run's causal rollup. An
// untraced fleet result (Trace == nil) renders an explicit note rather
// than nothing, so a report generated without -trace says why the
// forensic tables are absent.
func writeFleetForensics(p func(string, ...interface{}), r *fleet.Result) {
	p("## Fleet causal forensics\n\n")
	p("Workload `%s`, %d devices (seed %d).\n\n", r.Workload, r.Devices, r.Seed)
	t := r.Trace
	if t == nil {
		p("> Flight recorders were off for this fleet run; rerun with tracing\n")
		p("> enabled to populate the causal latency tables.\n\n")
		return
	}
	p("| Indicator | Value |\n|---|---|\n")
	p("| Trials with a complete causal chain | %d |\n", t.Trials)
	p("| Attacker attributed by defender kill list | %d (%.1f%%) |\n", t.Attributed, 100*t.AttributionRate)
	p("| Flight-recorder spans evicted fleet-wide | %d |\n", t.SpansDropped)
	p("\n")
	p("| Causal latency (virtual ms) | p50 | p90 | p99 | max |\n|---|---|---|---|---|\n")
	lat := func(name string, s fleet.Summary) {
		if s.Count == 0 {
			p("| %s | (no samples) | | | |\n", name)
			return
		}
		p("| %s | %d | %d | %d | %d |\n", name, s.P50, s.P90, s.P99, s.Max)
	}
	lat("first malicious transact → first JGR evidence", t.AttackToEvidenceMS)
	lat("first JGR evidence → defender engagement", t.EvidenceToDetectMS)
	lat("first malicious transact → defender engagement", t.AttackToDetectMS)
	p("\n")
	if t.SpansDropped > 0 {
		p("> Ring eviction dropped %d spans across the fleet; trials whose chain\n", t.SpansDropped)
		p("> head was evicted are excluded from the latency tables above.\n\n")
	}
}

func writeDetections(p func(string, ...interface{}), dets []defense.Detection) {
	p("## Defense engagements\n\n")
	for i, det := range dets {
		p("### Engagement %d — victim `%s` at t=%.1fs\n\n", i+1, det.Victim, det.EngagedAt.Seconds())
		p("- records analysed: %d in %v\n", det.Records, det.AnalysisTime.Round(time.Millisecond))
		if det.Coverage > 0 && det.Coverage < 1 {
			p("- telemetry coverage: %.0f%% (%d records lost in the window)\n", 100*det.Coverage, det.DroppedRecords)
		}
		if det.ReadFailed || det.ReadRetries > 0 {
			p("- log reads: %d retried, read failed: %v\n", det.ReadRetries, det.ReadFailed)
		}
		if det.FallbackUsed {
			p("- attribution: retained-ref fallback (correlation evidence below coverage floor)\n")
		}
		p("- killed: %s\n", strings.Join(det.Killed, ", "))
		p("- recovered: %v\n\n", det.Recovered)
		if len(det.Scores) > 0 {
			p("| Rank | Uid | Package | Suspicious calls |\n|---|---|---|---|\n")
			for j, s := range det.Scores {
				if j == 8 {
					break
				}
				p("| %d | %d | `%s` | %d |\n", j+1, s.Uid, s.Package, s.Score)
			}
			p("\n")
		}
	}
}
