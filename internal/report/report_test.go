package report

import (
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/defense"
	"repro/internal/device"
	"repro/internal/experiments"
	"repro/internal/kernel"
)

func TestWriteFullReport(t *testing.T) {
	res, err := core.Audit(core.AuditConfig{Dynamic: true, VerifyCalls: 80, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	det := defense.Detection{
		Victim: "system_server", VictimPid: 2, EngagedAt: 20 * time.Second,
		Records: 6100, AnalysisTime: 420 * time.Millisecond,
		Scores: []defense.AppScore{
			{Uid: kernel.Uid(10061), Package: "com.evil.app", Score: 6000},
			{Uid: kernel.Uid(10060), Package: "com.benign.app", Score: 90},
		},
		Killed: []string{"com.evil.app"}, Recovered: true,
	}
	var sb strings.Builder
	err = Write(&sb, Input{
		Pipeline:    res,
		Detections:  []defense.Detection{det},
		GeneratedAt: "test run",
	})
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# JGRE Vulnerability Assessment",
		"| System services registered | 104 (5 native) |",
		"| **Confirmed vulnerable** | **57** |",
		"`clipboard.addPrimaryClipChangedListener`",
		"helper `WifiManager` (bypassable)",
		"per-process quota (bypassable)",
		"constraint held",
		"## Defense engagements",
		"`com.evil.app` | 6000",
		"Remediation guidance",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q", want)
		}
	}
	// The three safe Table III interfaces appear only as cleared items.
	if strings.Count(out, "display.registerCallback") != 1 {
		t.Errorf("display.registerCallback should appear exactly once (as cleared)")
	}
}

func TestWriteStaticOnlyReport(t *testing.T) {
	res, err := core.Audit(core.AuditConfig{})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := Write(&sb, Input{Title: "Static sweep", Pipeline: res}); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "# Static sweep") {
		t.Error("custom title missing")
	}
	if !strings.Contains(out, "dynamic verification not run") {
		t.Error("static-only marker missing")
	}
	if strings.Contains(out, "Defense engagements") {
		t.Error("empty detections section rendered")
	}
}

func TestWriteEmptyInput(t *testing.T) {
	var sb strings.Builder
	if err := Write(&sb, Input{}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "Remediation guidance") {
		t.Error("minimal report missing remediation section")
	}
}

func TestWriteAblationSections(t *testing.T) {
	var sb strings.Builder
	err := Write(&sb, Input{
		Thresholds: []experiments.ThresholdRow{
			{Alarm: 4000, Engage: 12000, TimeToEngage: 26 * time.Second, PeakJGR: 13398, Defended: true},
		},
		Patch: []experiments.PatchRow{
			{Quota: 1, SingleBlocked: true, HeavyAppRefusals: 39},
			{Quota: 100, SingleBlocked: true, ColludersNeeded: 5},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"threshold ablation", "| 4000 | 12000 |", "quota counterfactual", "| 1 | true | 39 | >80 |", "| 100 | true | 0 | 5 |"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q", want)
		}
	}
}

func TestWriteTelemetryHealthSection(t *testing.T) {
	var sb strings.Builder
	err := Write(&sb, Input{
		Telemetry: &device.Stats{
			IPCLogSeq: 9000, IPCLogDropped: 120, IPCLogRingDropped: 40,
			IPCLogReadErrors: 2, Transactions: 15000,
			TraceDropped: 310,
			Defender: &device.DefenderHealth{
				Detections: 3, Coverage: 0.87, FallbackUsed: true,
				ReadRetries: 4, AnalysisRestarts: 1, GuardStops: 2,
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"## Telemetry health",
		"| Trace-journal events evicted | 310 |",
		"timeline in this report is incomplete",
		"### Defender health",
		"| Engagements | 3 |",
		"| Last-window coverage | 0.87 |",
		"| Fallback attribution (last window) | true |",
		"| Log-read retries (cumulative) | 4 |",
		"| Innocent-kill guard stops (cumulative) | 2 |",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q", want)
		}
	}
}

func TestWriteTelemetryDefenderOnly(t *testing.T) {
	// No IPC-log records at all: the section still renders when the stats
	// carry defender health or an incomplete timeline.
	var sb strings.Builder
	if err := Write(&sb, Input{Telemetry: &device.Stats{Defender: &device.DefenderHealth{Detections: 1, Coverage: 1}}}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "### Defender health") {
		t.Error("defender-only telemetry section not rendered")
	}
	// A clean snapshot renders nothing.
	sb.Reset()
	if err := Write(&sb, Input{Telemetry: &device.Stats{}}); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(sb.String(), "Telemetry health") {
		t.Error("empty telemetry section rendered")
	}
}
