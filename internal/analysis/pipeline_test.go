package analysis

import (
	"context"
	"strings"
	"testing"

	"repro/internal/catalog"
	"repro/internal/code"
	"repro/internal/corpus"
	"repro/internal/device"
)

// staticResult caches the static pipeline over the full corpus (with the
// third-party population) for the tests below.
var staticOnce *PipelineResult

func staticRun(t *testing.T) *PipelineResult {
	t.Helper()
	if staticOnce == nil {
		c := corpus.Generate(corpus.Options{ThirdPartyApps: catalog.ThirdPartyScanCount})
		staticOnce = RunStatic(c.Program, nil)
	}
	return staticOnce
}

func TestExtractorFindsAllRegistrations(t *testing.T) {
	r := staticRun(t)
	if got := r.Extract.SystemServiceCount(); got != 104 {
		t.Errorf("registered services = %d, want 104", got)
	}
	if got := r.Extract.NativeServiceCount(); got != 5 {
		t.Errorf("native services = %d, want 5 (§III-A)", got)
	}
}

func TestExtractorFindsThousandsOfIPCMethods(t *testing.T) {
	r := staticRun(t)
	if got := len(r.Extract.Methods); got < 1500 {
		t.Errorf("IPC methods = %d, want >1500 (paper: 'thousands of IPC methods')", got)
	}
}

func TestNativeFunnelMatchesPaper(t *testing.T) {
	r := staticRun(t)
	s := r.Entries.NativeSummary
	if s.TotalPaths != catalog.NativeAddPaths {
		t.Errorf("native paths = %d, want %d", s.TotalPaths, catalog.NativeAddPaths)
	}
	if s.InitOnlyPaths != catalog.NativeInitOnlyPaths {
		t.Errorf("init-only paths = %d, want %d", s.InitOnlyPaths, catalog.NativeInitOnlyPaths)
	}
	if s.ReachablePaths() != catalog.NativeReachablePaths {
		t.Errorf("reachable paths = %d, want %d", s.ReachablePaths(), catalog.NativeReachablePaths)
	}
}

func TestJavaJGREntriesIncludeTheKeyMappings(t *testing.T) {
	r := staticRun(t)
	for _, want := range []string{
		"android.os.Parcel#nativeReadStrongBinder",
		"android.os.Parcel#nativeWriteStrongBinder",
		"android.os.BinderProxy#linkToDeathNative",
		"java.lang.Thread#nativeCreate",
	} {
		if !r.Entries.JavaEntries[code.MethodID(want)] {
			t.Errorf("Java JGR entry %s missing", want)
		}
	}
	// Negative registrations must not appear.
	if r.Entries.JavaEntries[code.MethodID("android.os.Parcel#nativeWriteInt32")] {
		t.Error("nativeWriteInt32 wrongly marked as a JGR entry")
	}
}

func TestSiftKeepsExactlyTheGroundTruth(t *testing.T) {
	r := staticRun(t)
	kept := make(map[string]bool)
	for _, rm := range r.Sift.Kept {
		kept[rm.IPC.FullName()] = true
	}
	// Every catalogued system interface must survive sifting (the
	// statically risky set is all 57: the three well-guarded Table III
	// rows are indistinguishable statically and fall out only in the
	// dynamic stage).
	for _, row := range catalog.Interfaces() {
		if !kept[row.FullName()] {
			t.Errorf("catalogued %s missing from kept candidates", row.FullName())
		}
	}
	// No innocent method survives.
	for name := range kept {
		if strings.Contains(name, "unregister:") || strings.Contains(name, "getInfo") ||
			strings.Contains(name, "getState") || strings.Contains(name, "checkAccess") ||
			strings.Contains(name, "noteEvent") || strings.Contains(name, "startTask") ||
			strings.Contains(name, "setSingleCallback") || strings.Contains(name, "setDeviceAdminCallback") ||
			strings.Contains(name, "ping") || strings.Contains(name, "query") {
			t.Errorf("innocent method %s survived sifting", name)
		}
	}
}

func TestSiftRuleBreakdown(t *testing.T) {
	r := staticRun(t)
	byRule := r.Sift.CountByRule()
	if byRule[RuleThreadCreate] == 0 {
		t.Error("no rule-1 (thread-create) discards")
	}
	if byRule[RuleLocalUse] == 0 {
		t.Error("no rule-2 (local-use) discards")
	}
	if byRule[RuleReadOnly] == 0 {
		t.Error("no rule-3 (read-only) discards")
	}
	if byRule[RuleMemberOverwrite] == 0 {
		t.Error("no rule-4 (member-overwrite) discards")
	}
	if byRule[RulePermission] == 0 {
		t.Error("no permission-filter discards (signature distractors missed)")
	}
}

func TestStaticFindsThirdPartyCandidates(t *testing.T) {
	r := staticRun(t)
	wantMethods := map[string]bool{"setCallback": false, "registerStatusCallback": false, "a": false}
	for _, rm := range r.Sift.Kept {
		if rm.IPC.Source != SourceBaseClass {
			continue
		}
		if _, ok := wantMethods[rm.IPC.Method.Name]; ok {
			wantMethods[rm.IPC.Method.Name] = true
		}
	}
	for m, found := range wantMethods {
		if !found {
			t.Errorf("third-party/app candidate %s not found", m)
		}
	}
}

// TestFullPipelineReproducesHeadlineNumbers is the core validation: the
// four-step pipeline over the synthesized corpus, dynamically verified
// against a booted device, recovers the paper's abstract numbers.
func TestFullPipelineReproducesHeadlineNumbers(t *testing.T) {
	c := corpus.Generate(corpus.Options{ThirdPartyApps: catalog.ThirdPartyScanCount})
	dev, err := device.Boot(device.Config{Seed: 3, InstallThirdPartyApps: true})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(context.Background(), c.Program, dev, VerifyConfig{Calls: 120, GCEvery: 30})
	if err != nil {
		t.Fatal(err)
	}
	f := res.Funnel()

	if f.SystemServices != 104 || f.NativeServices != 5 {
		t.Errorf("census = %d services / %d native, want 104 / 5", f.SystemServices, f.NativeServices)
	}
	if f.NativePaths != 147 || f.InitOnlyPaths != 67 {
		t.Errorf("native funnel = %d/%d, want 147/67", f.NativePaths, f.InitOnlyPaths)
	}

	// Confirmed system-service findings: exactly the 54 exploitable rows.
	var sys, app int
	confirmed := make(map[string]bool)
	for _, fd := range res.Verify.Confirmed {
		confirmed[fd.FullName()] = true
		if fd.Source == SourceServiceManager {
			sys++
		} else {
			app++
		}
	}
	if sys != 54 {
		t.Errorf("confirmed system-service interfaces = %d, want 54", sys)
	}
	for _, row := range catalog.ExploitableInterfaces() {
		if !confirmed[row.FullName()] {
			t.Errorf("exploitable %s not confirmed", row.FullName())
		}
	}
	if f.VulnerableServices != 32 {
		t.Errorf("vulnerable services = %d, want 32", f.VulnerableServices)
	}
	// App findings: 3 prebuilt (Table IV) + 3 third-party (Table V).
	if app != 6 {
		t.Errorf("confirmed app interfaces = %d, want 6 (3 prebuilt + 3 third-party)", app)
	}

	// The three correctly-guarded Table III rows are rejected
	// dynamically, with the quota as the reason.
	wantRejected := map[string]bool{
		"display.registerCallback":                  false,
		"input.registerInputDevicesChangedListener": false,
		"input.registerTabletModeChangedListener":   false,
	}
	for _, rej := range res.Verify.Rejected {
		key := rej.Service + "." + rej.Method
		if _, ok := wantRejected[key]; ok {
			wantRejected[key] = true
			if !strings.Contains(rej.Reason, "constraint held") {
				t.Errorf("%s rejected for %q, want per-process constraint", key, rej.Reason)
			}
		}
	}
	for k, seen := range wantRejected {
		if !seen {
			t.Errorf("correctly-guarded %s was not rejected dynamically", k)
		}
	}

	// enqueueToast must be CONFIRMED despite its guard (the "android"
	// spoof).
	if !confirmed["notification.enqueueToast"] {
		t.Error("enqueueToast bypass not confirmed")
	}
}

func TestInterfaceNameFor(t *testing.T) {
	cases := map[string]string{
		"clipboard":          "IClipboard",
		"telephony.registry": "ITelephonyRegistry",
		"bluetooth_manager":  "IBluetoothManager",
		"tv_input":           "ITvInput",
	}
	for in, want := range cases {
		if got := corpus.InterfaceNameFor(in); got != want {
			t.Errorf("InterfaceNameFor(%q) = %q, want %q", in, got, want)
		}
	}
}
