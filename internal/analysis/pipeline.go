package analysis

import (
	"context"

	"repro/internal/catalog"
	"repro/internal/code"
	"repro/internal/device"
	"repro/internal/permissions"
)

// PipelineResult carries every stage's output plus the funnel numbers the
// paper reports.
type PipelineResult struct {
	Extract ExtractResult
	Entries JGREntries
	Risky   []RiskyMethod
	Sift    SiftResult
	// Verify is nil when the pipeline ran statically (no device).
	Verify *VerifyResult
}

// Funnel summarizes the pipeline stages numerically.
type Funnel struct {
	SystemServices     int
	NativeServices     int
	IPCMethods         int
	NativePaths        int
	InitOnlyPaths      int
	ReachablePaths     int
	JavaJGREntries     int
	RiskyMethods       int
	SiftedMethods      int
	Candidates         int
	Confirmed          int
	RejectedDynamic    int
	VulnerableServices int
}

// Funnel computes the summary.
func (r *PipelineResult) Funnel() Funnel {
	f := Funnel{
		SystemServices: r.Extract.SystemServiceCount(),
		NativeServices: r.Extract.NativeServiceCount(),
		IPCMethods:     len(r.Extract.Methods),
		NativePaths:    r.Entries.NativeSummary.TotalPaths,
		InitOnlyPaths:  r.Entries.NativeSummary.InitOnlyPaths,
		ReachablePaths: r.Entries.NativeSummary.ReachablePaths(),
		JavaJGREntries: len(r.Entries.JavaEntries),
		RiskyMethods:   len(r.Risky),
		SiftedMethods:  len(r.Sift.Sifted),
		Candidates:     len(r.Sift.Kept),
	}
	if r.Verify != nil {
		f.Confirmed = len(r.Verify.Confirmed)
		f.RejectedDynamic = len(r.Verify.Rejected)
		seen := make(map[string]bool)
		for _, c := range r.Verify.Confirmed {
			if c.Source == SourceServiceManager {
				seen[c.Service] = true
			}
		}
		f.VulnerableServices = len(seen)
	}
	return f
}

// CatalogObtainable builds the default permission policy from the
// catalog's AOSP 6.0.1 permission levels: normal and dangerous
// permissions are obtainable by a third-party app, anything undefined is
// treated as signature-gated.
func CatalogObtainable() func(string) bool {
	m := permissions.NewManager()
	for p, l := range catalog.PermissionLevels {
		m.Define(p, l)
	}
	return func(perm string) bool {
		return m.ObtainableByApp(permissions.Permission(perm))
	}
}

// RunStatic executes steps 1–3 (extract, JGR entries, detect, sift) over
// the program.
func RunStatic(p *code.Program, obtainable func(string) bool) *PipelineResult {
	if obtainable == nil {
		obtainable = CatalogObtainable()
	}
	res := &PipelineResult{}
	res.Extract = ExtractIPCMethods(p)
	res.Entries = ExtractJGREntries(p)
	res.Risky = DetectRisky(p, res.Extract.Methods, res.Entries)
	res.Sift = Sift(p, res.Risky, obtainable)
	return res
}

// Run executes the full four-step pipeline: the static stages over the
// program, then dynamic verification of every kept candidate against the
// device. vcfg.Workers sizes the dynamic stage's verification pool;
// cancelling ctx aborts the sweep.
func Run(ctx context.Context, p *code.Program, dev *device.Device, vcfg VerifyConfig) (*PipelineResult, error) {
	res := RunStatic(p, nil)
	verify, err := Verify(ctx, dev, res.Sift.Kept, vcfg)
	if err != nil {
		return nil, err
	}
	res.Verify = verify
	return res, nil
}
