package analysis

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/code"
)

// SiftRule identifies which §III-C3 rule (or the permission filter)
// discarded a risky method.
type SiftRule int

const (
	// RuleThreadCreate: only Thread.nativeCreate is involved; its native
	// side releases the JGR immediately (rule 1).
	RuleThreadCreate SiftRule = iota + 1
	// RuleLocalUse: the binder never escapes the method; GC collects it
	// (rule 2).
	RuleLocalUse
	// RuleReadOnly: the binder only keys read-only container lookups
	// (rule 3).
	RuleReadOnly
	// RuleMemberOverwrite: a single member field holds the binder; each
	// call revokes the previous one (rule 4).
	RuleMemberOverwrite
	// RulePermission: the interface demands a permission a third-party
	// app cannot obtain (the PScout-map filter).
	RulePermission
)

// String names the rule.
func (r SiftRule) String() string {
	switch r {
	case RuleThreadCreate:
		return "rule1-thread-create"
	case RuleLocalUse:
		return "rule2-local-use"
	case RuleReadOnly:
		return "rule3-read-only"
	case RuleMemberOverwrite:
		return "rule4-member-overwrite"
	case RulePermission:
		return "permission-unobtainable"
	default:
		return fmt.Sprintf("SiftRule(%d)", int(r))
	}
}

// SiftedMethod is a discarded risky method with its reason.
type SiftedMethod struct {
	Risky RiskyMethod
	Rule  SiftRule
}

// SiftResult splits the detector's output into kept candidates and
// discarded methods.
type SiftResult struct {
	Kept   []RiskyMethod
	Sifted []SiftedMethod
}

// CountByRule tallies the discards.
func (r SiftResult) CountByRule() map[SiftRule]int {
	out := make(map[SiftRule]int)
	for _, s := range r.Sifted {
		out[s.Rule]++
	}
	return out
}

// Sift runs step 3b: apply the four innocence rules, then drop candidates
// whose required permission a third-party app cannot obtain. obtainable
// reports whether an app can acquire the named permission (the catalog's
// permission-level policy in practice).
func Sift(p *code.Program, risky []RiskyMethod, obtainable func(perm string) bool) SiftResult {
	var res SiftResult
	for _, rm := range risky {
		if rule, sifted := classify(p, rm); sifted {
			res.Sifted = append(res.Sifted, SiftedMethod{Risky: rm, Rule: rule})
			continue
		}
		if perm := p.PermissionMap[rm.IPC.Method.ID]; perm != "" && !obtainable(perm) {
			res.Sifted = append(res.Sifted, SiftedMethod{Risky: rm, Rule: RulePermission})
			continue
		}
		res.Kept = append(res.Kept, rm)
	}
	return res
}

// classify applies rules 1–4 to one risky method.
func classify(p *code.Program, rm RiskyMethod) (SiftRule, bool) {
	m := rm.IPC.Method

	// Rule 1: the only JGR involvement is thread creation and no binder
	// is transmitted.
	if rm.Reasons == RiskCallGraph && len(rm.BinderParams) == 0 {
		allThread := true
		for _, id := range rm.EntriesReached {
			if !strings.HasSuffix(string(id), "#nativeCreate") {
				allThread = false
				break
			}
		}
		if allThread {
			return RuleThreadCreate, true
		}
		// Reaches a retaining JGR entry (e.g. linkToDeath) without a
		// binder parameter: keep it.
		return 0, false
	}

	// Rules 2–4 judge what the method does with its binder parameters.
	worst := code.SinkNone
	found := false
	for _, idx := range rm.BinderParams {
		for _, f := range m.Flows {
			if f.Param != idx {
				continue
			}
			found = true
			if sinkRank(f.Sink) > sinkRank(worst) {
				worst = f.Sink
			}
		}
	}
	if !found {
		// No recorded flow: the binder never escapes (rule 2).
		return RuleLocalUse, true
	}
	switch worst {
	case code.SinkCollection:
		return 0, false // the vulnerable pattern — keep
	case code.SinkMemberField:
		return RuleMemberOverwrite, true
	case code.SinkReadOnlyQuery:
		return RuleReadOnly, true
	case code.SinkThread:
		return RuleThreadCreate, true
	default:
		return RuleLocalUse, true
	}
}

// sinkRank orders sinks by how strongly they retain the binder.
func sinkRank(s code.SinkKind) int {
	switch s {
	case code.SinkNone:
		return 0
	case code.SinkThread:
		return 1
	case code.SinkReadOnlyQuery:
		return 2
	case code.SinkMemberField:
		return 3
	case code.SinkCollection:
		return 4
	default:
		return 0
	}
}

// FormatSiftReport renders the sifter's discards grouped by rule, with a
// few example methods per rule — the §III-C3 audit trail.
func FormatSiftReport(res SiftResult) string {
	byRule := make(map[SiftRule][]string)
	for _, s := range res.Sifted {
		byRule[s.Rule] = append(byRule[s.Rule], s.Risky.IPC.FullName())
	}
	out := fmt.Sprintf("risky-IPC sifter: %d kept, %d discarded\n", len(res.Kept), len(res.Sifted))
	for _, rule := range []SiftRule{RuleThreadCreate, RuleLocalUse, RuleReadOnly, RuleMemberOverwrite, RulePermission} {
		names := byRule[rule]
		if len(names) == 0 {
			continue
		}
		out += fmt.Sprintf("  %-26s %5d", rule, len(names))
		sort.Strings(names)
		for i, n := range names {
			if i == 3 {
				out += " ..."
				break
			}
			if i == 0 {
				out += "  e.g. "
			} else {
				out += ", "
			}
			out += n
		}
		out += "\n"
	}
	return out
}
