package analysis

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"

	"repro/internal/device"
)

// TestVerifyParallelEquivalence asserts the dynamic stage's core
// guarantee: with every candidate verified on its own booted device, the
// confirmed and rejected sets are byte-identical whether the pool runs one
// worker or eight.
func TestVerifyParallelEquivalence(t *testing.T) {
	static := staticRun(t)
	dev, err := device.Boot(device.Config{Seed: 3, InstallThirdPartyApps: true})
	if err != nil {
		t.Fatal(err)
	}
	run := func(workers int) []byte {
		res, err := Verify(context.Background(), dev, static.Sift.Kept,
			VerifyConfig{Calls: 120, GCEvery: 30, Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		b, err := json.Marshal(res)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	seq, par := run(1), run(8)
	if !bytes.Equal(seq, par) {
		t.Errorf("workers=1 and workers=8 verification differ\nseq: %.400s\npar: %.400s", seq, par)
	}
}
