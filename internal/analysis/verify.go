package analysis

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"

	"repro/internal/apps"
	"repro/internal/binder"
	"repro/internal/device"
	"repro/internal/parallel"
	"repro/internal/permissions"
	"repro/internal/services"
)

// VerifyConfig parameterizes the dynamic verification stage (§III-D).
type VerifyConfig struct {
	// Calls is how many times each candidate is invoked. The paper fires
	// 60,000 requests per interface; the simulator is deterministic, so
	// a few hundred suffice to classify growth. 0 means 300.
	Calls int
	// GCEvery triggers the victim's garbage collector every n calls
	// (the paper drives GC through DDMS). 0 means 50.
	GCEvery int
	// PackageHints carries the manually-extracted parameters of §III-D
	// ("we manually extract parameters, e.g., package name ... and feed
	// them to IPC interfaces"). The enqueueToast entry reproduces the
	// Code-Snippet 3 spoof. Nil selects DefaultPackageHints.
	PackageHints map[string]string
	// Workers sizes the verification worker pool (0 = one per CPU,
	// 1 = sequential). Every candidate is tested on its own device booted
	// from the template device's configuration, so the confirmed and
	// rejected sets are independent of the worker count.
	Workers int
}

// DefaultPackageHints is the manual parameter analysis the paper's
// semi-automatic test generation performs.
var DefaultPackageHints = map[string]string{
	"notification.enqueueToast": "android",
}

// Finding is a dynamically confirmed vulnerable interface.
type Finding struct {
	Service string
	Method  string
	Source  IPCSource
	// GrowthPerCall is the net JGR growth of the victim process per
	// call, surviving GC.
	GrowthPerCall float64
	Calls         int
	// Permission the test app needed ("" for none).
	Permission string
}

// FullName returns "service.method".
func (f Finding) FullName() string { return f.Service + "." + f.Method }

// Rejection is a candidate dynamic testing cleared.
type Rejection struct {
	Service string
	Method  string
	Reason  string
}

// VerifyResult is the dynamic stage's output.
type VerifyResult struct {
	Confirmed []Finding
	Rejected  []Rejection
}

// Verify drives every kept candidate against a simulated device from a
// fresh throw-away test app, watching the victim process's JGR table
// through repeated invocations and GC cycles, and classifies candidates
// whose table keeps growing as confirmed vulnerabilities. dev is the
// template: each candidate runs on its own device booted from the same
// configuration (same seed, same installed population), keeping every
// per-method measurement independent of the others. cfg.Workers sizes the
// verification pool; cancelling ctx aborts the sweep.
func Verify(ctx context.Context, dev *device.Device, kept []RiskyMethod, cfg VerifyConfig) (*VerifyResult, error) {
	if cfg.Calls == 0 {
		cfg.Calls = 300
	}
	if cfg.GCEvery == 0 {
		cfg.GCEvery = 50
	}
	if cfg.PackageHints == nil {
		cfg.PackageHints = DefaultPackageHints
	}
	bootCfg := dev.BootConfig()
	type verdict struct {
		finding *Finding
		rej     *Rejection
	}
	verdicts, err := parallel.Map(ctx, kept, cfg.Workers, func(_ context.Context, i int, rm RiskyMethod) (verdict, error) {
		if rm.IPC.Method == nil {
			return verdict{}, nil
		}
		shard, err := device.Boot(bootCfg)
		if err != nil {
			return verdict{}, fmt.Errorf("analysis: booting verification device: %w", err)
		}
		var v verdict
		switch rm.IPC.Source {
		case SourceServiceManager:
			v.finding, v.rej, err = verifySystem(shard, rm, i, cfg)
		case SourceBaseClass:
			v.finding, v.rej, err = verifyApp(shard, rm, i, cfg)
		default:
			return verdict{}, fmt.Errorf("analysis: candidate %s has unknown source", rm.IPC.FullName())
		}
		if err != nil {
			return verdict{}, err
		}
		return v, nil
	})
	if err != nil {
		return nil, err
	}
	res := &VerifyResult{}
	for _, v := range verdicts {
		if v.finding != nil {
			res.Confirmed = append(res.Confirmed, *v.finding)
		}
		if v.rej != nil {
			res.Rejected = append(res.Rejected, *v.rej)
		}
	}
	sort.Slice(res.Confirmed, func(i, j int) bool { return res.Confirmed[i].FullName() < res.Confirmed[j].FullName() })
	sort.Slice(res.Rejected, func(i, j int) bool {
		return res.Rejected[i].Service+res.Rejected[i].Method < res.Rejected[j].Service+res.Rejected[j].Method
	})
	return res, nil
}

// verifySystem tests one system-service candidate.
func verifySystem(dev *device.Device, rm RiskyMethod, seq int, cfg VerifyConfig) (*Finding, *Rejection, error) {
	serviceName, methodName := rm.IPC.Service, rm.IPC.Method.Name
	svc := dev.Service(serviceName)
	if svc == nil {
		return nil, &Rejection{Service: serviceName, Method: methodName, Reason: "service not running on device"}, nil
	}
	perm := permissions.Permission(rm.Permission)
	tester, err := dev.Apps().Install(fmt.Sprintf("com.jgre.tester%04d", seq))
	if err != nil {
		return nil, nil, fmt.Errorf("analysis: installing tester: %w", err)
	}
	if perm != "" {
		if err := dev.Permissions().Grant(tester.Uid(), perm); err != nil {
			return nil, &Rejection{Service: serviceName, Method: methodName,
				Reason: "permission not obtainable: " + string(perm)}, nil
		}
	}
	defer tester.ForceStop("verification done")

	client, err := dev.NewClient(tester, serviceName)
	if err != nil {
		return nil, nil, fmt.Errorf("analysis: client for %s: %w", serviceName, err)
	}
	pkg := tester.Package()
	if hint, ok := cfg.PackageHints[serviceName+"."+methodName]; ok {
		pkg = hint
	}
	victim := svc.Host().VM()
	victim.GC()
	before := victim.GlobalRefCount()

	quotaHits := 0
	for i := 0; i < cfg.Calls; i++ {
		err := client.RegisterAs(methodName, pkg, client.NewToken())
		switch {
		case err == nil:
		case errors.Is(err, services.ErrQuotaExceeded):
			quotaHits++
		case isPermissionDenied(err):
			return nil, &Rejection{Service: serviceName, Method: methodName, Reason: err.Error()}, nil
		default:
			return nil, nil, fmt.Errorf("analysis: invoking %s.%s: %w", serviceName, methodName, err)
		}
		if (i+1)%cfg.GCEvery == 0 {
			victim.GC()
		}
	}
	victim.GC()
	growth := float64(victim.GlobalRefCount()-before) / float64(cfg.Calls)

	if quotaHits > 0 && growth < 0.5 {
		return nil, &Rejection{Service: serviceName, Method: methodName,
			Reason: fmt.Sprintf("per-process constraint held (%d refusals, growth %.2f/call)", quotaHits, growth)}, nil
	}
	if growth < 0.5 {
		return nil, &Rejection{Service: serviceName, Method: methodName,
			Reason: fmt.Sprintf("JGR reclaimed (growth %.2f/call)", growth)}, nil
	}
	return &Finding{
		Service: serviceName, Method: methodName, Source: rm.IPC.Source,
		GrowthPerCall: growth, Calls: cfg.Calls, Permission: string(perm),
	}, nil, nil
}

// verifyApp tests one app-service candidate against the device's
// published app services.
func verifyApp(dev *device.Device, rm RiskyMethod, seq int, cfg VerifyConfig) (*Finding, *Rejection, error) {
	methodName := rm.IPC.Method.Name
	regName, appSvc := resolveAppService(dev, rm)
	if appSvc == nil {
		return nil, &Rejection{Service: rm.IPC.Service, Method: methodName, Reason: "app service not installed on device"}, nil
	}
	code, ok := appSvc.Code(methodName)
	if !ok {
		return nil, &Rejection{Service: regName, Method: methodName, Reason: "method not exported"}, nil
	}
	tester, err := dev.Apps().Install(fmt.Sprintf("com.jgre.tester%04d", seq))
	if err != nil {
		return nil, nil, fmt.Errorf("analysis: installing tester: %w", err)
	}
	defer tester.ForceStop("verification done")

	tp := tester.Start()
	ref, err := dev.AppServices().Bind(regName, tp)
	if err != nil {
		return nil, nil, fmt.Errorf("analysis: binding %s: %w", regName, err)
	}
	victim := appSvc.Owner().Proc().VM()
	victim.GC()
	before := victim.GlobalRefCount()
	for i := 0; i < cfg.Calls; i++ {
		data := binder.NewParcel()
		data.WriteStrongBinder(dev.Driver().NewLocalBinder(tp, "android.os.Binder", nil))
		if err := ref.Binder().Transact(code, data, nil); err != nil {
			return nil, nil, fmt.Errorf("analysis: invoking %s.%s: %w", regName, methodName, err)
		}
		if (i+1)%cfg.GCEvery == 0 {
			victim.GC()
		}
	}
	victim.GC()
	growth := float64(victim.GlobalRefCount()-before) / float64(cfg.Calls)
	if growth < 0.5 {
		return nil, &Rejection{Service: regName, Method: methodName,
			Reason: fmt.Sprintf("JGR reclaimed (growth %.2f/call)", growth)}, nil
	}
	return &Finding{
		Service: regName, Method: methodName, Source: rm.IPC.Source,
		GrowthPerCall: growth, Calls: cfg.Calls,
	}, nil, nil
}

// resolveAppService maps a base-class candidate (its concrete class) to a
// published app service: the class must live under the publishing app's
// package and the service must export the method.
func resolveAppService(dev *device.Device, rm RiskyMethod) (string, *apps.AppService) {
	for _, name := range dev.AppServices().Names() {
		pkg := name[:strings.IndexByte(name, '/')]
		if !strings.HasPrefix(rm.IPC.Class, pkg+".") {
			continue
		}
		svc := dev.AppService(name)
		if svc == nil {
			continue
		}
		if _, ok := svc.Code(rm.IPC.Method.Name); ok {
			return name, svc
		}
	}
	return "", nil
}

func isPermissionDenied(err error) bool {
	var de *permissions.DeniedError
	return errors.As(err, &de)
}
