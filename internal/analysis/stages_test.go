package analysis

import (
	"strings"
	"testing"

	"repro/internal/code"
	"repro/internal/corpus"
)

// tinyProgram builds a minimal hand-rolled program exercising each
// extractor/detector/sifter rule in isolation (the corpus tests cover the
// full-scale behaviour).
func tinyProgram() *code.Program {
	p := code.NewProgram()

	// Native layer: one exploitable path, one init-only path, one JNI
	// entry without a path.
	p.AddNative(&code.NativeFunc{Name: corpus.AddTarget})
	p.AddNative(&code.NativeFunc{Name: "jni_link", JNIEntry: true, Calls: []string{corpus.AddTarget}})
	p.AddNative(&code.NativeFunc{Name: "jni_thread", JNIEntry: true, Calls: []string{corpus.AddTarget}})
	p.AddNative(&code.NativeFunc{Name: "CacheClass", InitOnly: true, Calls: []string{corpus.AddTarget}})
	p.AddNative(&code.NativeFunc{Name: "jni_plain", JNIEntry: true})
	p.JNI = []code.JNIRegistration{
		{JavaClass: "android.os.BinderProxy", JavaMethod: "linkToDeathNative", NativeFunc: "jni_link"},
		{JavaClass: "java.lang.Thread", JavaMethod: "nativeCreate", NativeFunc: "jni_thread"},
		{JavaClass: "android.os.Parcel", JavaMethod: "nativeWriteInt32", NativeFunc: "jni_plain"},
	}

	// Framework shims.
	p.AddClass(&code.Class{Name: "android.os.ServiceManager", Methods: []*code.Method{
		{ID: "android.os.ServiceManager#addService", Class: "android.os.ServiceManager", Name: "addService"},
	}})
	p.AddClass(&code.Class{Name: "android.os.BinderProxy", Methods: []*code.Method{
		{ID: "android.os.BinderProxy#linkToDeathNative", Class: "android.os.BinderProxy", Name: "linkToDeathNative", NativeDecl: true},
	}})
	p.AddClass(&code.Class{Name: "java.lang.Thread", Methods: []*code.Method{
		{ID: "java.lang.Thread#nativeCreate", Class: "java.lang.Thread", Name: "nativeCreate", NativeDecl: true},
		{ID: "java.lang.Thread#start", Class: "java.lang.Thread", Name: "start",
			Calls: []code.CallSite{{Callee: "java.lang.Thread#nativeCreate"}}},
	}})

	// One registered service with one method per rule.
	p.AddInterface(&code.Interface{Name: "IDemo", Methods: []string{
		"vuln", "threadOnly", "localUse", "readOnly", "member", "plain", "listVuln", "listPlain", "sigGated",
	}})
	mk := func(name string, params []code.ParamType, flows []code.BinderFlow, calls ...code.CallSite) *code.Method {
		return &code.Method{
			ID: code.MakeMethodID("DemoService", name), Class: "DemoService", Name: name,
			Params: params, Flows: flows, Calls: calls,
		}
	}
	binderParam := []code.ParamType{code.ParamOther, code.ParamBinder}
	p.AddClass(&code.Class{Name: "DemoService", Implements: []string{"IDemo"}, Methods: []*code.Method{
		mk("vuln", binderParam, []code.BinderFlow{{Param: 1, Sink: code.SinkCollection}}),
		mk("threadOnly", []code.ParamType{code.ParamOther}, nil,
			code.CallSite{Callee: "java.lang.Thread#start"}),
		mk("localUse", binderParam, []code.BinderFlow{{Param: 1, Sink: code.SinkNone}}),
		mk("readOnly", binderParam, []code.BinderFlow{{Param: 1, Sink: code.SinkReadOnlyQuery}}),
		mk("member", binderParam, []code.BinderFlow{{Param: 1, Sink: code.SinkMemberField}}),
		mk("plain", []code.ParamType{code.ParamOther}, nil),
		mk("listVuln", []code.ParamType{code.ParamList}, []code.BinderFlow{{Param: 0, Sink: code.SinkCollection}}),
		mk("listPlain", []code.ParamType{code.ParamList}, nil),
		mk("sigGated", binderParam, []code.BinderFlow{{Param: 1, Sink: code.SinkCollection}}),
	}})
	p.ListCarriesBinder[code.MakeMethodID("DemoService", "listVuln")] = true
	// listPlain's List stays unannotated: the manual check said "no
	// binders inside".
	p.PermissionMap[code.MakeMethodID("DemoService", "sigGated")] = "SIGNATURE_ONLY"

	p.AddClass(&code.Class{Name: "Boot", Methods: []*code.Method{
		{ID: "Boot#main", Class: "Boot", Name: "main", Calls: []code.CallSite{
			{Callee: corpus.ServiceManagerAdd, StringArg: "demo", ClassArg: "DemoService"},
		}},
	}})
	return p
}

func TestTinyExtract(t *testing.T) {
	p := tinyProgram()
	res := ExtractIPCMethods(p)
	if res.SystemServiceCount() != 1 {
		t.Fatalf("services = %d", res.SystemServiceCount())
	}
	if len(res.Methods) != 9 {
		t.Fatalf("IPC methods = %d, want 9", len(res.Methods))
	}
	for _, m := range res.Methods {
		if m.Service != "demo" || m.Source != SourceServiceManager {
			t.Fatalf("method = %+v", m)
		}
	}
}

func TestTinyJGREntries(t *testing.T) {
	p := tinyProgram()
	e := ExtractJGREntries(p)
	if e.NativeSummary.TotalPaths != 3 || e.NativeSummary.InitOnlyPaths != 1 {
		t.Fatalf("summary = %+v", e.NativeSummary)
	}
	if !e.JavaEntries["android.os.BinderProxy#linkToDeathNative"] {
		t.Error("linkToDeathNative missing")
	}
	if !e.JavaEntries["java.lang.Thread#nativeCreate"] {
		t.Error("nativeCreate missing")
	}
	if e.JavaEntries["android.os.Parcel#nativeWriteInt32"] {
		t.Error("pathless JNI method marked as entry")
	}
}

func TestTinyDetectAndSift(t *testing.T) {
	p := tinyProgram()
	ex := ExtractIPCMethods(p)
	entries := ExtractJGREntries(p)
	risky := DetectRisky(p, ex.Methods, entries)

	// plain and listPlain are not risky at all.
	riskyNames := make(map[string]RiskyMethod)
	for _, rm := range risky {
		riskyNames[rm.IPC.Method.Name] = rm
	}
	if len(risky) != 7 {
		t.Fatalf("risky = %d (%v), want 7", len(risky), riskyNames)
	}
	for _, absent := range []string{"plain", "listPlain"} {
		if _, ok := riskyNames[absent]; ok {
			t.Errorf("%s wrongly detected as risky", absent)
		}
	}
	if rm := riskyNames["threadOnly"]; rm.Reasons != RiskCallGraph {
		t.Errorf("threadOnly reasons = %v", rm.Reasons)
	}
	if rm := riskyNames["vuln"]; rm.Reasons&RiskBinderParam == 0 {
		t.Errorf("vuln reasons = %v", rm.Reasons)
	}
	if rm := riskyNames["sigGated"]; rm.Permission != "SIGNATURE_ONLY" {
		t.Errorf("sigGated permission = %q", rm.Permission)
	}

	sift := Sift(p, risky, func(perm string) bool { return perm != "SIGNATURE_ONLY" })
	kept := make(map[string]bool)
	for _, rm := range sift.Kept {
		kept[rm.IPC.Method.Name] = true
	}
	if len(kept) != 2 || !kept["vuln"] || !kept["listVuln"] {
		t.Fatalf("kept = %v, want {vuln, listVuln}", kept)
	}
	byRule := sift.CountByRule()
	wantRules := map[SiftRule]int{
		RuleThreadCreate:    1,
		RuleLocalUse:        1,
		RuleReadOnly:        1,
		RuleMemberOverwrite: 1,
		RulePermission:      1,
	}
	for rule, want := range wantRules {
		if byRule[rule] != want {
			t.Errorf("rule %v discards = %d, want %d", rule, byRule[rule], want)
		}
	}
}

func TestSiftRuleStrings(t *testing.T) {
	for rule, want := range map[SiftRule]string{
		RuleThreadCreate:    "rule1-thread-create",
		RuleLocalUse:        "rule2-local-use",
		RuleReadOnly:        "rule3-read-only",
		RuleMemberOverwrite: "rule4-member-overwrite",
		RulePermission:      "permission-unobtainable",
	} {
		if got := rule.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(rule), got, want)
		}
	}
}

func TestIPCSourceString(t *testing.T) {
	if SourceServiceManager.String() != "servicemanager" || SourceBaseClass.String() != "base-class" {
		t.Fatal("IPCSource strings wrong")
	}
	if IPCSource(0).String() != "unknown" {
		t.Fatal("zero IPCSource string wrong")
	}
}

func TestIsParcelBinderEntry(t *testing.T) {
	if !IsParcelBinderEntry("android.os.Parcel#nativeReadStrongBinder") ||
		!IsParcelBinderEntry("android.os.Parcel#nativeWriteStrongBinder") {
		t.Fatal("parcel entries not recognized")
	}
	if IsParcelBinderEntry("java.lang.Thread#nativeCreate") {
		t.Fatal("thread entry misclassified")
	}
}

func TestFormatSiftReport(t *testing.T) {
	p := tinyProgram()
	ex := ExtractIPCMethods(p)
	entries := ExtractJGREntries(p)
	risky := DetectRisky(p, ex.Methods, entries)
	res := Sift(p, risky, func(perm string) bool { return perm != "SIGNATURE_ONLY" })
	out := FormatSiftReport(res)
	for _, want := range []string{"2 kept, 5 discarded", "rule1-thread-create", "permission-unobtainable", "demo.threadOnly"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}
