package analysis

import (
	"sort"

	"repro/internal/code"
)

// RiskReason says why the detector flagged an IPC method.
type RiskReason int

const (
	// RiskCallGraph: the method's call graph reaches a Java JGR entry.
	RiskCallGraph RiskReason = 1 << iota
	// RiskBinderParam: the method receives a strong binder through one
	// of the four §III-C2 transmission scenarios.
	RiskBinderParam
)

// RiskyMethod is a detector hit.
type RiskyMethod struct {
	IPC     IPCMethod
	Reasons RiskReason
	// EntriesReached lists the Java JGR entries found in the call graph.
	EntriesReached []code.MethodID
	// BinderParams lists parameter indices that transmit binders.
	BinderParams []int
	// Permission is the PScout-map requirement for this method ("" if
	// none).
	Permission string
}

// DetectRisky runs step 3a (§III-C1/C2): build each IPC method's call
// graph (following message-handler indirection), mark methods whose graph
// contains a Java JGR entry, and independently mark methods that receive
// strong binders as parameters — covering the Parcel read/write entries
// that never appear in service call graphs.
func DetectRisky(p *code.Program, ipcs []IPCMethod, entries JGREntries) []RiskyMethod {
	var out []RiskyMethod
	for _, ipc := range ipcs {
		if ipc.Method == nil {
			// Native services: their Java-side surface is empty; the
			// paper analyzes them separately and found no JGRE issues.
			continue
		}
		var rm RiskyMethod
		rm.IPC = ipc
		rm.Permission = p.PermissionMap[ipc.Method.ID]

		reach := p.ReachableMethods(ipc.Method.ID)
		var reached []code.MethodID
		for id := range entries.JavaEntries {
			if IsParcelBinderEntry(id) {
				continue
			}
			if reach[id] {
				reached = append(reached, id)
			}
		}
		sort.Slice(reached, func(i, j int) bool { return reached[i] < reached[j] })
		if len(reached) > 0 {
			rm.Reasons |= RiskCallGraph
			rm.EntriesReached = reached
		}

		for i, pt := range ipc.Method.Params {
			carries := pt.CarriesBinder()
			if pt == code.ParamList {
				// Type erasure hides the element type; the manual
				// annotation table resolves it (§III-C2).
				carries = p.ListCarriesBinder[ipc.Method.ID]
			}
			if carries {
				rm.Reasons |= RiskBinderParam
				rm.BinderParams = append(rm.BinderParams, i)
			}
		}

		if rm.Reasons != 0 {
			out = append(out, rm)
		}
	}
	return out
}
