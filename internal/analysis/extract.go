// Package analysis implements the paper's four-step JGRE analysis
// methodology (§III, Fig. 1): the IPC method extractor, the JGR entry
// extractor, the vulnerable-IPC detector (call-graph generation, risky-IPC
// detection over the four strong-binder scenarios, and the risky-IPC
// sifter with its four innocence rules plus the permission filter), and
// the dynamic JGRE verification stage that drives candidates against the
// simulated device.
package analysis

import (
	"sort"
	"strings"

	"repro/internal/code"
	"repro/internal/corpus"
)

// IPCSource says how an IPC method was discovered (§III-A's two paths).
type IPCSource int

const (
	// SourceServiceManager: the owning class is registered with the
	// ServiceManager (system services).
	SourceServiceManager IPCSource = iota + 1
	// SourceBaseClass: the method is exposed through a service base
	// class whose asBinder() returns an AIDL stub (app services).
	SourceBaseClass
)

// String names the source.
func (s IPCSource) String() string {
	switch s {
	case SourceServiceManager:
		return "servicemanager"
	case SourceBaseClass:
		return "base-class"
	default:
		return "unknown"
	}
}

// IPCMethod is one extracted IPC entry point.
type IPCMethod struct {
	// Service is the registry name for system services, or the concrete
	// implementing class for app services.
	Service string
	// Class is the class whose (possibly inherited) method implements
	// the call.
	Class string
	// Method is the resolved implementation. Nil only for native
	// services, whose methods are not modelled in Java.
	Method *code.Method
	Source IPCSource
	// Native marks interfaces of native system services.
	Native bool
}

// FullName returns "service.method".
func (m IPCMethod) FullName() string {
	if m.Method == nil {
		return m.Service + ".<native>"
	}
	return m.Service + "." + m.Method.Name
}

// ExtractResult is the output of the IPC method extractor.
type ExtractResult struct {
	Methods []IPCMethod
	// Registrations lists the discovered service registrations,
	// including the native ones.
	Registrations []code.ServiceRegistration
}

// SystemServiceCount returns the number of distinct registered services.
func (r ExtractResult) SystemServiceCount() int {
	seen := make(map[string]bool)
	for _, reg := range r.Registrations {
		seen[reg.ServiceName] = true
	}
	return len(seen)
}

// NativeServiceCount returns the number of native registrations.
func (r ExtractResult) NativeServiceCount() int {
	n := 0
	for _, reg := range r.Registrations {
		if reg.Native {
			n++
		}
	}
	return n
}

// ExtractIPCMethods runs step 1 of the methodology over the program:
// find every ServiceManager registration (Java and native), mark the
// registered classes' AIDL-declared methods as IPC methods, and find the
// app-side IPC surfaces through base service classes' asBinder stubs.
func ExtractIPCMethods(p *code.Program) ExtractResult {
	var res ExtractResult

	// --- Registrations via addService / publishBinderService.
	regByClass := make(map[string]string) // impl class → service name
	for _, className := range p.ClassNames() {
		for _, m := range p.Classes[className].Methods {
			for _, cs := range m.Calls {
				if cs.Callee != corpus.ServiceManagerAdd && cs.Callee != corpus.PublishBinderSvc {
					continue
				}
				if cs.ClassArg == "" || cs.StringArg == "" {
					continue
				}
				regByClass[cs.ClassArg] = cs.StringArg
				res.Registrations = append(res.Registrations, code.ServiceRegistration{
					ServiceName: cs.StringArg, StubClass: cs.ClassArg,
				})
			}
		}
	}
	// --- Native registrations via ServiceManager::addService.
	var nativeNames []string
	for name := range p.Natives {
		nativeNames = append(nativeNames, name)
	}
	sort.Strings(nativeNames)
	for _, name := range nativeNames {
		f := p.Natives[name]
		if f.RegistersService == "" {
			continue
		}
		res.Registrations = append(res.Registrations, code.ServiceRegistration{
			ServiceName: f.RegistersService, StubClass: f.RegistersClass, Native: true,
		})
		res.Methods = append(res.Methods, IPCMethod{
			Service: f.RegistersService, Class: f.RegistersClass,
			Source: SourceServiceManager, Native: true,
		})
	}

	// --- IPC methods of registered Java services: methods overriding an
	// AIDL interface declaration.
	implClasses := make([]string, 0, len(regByClass))
	for cls := range regByClass {
		implClasses = append(implClasses, cls)
	}
	sort.Strings(implClasses)
	for _, cls := range implClasses {
		svcName := regByClass[cls]
		for _, m := range aidlMethodsOf(p, cls) {
			res.Methods = append(res.Methods, IPCMethod{
				Service: svcName, Class: cls, Method: m, Source: SourceServiceManager,
			})
		}
	}

	// --- App services: classes whose super chain carries an asBinder()
	// stub (service base classes, §III-A's second discovery path).
	for _, className := range p.ClassNames() {
		cls := p.Classes[className]
		if cls.Abstract || cls.AIDLGenerated {
			continue
		}
		stub := asBinderStubOf(p, className)
		if stub == "" {
			continue
		}
		for _, ifaceName := range p.Classes[stub].Implements {
			iface, ok := p.Interfaces[ifaceName]
			if !ok {
				continue
			}
			for _, methodName := range iface.Methods {
				impl := resolveImpl(p, className, methodName)
				if impl == nil {
					continue
				}
				res.Methods = append(res.Methods, IPCMethod{
					Service: className, Class: className, Method: impl, Source: SourceBaseClass,
				})
			}
		}
	}

	sort.Slice(res.Methods, func(i, j int) bool { return res.Methods[i].FullName() < res.Methods[j].FullName() })
	return res
}

// aidlMethodsOf returns the methods of cls (or its supers) overriding a
// declaration of any AIDL interface cls implements.
func aidlMethodsOf(p *code.Program, cls string) []*code.Method {
	declared := make(map[string]bool)
	chain := append([]string{cls}, p.SuperChain(cls)...)
	for _, c := range chain {
		cc, ok := p.Classes[c]
		if !ok {
			continue
		}
		for _, ifaceName := range cc.Implements {
			if iface, ok := p.Interfaces[ifaceName]; ok {
				for _, m := range iface.Methods {
					declared[m] = true
				}
			}
		}
	}
	var names []string
	for n := range declared {
		names = append(names, n)
	}
	sort.Strings(names)
	var out []*code.Method
	for _, n := range names {
		if impl := resolveImpl(p, cls, n); impl != nil {
			out = append(out, impl)
		}
	}
	return out
}

// asBinderStubOf walks the super chain looking for an AsBinderReturns
// declaration and returns the stub class name.
func asBinderStubOf(p *code.Program, cls string) string {
	chain := append([]string{cls}, p.SuperChain(cls)...)
	for _, c := range chain {
		if cc, ok := p.Classes[c]; ok && cc.AsBinderReturns != "" {
			if _, ok := p.Classes[cc.AsBinderReturns]; ok {
				return cc.AsBinderReturns
			}
		}
	}
	return ""
}

// resolveImpl finds the implementation of methodName on cls, searching the
// super chain for inherited defaults (how PicoService inherits
// TextToSpeechService.setCallback).
func resolveImpl(p *code.Program, cls, methodName string) *code.Method {
	chain := append([]string{cls}, p.SuperChain(cls)...)
	for _, c := range chain {
		if m := p.Method(code.MakeMethodID(c, methodName)); m != nil && !m.Abstract {
			return m
		}
	}
	return nil
}

// JGREntries is the output of the JGR entry extractor (step 2).
type JGREntries struct {
	// NativeSummary is the §III-B1 funnel over the native call graph.
	NativeSummary code.NativePathSummary
	// ExploitableRoots are JNI-entry native functions with at least one
	// non-init path into the JGR table.
	ExploitableRoots []string
	// JavaEntries are the Java methods whose registered native
	// implementation is an exploitable root — the set the detector looks
	// for in IPC call graphs.
	JavaEntries map[code.MethodID]bool
}

// ExtractJGREntries runs step 2: count native paths into
// IndirectReferenceTable::Add, filter the init-only ones, and map the
// surviving roots back to Java methods through the JNI registrations.
func ExtractJGREntries(p *code.Program) JGREntries {
	res := JGREntries{JavaEntries: make(map[code.MethodID]bool)}
	res.NativeSummary = p.SummarizeNativePaths(corpus.AddTarget)
	for root, n := range res.NativeSummary.ByRoot {
		if n > 0 && p.Natives[root].JNIEntry && !p.Natives[root].InitOnly {
			res.ExploitableRoots = append(res.ExploitableRoots, root)
		}
	}
	sort.Strings(res.ExploitableRoots)
	exploitable := make(map[string]bool, len(res.ExploitableRoots))
	for _, r := range res.ExploitableRoots {
		exploitable[r] = true
	}
	for _, reg := range p.JNI {
		if exploitable[reg.NativeFunc] {
			res.JavaEntries[code.MakeMethodID(reg.JavaClass, reg.JavaMethod)] = true
		}
	}
	return res
}

// IsParcelBinderEntry reports whether a Java JGR entry is one of the two
// special Parcel methods that never appear in service call graphs because
// the Binder framework invokes them during onTransact marshalling
// (§III-C2).
func IsParcelBinderEntry(id code.MethodID) bool {
	s := string(id)
	return strings.HasSuffix(s, "#nativeReadStrongBinder") || strings.HasSuffix(s, "#nativeWriteStrongBinder")
}
