package defense

import (
	"strings"
	"testing"

	"repro/internal/kernel"
	"repro/internal/trace"
	"repro/internal/workload"
)

// runDefendedAttack drives one attack to its first engagement and
// returns the rig for telemetry assertions.
func runDefendedAttack(t *testing.T) *defRig {
	t.Helper()
	r := newDefRig(t, smallCfg(), 10)
	evil, err := r.dev.Apps().Install("com.evil.app")
	if err != nil {
		t.Fatal(err)
	}
	atk, err := workload.NewAttacker(r.dev, evil, "audio.startWatchingRoutes")
	if err != nil {
		t.Fatal(err)
	}
	r.sched.Add(atk)
	r.sched.Run(func() bool { return len(r.def.History()) > 0 }, 200000)
	if len(r.def.History()) == 0 {
		t.Fatal("defender never engaged")
	}
	return r
}

func TestEngagementEmitsSpan(t *testing.T) {
	r := runDefendedAttack(t)

	spans := r.dev.Journal().Spans()
	if len(spans) != len(r.def.History()) {
		t.Fatalf("spans = %d, want one per engagement (%d)", len(spans), len(r.def.History()))
	}
	sp := spans[0]
	if sp.Subject != "defender.poll" {
		t.Fatalf("span subject = %q, want defender.poll", sp.Subject)
	}
	if sp.T != r.def.History()[0].EngagedAt {
		t.Fatalf("span stamped at %v, want engagement time %v", sp.T, r.def.History()[0].EngagedAt)
	}
	for _, phase := range []string{"dur=", "read=", "correlate=", "score=", "decide="} {
		if !strings.Contains(sp.Detail, phase) {
			t.Fatalf("span detail %q missing %q", sp.Detail, phase)
		}
	}
}

func TestSpanPhasesSumToDuration(t *testing.T) {
	s := trace.Span{
		Name:  "defender.poll",
		Start: 0,
		End:   100,
		Phases: []trace.Phase{
			{Name: "read", D: 40},
			{Name: "correlate", D: 60},
			{Name: "score", D: 0},
			{Name: "decide", D: 0},
		},
	}
	var sum int64
	for _, p := range s.Phases {
		sum += int64(p.D)
	}
	if sum != int64(s.Duration()) {
		t.Fatalf("phase sum %d != duration %d", sum, s.Duration())
	}
}

func TestEngagementMetrics(t *testing.T) {
	r := runDefendedAttack(t)
	reg := r.dev.Metrics()
	det := r.def.History()[0]

	if v, ok := reg.Value("jgre_defender_engagements_total"); !ok || v < 1 {
		t.Fatalf("engagements_total = %v (ok=%v), want >= 1", v, ok)
	}
	if v, _ := reg.Value("jgre_defender_kills_total"); v != float64(len(det.Killed)) {
		t.Fatalf("kills_total = %v, want %d", v, len(det.Killed))
	}
	if v, _ := reg.Value("jgre_defender_coverage"); v != det.Coverage {
		t.Fatalf("coverage gauge = %v, want %v", v, det.Coverage)
	}
	// The four phase histograms saw exactly one observation per
	// engagement.
	for _, phase := range []string{"read", "correlate", "score", "decide"} {
		name := `jgre_defender_phase_seconds{phase="` + phase + `"}`
		if v, ok := reg.Value(name); !ok || v != float64(len(r.def.History())) {
			t.Fatalf("%s count = %v (ok=%v), want %d", name, v, ok, len(r.def.History()))
		}
	}
}

func TestCorrelatorMetrics(t *testing.T) {
	r := runDefendedAttack(t)
	reg := r.dev.Metrics()

	scored, ok := reg.Value("jgre_defender_correlator_types_scored_total")
	if !ok || scored < 1 {
		t.Fatalf("types_scored_total = %v (ok=%v), want >= 1 after an engagement", scored, ok)
	}
	for _, name := range []string{
		"jgre_defender_correlator_types_skipped_total",
		"jgre_defender_correlator_span_shortcuts_total",
		"jgre_defender_correlator_bucket_pairs_total",
	} {
		if _, ok := reg.Value(name); !ok {
			t.Fatalf("registry missing %s", name)
		}
	}
	// Every type either early-exits before bucketing or sweeps pairs;
	// an engagement that scored something must have done one or the other.
	shortcuts, _ := reg.Value("jgre_defender_correlator_span_shortcuts_total")
	pairs, _ := reg.Value("jgre_defender_correlator_bucket_pairs_total")
	if shortcuts == 0 && pairs == 0 {
		t.Fatal("correlator scored types but recorded neither a span shortcut nor swept pairs")
	}
}

func TestDefenderHealthInStats(t *testing.T) {
	r := runDefendedAttack(t)
	det := r.def.History()[len(r.def.History())-1]

	s := r.dev.Stats()
	if s.Defender == nil {
		t.Fatal("Stats.Defender = nil with a defender attached")
	}
	if s.Defender.Detections != len(r.def.History()) {
		t.Fatalf("Detections = %d, want %d", s.Defender.Detections, len(r.def.History()))
	}
	if s.Defender.Coverage != det.Coverage {
		t.Fatalf("Coverage = %v, want %v", s.Defender.Coverage, det.Coverage)
	}
	if s.Defender.FallbackUsed != det.FallbackUsed {
		t.Fatalf("FallbackUsed = %v, want %v", s.Defender.FallbackUsed, det.FallbackUsed)
	}

	var b strings.Builder
	r.dev.DumpState(&b)
	if !strings.Contains(b.String(), "defender:") {
		t.Fatal("DumpState missing defender health line")
	}
}

func TestMetricsProcFileDuringAttack(t *testing.T) {
	r := runDefendedAttack(t)
	fs := r.dev.Kernel().ProcFS()

	out, err := fs.Read("/proc/jgre_metrics", kernel.RootUid)
	if err != nil {
		t.Fatalf("root read: %v", err)
	}
	text := string(out)
	for _, want := range []string{
		"# TYPE jgre_defender_engagements_total counter",
		"jgre_defender_attached 1",
		"jgre_defender_correlator_types_scored_total",
		"jgre_defender_correlator_bucket_pairs_total",
		`jgre_jgr_table_size{process="system_server"}`,
		"jgre_binder_tx_bytes_bucket",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("/proc/jgre_metrics missing %q", want)
		}
	}
	if _, err := fs.Read("/proc/jgre_metrics", kernel.FirstAppUid); err == nil {
		t.Fatal("app uid could read /proc/jgre_metrics; want ACL denial")
	}
}
