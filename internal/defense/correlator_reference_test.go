package defense

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"sync"
	"testing"
	"time"

	"repro/internal/binder"
	"repro/internal/device"
	"repro/internal/kernel"
	"repro/internal/segtree"
)

// referenceScore is the pre-streaming (PR-4) implementation of
// Algorithm 1, retained verbatim as the differential oracle for the
// streaming columnar correlator: per-type call buckets keyed through a
// map, and a lazy-propagation segment tree accumulating one range-add
// per (call, JGR-add) pair. Everything the optimized path claims —
// grouping, dedup weighting, the difference-array sweep, the
// zero-overlap and tight-span early exits — must reproduce this
// function's output byte-for-byte.
func referenceScore(d *Defender, records []binder.IPCRecord, jgrAdds []time.Duration, delta time.Duration) []AppScore {
	if len(records) == 0 || len(jgrAdds) == 0 {
		return nil
	}
	adds := append([]time.Duration(nil), jgrAdds...)
	sort.Slice(adds, func(i, j int) bool { return adds[i] < adds[j] })

	calls := make(map[typeKey][]time.Duration)
	names := make(map[typeKey]string)
	var keys []typeKey
	for _, r := range records {
		k := typeKey{uid: r.FromUid, handle: r.Handle, code: r.Code}
		if !d.cfg.DisablePathClassification {
			// §VI: calls of the same IPC method travelling different code
			// paths carry different argument shapes; the transaction size
			// is the observable path signature.
			k.path = r.Size
		}
		if _, ok := calls[k]; !ok {
			keys = append(keys, k)
		}
		calls[k] = append(calls[k], r.Time)
		if _, ok := names[k]; !ok {
			if t, resolved := d.dev.Resolve(r); resolved {
				names[k] = t.FullName()
			} else {
				names[k] = fmt.Sprintf("handle%d.code%d", r.Handle, r.Code)
			}
		}
	}
	sort.Slice(keys, func(i, j int) bool { return typeKeyLess(keys[i], keys[j]) })

	domain := int(d.cfg.MaxDelay/delayBucket) + 2
	tree := segtree.New(domain)
	deltaBuckets := int(delta / delayBucket)
	scores := make(map[kernel.Uid]*AppScore)
	for _, k := range keys {
		tree.Reset()
		for _, ct := range calls[k] {
			// Only JGR creations within [ct, ct+MaxDelay] can be effects
			// of this call.
			lo := sort.Search(len(adds), func(i int) bool { return adds[i] >= ct })
			for i := lo; i < len(adds) && adds[i] <= ct+d.cfg.MaxDelay; i++ {
				minDelay := int((adds[i] - ct) / delayBucket)
				tree.Add(minDelay, minDelay+deltaBuckets, 1)
			}
		}
		best := tree.GlobalMax()
		if best == 0 {
			continue
		}
		s, ok := scores[k.uid]
		if !ok {
			s = &AppScore{Uid: k.uid, ByType: make(map[string]int64)}
			if a := d.dev.Apps().ByUid(k.uid); a != nil {
				s.Package = a.Package()
			}
			scores[k.uid] = s
		}
		s.Score += best
		s.ByType[names[k]] += best
	}

	out := make([]AppScore, 0, len(scores))
	for _, s := range scores {
		out = append(out, *s)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Uid < out[j].Uid
	})
	return out
}

// TestStreamingMatchesReferenceOnDeviceWindows runs the realistic
// multi-window fixture through both scorers: live device traffic with
// resolvable interfaces, multiple apps and interleaved types.
func TestStreamingMatchesReferenceOnDeviceWindows(t *testing.T) {
	def, windows, addWindows := correlatorWindows(t)
	for i := range windows {
		for _, delta := range []time.Duration{0, DefaultDelta, 25 * time.Millisecond} {
			got := def.ScoreWithDelta(windows[i], addWindows[i], delta)
			want := referenceScore(def, windows[i], addWindows[i], delta)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("window %d Δ=%v diverged:\nstreaming: %+v\nreference: %+v", i, delta, got, want)
			}
		}
	}
}

// diffDefenders carries the two shared fuzz defenders: one with path
// classification on at the paper's MaxDelay, one with classification off
// over a tiny 2 ms delay domain so boundary clamping is hit constantly.
// Booting a device dominates a fuzz iteration, so both are built once.
var diffDefenders struct {
	once sync.Once
	path *Defender
	flat *Defender
	err  error
	mu   sync.Mutex // guards the shared persistent correlator below
	pers correlator
}

func fuzzDefenders(tb testing.TB) (*Defender, *Defender) {
	tb.Helper()
	diffDefenders.once.Do(func() {
		boot := func(cfg Config) (*Defender, error) {
			dev, err := device.Boot(device.Config{Seed: 11})
			if err != nil {
				return nil, err
			}
			cfg.AlarmThreshold = 1 << 20
			cfg.EngageThreshold = 1 << 21
			return New(dev, cfg)
		}
		diffDefenders.path, diffDefenders.err = boot(Config{})
		if diffDefenders.err == nil {
			diffDefenders.flat, diffDefenders.err = boot(Config{
				DisablePathClassification: true,
				MaxDelay:                  2 * time.Millisecond,
			})
		}
	})
	if diffDefenders.err != nil {
		tb.Fatal(diffDefenders.err)
	}
	return diffDefenders.path, diffDefenders.flat
}

// synthWindow generates a randomized evidence window: a handful of app
// uids hitting small handle/code/size ranges (some resolve to real
// catalog interfaces, most fall back to handleN.codeM names), with call
// and add times drawn across a span that straddles the MaxDelay
// horizon so overlap windows open, close and clamp.
func synthWindow(rng *rand.Rand, nRec, nAdd int, span time.Duration) ([]binder.IPCRecord, []time.Duration) {
	records := make([]binder.IPCRecord, nRec)
	for i := range records {
		records[i] = binder.IPCRecord{
			Seq:     uint64(i + 1),
			Time:    time.Duration(rng.Int63n(int64(span))),
			FromPid: kernel.Pid(100 + rng.Intn(4)),
			FromUid: kernel.FirstAppUid + kernel.Uid(rng.Intn(4)),
			ToPid:   2,
			Handle:  binder.Handle(rng.Intn(8)),
			Code:    binder.TxCode(1 + rng.Intn(6)),
			Size:    64 << rng.Intn(3),
		}
	}
	adds := make([]time.Duration, nAdd)
	for i := range adds {
		adds[i] = time.Duration(rng.Int63n(int64(span)))
	}
	return records, adds
}

// FuzzCorrelatorDifferential is the property pin: for randomized
// windows — types, overlaps, duplicated timestamps, Δ, path
// classification on and off — the streaming correlator (stateless AND
// a persistent instance recycled across inputs) must match the retained
// segment-tree reference byte-for-byte.
func FuzzCorrelatorDifferential(f *testing.F) {
	f.Add(int64(1), uint8(30), uint8(40), uint32(1800), false)
	f.Add(int64(2), uint8(3), uint8(1), uint32(0), true)
	f.Add(int64(3), uint8(64), uint8(8), uint32(250_000), false)
	f.Add(int64(4), uint8(7), uint8(90), uint32(100), true)
	f.Fuzz(func(t *testing.T, seed int64, nRec, nAdd uint8, deltaMicros uint32, flat bool) {
		pathDef, flatDef := fuzzDefenders(t)
		def := pathDef
		span := 400 * time.Millisecond
		if flat {
			def = flatDef
			span = 5 * time.Millisecond
		}
		rng := rand.New(rand.NewSource(seed))
		records, adds := synthWindow(rng, int(nRec%64)+1, int(nAdd%96)+1, span)
		// Duplicate a random prefix of timestamps so the dedup weighting
		// path is exercised on every input shape.
		for i := 1; i < len(records); i += 3 {
			records[i].Time = records[i-1].Time
		}
		delta := time.Duration(deltaMicros%300_000) * time.Microsecond

		want := referenceScore(def, records, adds, delta)
		got := def.ScoreWithDelta(records, adds, delta)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("stateless streaming diverged from reference:\nstreaming: %+v\nreference: %+v", got, want)
		}
		diffDefenders.mu.Lock()
		persistent := diffDefenders.pers.scoreRecords(def, records, adds, delta)
		diffDefenders.mu.Unlock()
		if !reflect.DeepEqual(persistent, want) {
			t.Fatalf("persistent streaming diverged from reference:\npersistent: %+v\nreference: %+v", persistent, want)
		}
	})
}

// TestCorrelatorExhaustiveSmallDomain brute-forces every combination of
// call-time subset × add-time subset × Δ over a 5-slot time grid spanning
// a 300 µs MaxDelay domain, with duplicated calls (weight 2) on one uid
// and a second uid sharing add times through a different interface. On
// a domain this small every boundary case — empty overlap, full-domain
// Δ, end clamping, tied buckets — occurs, and the streaming result must
// equal the reference on all of them.
func TestCorrelatorExhaustiveSmallDomain(t *testing.T) {
	dev, err := device.Boot(device.Config{Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	def, err := New(dev, Config{
		AlarmThreshold:  1 << 20,
		EngageThreshold: 1 << 21,
		MaxDelay:        300 * time.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	grid := []time.Duration{
		0,
		100 * time.Microsecond,
		250 * time.Microsecond,
		400 * time.Microsecond,
		750 * time.Microsecond,
	}
	deltas := []time.Duration{0, 100 * time.Microsecond, 300 * time.Microsecond}
	var persistent correlator
	combos := 0
	for callMask := 1; callMask < 1<<len(grid); callMask++ {
		var records []binder.IPCRecord
		seq := uint64(1)
		for b, ct := range grid {
			if callMask&(1<<b) == 0 {
				continue
			}
			// uid A: duplicated call (dedup weight 2) on interface h40.c1.
			for rep := 0; rep < 2; rep++ {
				records = append(records, binder.IPCRecord{
					Seq: seq, Time: ct, FromUid: kernel.FirstAppUid,
					Handle: 40, Code: 1, Size: 64,
				})
				seq++
			}
			// uid B: single call on a different interface, every other slot.
			if b%2 == 0 {
				records = append(records, binder.IPCRecord{
					Seq: seq, Time: ct, FromUid: kernel.FirstAppUid + 1,
					Handle: 41, Code: 2, Size: 128,
				})
				seq++
			}
		}
		for addMask := 1; addMask < 1<<len(grid); addMask++ {
			var adds []time.Duration
			for b, at := range grid {
				if addMask&(1<<b) != 0 {
					adds = append(adds, at)
				}
			}
			for _, delta := range deltas {
				want := referenceScore(def, records, adds, delta)
				if got := def.ScoreWithDelta(records, adds, delta); !reflect.DeepEqual(got, want) {
					t.Fatalf("calls %05b adds %05b Δ=%v: stateless diverged:\nstreaming: %+v\nreference: %+v",
						callMask, addMask, delta, got, want)
				}
				if got := persistent.scoreRecords(def, records, adds, delta); !reflect.DeepEqual(got, want) {
					t.Fatalf("calls %05b adds %05b Δ=%v: persistent diverged", callMask, addMask, delta)
				}
				combos++
			}
		}
	}
	if combos != (1<<len(grid)-1)*(1<<len(grid)-1)*len(deltas) {
		t.Fatalf("enumerated %d combos, want full grid", combos)
	}
}

// TestScoreOrderInvariant pins that scoring is a pure function of the
// window's multiset of records: shuffling the record order (the streaming
// path re-groups via its permutation sort) cannot change the result.
func TestScoreOrderInvariant(t *testing.T) {
	def, windows, addWindows := correlatorWindows(t)
	base := def.Score(windows[0], addWindows[0])
	rng := rand.New(rand.NewSource(5))
	shuffled := append([]binder.IPCRecord(nil), windows[0]...)
	for trial := 0; trial < 5; trial++ {
		rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		if got := def.Score(shuffled, addWindows[0]); !reflect.DeepEqual(got, base) {
			t.Fatalf("trial %d: shuffled window changed the ranking", trial)
		}
	}
}
