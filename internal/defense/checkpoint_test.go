package defense

import (
	"bytes"
	"errors"
	"reflect"
	"testing"
	"time"

	"repro/internal/device"
	"repro/internal/faults"
	"repro/internal/workload"
)

// sampleCheckpoint builds a fully-populated checkpoint for codec tests.
func sampleCheckpoint() *Checkpoint {
	return &Checkpoint{
		Version:            CheckpointVersion,
		TakenAt:            1234 * time.Millisecond,
		WindowSeq:          900,
		WindowLogged:       850,
		WindowDroppedRate:  30,
		WindowDroppedRing:  20,
		WindowReadErrors:   2,
		LastDelta:          1800 * time.Microsecond,
		InnocentKillBudget: 2,
		CorrRounds:         3,
		Detections:         1,
		ReadRetries:        4,
		AnalysisRestarts:   1,
		GuardStops:         2,
		LastCoverage:       0.875,
		LastFallback:       true,
		Monitors: []MonitorCheckpoint{
			{Name: "system_server", Pid: 1, Baseline: 1500, Recording: true,
				AddTimes: []time.Duration{time.Second, time.Second + time.Millisecond}},
			{Name: "com.android.bt.host", Pid: 41, Baseline: 20, Engaged: true},
			{Name: "empty", Pid: 99},
		},
	}
}

func TestCheckpointRoundTrip(t *testing.T) {
	cp := sampleCheckpoint()
	enc := cp.Encode()
	dec, err := DecodeCheckpoint(enc)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cp, dec) {
		t.Fatalf("round trip diverged:\n in: %+v\nout: %+v", cp, dec)
	}
	if re := dec.Encode(); !bytes.Equal(enc, re) {
		t.Fatalf("re-encoding is not canonical: %d vs %d bytes", len(enc), len(re))
	}
	// Encode sorts a copy: unsorted monitors on the struct still produce
	// the canonical stream and do not mutate the receiver.
	swapped := sampleCheckpoint()
	swapped.Monitors[0], swapped.Monitors[2] = swapped.Monitors[2], swapped.Monitors[0]
	if !bytes.Equal(swapped.Encode(), enc) {
		t.Fatal("monitor order changed the encoding")
	}
	if swapped.Monitors[0].Pid != 99 {
		t.Fatal("Encode mutated the receiver's monitor order")
	}
}

func TestDecodeCheckpointRejectsCorrupt(t *testing.T) {
	valid := sampleCheckpoint().Encode()
	mutate := func(fn func(b []byte) []byte) []byte {
		b := append([]byte(nil), valid...)
		return fn(b)
	}
	cases := map[string][]byte{
		"empty":     nil,
		"bad magic": mutate(func(b []byte) []byte { b[0] = 'X'; return b }),
		"bad version": mutate(func(b []byte) []byte {
			b[4] = 0xEE
			return b
		}),
		"truncated":      valid[:len(valid)-3],
		"trailing bytes": mutate(func(b []byte) []byte { return append(b, 0) }),
		"boolean 2": mutate(func(b []byte) []byte {
			// LastFallback byte sits right after the fixed header.
			b[4+4+8*13+8] = 2
			return b
		}),
		"monitor count overflow": mutate(func(b []byte) []byte {
			// Claim 2^31 monitors with no bytes to back them.
			off := 4 + 4 + 8*13 + 8 + 1
			b[off], b[off+1], b[off+2], b[off+3] = 0, 0, 0, 0x80
			return b[:off+4]
		}),
	}
	for name, data := range cases {
		if _, err := DecodeCheckpoint(data); !errors.Is(err, ErrCheckpointCorrupt) {
			t.Errorf("%s: err = %v, want ErrCheckpointCorrupt", name, err)
		}
	}

	// Unsorted monitors are non-canonical even when structurally valid.
	unsorted := sampleCheckpoint()
	unsorted.Monitors = []MonitorCheckpoint{{Name: "b", Pid: 9}, {Name: "a", Pid: 3}}
	raw := unsorted.Encode() // Encode sorts, so corrupt the order by hand
	dec, err := DecodeCheckpoint(raw)
	if err != nil || dec.Monitors[0].Pid != 3 {
		t.Fatalf("setup: %v %+v", err, dec)
	}
	dup := sampleCheckpoint()
	dup.Monitors = []MonitorCheckpoint{{Name: "a", Pid: 3}, {Name: "b", Pid: 3}}
	if _, err := DecodeCheckpoint(dup.Encode()); !errors.Is(err, ErrCheckpointCorrupt) {
		t.Errorf("duplicate pids: err = %v, want ErrCheckpointCorrupt", err)
	}
}

// FuzzCheckpointRoundTrip asserts the codec's two safety properties on
// arbitrary bytes: DecodeCheckpoint never panics, and any input it
// accepts is canonical — decode(encode(decode(x))) == decode(x) and the
// re-encoding is byte-identical to the input.
func FuzzCheckpointRoundTrip(f *testing.F) {
	f.Add([]byte(nil))
	f.Add(sampleCheckpoint().Encode())
	f.Add((&Checkpoint{Version: CheckpointVersion}).Encode())
	f.Add([]byte("JGRC garbage"))
	f.Fuzz(func(t *testing.T, data []byte) {
		cp, err := DecodeCheckpoint(data)
		if err != nil {
			return
		}
		re := cp.Encode()
		if !bytes.Equal(re, data) {
			t.Fatalf("accepted input is not canonical:\n in: %x\nout: %x", data, re)
		}
		cp2, err := DecodeCheckpoint(re)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if !reflect.DeepEqual(cp, cp2) {
			t.Fatal("re-decode diverged")
		}
	})
}

// ckptRun drives one attack engagement (population 10, audio attacker,
// innocent-kill guard) on a freshly booted device, optionally bouncing
// the defender through Checkpoint → Kill → Restore mid-attack. It
// returns the engagement and the defender incarnation that produced it.
func ckptRun(t *testing.T, bounceAtCalls int) (Detection, *Checkpoint) {
	t.Helper()
	dev, err := device.Boot(device.Config{Seed: 4242})
	if err != nil {
		t.Fatal(err)
	}
	cfg := smallCfg()
	cfg.InnocentKillBudget = DefaultInnocentKillBudget
	def, err := New(dev, cfg)
	if err != nil {
		t.Fatal(err)
	}
	sched := workload.NewScheduler(dev)
	if _, err := workload.Population(dev, sched, 10, 2, 2*time.Second); err != nil {
		t.Fatal(err)
	}
	evil, err := dev.Apps().Install("com.evil.app")
	if err != nil {
		t.Fatal(err)
	}
	atk, err := workload.NewAttacker(dev, evil, "audio.startWatchingRoutes")
	if err != nil {
		t.Fatal(err)
	}
	sched.Add(atk)
	var bounceCp *Checkpoint
	bounced := false
	sched.Run(func() bool {
		if bounceAtCalls > 0 && !bounced && atk.Calls() >= bounceAtCalls {
			bounced = true
			bounceCp = def.Checkpoint()
			def.Kill()
			if def, err = Restore(dev, cfg, bounceCp); err != nil {
				t.Fatal(err)
			}
		}
		return len(def.History()) > 0
	}, 400000)
	hist := def.History()
	if len(hist) == 0 {
		t.Fatal("defender never engaged")
	}
	if bounceAtCalls > 0 && !bounced {
		t.Fatal("bounce point never reached")
	}
	return hist[0], bounceCp
}

// TestDefenderCheckpointEquivalence is the crash-safety acceptance
// check: a defender killed mid-attack and restored from its checkpoint
// must reach the same verdict — identical kill set, engagement time and
// ranking — as an uninterrupted defender on the same registry-scenario
// workload (the population-plus-audio-attacker trial the robustness
// sweeps run). Checkpoint() is read-only and Restore replays the exact
// monitor state, so the bounce must be invisible to the simulation.
func TestDefenderCheckpointEquivalence(t *testing.T) {
	control, _ := ckptRun(t, 0)
	// 400 calls ≈ 800 new refs: past the alarm (recording, evidence
	// accumulating), before the engagement at 1200.
	bounced, cp := ckptRun(t, 400)

	if cp == nil {
		t.Fatal("no checkpoint captured")
	}
	// The snapshot must carry real mid-window evidence or the test
	// degenerates to a cold-restart comparison.
	var recording int
	for _, m := range cp.Monitors {
		if m.Recording && len(m.AddTimes) > 0 {
			recording++
		}
	}
	if recording == 0 {
		t.Fatalf("checkpoint has no recording monitor with evidence: %+v", cp.Monitors)
	}

	if !reflect.DeepEqual(control.Killed, bounced.Killed) {
		t.Errorf("kill sets diverged:\n control: %v\n bounced: %v", control.Killed, bounced.Killed)
	}
	if control.EngagedAt != bounced.EngagedAt {
		t.Errorf("EngagedAt diverged: control %v, bounced %v", control.EngagedAt, bounced.EngagedAt)
	}
	if control.AnalysisTime != bounced.AnalysisTime {
		t.Errorf("AnalysisTime diverged: control %v, bounced %v", control.AnalysisTime, bounced.AnalysisTime)
	}
	if !reflect.DeepEqual(control.Scores, bounced.Scores) {
		t.Errorf("rankings diverged:\n control: %+v\n bounced: %+v", control.Scores, bounced.Scores)
	}
}

// TestDefenderAbortStopsRetries pins the cancellation path through the
// evidence-read retry loop: with a persistent read fault, an aborted
// defender gives up after the first failed read instead of burning
// virtual time in backoff, while a non-aborted one retries the full
// budget.
func TestDefenderAbortStopsRetries(t *testing.T) {
	run := func(abort bool) Detection {
		dev, err := device.Boot(device.Config{
			Seed:   9,
			Faults: faults.Config{ReadFailEvery: 1},
		})
		if err != nil {
			t.Fatal(err)
		}
		def, err := New(dev, smallCfg())
		if err != nil {
			t.Fatal(err)
		}
		if abort {
			def.SetAbort(func() bool { return true })
		}
		sched := workload.NewScheduler(dev)
		evil, err := dev.Apps().Install("com.evil.app")
		if err != nil {
			t.Fatal(err)
		}
		atk, err := workload.NewAttacker(dev, evil, "audio.startWatchingRoutes")
		if err != nil {
			t.Fatal(err)
		}
		sched.Add(atk)
		sched.Run(func() bool { return len(def.History()) > 0 }, 400000)
		hist := def.History()
		if len(hist) == 0 {
			t.Fatal("defender never engaged")
		}
		return hist[0]
	}
	patient := run(false)
	if !patient.ReadFailed || patient.ReadRetries == 0 {
		t.Fatalf("patient run: ReadFailed=%v ReadRetries=%d, want failed after retries",
			patient.ReadFailed, patient.ReadRetries)
	}
	aborted := run(true)
	if !aborted.ReadFailed || aborted.ReadRetries != 0 {
		t.Fatalf("aborted run: ReadFailed=%v ReadRetries=%d, want immediate give-up",
			aborted.ReadFailed, aborted.ReadRetries)
	}
}

// TestDefenderKillInert: a killed defender's stale VM hooks must not
// record, charge virtual time, or engage.
func TestDefenderKillInert(t *testing.T) {
	dev, err := device.Boot(device.Config{Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	def, err := New(dev, smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	def.Kill()
	if !def.Dead() {
		t.Fatal("Dead() = false after Kill")
	}
	def.Kill() // idempotent
	sched := workload.NewScheduler(dev)
	evil, err := dev.Apps().Install("com.evil.app")
	if err != nil {
		t.Fatal(err)
	}
	atk, err := workload.NewAttacker(dev, evil, "audio.startWatchingRoutes")
	if err != nil {
		t.Fatal(err)
	}
	sched.Add(atk)
	sched.Run(func() bool { return atk.Calls() >= 2000 }, 400000)
	if n := len(def.History()); n != 0 {
		t.Fatalf("dead defender engaged %d times", n)
	}
	if cp := def.Checkpoint(); len(cp.Monitors) != 0 {
		t.Fatalf("dead defender still holds %d monitors", len(cp.Monitors))
	}
}
