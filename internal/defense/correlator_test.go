package defense

import (
	"reflect"
	"testing"
	"time"

	"repro/internal/art"
	"repro/internal/binder"
	"repro/internal/device"
	"repro/internal/kernel"
)

// correlatorWindows builds several distinct evidence windows against one
// device: different apps, interfaces and interleavings per window, so the
// persistent correlator's bucket reuse is exercised across key sets that
// appear, vanish and return.
func correlatorWindows(t *testing.T) (*Defender, [][]binder.IPCRecord, [][]time.Duration) {
	t.Helper()
	dev, err := device.Boot(device.Config{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	def, err := New(dev, Config{AlarmThreshold: 1 << 20, EngageThreshold: 1 << 21})
	if err != nil {
		t.Fatal(err)
	}
	var adds []time.Duration
	dev.SystemServer().VM().AddJGRHook(func(ev art.JGREvent) {
		if ev.Op == art.OpAdd {
			adds = append(adds, ev.Time)
		}
	})
	evil, err := dev.Apps().Install("com.evil.app")
	if err != nil {
		t.Fatal(err)
	}
	benign, err := dev.Apps().Install("com.benign.chat")
	if err != nil {
		t.Fatal(err)
	}
	clipEvil, err := dev.NewClient(evil, "clipboard")
	if err != nil {
		t.Fatal(err)
	}
	clipBenign, err := dev.NewClient(benign, "clipboard")
	if err != nil {
		t.Fatal(err)
	}
	audioEvil, err := dev.NewClient(evil, "audio")
	if err != nil {
		t.Fatal(err)
	}

	victim := dev.SystemServer().Pid()
	var windows [][]binder.IPCRecord
	var addWindows [][]time.Duration

	capture := func(gen func()) {
		adds = adds[:0]
		gen()
		if _, err := dev.Driver().FlushLog(); err != nil {
			t.Fatal(err)
		}
		all, err := dev.Driver().ReadLog(kernel.SystemUid)
		if err != nil {
			t.Fatal(err)
		}
		var recs []binder.IPCRecord
		for _, r := range all {
			if r.ToPid == victim && kernel.IsAppUid(r.FromUid) {
				recs = append(recs, r)
			}
		}
		if len(recs) == 0 || len(adds) == 0 {
			t.Fatal("window generated no evidence")
		}
		windows = append(windows, recs)
		addWindows = append(addWindows, append([]time.Duration(nil), adds...))
		if err := dev.Driver().TruncateLog(); err != nil {
			t.Fatal(err)
		}
	}

	// Window 1: clipboard flood from the attacker, light benign traffic.
	capture(func() {
		for i := 0; i < 300; i++ {
			if err := clipEvil.Register("addPrimaryClipChangedListener"); err != nil {
				t.Fatal(err)
			}
			if i%10 == 0 {
				if err := clipBenign.Register("addPrimaryClipChangedListener"); err != nil {
					t.Fatal(err)
				}
			}
		}
	})
	// Window 2: a different interface entirely (stale clipboard buckets
	// must not leak into its scores).
	capture(func() {
		for i := 0; i < 200; i++ {
			if err := audioEvil.Register("registerRemoteController"); err != nil {
				t.Fatal(err)
			}
		}
	})
	// Window 3: the clipboard keys return, interleaved with audio.
	capture(func() {
		for i := 0; i < 150; i++ {
			if err := clipEvil.Register("addPrimaryClipChangedListener"); err != nil {
				t.Fatal(err)
			}
			if i%3 == 0 {
				if err := audioEvil.Register("registerRemoteController"); err != nil {
					t.Fatal(err)
				}
			}
			if i%7 == 0 {
				if err := clipBenign.Register("addPrimaryClipChangedListener"); err != nil {
					t.Fatal(err)
				}
			}
		}
	})
	return def, windows, addWindows
}

// TestIncrementalCorrelatorMatchesStateless is the equivalence contract
// behind the poll-path optimization: a persistent correlator fed a
// sequence of windows must produce, for every window, exactly the ranking
// a fresh stateless scorer produces for that window alone — same scores,
// same per-type breakdowns, same order.
func TestIncrementalCorrelatorMatchesStateless(t *testing.T) {
	def, windows, addWindows := correlatorWindows(t)
	var persistent correlator
	for round, recs := range windows {
		got := persistent.scoreRecords(def, recs, addWindows[round], def.cfg.Delta)
		want := def.ScoreWithDelta(recs, addWindows[round], def.cfg.Delta)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("window %d diverged:\nincremental: %+v\n  stateless: %+v", round, got, want)
		}
		if len(got) == 0 {
			t.Fatalf("window %d produced no scores", round)
		}
	}
}

// TestIncrementalCorrelatorRepeatable runs the same window through the
// same persistent correlator twice in a row; bucket reuse must be
// idempotent.
func TestIncrementalCorrelatorRepeatable(t *testing.T) {
	def, windows, addWindows := correlatorWindows(t)
	var c correlator
	first := c.scoreRecords(def, windows[0], addWindows[0], def.cfg.Delta)
	second := c.scoreRecords(def, windows[0], addWindows[0], def.cfg.Delta)
	if !reflect.DeepEqual(first, second) {
		t.Fatalf("rescoring the same window diverged:\n first: %+v\nsecond: %+v", first, second)
	}
}

// TestScoreWithDeltaConcurrentSafe pins the statelessness the Fig. 9
// sweep depends on: concurrent ScoreWithDelta calls over the same window
// must agree with the sequential result. Run under `make race` this also
// proves the scorers share no scratch state.
func TestScoreWithDeltaConcurrentSafe(t *testing.T) {
	def, windows, addWindows := correlatorWindows(t)
	want := def.ScoreWithDelta(windows[0], addWindows[0], def.cfg.Delta)
	results := make([][]AppScore, 8)
	done := make(chan int, len(results))
	for g := range results {
		go func(g int) {
			results[g] = def.ScoreWithDelta(windows[0], addWindows[0], def.cfg.Delta)
			done <- g
		}(g)
	}
	for range results {
		<-done
	}
	for g, got := range results {
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("goroutine %d diverged from sequential result", g)
		}
	}
}
