package defense

import (
	"fmt"
	"testing"

	"repro/internal/device"
	"repro/internal/trace"
)

// TestDefenderRebootStormRecovery drives the defended device through a
// storm of soft reboots: three consecutive covert-channel attacks (§VI —
// broadcast-receiver JGR pinning leaves no binder evidence, so the
// defender engages but cannot attribute) each exhaust system_server, and
// after every recovery the device must come back to the same benign JGR
// baseline inside Fig. 4's [1000, 3000] band, with the journal showing a
// detection before each reboot.
func TestDefenderRebootStormRecovery(t *testing.T) {
	const rounds = 3
	dev, err := device.Boot(device.Config{Seed: 36, ServerVM: artCfg(2600)})
	if err != nil {
		t.Fatal(err)
	}
	def, err := New(dev, Config{AlarmThreshold: 300, EngageThreshold: 900})
	if err != nil {
		t.Fatal(err)
	}
	// The defender is a system service with no journal of its own; give
	// the storm a trace by journaling each engagement.
	def.OnDetection = func(det Detection) {
		dev.Journal().Add(det.EngagedAt, trace.KindDetection, "system_server",
			fmt.Sprintf("killed %v recovered %v", det.Killed, det.Recovered))
	}

	var baselines []int
	for round := 0; round < rounds; round++ {
		app, err := dev.Apps().Install(fmt.Sprintf("com.covert.app%d", round))
		if err != nil {
			t.Fatal(err)
		}
		proc := app.Start()
		limit := dev.SystemServer().VM().MaxGlobal() + 10000
		for i := 0; i < limit && dev.SoftReboots() == round; i++ {
			if err := dev.RegisterBroadcastReceiver(proc); err != nil {
				break // victim aborted mid-registration
			}
		}
		if got := dev.SoftReboots(); got != round+1 {
			t.Fatalf("round %d: soft reboots = %d, want %d", round, got, round+1)
		}
		// Post-recovery baseline: the restarted system_server re-registers
		// its services deterministically.
		baselines = append(baselines, dev.SystemServer().VM().GlobalRefCount())
	}

	// Every round's recovery converges to the same Fig. 4 benign baseline.
	for i, b := range baselines {
		if b < 1000 || b > 3000 {
			t.Errorf("round %d baseline JGR = %d, outside Fig. 4 band [1000, 3000]", i, b)
		}
		if b != baselines[0] {
			t.Errorf("round %d baseline JGR = %d, want %d (identical re-convergence)", i, b, baselines[0])
		}
	}

	// The journal interleaves engagements and reboots: each reboot must be
	// preceded by a detection inside its own round (the defender noticed,
	// engaged, could not attribute the covert channel, and the device went
	// down anyway — the §VI limitation, three times over).
	reboots := dev.Journal().Filter(trace.KindReboot)
	if len(reboots) != rounds {
		t.Fatalf("journal reboots = %d, want %d", len(reboots), rounds)
	}
	detections := dev.Journal().Filter(trace.KindDetection)
	if len(detections) < rounds {
		t.Fatalf("journal detections = %d, want >= %d", len(detections), rounds)
	}
	prevReboot := int64(-1)
	for i, rb := range reboots {
		found := false
		for _, det := range detections {
			if int64(det.T) > prevReboot && det.T <= rb.T {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("round %d: no detection between t=%d and reboot at t=%d", i, prevReboot, int64(rb.T))
		}
		prevReboot = int64(rb.T)
	}

	// The engagements themselves must reflect the covert channel: no
	// binder evidence, so no kill ever hit a covert attacker.
	for _, det := range def.History() {
		for _, k := range det.Killed {
			for r := 0; r < rounds; r++ {
				if k == fmt.Sprintf("com.covert.app%d", r) {
					t.Errorf("covert attacker %s was attributed; the channel should be invisible", k)
				}
			}
		}
	}
}
