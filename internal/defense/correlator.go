package defense

import (
	"fmt"
	"slices"
	"sort"
	"time"

	"repro/internal/binder"
	"repro/internal/kernel"
)

// typeKey identifies one IPC interface type for Algorithm 1: the calling
// app, the target interface (handle+code) and, unless path classification
// is disabled, the observable execution-path signature (§VI). The
// streaming correlator never materializes typeKeys for a window — rows
// are grouped by sorting a permutation over the columnar window — but
// the key and its order remain the contract the reference scorer and the
// differential tests pin the grouping against.
type typeKey struct {
	uid    kernel.Uid
	handle binder.Handle
	code   binder.TxCode
	path   int
}

func typeKeyLess(a, b typeKey) bool {
	if a.uid != b.uid {
		return a.uid < b.uid
	}
	if a.handle != b.handle {
		return a.handle < b.handle
	}
	if a.code != b.code {
		return a.code < b.code
	}
	return a.path < b.path
}

// nameKey caches interface display names per (handle, code) — the only
// fields name resolution depends on, so types differing just by path or
// caller share one lookup.
type nameKey struct {
	handle binder.Handle
	code   binder.TxCode
}

// correlator runs Algorithm 1 (§V-A) over one evidence window in
// streaming, columnar form. The window arrives as a binder.LogColumns
// (struct-of-arrays); scoring sorts an index permutation to group rows
// by interface type, then resolves each type's best-supported delay
// bucket with a flat difference-array sweep instead of per-pair
// segment-tree range-adds. Every scratch buffer is retained between
// calls, so a Defender's poll loop reuses one correlator and scores in
// steady state with only the output-assembly allocations (the returned
// slice and its ByType maps, which escape to the caller). Code that
// needs concurrent or one-shot scoring (the Fig. 9 Δ sweep) uses a fresh
// zero-value correlator per call instead, which is what ScoreWithDelta
// does.
//
// The output contract is unchanged from the segment-tree implementation:
// Score/ScoreWithDelta results are byte-for-byte identical, which the
// differential fuzz and exhaustive small-domain tests pin against the
// retained reference scorer.
type correlator struct {
	adds []time.Duration
	// win backs the rows adapter (scoreRecords): the public Score path
	// still accepts []IPCRecord and columnarizes once into this scratch.
	win binder.LogColumns
	// w is the window being scored, valid only within one score call.
	w       *binder.LogColumns
	usePath bool
	// order is the permutation grouping window rows by (uid, handle,
	// code, path) with times ascending inside each group.
	order  []int32
	sorter orderSorter
	ranker rankSorter

	// Per-type scratch: deduplicated call times with multiplicities and,
	// per deduplicated call, the half-open span of overlapping adds.
	ctimes  []time.Duration
	cweight []int64
	clo     []int32
	chi     []int32
	// diff is the difference array over delay buckets (len domain+1).
	// Outside a sweep it is all zeros; each sweep clears exactly the
	// subrange it touched.
	diff []int64

	// names caches interface display names within a single score call
	// only: caching across engagements would pin stale fallback names
	// when a service restarts mid-run and its handle becomes resolvable.
	names map[nameKey]string
	// scratch accumulates per-uid scores in uid order; the ranked copy
	// handed to the caller is the only per-round allocation.
	scratch []AppScore
}

// orderSorter sorts the row permutation by type then time.
type orderSorter struct{ c *correlator }

func (s *orderSorter) Len() int { return len(s.c.order) }
func (s *orderSorter) Swap(i, j int) {
	o := s.c.order
	o[i], o[j] = o[j], o[i]
}
func (s *orderSorter) Less(i, j int) bool {
	c, w := s.c, s.c.w
	a, b := c.order[i], c.order[j]
	if w.FromUid[a] != w.FromUid[b] {
		return w.FromUid[a] < w.FromUid[b]
	}
	if w.Handle[a] != w.Handle[b] {
		return w.Handle[a] < w.Handle[b]
	}
	if w.Code[a] != w.Code[b] {
		return w.Code[a] < w.Code[b]
	}
	if c.usePath && w.Size[a] != w.Size[b] {
		return w.Size[a] < w.Size[b]
	}
	return w.Time[a] < w.Time[b]
}

// rankSorter orders the accumulated scores by Score descending, uid
// ascending — the ranking contract of Algorithm 1's output.
type rankSorter struct{ c *correlator }

func (s *rankSorter) Len() int { return len(s.c.scratch) }
func (s *rankSorter) Swap(i, j int) {
	sc := s.c.scratch
	sc[i], sc[j] = sc[j], sc[i]
}
func (s *rankSorter) Less(i, j int) bool {
	sc := s.c.scratch
	if sc[i].Score != sc[j].Score {
		return sc[i].Score > sc[j].Score
	}
	return sc[i].Uid < sc[j].Uid
}

// sameType reports whether rows a and b belong to the same interface
// type under the current path-classification mode.
func (c *correlator) sameType(a, b int32) bool {
	w := c.w
	return w.FromUid[a] == w.FromUid[b] &&
		w.Handle[a] == w.Handle[b] &&
		w.Code[a] == w.Code[b] &&
		(!c.usePath || w.Size[a] == w.Size[b])
}

// scoreRecords is the rows adapter: it columnarizes records into the
// correlator's scratch window and scores it. The public Score and
// ScoreWithDelta go through here; the defender's poll loop hands its
// driver-filled LogColumns straight to score instead.
func (c *correlator) scoreRecords(d *Defender, records []binder.IPCRecord, jgrAdds []time.Duration, delta time.Duration) []AppScore {
	if len(records) == 0 || len(jgrAdds) == 0 {
		return nil
	}
	c.win.Reset()
	c.win.Grow(len(records))
	for _, r := range records {
		c.win.Append(r)
	}
	return c.score(d, &c.win, jgrAdds, delta)
}

// score implements Algorithm 1 with an explicit Δ: for every app and
// every IPC interface type the app invoked, accumulate candidate delays
// [JGRTime−IPCTime, JGRTime−IPCTime+Δ] over the bucketed delay axis and
// take the best-supported bucket as that type's count of suspicious
// calls, summing the counts into the app's jgre_score.
//
// The accumulation is a difference-array sweep: each (call, add) pair
// contributes +w at its minimum-delay bucket and −w one past its
// clamped maximum, and a single prefix-sum pass recovers the same
// per-bucket totals — and therefore the same maximum — the segment
// tree's O(log domain) range-adds produced, at O(1) per pair. Calls
// with identical timestamps within a type are deduplicated first and
// carry their multiplicity as the weight w. Two exact early exits skip
// bucketing entirely: a type none of whose calls overlaps any add in
// [call, call+MaxDelay] scores zero, and a type whose candidate
// intervals all share a common bucket (max start − min start ≤ Δ
// buckets) scores its full overlapping-pair count, since every interval
// covers the shared bucket and no bucket can exceed the interval count.
// Inexact prunes (dropping low-scoring types or uids) are deliberately
// absent: every type with a nonzero best is part of the output's ByType
// breakdown, so any such skip would change the result.
func (c *correlator) score(d *Defender, w *binder.LogColumns, jgrAdds []time.Duration, delta time.Duration) []AppScore {
	n := w.Len()
	if n == 0 || len(jgrAdds) == 0 {
		return nil
	}
	c.w = w
	defer func() { c.w = nil }()
	c.usePath = !d.cfg.DisablePathClassification
	if c.names == nil {
		c.names = make(map[nameKey]string)
	} else {
		clear(c.names)
	}

	c.adds = append(c.adds[:0], jgrAdds...)
	slices.Sort(c.adds)
	adds := c.adds

	if cap(c.order) < n {
		c.order = make([]int32, n)
	}
	c.order = c.order[:n]
	for i := range c.order {
		c.order[i] = int32(i)
	}
	if c.sorter.c == nil {
		c.sorter.c = c
		c.ranker.c = c
	}
	sort.Sort(&c.sorter)

	domain := int(d.cfg.MaxDelay/delayBucket) + 2
	if len(c.diff) != domain+1 {
		c.diff = make([]int64, domain+1)
	}
	deltaBuckets := int(delta / delayBucket)

	var st corrStats
	c.scratch = c.scratch[:0]
	for i := 0; i < n; {
		j := i + 1
		for j < n && c.sameType(c.order[i], c.order[j]) {
			j++
		}
		best := c.typeBest(adds, c.order[i:j], d.cfg.MaxDelay, deltaBuckets, domain, &st)
		if best > 0 {
			st.scored++
			row := c.order[i]
			uid := w.FromUid[row]
			if len(c.scratch) == 0 || c.scratch[len(c.scratch)-1].Uid != uid {
				s := AppScore{Uid: uid, ByType: make(map[string]int64)}
				if a := d.dev.Apps().ByUid(uid); a != nil {
					s.Package = a.Package()
				}
				c.scratch = append(c.scratch, s)
			}
			s := &c.scratch[len(c.scratch)-1]
			s.Score += best
			s.ByType[c.nameFor(d, row)] += best
		}
		i = j
	}
	d.met.observeCorrelation(st)

	sort.Sort(&c.ranker)
	out := make([]AppScore, len(c.scratch))
	copy(out, c.scratch)
	// The ByType maps escape with out; drop the scratch's references so
	// retained backing storage cannot pin them past the caller's use.
	clear(c.scratch)
	return out
}

// corrStats is one score call's worth of correlator telemetry, flushed
// to the registry in a single batch.
type corrStats struct {
	scored    uint64 // types contributing a nonzero best
	skipped   uint64 // types with no (call, add) overlap at all
	shortcuts uint64 // types resolved by the tight-span bound, no sweep
	pairs     uint64 // (call, add) pairs enumerated into the sweep
}

// typeBest resolves one interface type's best-supported delay bucket.
// rows is the type's slice of the sorted permutation, so the referenced
// call times are ascending.
func (c *correlator) typeBest(adds []time.Duration, rows []int32, maxDelay time.Duration, deltaBuckets, domain int, st *corrStats) int64 {
	times := c.w.Time

	// Deduplicate identical call timestamps: w identical calls multiply
	// every overlapping add's contribution by w, one range-add's worth of
	// work instead of w.
	c.ctimes = c.ctimes[:0]
	c.cweight = c.cweight[:0]
	for _, row := range rows {
		ct := times[row]
		if k := len(c.ctimes); k > 0 && c.ctimes[k-1] == ct {
			c.cweight[k-1]++
			continue
		}
		c.ctimes = append(c.ctimes, ct)
		c.cweight = append(c.cweight, 1)
	}

	// One binary search finds where the type's add-overlap span begins;
	// both span endpoints then advance monotonically across the sorted
	// call times. Only JGR creations within [ct, ct+MaxDelay] can be
	// effects of a call at ct.
	if cap(c.clo) < len(c.ctimes) {
		c.clo = make([]int32, len(c.ctimes))
		c.chi = make([]int32, len(c.ctimes))
	}
	c.clo = c.clo[:len(c.ctimes)]
	c.chi = c.chi[:len(c.ctimes)]
	lo := sort.Search(len(adds), func(i int) bool { return adds[i] >= c.ctimes[0] })
	hi := lo
	var total int64
	minStart, maxStart := domain, -1
	for k, ct := range c.ctimes {
		for lo < len(adds) && adds[lo] < ct {
			lo++
		}
		if hi < lo {
			hi = lo
		}
		for hi < len(adds) && adds[hi] <= ct+maxDelay {
			hi++
		}
		c.clo[k], c.chi[k] = int32(lo), int32(hi)
		if hi == lo {
			continue
		}
		total += c.cweight[k] * int64(hi-lo)
		if s := int((adds[lo] - ct) / delayBucket); s < minStart {
			minStart = s
		}
		if s := int((adds[hi-1] - ct) / delayBucket); s > maxStart {
			maxStart = s
		}
	}
	if total == 0 {
		st.skipped++
		return 0
	}
	// Tight span: every candidate interval [start, start+Δbuckets]
	// contains the bucket min(maxStart, domain−1), so the best bucket
	// carries all pairs and the sweep is redundant.
	if maxStart-minStart <= deltaBuckets {
		st.shortcuts++
		return total
	}

	// Difference-array sweep over the touched bucket subrange. Endpoint
	// clamping matches the segment tree's domain clamp.
	for k, ct := range c.ctimes {
		w := c.cweight[k]
		for p := c.clo[k]; p < c.chi[k]; p++ {
			s := int((adds[p] - ct) / delayBucket)
			c.diff[s] += w
			e := s + deltaBuckets
			if e > domain-1 {
				e = domain - 1
			}
			c.diff[e+1] -= w
		}
		st.pairs += uint64(c.chi[k] - c.clo[k])
	}
	maxEnd := maxStart + deltaBuckets
	if maxEnd > domain-1 {
		maxEnd = domain - 1
	}
	var best, run int64
	for p := minStart; p <= maxEnd; p++ {
		run += c.diff[p]
		if run > best {
			best = run
		}
	}
	clear(c.diff[minStart : maxEnd+2])
	return best
}

// nameFor resolves the display name for row's interface, cached per
// (handle, code) within the current score call.
func (c *correlator) nameFor(d *Defender, row int32) string {
	k := nameKey{handle: c.w.Handle[row], code: c.w.Code[row]}
	if name, ok := c.names[k]; ok {
		return name
	}
	var name string
	if t, resolved := d.dev.Resolve(c.w.Record(int(row))); resolved {
		name = t.FullName()
	} else {
		name = fmt.Sprintf("handle%d.code%d", k.handle, k.code)
	}
	c.names[k] = name
	return name
}
