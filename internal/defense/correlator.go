package defense

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/binder"
	"repro/internal/kernel"
	"repro/internal/segtree"
)

// typeKey identifies one IPC interface type for Algorithm 1: the calling
// app, the target interface (handle+code) and, unless path classification
// is disabled, the observable execution-path signature (§VI).
type typeKey struct {
	uid    kernel.Uid
	handle binder.Handle
	code   binder.TxCode
	path   int
}

func typeKeyLess(a, b typeKey) bool {
	if a.uid != b.uid {
		return a.uid < b.uid
	}
	if a.handle != b.handle {
		return a.handle < b.handle
	}
	if a.code != b.code {
		return a.code < b.code
	}
	return a.path < b.path
}

// typeCalls is one interface type's call-time bucket. round stamps which
// scoring pass last touched it, so stale buckets from earlier windows cost
// nothing to skip and their storage is reused the next time the same
// (app, interface, path) shows up.
type typeCalls struct {
	times []time.Duration
	round uint64
}

// correlator runs Algorithm 1 (§V-A) over one evidence window, reusing
// its delay buckets, key scratch, sorted-adds buffer and segment tree
// across calls. A Defender keeps one correlator for its poll loop, making
// the per-engagement scoring allocation-free in steady state; code that
// needs concurrent or one-shot scoring (the Fig. 9 Δ sweep) uses a fresh
// zero-value correlator per call instead, which is what ScoreWithDelta
// does.
type correlator struct {
	adds  []time.Duration
	keys  []typeKey
	calls map[typeKey]*typeCalls
	// names caches interface display names within a single score call
	// only: caching across engagements would pin stale fallback names
	// when a service restarts mid-run and its handle becomes resolvable.
	names map[typeKey]string
	tree  *segtree.Tree
	round uint64
}

// score implements Algorithm 1 with an explicit Δ: for every app and
// every IPC interface type the app invoked, accumulate candidate delays
// [JGRTime−IPCTime, JGRTime−IPCTime+Δ] on a segment tree over the delay
// axis, take the best-supported bucket as that type's count of suspicious
// calls, and sum the counts into the app's jgre_score. The output is
// byte-for-byte the ranking the non-incremental implementation produced:
// the bucket fill, key order, tree updates and final sort are identical.
func (c *correlator) score(d *Defender, records []binder.IPCRecord, jgrAdds []time.Duration, delta time.Duration) []AppScore {
	if len(records) == 0 || len(jgrAdds) == 0 {
		return nil
	}
	c.round++
	if c.calls == nil {
		c.calls = make(map[typeKey]*typeCalls)
	}
	if c.names == nil {
		c.names = make(map[typeKey]string)
	} else {
		clear(c.names)
	}

	c.adds = append(c.adds[:0], jgrAdds...)
	sort.Slice(c.adds, func(i, j int) bool { return c.adds[i] < c.adds[j] })
	adds := c.adds

	c.keys = c.keys[:0]
	for _, r := range records {
		k := typeKey{uid: r.FromUid, handle: r.Handle, code: r.Code}
		if !d.cfg.DisablePathClassification {
			// §VI: calls of the same IPC method travelling different code
			// paths carry different argument shapes; the transaction size
			// is the observable path signature.
			k.path = r.Size
		}
		tc, ok := c.calls[k]
		if !ok {
			tc = &typeCalls{}
			c.calls[k] = tc
		}
		if tc.round != c.round {
			tc.round = c.round
			tc.times = tc.times[:0]
			c.keys = append(c.keys, k)
		}
		tc.times = append(tc.times, r.Time)
		if _, ok := c.names[k]; !ok {
			if t, resolved := d.dev.Resolve(r); resolved {
				c.names[k] = t.FullName()
			} else {
				c.names[k] = fmt.Sprintf("handle%d.code%d", r.Handle, r.Code)
			}
		}
	}
	sort.Slice(c.keys, func(i, j int) bool { return typeKeyLess(c.keys[i], c.keys[j]) })

	domain := int(d.cfg.MaxDelay/delayBucket) + 2
	if c.tree == nil || c.tree.Len() != domain {
		c.tree = segtree.New(domain)
	}
	deltaBuckets := int(delta / delayBucket)
	scores := make(map[kernel.Uid]*AppScore)
	for _, k := range c.keys {
		c.tree.Reset()
		for _, ct := range c.calls[k].times {
			// Only JGR creations within [ct, ct+MaxDelay] can be effects
			// of this call.
			lo := sort.Search(len(adds), func(i int) bool { return adds[i] >= ct })
			for i := lo; i < len(adds) && adds[i] <= ct+d.cfg.MaxDelay; i++ {
				minDelay := int((adds[i] - ct) / delayBucket)
				c.tree.Add(minDelay, minDelay+deltaBuckets, 1)
			}
		}
		best := c.tree.GlobalMax()
		if best == 0 {
			continue
		}
		s, ok := scores[k.uid]
		if !ok {
			s = &AppScore{Uid: k.uid, ByType: make(map[string]int64)}
			if a := d.dev.Apps().ByUid(k.uid); a != nil {
				s.Package = a.Package()
			}
			scores[k.uid] = s
		}
		s.Score += best
		s.ByType[c.names[k]] += best
	}

	out := make([]AppScore, 0, len(scores))
	for _, s := range scores {
		out = append(out, *s)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Uid < out[j].Uid
	})
	return out
}
