// Package defense implements the paper's JGRE countermeasure (§V): a
// runtime extension that watches each monitored process's JGR table
// (alarm at 4,000 new entries, defender engagement at 12,000), a binder
// driver log consumed through /proc/jgre_ipc_log, the correlation scoring
// of Algorithm 1 implemented as a streaming columnar sweep over the
// bucketed delay axis, and an LMK-style
// recovery loop that force-stops the top-scoring apps until the victim's
// JGR count returns to normal.
package defense

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/art"
	"repro/internal/binder"
	"repro/internal/catalog"
	"repro/internal/device"
	"repro/internal/kernel"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// Defaults from the paper.
const (
	// DefaultAlarmThreshold is the new-JGR count at which the runtime
	// extension starts recording event times (§V-B: "Once the number of
	// created JGR entries exceeds 4,000, it starts to record").
	DefaultAlarmThreshold = 4000
	// DefaultEngageThreshold is the new-JGR count at which the runtime
	// notifies the JGRE Defender (§V-B: "delivers the information to
	// JGRE defender when the number of new JGR entries exceeds 12,000").
	DefaultEngageThreshold = 12000
	// DefaultDelta is Δ, the bounded deviation between an IPC call and
	// its JGR creation (§V-C: "we set Δ to the average value of all
	// system services, i.e., 1.8 ms").
	DefaultDelta = 1800 * time.Microsecond
	// DefaultMaxDelay bounds the plausible IPC→JGR delay considered by
	// the correlator; pairs further apart cannot be cause and effect.
	DefaultMaxDelay = 250 * time.Millisecond
	// delayBucket is the granularity of the candidate-delay axis the
	// segment tree covers.
	delayBucket = 100 * time.Microsecond
	// recordCost is the per-event overhead of JGR recording once past
	// the alarm threshold (§V-D2 measures ≈1 µs).
	recordCost = time.Microsecond

	// DefaultLogReadRetries / DefaultRetryBackoff govern the hardened
	// evidence read: a failed /proc/jgre_ipc_log read is retried with
	// doubling (virtual-time) backoff before the defender falls back to
	// evidence-free attribution.
	DefaultLogReadRetries = 3
	DefaultRetryBackoff   = 2 * time.Millisecond
	// DefaultMinCoverage is the fraction of generated log records that
	// must survive to the defender for Algorithm 1's ranking to be
	// trusted; below it the defender blends in per-uid retained-ref
	// attribution from the driver.
	DefaultMinCoverage = 0.35
	// DefaultInnocentKillBudget is the low-confidence kill bound the
	// robustness scenarios configure. The guard itself is opt-in
	// (Config.InnocentKillBudget zero leaves the paper's unbounded kill
	// loop intact) so the faithful-reproduction scenarios are unchanged.
	DefaultInnocentKillBudget = 2
	// maxAnalysisRestarts bounds how often a mid-analysis defender
	// failure is retried before giving up on correlation scoring.
	maxAnalysisRestarts = 2
)

// Config parameterizes a Defender. Zero values select the paper's
// defaults.
type Config struct {
	AlarmThreshold  int
	EngageThreshold int
	Delta           time.Duration
	MaxDelay        time.Duration
	// AnalysisCostBase/PerRecord charge virtual time for running
	// Algorithm 1, reproducing the §V-D1 response delays. Zero selects
	// 50 ms + 60 µs/record (scaled by the interface's AnalysisWeight).
	AnalysisCostBase      time.Duration
	AnalysisCostPerRecord time.Duration
	// KeepRaw stores the raw record and JGR-add-time windows on each
	// Detection, letting experiments re-run Algorithm 1 with different Δ
	// values (Fig. 9's sweep).
	KeepRaw bool
	// DisablePathClassification turns off the §VI countermeasure against
	// multi-path attacks (classifying an interface's calls by observable
	// execution path — here the transaction signature/size — before
	// scoring, then summing the per-path maxima). Used by the ablation
	// study only.
	DisablePathClassification bool

	// Degradation handling. Zero values select the defaults above;
	// negative values disable the mechanism.

	// LogReadRetries is how many times a failed evidence read is
	// retried (0 → DefaultLogReadRetries, negative → no retries).
	LogReadRetries int
	// RetryBackoff is the virtual-time wait before the first retry,
	// doubling per attempt (0 → DefaultRetryBackoff).
	RetryBackoff time.Duration
	// MinCoverage is the delivered/generated record fraction below
	// which the defender blends per-uid retained-ref attribution into
	// its ranking (0 → DefaultMinCoverage, negative → fallback off).
	MinCoverage float64
	// InnocentKillBudget bounds force-stops of low-confidence
	// candidates — scores an order of magnitude under the leader — per
	// engagement. 0 keeps the paper's unbounded kill loop; positive
	// allows that many low-confidence kills; negative allows none.
	InnocentKillBudget int
	// DisableAdaptiveDelta turns off Δ widening under measured
	// timestamp jitter.
	DisableAdaptiveDelta bool
}

func (c Config) withDefaults() Config {
	if c.AlarmThreshold == 0 {
		c.AlarmThreshold = DefaultAlarmThreshold
	}
	if c.EngageThreshold == 0 {
		c.EngageThreshold = DefaultEngageThreshold
	}
	if c.Delta == 0 {
		c.Delta = DefaultDelta
	}
	if c.MaxDelay == 0 {
		c.MaxDelay = DefaultMaxDelay
	}
	if c.AnalysisCostBase == 0 {
		c.AnalysisCostBase = 50 * time.Millisecond
	}
	if c.AnalysisCostPerRecord == 0 {
		c.AnalysisCostPerRecord = 60 * time.Microsecond
	}
	if c.LogReadRetries == 0 {
		c.LogReadRetries = DefaultLogReadRetries
	}
	if c.RetryBackoff == 0 {
		c.RetryBackoff = DefaultRetryBackoff
	}
	if c.MinCoverage == 0 {
		c.MinCoverage = DefaultMinCoverage
	}
	return c
}

// AppScore is one app's Algorithm-1 result: the number of suspicious IPC
// calls supporting a consistent delay hypothesis, summed over interface
// types.
type AppScore struct {
	Uid     kernel.Uid
	Package string
	// Score is the jgre_score: Σ over IPC types of the best-supported
	// delay bucket's count.
	Score int64
	// ByType breaks the score down per interface ("service.method").
	ByType map[string]int64
}

// Detection describes one defender engagement.
type Detection struct {
	Victim       string
	VictimPid    kernel.Pid
	EngagedAt    time.Duration
	AnalysisTime time.Duration
	Records      int
	Scores       []AppScore // descending by score
	Killed       []string   // packages force-stopped, in order
	Recovered    bool
	// RawRecords/RawAddTimes are kept only when Config.KeepRaw is set.
	RawRecords  []binder.IPCRecord
	RawAddTimes []time.Duration

	// Degradation diagnostics. On the paper's lossless chain these are
	// ReadRetries=0, ReadFailed=false, AnalysisRestarts=0,
	// DroppedRecords=0, Coverage=1, EffectiveDelta=Config.Delta,
	// FallbackUsed=false, GuardStops=0.

	// ReadRetries is how many evidence-read retries this engagement
	// needed; ReadFailed marks the read never succeeding.
	ReadRetries int
	ReadFailed  bool
	// AnalysisRestarts counts mid-analysis failures that were retried.
	AnalysisRestarts int
	// DroppedRecords is how many driver log records were lost (drop
	// faults + ring overflow) in this engagement's window; Coverage is
	// the delivered/generated fraction for the same window.
	DroppedRecords uint64
	Coverage       float64
	// EffectiveDelta is the Δ Algorithm 1 actually ran with, after
	// adaptive widening under measured timestamp jitter.
	EffectiveDelta time.Duration
	// FallbackUsed marks that per-uid retained-ref attribution was
	// blended into Scores; Correlation then preserves the pure
	// Algorithm-1 ranking (nil when correlation itself failed).
	FallbackUsed bool
	Correlation  []AppScore
	// GuardStops counts kill candidates skipped by the innocent-kill
	// guard after its budget was exhausted.
	GuardStops int
}

// Defender is the JGRE Defender system service.
type Defender struct {
	dev *device.Device
	cfg Config

	monitors map[kernel.Pid]*monitor
	history  []Detection
	// lastStats is the driver's telemetry counters at the end of the
	// previous engagement, delimiting the current evidence window.
	lastStats binder.LogStats
	// corr is the poll loop's incremental correlator: respond() reuses
	// its sorted window permutation, difference array and scratch
	// buffers across engagements. Only the single-goroutine monitor path
	// may use it; the public Score/ScoreWithDelta stay stateless for
	// concurrent callers.
	corr correlator
	// evid is the poll loop's columnar evidence window, filled straight
	// from the driver's flushed store each engagement and reused across
	// windows so the steady-state read allocates nothing.
	evid binder.LogColumns
	// corrRounds counts completed corr.score runs; rounds past the first
	// are correlator-reuse hits (the buckets/segtree were recycled).
	corrRounds uint64
	// met holds the defender's instrument handles on the device registry.
	met defenderMetrics
	// OnDetection, if set, observes each engagement after recovery.
	OnDetection func(Detection)
	// OnCheckpoint, if set, observes the poll-window-boundary checkpoint
	// written at the end of each engagement — the crash-safe state a
	// restarted defender resumes from (see Restore).
	OnCheckpoint func(*Checkpoint)

	// dead marks a killed defender (see Kill): VM hooks cannot be
	// removed, so the stale monitors' onJGR callbacks go inert through
	// this flag instead.
	dead bool
	// abort, if set, is polled during long defender waits (evidence-read
	// retry backoff) so a cancelled scenario context stops the poll loop
	// promptly instead of burning the full retry schedule.
	abort func() bool
	// lastDelta is the effective Δ of the most recent engagement — the
	// adaptive-Δ state carried across defender restarts.
	lastDelta time.Duration
	// restored carries the health counters of a pre-crash incarnation so
	// cumulative telemetry survives a defender bounce.
	restored device.DefenderHealth
}

// defenderMetrics are the defense layer's instruments: engagement
// counters, degradation ledgers, last-window coverage and the
// per-phase virtual-time histograms behind the poll-window spans.
type defenderMetrics struct {
	engagements      *telemetry.Counter
	kills            *telemetry.Counter
	fallbacks        *telemetry.Counter
	readRetries      *telemetry.Counter
	analysisRestarts *telemetry.Counter
	guardStops       *telemetry.Counter
	corrReuse        *telemetry.Counter
	coverage         *telemetry.Gauge

	// Correlator counters: how Algorithm 1's streaming sweep spent its
	// work — types scored, types early-exited before bucketing, and the
	// (call, add) pairs that did reach the difference-array sweep.
	corrTypesScored  *telemetry.Counter
	corrTypesSkipped *telemetry.Counter
	corrShortcuts    *telemetry.Counter
	corrPairsSwept   *telemetry.Counter

	checkpoints *telemetry.Counter
	restores    *telemetry.Counter

	phaseRead      *telemetry.Histogram
	phaseCorrelate *telemetry.Histogram
	phaseScore     *telemetry.Histogram
	phaseDecide    *telemetry.Histogram
}

func newDefenderMetrics(reg *telemetry.Registry) defenderMetrics {
	phase := func(name string) *telemetry.Histogram {
		return reg.Histogram(fmt.Sprintf("jgre_defender_phase_seconds{phase=%q}", name),
			"Virtual-time spent per poll-window phase.", nil)
	}
	return defenderMetrics{
		engagements: reg.Counter("jgre_defender_engagements_total",
			"Defender engagements (poll windows that ran Algorithm 1)."),
		kills: reg.Counter("jgre_defender_kills_total",
			"Apps force-stopped by the recovery loop."),
		fallbacks: reg.Counter("jgre_defender_fallbacks_total",
			"Engagements that blended in retained-ref fallback attribution."),
		readRetries: reg.Counter("jgre_defender_read_retries_total",
			"Evidence-read retries across all engagements."),
		analysisRestarts: reg.Counter("jgre_defender_analysis_restarts_total",
			"Mid-analysis failures that were retried."),
		guardStops: reg.Counter("jgre_defender_guard_stops_total",
			"Kill candidates skipped by the innocent-kill guard."),
		corrReuse: reg.Counter("jgre_defender_correlator_reuse_total",
			"Poll windows scored on recycled correlator state."),
		corrTypesScored: reg.Counter("jgre_defender_correlator_types_scored_total",
			"Interface types whose best-supported delay bucket contributed a nonzero score."),
		corrTypesSkipped: reg.Counter("jgre_defender_correlator_types_skipped_total",
			"Interface types early-exited with no (call, JGR-add) pair in the delay window."),
		corrShortcuts: reg.Counter("jgre_defender_correlator_span_shortcuts_total",
			"Interface types resolved by the tight-span bound without a bucket sweep."),
		corrPairsSwept: reg.Counter("jgre_defender_correlator_bucket_pairs_total",
			"(call, JGR-add) pairs enumerated into the difference-array sweep."),
		checkpoints: reg.Counter("jgre_defender_checkpoints_total",
			"Poll-window-boundary checkpoints written."),
		restores: reg.Counter("jgre_defender_restores_total",
			"Defender restarts that resumed from a checkpoint."),
		coverage: reg.Gauge("jgre_defender_coverage",
			"Delivered/generated record fraction of the latest engagement window."),
		phaseRead:      phase("read"),
		phaseCorrelate: phase("correlate"),
		phaseScore:     phase("score"),
		phaseDecide:    phase("decide"),
	}
}

// observeCorrelation flushes one score call's correlator stats. The
// instruments are nil only on a zero-value Defender, which New never
// produces; the guard keeps hand-rolled test defenders safe.
func (m *defenderMetrics) observeCorrelation(st corrStats) {
	if m.corrTypesScored == nil {
		return
	}
	m.corrTypesScored.Add(st.scored)
	m.corrTypesSkipped.Add(st.skipped)
	m.corrShortcuts.Add(st.shortcuts)
	m.corrPairsSwept.Add(st.pairs)
}

// monitor is the per-process runtime extension.
type monitor struct {
	d         *Defender
	proc      *kernel.Process
	baseline  int
	recording bool
	engaged   bool
	addTimes  []time.Duration
	// responding guards against re-entrant engagement while the defender
	// is already killing apps for this victim.
	responding bool
}

// New creates a defender on the device, enables IPC logging in the binder
// driver, and attaches the runtime extension to every system host process
// and published app-service owner. It re-attaches automatically after
// soft reboots.
func New(dev *device.Device, cfg Config) (*Defender, error) {
	d := &Defender{dev: dev, cfg: cfg.withDefaults(), monitors: make(map[kernel.Pid]*monitor)}
	if err := dev.Driver().EnableIPCLogging(); err != nil {
		return nil, fmt.Errorf("defense: enabling IPC logging: %w", err)
	}
	d.met = newDefenderMetrics(dev.Metrics())
	dev.SetDefenderHealth(d.health)
	d.attachAll()
	dev.OnReboot(func(string) { d.attachAll() })
	dev.OnServiceRestart(func(string, string) { d.attachAll() })
	return d, nil
}

// SetAbort installs a cancellation probe polled during long waits
// (evidence-read retry backoff): once it returns true the defender
// stops retrying and degrades to fallback attribution immediately,
// which is what lets a cancelled jgre-run shard abort mid-backoff.
func (d *Defender) SetAbort(fn func() bool) { d.abort = fn }

func (d *Defender) aborted() bool { return d.abort != nil && d.abort() }

// health is the device.Stats provider: cumulative degradation counters
// plus the most recent engagement's coverage/fallback verdict. The
// restored base carries a pre-crash incarnation's counters across a
// defender bounce.
func (d *Defender) health() device.DefenderHealth {
	h := d.restored
	h.Detections += len(d.history)
	for _, det := range d.history {
		h.ReadRetries += det.ReadRetries
		h.AnalysisRestarts += det.AnalysisRestarts
		h.GuardStops += det.GuardStops
	}
	if n := len(d.history); n > 0 {
		h.Coverage = d.history[n-1].Coverage
		h.FallbackUsed = d.history[n-1].FallbackUsed
	}
	return h
}

// attachAll monitors system_server, the dedicated service hosts and the
// app-service owner processes.
func (d *Defender) attachAll() {
	if d.dead {
		return
	}
	d.Monitor(d.dev.SystemServer())
	for _, name := range d.dev.AppServices().Names() {
		if svc := d.dev.AppService(name); svc != nil {
			if p := svc.Owner().Proc(); p != nil {
				d.Monitor(p)
			}
		}
	}
}

// Monitor attaches the runtime extension to a process. Idempotent per
// process instance.
func (d *Defender) Monitor(proc *kernel.Process) {
	if d.dead || proc == nil || !proc.Alive() {
		return
	}
	if _, ok := d.monitors[proc.Pid()]; ok {
		return
	}
	m := &monitor{d: d, proc: proc, baseline: proc.VM().GlobalRefCount()}
	d.monitors[proc.Pid()] = m
	proc.VM().AddJGRHook(m.onJGR)
	proc.NotifyDeath(func(p *kernel.Process) { delete(d.monitors, p.Pid()) })
}

// Monitored reports whether the process currently has a runtime monitor.
func (d *Defender) Monitored(pid kernel.Pid) bool {
	_, ok := d.monitors[pid]
	return ok
}

// History returns all detections so far.
func (d *Defender) History() []Detection {
	out := make([]Detection, len(d.history))
	copy(out, d.history)
	return out
}

// checkpointBoundary is how many recorded events accumulate between
// intra-window checkpoint flushes. Counting events (not virtual time)
// keeps the boundary deterministic and free when no OnCheckpoint
// observer is installed.
const checkpointBoundary = 64

// onJGR is the runtime-extension hook. The dead check comes before
// everything — including the recordCost clock advance — because VM
// hooks cannot be unregistered: a killed defender's stale hooks must be
// completely inert or they would double-charge virtual time next to the
// restored incarnation's live hooks.
func (m *monitor) onJGR(ev art.JGREvent) {
	if m.d.dead || !m.proc.Alive() {
		return
	}
	net := ev.Count - m.baseline
	if net < 0 {
		// The table shrank below the attach-time baseline (mass
		// releases); track the lower level.
		m.baseline = ev.Count
		net = 0
	}
	cfg := m.d.cfg
	if !m.recording && net > cfg.AlarmThreshold {
		m.recording = true
	}
	if m.recording && ev.Op == art.OpAdd {
		// §V-D2: recording costs ≈1 µs per operation past the alarm.
		m.d.dev.Clock().Advance(recordCost)
		m.addTimes = append(m.addTimes, ev.Time)
		// Poll-window boundary inside a recording window: every
		// checkpointBoundary events the accumulated evidence is flushed, so
		// a warm-restored defender resumes mid-window instead of
		// re-baselining at the attack-inflated count.
		if m.d.OnCheckpoint != nil && len(m.addTimes)%checkpointBoundary == 0 {
			m.d.met.checkpoints.Inc()
			m.d.OnCheckpoint(m.d.Checkpoint())
		}
	}
	if m.recording && !m.engaged && !m.responding && net > cfg.EngageThreshold {
		m.engaged = true
		m.respond()
	}
	if m.recording && net <= cfg.AlarmThreshold/2 {
		// Pressure receded on its own (e.g. the offender died).
		m.reset()
	}
}

// reset re-arms the monitor around the current table size.
func (m *monitor) reset() {
	m.baseline = m.proc.VM().GlobalRefCount()
	m.recording = false
	m.engaged = false
	m.addTimes = nil
}

// respond runs Algorithm 1 and the recovery loop for this victim,
// degrading gracefully when the telemetry chain misbehaves: retried
// evidence reads, skew correction and Δ widening on jittered
// timestamps, bounded analysis restarts, and retained-ref fallback
// attribution when too much evidence is missing.
func (m *monitor) respond() {
	m.responding = true
	defer func() { m.responding = false }()
	d := m.d
	det := Detection{
		Victim:         m.proc.Name(),
		VictimPid:      m.proc.Pid(),
		EngagedAt:      d.dev.Clock().Now(),
		Coverage:       1,
		EffectiveDelta: d.cfg.Delta,
	}

	err := d.readWindowWithRetry(&det, m.proc.Pid())
	// Phase marks for the poll-window span, all in virtual time: a phase
	// that advanced no virtual time honestly measures zero (the in-memory
	// score step, most decide steps).
	tRead := d.dev.Clock().Now()
	tCorrelate, tScore := tRead, tRead

	// Window telemetry health: what fraction of the records the driver
	// generated since the last engagement actually survived to the file.
	stats := d.dev.Driver().LogStats()
	if gen := stats.Seq - d.lastStats.Seq; gen > 0 {
		delivered := stats.Delivered() - d.lastStats.Delivered()
		det.DroppedRecords = gen - delivered
		det.Coverage = float64(delivered) / float64(gen)
	}

	scored := false
	if err == nil {
		w := &d.evid
		det.Records = w.Len()
		correctSkew(w, det.EngagedAt)
		det.EffectiveDelta = d.effectiveDelta(w)
		start := d.dev.Clock().Now()
		d.chargeAnalysis(w)
		survived := d.surviveAnalysisFaults(&det)
		tCorrelate = d.dev.Clock().Now()
		if survived {
			if d.corrRounds > 0 {
				d.met.corrReuse.Inc()
			}
			det.Scores = d.corr.score(d, w, m.addTimes, det.EffectiveDelta)
			d.corrRounds++
			scored = true
		}
		tScore = d.dev.Clock().Now()
		det.AnalysisTime = d.dev.Clock().Now() - start
		if d.cfg.KeepRaw {
			det.RawRecords = w.Rows(nil)
			det.RawAddTimes = append([]time.Duration(nil), m.addTimes...)
		}
	} else {
		det.ReadFailed = true
	}

	// Fallback attribution: when the evidence was unreadable, analysis
	// kept dying, or too little of the stream survived, the correlation
	// ranking cannot be trusted on its own — blend in the driver's
	// ground-truth view of who is pinning the victim's JGR table.
	if d.cfg.MinCoverage > 0 && (!scored || det.Coverage < d.cfg.MinCoverage) {
		det.Correlation = det.Scores
		det.Scores = d.fallbackScores(m.proc.Pid(), det.Correlation, det.Coverage, scored)
		det.FallbackUsed = true
	}

	// Recovery: force-stop top-ranked apps until the victim's table is
	// back under the alarm threshold (§V-A phase 3). Death recipients
	// release the killed apps' retained entries synchronously. The
	// innocent-kill guard bounds how many low-confidence candidates —
	// scores an order of magnitude under the leader — may be stopped.
	lowBudget := d.cfg.InnocentKillBudget // >0 bounded, 0 unbounded, <0 none
	guarded := lowBudget != 0
	if lowBudget < 0 {
		lowBudget = 0
	}
	var top int64
	if len(det.Scores) > 0 {
		top = det.Scores[0].Score
	}
	for _, s := range det.Scores {
		if m.proc.VM().GlobalRefCount()-m.baseline <= d.cfg.AlarmThreshold {
			break
		}
		lowConfidence := s.Score*10 < top
		if lowConfidence && guarded && lowBudget == 0 {
			det.GuardStops++
			continue
		}
		app := d.dev.Apps().ByUid(s.Uid)
		if app == nil || !app.Running() {
			continue
		}
		app.ForceStop("jgre-defender")
		det.Killed = append(det.Killed, s.Package)
		if lowConfidence && guarded {
			lowBudget--
		}
	}
	det.Recovered = m.proc.VM().GlobalRefCount()-m.baseline <= d.cfg.AlarmThreshold
	if m.proc.Alive() {
		m.reset()
	}
	_ = d.dev.Driver().TruncateLog()
	d.lastStats = d.dev.Driver().LogStats()
	d.lastDelta = det.EffectiveDelta
	d.history = append(d.history, det)

	end := d.dev.Clock().Now()
	d.met.engagements.Inc()
	d.met.kills.Add(uint64(len(det.Killed)))
	d.met.readRetries.Add(uint64(det.ReadRetries))
	d.met.analysisRestarts.Add(uint64(det.AnalysisRestarts))
	d.met.guardStops.Add(uint64(det.GuardStops))
	if det.FallbackUsed {
		d.met.fallbacks.Inc()
	}
	d.met.coverage.Set(det.Coverage)
	phases := []trace.Phase{
		{Name: "read", D: tRead - det.EngagedAt},
		{Name: "correlate", D: tCorrelate - tRead},
		{Name: "score", D: tScore - tCorrelate},
		{Name: "decide", D: end - tScore},
	}
	d.met.phaseRead.Observe(phases[0].D.Seconds())
	d.met.phaseCorrelate.Observe(phases[1].D.Seconds())
	d.met.phaseScore.Observe(phases[2].D.Seconds())
	d.met.phaseDecide.Observe(phases[3].D.Seconds())
	d.dev.Journal().AddSpan(trace.Span{
		Name:   "defender.poll",
		Start:  det.EngagedAt,
		End:    end,
		Phases: phases,
	})
	// Flight-recorder spans for the engagement. respond() runs
	// synchronously inside the AddGlobalRef that crossed the threshold,
	// inside the service handler — so the recorder's live context IS the
	// causal chain of the transaction that tripped the defender, and the
	// window/score/decision spans attach under it.
	if rec := d.dev.Recorder(); rec.Enabled() {
		ctxTrace, ctxSpan, ctxUid := rec.Context()
		pid := int32(m.proc.Pid())
		win := rec.NextSpanID()
		var topScore int64
		if len(det.Scores) > 0 {
			topScore = det.Scores[0].Score
		}
		rec.Emit(trace.SpanRecord{
			Trace: ctxTrace, ID: win, Parent: ctxSpan, Kind: trace.SpanDefenderWindow,
			Start: det.EngagedAt, End: end, Pid: pid, Uid: ctxUid, Val: int64(det.Records),
		})
		rec.Emit(trace.SpanRecord{
			Trace: ctxTrace, ID: rec.NextSpanID(), Parent: win, Kind: trace.SpanScore,
			Start: tCorrelate, End: tScore, Pid: pid, Uid: ctxUid, Val: topScore,
		})
		rec.Emit(trace.SpanRecord{
			Trace: ctxTrace, ID: rec.NextSpanID(), Parent: win, Kind: trace.SpanDecision,
			Start: tScore, End: end, Pid: pid, Uid: ctxUid, Val: int64(len(det.Killed)),
		})
		d.dev.DumpFlightRecorder("detection: " + det.Victim)
	}

	if d.OnDetection != nil {
		d.OnDetection(det)
	}
	// Poll-window boundary: the engagement is fully accounted (window
	// delimiter captured, history appended), so this is the consistent
	// cut a restarted defender can resume from.
	if d.OnCheckpoint != nil {
		d.met.checkpoints.Inc()
		d.OnCheckpoint(d.Checkpoint())
	}
}

// readWindowWithRetry reads the victim's evidence window into d.evid,
// retrying failed reads with doubling virtual-time backoff.
func (d *Defender) readWindowWithRetry(det *Detection, victim kernel.Pid) error {
	backoff := d.cfg.RetryBackoff
	for attempt := 0; ; attempt++ {
		err := d.readWindow(victim)
		if err == nil {
			return nil
		}
		if attempt >= d.cfg.LogReadRetries || d.aborted() {
			return err
		}
		det.ReadRetries++
		d.dev.Clock().Advance(backoff)
		backoff *= 2
	}
}

// surviveAnalysisFaults burns injected mid-analysis failures, charging
// each died run's base cost, and reports whether a run completed within
// the restart budget.
func (d *Defender) surviveAnalysisFaults(det *Detection) bool {
	in := d.dev.FaultInjector()
	if in == nil {
		return true
	}
	for attempt := 0; attempt <= maxAnalysisRestarts; attempt++ {
		if !in.AnalysisFault() {
			return true
		}
		det.AnalysisRestarts++
		d.dev.Clock().Advance(d.cfg.AnalysisCostBase)
	}
	return false
}

// correctSkew pulls a clock-skewed evidence window back into the
// defender's time domain: no kernel log record can postdate the read
// that returned it, so any overshoot is skew, and subtracting it
// restores the IPC→JGR delays Algorithm 1 correlates on. The window is
// defender-owned scratch, so the correction shifts its time column in
// place.
func correctSkew(w *binder.LogColumns, now time.Duration) {
	var maxT time.Duration
	for _, t := range w.Time {
		if t > maxT {
			maxT = t
		}
	}
	over := maxT - now
	if over <= 0 {
		return
	}
	for i := range w.Time {
		w.Time[i] -= over
	}
}

// effectiveDelta widens Δ under measured timestamp jitter. The log is
// written in sequence order on one monotonic clock, so any adjacent
// time inversion is pure timestamp noise; the largest inversion bounds
// (twice) the per-record perturbation, and widening Δ by it keeps the
// true delay inside the correlation window. On a healthy chain the
// measurement is zero and Δ is untouched.
func (d *Defender) effectiveDelta(w *binder.LogColumns) time.Duration {
	if d.cfg.DisableAdaptiveDelta {
		return d.cfg.Delta
	}
	var inversion time.Duration
	for i := 1; i < w.Len(); i++ {
		if w.Seq[i] > w.Seq[i-1] {
			if back := w.Time[i-1] - w.Time[i]; back > inversion {
				inversion = back
			}
		}
	}
	if inversion == 0 {
		return d.cfg.Delta
	}
	eff := d.cfg.Delta + 2*inversion
	if eff > d.cfg.MaxDelay {
		eff = d.cfg.MaxDelay
	}
	return eff
}

// fallbackScores builds the degraded ranking: the driver's per-uid
// retained-reference attribution (ground truth about who is pinning the
// victim's table right now), blended with whatever correlation evidence
// survived, weighted by its coverage. With no usable correlation the
// ranking is attribution alone.
func (d *Defender) fallbackScores(victim kernel.Pid, corr []AppScore, coverage float64, scored bool) []AppScore {
	attr := d.dev.Driver().AttributeRetainedRefs(victim)
	merged := make(map[kernel.Uid]*AppScore, len(attr))
	for uid, n := range attr {
		s := &AppScore{Uid: uid, Score: int64(n), ByType: map[string]int64{"driver.retained_refs": int64(n)}}
		if a := d.dev.Apps().ByUid(uid); a != nil {
			s.Package = a.Package()
		}
		merged[uid] = s
	}
	if scored && coverage > 0 {
		for _, c := range corr {
			weighted := int64(coverage * float64(c.Score))
			if weighted == 0 {
				continue
			}
			s, ok := merged[c.Uid]
			if !ok {
				s = &AppScore{Uid: c.Uid, Package: c.Package, ByType: make(map[string]int64)}
				merged[c.Uid] = s
			}
			s.Score += weighted
			s.ByType["algorithm1.weighted"] = weighted
		}
	}
	out := make([]AppScore, 0, len(merged))
	for _, s := range merged {
		out = append(out, *s)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Uid < out[j].Uid
	})
	return out
}

// readWindow flushes the driver log and fills d.evid with the records
// aimed at the victim pid since the previous engagement, via the
// driver's columnar per-victim view (AppendLogColumnsSince) instead of
// materializing a row slice and scanning the full log. lastStats.Seq is
// a valid window delimiter because the previous engagement truncated
// the log before capturing it, so every flushed record newer than it
// belongs to this window. The defender reads as the system uid; the
// procfs ACL keeps apps from seeing or spoofing the stream.
func (d *Defender) readWindow(victim kernel.Pid) error {
	d.evid.Reset()
	if _, err := d.dev.Driver().FlushLog(); err != nil {
		return err
	}
	if _, err := d.dev.Driver().AppendLogColumnsSince(kernel.SystemUid, victim, d.lastStats.Seq, &d.evid); err != nil {
		return err
	}
	d.evid.Filter(func(i int) bool { return kernel.IsAppUid(d.evid.FromUid[i]) })
	return nil
}

// chargeAnalysis advances virtual time for the correlation run; per-record
// cost scales with the targeted interface's analysis weight, which is what
// makes MidiService.registerDeviceServer the slow outlier of §V-D1.
func (d *Defender) chargeAnalysis(win *binder.LogColumns) {
	total := d.cfg.AnalysisCostBase
	for i := 0; i < win.Len(); i++ {
		w := 1.0
		if t, ok := d.dev.Resolve(win.Record(i)); ok {
			switch {
			case t.Catalogued != nil:
				w = t.Catalogued.Cost.AnalysisWeight
			case t.AppRow != nil:
				w = t.AppRow.Cost.AnalysisWeight
			}
		}
		total += time.Duration(float64(d.cfg.AnalysisCostPerRecord) * w)
	}
	d.dev.Clock().Advance(total)
}

// Score implements Algorithm 1 (§V-A): for every app and every IPC
// interface type the app invoked, accumulate candidate delays
// [JGRTime−IPCTime, JGRTime−IPCTime+Δ] over the bucketed delay axis,
// take the best-supported bucket as that type's count of suspicious
// calls, and sum the counts into the app's jgre_score.
func (d *Defender) Score(records []binder.IPCRecord, jgrAdds []time.Duration) []AppScore {
	return d.ScoreWithDelta(records, jgrAdds, d.cfg.Delta)
}

// ScoreWithDelta runs Algorithm 1 with an explicit Δ, used by the Fig. 9
// sensitivity sweep. It is stateless — each call builds a fresh
// correlator — so concurrent callers (Fig. 9 scores deltas across a
// worker pool) never share scratch state; the defender's own poll loop
// goes through its persistent correlator instead.
func (d *Defender) ScoreWithDelta(records []binder.IPCRecord, jgrAdds []time.Duration, delta time.Duration) []AppScore {
	var c correlator
	return c.scoreRecords(d, records, jgrAdds, delta)
}

// AverageDelta returns the catalog-wide mean jitter — how §V-C derives
// the 1.8 ms default Δ from measuring all services.
func AverageDelta() time.Duration {
	rows := catalog.Interfaces()
	var sum time.Duration
	for _, r := range rows {
		sum += r.Cost.Jitter
	}
	return sum / time.Duration(len(rows))
}

// FormatDetection renders one engagement as a human-readable report.
func FormatDetection(det Detection) string {
	s := fmt.Sprintf("JGRE detection at t=%.1fs: victim %s (pid %d)\n",
		det.EngagedAt.Seconds(), det.Victim, det.VictimPid)
	s += fmt.Sprintf("  %d IPC records analysed in %v\n", det.Records, det.AnalysisTime)
	for i, sc := range det.Scores {
		if i == 5 {
			s += fmt.Sprintf("  ... and %d more apps\n", len(det.Scores)-5)
			break
		}
		s += fmt.Sprintf("  #%d uid %-6d %-28s jgre_score=%d\n", i+1, sc.Uid, sc.Package, sc.Score)
	}
	s += fmt.Sprintf("  killed: %v; recovered: %v\n", det.Killed, det.Recovered)
	return s
}
