package defense

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/binder"
	"repro/internal/device"
	"repro/internal/kernel"
	"repro/internal/workload"
)

// TestLMKCannotStopJGRE pins the paper's §VII point: the low memory
// killer watches memory, not JGR tables, so a memory-frugal JGRE attack
// sails straight past it and reboots the device — which is why the JGRE
// Defender exists.
func TestLMKCannotStopJGRE(t *testing.T) {
	dev, err := device.Boot(device.Config{Seed: 33, ServerVM: artCfg(3000)})
	if err != nil {
		t.Fatal(err)
	}
	evil, _ := dev.Apps().Install("com.evil.app")
	atk, err := workload.NewAttacker(dev, evil, "audio.startWatchingRoutes")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10000 && dev.SoftReboots() == 0; i++ {
		if err := atk.Step(); err != nil {
			break
		}
	}
	if dev.SoftReboots() != 1 {
		t.Fatal("attack did not reboot the undefended device")
	}
	if got := dev.Kernel().LMKKills(); got != 0 {
		t.Fatalf("LMK killed %d processes; it should never have triggered", got)
	}
}

// TestDefenderSurvivesProcfsLoss injects the failure the defender's
// evidence pipeline depends on: the procfs log vanishes before
// engagement. The hardened defender must exhaust its read retries, mark
// the read failed, and still recover via retained-ref fallback
// attribution — the driver's ground truth survives losing the log.
func TestDefenderSurvivesProcfsLoss(t *testing.T) {
	dev, err := device.Boot(device.Config{Seed: 34})
	if err != nil {
		t.Fatal(err)
	}
	def, err := New(dev, Config{AlarmThreshold: 300, EngageThreshold: 900})
	if err != nil {
		t.Fatal(err)
	}
	// Sabotage: remove the evidence file.
	if err := dev.Kernel().ProcFS().Remove(binder.LogPath, kernel.RootUid); err != nil {
		t.Fatal(err)
	}
	evil, _ := dev.Apps().Install("com.evil.app")
	atk, err := workload.NewAttacker(dev, evil, "audio.startWatchingRoutes")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5000 && len(def.History()) == 0; i++ {
		if err := atk.Step(); err != nil {
			break
		}
	}
	hist := def.History()
	if len(hist) == 0 {
		t.Fatal("defender never engaged")
	}
	det := hist[0]
	if !det.ReadFailed || det.ReadRetries != DefaultLogReadRetries {
		t.Fatalf("read failure not surfaced: %+v", det)
	}
	if det.Records != 0 || len(det.Correlation) != 0 {
		t.Fatalf("correlation evidence appeared without a log: %+v", det)
	}
	if !det.FallbackUsed {
		t.Fatal("fallback attribution not engaged")
	}
	if len(det.Killed) != 1 || det.Killed[0] != "com.evil.app" {
		t.Fatalf("fallback killed %v, want the attacker", det.Killed)
	}
	if !det.Recovered {
		t.Fatal("defender failed to recover via fallback attribution")
	}
	if dev.SoftReboots() != 0 {
		t.Fatal("device rebooted despite fallback recovery")
	}
}

// TestDefenderFallbackDisabled pins the pre-hardening behavior behind
// the MinCoverage<0 switch: no evidence, no kills.
func TestDefenderFallbackDisabled(t *testing.T) {
	dev, err := device.Boot(device.Config{Seed: 34})
	if err != nil {
		t.Fatal(err)
	}
	def, err := New(dev, Config{AlarmThreshold: 300, EngageThreshold: 900, MinCoverage: -1, LogReadRetries: -1})
	if err != nil {
		t.Fatal(err)
	}
	if err := dev.Kernel().ProcFS().Remove(binder.LogPath, kernel.RootUid); err != nil {
		t.Fatal(err)
	}
	evil, _ := dev.Apps().Install("com.evil.app")
	atk, err := workload.NewAttacker(dev, evil, "audio.startWatchingRoutes")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5000 && len(def.History()) == 0; i++ {
		if err := atk.Step(); err != nil {
			break
		}
	}
	hist := def.History()
	if len(hist) == 0 {
		t.Fatal("defender never engaged")
	}
	det := hist[0]
	if det.ReadRetries != 0 {
		t.Fatalf("retries despite LogReadRetries=-1: %+v", det)
	}
	if det.FallbackUsed || len(det.Scores) != 0 || len(det.Killed) != 0 || det.Recovered {
		t.Fatalf("disabled fallback still acted: %+v", det)
	}
}

// TestDefenderHandlesRepeatEngagements: if the first engagement's kills
// do not end the pressure (a second attacker appears), the defender must
// engage again and clear it too.
func TestDefenderHandlesRepeatEngagements(t *testing.T) {
	dev, err := device.Boot(device.Config{Seed: 35})
	if err != nil {
		t.Fatal(err)
	}
	def, err := New(dev, Config{AlarmThreshold: 300, EngageThreshold: 900})
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 3; round++ {
		evil, err := dev.Apps().Install("com.evil.app" + string(rune('a'+round)))
		if err != nil {
			t.Fatal(err)
		}
		atk, err := workload.NewAttacker(dev, evil, "audio.startWatchingRoutes")
		if err != nil {
			t.Fatal(err)
		}
		want := round + 1
		for i := 0; i < 20000 && len(def.History()) < want; i++ {
			if err := atk.Step(); err != nil {
				break
			}
		}
		hist := def.History()
		if len(hist) != want {
			t.Fatalf("round %d: %d detections, want %d", round, len(hist), want)
		}
		det := hist[want-1]
		if !det.Recovered || len(det.Killed) == 0 || det.Killed[0] != evil.Package() {
			t.Fatalf("round %d: detection = %+v", round, det)
		}
	}
	if dev.SoftReboots() != 0 {
		t.Fatal("device rebooted despite the defender")
	}
}

// TestScorePermutationInvariant: Algorithm 1's result must not depend on
// the order records arrive in the log.
func TestScorePermutationInvariant(t *testing.T) {
	r := newDefRig(t, smallCfg(), 4)
	evil, _ := r.dev.Apps().Install("com.evil.app")
	atk, err := workload.NewAttacker(r.dev, evil, "audio.startWatchingRoutes")
	if err != nil {
		t.Fatal(err)
	}
	cfgd := r.def
	cfgd.cfg.KeepRaw = true
	r.sched.Add(atk)
	r.sched.Run(func() bool { return len(cfgd.History()) > 0 }, 200000)
	hist := cfgd.History()
	if len(hist) == 0 || len(hist[0].RawRecords) == 0 {
		t.Fatal("no raw window captured")
	}
	det := hist[0]

	base := cfgd.Score(det.RawRecords, det.RawAddTimes)
	shuffled := append([]binder.IPCRecord(nil), det.RawRecords...)
	rng := rand.New(rand.NewSource(5))
	rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
	again := cfgd.Score(shuffled, det.RawAddTimes)

	if len(base) != len(again) {
		t.Fatalf("score cardinality changed: %d vs %d", len(base), len(again))
	}
	for i := range base {
		if base[i].Uid != again[i].Uid || base[i].Score != again[i].Score {
			t.Fatalf("rank %d differs: %+v vs %+v", i, base[i], again[i])
		}
	}
}

// TestScoreMonotoneInEvidence: extending the window with more of the
// attacker's (call, add) pairs never lowers its score.
func TestScoreMonotoneInEvidence(t *testing.T) {
	r := newDefRig(t, smallCfg(), 0)
	evil, _ := r.dev.Apps().Install("com.evil.app")
	atk, err := workload.NewAttacker(r.dev, evil, "clipboard.addPrimaryClipChangedListener")
	if err != nil {
		t.Fatal(err)
	}
	r.def.cfg.KeepRaw = true
	sched := workload.NewScheduler(r.dev)
	sched.Add(atk)
	sched.Run(func() bool { return len(r.def.History()) > 0 }, 200000)
	hist := r.def.History()
	if len(hist) == 0 {
		t.Fatal("no detection")
	}
	det := hist[0]
	find := func(scores []AppScore) int64 {
		for _, s := range scores {
			if s.Package == "com.evil.app" {
				return s.Score
			}
		}
		return 0
	}
	prev := int64(0)
	for _, frac := range []int{4, 2, 1} {
		n := len(det.RawRecords) / frac
		m := len(det.RawAddTimes) / frac
		score := find(r.def.Score(det.RawRecords[:n], det.RawAddTimes[:m]))
		if score < prev {
			t.Fatalf("score shrank with more evidence: %d then %d", prev, score)
		}
		prev = score
	}
	if prev == 0 {
		t.Fatal("attacker never scored")
	}
}

// TestQuickDeltaWideningNeverLowersScore: for any Δ' ≥ Δ, each candidate
// interval only widens, so the max-supported bucket cannot lose votes.
func TestQuickDeltaWideningNeverLowersScore(t *testing.T) {
	r := newDefRig(t, smallCfg(), 0)
	evil, _ := r.dev.Apps().Install("com.evil.app")
	atk, err := workload.NewAttacker(r.dev, evil, "audio.startWatchingRoutes")
	if err != nil {
		t.Fatal(err)
	}
	r.def.cfg.KeepRaw = true
	sched := workload.NewScheduler(r.dev)
	sched.Add(atk)
	sched.Run(func() bool { return len(r.def.History()) > 0 }, 200000)
	hist := r.def.History()
	if len(hist) == 0 {
		t.Fatal("no detection")
	}
	det := hist[0]
	find := func(scores []AppScore) int64 {
		for _, s := range scores {
			if s.Package == "com.evil.app" {
				return s.Score
			}
		}
		return 0
	}
	prev := int64(0)
	for _, delta := range []time.Duration{100 * time.Microsecond, 500 * time.Microsecond, 2 * time.Millisecond, 8 * time.Millisecond} {
		score := find(r.def.ScoreWithDelta(det.RawRecords, det.RawAddTimes, delta))
		if score < prev {
			t.Fatalf("Δ=%v lowered score: %d then %d", delta, prev, score)
		}
		prev = score
	}
}
