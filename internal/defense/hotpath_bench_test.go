package defense

import (
	"testing"
	"time"

	"repro/internal/art"
	"repro/internal/binder"
	"repro/internal/device"
	"repro/internal/kernel"
)

// correlateFixture builds a realistic defender window: one flood app and
// one chatty benign app against the clipboard service, with the JGR add
// times captured through the system-server hook exactly as the live
// defender sees them.
func correlateFixture(b *testing.B) (*Defender, []binder.IPCRecord, []time.Duration) {
	b.Helper()
	dev, err := device.Boot(device.Config{Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	def, err := New(dev, Config{AlarmThreshold: 1 << 20, EngageThreshold: 1 << 21, KeepRaw: true})
	if err != nil {
		b.Fatal(err)
	}
	var adds []time.Duration
	dev.SystemServer().VM().AddJGRHook(func(ev art.JGREvent) {
		if ev.Op == art.OpAdd {
			adds = append(adds, ev.Time)
		}
	})
	evil, err := dev.Apps().Install("com.evil.app")
	if err != nil {
		b.Fatal(err)
	}
	client, err := dev.NewClient(evil, "clipboard")
	if err != nil {
		b.Fatal(err)
	}
	benign, err := dev.Apps().Install("com.benign.chat")
	if err != nil {
		b.Fatal(err)
	}
	bclient, err := dev.NewClient(benign, "clipboard")
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 3000; i++ {
		if err := client.Register("addPrimaryClipChangedListener"); err != nil {
			b.Fatal(err)
		}
		if i%10 == 0 {
			if err := bclient.Register("addPrimaryClipChangedListener"); err != nil {
				b.Fatal(err)
			}
		}
	}
	if _, err := dev.Driver().FlushLog(); err != nil {
		b.Fatal(err)
	}
	all, err := dev.Driver().ReadLog(kernel.SystemUid)
	if err != nil {
		b.Fatal(err)
	}
	victim := dev.SystemServer().Pid()
	var records []binder.IPCRecord
	for _, r := range all {
		if r.ToPid == victim && kernel.IsAppUid(r.FromUid) {
			records = append(records, r)
		}
	}
	return def, records, adds
}

// BenchmarkCorrelate measures Algorithm 1's correlation stage on the
// defender's poll path: the per-type difference-array sweep over the
// delay buckets, repeated every poll as the live defender does.
// "stateless" is the public Score path (fresh correlator per call, rows
// in, what concurrent sweep callers get); "incremental" is the poll
// loop's persistent correlator fed the driver's columnar window, which
// reuses the sorted permutation, difference array and scratch buffers
// across windows.
func BenchmarkCorrelate(b *testing.B) {
	def, records, adds := correlateFixture(b)
	var cols binder.LogColumns
	for _, r := range records {
		cols.Append(r)
	}
	b.Run("stateless", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			scores := def.Score(records, adds)
			if len(scores) == 0 {
				b.Fatal("no scores")
			}
		}
	})
	b.Run("incremental", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			scores := def.corr.score(def, &cols, adds, def.cfg.Delta)
			if len(scores) == 0 {
				b.Fatal("no scores")
			}
		}
	})
}
