// Defender checkpoint/restore: the crash-safety layer of the lifecycle
// chaos work. A Checkpoint is a versioned, canonical-bytes snapshot of
// everything the defender needs to resume correlating after a process
// bounce — per-monitor alarm state and recorded JGR add-times, the
// evidence-window high-water marks delimiting the next poll window, the
// adaptive-Δ state, and the cumulative health counters — written at
// poll-window boundaries (see respond's OnCheckpoint hook) and replayed
// into a fresh Defender by Restore.
//
// The encoding is deliberately canonical: monitors sort by pid, every
// integer is fixed-width little-endian, booleans are exactly 0 or 1,
// and DecodeCheckpoint rejects trailing bytes, unordered monitors and
// malformed booleans. Canonical bytes make equality testable as
// bytes.Equal and give the fuzz harness a strong round-trip invariant:
// any input DecodeCheckpoint accepts re-encodes to the identical bytes.
package defense

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sort"
	"time"

	"repro/internal/binder"
	"repro/internal/device"
	"repro/internal/kernel"
)

// CheckpointVersion is the current checkpoint format version. Restore
// rejects other versions — a bounced defender never guesses at a layout.
const CheckpointVersion = 1

// checkpointMagic brands the byte stream ("JGRC").
var checkpointMagic = [4]byte{'J', 'G', 'R', 'C'}

// ErrCheckpointCorrupt reports a byte stream DecodeCheckpoint rejected.
var ErrCheckpointCorrupt = errors.New("defense: corrupt checkpoint")

// MonitorCheckpoint is one runtime-extension monitor's persisted state.
type MonitorCheckpoint struct {
	// Name and Pid identify the monitored process; Restore only applies
	// the state when both still match, so a victim that died across the
	// defender outage silently re-baselines instead.
	Name string
	Pid  int64
	// Baseline is the attach-time JGR count alarms are measured against.
	Baseline int64
	// Recording/Engaged are the alarm-state flags.
	Recording bool
	Engaged   bool
	// AddTimes are the recorded JGR creation times since the alarm.
	AddTimes []time.Duration
}

// Checkpoint is the defender's poll-window-boundary snapshot.
type Checkpoint struct {
	Version uint32
	// TakenAt is the virtual time of the snapshot.
	TakenAt time.Duration
	// Window* are the driver LogStats high-water marks delimiting the
	// in-progress evidence window (lastStats in the poll loop).
	WindowSeq         uint64
	WindowLogged      uint64
	WindowDroppedRate uint64
	WindowDroppedRing uint64
	WindowReadErrors  uint64
	// LastDelta is the adaptive-Δ state: the effective Δ of the most
	// recent engagement.
	LastDelta time.Duration
	// InnocentKillBudget is the configured per-engagement budget, kept
	// so an operator can audit what policy the snapshot ran under.
	InnocentKillBudget int64
	// CorrRounds is the completed correlator-run count.
	CorrRounds uint64
	// Cumulative health counters and the last engagement's verdict.
	Detections       int64
	ReadRetries      int64
	AnalysisRestarts int64
	GuardStops       int64
	LastCoverage     float64
	LastFallback     bool
	// Monitors snapshots every attached runtime extension, sorted by Pid.
	Monitors []MonitorCheckpoint
}

// monitorWireMin is the minimum encoded size of one monitor (empty name,
// no add-times): nameLen(4) + pid(8) + baseline(8) + flags(2) + addLen(4).
const monitorWireMin = 26

// Encode renders the checkpoint as canonical bytes. Monitors are sorted
// by Pid into a copy, so encoding never mutates the receiver.
func (cp *Checkpoint) Encode() []byte {
	mons := append([]MonitorCheckpoint(nil), cp.Monitors...)
	sort.Slice(mons, func(i, j int) bool { return mons[i].Pid < mons[j].Pid })

	n := 4 + 4 + 8*13 + 8 + 1 + 4
	for _, m := range mons {
		n += monitorWireMin + len(m.Name) + 8*len(m.AddTimes)
	}
	buf := make([]byte, 0, n)
	buf = append(buf, checkpointMagic[:]...)
	buf = binary.LittleEndian.AppendUint32(buf, cp.Version)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(cp.TakenAt))
	buf = binary.LittleEndian.AppendUint64(buf, cp.WindowSeq)
	buf = binary.LittleEndian.AppendUint64(buf, cp.WindowLogged)
	buf = binary.LittleEndian.AppendUint64(buf, cp.WindowDroppedRate)
	buf = binary.LittleEndian.AppendUint64(buf, cp.WindowDroppedRing)
	buf = binary.LittleEndian.AppendUint64(buf, cp.WindowReadErrors)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(cp.LastDelta))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(cp.InnocentKillBudget))
	buf = binary.LittleEndian.AppendUint64(buf, cp.CorrRounds)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(cp.Detections))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(cp.ReadRetries))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(cp.AnalysisRestarts))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(cp.GuardStops))
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(cp.LastCoverage))
	buf = append(buf, encodeBool(cp.LastFallback))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(mons)))
	for _, m := range mons {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(m.Name)))
		buf = append(buf, m.Name...)
		buf = binary.LittleEndian.AppendUint64(buf, uint64(m.Pid))
		buf = binary.LittleEndian.AppendUint64(buf, uint64(m.Baseline))
		buf = append(buf, encodeBool(m.Recording), encodeBool(m.Engaged))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(m.AddTimes)))
		for _, t := range m.AddTimes {
			buf = binary.LittleEndian.AppendUint64(buf, uint64(t))
		}
	}
	return buf
}

func encodeBool(b bool) byte {
	if b {
		return 1
	}
	return 0
}

// cpReader is a bounds-checked cursor over checkpoint bytes.
type cpReader struct {
	buf []byte
	err error
}

func (r *cpReader) fail(what string) {
	if r.err == nil {
		r.err = fmt.Errorf("%w: %s", ErrCheckpointCorrupt, what)
	}
}

func (r *cpReader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || n > len(r.buf) {
		r.fail("truncated")
		return nil
	}
	b := r.buf[:n]
	r.buf = r.buf[n:]
	return b
}

func (r *cpReader) u32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (r *cpReader) u64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

func (r *cpReader) boolean() bool {
	b := r.take(1)
	if b == nil {
		return false
	}
	switch b[0] {
	case 0:
		return false
	case 1:
		return true
	default:
		r.fail("non-canonical boolean")
		return false
	}
}

// DecodeCheckpoint parses canonical checkpoint bytes. It never panics on
// arbitrary input: every read is bounds-checked, allocation sizes are
// validated against the remaining input, and non-canonical forms —
// unknown version, unsorted or duplicate monitor pids, boolean bytes
// outside {0,1}, trailing garbage — are rejected, so any accepted input
// re-encodes to the identical bytes.
func DecodeCheckpoint(data []byte) (*Checkpoint, error) {
	r := &cpReader{buf: data}
	if magic := r.take(4); r.err != nil || [4]byte(magic) != checkpointMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrCheckpointCorrupt)
	}
	cp := &Checkpoint{}
	cp.Version = r.u32()
	if r.err == nil && cp.Version != CheckpointVersion {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrCheckpointCorrupt, cp.Version)
	}
	cp.TakenAt = time.Duration(r.u64())
	cp.WindowSeq = r.u64()
	cp.WindowLogged = r.u64()
	cp.WindowDroppedRate = r.u64()
	cp.WindowDroppedRing = r.u64()
	cp.WindowReadErrors = r.u64()
	cp.LastDelta = time.Duration(r.u64())
	cp.InnocentKillBudget = int64(r.u64())
	cp.CorrRounds = r.u64()
	cp.Detections = int64(r.u64())
	cp.ReadRetries = int64(r.u64())
	cp.AnalysisRestarts = int64(r.u64())
	cp.GuardStops = int64(r.u64())
	cp.LastCoverage = math.Float64frombits(r.u64())
	cp.LastFallback = r.boolean()
	monCount := r.u32()
	if r.err != nil {
		return nil, r.err
	}
	if int64(monCount)*monitorWireMin > int64(len(r.buf)) {
		return nil, fmt.Errorf("%w: monitor count %d exceeds input", ErrCheckpointCorrupt, monCount)
	}
	if monCount > 0 {
		cp.Monitors = make([]MonitorCheckpoint, 0, monCount)
	}
	for i := uint32(0); i < monCount; i++ {
		var m MonitorCheckpoint
		nameLen := r.u32()
		if r.err == nil && int64(nameLen) > int64(len(r.buf)) {
			return nil, fmt.Errorf("%w: name length %d exceeds input", ErrCheckpointCorrupt, nameLen)
		}
		m.Name = string(r.take(int(nameLen)))
		m.Pid = int64(r.u64())
		m.Baseline = int64(r.u64())
		m.Recording = r.boolean()
		m.Engaged = r.boolean()
		addLen := r.u32()
		if r.err != nil {
			return nil, r.err
		}
		if int64(addLen)*8 > int64(len(r.buf)) {
			return nil, fmt.Errorf("%w: add-times length %d exceeds input", ErrCheckpointCorrupt, addLen)
		}
		if addLen > 0 {
			m.AddTimes = make([]time.Duration, addLen)
			for j := range m.AddTimes {
				m.AddTimes[j] = time.Duration(r.u64())
			}
		}
		if r.err != nil {
			return nil, r.err
		}
		if n := len(cp.Monitors); n > 0 && cp.Monitors[n-1].Pid >= m.Pid {
			return nil, fmt.Errorf("%w: monitors not strictly increasing by pid", ErrCheckpointCorrupt)
		}
		cp.Monitors = append(cp.Monitors, m)
	}
	if r.err != nil {
		return nil, r.err
	}
	if len(r.buf) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrCheckpointCorrupt, len(r.buf))
	}
	return cp, nil
}

// Checkpoint snapshots the defender's resumable state. It is read-only
// and consumes neither virtual time nor randomness, so taking one is
// invisible to the simulation — the property the checkpoint-equivalence
// test pins.
func (d *Defender) Checkpoint() *Checkpoint {
	h := d.health()
	cp := &Checkpoint{
		Version:            CheckpointVersion,
		TakenAt:            d.dev.Clock().Now(),
		WindowSeq:          d.lastStats.Seq,
		WindowLogged:       d.lastStats.Logged,
		WindowDroppedRate:  d.lastStats.DroppedRate,
		WindowDroppedRing:  d.lastStats.DroppedRing,
		WindowReadErrors:   d.lastStats.ReadErrors,
		LastDelta:          d.lastDelta,
		InnocentKillBudget: int64(d.cfg.InnocentKillBudget),
		CorrRounds:         d.corrRounds,
		Detections:         int64(h.Detections),
		ReadRetries:        int64(h.ReadRetries),
		AnalysisRestarts:   int64(h.AnalysisRestarts),
		GuardStops:         int64(h.GuardStops),
		LastCoverage:       h.Coverage,
		LastFallback:       h.FallbackUsed,
	}
	for pid, m := range d.monitors {
		cp.Monitors = append(cp.Monitors, MonitorCheckpoint{
			Name:      m.proc.Name(),
			Pid:       int64(pid),
			Baseline:  int64(m.baseline),
			Recording: m.recording,
			Engaged:   m.engaged,
			AddTimes:  append([]time.Duration(nil), m.addTimes...),
		})
	}
	sort.Slice(cp.Monitors, func(i, j int) bool { return cp.Monitors[i].Pid < cp.Monitors[j].Pid })
	return cp
}

// Kill simulates the defender process dying: the health provider
// detaches and every monitor map entry is dropped. The VM-side JGR
// hooks cannot be unregistered, so they go inert through the dead flag
// — checked before any clock charge, keeping a killed defender
// completely invisible to the simulation.
func (d *Defender) Kill() {
	if d.dead {
		return
	}
	d.dead = true
	d.monitors = make(map[kernel.Pid]*monitor)
	d.dev.SetDefenderHealth(nil)
}

// Dead reports whether Kill has run.
func (d *Defender) Dead() bool { return d.dead }

// Restore builds a defender resuming from a checkpoint: a fresh New
// (re-attaching monitors, re-enabling IPC logging idempotently) whose
// evidence-window delimiter, adaptive-Δ state, health counters and
// per-monitor alarm state are replayed from cp. A nil cp is a cold
// restart — identical to New. Monitors are matched by (pid, name); a
// victim that died during the defender outage keeps its fresh baseline.
func Restore(dev *device.Device, cfg Config, cp *Checkpoint) (*Defender, error) {
	d, err := New(dev, cfg)
	if err != nil {
		return nil, err
	}
	if cp == nil {
		return d, nil
	}
	if cp.Version != CheckpointVersion {
		return nil, fmt.Errorf("defense: checkpoint version %d, want %d", cp.Version, CheckpointVersion)
	}
	d.lastStats = binder.LogStats{
		Seq:         cp.WindowSeq,
		Logged:      cp.WindowLogged,
		DroppedRate: cp.WindowDroppedRate,
		DroppedRing: cp.WindowDroppedRing,
		ReadErrors:  cp.WindowReadErrors,
	}
	d.lastDelta = cp.LastDelta
	d.corrRounds = cp.CorrRounds
	d.restored = device.DefenderHealth{
		Detections:       int(cp.Detections),
		Coverage:         cp.LastCoverage,
		FallbackUsed:     cp.LastFallback,
		ReadRetries:      int(cp.ReadRetries),
		AnalysisRestarts: int(cp.AnalysisRestarts),
		GuardStops:       int(cp.GuardStops),
	}
	for _, mc := range cp.Monitors {
		m, ok := d.monitors[kernel.Pid(mc.Pid)]
		if !ok || m.proc.Name() != mc.Name {
			continue
		}
		m.baseline = int(mc.Baseline)
		m.recording = mc.Recording
		m.engaged = mc.Engaged
		m.addTimes = append([]time.Duration(nil), mc.AddTimes...)
	}
	d.met.restores.Inc()
	return d, nil
}

// BounceMode selects what state a bounced defender comes back with.
type BounceMode int

const (
	// BounceCold restarts with no checkpoint: the defender re-baselines
	// every monitor at the current (possibly attack-inflated) JGR count.
	BounceCold BounceMode = iota
	// BounceWarm restores from the last poll-window-boundary checkpoint
	// (cold until the first engagement has written one).
	BounceWarm
	// BounceSync captures a checkpoint at kill time — a graceful
	// shutdown flushing state on SIGTERM — and restores from it.
	BounceSync
)

// Bouncer manages a defender across chaos kill/restore cycles,
// implementing the chaos engine's DefenderLifecycle. It re-hooks the
// checkpoint, abort and detection observers onto each new incarnation.
type Bouncer struct {
	dev  *device.Device
	cfg  Config
	mode BounceMode
	def  *Defender
	last *Checkpoint

	abort       func() bool
	onDetection func(Detection)
}

// NewBouncer creates the initial defender incarnation.
func NewBouncer(dev *device.Device, cfg Config, mode BounceMode) (*Bouncer, error) {
	b := &Bouncer{dev: dev, cfg: cfg, mode: mode}
	def, err := New(dev, cfg)
	if err != nil {
		return nil, err
	}
	b.hook(def)
	return b, nil
}

func (b *Bouncer) hook(def *Defender) {
	b.def = def
	def.OnCheckpoint = func(cp *Checkpoint) { b.last = cp }
	def.OnDetection = b.onDetection
	if b.abort != nil {
		def.SetAbort(b.abort)
	}
}

// Defender returns the current incarnation.
func (b *Bouncer) Defender() *Defender { return b.def }

// SetAbort installs the cancellation probe on current and future
// incarnations.
func (b *Bouncer) SetAbort(fn func() bool) {
	b.abort = fn
	b.def.SetAbort(fn)
}

// SetOnDetection installs the detection observer on current and future
// incarnations.
func (b *Bouncer) SetOnDetection(fn func(Detection)) {
	b.onDetection = fn
	b.def.OnDetection = fn
}

// History returns the current incarnation's detections.
func (b *Bouncer) History() []Detection { return b.def.History() }

// Kill implements chaos.DefenderLifecycle.
func (b *Bouncer) Kill() {
	if b.mode == BounceSync {
		b.last = b.def.Checkpoint()
	}
	b.def.Kill()
}

// Restore implements chaos.DefenderLifecycle: a new incarnation resumes
// from the retained checkpoint (mode-dependent) with the observers
// re-hooked.
func (b *Bouncer) Restore() error {
	cp := b.last
	if b.mode == BounceCold {
		cp = nil
	}
	def, err := Restore(b.dev, b.cfg, cp)
	if err != nil {
		return err
	}
	b.hook(def)
	return nil
}
