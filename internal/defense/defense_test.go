package defense

import (
	"strings"
	"testing"
	"time"

	"repro/internal/art"
	"repro/internal/catalog"
	"repro/internal/device"
	"repro/internal/kernel"
	"repro/internal/workload"
)

// defRig boots a device with a defender and a benign population.
type defRig struct {
	dev   *device.Device
	def   *Defender
	sched *workload.Scheduler
}

func newDefRig(t *testing.T, cfg Config, benign int) *defRig {
	t.Helper()
	dev, err := device.Boot(device.Config{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	def, err := New(dev, cfg)
	if err != nil {
		t.Fatal(err)
	}
	sched := workload.NewScheduler(dev)
	if benign > 0 {
		if _, err := workload.Population(dev, sched, benign, 7, 2*time.Second); err != nil {
			t.Fatal(err)
		}
	}
	return &defRig{dev: dev, def: def, sched: sched}
}

// smallCfg scales the thresholds down so tests run quickly while keeping
// the alarm/engage ratio of the paper.
func smallCfg() Config {
	return Config{AlarmThreshold: 400, EngageThreshold: 1200}
}

func TestDefenderStopsSingleAttacker(t *testing.T) {
	r := newDefRig(t, smallCfg(), 10)
	evil, err := r.dev.Apps().Install("com.evil.app")
	if err != nil {
		t.Fatal(err)
	}
	atk, err := workload.NewAttacker(r.dev, evil, "audio.startWatchingRoutes")
	if err != nil {
		t.Fatal(err)
	}
	r.sched.Add(atk)

	r.sched.Run(func() bool { return len(r.def.History()) > 0 }, 200000)

	hist := r.def.History()
	if len(hist) == 0 {
		t.Fatal("defender never engaged")
	}
	det := hist[0]
	if det.Victim != kernel.SystemServerName {
		t.Fatalf("victim = %s, want system_server", det.Victim)
	}
	if len(det.Scores) == 0 || det.Scores[0].Package != "com.evil.app" {
		t.Fatalf("top score = %+v, want com.evil.app", det.Scores)
	}
	if len(det.Killed) == 0 || det.Killed[0] != "com.evil.app" {
		t.Fatalf("killed = %v, want attacker first", det.Killed)
	}
	if !det.Recovered {
		t.Fatal("victim did not recover")
	}
	if evil.Running() {
		t.Fatal("attacker still running")
	}
	// The device never soft-rebooted: the defense beat the exhaustion.
	if r.dev.SoftReboots() != 0 {
		t.Fatalf("SoftReboots = %d, want 0", r.dev.SoftReboots())
	}
	// The attacker's score dwarfs any benign app's.
	if len(det.Scores) > 1 && det.Scores[0].Score < 4*det.Scores[1].Score {
		t.Fatalf("attacker score %d not clearly above benign %d", det.Scores[0].Score, det.Scores[1].Score)
	}
}

func TestDefenderSparesBenignApps(t *testing.T) {
	r := newDefRig(t, smallCfg(), 10)
	evil, _ := r.dev.Apps().Install("com.evil.app")
	atk, err := workload.NewAttacker(r.dev, evil, "clipboard.addPrimaryClipChangedListener")
	if err != nil {
		t.Fatal(err)
	}
	r.sched.Add(atk)
	r.sched.Run(func() bool { return len(r.def.History()) > 0 }, 200000)

	hist := r.def.History()
	if len(hist) == 0 {
		t.Fatal("defender never engaged")
	}
	for _, pkg := range hist[0].Killed {
		if pkg != "com.evil.app" {
			t.Fatalf("defender killed benign app %s", pkg)
		}
	}
}

func TestDefenderDetectsColludingApps(t *testing.T) {
	r := newDefRig(t, smallCfg(), 6)
	targets := []string{
		"audio.startWatchingRoutes",
		"clipboard.addPrimaryClipChangedListener",
		"midi.registerListener",
		"wifi.acquireWifiLock",
	}
	var colluders []string
	for i, tgt := range targets {
		app, err := r.dev.Apps().Install("com.collude.app" + string(rune('a'+i)))
		if err != nil {
			t.Fatal(err)
		}
		colluders = append(colluders, app.Package())
		atk, err := workload.NewAttacker(r.dev, app, tgt)
		if err != nil {
			t.Fatal(err)
		}
		r.sched.Add(atk)
	}
	// A chatty benign bystander (Fig. 9's fifth app).
	chattyApp, _ := r.dev.Apps().Install("com.chatty.app")
	chatty, err := workload.NewChattyApp(r.dev, chattyApp, 11)
	if err != nil {
		t.Fatal(err)
	}
	r.sched.Add(chatty)

	r.sched.Run(func() bool { return len(r.def.History()) > 0 }, 400000)
	hist := r.def.History()
	if len(hist) == 0 {
		t.Fatal("defender never engaged")
	}
	det := hist[0]
	if len(det.Scores) < 4 {
		t.Fatalf("only %d scored apps", len(det.Scores))
	}
	// The four colluders outrank the chatty benign app (Fig. 9).
	topFour := map[string]bool{}
	for _, s := range det.Scores[:4] {
		topFour[s.Package] = true
	}
	for _, pkg := range colluders {
		if !topFour[pkg] {
			t.Errorf("colluder %s not in top four (scores: %+v)", pkg, det.Scores[:4])
		}
	}
	if topFour["com.chatty.app"] {
		t.Error("chatty benign app ranked among the colluders")
	}
	if chatty.Calls() == 0 {
		t.Error("chatty bystander never ran")
	}
	// Recovery killed colluders, not the bystander.
	for _, pkg := range det.Killed {
		if pkg == "com.chatty.app" {
			t.Error("defender killed the chatty benign app")
		}
	}
	if !det.Recovered {
		t.Error("victim did not recover")
	}
}

func TestDefenderProtectsAppService(t *testing.T) {
	dev, err := device.Boot(device.Config{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	def, err := New(dev, smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	pico := dev.Apps().ByPackage("com.svox.pico")
	if pico == nil || !def.Monitored(pico.Proc().Pid()) {
		t.Fatal("pico app service not monitored")
	}
	evil, _ := dev.Apps().Install("com.evil.app")
	row := catalog.PrebuiltAppInterfaces()[0]
	atk, err := workload.NewAppAttacker(dev, evil, row)
	if err != nil {
		t.Fatal(err)
	}
	sched := workload.NewScheduler(dev)
	sched.Add(atk)
	sched.Run(func() bool { return len(def.History()) > 0 }, 200000)
	hist := def.History()
	if len(hist) == 0 {
		t.Fatal("defender never engaged for the app victim")
	}
	if hist[0].Victim != "com.svox.pico" {
		t.Fatalf("victim = %s, want com.svox.pico", hist[0].Victim)
	}
	if len(hist[0].Killed) == 0 || hist[0].Killed[0] != "com.evil.app" {
		t.Fatalf("killed = %v", hist[0].Killed)
	}
	if pico.Running() == false {
		t.Fatal("victim app crashed despite the defense")
	}
}

func TestDefenderReattachesAfterReboot(t *testing.T) {
	// With a huge engage threshold the defender stays passive and the
	// attack reboots the device; the defender must re-attach to the new
	// system_server.
	dev, err := device.Boot(device.Config{Seed: 5, ServerVM: artCfg(2600)})
	if err != nil {
		t.Fatal(err)
	}
	def, err := New(dev, Config{AlarmThreshold: 100000, EngageThreshold: 200000})
	if err != nil {
		t.Fatal(err)
	}
	oldPid := dev.SystemServer().Pid()
	evil, _ := dev.Apps().Install("com.evil.app")
	atk, err := workload.NewAttacker(dev, evil, "audio.startWatchingRoutes")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5000 && dev.SoftReboots() == 0; i++ {
		if err := atk.Step(); err != nil {
			break
		}
	}
	if dev.SoftReboots() != 1 {
		t.Fatal("attack should have rebooted the passive device")
	}
	if def.Monitored(oldPid) {
		t.Fatal("stale monitor on dead system_server")
	}
	if !def.Monitored(dev.SystemServer().Pid()) {
		t.Fatal("defender did not re-attach after reboot")
	}
}

func TestScoreEmptyInputs(t *testing.T) {
	r := newDefRig(t, smallCfg(), 0)
	if got := r.def.Score(nil, nil); got != nil {
		t.Fatalf("Score(nil, nil) = %v, want nil", got)
	}
}

func TestAverageDeltaNearPaperValue(t *testing.T) {
	avg := AverageDelta()
	if avg < 1200*time.Microsecond || avg > 2400*time.Microsecond {
		t.Fatalf("AverageDelta = %v, want ≈1.8 ms", avg)
	}
}

func TestAnalysisChargesVirtualTime(t *testing.T) {
	r := newDefRig(t, smallCfg(), 4)
	evil, _ := r.dev.Apps().Install("com.evil.app")
	atk, err := workload.NewAttacker(r.dev, evil, "audio.startWatchingRoutes")
	if err != nil {
		t.Fatal(err)
	}
	r.sched.Add(atk)
	r.sched.Run(func() bool { return len(r.def.History()) > 0 }, 200000)
	hist := r.def.History()
	if len(hist) == 0 {
		t.Fatal("no detection")
	}
	if hist[0].AnalysisTime <= 0 {
		t.Fatal("analysis consumed no virtual time")
	}
	if hist[0].AnalysisTime > 10*time.Second {
		t.Fatalf("analysis time %v implausibly large", hist[0].AnalysisTime)
	}
}

// artCfg builds a small-cap runtime config.
func artCfg(max int) art.Config { return art.Config{MaxGlobalRefs: max} }

func TestFormatDetection(t *testing.T) {
	det := Detection{
		Victim: "system_server", VictimPid: 2,
		EngagedAt: 18 * time.Second, Records: 6000, AnalysisTime: 400 * time.Millisecond,
		Scores: []AppScore{
			{Uid: 10061, Package: "com.evil.app", Score: 6100},
			{Uid: 10060, Package: "com.benign.app", Score: 120},
		},
		Killed: []string{"com.evil.app"}, Recovered: true,
	}
	out := FormatDetection(det)
	for _, want := range []string{"system_server", "com.evil.app", "6100", "recovered: true", "6000 IPC records"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}
