package defense

import (
	"testing"
	"time"

	"repro/internal/binder"
	"repro/internal/device"
	"repro/internal/faults"
	"repro/internal/kernel"
	"repro/internal/workload"
)

// faultedRig boots a device with a telemetry fault model, a defender,
// and one attacker; it drives the attack until the first engagement.
func faultedEngagement(t *testing.T, fcfg faults.Config, dcfg Config) (Detection, *device.Device) {
	t.Helper()
	dev, err := device.Boot(device.Config{Seed: 51, Faults: fcfg})
	if err != nil {
		t.Fatal(err)
	}
	def, err := New(dev, dcfg)
	if err != nil {
		t.Fatal(err)
	}
	evil, _ := dev.Apps().Install("com.evil.app")
	atk, err := workload.NewAttacker(dev, evil, "audio.startWatchingRoutes")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20000 && len(def.History()) == 0; i++ {
		if err := atk.Step(); err != nil {
			break
		}
	}
	hist := def.History()
	if len(hist) == 0 {
		t.Fatal("defender never engaged")
	}
	return hist[0], dev
}

func TestDefenderUnderRecordDropsFallsBack(t *testing.T) {
	det, _ := faultedEngagement(t, faults.Config{DropRate: 0.7}, smallCfg())
	if det.Coverage >= DefaultMinCoverage {
		t.Fatalf("coverage %.2f not below the fallback threshold", det.Coverage)
	}
	if det.DroppedRecords == 0 {
		t.Fatal("no dropped records accounted")
	}
	if !det.FallbackUsed {
		t.Fatal("fallback not engaged below MinCoverage")
	}
	if len(det.Killed) == 0 || det.Killed[0] != "com.evil.app" {
		t.Fatalf("killed = %v, want attacker first", det.Killed)
	}
	if !det.Recovered {
		t.Fatal("victim did not recover under drops")
	}
}

func TestDefenderUnderModerateDropsStaysOnCorrelation(t *testing.T) {
	det, _ := faultedEngagement(t, faults.Config{DropRate: 0.3}, smallCfg())
	if det.FallbackUsed {
		t.Fatalf("fallback engaged at coverage %.2f >= %.2f", det.Coverage, DefaultMinCoverage)
	}
	if det.Coverage >= 1 || det.Coverage < DefaultMinCoverage {
		t.Fatalf("coverage %.2f implausible for drop rate 0.3", det.Coverage)
	}
	if len(det.Scores) == 0 || det.Scores[0].Package != "com.evil.app" {
		t.Fatalf("correlation lost the attacker: %+v", det.Scores)
	}
	if !det.Recovered {
		t.Fatal("victim did not recover")
	}
}

func TestDefenderRetriesInjectedReadFailure(t *testing.T) {
	det, _ := faultedEngagement(t, faults.Config{ReadFailEvery: 2}, smallCfg())
	if det.ReadRetries != 1 || det.ReadFailed {
		t.Fatalf("expected one retry then success, got %+v", det)
	}
	if det.Records == 0 {
		t.Fatal("retried read returned no records")
	}
	if !det.Recovered {
		t.Fatal("victim did not recover after retried read")
	}
}

func TestDefenderRestartsFailedAnalysis(t *testing.T) {
	det, _ := faultedEngagement(t, faults.Config{AnalysisFailEvery: 2}, smallCfg())
	if det.AnalysisRestarts != 1 {
		t.Fatalf("AnalysisRestarts = %d, want 1", det.AnalysisRestarts)
	}
	if det.FallbackUsed {
		t.Fatal("fallback engaged although the restart succeeded")
	}
	if len(det.Scores) == 0 || det.Scores[0].Package != "com.evil.app" || !det.Recovered {
		t.Fatalf("restarted analysis failed to convict: %+v", det)
	}
}

func TestDefenderPersistentAnalysisFailureFallsBack(t *testing.T) {
	det, _ := faultedEngagement(t, faults.Config{AnalysisFailEvery: 1}, smallCfg())
	if det.AnalysisRestarts != maxAnalysisRestarts+1 {
		t.Fatalf("AnalysisRestarts = %d, want %d", det.AnalysisRestarts, maxAnalysisRestarts+1)
	}
	if !det.FallbackUsed {
		t.Fatal("fallback not engaged after persistent analysis failure")
	}
	if len(det.Killed) == 0 || det.Killed[0] != "com.evil.app" || !det.Recovered {
		t.Fatalf("fallback failed to convict: %+v", det)
	}
}

func TestAdaptiveDeltaWidensUnderJitter(t *testing.T) {
	fcfg := faults.Config{MaxJitter: 5 * time.Millisecond}
	det, _ := faultedEngagement(t, fcfg, smallCfg())
	if det.EffectiveDelta <= DefaultDelta {
		t.Fatalf("EffectiveDelta %v not widened under %v jitter", det.EffectiveDelta, fcfg.MaxJitter)
	}
	if det.EffectiveDelta > DefaultMaxDelay {
		t.Fatalf("EffectiveDelta %v exceeds MaxDelay", det.EffectiveDelta)
	}
	if len(det.Scores) == 0 || det.Scores[0].Package != "com.evil.app" || !det.Recovered {
		t.Fatalf("jittered engagement failed: %+v", det)
	}

	// The ablation switch keeps Δ fixed.
	fixed, _ := faultedEngagement(t, fcfg, Config{
		AlarmThreshold: 400, EngageThreshold: 1200, DisableAdaptiveDelta: true,
	})
	if fixed.EffectiveDelta != DefaultDelta {
		t.Fatalf("DisableAdaptiveDelta ignored: Δ=%v", fixed.EffectiveDelta)
	}
}

func TestClockSkewIsCorrected(t *testing.T) {
	det, _ := faultedEngagement(t, faults.Config{ClockSkew: 50 * time.Millisecond}, smallCfg())
	if len(det.Scores) == 0 || det.Scores[0].Package != "com.evil.app" {
		t.Fatalf("skewed timestamps lost the attacker: %+v", det.Scores)
	}
	if !det.Recovered {
		t.Fatal("victim did not recover under clock skew")
	}
}

// guardScenario boots a device where the evidence log is sabotaged (so
// ranking comes from retained-ref fallback attribution, whose counts are
// ground truth), one heavy attacker pins ~5000 refs and three weak apps
// pin ~200 each — an order of magnitude under the top, i.e. exactly the
// low-confidence band the innocent-kill guard polices.
func guardScenario(t *testing.T, budget int) (Detection, *device.Device) {
	t.Helper()
	dev, err := device.Boot(device.Config{Seed: 52})
	if err != nil {
		t.Fatal(err)
	}
	def, err := New(dev, Config{AlarmThreshold: 300, EngageThreshold: 5500, InnocentKillBudget: budget})
	if err != nil {
		t.Fatal(err)
	}
	if err := dev.Kernel().ProcFS().Remove(binder.LogPath, kernel.RootUid); err != nil {
		t.Fatal(err)
	}
	for _, pkg := range []string{"com.weak.a", "com.weak.b", "com.weak.c"} {
		app, _ := dev.Apps().Install(pkg)
		atk, err := workload.NewAttacker(dev, app, "audio.startWatchingRoutes")
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 200; i++ {
			if err := atk.Step(); err != nil {
				t.Fatal(err)
			}
		}
	}
	heavy, _ := dev.Apps().Install("com.heavy.app")
	atk, err := workload.NewAttacker(dev, heavy, "audio.startWatchingRoutes")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20000 && len(def.History()) == 0; i++ {
		if err := atk.Step(); err != nil {
			break
		}
	}
	hist := def.History()
	if len(hist) == 0 {
		t.Fatal("defender never engaged")
	}
	return hist[0], dev
}

// TestInnocentKillGuard: with budget 1, the guard allows the top
// candidate plus one low-confidence kill, then stops and records the
// skips, leaving recovery incomplete rather than massacring bystanders.
func TestInnocentKillGuard(t *testing.T) {
	det, dev := guardScenario(t, 1)
	if !det.FallbackUsed {
		t.Fatal("expected fallback attribution ranking")
	}
	if len(det.Scores) < 4 || det.Scores[0].Package != "com.heavy.app" {
		t.Fatalf("scores = %+v, want heavy attacker on top of 4", det.Scores)
	}
	if len(det.Killed) != 2 || det.Killed[0] != "com.heavy.app" {
		t.Fatalf("killed = %v, want heavy attacker plus one weak app", det.Killed)
	}
	if det.GuardStops != 2 {
		t.Fatalf("GuardStops = %d, want 2 (remaining weak apps spared)", det.GuardStops)
	}
	if det.Recovered {
		t.Fatal("recovery should be incomplete with the guard holding")
	}
	alive := 0
	for _, pkg := range []string{"com.weak.a", "com.weak.b", "com.weak.c"} {
		if dev.Apps().ByPackage(pkg).Running() {
			alive++
		}
	}
	if alive != 2 {
		t.Fatalf("%d weak apps alive, want 2 spared by the guard", alive)
	}
}

// TestInnocentKillGuardUnbounded pins the paper's default (budget 0 =
// guard off): everything in the ranking dies.
func TestInnocentKillGuardUnbounded(t *testing.T) {
	det, _ := guardScenario(t, 0)
	if det.GuardStops != 0 || len(det.Killed) != 4 || !det.Recovered {
		t.Fatalf("unbounded budget detection killed %v (guard stops %d, recovered %v), want all 4",
			det.Killed, det.GuardStops, det.Recovered)
	}
}
