package code

import "testing"

func TestMethodIDRoundTrip(t *testing.T) {
	id := MakeMethodID("com.android.server.Foo", "register")
	c, m := id.Split()
	if c != "com.android.server.Foo" || m != "register" {
		t.Fatalf("Split = %q, %q", c, m)
	}
}

func TestMethodLookup(t *testing.T) {
	p := NewProgram()
	p.AddClass(&Class{
		Name:    "A",
		Methods: []*Method{{ID: MakeMethodID("A", "x"), Class: "A", Name: "x"}},
	})
	if p.Method(MakeMethodID("A", "x")) == nil {
		t.Fatal("method not found")
	}
	if p.Method(MakeMethodID("A", "y")) != nil || p.Method(MakeMethodID("B", "x")) != nil {
		t.Fatal("phantom method found")
	}
	if p.MethodCount() != 1 {
		t.Fatalf("MethodCount = %d", p.MethodCount())
	}
}

func TestDuplicateClassPanics(t *testing.T) {
	p := NewProgram()
	p.AddClass(&Class{Name: "A"})
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate AddClass did not panic")
		}
	}()
	p.AddClass(&Class{Name: "A"})
}

func TestImplementsTransitively(t *testing.T) {
	p := NewProgram()
	p.AddClass(&Class{Name: "Base", Implements: []string{"IFoo"}})
	p.AddClass(&Class{Name: "Mid", Super: "Base"})
	p.AddClass(&Class{Name: "Leaf", Super: "Mid"})
	if !p.ImplementsTransitively("Leaf", "IFoo") {
		t.Fatal("transitive interface not found")
	}
	if p.ImplementsTransitively("Leaf", "IBar") {
		t.Fatal("phantom interface")
	}
	chain := p.SuperChain("Leaf")
	if len(chain) != 2 || chain[0] != "Mid" || chain[1] != "Base" {
		t.Fatalf("SuperChain = %v", chain)
	}
}

func TestReachableMethodsFollowsHandlers(t *testing.T) {
	p := NewProgram()
	p.AddClass(&Class{Name: "Svc", Methods: []*Method{
		{ID: "Svc#entry", Class: "Svc", Name: "entry", Calls: []CallSite{
			{Callee: "Svc#helper"},
			{Callee: "android.os.Handler#sendMessage", HandlerClass: "Svc$H"},
		}},
		{ID: "Svc#helper", Class: "Svc", Name: "helper"},
		{ID: "Svc#unrelated", Class: "Svc", Name: "unrelated"},
	}})
	p.AddClass(&Class{Name: "Svc$H", Methods: []*Method{
		{ID: "Svc$H#handleMessage", Class: "Svc$H", Name: "handleMessage", Calls: []CallSite{
			{Callee: "Svc$H#deep"},
		}},
		{ID: "Svc$H#deep", Class: "Svc$H", Name: "deep"},
	}})
	reach := p.ReachableMethods("Svc#entry")
	for _, want := range []MethodID{"Svc#entry", "Svc#helper", "Svc$H#handleMessage", "Svc$H#deep"} {
		if !reach[want] {
			t.Errorf("%s not reachable", want)
		}
	}
	if reach["Svc#unrelated"] {
		t.Error("unrelated method reachable")
	}
}

func TestReachableHandlesCycles(t *testing.T) {
	p := NewProgram()
	p.AddClass(&Class{Name: "C", Methods: []*Method{
		{ID: "C#a", Class: "C", Name: "a", Calls: []CallSite{{Callee: "C#b"}}},
		{ID: "C#b", Class: "C", Name: "b", Calls: []CallSite{{Callee: "C#a"}}},
	}})
	reach := p.ReachableMethods("C#a")
	if len(reach) != 2 {
		t.Fatalf("reach = %v", reach)
	}
}

func TestNativePathCount(t *testing.T) {
	p := NewProgram()
	// root → {m1, m2} → add; m1 also calls add directly twice = parallel edges.
	p.AddNative(&NativeFunc{Name: "root", JNIEntry: true, Calls: []string{"m1", "m2"}})
	p.AddNative(&NativeFunc{Name: "m1", Calls: []string{"add", "add"}})
	p.AddNative(&NativeFunc{Name: "m2", Calls: []string{"add"}})
	p.AddNative(&NativeFunc{Name: "add"})
	if got := p.NativePathCount("root", "add"); got != 3 {
		t.Fatalf("path count = %d, want 3", got)
	}
	if got := p.NativePathCount("m2", "add"); got != 1 {
		t.Fatalf("m2 path count = %d, want 1", got)
	}
	if got := p.NativePathCount("add", "nothing"); got != 0 {
		t.Fatalf("no-path count = %d, want 0", got)
	}
}

func TestNativePathSummarySplitsInitOnly(t *testing.T) {
	p := NewProgram()
	p.AddNative(&NativeFunc{Name: "jni1", JNIEntry: true, Calls: []string{"add"}})
	p.AddNative(&NativeFunc{Name: "jni2", JNIEntry: true, Calls: []string{"add", "add"}})
	p.AddNative(&NativeFunc{Name: "CacheClass", InitOnly: true, Calls: []string{"add"}})
	p.AddNative(&NativeFunc{Name: "noPath", JNIEntry: true})
	p.AddNative(&NativeFunc{Name: "add"})
	s := p.SummarizeNativePaths("add")
	if s.TotalPaths != 4 || s.InitOnlyPaths != 1 || s.ReachablePaths() != 3 {
		t.Fatalf("summary = %+v", s)
	}
	if s.ByRoot["jni2"] != 2 || s.ByRoot["CacheClass"] != 1 {
		t.Fatalf("ByRoot = %v", s.ByRoot)
	}
	if _, ok := s.ByRoot["noPath"]; ok {
		t.Fatal("rootless function in ByRoot")
	}
}

func TestNativeCycleDetection(t *testing.T) {
	p := NewProgram()
	p.AddNative(&NativeFunc{Name: "a", JNIEntry: true, Calls: []string{"b"}})
	p.AddNative(&NativeFunc{Name: "b", Calls: []string{"a", "add"}})
	p.AddNative(&NativeFunc{Name: "add"})
	defer func() {
		if recover() == nil {
			t.Fatal("cycle did not panic")
		}
	}()
	p.NativePathCount("a", "add")
}

func TestParamTypeCarriesBinder(t *testing.T) {
	carrying := []ParamType{ParamBinder, ParamInterface, ParamObjectWithBinder, ParamBinderArray}
	for _, pt := range carrying {
		if !pt.CarriesBinder() {
			t.Errorf("%v should carry a binder", pt)
		}
	}
	for _, pt := range []ParamType{ParamOther, ParamList} {
		if pt.CarriesBinder() {
			t.Errorf("%v should not (directly) carry a binder", pt)
		}
	}
}
