// Package code defines the program model the static-analysis pipeline
// operates on: classes, methods, call edges, AIDL interface definitions,
// JNI registrations and a native-code call graph. It stands in for the
// bytecode/ELF artifacts the paper analyzes with SOOT, PScout, dex2jar and
// Doxygen (§III); internal/corpus synthesizes an AOSP-6.0.1-like program
// in this model, and internal/analysis recovers the vulnerability ground
// truth from it.
package code

import (
	"fmt"
	"sort"
)

// ParamType classifies a method parameter as the risky-IPC detector needs
// (§III-C2 enumerates the four strong-binder transmission scenarios).
type ParamType int

const (
	// ParamOther is any non-binder-carrying type.
	ParamOther ParamType = iota
	// ParamBinder is android.os.IBinder or a subclass of Binder.
	ParamBinder
	// ParamInterface is an IInterface (AIDL callback) type.
	ParamInterface
	// ParamObjectWithBinder is an object type containing a Binder or
	// IInterface field.
	ParamObjectWithBinder
	// ParamBinderArray is an array of Binder/IInterface.
	ParamBinderArray
	// ParamList is a java.util.List whose element type is erased; only
	// the manual-annotation table can tell whether it carries binders
	// (§III-C2: "due to Type Erasure, we have to manually check").
	ParamList
)

// String names the parameter classification.
func (p ParamType) String() string {
	switch p {
	case ParamOther:
		return "other"
	case ParamBinder:
		return "Binder"
	case ParamInterface:
		return "IInterface"
	case ParamObjectWithBinder:
		return "object-with-binder"
	case ParamBinderArray:
		return "binder-array"
	case ParamList:
		return "List<?>"
	default:
		return fmt.Sprintf("ParamType(%d)", int(p))
	}
}

// CarriesBinder reports whether the parameter transmits a strong binder
// (Lists are resolved separately via manual annotations).
func (p ParamType) CarriesBinder() bool {
	switch p {
	case ParamBinder, ParamInterface, ParamObjectWithBinder, ParamBinderArray:
		return true
	default:
		return false
	}
}

// SinkKind classifies where a binder-typed parameter flows inside a
// method body — the facts the risky-IPC sifter's four rules key on
// (§III-C3).
type SinkKind int

const (
	// SinkNone: the binder is used only inside the method (rule 2).
	SinkNone SinkKind = iota
	// SinkThread: only Thread.nativeCreate is involved (rule 1).
	SinkThread
	// SinkReadOnlyQuery: the binder keys a read-only Map/Set lookup
	// (rule 3).
	SinkReadOnlyQuery
	// SinkMemberField: the binder is assigned to a single member field,
	// revoking the previous value (rule 4).
	SinkMemberField
	// SinkCollection: the binder is added to a growing collection
	// (List/Map/RemoteCallbackList) — the vulnerable pattern.
	SinkCollection
)

// String names the sink.
func (s SinkKind) String() string {
	switch s {
	case SinkNone:
		return "local-use"
	case SinkThread:
		return "thread-create"
	case SinkReadOnlyQuery:
		return "read-only-query"
	case SinkMemberField:
		return "member-field"
	case SinkCollection:
		return "collection"
	default:
		return fmt.Sprintf("SinkKind(%d)", int(s))
	}
}

// BinderFlow records how one binder-carrying parameter is used.
type BinderFlow struct {
	Param int
	Sink  SinkKind
}

// MethodID uniquely names a method as "Class#method".
type MethodID string

// MakeMethodID builds a MethodID.
func MakeMethodID(class, method string) MethodID {
	return MethodID(class + "#" + method)
}

// Split returns the class and method parts.
func (id MethodID) Split() (class, method string) {
	s := string(id)
	for i := len(s) - 1; i >= 0; i-- {
		if s[i] == '#' {
			return s[:i], s[i+1:]
		}
	}
	return "", s
}

// CallSite is one outgoing call edge, optionally carrying a class-constant
// argument (how addService registration sites name the service class).
type CallSite struct {
	Callee MethodID
	// ClassArg is the class constant passed at the site (e.g. the stub
	// class registered with ServiceManager), "" if none.
	ClassArg string
	// StringArg is a string constant passed (e.g. the service name).
	StringArg string
	// HandlerClass, when set, marks a Handler.sendMessage-style indirect
	// dispatch: control continues at HandlerClass#handleMessage. PScout
	// resolves these; our detector follows them explicitly.
	HandlerClass string
}

// Method is one Java method in the program model.
type Method struct {
	ID     MethodID
	Class  string
	Name   string
	Params []ParamType
	// Abstract methods have no body (interface/AIDL declarations).
	Abstract bool
	// NativeDecl marks `native` methods whose implementation is bound
	// via registerNativeMethods.
	NativeDecl bool
	Calls      []CallSite
	Flows      []BinderFlow
}

// Class is one Java class.
type Class struct {
	Name string
	// Super is the superclass name ("" for java.lang.Object).
	Super string
	// Implements lists implemented interface class names.
	Implements []string
	// Abstract marks abstract (base/service-template) classes.
	Abstract bool
	// AIDLGenerated marks Stub classes emitted by the AIDL compiler.
	AIDLGenerated bool
	// AsBinderReturns names the class of the IBinder returned by this
	// class's asBinder() — how the extractor finds app-extendable base
	// service classes (§III-A).
	AsBinderReturns string
	Methods         []*Method
}

// Interface is an AIDL interface definition: name plus declared methods.
type Interface struct {
	Name    string
	Methods []string
}

// NativeFunc is a node of the native call graph.
type NativeFunc struct {
	Name string
	// JNIEntry marks functions that are JNI method implementations —
	// the roots the JGR entry extractor searches from.
	JNIEntry bool
	// InitOnly marks functions reachable only during runtime
	// initialization (class caching etc.); paths through them are
	// filtered out (§III-B1 filters 67 of 147).
	InitOnly bool
	// RegistersService / RegistersClass mark native call sites of
	// ServiceManager::addService — how the extractor discovers the five
	// native system services (§III-A).
	RegistersService string
	RegistersClass   string
	Calls            []string
}

// JNIRegistration maps a Java native method to its native function, as
// AndroidRuntime::registerNativeMethods records (§III-B2).
type JNIRegistration struct {
	JavaClass  string
	JavaMethod string
	NativeFunc string
}

// ServiceRegistration is a discovered ServiceManager registration.
type ServiceRegistration struct {
	ServiceName string
	StubClass   string
	Native      bool
}

// Program is a complete analyzable code base.
type Program struct {
	Classes    map[string]*Class
	Interfaces map[string]*Interface
	Natives    map[string]*NativeFunc
	JNI        []JNIRegistration
	// PermissionMap is the PScout-style map from "Class#method" to the
	// required permission name ("" = none) (§III-C3 sifts by it).
	PermissionMap map[MethodID]string
	// ListCarriesBinder is the manual-annotation table resolving
	// type-erased List parameters (§III-C2).
	ListCarriesBinder map[MethodID]bool
}

// NewProgram returns an empty program.
func NewProgram() *Program {
	return &Program{
		Classes:           make(map[string]*Class),
		Interfaces:        make(map[string]*Interface),
		Natives:           make(map[string]*NativeFunc),
		PermissionMap:     make(map[MethodID]string),
		ListCarriesBinder: make(map[MethodID]bool),
	}
}

// AddClass inserts a class; it panics on duplicates (corpus bugs).
func (p *Program) AddClass(c *Class) {
	if _, ok := p.Classes[c.Name]; ok {
		panic(fmt.Sprintf("code: duplicate class %s", c.Name))
	}
	p.Classes[c.Name] = c
}

// AddInterface inserts an AIDL interface definition.
func (p *Program) AddInterface(i *Interface) {
	if _, ok := p.Interfaces[i.Name]; ok {
		panic(fmt.Sprintf("code: duplicate interface %s", i.Name))
	}
	p.Interfaces[i.Name] = i
}

// AddNative inserts a native function.
func (p *Program) AddNative(f *NativeFunc) {
	if _, ok := p.Natives[f.Name]; ok {
		panic(fmt.Sprintf("code: duplicate native %s", f.Name))
	}
	p.Natives[f.Name] = f
}

// Method resolves a MethodID.
func (p *Program) Method(id MethodID) *Method {
	class, name := id.Split()
	c, ok := p.Classes[class]
	if !ok {
		return nil
	}
	for _, m := range c.Methods {
		if m.Name == name {
			return m
		}
	}
	return nil
}

// MethodCount returns the total number of (non-abstract) methods.
func (p *Program) MethodCount() int {
	n := 0
	for _, c := range p.Classes {
		for _, m := range c.Methods {
			if !m.Abstract {
				n++
			}
		}
	}
	return n
}

// ClassNames returns all class names, sorted (stable iteration for the
// analysis passes).
func (p *Program) ClassNames() []string {
	out := make([]string, 0, len(p.Classes))
	for n := range p.Classes {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// ImplementsTransitively reports whether class implements the interface
// directly or through its superclass chain.
func (p *Program) ImplementsTransitively(class, iface string) bool {
	for class != "" {
		c, ok := p.Classes[class]
		if !ok {
			return false
		}
		for _, i := range c.Implements {
			if i == iface {
				return true
			}
		}
		class = c.Super
	}
	return false
}

// SuperChain returns the superclass chain of a class (nearest first).
func (p *Program) SuperChain(class string) []string {
	var out []string
	c, ok := p.Classes[class]
	for ok && c.Super != "" {
		out = append(out, c.Super)
		c, ok = p.Classes[c.Super]
	}
	return out
}
