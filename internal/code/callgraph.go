package code

import (
	"fmt"
	"sort"
)

// ReachableMethods walks the Java call graph from a root method,
// following direct call edges and Handler.sendMessage indirections
// (§III-C1: "we use PScout to parse the indirect dependency such as
// Message Handler"). It returns every reachable MethodID including the
// root.
func (p *Program) ReachableMethods(root MethodID) map[MethodID]bool {
	seen := make(map[MethodID]bool)
	stack := []MethodID{root}
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[id] {
			continue
		}
		seen[id] = true
		m := p.Method(id)
		if m == nil {
			continue
		}
		for _, cs := range m.Calls {
			if !seen[cs.Callee] {
				stack = append(stack, cs.Callee)
			}
			if cs.HandlerClass != "" {
				h := MakeMethodID(cs.HandlerClass, "handleMessage")
				if !seen[h] {
					stack = append(stack, h)
				}
			}
		}
	}
	return seen
}

// NativePathCount counts the distinct simple paths in the native call
// graph from fn to target. The native graph synthesized by the corpus is
// a DAG, so memoized counting is exact; a cycle would make the count
// unbounded and panics.
func (p *Program) NativePathCount(fn, target string) int {
	memo := make(map[string]int)
	onStack := make(map[string]bool)
	var count func(name string) int
	count = func(name string) int {
		if name == target {
			return 1
		}
		if c, ok := memo[name]; ok {
			return c
		}
		if onStack[name] {
			panic(fmt.Sprintf("code: cycle through %s in native call graph", name))
		}
		f, ok := p.Natives[name]
		if !ok {
			return 0
		}
		onStack[name] = true
		total := 0
		for _, callee := range f.Calls {
			total += count(callee)
		}
		onStack[name] = false
		memo[name] = total
		return total
	}
	return count(fn)
}

// NativePathSummary aggregates the §III-B1 funnel: for every native
// function, the number of simple paths to target, split by whether the
// root is init-only.
type NativePathSummary struct {
	// TotalPaths is the number of root→target paths over all roots.
	TotalPaths int
	// InitOnlyPaths counts paths whose root is an init-only function.
	InitOnlyPaths int
	// ByRoot maps each root with ≥1 path to its path count.
	ByRoot map[string]int
}

// ReachablePaths returns TotalPaths − InitOnlyPaths.
func (s NativePathSummary) ReachablePaths() int { return s.TotalPaths - s.InitOnlyPaths }

// SummarizeNativePaths counts paths to target from every JNI-entry or
// init-only root in the native graph.
func (p *Program) SummarizeNativePaths(target string) NativePathSummary {
	sum := NativePathSummary{ByRoot: make(map[string]int)}
	var roots []string
	for name, f := range p.Natives {
		if f.JNIEntry || f.InitOnly {
			roots = append(roots, name)
		}
	}
	sort.Strings(roots)
	for _, name := range roots {
		n := p.NativePathCount(name, target)
		if n == 0 {
			continue
		}
		sum.ByRoot[name] = n
		sum.TotalPaths += n
		if p.Natives[name].InitOnly {
			sum.InitOnlyPaths += n
		}
	}
	return sum
}
