// Package core is the top-level API of the JGRE toolkit — the paper's
// primary contribution assembled into three entry points:
//
//   - Audit: the four-step JGRE analysis (paper §III) over a program
//     corpus, with optional dynamic verification on a simulated device.
//   - NewProtectedDevice: a booted Android simulation with the JGRE
//     Defender (paper §V) attached.
//   - Report rendering for every table the paper prints (Tables I–V) and
//     the pipeline funnel.
//
// Downstream code (cmd tools, examples, benchmarks) should need nothing
// below this package for the common paths; the sub-packages remain
// available for fine-grained control.
package core

import (
	"context"
	"encoding/json"
	"fmt"

	"repro/internal/analysis"
	"repro/internal/catalog"
	"repro/internal/corpus"
	"repro/internal/defense"
	"repro/internal/device"
	"repro/internal/trace"
)

// AuditConfig parameterizes Audit.
type AuditConfig struct {
	// ThirdPartyApps sizes the synthetic Google Play population scanned
	// for Table V; 0 skips the third-party study.
	ThirdPartyApps int
	// Dynamic enables the verification stage against a freshly booted
	// device (step 4 of the methodology). Static-only audits are faster
	// but report candidates, not confirmed vulnerabilities.
	Dynamic bool
	// VerifyCalls is the per-candidate invocation count for the dynamic
	// stage (0 = 300).
	VerifyCalls int
	// Seed drives the device boot used for verification.
	Seed int64
	// Workers sizes the dynamic stage's verification pool (0 = one per
	// CPU, 1 = sequential); the result is identical either way.
	Workers int
}

// Audit runs the paper's analysis methodology end to end and returns the
// pipeline result.
func Audit(cfg AuditConfig) (*analysis.PipelineResult, error) {
	c := corpus.Generate(corpus.Options{ThirdPartyApps: cfg.ThirdPartyApps})
	if !cfg.Dynamic {
		return analysis.RunStatic(c.Program, nil), nil
	}
	dev, err := device.Boot(device.Config{
		Seed:                  cfg.Seed,
		InstallThirdPartyApps: cfg.ThirdPartyApps > 0,
	})
	if err != nil {
		return nil, err
	}
	return analysis.Run(context.Background(), c.Program, dev, analysis.VerifyConfig{Calls: cfg.VerifyCalls, Workers: cfg.Workers})
}

// ProtectedDevice bundles a booted device with its defender.
type ProtectedDevice struct {
	Device   *device.Device
	Defender *defense.Defender
}

// NewProtectedDevice boots a device and attaches the JGRE Defender with
// the paper's thresholds (or the provided overrides).
func NewProtectedDevice(devCfg device.Config, defCfg defense.Config) (*ProtectedDevice, error) {
	dev, err := device.Boot(devCfg)
	if err != nil {
		return nil, err
	}
	def, err := defense.New(dev, defCfg)
	if err != nil {
		return nil, err
	}
	def.OnDetection = func(det defense.Detection) {
		dev.Journal().Add(det.EngagedAt, trace.KindDetection, det.Victim,
			fmt.Sprintf("killed %v, recovered=%v, %d records in %v",
				det.Killed, det.Recovered, det.Records, det.AnalysisTime))
	}
	return &ProtectedDevice{Device: dev, Defender: def}, nil
}

// FormatFunnel renders the pipeline funnel (§III/§IV summary).
func FormatFunnel(f analysis.Funnel) string {
	s := "JGRE analysis funnel (paper §III–§IV)\n"
	s += fmt.Sprintf("  system services registered ............ %d\n", f.SystemServices)
	s += fmt.Sprintf("    implemented in native code .......... %d\n", f.NativeServices)
	s += fmt.Sprintf("  IPC methods extracted ................. %d\n", f.IPCMethods)
	s += fmt.Sprintf("  native paths to IndirectReferenceTable::Add %d\n", f.NativePaths)
	s += fmt.Sprintf("    init-only, filtered ................. %d\n", f.InitOnlyPaths)
	s += fmt.Sprintf("    exploitable ......................... %d\n", f.ReachablePaths)
	s += fmt.Sprintf("  Java JGR entry methods ................ %d\n", f.JavaJGREntries)
	s += fmt.Sprintf("  risky IPC methods (detector) .......... %d\n", f.RiskyMethods)
	s += fmt.Sprintf("  sifted as innocent/unreachable ........ %d\n", f.SiftedMethods)
	s += fmt.Sprintf("  candidates to dynamic verification .... %d\n", f.Candidates)
	if f.Confirmed > 0 || f.RejectedDynamic > 0 {
		s += fmt.Sprintf("  confirmed vulnerable .................. %d\n", f.Confirmed)
		s += fmt.Sprintf("  cleared by dynamic testing ............ %d\n", f.RejectedDynamic)
		s += fmt.Sprintf("  vulnerable system services ............ %d\n", f.VulnerableServices)
	}
	return s
}

// FormatTableI renders Table I: the unprotected vulnerable IPC interfaces
// with their required permissions.
func FormatTableI() string {
	s := "Table I: unprotected vulnerable IPC interfaces\n"
	s += fmt.Sprintf("%-22s %-45s %s\n", "SERVICE", "INTERFACE", "PERMISSION (LEVEL)")
	n := 0
	for _, row := range catalog.Interfaces() {
		if row.Protection != catalog.Unprotected {
			continue
		}
		n++
		perm := "-"
		if row.Permission != "" {
			perm = fmt.Sprintf("%s (%s)", row.Permission, row.PermLevel)
		}
		s += fmt.Sprintf("%-22s %-45s %s\n", row.Service, row.Method, perm)
	}
	s += fmt.Sprintf("total: %d interfaces\n", n)
	return s
}

// FormatTableII renders Table II: interfaces protected only by service
// helper classes.
func FormatTableII() string {
	s := "Table II: vulnerable IPC interfaces protected by service helper classes\n"
	s += fmt.Sprintf("%-14s %-22s %-35s %s\n", "SERVICE", "HELPER CLASS", "INTERFACE", "LIMIT")
	for _, row := range catalog.Interfaces() {
		if row.Protection != catalog.HelperGuard {
			continue
		}
		s += fmt.Sprintf("%-14s %-22s %-35s %d\n", row.Service, row.HelperClass, row.Method, row.GuardLimit)
	}
	s += "all of the above are bypassable by calling the binder interface directly (Code-Snippet 2)\n"
	return s
}

// FormatTableIII renders Table III: interfaces with per-process
// constraints in the service.
func FormatTableIII() string {
	s := "Table III: IPC interfaces protected by per-process constraints\n"
	s += fmt.Sprintf("%-14s %-42s %s\n", "SERVICE", "INTERFACE", "PROTECTED?")
	for _, row := range catalog.Interfaces() {
		if row.Protection != catalog.PerProcessGuard {
			continue
		}
		status := "Yes"
		if row.Bypassable {
			status = "No — " + row.BypassNote
		}
		s += fmt.Sprintf("%-14s %-42s %s\n", row.Service, row.Method, status)
	}
	return s
}

// FormatTableIV renders Table IV: vulnerable prebuilt core apps.
func FormatTableIV() string {
	s := "Table IV: vulnerable prebuilt core apps\n"
	s += fmt.Sprintf("%-12s %-28s %s\n", "APP", "CODE PATH IN AOSP", "VULNERABLE IPC METHOD")
	for _, row := range catalog.PrebuiltAppInterfaces() {
		s += fmt.Sprintf("%-12s %-28s %s\n", row.App, row.CodePath, row.Method)
	}
	return s
}

// FormatTableV renders Table V: vulnerable third-party apps.
func FormatTableV() string {
	s := "Table V: vulnerable third-party apps\n"
	s += fmt.Sprintf("%-24s %-14s %s\n", "APP", "DOWNLOADS", "VULNERABLE IPC INTERFACE")
	for _, row := range catalog.ThirdPartyAppInterfaces() {
		s += fmt.Sprintf("%-24s %-14s %s\n", row.App, row.Downloads, row.Method)
	}
	return s
}

// FormatFindings renders the dynamic stage's confirmations and
// rejections.
func FormatFindings(v *analysis.VerifyResult) string {
	if v == nil {
		return "dynamic verification not run\n"
	}
	s := fmt.Sprintf("confirmed vulnerable interfaces: %d\n", len(v.Confirmed))
	for _, f := range v.Confirmed {
		perm := ""
		if f.Permission != "" {
			perm = " [" + f.Permission + "]"
		}
		s += fmt.Sprintf("  %-60s +%.1f JGR/call%s\n", f.FullName(), f.GrowthPerCall, perm)
	}
	s += fmt.Sprintf("cleared by dynamic testing: %d\n", len(v.Rejected))
	for _, r := range v.Rejected {
		s += fmt.Sprintf("  %-60s %s\n", r.Service+"."+r.Method, r.Reason)
	}
	return s
}

// JSONReport is the machine-readable audit result.
type JSONReport struct {
	Funnel    analysis.Funnel      `json:"funnel"`
	Confirmed []JSONFinding        `json:"confirmed,omitempty"`
	Rejected  []analysis.Rejection `json:"rejected,omitempty"`
}

// JSONFinding is one confirmed vulnerability in the JSON report.
type JSONFinding struct {
	Interface     string  `json:"interface"`
	GrowthPerCall float64 `json:"growth_per_call"`
	Permission    string  `json:"permission,omitempty"`
	Protection    string  `json:"protection"`
	Bypassable    bool    `json:"bypassable,omitempty"`
}

// FormatJSON renders the pipeline result as indented JSON for downstream
// tooling (CI gates, dashboards).
func FormatJSON(res *analysis.PipelineResult) (string, error) {
	rep := JSONReport{Funnel: res.Funnel()}
	if res.Verify != nil {
		for _, f := range res.Verify.Confirmed {
			jf := JSONFinding{
				Interface:     f.FullName(),
				GrowthPerCall: f.GrowthPerCall,
				Permission:    f.Permission,
				Protection:    "none",
			}
			if row, ok := catalog.InterfaceByName(f.FullName()); ok {
				jf.Protection = row.Protection.String()
				jf.Bypassable = row.Bypassable || row.Protection == catalog.HelperGuard
			}
			rep.Confirmed = append(rep.Confirmed, jf)
		}
		rep.Rejected = res.Verify.Rejected
	}
	b, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return "", fmt.Errorf("core: marshalling report: %w", err)
	}
	return string(b) + "\n", nil
}
