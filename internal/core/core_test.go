package core

import (
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/catalog"
	"repro/internal/defense"
	"repro/internal/device"
)

func TestStaticAudit(t *testing.T) {
	res, err := Audit(AuditConfig{ThirdPartyApps: 100})
	if err != nil {
		t.Fatal(err)
	}
	f := res.Funnel()
	if f.SystemServices != 104 || f.NativePaths != 147 {
		t.Fatalf("funnel = %+v", f)
	}
	if res.Verify != nil {
		t.Fatal("static audit ran dynamic verification")
	}
	out := FormatFunnel(f)
	for _, want := range []string{"104", "147", "67", "80"} {
		if !strings.Contains(out, want) {
			t.Errorf("funnel output missing %q:\n%s", want, out)
		}
	}
}

func TestDynamicAudit(t *testing.T) {
	res, err := Audit(AuditConfig{Dynamic: true, VerifyCalls: 100, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Verify == nil {
		t.Fatal("dynamic audit skipped verification")
	}
	if got := len(res.Verify.Confirmed); got != 54+3 { // 54 system + 3 prebuilt (no third-party corpus)
		t.Fatalf("confirmed = %d, want 57", got)
	}
	out := FormatFindings(res.Verify)
	if !strings.Contains(out, "confirmed vulnerable interfaces: 57") {
		t.Errorf("findings output wrong:\n%.400s", out)
	}
	if !strings.Contains(out, "constraint held") {
		t.Errorf("findings output missing dynamic rejections:\n%.400s", out)
	}
}

func TestNewProtectedDevice(t *testing.T) {
	pd, err := NewProtectedDevice(device.Config{Seed: 1}, defense.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !pd.Defender.Monitored(pd.Device.SystemServer().Pid()) {
		t.Fatal("defender not attached to system_server")
	}
	if !pd.Device.Driver().LoggingEnabled() {
		t.Fatal("IPC logging not enabled")
	}
}

func TestTableRendering(t *testing.T) {
	t1 := FormatTableI()
	if !strings.Contains(t1, "total: 44 interfaces") {
		t.Errorf("Table I wrong:\n%.200s", t1)
	}
	if !strings.Contains(t1, "acquireWakeLock") || !strings.Contains(t1, "WAKE_LOCK (normal)") {
		t.Error("Table I missing known rows")
	}
	t2 := FormatTableII()
	if !strings.Contains(t2, "WifiManager") || !strings.Contains(t2, "acquireWifiLock") {
		t.Error("Table II missing the wifi rows")
	}
	t3 := FormatTableIII()
	if !strings.Contains(t3, "enqueueToast") || !strings.Contains(t3, `"android"`) {
		t.Error("Table III missing the enqueueToast bypass")
	}
	t4 := FormatTableIV()
	if !strings.Contains(t4, "PicoTts") || !strings.Contains(t4, "external/svox/pico") {
		t.Error("Table IV missing PicoTts")
	}
	t5 := FormatTableV()
	if !strings.Contains(t5, "Google Text-to-speech") {
		t.Error("Table V missing rows")
	}
	// Row counts line up with the catalog.
	if got := strings.Count(t2, "\n") - 3; got != 9 {
		t.Errorf("Table II rows = %d, want 9", got)
	}
	if got := strings.Count(t4, "\n") - 2; got != len(catalog.PrebuiltAppInterfaces()) {
		t.Errorf("Table IV rows = %d", got)
	}
}

func TestFormatJSON(t *testing.T) {
	res, err := Audit(AuditConfig{Dynamic: true, VerifyCalls: 80, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	out, err := FormatJSON(res)
	if err != nil {
		t.Fatal(err)
	}
	var rep JSONReport
	if err := json.Unmarshal([]byte(out), &rep); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if rep.Funnel.SystemServices != 104 {
		t.Fatalf("funnel = %+v", rep.Funnel)
	}
	if len(rep.Confirmed) != 57 {
		t.Fatalf("confirmed = %d, want 57", len(rep.Confirmed))
	}
	byIface := make(map[string]JSONFinding)
	for _, f := range rep.Confirmed {
		byIface[f.Interface] = f
	}
	wifi := byIface["wifi.acquireWifiLock"]
	if wifi.Protection != "helper-guard" || !wifi.Bypassable {
		t.Fatalf("wifi finding = %+v", wifi)
	}
	if len(rep.Rejected) != 3 {
		t.Fatalf("rejected = %d, want 3", len(rep.Rejected))
	}
}
