package core_test

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/defense"
	"repro/internal/device"
	"repro/internal/workload"
)

// ExampleAudit runs the static half of the paper's methodology and prints
// the funnel's inventory numbers.
func ExampleAudit() {
	res, err := core.Audit(core.AuditConfig{})
	if err != nil {
		panic(err)
	}
	f := res.Funnel()
	fmt.Println(f.SystemServices, f.NativeServices)
	fmt.Println(f.NativePaths, f.InitOnlyPaths, f.ReachablePaths)
	fmt.Println(f.Candidates)
	// Output:
	// 104 5
	// 147 67 80
	// 60
}

// ExampleNewProtectedDevice boots a defended device, launches the
// clipboard attack, and prints what the defender did.
func ExampleNewProtectedDevice() {
	pd, err := core.NewProtectedDevice(
		device.Config{Seed: 1},
		defense.Config{AlarmThreshold: 400, EngageThreshold: 1200},
	)
	if err != nil {
		panic(err)
	}
	evil, err := pd.Device.Apps().Install("com.evil.app")
	if err != nil {
		panic(err)
	}
	atk, err := workload.NewAttacker(pd.Device, evil, "clipboard.addPrimaryClipChangedListener")
	if err != nil {
		panic(err)
	}
	for evil.Running() {
		if err := atk.Step(); err != nil {
			break
		}
	}
	det := pd.Defender.History()[0]
	fmt.Println(det.Victim, det.Killed, det.Recovered, pd.Device.SoftReboots())
	// Output:
	// system_server [com.evil.app] true 0
}
