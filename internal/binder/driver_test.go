package binder

import (
	"errors"
	"testing"
	"time"

	"repro/internal/art"
	"repro/internal/kernel"
	"repro/internal/simclock"
)

// rig is a minimal two-process device for binder tests.
type rig struct {
	clock  *simclock.Clock
	k      *kernel.Kernel
	d      *Driver
	sm     *ServiceManager
	server *kernel.Process // system_server stand-in
	app    *kernel.Process
}

func newRig(t *testing.T, serverVM art.Config) *rig {
	t.Helper()
	clock := simclock.New()
	k := kernel.New(clock, kernel.Config{})
	d := New(k, Config{})
	server := k.Spawn(kernel.SpawnConfig{
		Name: kernel.SystemServerName, Uid: kernel.SystemUid,
		OomScoreAdj: kernel.SystemAdj, VM: serverVM,
	})
	app := k.Spawn(kernel.SpawnConfig{Name: "com.evil.app", Uid: 10061})
	return &rig{clock: clock, k: k, d: d, sm: NewServiceManager(d), server: server, app: app}
}

// registerEcho installs a service that echoes an int32 and reports caller
// identity.
func (r *rig) registerEcho(t *testing.T, name string) {
	t.Helper()
	stub := r.d.NewLocalBinder(r.server, "EchoService", TransactorFunc(func(c *Call) error {
		v, err := c.Data.ReadInt32()
		if err != nil {
			return err
		}
		c.Reply.WriteInt32(v + 1)
		c.Reply.WriteInt32(int32(c.SenderUid))
		return nil
	}))
	if err := r.sm.AddService(name, stub); err != nil {
		t.Fatal(err)
	}
}

// registerRetainer installs a service that retains every binder it
// receives — the shape of every vulnerable interface.
func (r *rig) registerRetainer(t *testing.T, name string, retained *[]*BinderRef) {
	t.Helper()
	stub := r.d.NewLocalBinder(r.server, "RetainerService", TransactorFunc(func(c *Call) error {
		ref, err := c.Data.ReadStrongBinder()
		if err != nil {
			return err
		}
		ref.Retain()
		*retained = append(*retained, ref)
		return nil
	}))
	if err := r.sm.AddService(name, stub); err != nil {
		t.Fatal(err)
	}
}

func TestCrossProcessTransact(t *testing.T) {
	r := newRig(t, art.Config{})
	r.registerEcho(t, "echo")

	svc, err := r.sm.GetService("echo", r.app)
	if err != nil {
		t.Fatal(err)
	}
	data, reply := NewParcel(), NewParcel()
	data.WriteInt32(41)
	if err := svc.Binder().Transact(1, data, reply); err != nil {
		t.Fatal(err)
	}
	got, err := reply.ReadInt32()
	if err != nil || got != 42 {
		t.Fatalf("echo reply = %d, %v", got, err)
	}
	uid, _ := reply.ReadInt32()
	if kernel.Uid(uid) != r.app.Uid() {
		t.Fatalf("service saw caller uid %d, want %d", uid, r.app.Uid())
	}
	if r.d.TotalTransactions() != 1 {
		t.Fatalf("TotalTransactions = %d, want 1", r.d.TotalTransactions())
	}
}

func TestTransactAdvancesClockByPayload(t *testing.T) {
	r := newRig(t, art.Config{})
	r.registerEcho(t, "echo")
	svc, _ := r.sm.GetService("echo", r.app)

	small, reply := NewParcel(), NewParcel()
	small.WriteInt32(1)
	t0 := r.clock.Now()
	svc.Binder().Transact(1, small, reply)
	smallCost := r.clock.Now() - t0

	big, reply2 := NewParcel(), NewParcel()
	big.WriteInt32(1)
	big.WriteBytes(make([]byte, 100*1024))
	t1 := r.clock.Now()
	svc.Binder().Transact(1, big, reply2)
	bigCost := r.clock.Now() - t1

	if bigCost <= smallCost {
		t.Fatalf("payload cost not charged: small=%v big=%v", smallCost, bigCost)
	}
	wantExtra := time.Duration(int64(DefaultLatency.PerKB) * (100*1024 + 9) / 1024)
	if diff := bigCost - smallCost; diff < wantExtra/2 || diff > wantExtra*2 {
		t.Fatalf("payload cost %v implausible (want ≈%v)", diff, wantExtra)
	}
}

func TestTransactionTooLarge(t *testing.T) {
	r := newRig(t, art.Config{})
	r.registerEcho(t, "echo")
	svc, _ := r.sm.GetService("echo", r.app)
	data := NewParcel()
	data.WriteBytes(make([]byte, MaxTransactionBytes+1))
	err := svc.Binder().Transact(1, data, nil)
	if !errors.Is(err, ErrTransactionTooLarge) {
		t.Fatalf("error = %v, want ErrTransactionTooLarge", err)
	}
}

func TestUnretainedBinderIsGCed(t *testing.T) {
	r := newRig(t, art.Config{})
	stub := r.d.NewLocalBinder(r.server, "InnocentService", TransactorFunc(func(c *Call) error {
		// Reads the binder but never retains it (sift rule 2, §III-C3).
		_, err := c.Data.ReadStrongBinder()
		return err
	}))
	r.sm.AddService("innocent", stub)
	svc, _ := r.sm.GetService("innocent", r.app)

	base := r.server.VM().GlobalRefCount()
	for i := 0; i < 50; i++ {
		data := NewParcel()
		data.WriteStrongBinder(r.d.NewLocalBinder(r.app, "android.os.Binder", nil))
		if err := svc.Binder().Transact(1, data, nil); err != nil {
			t.Fatal(err)
		}
	}
	grown := r.server.VM().GlobalRefCount()
	if grown <= base {
		t.Fatalf("no transient JGR growth observed (base=%d now=%d)", base, grown)
	}
	r.server.VM().GC()
	if got := r.server.VM().GlobalRefCount(); got != base {
		t.Fatalf("GC did not reclaim unretained refs: %d, want %d", got, base)
	}
}

func TestRetainedBindersSurviveGCAndExhaust(t *testing.T) {
	var retained []*BinderRef
	r := newRig(t, art.Config{MaxGlobalRefs: 100})
	r.registerRetainer(t, "vuln", &retained)
	svc, _ := r.sm.GetService("vuln", r.app)

	for i := 0; r.server.Alive(); i++ {
		if i > 300 {
			t.Fatal("server survived far beyond its JGR cap")
		}
		data := NewParcel()
		data.WriteStrongBinder(r.d.NewLocalBinder(r.app, "android.os.Binder", nil))
		err := svc.Binder().Transact(1, data, nil)
		if err != nil && !r.server.Alive() {
			break // runtime aborted mid-call
		}
		r.server.VM().GC() // GC must not help: refs are retained
	}
	if r.server.Alive() {
		t.Fatal("JGRE attack failed against retainer service")
	}
	if r.k.SoftReboots() != 1 {
		t.Fatalf("SoftReboots = %d, want 1 (system_server died)", r.k.SoftReboots())
	}
	if r.app.Alive() {
		t.Fatal("attacker survived the soft reboot")
	}
}

func TestProxyCachePreventsDuplicateJGR(t *testing.T) {
	var retained []*BinderRef
	r := newRig(t, art.Config{})
	r.registerRetainer(t, "vuln", &retained)
	svc, _ := r.sm.GetService("vuln", r.app)

	// Sending the SAME binder repeatedly must not grow the victim's
	// table: javaObjectForIBinder returns the cached proxy.
	token := r.d.NewLocalBinder(r.app, "android.os.Binder", nil)
	base := r.server.VM().GlobalRefCount()
	for i := 0; i < 20; i++ {
		data := NewParcel()
		data.WriteStrongBinder(token)
		if err := svc.Binder().Transact(1, data, nil); err != nil {
			t.Fatal(err)
		}
	}
	if got := r.server.VM().GlobalRefCount(); got != base+1 {
		t.Fatalf("server JGR = %d, want %d (one proxy for one node)", got, base+1)
	}
}

func TestSenderSideJavaBBinderRef(t *testing.T) {
	var retained []*BinderRef
	r := newRig(t, art.Config{})
	r.registerRetainer(t, "vuln", &retained)
	svc, _ := r.sm.GetService("vuln", r.app)

	appBase := r.app.VM().GlobalRefCount()
	const n = 25
	for i := 0; i < n; i++ {
		data := NewParcel()
		data.WriteStrongBinder(r.d.NewLocalBinder(r.app, "android.os.Binder", nil))
		if err := svc.Binder().Transact(1, data, nil); err != nil {
			t.Fatal(err)
		}
	}
	// The attacker's own table grows too: one JavaBBinder pin per token
	// with a live remote reference (§III-C2's nativeWriteStrongBinder).
	if got := r.app.VM().GlobalRefCount(); got != appBase+n {
		t.Fatalf("attacker JGR = %d, want %d", got, appBase+n)
	}
	// Releasing the service side frees the sender pins.
	for _, ref := range retained {
		ref.Release()
	}
	if got := r.app.VM().GlobalRefCount(); got != appBase {
		t.Fatalf("attacker JGR after release = %d, want %d", got, appBase)
	}
}

func TestDeathRecipientFreesServiceSide(t *testing.T) {
	r := newRig(t, art.Config{})
	type entry struct {
		ref  *BinderRef
		link *DeathLink
	}
	var entries []*entry
	stub := r.d.NewLocalBinder(r.server, "ListenerService", TransactorFunc(func(c *Call) error {
		ref, err := c.Data.ReadStrongBinder()
		if err != nil {
			return err
		}
		ref.Retain()
		e := &entry{ref: ref}
		link, err := ref.Binder().LinkToDeath(func() { e.ref.Release() })
		if err != nil {
			return err
		}
		e.link = link
		entries = append(entries, e)
		return nil
	}))
	r.sm.AddService("listener", stub)
	svc, _ := r.sm.GetService("listener", r.app)

	// base is 1: the app's proxy on the service stub pins the stub's
	// owner-side JavaBBinder reference in the server.
	base := r.server.VM().GlobalRefCount()
	if base != 1 {
		t.Fatalf("baseline server JGR = %d, want 1 (stub owner pin)", base)
	}
	for i := 0; i < 10; i++ {
		data := NewParcel()
		data.WriteStrongBinder(r.d.NewLocalBinder(r.app, "android.os.Binder", nil))
		if err := svc.Binder().Transact(1, data, nil); err != nil {
			t.Fatal(err)
		}
	}
	// 10 retained proxies + 10 death-recipient refs.
	if got := r.server.VM().GlobalRefCount(); got != base+20 {
		t.Fatalf("server JGR = %d, want %d", got, base+20)
	}
	// Client death fires recipients; the service releases everything,
	// and the dead client's proxy on the stub releases the owner pin too.
	r.k.Kill(r.app.Pid(), "user removed app")
	if got := r.server.VM().GlobalRefCount(); got != 0 {
		t.Fatalf("server JGR after client death = %d, want 0", got)
	}
}

func TestDeathLinkUnlink(t *testing.T) {
	r := newRig(t, art.Config{})
	token := r.d.NewLocalBinder(r.app, "android.os.Binder", nil)
	ref, err := r.d.Materialize(r.server, token)
	if err != nil {
		t.Fatal(err)
	}
	fired := false
	link, err := ref.Binder().LinkToDeath(func() { fired = true })
	if err != nil {
		t.Fatal(err)
	}
	link.Unlink()
	link.Unlink() // idempotent
	r.k.Kill(r.app.Pid(), "bye")
	if fired {
		t.Fatal("unlinked death recipient fired")
	}
}

func TestLinkToDeathOnLocalBinder(t *testing.T) {
	r := newRig(t, art.Config{})
	lb := r.d.NewLocalBinder(r.server, "x", nil)
	if _, err := lb.LinkToDeath(func() {}); !errors.Is(err, ErrLocalBinder) {
		t.Fatalf("error = %v, want ErrLocalBinder", err)
	}
}

func TestDeadObject(t *testing.T) {
	r := newRig(t, art.Config{})
	r.registerEcho(t, "echo")
	svc, _ := r.sm.GetService("echo", r.app)
	r.k.Kill(r.server.Pid(), "crash")

	data := NewParcel()
	data.WriteInt32(1)
	if err := svc.Binder().Transact(1, data, nil); !errors.Is(err, ErrDeadObject) {
		t.Fatalf("transact to dead service error = %v, want ErrDeadObject", err)
	}
	if svc.Binder().IsAlive() {
		t.Fatal("proxy to dead service claims alive")
	}
	if _, err := svc.Binder().LinkToDeath(func() {}); !errors.Is(err, ErrDeadObject) {
		t.Fatalf("linkToDeath on dead error = %v", err)
	}
}

func TestTokenBinderRejectsTransactions(t *testing.T) {
	r := newRig(t, art.Config{})
	token := r.d.NewLocalBinder(r.app, "android.os.Binder", nil)
	ref, _ := r.d.Materialize(r.server, token)
	if err := ref.Binder().Transact(1, nil, nil); !errors.Is(err, ErrUnknownTransaction) {
		t.Fatalf("error = %v, want ErrUnknownTransaction", err)
	}
}

func TestLocalBinderDirectTransact(t *testing.T) {
	r := newRig(t, art.Config{})
	stub := r.d.NewLocalBinder(r.server, "Local", TransactorFunc(func(c *Call) error {
		c.Reply.WriteString("ok")
		return nil
	}))
	reply := NewParcel()
	tx0 := r.d.TotalTransactions()
	if err := stub.Transact(1, nil, reply); err != nil {
		t.Fatal(err)
	}
	if s, _ := reply.ReadString(); s != "ok" {
		t.Fatalf("reply = %q", s)
	}
	if r.d.TotalTransactions() != tx0 {
		t.Fatal("in-process transact crossed the driver")
	}
}

func TestServiceManager(t *testing.T) {
	r := newRig(t, art.Config{})
	r.registerEcho(t, "echo")
	if err := r.sm.AddService("echo", r.d.NewLocalBinder(r.server, "x", nil)); !errors.Is(err, ErrServiceExists) {
		t.Fatalf("duplicate add error = %v", err)
	}
	// App-owned binders cannot register.
	appBinder := r.d.NewLocalBinder(r.app, "x", nil)
	if err := r.sm.AddService("evil", appBinder); !errors.Is(err, ErrNotSystem) {
		t.Fatalf("app register error = %v", err)
	}
	if _, err := r.sm.GetService("nope", r.app); !errors.Is(err, ErrServiceNotFound) {
		t.Fatalf("missing service error = %v", err)
	}
	if !r.sm.CheckService("echo") || r.sm.CheckService("nope") {
		t.Fatal("CheckService wrong")
	}
	got := r.sm.ListServices()
	if len(got) != 1 || got[0] != "echo" {
		t.Fatalf("ListServices = %v", got)
	}
	r.sm.Clear()
	if len(r.sm.ListServices()) != 0 {
		t.Fatal("Clear left services behind")
	}
}

func TestIPCLoggingToProcFS(t *testing.T) {
	r := newRig(t, art.Config{})
	r.registerEcho(t, "echo")
	svc, _ := r.sm.GetService("echo", r.app)

	if err := r.d.EnableIPCLogging(); err != nil {
		t.Fatal(err)
	}
	if err := r.d.EnableIPCLogging(); err != nil {
		t.Fatalf("EnableIPCLogging not idempotent: %v", err)
	}
	for i := 0; i < 3; i++ {
		data := NewParcel()
		data.WriteInt32(int32(i))
		if err := svc.Binder().Transact(7, data, nil); err != nil {
			t.Fatal(err)
		}
	}
	n, err := r.d.FlushLog()
	if err != nil || n != 3 {
		t.Fatalf("FlushLog = %d, %v; want 3", n, err)
	}
	recs, err := r.d.ReadLog(kernel.SystemUid)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("got %d records, want 3", len(recs))
	}
	rec := recs[0]
	if rec.FromPid != r.app.Pid() || rec.FromUid != r.app.Uid() || rec.ToPid != r.server.Pid() || rec.Code != 7 {
		t.Fatalf("record = %+v", rec)
	}
	// Third-party apps cannot read the evidence.
	if _, err := r.d.ReadLog(r.app.Uid()); !errors.Is(err, kernel.ErrPermissionDenied) {
		t.Fatalf("app read error = %v, want permission denied", err)
	}
	// Truncation clears the file.
	if err := r.d.TruncateLog(); err != nil {
		t.Fatal(err)
	}
	recs, _ = r.d.ReadLog(kernel.SystemUid)
	if len(recs) != 0 {
		t.Fatalf("after truncate: %d records", len(recs))
	}
}

func TestLoggingAddsLatency(t *testing.T) {
	r := newRig(t, art.Config{})
	r.registerEcho(t, "echo")
	svc, _ := r.sm.GetService("echo", r.app)

	run := func() time.Duration {
		data := NewParcel()
		data.WriteInt32(1)
		t0 := r.clock.Now()
		if err := svc.Binder().Transact(1, data, nil); err != nil {
			t.Fatal(err)
		}
		return r.clock.Now() - t0
	}
	stock := run()
	r.d.EnableIPCLogging()
	logged := run()
	r.d.DisableIPCLogging()
	if !r.d.LoggingEnabled() == false {
		t.Fatal("DisableIPCLogging did not take")
	}
	if logged <= stock {
		t.Fatalf("logging added no latency: stock=%v logged=%v", stock, logged)
	}
	back := run()
	if back != stock {
		t.Fatalf("latency after disable = %v, want %v", back, stock)
	}
}

func TestReplyCanCarryBinder(t *testing.T) {
	r := newRig(t, art.Config{})
	session := r.d.NewLocalBinder(r.server, "Session", TransactorFunc(func(c *Call) error {
		c.Reply.WriteString("session-data")
		return nil
	}))
	stub := r.d.NewLocalBinder(r.server, "Factory", TransactorFunc(func(c *Call) error {
		c.Reply.WriteStrongBinder(session)
		return nil
	}))
	r.sm.AddService("factory", stub)
	svc, _ := r.sm.GetService("factory", r.app)

	reply := NewParcel()
	if err := svc.Binder().Transact(1, nil, reply); err != nil {
		t.Fatal(err)
	}
	sess, err := reply.ReadStrongBinder()
	if err != nil || sess == nil {
		t.Fatalf("ReadStrongBinder from reply: %v, %v", sess, err)
	}
	r2 := NewParcel()
	if err := sess.Binder().Transact(2, nil, r2); err != nil {
		t.Fatal(err)
	}
	if s, _ := r2.ReadString(); s != "session-data" {
		t.Fatalf("session reply = %q", s)
	}
}

func BenchmarkTransactSmall(b *testing.B) {
	clock := simclock.New()
	k := kernel.New(clock, kernel.Config{})
	d := New(k, Config{})
	server := k.Spawn(kernel.SpawnConfig{Name: kernel.SystemServerName, Uid: kernel.SystemUid, OomScoreAdj: kernel.SystemAdj})
	app := k.Spawn(kernel.SpawnConfig{Name: "app", Uid: 10001})
	sm := NewServiceManager(d)
	stub := d.NewLocalBinder(server, "Echo", TransactorFunc(func(c *Call) error {
		v, _ := c.Data.ReadInt32()
		c.Reply.WriteInt32(v)
		return nil
	}))
	sm.AddService("echo", stub)
	svc, _ := sm.GetService("echo", app)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		data, reply := NewParcel(), NewParcel()
		data.WriteInt32(int32(i))
		if err := svc.Binder().Transact(1, data, reply); err != nil {
			b.Fatal(err)
		}
	}
}

// TestLocalFrameHygiene: transactions run in their own JNI local frame,
// so thousands of calls leave the root frame untouched — local references
// cannot be exhausted across calls (paper §II-A).
func TestLocalFrameHygiene(t *testing.T) {
	r := newRig(t, art.Config{})
	var retained []*BinderRef
	r.registerRetainer(t, "vuln", &retained)
	svc, _ := r.sm.GetService("vuln", r.app)
	for i := 0; i < 2000; i++ {
		data := NewParcel()
		data.WriteStrongBinder(r.d.NewLocalBinder(r.app, "android.os.Binder", nil))
		if err := svc.Binder().Transact(1, data, nil); err != nil {
			t.Fatal(err)
		}
	}
	if got := r.server.VM().LocalRefCount(); got != 0 {
		t.Fatalf("root-frame local refs = %d, want 0", got)
	}
	if got := r.server.VM().GlobalRefCount(); got < 2000 {
		t.Fatalf("global refs = %d; retention must use the global table", got)
	}
}
