package binder

import (
	"testing"

	"repro/internal/faults"
	"repro/internal/kernel"
)

// TestRingEvictionBurstSeam pins the ring-eviction boundary under
// deterministic drop bursts: with capacity 64 and bursts of 10 out of
// every 40 sequence numbers, the ring wraps a dozen times and every
// burst straddles an eviction seam somewhere. The survivor-set
// semantics must stay exactly those of the unbounded same-seed run —
// the survivors are the newest capacity-many records that escaped the
// burst filter, oldest first, carrying identical bytes per seq — and
// the three-way counter split (rate/burst drops vs ring evictions vs
// delivered) must reconcile.
func TestRingEvictionBurstSeam(t *testing.T) {
	const (
		n    = 500
		seed = 11
		cap  = 64
	)
	burst := faults.Config{BurstEvery: 40, BurstLen: 10}
	seamed := faults.Config{BurstEvery: 40, BurstLen: 10, RingCapacity: cap}

	// Reference: burst filter alone, no ring. Its record stream defines
	// both the bytes and the membership the bounded run must preserve.
	free := newFaultRig(t, burst, seed)
	free.flood(t, n)
	if _, err := free.d.FlushLog(); err != nil {
		t.Fatal(err)
	}
	freeRecs, err := free.d.ReadLog(kernel.SystemUid)
	if err != nil {
		t.Fatal(err)
	}
	// 10 of every 40 seqs burst-dropped, including the final partial
	// cycle (seqs 481-490 sit in its burst segment).
	wantLogged := n - (n/40*10 + min(10, n%40))
	if len(freeRecs) != wantLogged {
		t.Fatalf("unbounded burst run delivered %d records, want %d", len(freeRecs), wantLogged)
	}

	bounded := newFaultRig(t, seamed, seed)
	bounded.flood(t, n)
	if _, err := bounded.d.FlushLog(); err != nil {
		t.Fatal(err)
	}
	survivors, err := bounded.d.ReadLog(kernel.SystemUid)
	if err != nil {
		t.Fatal(err)
	}
	if len(survivors) != cap {
		t.Fatalf("survivors = %d, want ring capacity %d", len(survivors), cap)
	}
	// Survivor set: exactly the suffix of the burst-surviving stream.
	want := freeRecs[len(freeRecs)-cap:]
	for i, s := range survivors {
		if s != want[i] {
			t.Fatalf("survivor[%d] diverged across the ring seam:\n ring: %+v\n free: %+v", i, s, want[i])
		}
	}
	// The oldest survivor must sit mid-burst-cycle (the seam): its seq is
	// not aligned to the burst period, proving the eviction boundary cut
	// through a burst window rather than landing on a cycle edge.
	if first := survivors[0].Seq; first%40 == 1 {
		t.Fatalf("oldest survivor seq %d is burst-cycle aligned; seam not exercised", first)
	}

	stats := bounded.d.LogStats()
	if stats.Seq != n {
		t.Fatalf("Seq = %d, want %d", stats.Seq, n)
	}
	if stats.DroppedRate != uint64(n-wantLogged) {
		t.Fatalf("DroppedRate = %d, want %d burst drops", stats.DroppedRate, n-wantLogged)
	}
	if stats.Logged != uint64(wantLogged) {
		t.Fatalf("Logged = %d, want %d", stats.Logged, wantLogged)
	}
	if stats.DroppedRing != uint64(wantLogged-cap) {
		t.Fatalf("DroppedRing = %d, want %d", stats.DroppedRing, wantLogged-cap)
	}
	if stats.Delivered() != cap {
		t.Fatalf("Delivered = %d, want %d", stats.Delivered(), cap)
	}
	if stats.Dropped() != uint64(n-cap) {
		t.Fatalf("Dropped = %d, want %d", stats.Dropped(), n-cap)
	}
}
