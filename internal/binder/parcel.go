// Package binder simulates Android's Binder IPC framework: parcels with
// strong-binder marshalling, local binder objects and remote proxies, a
// kernel driver that dispatches and (optionally) logs every transaction,
// link-to-death notification, and the ServiceManager registry.
//
// The package wires the exact JGR-creation path the paper identifies
// (§III-B2): reading a strong binder out of a parcel in the receiving
// process (Parcel.nativeReadStrongBinder → ibinderForJavaObject) takes a
// JNI global reference in that process's runtime. Whether the reference
// survives depends on whether the service retains the proxy — which is
// precisely what separates vulnerable interfaces from innocent ones.
package binder

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/art"
)

// Maximum transaction size. The binder kernel driver caps transaction
// buffers at about 1 MB per process; we enforce the limit per transaction.
const MaxTransactionBytes = 1024 * 1024

// ErrParcelExhausted is returned when reading past the end of a parcel.
var ErrParcelExhausted = errors.New("binder: parcel exhausted")

// ErrTransactionTooLarge is returned when a parcel exceeds the binder
// transaction buffer.
var ErrTransactionTooLarge = errors.New("binder: transaction too large")

// TypeMismatchError is returned when a parcel read does not match the
// written type at the cursor.
type TypeMismatchError struct {
	Want, Got string
}

func (e *TypeMismatchError) Error() string {
	return fmt.Sprintf("binder: parcel type mismatch: reading %s, next item is %s", e.Want, e.Got)
}

// itemKind tags a parcel slot.
type itemKind int

const (
	kindInt32 itemKind = iota + 1
	kindInt64
	kindString
	kindBytes
	kindBinder
)

func (k itemKind) String() string {
	switch k {
	case kindInt32:
		return "int32"
	case kindInt64:
		return "int64"
	case kindString:
		return "string"
	case kindBytes:
		return "bytes"
	case kindBinder:
		return "strong binder"
	default:
		return fmt.Sprintf("itemKind(%d)", int(k))
	}
}

type parcelItem struct {
	kind itemKind
	i64  int64
	str  string
	raw  []byte
	b    IBinder
}

// sizeBytes approximates the flattened size of the item, mirroring
// Parcel's wire format closely enough for the Fig. 10 payload sweep:
// 4-byte ints, 8-byte longs, length-prefixed UTF-16 strings, length-
// prefixed byte arrays, and a flat_binder_object per binder.
func (it parcelItem) sizeBytes() int {
	switch it.kind {
	case kindInt32:
		return 4
	case kindInt64:
		return 8
	case kindString:
		return 4 + 2*len(it.str)
	case kindBytes:
		return 4 + len(it.raw)
	case kindBinder:
		return 24 // sizeof(flat_binder_object)
	default:
		return 0
	}
}

// Parcel is an ordered container of typed values exchanged in a binder
// transaction. The zero value is an empty parcel ready for writing.
//
// Reads consume items in write order; reading a binder out of a received
// parcel is the JGR-relevant operation and therefore requires the parcel
// to have been attached to a reading process by the driver.
type Parcel struct {
	items []parcelItem
	pos   int

	// reader is the process context reads execute in; set by the driver
	// when the parcel crosses a process boundary.
	reader *procContext
	// readRefs collects the BinderRefs materialized while the current
	// transaction reads this parcel, so the framework can mark the
	// unretained ones collectable when the transaction ends.
	readRefs []*BinderRef
}

// NewParcel returns an empty parcel.
func NewParcel() *Parcel { return &Parcel{} }

// parcelPool recycles parcels across transactions, mirroring
// Parcel.obtain()/recycle(): the framework's hot paths churn through two
// parcels per call, and pooling keeps that churn off the allocator.
// Gets and misses are counted (process-wide, since the pool itself is
// package-global) so the telemetry layer can report the pool hit rate.
var (
	parcelPoolGets   atomic.Uint64
	parcelPoolMisses atomic.Uint64

	parcelPool = sync.Pool{New: func() any {
		parcelPoolMisses.Add(1)
		return new(Parcel)
	}}
)

// ParcelPoolStats returns the process-wide count of ObtainParcel calls
// and how many missed the pool (allocated). The hit rate is
// (gets-misses)/gets; misses can exceed steady-state expectations under
// GC pressure, which is exactly what the gauge is for.
func ParcelPoolStats() (gets, misses uint64) {
	return parcelPoolGets.Load(), parcelPoolMisses.Load()
}

// ObtainParcel returns an empty parcel from the pool. Callers that can
// bound the parcel's lifetime (it must not escape the transaction) should
// pair it with Recycle; letting it leak to the GC instead is safe, just
// slower.
func ObtainParcel() *Parcel {
	parcelPoolGets.Add(1)
	return parcelPool.Get().(*Parcel)
}

// Recycle resets the parcel and returns it to the pool. The caller must
// not use the parcel afterwards.
func (p *Parcel) Recycle() {
	p.Reset()
	parcelPool.Put(p)
}

// Reset clears the parcel for reuse. Item slots are zeroed so a pooled
// parcel does not keep binders or payload bytes reachable, but both the
// item and readRef storage is kept, so steady-state reuse allocates
// nothing.
func (p *Parcel) Reset() {
	clear(p.items)
	p.items = p.items[:0]
	p.pos = 0
	p.reader = nil
	clear(p.readRefs)
	p.readRefs = p.readRefs[:0]
}

// Len returns the number of items in the parcel.
func (p *Parcel) Len() int { return len(p.items) }

// SizeBytes returns the approximate flattened transaction size.
func (p *Parcel) SizeBytes() int {
	total := 0
	for _, it := range p.items {
		total += it.sizeBytes()
	}
	return total
}

// WriteInt32 appends a 32-bit integer.
func (p *Parcel) WriteInt32(v int32) {
	p.items = append(p.items, parcelItem{kind: kindInt32, i64: int64(v)})
}

// WriteInt64 appends a 64-bit integer.
func (p *Parcel) WriteInt64(v int64) {
	p.items = append(p.items, parcelItem{kind: kindInt64, i64: v})
}

// WriteString appends a string.
func (p *Parcel) WriteString(s string) {
	p.items = append(p.items, parcelItem{kind: kindString, str: s})
}

// WriteBytes appends a byte array. The slice is copied: parcels own their
// payload (a transaction buffer is copied into the receiver in the real
// driver too).
func (p *Parcel) WriteBytes(b []byte) {
	p.items = append(p.items, parcelItem{kind: kindBytes, raw: append([]byte(nil), b...)})
}

// WriteStrongBinder appends a binder object (local stub or proxy).
// Writing a nil binder is legal and reads back as nil, matching
// Parcel.writeStrongBinder(null).
func (p *Parcel) WriteStrongBinder(b IBinder) {
	p.items = append(p.items, parcelItem{kind: kindBinder, b: b})
}

func (p *Parcel) next(want itemKind) (parcelItem, error) {
	if p.pos >= len(p.items) {
		return parcelItem{}, ErrParcelExhausted
	}
	it := p.items[p.pos]
	if it.kind != want {
		return parcelItem{}, &TypeMismatchError{Want: want.String(), Got: it.kind.String()}
	}
	p.pos++
	return it, nil
}

// NextIsInt32 reports whether the next unread item is an int32, without
// consuming it. Handlers use it for optional trailing arguments (e.g. the
// execution-path selector of multi-path interfaces).
func (p *Parcel) NextIsInt32() bool {
	return p.pos < len(p.items) && p.items[p.pos].kind == kindInt32
}

// ReadInt32 consumes a 32-bit integer.
func (p *Parcel) ReadInt32() (int32, error) {
	it, err := p.next(kindInt32)
	if err != nil {
		return 0, err
	}
	return int32(it.i64), nil
}

// ReadInt64 consumes a 64-bit integer.
func (p *Parcel) ReadInt64() (int64, error) {
	it, err := p.next(kindInt64)
	if err != nil {
		return 0, err
	}
	return it.i64, nil
}

// ReadString consumes a string.
func (p *Parcel) ReadString() (string, error) {
	it, err := p.next(kindString)
	if err != nil {
		return "", err
	}
	return it.str, nil
}

// ReadBytes consumes a byte array.
func (p *Parcel) ReadBytes() ([]byte, error) {
	it, err := p.next(kindBytes)
	if err != nil {
		return nil, err
	}
	return append([]byte(nil), it.raw...), nil
}

// ReadStrongBinder consumes a binder object and materializes it in the
// reading process. For a binder owned by another process this mints (or
// revives) a proxy and — crucially — takes a JNI global reference in the
// reading process's runtime, exactly the
// Parcel.nativeReadStrongBinder → IndirectReferenceTable::Add path of
// paper §III-B. The returned BinderRef starts unretained: unless the
// callee calls Retain before the transaction ends, the framework marks
// the reference collectable and the next GC frees it (sift rules 2–3).
//
// Reading a nil binder returns (nil, nil). Reading a binder owned by the
// reading process itself returns the original object with no new JGR.
func (p *Parcel) ReadStrongBinder() (*BinderRef, error) {
	it, err := p.next(kindBinder)
	if err != nil {
		return nil, err
	}
	if it.b == nil {
		return nil, nil
	}
	if p.reader == nil {
		return nil, errors.New("binder: ReadStrongBinder on a parcel not attached to a process (not received via a transaction)")
	}
	ref, err := p.reader.materialize(it.b)
	if err != nil {
		return nil, err
	}
	// JNI hands the unmarshalled object to the handler through a local
	// reference in the current frame (freed when the transaction pops
	// its frame); retention beyond the call requires the global ref.
	if _, lerr := p.reader.proc.VM().AddLocalRef(p.reader.driver.scratch(localObjID(ref), "android.os.IBinder")); lerr != nil {
		return nil, lerr
	}
	if ref.jgr != 0 {
		p.readRefs = append(p.readRefs, ref)
	}
	return ref, nil
}

// localObjID derives a stable object id for the transient local ref.
func localObjID(ref *BinderRef) art.ObjectID {
	return art.ObjectID(uint64(ref.jgr) | 1<<50)
}

// attachReader binds the parcel to the process that will read it.
func (p *Parcel) attachReader(ctx *procContext) {
	p.reader = ctx
	p.pos = 0
}

// finishRead marks every binder read from this parcel but never retained
// as collectable, simulating the Java-side proxies becoming unreachable
// once onTransact returns. The slice's storage is kept for reuse; the
// elements are dropped so finished refs stay collectable.
func (p *Parcel) finishRead() {
	for i, r := range p.readRefs {
		r.endOfTransaction()
		p.readRefs[i] = nil
	}
	p.readRefs = p.readRefs[:0]
}
