package binder

// logRing is the driver's pending IPC-record buffer: unbounded by
// default, bounded with oldest-first eviction when the fault injector
// models a kernel-style ring buffer. Eviction is O(1) — the oldest slot
// is overwritten in place and the head index advances — where the
// previous implementation memmoved the whole buffer per overflowing
// append, making flood scenarios quadratic in the ring capacity.
//
// Layout invariants:
//   - n is the number of live records; the logical order is
//     buf[head], buf[head+1], …, wrapping modulo len(buf).
//   - head is nonzero only while the ring is saturated at a fixed
//     capacity (n == capacity == len(buf)); the growing, unwrapped state
//     always has head == 0, so logical order equals slice order.
//   - drain resets head and n but keeps buf, so a flush-reuse cycle
//     allocates nothing once the buffer has reached its working size.
type logRing struct {
	buf  []IPCRecord
	head int
	n    int
}

// len reports the number of buffered records.
func (r *logRing) len() int { return r.n }

// push appends rec. capacity > 0 bounds the ring: a push into a full
// ring overwrites the oldest record in place and reports the eviction.
// The capacity must not change between pushes without an intervening
// drain (the fault injector's ring capacity is fixed per run).
func (r *logRing) push(rec IPCRecord, capacity int) (evicted bool) {
	if capacity > 0 && r.n == capacity {
		r.buf[r.head] = rec
		r.head++
		if r.head == capacity {
			r.head = 0
		}
		return true
	}
	if r.n < len(r.buf) {
		r.buf[r.n] = rec
	} else {
		r.buf = append(r.buf, rec)
	}
	r.n++
	return false
}

// drain appends the buffered records, oldest first, to dst and empties
// the ring (keeping its storage). It returns the extended slice.
func (r *logRing) drain(dst []IPCRecord) []IPCRecord {
	if r.head == 0 {
		dst = append(dst, r.buf[:r.n]...)
	} else {
		dst = append(dst, r.buf[r.head:r.n]...)
		dst = append(dst, r.buf[:r.head]...)
	}
	r.head, r.n = 0, 0
	return dst
}

// discard empties the ring without copying the records out.
func (r *logRing) discard() { r.head, r.n = 0, 0 }
