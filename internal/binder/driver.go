package binder

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/art"
	"repro/internal/faults"
	"repro/internal/kernel"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// LogPath is the procfs file the extended driver writes IPC records to
// (paper §V-B: "It creates a file /proc/jgre_ipc_log in memory to store
// the data").
const LogPath = "/proc/jgre_ipc_log"

// StatsPath is the companion procfs file exposing the log's telemetry
// health: "logged dropped overflowed read_errors". Like a real kernel
// ring buffer, losses are invisible in the data stream itself but the
// drop counters are readable, which is what lets the defender (and the
// experiments) reason about how much evidence went missing.
const StatsPath = "/proc/jgre_ipc_stats"

// LatencyModel charges virtual time for a transaction as
// Base + PerKB × payload/1024.
type LatencyModel struct {
	Base  time.Duration
	PerKB time.Duration
}

// cost returns the virtual time for a payload of size bytes.
func (m LatencyModel) cost(size int) time.Duration {
	return m.Base + time.Duration(int64(m.PerKB)*int64(size)/1024)
}

// DefaultLatency approximates a Nexus 5X binder round trip: ≈150 µs floor
// plus ≈5 µs per KiB of payload, which puts a 500 KB transaction near the
// stock curve of the paper's Fig. 10.
var DefaultLatency = LatencyModel{Base: 150 * time.Microsecond, PerKB: 5 * time.Microsecond}

// DefaultLogCost is the extra per-transaction cost of the defense's IPC
// recording, calibrated to the paper's measurements (§V-D2): at most
// ≈1.247 ms added per call at the 500 KB end of the sweep, and ≈46.7%
// aggregate overhead across Fig. 10's payload range.
var DefaultLogCost = LatencyModel{Base: 390 * time.Microsecond, PerKB: 1710 * time.Nanosecond}

// IPCRecord is one logged transaction, carrying the fields the paper's
// extended binder driver records: from_pid, to_pid, target handle/node and
// timestamp (§V-B), plus the sender uid and payload size the defender and
// experiments use.
type IPCRecord struct {
	Seq     uint64
	Time    time.Duration
	FromPid kernel.Pid
	FromUid kernel.Uid
	ToPid   kernel.Pid
	Handle  Handle
	Code    TxCode
	Size    int
}

// String formats the record as one procfs log line.
func (r IPCRecord) String() string {
	return fmt.Sprintf("%d %d %d %d %d %d %d %d",
		r.Seq, r.Time.Microseconds(), r.FromPid, r.FromUid, r.ToPid, r.Handle, r.Code, r.Size)
}

// maxLogMicros bounds a parsed timestamp so the microsecond→Duration
// conversion cannot overflow int64 nanoseconds.
const maxLogMicros = int64(1<<63-1) / 1000

// ParseIPCRecord parses a procfs log line produced by IPCRecord.String.
// The parser is strict — exactly eight decimal fields, no trailing
// garbage, timestamps and sizes in range — because the defender treats
// the log as kernel-authored evidence and a line it cannot round-trip is
// a corruption signal, not something to guess at.
func ParseIPCRecord(line string) (IPCRecord, error) {
	fields := strings.Fields(line)
	if len(fields) != 8 {
		return IPCRecord{}, fmt.Errorf("binder: IPC record %q has %d fields, want 8", line, len(fields))
	}
	bad := func(name string, err error) (IPCRecord, error) {
		return IPCRecord{}, fmt.Errorf("binder: IPC record %q: bad %s: %v", line, name, err)
	}
	var r IPCRecord
	seq, err := strconv.ParseUint(fields[0], 10, 64)
	if err != nil {
		return bad("seq", err)
	}
	r.Seq = seq
	us, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return bad("timestamp", err)
	}
	if us < 0 || us > maxLogMicros {
		return IPCRecord{}, fmt.Errorf("binder: IPC record %q: timestamp %d out of range", line, us)
	}
	r.Time = time.Duration(us) * time.Microsecond
	fromPid, err := strconv.ParseInt(fields[2], 10, 64)
	if err != nil {
		return bad("from_pid", err)
	}
	r.FromPid = kernel.Pid(fromPid)
	fromUid, err := strconv.ParseInt(fields[3], 10, 64)
	if err != nil {
		return bad("from_uid", err)
	}
	r.FromUid = kernel.Uid(fromUid)
	toPid, err := strconv.ParseInt(fields[4], 10, 64)
	if err != nil {
		return bad("to_pid", err)
	}
	r.ToPid = kernel.Pid(toPid)
	handle, err := strconv.ParseUint(fields[5], 10, 32)
	if err != nil {
		return bad("handle", err)
	}
	r.Handle = Handle(handle)
	code, err := strconv.ParseUint(fields[6], 10, 32)
	if err != nil {
		return bad("code", err)
	}
	r.Code = TxCode(code)
	size, err := strconv.ParseInt(fields[7], 10, 64)
	if err != nil {
		return bad("size", err)
	}
	if size < 0 || size > int64(MaxTransactionBytes) {
		return IPCRecord{}, fmt.Errorf("binder: IPC record %q: size %d out of range", line, size)
	}
	r.Size = int(size)
	return r, nil
}

// node is the driver-side identity of a local binder object.
type node struct {
	handle Handle
	local  *LocalBinder
	owner  *kernel.Process
	dead   bool

	// remoteRefs counts live proxies across all processes. While it is
	// positive the owner's runtime holds a JGR on the local binder (the
	// JavaBBinder / Parcel.nativeWriteStrongBinder entry of §III-C2),
	// which is why an attacker flooding a service with fresh Binder
	// tokens burns its own JGR table nearly as fast as the victim's.
	remoteRefs int
	ownerJGR   art.IndirectRef

	links []*DeathLink
}

func (n *node) removeLink(dl *DeathLink) {
	for i, l := range n.links {
		if l == dl {
			n.links = append(n.links[:i], n.links[i+1:]...)
			return
		}
	}
}

// procContext is the per-process binder state: the proxy cache (one
// BinderProxy per node, as javaObjectForIBinder guarantees) and the JGR
// bookkeeping that ties proxies to the process runtime.
type procContext struct {
	driver  *Driver
	proc    *kernel.Process
	proxies map[Handle]*BinderRef
	byJGR   map[art.IndirectRef]*BinderRef
	links   []*DeathLink
}

// materialize turns a parceled binder into this process's view of it,
// taking a JGR for cross-process binders.
func (c *procContext) materialize(b IBinder) (*BinderRef, error) {
	var n *node
	switch t := b.(type) {
	case *LocalBinder:
		if t.owner == c.proc {
			return &BinderRef{ctx: c, binder: t}, nil
		}
		n = c.driver.ensureNode(t)
	case *proxy:
		n = t.node
	default:
		return nil, fmt.Errorf("binder: cannot materialize %T", b)
	}
	if n.owner == c.proc {
		return &BinderRef{ctx: c, binder: n.local}, nil
	}
	if existing, ok := c.proxies[n.handle]; ok && !existing.closed {
		return existing, nil
	}
	px := &proxy{driver: c.driver, node: n, holder: c.proc}
	obj := c.driver.scratch(c.driver.nextObjectID(), "android.os.BinderProxy")
	jgr, err := c.proc.VM().AddGlobalRef(obj)
	if err != nil {
		// The reading process just exhausted its own JGR table; its
		// runtime has aborted and the kernel reaped it.
		return nil, fmt.Errorf("binder: materializing proxy in %s: %w", c.proc.Name(), err)
	}
	ref := &BinderRef{ctx: c, binder: px, jgr: jgr}
	c.proxies[n.handle] = ref
	c.byJGR[jgr] = ref
	c.driver.addRemoteRef(n)
	return ref, nil
}

// onJGRRemoved finalizes proxy bookkeeping when a proxy's global
// reference is deleted (explicit release or GC).
func (c *procContext) onJGRRemoved(ref art.IndirectRef) {
	br, ok := c.byJGR[ref]
	if !ok {
		return
	}
	delete(c.byJGR, ref)
	if cur, ok := c.proxies[br.node().handle]; ok && cur == br {
		delete(c.proxies, br.node().handle)
	}
	br.closed = true
	c.driver.dropRemoteRef(br.node())
}

// Driver is the simulated binder kernel driver: the single mediator of
// cross-process transactions.
type Driver struct {
	k     *kernel.Kernel
	cfg   Config
	clock clockIface

	nextObj      art.ObjectID
	nextBinderID uint64
	// nodes holds every node the driver has minted, indexed by handle-1:
	// handles are issued densely from 1, so one slice replaces the three
	// maps (by handle, by binder, by owner) this used to take. The
	// binder→node edge lives on the LocalBinder itself; per-owner walks
	// (process death only) scan the slice.
	nodes []*node
	ctxs  map[kernel.Pid]*procContext
	// nodeSlab and lbSlab are block allocators for nodes and
	// LocalBinders: boot (and every device clone) mints one of each per
	// census service, and a block amortizes ~100 small heap allocations
	// into one. Blocks are never appended past capacity, so pointers into
	// them stay valid; exhausted blocks are simply replaced.
	nodeSlab []node
	lbSlab   []LocalBinder

	logging bool
	logSeq  uint64
	// pending buffers records between flushes (bounded when the fault
	// injector models a kernel ring); flushed is the procfs file's
	// contents in native struct form, seq-ascending, with byPid/byUid
	// holding positions into it so window reads are indexed instead of
	// scanning every record. The text /proc format is rendered lazily
	// from flushed only when the file itself is read.
	pending      logRing
	flushed      []IPCRecord
	byPid        map[kernel.Pid][]int
	byUid        map[kernel.Uid][]int
	totalTx      uint64
	totalLogged  uint64
	droppedFault uint64
	droppedRing  uint64
	readErrs     uint64
	procfsOpened bool
	statsOpened  bool

	// scratchObj is the reusable Object header for the JGR-hook emit
	// path: art tables copy the object id out of the header, so the
	// driver's hot allocations (proxy materialization, owner-side pins,
	// transient local refs) can share one header instead of allocating a
	// fresh Object per reference.
	scratchObj art.Object

	// txBytes is the only push-based instrument on the transact hot path
	// (nil when Config.Metrics is unset): a fixed-bucket payload-size
	// histogram, one branch + one atomic-scan observation per call.
	txBytes *telemetry.Histogram

	// rec is the device's flight recorder (nil = tracing off, the
	// default). The transact path mints a deterministic trace ID per
	// sampled transaction and records the transact/dispatch/handler span
	// chain; the recorder never advances the virtual clock, so a traced
	// device executes the same trajectory as an untraced one.
	rec *trace.Recorder
}

type clockIface interface {
	Now() time.Duration
	Advance(time.Duration)
}

// Config parameterizes a Driver. Zero-value fields select defaults.
type Config struct {
	Latency LatencyModel
	LogCost LatencyModel

	// Faults, when non-nil, perturbs the IPC telemetry path: record
	// drops, a bounded pending-log ring, and timestamp jitter/skew are
	// applied at log-write time; read errors at ReadLog time. The
	// transaction path itself — dispatch, latency, JGR bookkeeping — is
	// never faulted, so a device with a fault injector executes the same
	// trajectory as one without; only the evidence the defender sees
	// degrades.
	Faults *faults.Injector

	// Metrics, when non-nil, is the registry the driver instruments
	// itself into. Almost everything is pull-based (gauge callbacks over
	// counters the driver already keeps), so the per-transaction cost of
	// instrumentation is one histogram observation.
	Metrics *telemetry.Registry
}

// New creates a driver attached to the kernel; it observes process deaths
// to fire death recipients and reclaim reference bookkeeping.
func New(k *kernel.Kernel, cfg Config) *Driver {
	return NewReusing(nil, k, cfg)
}

// NewReusing is New with allocation recycling: prev, when non-nil, must
// be a retired driver whose device is no longer referenced anywhere.
// Its node index, block allocators, per-process context maps, log-ring
// storage and flushed-log index are rewound and reused in place — the
// fleet slot recycle path mints ~100 stubs per trial, and reusing the
// slabs turns those into writes over warm memory instead of fresh heap.
// Passing a prev that is still in use corrupts both devices.
func NewReusing(prev *Driver, k *kernel.Kernel, cfg Config) *Driver {
	if cfg.Latency == (LatencyModel{}) {
		cfg.Latency = DefaultLatency
	}
	if cfg.LogCost == (LatencyModel{}) {
		cfg.LogCost = DefaultLogCost
	}
	var d *Driver
	if prev != nil {
		d = prev
		clear(d.ctxs)
		clear(d.byPid)
		clear(d.byUid)
		*d = Driver{
			k:        k,
			cfg:      cfg,
			clock:    k.Clock(),
			nodes:    d.nodes[:0],
			ctxs:     d.ctxs,
			byPid:    d.byPid,
			byUid:    d.byUid,
			nodeSlab: d.nodeSlab[:0],
			lbSlab:   d.lbSlab[:0],
			pending:  logRing{buf: d.pending.buf},
			flushed:  d.flushed[:0],
		}
	} else {
		d = &Driver{
			k:     k,
			cfg:   cfg,
			clock: k.Clock(),
			// Booting (or cloning) a device mints a node per census service;
			// presizing skips the append-growth copies on that path.
			nodes: make([]*node, 0, 128),
			ctxs:  make(map[kernel.Pid]*procContext),
			byPid: make(map[kernel.Pid][]int),
			byUid: make(map[kernel.Uid][]int),
		}
	}
	k.OnKill(func(p *kernel.Process, _ string) { d.onProcessDeath(p) })
	if reg := cfg.Metrics; reg != nil {
		d.txBytes = reg.Histogram("jgre_binder_tx_bytes",
			"Binder transaction payload sizes in bytes.", telemetry.SizeBuckets)
		d.registerMetrics(reg)
	}
	return d
}

// AttachMetrics instruments the driver into reg after construction.
// Device clones defer telemetry registration until the registry is first
// needed, so cloning stays microseconds; everything the gauges read is a
// counter the driver keeps regardless, so late attachment loses nothing
// except txBytes histogram observations made before the attach.
func (d *Driver) AttachMetrics(reg *telemetry.Registry) {
	if d.txBytes != nil || reg == nil {
		return
	}
	d.cfg.Metrics = reg
	d.txBytes = reg.Histogram("jgre_binder_tx_bytes",
		"Binder transaction payload sizes in bytes.", telemetry.SizeBuckets)
	d.registerMetrics(reg)
}

// registerMetrics wires the driver's pull gauges: every series reads a
// counter the driver keeps anyway, so rendering /proc/jgre_metrics is
// the only time these cost anything.
func (d *Driver) registerMetrics(reg *telemetry.Registry) {
	reg.GaugeFunc("jgre_binder_transactions_total",
		"Cross-process binder transactions dispatched since boot.",
		func() float64 { return float64(d.totalTx) })
	reg.GaugeFunc("jgre_binder_log_seq_total",
		"IPC log sequence numbers issued (every transaction that should have been recorded).",
		func() float64 { return float64(d.logSeq) })
	reg.GaugeFunc("jgre_binder_log_logged_total",
		"IPC records accepted into the pending log buffer.",
		func() float64 { return float64(d.totalLogged) })
	reg.GaugeFunc("jgre_binder_log_dropped_rate_total",
		"IPC records lost to injected per-record drops.",
		func() float64 { return float64(d.droppedFault) })
	reg.GaugeFunc("jgre_binder_log_ring_evictions_total",
		"IPC records evicted by bounded-ring overflow.",
		func() float64 { return float64(d.droppedRing) })
	reg.GaugeFunc("jgre_binder_log_read_errors_total",
		"Injected IPC log read failures observed by readers.",
		func() float64 { return float64(d.readErrs) })
	reg.GaugeFunc("jgre_binder_log_pending",
		"IPC records buffered awaiting flush (ring occupancy when bounded).",
		func() float64 { return float64(d.pending.len()) })
	reg.GaugeFunc("jgre_binder_log_flushed",
		"IPC records currently in the flushed procfs log.",
		func() float64 { return float64(len(d.flushed)) })
	reg.GaugeFunc("jgre_binder_ring_occupancy_ratio",
		"Pending-ring fill fraction; NaN-free zero when the buffer is unbounded.",
		func() float64 {
			if in := d.cfg.Faults; in != nil && in.RingCapacity() > 0 {
				return float64(d.pending.len()) / float64(in.RingCapacity())
			}
			return 0
		})
	reg.GaugeFunc("jgre_binder_parcel_pool_gets_total",
		"ObtainParcel calls (process-wide; the pool is shared).",
		func() float64 { g, _ := ParcelPoolStats(); return float64(g) })
	reg.GaugeFunc("jgre_binder_parcel_pool_misses_total",
		"ObtainParcel calls that allocated instead of reusing (process-wide).",
		func() float64 { _, m := ParcelPoolStats(); return float64(m) })
	reg.GaugeFunc("jgre_binder_call_pool_gets_total",
		"Call-frame pool gets (process-wide).",
		func() float64 { g, _ := CallPoolStats(); return float64(g) })
	reg.GaugeFunc("jgre_binder_call_pool_misses_total",
		"Call-frame pool misses (process-wide).",
		func() float64 { _, m := CallPoolStats(); return float64(m) })
}

// SetRecorder installs (or, with nil, removes) the flight recorder the
// transact path emits causal spans into. The device layer owns the
// recorder's lifecycle; NewReusing deliberately clears it so a recycled
// slot re-attaches the rewound recorder explicitly.
func (d *Driver) SetRecorder(r *trace.Recorder) { d.rec = r }

// Recorder returns the driver's flight recorder (nil = tracing off).
func (d *Driver) Recorder() *trace.Recorder { return d.rec }

// Kernel returns the kernel the driver serves.
func (d *Driver) Kernel() *kernel.Kernel { return d.k }

// TotalTransactions returns the number of cross-process transactions
// dispatched since boot.
func (d *Driver) TotalTransactions() uint64 { return d.totalTx }

// nextObjectID mints a device-unique simulated Java object id.
func (d *Driver) nextObjectID() art.ObjectID {
	d.nextObj++
	return d.nextObj
}

// scratch fills the driver's reusable Object header. The art tables copy
// the id out of the header on Add*, so the pointer may be reused for the
// next reference as soon as the call returns; the driver is
// single-threaded per device, making one header per driver safe.
func (d *Driver) scratch(id art.ObjectID, class string) *art.Object {
	d.scratchObj = art.Object{ID: id, Class: class}
	return &d.scratchObj
}

// NewLocalBinder creates a binder object owned by proc. handler may be nil
// for pure token binders.
func (d *Driver) NewLocalBinder(proc *kernel.Process, class string, handler Transactor) *LocalBinder {
	if proc == nil || !proc.Alive() {
		panic("binder: NewLocalBinder on a dead or nil process")
	}
	if class == "" {
		class = "android.os.Binder"
	}
	d.nextBinderID++
	if len(d.lbSlab) == cap(d.lbSlab) {
		d.lbSlab = make([]LocalBinder, 0, 128)
	}
	d.lbSlab = d.lbSlab[:len(d.lbSlab)+1]
	lb := &d.lbSlab[len(d.lbSlab)-1]
	*lb = LocalBinder{driver: d, owner: proc, class: class, handler: handler, id: d.nextBinderID}
	return lb
}

// context returns (creating if needed) the per-process binder state.
func (d *Driver) context(proc *kernel.Process) *procContext {
	if c, ok := d.ctxs[proc.Pid()]; ok {
		return c
	}
	c := &procContext{
		driver:  d,
		proc:    proc,
		proxies: make(map[Handle]*BinderRef),
		byJGR:   make(map[art.IndirectRef]*BinderRef),
	}
	proc.VM().AddJGRHook(func(ev art.JGREvent) {
		if ev.Op == art.OpRemove {
			c.onJGRRemoved(ev.Ref)
		}
	})
	d.ctxs[proc.Pid()] = c
	return c
}

// Materialize gives proc a reference to b outside any transaction — the
// path used by ServiceManager.getService and by tests. The returned ref is
// retained (the holder keeps the proxy in a long-lived variable).
func (d *Driver) Materialize(proc *kernel.Process, b IBinder) (*BinderRef, error) {
	ref, err := d.context(proc).materialize(b)
	if err != nil {
		return nil, err
	}
	ref.Retain()
	return ref, nil
}

func (d *Driver) ensureNode(lb *LocalBinder) *node {
	if lb.node != nil {
		return lb.node
	}
	if len(d.nodeSlab) == cap(d.nodeSlab) {
		d.nodeSlab = make([]node, 0, 128)
	}
	d.nodeSlab = d.nodeSlab[:len(d.nodeSlab)+1]
	n := &d.nodeSlab[len(d.nodeSlab)-1]
	*n = node{handle: Handle(len(d.nodes) + 1), local: lb, owner: lb.owner}
	d.nodes = append(d.nodes, n)
	lb.node = n
	return n
}

// NodeCount returns how many binder nodes (handles) the driver has
// minted since boot. Device cloning uses it to assert the replayed stub
// set reproduced the template's handle space exactly.
func (d *Driver) NodeCount() int { return len(d.nodes) }

// addRemoteRef notes a new proxy on n; the first remote holder pins the
// owner-side JavaBBinder global reference.
func (d *Driver) addRemoteRef(n *node) {
	n.remoteRefs++
	if n.remoteRefs == 1 && !n.dead && n.owner.Alive() && n.ownerJGR == 0 {
		obj := d.scratch(d.nextObjectID(), n.local.class)
		jgr, err := n.owner.VM().AddGlobalRef(obj)
		if err != nil {
			// The owner exhausted its own table (e.g. an attacker
			// minting tens of thousands of tokens); the kernel has
			// already reaped it via the VM abort hook.
			return
		}
		n.ownerJGR = jgr
	}
}

// dropRemoteRef releases the owner-side pin when the last proxy dies.
func (d *Driver) dropRemoteRef(n *node) {
	n.remoteRefs--
	if n.remoteRefs <= 0 && n.ownerJGR != 0 {
		if n.owner.Alive() {
			_ = n.owner.VM().DeleteGlobalRef(n.ownerJGR)
		}
		n.ownerJGR = 0
	}
}

// transact dispatches a transaction from the holder of a proxy to the
// node's owner.
func (d *Driver) transact(from *kernel.Process, n *node, code TxCode, data, reply *Parcel) error {
	if n.dead || !n.owner.Alive() {
		return ErrDeadObject
	}
	if !from.Alive() {
		return fmt.Errorf("binder: transaction from dead process %s", from.Name())
	}
	if data == nil {
		data = ObtainParcel()
		defer data.Recycle()
	}
	if reply == nil {
		reply = ObtainParcel()
		defer reply.Recycle()
	}
	size := data.SizeBytes()
	if size > MaxTransactionBytes {
		return fmt.Errorf("%w: %d bytes", ErrTransactionTooLarge, size)
	}

	rec := d.rec
	var (
		traced    bool
		txStart   time.Duration
		txTrace   trace.TraceID
		txSpan    trace.SpanID
		prevTrace trace.TraceID
		prevSpan  trace.SpanID
		prevUid   int32
	)
	if rec.Enabled() {
		txStart = d.clock.Now()
	}

	d.clock.Advance(d.cfg.Latency.cost(size))
	d.totalTx++
	if rec.Enabled() && rec.SampleTx(d.totalTx) {
		// The trace ID is a pure function of (device seed, transaction
		// seq) — the determinism contract behind cross-worker
		// byte-identical exports. Saving the previous context makes
		// nested cross-process transactions link to their parent span
		// and restore it on the way out.
		traced = true
		txTrace = rec.MintTrace(d.totalTx)
		txSpan = rec.NextSpanID()
		prevTrace, prevSpan, prevUid = rec.Context()
	}
	if d.txBytes != nil {
		d.txBytes.Observe(float64(size))
	}
	if d.logging {
		// The log write always charges its virtual-time cost — loss
		// happens downstream of the write — so the simulation trajectory
		// is identical across fault configurations and only the surviving
		// evidence differs.
		d.clock.Advance(d.cfg.LogCost.cost(size))
		d.logSeq++
		if in := d.cfg.Faults; in != nil && in.DropRecord(d.logSeq) {
			d.droppedFault++
		} else {
			// Fault-order pin: the jittered timestamp is a pure function
			// of (clock, seq), fixed BEFORE the ring decides whether this
			// append evicts, and eviction (droppedRing) happens before the
			// append is counted (totalLogged). Eviction therefore can
			// never perturb a surviving record's timestamp, and the
			// counters reconcile as Seq = Logged + DroppedRate,
			// Delivered = Logged - DroppedRing (pinned by
			// TestFaultOrderPinned).
			t := d.clock.Now()
			if in != nil {
				t = in.LogTimestamp(t, d.logSeq)
			}
			// The /proc text codec records microseconds; truncating here
			// keeps the struct records handed to readers bit-identical
			// with what a String/Parse round-trip of the rendered file
			// would produce.
			t -= t % time.Microsecond
			capacity := 0
			if in != nil {
				capacity = in.RingCapacity()
			}
			if d.pending.push(IPCRecord{
				Seq: d.logSeq, Time: t,
				FromPid: from.Pid(), FromUid: from.Uid(),
				ToPid: n.owner.Pid(), Handle: n.handle, Code: code, Size: size,
			}, capacity) {
				// Bounded ring: the oldest unflushed record was evicted,
				// like a real kernel ring buffer overflow.
				d.droppedRing++
			}
			d.totalLogged++
		}
	}

	// Pin the sender side of any local binders travelling in the parcel:
	// flattening a Binder into the driver is what creates its node.
	for _, it := range data.items {
		if it.kind == kindBinder && it.b != nil {
			if lb, ok := it.b.(*LocalBinder); ok {
				d.ensureNode(lb)
			}
		}
	}

	target := d.context(n.owner)
	data.attachReader(target)
	defer data.finishRead()
	reply.attachReader(d.context(from))

	if n.local.handler == nil {
		return ErrUnknownTransaction
	}
	var (
		handlerSpan trace.SpanID
		tHandler    time.Duration
	)
	if traced {
		// Dispatch span: latency charge, log write, node pinning —
		// everything between the sender's call and the handler running.
		// The handler span becomes the causal context, so JGR mutations
		// and defender engagements made on this transaction's behalf
		// attach beneath it.
		tHandler = d.clock.Now()
		rec.Emit(trace.SpanRecord{
			Trace: txTrace, ID: rec.NextSpanID(), Parent: txSpan, Kind: trace.SpanDispatch,
			Start: txStart, End: tHandler,
			Pid: int32(from.Pid()), Uid: int32(from.Uid()), Code: uint32(code), Val: int64(size),
		})
		handlerSpan = rec.NextSpanID()
		rec.SetContext(txTrace, handlerSpan, int32(from.Uid()))
	}
	// The handler runs inside a fresh JNI local frame: local references
	// taken while unmarshalling are freed wholesale when the transaction
	// returns — which is exactly why local references cannot be
	// exhausted across calls and the attack needs *global* references
	// (paper §II-A).
	vm := n.owner.VM()
	vm.PushLocalFrame()
	defer func() {
		if n.owner.Alive() {
			vm.PopLocalFrame()
		}
	}()
	c := obtainCall()
	c.Code, c.Data, c.Reply = code, data, reply
	c.SenderPid, c.SenderUid = from.Pid(), from.Uid()
	c.Target = n.local
	err := n.local.handler.OnTransact(c)
	recycleCall(c)
	if traced {
		tEnd := d.clock.Now()
		rec.Emit(trace.SpanRecord{
			Trace: txTrace, ID: handlerSpan, Parent: txSpan, Kind: trace.SpanHandler,
			Start: tHandler, End: tEnd,
			Pid: int32(n.owner.Pid()), Uid: int32(from.Uid()), Code: uint32(code),
		})
		rec.Emit(trace.SpanRecord{
			Trace: txTrace, ID: txSpan, Parent: prevSpan, Kind: trace.SpanTransact,
			Start: txStart, End: tEnd,
			Pid: int32(from.Pid()), Uid: int32(from.Uid()), Code: uint32(code), Val: int64(size),
		})
		rec.SetContext(prevTrace, prevSpan, prevUid)
	}
	return err
}

// callPool recycles Call frames across transactions. Handlers must not
// retain the *Call past OnTransact — the same contract Binder.onTransact
// has with its transaction buffers. Like parcelPool, gets and misses
// are counted process-wide for the pool-hit-rate gauges.
var (
	callPoolGets   atomic.Uint64
	callPoolMisses atomic.Uint64

	callPool = sync.Pool{New: func() any {
		callPoolMisses.Add(1)
		return new(Call)
	}}
)

// CallPoolStats returns the process-wide count of Call-frame pool gets
// and misses.
func CallPoolStats() (gets, misses uint64) {
	return callPoolGets.Load(), callPoolMisses.Load()
}

func obtainCall() *Call {
	callPoolGets.Add(1)
	return callPool.Get().(*Call)
}

func recycleCall(c *Call) {
	*c = Call{}
	callPool.Put(c)
}

// linkToDeath implements proxy.LinkToDeath.
func (d *Driver) linkToDeath(p *proxy, fn func()) (*DeathLink, error) {
	if p.node.dead || !p.node.owner.Alive() {
		return nil, ErrDeadObject
	}
	holder := d.context(p.holder)
	obj := d.scratch(d.nextObjectID(), "android.os.Binder$JavaDeathRecipient")
	jgr, err := holder.proc.VM().AddGlobalRef(obj)
	if err != nil {
		return nil, fmt.Errorf("binder: linkToDeath in %s: %w", holder.proc.Name(), err)
	}
	dl := &DeathLink{driver: d, node: p.node, holder: holder, fn: fn, jgr: jgr, active: true}
	p.node.links = append(p.node.links, dl)
	holder.links = append(holder.links, dl)
	return dl, nil
}

// onProcessDeath reclaims binder state for a dead process: its proxies
// release their remote refs, its death links deactivate, its nodes die and
// fire death recipients in the processes holding proxies to them — which
// is how services learn to drop a dead client's listeners and JGRs.
func (d *Driver) onProcessDeath(p *kernel.Process) {
	pid := p.Pid()
	if ctx, ok := d.ctxs[pid]; ok {
		delete(d.ctxs, pid)
		for _, br := range ctx.proxies {
			if !br.closed {
				br.closed = true
				d.dropRemoteRef(br.node())
			}
		}
		for _, dl := range ctx.links {
			if dl.active {
				dl.active = false
				dl.node.removeLink(dl)
			}
		}
	}
	for _, n := range d.nodes {
		if n.dead || n.owner.Pid() != pid {
			continue
		}
		n.dead = true
		n.ownerJGR = 0
		links := append([]*DeathLink(nil), n.links...)
		n.links = nil
		for _, dl := range links {
			if dl.holder.proc.Alive() {
				dl.fire()
			}
		}
		// Unlink the binder→node edge so a later flatten of the same
		// (dead) binder mints a fresh node, matching the map-era behaviour
		// of deleting the registration on death.
		n.local.node = nil
	}
}

// EnableIPCLogging turns on transaction recording, creating the kernel-
// only procfs log file and its telemetry-stats companion. Idempotent.
// The log file is provider-backed: the driver keeps flushed records as
// structs and renders the text /proc format only when the file itself is
// read, so struct consumers (the defender, dumpsys) never pay for the
// format/parse round trip.
func (d *Driver) EnableIPCLogging() error {
	if !d.procfsOpened {
		if err := d.k.ProcFS().CreateProvider(LogPath, kernel.RootUid, false, d.renderLog); err != nil {
			return err
		}
		d.procfsOpened = true
	}
	if !d.statsOpened {
		if err := d.k.ProcFS().Create(StatsPath, kernel.RootUid, false); err != nil {
			return err
		}
		d.statsOpened = true
		d.publishStats()
	}
	d.logging = true
	return nil
}

// LogStats is the driver's telemetry-health view of the IPC log.
type LogStats struct {
	// Seq is the number of log sequence numbers issued — every
	// transaction that should have been recorded, lost or not.
	Seq uint64
	// Logged counts records accepted into the pending buffer. Records
	// actually reaching the procfs file equal Logged - DroppedRing.
	Logged uint64
	// DroppedRate counts records lost to injected per-record drops.
	DroppedRate uint64
	// DroppedRing counts records evicted by bounded-ring overflow.
	DroppedRing uint64
	// ReadErrors counts injected log-read failures observed by readers.
	ReadErrors uint64
}

// Dropped is the total record loss across both drop mechanisms.
func (s LogStats) Dropped() uint64 { return s.DroppedRate + s.DroppedRing }

// Delivered is the number of records that reached the procfs file.
func (s LogStats) Delivered() uint64 { return s.Logged - s.DroppedRing }

// LogStats returns the driver's current telemetry counters.
func (d *Driver) LogStats() LogStats {
	return LogStats{
		Seq:         d.logSeq,
		Logged:      d.totalLogged,
		DroppedRate: d.droppedFault,
		DroppedRing: d.droppedRing,
		ReadErrors:  d.readErrs,
	}
}

// publishStats rewrites the procfs stats file from the live counters.
func (d *Driver) publishStats() {
	if !d.statsOpened {
		return
	}
	s := d.LogStats()
	line := fmt.Sprintf("seq %d logged %d dropped_rate %d dropped_ring %d read_errors %d\n",
		s.Seq, s.Logged, s.DroppedRate, s.DroppedRing, s.ReadErrors)
	_ = d.k.ProcFS().Write(StatsPath, kernel.RootUid, []byte(line))
}

// DisableIPCLogging stops recording; buffered records remain flushable.
func (d *Driver) DisableIPCLogging() { d.logging = false }

// PendingLogLen reports how many records are buffered awaiting FlushLog.
func (d *Driver) PendingLogLen() int { return d.pending.len() }

// LoggingEnabled reports whether transactions are being recorded.
func (d *Driver) LoggingEnabled() bool { return d.logging }

// renderLog produces the procfs text form of the flushed log — one
// IPCRecord.String line per record — on demand, when somebody reads the
// /proc file itself rather than the struct APIs.
func (d *Driver) renderLog() []byte {
	if len(d.flushed) == 0 {
		return nil
	}
	var sb strings.Builder
	sb.Grow(len(d.flushed) * 48)
	for i := range d.flushed {
		sb.WriteString(d.flushed[i].String())
		sb.WriteByte('\n')
	}
	return []byte(sb.String())
}

// FlushLog moves all buffered records into the procfs file's backing
// store and indexes them by victim pid and sender uid. It returns the
// number of records flushed. The pending buffer is cleared even when the
// file is gone (matching a failed append after the write-side buffer was
// consumed); the records are then lost, as before.
func (d *Driver) FlushLog() (int, error) {
	n := d.pending.len()
	if n == 0 {
		return 0, nil
	}
	if err := d.k.ProcFS().CheckRead(LogPath, kernel.RootUid); err != nil {
		d.pending.discard()
		return 0, err
	}
	base := len(d.flushed)
	d.flushed = d.pending.drain(d.flushed)
	for i := base; i < len(d.flushed); i++ {
		r := &d.flushed[i]
		d.byPid[r.ToPid] = append(d.byPid[r.ToPid], i)
		d.byUid[r.FromUid] = append(d.byUid[r.FromUid], i)
	}
	d.publishStats()
	return n, nil
}

// TruncateLog clears the procfs log contents (the defender does this after
// consuming a window of records). The index storage is retained so the
// steady-state poll loop allocates nothing.
func (d *Driver) TruncateLog() error {
	if !d.procfsOpened {
		return nil
	}
	if err := d.k.ProcFS().CheckRead(LogPath, kernel.RootUid); err != nil {
		return err
	}
	d.flushed = d.flushed[:0]
	for pid, idx := range d.byPid {
		d.byPid[pid] = idx[:0]
	}
	for uid, idx := range d.byUid {
		d.byUid[uid] = idx[:0]
	}
	return nil
}

// logReadable runs the shared read-side gauntlet: injected read faults
// first (standing in for the transient EIO a real procfs read can hit),
// then the procfs ACL, without materializing any contents.
func (d *Driver) logReadable(uid kernel.Uid) error {
	if in := d.cfg.Faults; in != nil {
		if err := in.ReadError(); err != nil {
			d.readErrs++
			d.publishStats()
			return err
		}
	}
	return d.k.ProcFS().CheckRead(LogPath, uid)
}

// ReadLog returns the flushed log as uid. Permission enforcement is the
// procfs's: app uids are denied, so malicious apps cannot observe or spoof
// the evidence stream. Injected read faults surface as
// faults.ErrInjectedRead before any data is returned.
func (d *Driver) ReadLog(uid kernel.Uid) ([]IPCRecord, error) {
	if err := d.logReadable(uid); err != nil {
		return nil, err
	}
	if len(d.flushed) == 0 {
		return nil, nil
	}
	return append([]IPCRecord(nil), d.flushed...), nil
}

// ReadLogSince returns the flushed records targeting victim whose sequence
// number exceeds afterSeq, oldest first. The per-victim position index
// plus a binary search on the (monotone) sequence numbers makes the read
// O(log n + window) instead of a scan over every flushed record — this is
// the defender's poll-path read. Permission and fault behaviour match
// ReadLog.
func (d *Driver) ReadLogSince(uid kernel.Uid, victim kernel.Pid, afterSeq uint64) ([]IPCRecord, error) {
	if err := d.logReadable(uid); err != nil {
		return nil, err
	}
	idx := d.byPid[victim]
	// Positions are appended in flush order and seqs are monotone, so the
	// index is seq-sorted.
	lo := sort.Search(len(idx), func(i int) bool {
		return d.flushed[idx[i]].Seq > afterSeq
	})
	if lo == len(idx) {
		return nil, nil
	}
	out := make([]IPCRecord, 0, len(idx)-lo)
	for _, pos := range idx[lo:] {
		out = append(out, d.flushed[pos])
	}
	return out, nil
}

// ReadLogBySender returns the flushed records sent by uid from, oldest
// first, via the per-uid index — the attribution view dumpsys-style tools
// want without scanning the whole log.
func (d *Driver) ReadLogBySender(uid kernel.Uid, from kernel.Uid) ([]IPCRecord, error) {
	if err := d.logReadable(uid); err != nil {
		return nil, err
	}
	idx := d.byUid[from]
	if len(idx) == 0 {
		return nil, nil
	}
	out := make([]IPCRecord, 0, len(idx))
	for _, pos := range idx {
		out = append(out, d.flushed[pos])
	}
	return out, nil
}

// HandleOf returns the driver handle of a local binder, creating its node
// if it has never crossed a process boundary. The device layer uses this
// to index services by handle so the defender can attribute logged IPC
// records to interfaces.
func (d *Driver) HandleOf(lb *LocalBinder) Handle {
	return d.ensureNode(lb).handle
}

// FaultInjector returns the driver's fault injector, nil when the
// telemetry path is unfaulted.
func (d *Driver) FaultInjector() *faults.Injector { return d.cfg.Faults }

// AttributeRetainedRefs is the defender's evidence-free fallback: it
// counts, per app uid, the binder-driver references currently pinning
// JGRs in the victim process — live proxies the victim holds on
// app-owned nodes plus its active death links on them. Unlike the IPC
// log this is driver ground truth that survives any telemetry loss,
// but it only sees what is retained *now*, not the transaction history,
// so it cannot distinguish attack paths or rank by rate — which is why
// it is a fallback and not the primary scorer.
func (d *Driver) AttributeRetainedRefs(victim kernel.Pid) map[kernel.Uid]int {
	ctx, ok := d.ctxs[victim]
	if !ok {
		return nil
	}
	out := make(map[kernel.Uid]int)
	for _, br := range ctx.proxies {
		if br.closed {
			continue
		}
		n := br.node()
		if n.dead || !n.owner.Alive() || !kernel.IsAppUid(n.owner.Uid()) {
			continue
		}
		out[n.owner.Uid()]++
	}
	for _, dl := range ctx.links {
		if !dl.active || dl.node.dead || !dl.node.owner.Alive() || !kernel.IsAppUid(dl.node.owner.Uid()) {
			continue
		}
		out[dl.node.owner.Uid()]++
	}
	return out
}
