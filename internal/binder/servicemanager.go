package binder

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/kernel"
)

// ServiceManager is the binder context manager: the registry mapping
// service names to binder objects. System services register themselves at
// boot (addService / publishBinderService, paper §III-A); any app can look
// a service up and talk to it directly — which is exactly how malicious
// apps bypass the protections baked into service helper classes
// (Code-Snippet 2 calls ServiceManager.getService("wifi") and hits the raw
// IWifiManager interface).
type ServiceManager struct {
	driver *Driver
	// services is the mutable registry; on a clone it overlays frozen,
	// with a nil binder as a removal tombstone. It is nil until the first
	// write so that clones which never re-register pay nothing.
	services map[string]*LocalBinder
	// frozen is a sealed template's registry, shared read-only by every
	// clone. Its binders belong to the TEMPLATE; resolve() remaps one to
	// this driver's equivalent stub through its node handle, which is
	// valid because device clones replay stub minting in boot order and
	// therefore reproduce the template's handle space exactly.
	frozen map[string]*LocalBinder
}

// Registration errors.
var (
	ErrServiceExists   = errors.New("servicemanager: service already registered")
	ErrServiceNotFound = errors.New("servicemanager: service not found")
	ErrNotSystem       = errors.New("servicemanager: only system processes may register services")
)

// NewServiceManager creates an empty registry on the driver.
func NewServiceManager(d *Driver) *ServiceManager {
	// Presized for the full census (104 services): a fresh boot registers
	// every service, and incremental map growth would rehash the table
	// several times on that path.
	return &ServiceManager{driver: d, services: make(map[string]*LocalBinder, 128)}
}

// Clone returns a registry for a cloned device's driver that shares this
// (template) registry's name table read-only. No re-registration runs:
// lookups remap the template's binders onto d's replayed stubs by handle.
func (sm *ServiceManager) Clone(d *Driver) *ServiceManager {
	base := sm.frozen
	if base == nil {
		base = sm.services
	}
	return &ServiceManager{driver: d, frozen: base}
}

// resolve returns the binder registered under name on this manager's own
// driver, consulting the overlay first and then the frozen base.
func (sm *ServiceManager) resolve(name string) *LocalBinder {
	if b, ok := sm.services[name]; ok {
		return b // nil if tombstoned
	}
	tb := sm.frozen[name]
	if tb == nil || tb.node == nil {
		return nil
	}
	if h := int(tb.node.handle) - 1; h >= 0 && h < len(sm.driver.nodes) {
		return sm.driver.nodes[h].local
	}
	return nil
}

// AddService registers a service binder under name. Only non-app uids may
// register (SELinux confines servicemanager registration to system
// domains).
func (sm *ServiceManager) AddService(name string, b *LocalBinder) error {
	if name == "" {
		return errors.New("servicemanager: empty service name")
	}
	if b == nil {
		return errors.New("servicemanager: nil binder")
	}
	if kernel.IsAppUid(b.Owner().Uid()) {
		return fmt.Errorf("register %q from uid %d: %w", name, b.Owner().Uid(), ErrNotSystem)
	}
	if sm.resolve(name) != nil {
		return fmt.Errorf("register %q: %w", name, ErrServiceExists)
	}
	if sm.services == nil {
		sm.services = make(map[string]*LocalBinder)
	}
	sm.services[name] = b
	return nil
}

// RemoveService drops a registration (used on soft reboot).
func (sm *ServiceManager) RemoveService(name string) {
	if _, shadowed := sm.frozen[name]; shadowed {
		if sm.services == nil {
			sm.services = make(map[string]*LocalBinder)
		}
		sm.services[name] = nil // tombstone over the frozen base
		return
	}
	delete(sm.services, name)
}

// Clear drops every registration (soft reboot).
func (sm *ServiceManager) Clear() {
	sm.services = make(map[string]*LocalBinder)
	sm.frozen = nil
}

// GetService returns client's handle on the named service: a retained
// proxy whose JGR lives in the client process, as the framework caches
// service binders process-wide.
func (sm *ServiceManager) GetService(name string, client *kernel.Process) (*BinderRef, error) {
	b := sm.resolve(name)
	if b == nil {
		return nil, fmt.Errorf("get %q: %w", name, ErrServiceNotFound)
	}
	if !b.IsAlive() {
		return nil, fmt.Errorf("get %q: %w", name, ErrDeadObject)
	}
	return sm.driver.Materialize(client, b)
}

// CheckService reports whether a live service is registered under name.
func (sm *ServiceManager) CheckService(name string) bool {
	b := sm.resolve(name)
	return b != nil && b.IsAlive()
}

// ListServices returns all registered service names, sorted — the
// `service list` view the paper's IPC method extractor starts from.
func (sm *ServiceManager) ListServices() []string {
	out := make([]string, 0, len(sm.services)+len(sm.frozen))
	for name, b := range sm.services {
		if b != nil {
			out = append(out, name)
		}
	}
	for name := range sm.frozen {
		if _, shadowed := sm.services[name]; !shadowed {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}
