package binder

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/kernel"
)

// ServiceManager is the binder context manager: the registry mapping
// service names to binder objects. System services register themselves at
// boot (addService / publishBinderService, paper §III-A); any app can look
// a service up and talk to it directly — which is exactly how malicious
// apps bypass the protections baked into service helper classes
// (Code-Snippet 2 calls ServiceManager.getService("wifi") and hits the raw
// IWifiManager interface).
type ServiceManager struct {
	driver   *Driver
	services map[string]*LocalBinder
}

// Registration errors.
var (
	ErrServiceExists   = errors.New("servicemanager: service already registered")
	ErrServiceNotFound = errors.New("servicemanager: service not found")
	ErrNotSystem       = errors.New("servicemanager: only system processes may register services")
)

// NewServiceManager creates an empty registry on the driver.
func NewServiceManager(d *Driver) *ServiceManager {
	return &ServiceManager{driver: d, services: make(map[string]*LocalBinder)}
}

// AddService registers a service binder under name. Only non-app uids may
// register (SELinux confines servicemanager registration to system
// domains).
func (sm *ServiceManager) AddService(name string, b *LocalBinder) error {
	if name == "" {
		return errors.New("servicemanager: empty service name")
	}
	if b == nil {
		return errors.New("servicemanager: nil binder")
	}
	if kernel.IsAppUid(b.Owner().Uid()) {
		return fmt.Errorf("register %q from uid %d: %w", name, b.Owner().Uid(), ErrNotSystem)
	}
	if _, ok := sm.services[name]; ok {
		return fmt.Errorf("register %q: %w", name, ErrServiceExists)
	}
	sm.services[name] = b
	return nil
}

// RemoveService drops a registration (used on soft reboot).
func (sm *ServiceManager) RemoveService(name string) {
	delete(sm.services, name)
}

// Clear drops every registration (soft reboot).
func (sm *ServiceManager) Clear() {
	sm.services = make(map[string]*LocalBinder)
}

// GetService returns client's handle on the named service: a retained
// proxy whose JGR lives in the client process, as the framework caches
// service binders process-wide.
func (sm *ServiceManager) GetService(name string, client *kernel.Process) (*BinderRef, error) {
	b, ok := sm.services[name]
	if !ok {
		return nil, fmt.Errorf("get %q: %w", name, ErrServiceNotFound)
	}
	if !b.IsAlive() {
		return nil, fmt.Errorf("get %q: %w", name, ErrDeadObject)
	}
	return sm.driver.Materialize(client, b)
}

// CheckService reports whether a live service is registered under name.
func (sm *ServiceManager) CheckService(name string) bool {
	b, ok := sm.services[name]
	return ok && b.IsAlive()
}

// ListServices returns all registered service names, sorted — the
// `service list` view the paper's IPC method extractor starts from.
func (sm *ServiceManager) ListServices() []string {
	out := make([]string, 0, len(sm.services))
	for name := range sm.services {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}
