package binder

import (
	"sort"
	"time"

	"repro/internal/kernel"
)

// LogColumns is a columnar (struct-of-arrays) view over a window of the
// flushed IPC log. The defender's streaming correlator groups and scans
// one field at a time — uids to segment by app, times for the delay
// sweep — and a row-of-structs window makes every such scan stride over
// the seven fields it does not need. Keeping each field in its own
// parallel slice lets those scans run over dense, cache-friendly memory,
// and lets the driver fill a window straight from its flushed store
// without materializing intermediate IPCRecord rows.
//
// All column slices always have equal length; Append and Filter are the
// only mutators that change it. A LogColumns is plain data: callers that
// need concurrency give each goroutine its own value.
type LogColumns struct {
	Seq     []uint64
	Time    []time.Duration
	FromPid []kernel.Pid
	FromUid []kernel.Uid
	ToPid   []kernel.Pid
	Handle  []Handle
	Code    []TxCode
	Size    []int
}

// Len returns the number of rows in the window.
func (w *LogColumns) Len() int { return len(w.Seq) }

// Reset truncates every column to zero length, retaining capacity so a
// poll loop can refill the same window allocation-free in steady state.
func (w *LogColumns) Reset() {
	w.Seq = w.Seq[:0]
	w.Time = w.Time[:0]
	w.FromPid = w.FromPid[:0]
	w.FromUid = w.FromUid[:0]
	w.ToPid = w.ToPid[:0]
	w.Handle = w.Handle[:0]
	w.Code = w.Code[:0]
	w.Size = w.Size[:0]
}

// Grow pre-extends every column's capacity for n more rows.
func (w *LogColumns) Grow(n int) {
	if n <= 0 || cap(w.Seq)-len(w.Seq) >= n {
		return
	}
	grow := func(have, want int) int {
		if c := 2 * have; c > want {
			return c
		}
		return want
	}
	c := grow(cap(w.Seq), len(w.Seq)+n)
	w.Seq = append(make([]uint64, 0, c), w.Seq...)
	w.Time = append(make([]time.Duration, 0, c), w.Time...)
	w.FromPid = append(make([]kernel.Pid, 0, c), w.FromPid...)
	w.FromUid = append(make([]kernel.Uid, 0, c), w.FromUid...)
	w.ToPid = append(make([]kernel.Pid, 0, c), w.ToPid...)
	w.Handle = append(make([]Handle, 0, c), w.Handle...)
	w.Code = append(make([]TxCode, 0, c), w.Code...)
	w.Size = append(make([]int, 0, c), w.Size...)
}

// Append adds one record's fields as a new row.
func (w *LogColumns) Append(r IPCRecord) {
	w.Seq = append(w.Seq, r.Seq)
	w.Time = append(w.Time, r.Time)
	w.FromPid = append(w.FromPid, r.FromPid)
	w.FromUid = append(w.FromUid, r.FromUid)
	w.ToPid = append(w.ToPid, r.ToPid)
	w.Handle = append(w.Handle, r.Handle)
	w.Code = append(w.Code, r.Code)
	w.Size = append(w.Size, r.Size)
}

// Record materializes row i as an IPCRecord.
func (w *LogColumns) Record(i int) IPCRecord {
	return IPCRecord{
		Seq:     w.Seq[i],
		Time:    w.Time[i],
		FromPid: w.FromPid[i],
		FromUid: w.FromUid[i],
		ToPid:   w.ToPid[i],
		Handle:  w.Handle[i],
		Code:    w.Code[i],
		Size:    w.Size[i],
	}
}

// Rows appends every row to dst as IPCRecords and returns it — the
// escape hatch for consumers that still want row structs (Detection's
// KeepRaw capture).
func (w *LogColumns) Rows(dst []IPCRecord) []IPCRecord {
	for i := 0; i < w.Len(); i++ {
		dst = append(dst, w.Record(i))
	}
	return dst
}

// Filter compacts the window in place, keeping only rows for which keep
// returns true. Row order is preserved.
func (w *LogColumns) Filter(keep func(i int) bool) {
	out := 0
	for i := 0; i < w.Len(); i++ {
		if !keep(i) {
			continue
		}
		if out != i {
			w.Seq[out] = w.Seq[i]
			w.Time[out] = w.Time[i]
			w.FromPid[out] = w.FromPid[i]
			w.FromUid[out] = w.FromUid[i]
			w.ToPid[out] = w.ToPid[i]
			w.Handle[out] = w.Handle[i]
			w.Code[out] = w.Code[i]
			w.Size[out] = w.Size[i]
		}
		out++
	}
	w.Seq = w.Seq[:out]
	w.Time = w.Time[:out]
	w.FromPid = w.FromPid[:out]
	w.FromUid = w.FromUid[:out]
	w.ToPid = w.ToPid[:out]
	w.Handle = w.Handle[:out]
	w.Code = w.Code[:out]
	w.Size = w.Size[:out]
}

// AppendLogColumnsSince appends the window ReadLogSince would return —
// the flushed records targeting victim with sequence numbers beyond
// afterSeq, oldest first — onto w's columns, straight from the flushed
// store with no intermediate row slice. It returns the number of rows
// appended. Permission and fault behaviour match ReadLog: the read-side
// gauntlet runs before any data is copied.
func (d *Driver) AppendLogColumnsSince(uid kernel.Uid, victim kernel.Pid, afterSeq uint64, w *LogColumns) (int, error) {
	if err := d.logReadable(uid); err != nil {
		return 0, err
	}
	idx := d.byPid[victim]
	// Positions are appended in flush order and seqs are monotone, so the
	// index is seq-sorted.
	lo := sort.Search(len(idx), func(i int) bool {
		return d.flushed[idx[i]].Seq > afterSeq
	})
	if lo == len(idx) {
		return 0, nil
	}
	w.Grow(len(idx) - lo)
	for _, pos := range idx[lo:] {
		w.Append(d.flushed[pos])
	}
	return len(idx) - lo, nil
}
