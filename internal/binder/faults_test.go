package binder

import (
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/art"
	"repro/internal/faults"
	"repro/internal/kernel"
	"repro/internal/simclock"
)

// newFaultedRig is newRig with a fault injector on the telemetry path.
func newFaultedRig(t *testing.T, fcfg faults.Config, seed int64) *rig {
	t.Helper()
	clock := simclock.New()
	k := kernel.New(clock, kernel.Config{})
	d := New(k, Config{Faults: faults.New(fcfg, seed)})
	server := k.Spawn(kernel.SpawnConfig{
		Name: kernel.SystemServerName, Uid: kernel.SystemUid,
		OomScoreAdj: kernel.SystemAdj, VM: art.Config{},
	})
	app := k.Spawn(kernel.SpawnConfig{Name: "com.evil.app", Uid: 10061})
	return &rig{clock: clock, k: k, d: d, sm: NewServiceManager(d), server: server, app: app}
}

func (r *rig) echoN(t *testing.T, svc *BinderRef, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		data := NewParcel()
		data.WriteInt32(int32(i))
		if err := svc.Binder().Transact(1, data, nil); err != nil {
			t.Fatal(err)
		}
	}
}

func TestFaultDropsReduceLog(t *testing.T) {
	const n = 400
	r := newFaultedRig(t, faults.Config{DropRate: 0.5}, 21)
	r.registerEcho(t, "echo")
	svc, _ := r.sm.GetService("echo", r.app)
	r.d.EnableIPCLogging()
	r.echoN(t, svc, n)
	if _, err := r.d.FlushLog(); err != nil {
		t.Fatal(err)
	}
	recs, err := r.d.ReadLog(kernel.SystemUid)
	if err != nil {
		t.Fatal(err)
	}
	s := r.d.LogStats()
	if s.Seq != n {
		t.Fatalf("Seq = %d, want %d", s.Seq, n)
	}
	if s.Logged+s.DroppedRate != s.Seq {
		t.Fatalf("counters don't reconcile: %+v", s)
	}
	if uint64(len(recs)) != s.Delivered() {
		t.Fatalf("read %d records, stats say %d delivered", len(recs), s.Delivered())
	}
	if len(recs) == 0 || len(recs) == n {
		t.Fatalf("drop rate 0.5 delivered %d of %d records", len(recs), n)
	}
	// Surviving records keep their original sequence numbers, so gaps
	// are visible to the reader.
	gap := false
	for i := 1; i < len(recs); i++ {
		if recs[i].Seq != recs[i-1].Seq+1 {
			gap = true
		}
		if recs[i].Seq <= recs[i-1].Seq {
			t.Fatalf("sequence numbers not increasing: %d then %d", recs[i-1].Seq, recs[i].Seq)
		}
	}
	if !gap {
		t.Fatal("no sequence gaps despite drops")
	}
}

func TestFaultDropsAreDeterministic(t *testing.T) {
	run := func() []uint64 {
		r := newFaultedRig(t, faults.Config{DropRate: 0.3}, 77)
		r.registerEcho(t, "echo")
		svc, _ := r.sm.GetService("echo", r.app)
		r.d.EnableIPCLogging()
		r.echoN(t, svc, 200)
		r.d.FlushLog()
		recs, err := r.d.ReadLog(kernel.SystemUid)
		if err != nil {
			t.Fatal(err)
		}
		seqs := make([]uint64, len(recs))
		for i, rec := range recs {
			seqs[i] = rec.Seq
		}
		return seqs
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("runs delivered %d vs %d records", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("surviving sequence diverged at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestRingOverflowEvictsOldest(t *testing.T) {
	const cap = 16
	const n = 50
	r := newFaultedRig(t, faults.Config{RingCapacity: cap}, 5)
	r.registerEcho(t, "echo")
	svc, _ := r.sm.GetService("echo", r.app)
	r.d.EnableIPCLogging()
	r.echoN(t, svc, n)
	if _, err := r.d.FlushLog(); err != nil {
		t.Fatal(err)
	}
	recs, err := r.d.ReadLog(kernel.SystemUid)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != cap {
		t.Fatalf("flushed %d records, ring capacity is %d", len(recs), cap)
	}
	// Oldest evicted, newest kept.
	if recs[0].Seq != n-cap+1 || recs[len(recs)-1].Seq != n {
		t.Fatalf("ring kept seqs %d..%d, want %d..%d", recs[0].Seq, recs[len(recs)-1].Seq, n-cap+1, n)
	}
	s := r.d.LogStats()
	if s.DroppedRing != n-cap {
		t.Fatalf("DroppedRing = %d, want %d", s.DroppedRing, n-cap)
	}
	if s.Delivered() != cap {
		t.Fatalf("Delivered = %d, want %d", s.Delivered(), cap)
	}
}

func TestInjectedReadErrorAndCounter(t *testing.T) {
	r := newFaultedRig(t, faults.Config{ReadFailEvery: 2}, 8)
	r.registerEcho(t, "echo")
	svc, _ := r.sm.GetService("echo", r.app)
	r.d.EnableIPCLogging()
	r.echoN(t, svc, 3)
	r.d.FlushLog()

	if _, err := r.d.ReadLog(kernel.SystemUid); !errors.Is(err, faults.ErrInjectedRead) {
		t.Fatalf("first read error = %v, want ErrInjectedRead", err)
	}
	recs, err := r.d.ReadLog(kernel.SystemUid)
	if err != nil {
		t.Fatalf("retry read failed: %v", err)
	}
	if len(recs) != 3 {
		t.Fatalf("retry read got %d records, want 3", len(recs))
	}
	if s := r.d.LogStats(); s.ReadErrors != 1 {
		t.Fatalf("ReadErrors = %d, want 1", s.ReadErrors)
	}
}

func TestJitterPerturbsTimestampsWithinBound(t *testing.T) {
	const jitter = 2 * time.Millisecond
	clean := newRig(t, art.Config{})
	clean.registerEcho(t, "echo")
	cleanSvc, _ := clean.sm.GetService("echo", clean.app)
	clean.d.EnableIPCLogging()
	clean.echoN(t, cleanSvc, 100)
	clean.d.FlushLog()
	cleanRecs, _ := clean.d.ReadLog(kernel.SystemUid)

	r := newFaultedRig(t, faults.Config{MaxJitter: jitter}, 13)
	r.registerEcho(t, "echo")
	svc, _ := r.sm.GetService("echo", r.app)
	r.d.EnableIPCLogging()
	r.echoN(t, svc, 100)
	r.d.FlushLog()
	recs, _ := r.d.ReadLog(kernel.SystemUid)

	if len(recs) != len(cleanRecs) {
		t.Fatalf("jitter changed record count: %d vs %d", len(recs), len(cleanRecs))
	}
	moved := false
	for i := range recs {
		d := recs[i].Time - cleanRecs[i].Time
		if d < -jitter || d > jitter {
			t.Fatalf("record %d jittered by %v, bound %v", i, d, jitter)
		}
		if d != 0 {
			moved = true
		}
	}
	if !moved {
		t.Fatal("jitter never moved a timestamp")
	}
}

func TestStatsProcfsFile(t *testing.T) {
	r := newFaultedRig(t, faults.Config{DropRate: 0.5}, 21)
	r.registerEcho(t, "echo")
	svc, _ := r.sm.GetService("echo", r.app)
	r.d.EnableIPCLogging()
	r.echoN(t, svc, 50)
	r.d.FlushLog()

	raw, err := r.k.ProcFS().Read(StatsPath, kernel.SystemUid)
	if err != nil {
		t.Fatal(err)
	}
	got := string(raw)
	for _, field := range []string{"seq 50", "logged ", "dropped_rate ", "dropped_ring 0", "read_errors 0"} {
		if !strings.Contains(got, field) {
			t.Fatalf("stats file %q missing %q", got, field)
		}
	}
	// Apps cannot read telemetry health either.
	if _, err := r.k.ProcFS().Read(StatsPath, r.app.Uid()); !errors.Is(err, kernel.ErrPermissionDenied) {
		t.Fatalf("app stats read error = %v, want permission denied", err)
	}
}

func TestZeroFaultConfigMatchesUnfaulted(t *testing.T) {
	run := func(r *rig) []IPCRecord {
		r.registerEcho(t, "echo")
		svc, _ := r.sm.GetService("echo", r.app)
		r.d.EnableIPCLogging()
		r.echoN(t, svc, 100)
		r.d.FlushLog()
		recs, err := r.d.ReadLog(kernel.SystemUid)
		if err != nil {
			t.Fatal(err)
		}
		return recs
	}
	clean := run(newRig(t, art.Config{}))
	zeroed := run(newFaultedRig(t, faults.Config{}, 99))
	if len(clean) != len(zeroed) {
		t.Fatalf("record counts differ: %d vs %d", len(clean), len(zeroed))
	}
	for i := range clean {
		if clean[i] != zeroed[i] {
			t.Fatalf("record %d differs: %+v vs %+v", i, clean[i], zeroed[i])
		}
	}
}

func TestAttributeRetainedRefs(t *testing.T) {
	var retained []*BinderRef
	r := newRig(t, art.Config{})
	r.registerRetainer(t, "vuln", &retained)
	svc, _ := r.sm.GetService("vuln", r.app)

	const n = 12
	for i := 0; i < n; i++ {
		data := NewParcel()
		data.WriteStrongBinder(r.d.NewLocalBinder(r.app, "android.os.Binder", nil))
		if err := svc.Binder().Transact(1, data, nil); err != nil {
			t.Fatal(err)
		}
	}
	attr := r.d.AttributeRetainedRefs(r.server.Pid())
	if attr[r.app.Uid()] != n {
		t.Fatalf("attribution[%d] = %d, want %d", r.app.Uid(), attr[r.app.Uid()], n)
	}
	// Releasing the refs drains the attribution.
	for _, ref := range retained {
		ref.Release()
	}
	attr = r.d.AttributeRetainedRefs(r.server.Pid())
	if attr[r.app.Uid()] != 0 {
		t.Fatalf("attribution after release = %d, want 0", attr[r.app.Uid()])
	}
	// Unknown pid yields nothing rather than panicking.
	if got := r.d.AttributeRetainedRefs(99999); len(got) != 0 {
		t.Fatalf("attribution for unknown pid = %v", got)
	}
}
