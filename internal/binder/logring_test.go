package binder

import (
	"fmt"
	"testing"
	"time"
)

// shiftModel is the reference implementation the head-indexed ring
// replaced: bounded eviction by copying the slice down one slot. The ring
// must be observationally identical to it — same survivors, same order,
// same eviction count — for every push/drain interleaving.
type shiftModel struct {
	buf []IPCRecord
}

func (m *shiftModel) push(rec IPCRecord, capacity int) (evicted bool) {
	if capacity > 0 && len(m.buf) >= capacity {
		copy(m.buf, m.buf[1:])
		m.buf[len(m.buf)-1] = rec
		return true
	}
	m.buf = append(m.buf, rec)
	return false
}

func (m *shiftModel) drain() []IPCRecord {
	out := append([]IPCRecord(nil), m.buf...)
	m.buf = m.buf[:0]
	return out
}

func rec(seq uint64) IPCRecord {
	return IPCRecord{Seq: seq, Time: time.Duration(seq) * time.Millisecond, Size: int(seq % 97)}
}

func TestLogRingMatchesShiftModel(t *testing.T) {
	cases := []struct {
		name     string
		capacity int
		pushes   []int // run lengths; a drain happens between runs
	}{
		{"unbounded", 0, []int{5, 0, 17, 3}},
		{"never-fills", 8, []int{5, 7, 3}},
		{"exactly-full", 4, []int{4, 4}},
		{"single-wrap", 4, []int{6, 2}},
		{"multi-wrap", 4, []int{13, 9, 21}},
		{"capacity-one", 1, []int{5, 1, 3}},
		{"long-flood", 16, []int{1000}},
		{"refill-after-drain", 3, []int{7, 7, 7, 7}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var ring logRing
			var model shiftModel
			seq := uint64(0)
			for run, n := range tc.pushes {
				evictions, modelEvictions := 0, 0
				for i := 0; i < n; i++ {
					seq++
					r := rec(seq)
					if ring.push(r, tc.capacity) {
						evictions++
					}
					if model.push(r, tc.capacity) {
						modelEvictions++
					}
					if ring.len() != len(model.buf) {
						t.Fatalf("run %d push %d: len = %d, model = %d", run, i, ring.len(), len(model.buf))
					}
				}
				if evictions != modelEvictions {
					t.Fatalf("run %d: evictions = %d, model = %d", run, evictions, modelEvictions)
				}
				got := ring.drain(nil)
				want := model.drain()
				if len(got) != len(want) {
					t.Fatalf("run %d: drained %d records, model %d", run, len(got), len(want))
				}
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("run %d record %d: got seq %d, model seq %d", run, i, got[i].Seq, want[i].Seq)
					}
				}
			}
		})
	}
}

func TestLogRingDrainAppends(t *testing.T) {
	var ring logRing
	for seq := uint64(1); seq <= 6; seq++ {
		ring.push(rec(seq), 4) // evicts 1 and 2
	}
	prefix := []IPCRecord{rec(100)}
	out := ring.drain(prefix)
	if len(out) != 5 {
		t.Fatalf("len = %d, want 5", len(out))
	}
	wantSeqs := []uint64{100, 3, 4, 5, 6}
	for i, w := range wantSeqs {
		if out[i].Seq != w {
			t.Fatalf("out[%d].Seq = %d, want %d", i, out[i].Seq, w)
		}
	}
	if ring.len() != 0 {
		t.Fatalf("ring not empty after drain: %d", ring.len())
	}
}

func TestLogRingDiscard(t *testing.T) {
	var ring logRing
	for seq := uint64(1); seq <= 10; seq++ {
		ring.push(rec(seq), 4)
	}
	ring.discard()
	if ring.len() != 0 {
		t.Fatalf("len = %d after discard", ring.len())
	}
	// The ring must be reusable from the growing state after a discard.
	ring.push(rec(11), 4)
	out := ring.drain(nil)
	if len(out) != 1 || out[0].Seq != 11 {
		t.Fatalf("post-discard drain = %+v", out)
	}
}

func TestLogRingStorageReuse(t *testing.T) {
	var ring logRing
	for seq := uint64(1); seq <= 100; seq++ {
		ring.push(rec(seq), 0)
	}
	ring.drain(nil)
	grew := testing.AllocsPerRun(50, func() {
		ring.push(rec(1), 0)
		ring.discard()
	})
	if grew != 0 {
		t.Fatalf("push into drained ring allocated %.1f times per run", grew)
	}
}

// TestLogRingFuzzAgainstModel drives randomized-ish (deterministic LCG)
// push/drain schedules over several capacities, checking survivors and
// eviction counts against the copy-shift reference at every drain.
func TestLogRingFuzzAgainstModel(t *testing.T) {
	for _, capacity := range []int{0, 1, 2, 3, 7, 64} {
		t.Run(fmt.Sprintf("capacity-%d", capacity), func(t *testing.T) {
			var ring logRing
			var model shiftModel
			state := uint64(0x9E3779B97F4A7C15)
			next := func(n int) int {
				state = state*6364136223846793005 + 1442695040888963407
				return int(state>>33) % n
			}
			seq := uint64(0)
			for step := 0; step < 200; step++ {
				run := next(2*64 + 5)
				for i := 0; i < run; i++ {
					seq++
					r := rec(seq)
					if ring.push(r, capacity) != model.push(r, capacity) {
						t.Fatalf("step %d: eviction disagreement at seq %d", step, seq)
					}
				}
				got, want := ring.drain(nil), model.drain()
				if len(got) != len(want) {
					t.Fatalf("step %d: drained %d, model %d", step, len(got), len(want))
				}
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("step %d record %d: got seq %d, want %d", step, i, got[i].Seq, want[i].Seq)
					}
				}
			}
		})
	}
}
