package binder

import (
	"testing"

	"repro/internal/faults"
	"repro/internal/kernel"
	"repro/internal/simclock"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// benchRig builds a minimal logged two-process device for hot-path
// benchmarks: a sink service on a system process that reads (but does not
// retain) the flooded binder tokens, so the table drains through GC and
// the flood can run for any b.N.
type benchRig struct {
	clock  *simclock.Clock
	k      *kernel.Kernel
	d      *Driver
	server *kernel.Process
	app    *kernel.Process
	svc    *BinderRef
}

func newBenchRig(b *testing.B, fcfg faults.Config, seed int64, reg *telemetry.Registry) *benchRig {
	b.Helper()
	clock := simclock.New()
	k := kernel.New(clock, kernel.Config{})
	cfg := Config{Metrics: reg}
	if fcfg.Enabled() {
		cfg.Faults = faults.New(fcfg, seed)
	}
	d := New(k, cfg)
	server := k.Spawn(kernel.SpawnConfig{
		Name: kernel.SystemServerName, Uid: kernel.SystemUid,
		OomScoreAdj: kernel.SystemAdj,
	})
	app := k.Spawn(kernel.SpawnConfig{Name: "com.bench.app", Uid: 10061})
	sm := NewServiceManager(d)
	stub := d.NewLocalBinder(server, "SinkService", TransactorFunc(func(c *Call) error {
		if _, err := c.Data.ReadString(); err != nil {
			return err
		}
		// Read but never retain: the innocent pattern, which keeps the
		// victim table draining via GC so the flood is sustainable.
		_, err := c.Data.ReadStrongBinder()
		return err
	}))
	if err := sm.AddService("sink", stub); err != nil {
		b.Fatal(err)
	}
	svc, err := sm.GetService("sink", app)
	if err != nil {
		b.Fatal(err)
	}
	if err := d.EnableIPCLogging(); err != nil {
		b.Fatal(err)
	}
	return &benchRig{clock: clock, k: k, d: d, server: server, app: app, svc: svc}
}

// floodOnce issues one attack-shaped logged transaction: pooled parcels,
// a fresh binder token, transact, log append — the same path a client's
// Register call takes.
func (r *benchRig) floodOnce(b *testing.B) {
	data, reply := ObtainParcel(), ObtainParcel()
	data.WriteString("com.bench.app")
	data.WriteStrongBinder(r.d.NewLocalBinder(r.app, "android.os.Binder", nil))
	err := r.svc.Binder().Transact(1, data, reply)
	data.Recycle()
	reply.Recycle()
	if err != nil {
		b.Fatal(err)
	}
}

// BenchmarkTransactLogged measures the per-call simulation hot path with
// IPC logging enabled: binder transact -> JGR bookkeeping -> log append.
// The unbounded case grows the pending buffer (drained off-timer); the
// ring-flood case holds a bounded kernel-style ring at capacity so every
// append evicts — the flood-scale eviction path.
func BenchmarkTransactLogged(b *testing.B) {
	b.Run("unbounded", func(b *testing.B) {
		r := newBenchRig(b, faults.Config{}, 1, nil)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			r.floodOnce(b)
			if r.d.PendingLogLen() >= 1<<15 {
				b.StopTimer()
				if _, err := r.d.FlushLog(); err != nil {
					b.Fatal(err)
				}
				if err := r.d.TruncateLog(); err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
			}
		}
	})
	b.Run("ring-flood", func(b *testing.B) {
		r := newBenchRig(b, faults.Config{RingCapacity: 4096}, 1, nil)
		// Pre-fill the ring so every timed append evicts.
		for i := 0; i < 4096; i++ {
			r.floodOnce(b)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			r.floodOnce(b)
		}
	})
	// The traced variant attaches a flight recorder sampling every
	// transaction — the full span-mint + three-emit cost per call. The
	// untraced sub-benchmarks above run with rec == nil, which is how
	// make bench-smoke proves the tracing hook costs the off path
	// nothing beyond a branch (gate: unbounded within 5% of the
	// BENCH_hotpath.json baseline).
	b.Run("traced", func(b *testing.B) {
		r := newBenchRig(b, faults.Config{}, 1, nil)
		r.d.SetRecorder(trace.NewRecorder(0, 0, 1))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			r.floodOnce(b)
			if r.d.PendingLogLen() >= 1<<15 {
				b.StopTimer()
				if _, err := r.d.FlushLog(); err != nil {
					b.Fatal(err)
				}
				if err := r.d.TruncateLog(); err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
			}
		}
	})
}

// BenchmarkTelemetryOverhead compares the logged transact hot path with
// and without a metrics registry attached. The instrumented variant adds
// one histogram observation (plus the pull-gauge registrations, which
// cost nothing per call); the budget is ≤5% over bare — compare the two
// sub-benchmark ns/op by hand or with benchstat.
func BenchmarkTelemetryOverhead(b *testing.B) {
	run := func(b *testing.B, reg *telemetry.Registry) {
		r := newBenchRig(b, faults.Config{RingCapacity: 4096}, 1, reg)
		for i := 0; i < 4096; i++ {
			r.floodOnce(b)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			r.floodOnce(b)
		}
	}
	b.Run("bare", func(b *testing.B) { run(b, nil) })
	b.Run("instrumented", func(b *testing.B) { run(b, telemetry.NewRegistry()) })
}

// BenchmarkReadLogWindow measures the defender's evidence-window read: a
// flushed log populated by two interleaved victims, from which the reader
// extracts one victim's records.
func BenchmarkReadLogWindow(b *testing.B) {
	r := newBenchRig(b, faults.Config{}, 1, nil)
	// A second victim service on its own process; its records must be
	// filtered out of the window.
	other := r.k.Spawn(kernel.SpawnConfig{
		Name: "com.android.phone", Uid: kernel.SystemUid,
		OomScoreAdj: kernel.PersistentProcAdj,
	})
	sm := NewServiceManager(r.d)
	stub := r.d.NewLocalBinder(other, "OtherSink", TransactorFunc(func(c *Call) error {
		_, err := c.Data.ReadString()
		return err
	}))
	if err := sm.AddService("othersink", stub); err != nil {
		b.Fatal(err)
	}
	osvc, err := sm.GetService("othersink", r.app)
	if err != nil {
		b.Fatal(err)
	}
	const n = 4096
	for i := 0; i < n; i++ {
		r.floodOnce(b)
		data := NewParcel()
		data.WriteString("com.bench.app")
		if err := osvc.Binder().Transact(1, data, nil); err != nil {
			b.Fatal(err)
		}
	}
	if _, err := r.d.FlushLog(); err != nil {
		b.Fatal(err)
	}
	victim := r.server.Pid()
	b.Run("scan", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			recs, err := r.d.ReadLog(kernel.SystemUid)
			if err != nil {
				b.Fatal(err)
			}
			window := 0
			for _, rec := range recs {
				if rec.ToPid == victim && kernel.IsAppUid(rec.FromUid) {
					window++
				}
			}
			if window != n {
				b.Fatalf("window = %d, want %d", window, n)
			}
		}
	})
	b.Run("indexed", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			recs, err := r.d.ReadLogSince(kernel.SystemUid, victim, 0)
			if err != nil {
				b.Fatal(err)
			}
			window := 0
			for _, rec := range recs {
				if kernel.IsAppUid(rec.FromUid) {
					window++
				}
			}
			if window != n {
				b.Fatalf("window = %d, want %d", window, n)
			}
		}
	})
}
