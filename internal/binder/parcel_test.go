package binder

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/kernel"
)

func TestParcelRoundTrip(t *testing.T) {
	p := NewParcel()
	p.WriteInt32(-7)
	p.WriteInt64(1 << 40)
	p.WriteString("clipboard")
	p.WriteBytes([]byte{1, 2, 3})

	if got, err := p.ReadInt32(); err != nil || got != -7 {
		t.Fatalf("ReadInt32 = %d, %v", got, err)
	}
	if got, err := p.ReadInt64(); err != nil || got != 1<<40 {
		t.Fatalf("ReadInt64 = %d, %v", got, err)
	}
	if got, err := p.ReadString(); err != nil || got != "clipboard" {
		t.Fatalf("ReadString = %q, %v", got, err)
	}
	if got, err := p.ReadBytes(); err != nil || !bytes.Equal(got, []byte{1, 2, 3}) {
		t.Fatalf("ReadBytes = %v, %v", got, err)
	}
	if _, err := p.ReadInt32(); !errors.Is(err, ErrParcelExhausted) {
		t.Fatalf("read past end error = %v, want ErrParcelExhausted", err)
	}
}

func TestParcelTypeMismatch(t *testing.T) {
	p := NewParcel()
	p.WriteString("x")
	_, err := p.ReadInt32()
	var tm *TypeMismatchError
	if !errors.As(err, &tm) {
		t.Fatalf("error = %v, want TypeMismatchError", err)
	}
	if tm.Want != "int32" || tm.Got != "string" {
		t.Fatalf("mismatch detail = %+v", tm)
	}
	// The failed read must not consume the item.
	if got, err := p.ReadString(); err != nil || got != "x" {
		t.Fatalf("ReadString after mismatch = %q, %v", got, err)
	}
}

func TestParcelBytesAreCopied(t *testing.T) {
	src := []byte{9, 9, 9}
	p := NewParcel()
	p.WriteBytes(src)
	src[0] = 1 // mutating the source must not affect the parcel
	got, err := p.ReadBytes()
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 9 {
		t.Fatal("parcel aliased the caller's byte slice")
	}
	got[1] = 7 // mutating the read result must not affect the parcel either
	p.pos = 0
	again, _ := p.ReadBytes()
	if again[1] != 9 {
		t.Fatal("parcel aliased the reader's byte slice")
	}
}

func TestParcelSizeBytes(t *testing.T) {
	p := NewParcel()
	if p.SizeBytes() != 0 {
		t.Fatalf("empty parcel size = %d", p.SizeBytes())
	}
	p.WriteInt32(1)          // 4
	p.WriteInt64(2)          // 8
	p.WriteString("ab")      // 4 + 2*2
	p.WriteBytes([]byte{1})  // 4 + 1
	p.WriteStrongBinder(nil) // 24
	if got, want := p.SizeBytes(), 4+8+8+5+24; got != want {
		t.Fatalf("SizeBytes = %d, want %d", got, want)
	}
}

func TestParcelReset(t *testing.T) {
	p := NewParcel()
	p.WriteInt32(5)
	p.Reset()
	if p.Len() != 0 || p.SizeBytes() != 0 {
		t.Fatal("Reset did not clear the parcel")
	}
	if _, err := p.ReadInt32(); !errors.Is(err, ErrParcelExhausted) {
		t.Fatal("read after Reset should be exhausted")
	}
}

func TestReadStrongBinderUnattached(t *testing.T) {
	p := NewParcel()
	p.WriteStrongBinder(&LocalBinder{})
	if _, err := p.ReadStrongBinder(); err == nil {
		t.Fatal("ReadStrongBinder on unattached parcel should fail")
	}
}

func TestReadNilStrongBinder(t *testing.T) {
	p := NewParcel()
	p.WriteStrongBinder(nil)
	ref, err := p.ReadStrongBinder()
	if err != nil || ref != nil {
		t.Fatalf("nil binder read = %v, %v; want nil, nil", ref, err)
	}
}

// Property: any sequence of scalar writes reads back identically.
func TestQuickParcelRoundTrip(t *testing.T) {
	type rec struct {
		I32 int32
		I64 int64
		S   string
		B   []byte
	}
	f := func(recs []rec) bool {
		p := NewParcel()
		for _, r := range recs {
			p.WriteInt32(r.I32)
			p.WriteInt64(r.I64)
			p.WriteString(r.S)
			p.WriteBytes(r.B)
		}
		for _, r := range recs {
			i32, err := p.ReadInt32()
			if err != nil || i32 != r.I32 {
				return false
			}
			i64, err := p.ReadInt64()
			if err != nil || i64 != r.I64 {
				return false
			}
			s, err := p.ReadString()
			if err != nil || s != r.S {
				return false
			}
			b, err := p.ReadBytes()
			if err != nil || !bytes.Equal(b, r.B) {
				return false
			}
		}
		_, err := p.ReadInt32()
		return errors.Is(err, ErrParcelExhausted)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestParseIPCRecordRoundTrip(t *testing.T) {
	r := IPCRecord{Seq: 42, Time: 1234567 * 1000, FromPid: 101, FromUid: 10061, ToPid: 2, Handle: 7, Code: 3, Size: 512}
	got, err := ParseIPCRecord(r.String())
	if err != nil {
		t.Fatal(err)
	}
	if got != r {
		t.Fatalf("round trip = %+v, want %+v", got, r)
	}
}

func TestParseIPCRecordMalformed(t *testing.T) {
	for _, line := range []string{"", "1 2 3", "a b c d e f g h"} {
		if _, err := ParseIPCRecord(line); err == nil {
			t.Errorf("ParseIPCRecord(%q) did not fail", line)
		}
	}
}

// Property: every syntactically valid record round-trips through the
// procfs text format.
func TestQuickIPCRecordRoundTrip(t *testing.T) {
	f := func(seq uint64, us uint32, fromPid, toPid uint16, fromUid uint16, handle uint16, code uint16, size uint16) bool {
		r := IPCRecord{
			Seq:     seq,
			Time:    time.Duration(us) * time.Microsecond,
			FromPid: kernel.Pid(fromPid),
			FromUid: kernel.Uid(fromUid),
			ToPid:   kernel.Pid(toPid),
			Handle:  Handle(handle),
			Code:    TxCode(code),
			Size:    int(size),
		}
		got, err := ParseIPCRecord(r.String())
		return err == nil && got == r
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
