package binder

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/faults"
	"repro/internal/kernel"
	"repro/internal/simclock"
)

// faultRig is a logged two-process rig with an optional fault injector,
// used by the hot-path regression tests.
type faultRig struct {
	clock  *simclock.Clock
	k      *kernel.Kernel
	d      *Driver
	server *kernel.Process
	app    *kernel.Process
	svc    *BinderRef
}

func newFaultRig(t *testing.T, fcfg faults.Config, seed int64) *faultRig {
	t.Helper()
	clock := simclock.New()
	k := kernel.New(clock, kernel.Config{})
	cfg := Config{}
	if fcfg.Enabled() {
		cfg.Faults = faults.New(fcfg, seed)
	}
	d := New(k, cfg)
	server := k.Spawn(kernel.SpawnConfig{
		Name: kernel.SystemServerName, Uid: kernel.SystemUid,
		OomScoreAdj: kernel.SystemAdj,
	})
	app := k.Spawn(kernel.SpawnConfig{Name: "com.evil.app", Uid: 10061})
	sm := NewServiceManager(d)
	stub := d.NewLocalBinder(server, "SinkService", TransactorFunc(func(c *Call) error {
		if _, err := c.Data.ReadString(); err != nil {
			return err
		}
		_, err := c.Data.ReadStrongBinder()
		return err
	}))
	if err := sm.AddService("sink", stub); err != nil {
		t.Fatal(err)
	}
	svc, err := sm.GetService("sink", app)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.EnableIPCLogging(); err != nil {
		t.Fatal(err)
	}
	return &faultRig{clock: clock, k: k, d: d, server: server, app: app, svc: svc}
}

func (r *faultRig) flood(t *testing.T, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		data := ObtainParcel()
		data.WriteString("com.evil.app")
		data.WriteStrongBinder(r.d.NewLocalBinder(r.app, "android.os.Binder", nil))
		err := r.svc.Binder().Transact(1, data, nil)
		data.Recycle()
		if err != nil {
			t.Fatal(err)
		}
	}
}

// TestFaultOrderPinned pins the log-write fault order: timestamp jitter is
// a pure function of (seed, seq) evaluated before the ring decides whether
// the append evicts, so ring eviction can never perturb the timestamps of
// surviving records. A bounded-ring run's survivors must therefore carry
// exactly the timestamps the unbounded run assigned to the same sequence
// numbers.
func TestFaultOrderPinned(t *testing.T) {
	const n = 500
	const seed = 7
	jitter := faults.Config{MaxJitter: 300 * time.Microsecond}
	ringed := faults.Config{MaxJitter: 300 * time.Microsecond, RingCapacity: 64}

	free := newFaultRig(t, jitter, seed)
	free.flood(t, n)
	if _, err := free.d.FlushLog(); err != nil {
		t.Fatal(err)
	}
	freeRecs, err := free.d.ReadLog(kernel.SystemUid)
	if err != nil {
		t.Fatal(err)
	}
	bySeq := make(map[uint64]IPCRecord, len(freeRecs))
	for _, r := range freeRecs {
		bySeq[r.Seq] = r
	}

	bounded := newFaultRig(t, ringed, seed)
	bounded.flood(t, n)
	if _, err := bounded.d.FlushLog(); err != nil {
		t.Fatal(err)
	}
	survivors, err := bounded.d.ReadLog(kernel.SystemUid)
	if err != nil {
		t.Fatal(err)
	}
	if len(survivors) != 64 {
		t.Fatalf("survivors = %d, want ring capacity 64", len(survivors))
	}
	for _, s := range survivors {
		ref, ok := bySeq[s.Seq]
		if !ok {
			t.Fatalf("survivor seq %d missing from unbounded run", s.Seq)
		}
		if s != ref {
			t.Fatalf("survivor seq %d diverged from unbounded run:\n ring: %+v\n free: %+v", s.Seq, s, ref)
		}
	}
	// Survivors are the n newest records, oldest first.
	for i, s := range survivors {
		if want := uint64(n - 64 + 1 + i); s.Seq != want {
			t.Fatalf("survivor[%d].Seq = %d, want %d", i, s.Seq, want)
		}
	}

	stats := bounded.d.LogStats()
	if stats.Seq != n || stats.Logged != n {
		t.Fatalf("stats = %+v, want Seq = Logged = %d", stats, n)
	}
	if stats.DroppedRing != n-64 {
		t.Fatalf("DroppedRing = %d, want %d", stats.DroppedRing, n-64)
	}
	if stats.Delivered() != 64 {
		t.Fatalf("Delivered = %d, want 64", stats.Delivered())
	}
}

// TestCounterReconciliation pins Seq = Logged + DroppedRate and
// Delivered = Logged - DroppedRing when rate drops and ring eviction act
// together.
func TestCounterReconciliation(t *testing.T) {
	const n = 400
	r := newFaultRig(t, faults.Config{DropRate: 0.25, RingCapacity: 32}, 3)
	r.flood(t, n)
	if _, err := r.d.FlushLog(); err != nil {
		t.Fatal(err)
	}
	stats := r.d.LogStats()
	if stats.Seq != n {
		t.Fatalf("Seq = %d, want %d", stats.Seq, n)
	}
	if stats.Seq != stats.Logged+stats.DroppedRate {
		t.Fatalf("Seq %d != Logged %d + DroppedRate %d", stats.Seq, stats.Logged, stats.DroppedRate)
	}
	if stats.DroppedRate == 0 {
		t.Fatal("expected some rate-dropped records at 25%")
	}
	recs, err := r.d.ReadLog(kernel.SystemUid)
	if err != nil {
		t.Fatal(err)
	}
	if uint64(len(recs)) != stats.Delivered() {
		t.Fatalf("delivered records = %d, stats.Delivered() = %d", len(recs), stats.Delivered())
	}
	if stats.Delivered() != stats.Logged-stats.DroppedRing {
		t.Fatalf("Delivered %d != Logged %d - DroppedRing %d", stats.Delivered(), stats.Logged, stats.DroppedRing)
	}
}

// TestReadLogSinceWindows exercises the per-victim seq index: windows
// bounded below by afterSeq, across multiple flushes, against a second
// victim whose records must never leak into the window.
func TestReadLogSinceWindows(t *testing.T) {
	r := newFaultRig(t, faults.Config{}, 1)
	// Second victim on its own process.
	other := r.k.Spawn(kernel.SpawnConfig{
		Name: "com.android.phone", Uid: kernel.SystemUid,
		OomScoreAdj: kernel.PersistentProcAdj,
	})
	sm := NewServiceManager(r.d)
	stub := r.d.NewLocalBinder(other, "OtherSink", TransactorFunc(func(c *Call) error {
		_, err := c.Data.ReadString()
		return err
	}))
	if err := sm.AddService("othersink", stub); err != nil {
		t.Fatal(err)
	}
	osvc, err := sm.GetService("othersink", r.app)
	if err != nil {
		t.Fatal(err)
	}

	interleave := func(n int) {
		for i := 0; i < n; i++ {
			r.flood(t, 1)
			data := ObtainParcel()
			data.WriteString("com.evil.app")
			oerr := osvc.Binder().Transact(1, data, nil)
			data.Recycle()
			if oerr != nil {
				t.Fatal(oerr)
			}
		}
	}

	interleave(10)
	if _, err := r.d.FlushLog(); err != nil {
		t.Fatal(err)
	}
	victim := r.server.Pid()

	full, err := r.d.ReadLogSince(kernel.SystemUid, victim, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(full) != 10 {
		t.Fatalf("full window = %d records, want 10", len(full))
	}
	for i, rec := range full {
		if rec.ToPid != victim {
			t.Fatalf("record %d targets pid %d, want victim %d", i, rec.ToPid, victim)
		}
		if i > 0 && rec.Seq <= full[i-1].Seq {
			t.Fatalf("window not seq-ascending at %d", i)
		}
	}

	// A window bounded by a mid-stream seq returns exactly the newer
	// victim records.
	mid := full[4].Seq
	tail, err := r.d.ReadLogSince(kernel.SystemUid, victim, mid)
	if err != nil {
		t.Fatal(err)
	}
	if len(tail) != 5 {
		t.Fatalf("tail window = %d records, want 5", len(tail))
	}
	if tail[0].Seq <= mid {
		t.Fatalf("tail starts at seq %d, want > %d", tail[0].Seq, mid)
	}

	// After another flush the index extends; afterSeq = last seen seq
	// yields only the new batch.
	last := full[len(full)-1].Seq
	interleave(6)
	if _, err := r.d.FlushLog(); err != nil {
		t.Fatal(err)
	}
	fresh, err := r.d.ReadLogSince(kernel.SystemUid, victim, last)
	if err != nil {
		t.Fatal(err)
	}
	if len(fresh) != 6 {
		t.Fatalf("fresh window = %d records, want 6", len(fresh))
	}

	// Past the end: empty, and nil so callers can treat it as "nothing".
	empty, err := r.d.ReadLogSince(kernel.SystemUid, victim, fresh[len(fresh)-1].Seq)
	if err != nil {
		t.Fatal(err)
	}
	if empty != nil {
		t.Fatalf("expected nil window past the end, got %d records", len(empty))
	}

	// The ACL is the procfs's: app uids are denied.
	if _, err := r.d.ReadLogSince(r.app.Uid(), victim, 0); !errors.Is(err, kernel.ErrPermissionDenied) {
		t.Fatalf("app read error = %v, want permission denied", err)
	}

	// Truncation clears the windows but keeps the index consistent for
	// later flushes.
	if err := r.d.TruncateLog(); err != nil {
		t.Fatal(err)
	}
	gone, err := r.d.ReadLogSince(kernel.SystemUid, victim, 0)
	if err != nil {
		t.Fatal(err)
	}
	if gone != nil {
		t.Fatalf("post-truncate window = %d records, want none", len(gone))
	}
	interleave(3)
	if _, err := r.d.FlushLog(); err != nil {
		t.Fatal(err)
	}
	after, err := r.d.ReadLogSince(kernel.SystemUid, victim, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(after) != 3 {
		t.Fatalf("post-truncate flush window = %d records, want 3", len(after))
	}
}

// TestReadLogBySender exercises the per-uid index view.
func TestReadLogBySender(t *testing.T) {
	r := newFaultRig(t, faults.Config{}, 1)
	r.flood(t, 7)
	if _, err := r.d.FlushLog(); err != nil {
		t.Fatal(err)
	}
	recs, err := r.d.ReadLogBySender(kernel.SystemUid, r.app.Uid())
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 7 {
		t.Fatalf("by-sender = %d records, want 7", len(recs))
	}
	for _, rec := range recs {
		if rec.FromUid != r.app.Uid() {
			t.Fatalf("record from uid %d, want %d", rec.FromUid, r.app.Uid())
		}
	}
	none, err := r.d.ReadLogBySender(kernel.SystemUid, kernel.Uid(10999))
	if err != nil {
		t.Fatal(err)
	}
	if none != nil {
		t.Fatalf("unknown sender returned %d records", len(none))
	}
}

// TestProcfsTextRenderMatchesStructs pins the compat contract of the
// provider-backed /proc file: rendering the flushed records to text and
// parsing the lines back must reproduce the struct stream byte for byte —
// including under timestamp jitter, where the at-append µs truncation is
// what keeps the two views identical.
func TestProcfsTextRenderMatchesStructs(t *testing.T) {
	r := newFaultRig(t, faults.Config{MaxJitter: 700 * time.Microsecond, ClockSkew: time.Millisecond}, 11)
	r.flood(t, 50)
	if _, err := r.d.FlushLog(); err != nil {
		t.Fatal(err)
	}
	structs, err := r.d.ReadLog(kernel.SystemUid)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := r.k.ProcFS().Read(LogPath, kernel.SystemUid)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(string(raw), "\n"), "\n")
	if len(lines) != len(structs) {
		t.Fatalf("rendered %d lines, %d struct records", len(lines), len(structs))
	}
	for i, line := range lines {
		parsed, err := ParseIPCRecord(line)
		if err != nil {
			t.Fatalf("line %d: %v", i, err)
		}
		if parsed != structs[i] {
			t.Fatalf("line %d round-trip mismatch:\n text: %+v\nstruct: %+v", i, parsed, structs[i])
		}
	}
	// The provider owns the file contents: nobody can write or append,
	// even root.
	if err := r.k.ProcFS().Write(LogPath, kernel.RootUid, []byte("spoof")); !errors.Is(err, kernel.ErrPermissionDenied) {
		t.Fatalf("Write on provider file = %v, want permission denied", err)
	}
	if err := r.k.ProcFS().Append(LogPath, kernel.RootUid, []byte("spoof")); !errors.Is(err, kernel.ErrPermissionDenied) {
		t.Fatalf("Append on provider file = %v, want permission denied", err)
	}
}

// TestPooledParcelHygiene checks that a recycled parcel comes back empty
// (no leaked items, cursor, reader or read refs), and that the pool is
// safe under concurrent obtain/write/recycle — the path `make race`
// exercises.
func TestPooledParcelHygiene(t *testing.T) {
	p := ObtainParcel()
	p.WriteString("secret")
	p.WriteInt32(42)
	p.Recycle()
	q := ObtainParcel()
	if q.Len() != 0 {
		t.Fatalf("pooled parcel has %d leftover items", q.Len())
	}
	if _, err := q.ReadInt32(); !errors.Is(err, ErrParcelExhausted) {
		t.Fatalf("read from fresh pooled parcel = %v, want exhausted", err)
	}
	q.Recycle()

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				p := ObtainParcel()
				if p.Len() != 0 {
					panic("dirty parcel from pool")
				}
				p.WriteString("payload")
				p.WriteInt64(int64(i))
				p.Recycle()
			}
		}()
	}
	wg.Wait()
}

// TestRecycledCallFramesDoNotLeak pins the Call pooling contract: state
// from one transaction must never be observable in the next.
func TestRecycledCallFramesDoNotLeak(t *testing.T) {
	r := newFaultRig(t, faults.Config{}, 1)
	var seen []kernel.Uid
	stub := r.d.NewLocalBinder(r.server, "UidEcho", TransactorFunc(func(c *Call) error {
		seen = append(seen, c.SenderUid)
		if c.Data.Len() != 1 {
			t.Fatalf("call data has %d items, want 1", c.Data.Len())
		}
		return nil
	}))
	sm := NewServiceManager(r.d)
	if err := sm.AddService("uidecho", stub); err != nil {
		t.Fatal(err)
	}
	svc, err := sm.GetService("uidecho", r.app)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		data := ObtainParcel()
		data.WriteInt32(int32(i))
		err := svc.Binder().Transact(1, data, nil)
		data.Recycle()
		if err != nil {
			t.Fatal(err)
		}
	}
	if len(seen) != 20 {
		t.Fatalf("handler ran %d times, want 20", len(seen))
	}
	for i, uid := range seen {
		if uid != r.app.Uid() {
			t.Fatalf("call %d saw uid %d, want %d", i, uid, r.app.Uid())
		}
	}
}
