package binder

import (
	"errors"
	"fmt"

	"repro/internal/art"
	"repro/internal/kernel"
)

// Handle identifies a binder node inside the driver, as seen by remote
// processes.
type Handle uint32

// TxCode identifies a transaction (an IPC method) on an interface.
type TxCode uint32

// Errors surfaced by binder operations.
var (
	// ErrDeadObject mirrors DeadObjectException: the binder's owning
	// process is gone.
	ErrDeadObject = errors.New("binder: dead object")
	// ErrUnknownTransaction is returned for a transaction on a binder
	// with no transactor (e.g. a plain token Binder).
	ErrUnknownTransaction = errors.New("binder: unknown transaction")
	// ErrLocalBinder is returned by LinkToDeath on a binder the caller
	// itself owns: local binders cannot die independently.
	ErrLocalBinder = errors.New("binder: cannot link to death of a local binder")
)

// Call carries one inbound transaction to a Transactor. Binder.getCallingUid
// and getCallingPid correspond to SenderUid and SenderPid; permission checks
// in services key off them.
type Call struct {
	Code  TxCode
	Data  *Parcel
	Reply *Parcel

	SenderPid kernel.Pid
	SenderUid kernel.Uid
	// Target is the local binder being invoked.
	Target *LocalBinder
}

// Transactor handles inbound transactions on a local binder — the
// equivalent of Binder.onTransact in a service stub.
type Transactor interface {
	OnTransact(call *Call) error
}

// TransactorFunc adapts a function to the Transactor interface.
type TransactorFunc func(call *Call) error

// OnTransact implements Transactor.
func (f TransactorFunc) OnTransact(call *Call) error { return f(call) }

// IBinder is the common interface of local binder objects and remote
// proxies, mirroring android.os.IBinder.
type IBinder interface {
	// Transact performs a synchronous transaction. reply may be nil when
	// the caller ignores results.
	Transact(code TxCode, data, reply *Parcel) error
	// Owner returns the process hosting the binder object.
	Owner() *kernel.Process
	// IsAlive reports whether the hosting process is still running.
	IsAlive() bool
	// LinkToDeath registers fn to run when the hosting process dies.
	// Linking takes a JNI global reference in the linking process (the
	// Binder.linkToDeath → JavaDeathRecipient JGR entry of paper
	// §III-B2); the reference is released when the link fires or is
	// unlinked.
	LinkToDeath(fn func()) (*DeathLink, error)
}

// LocalBinder is a binder object living in its creating process — the
// analogue of android.os.Binder. A LocalBinder with a nil Transactor is a
// pure token (attackers mint these: `new Binder()` in Code-Snippet 2).
type LocalBinder struct {
	driver  *Driver
	owner   *kernel.Process
	class   string
	handler Transactor
	id      uint64
	// node is the driver node minted the first time this binder crosses a
	// process boundary; nil until then, and reset to nil when the owner
	// dies. A LocalBinder belongs to exactly one driver, so caching the
	// edge here replaces the driver's binder→node map.
	node *node
}

// Owner returns the hosting process.
func (b *LocalBinder) Owner() *kernel.Process { return b.owner }

// Class returns the simulated Java class of the binder object.
func (b *LocalBinder) Class() string { return b.class }

// IsAlive reports whether the hosting process is running.
func (b *LocalBinder) IsAlive() bool { return b.owner.Alive() }

// Transact on a local binder dispatches directly to the transactor, as
// Binder.transact does for in-process calls. No driver crossing occurs
// and no IPC is logged.
func (b *LocalBinder) Transact(code TxCode, data, reply *Parcel) error {
	if b.handler == nil {
		return ErrUnknownTransaction
	}
	if data == nil {
		data = ObtainParcel()
		defer data.Recycle()
	}
	if reply == nil {
		reply = ObtainParcel()
		defer reply.Recycle()
	}
	ctx := b.driver.context(b.owner)
	data.attachReader(ctx)
	defer data.finishRead()
	reply.attachReader(ctx)
	vm := b.owner.VM()
	vm.PushLocalFrame()
	defer func() {
		if b.owner.Alive() {
			vm.PopLocalFrame()
		}
	}()
	c := obtainCall()
	c.Code, c.Data, c.Reply = code, data, reply
	c.SenderPid, c.SenderUid = b.owner.Pid(), b.owner.Uid()
	c.Target = b
	err := b.handler.OnTransact(c)
	recycleCall(c)
	return err
}

// LinkToDeath on a local binder is rejected: the owner cannot outlive
// itself.
func (b *LocalBinder) LinkToDeath(func()) (*DeathLink, error) {
	return nil, ErrLocalBinder
}

// proxy is a remote reference to a binder node, the analogue of
// android.os.BinderProxy. One proxy exists per (holding process, node).
type proxy struct {
	driver *Driver
	node   *node
	holder *kernel.Process
}

// Owner returns the process hosting the underlying binder object.
func (p *proxy) Owner() *kernel.Process { return p.node.owner }

// IsAlive reports whether the node's owner still runs.
func (p *proxy) IsAlive() bool { return !p.node.dead && p.node.owner.Alive() }

// Transact routes the transaction through the driver.
func (p *proxy) Transact(code TxCode, data, reply *Parcel) error {
	return p.driver.transact(p.holder, p.node, code, data, reply)
}

// LinkToDeath registers a death recipient for the remote process.
func (p *proxy) LinkToDeath(fn func()) (*DeathLink, error) {
	return p.driver.linkToDeath(p, fn)
}

// DeathLink is a registered death recipient; Unlink cancels it.
type DeathLink struct {
	driver *Driver
	node   *node
	holder *procContext
	fn     func()
	jgr    art.IndirectRef
	active bool
}

// Unlink cancels the death notification and releases its JGR.
func (dl *DeathLink) Unlink() {
	if !dl.active {
		return
	}
	dl.active = false
	dl.node.removeLink(dl)
	if dl.jgr != 0 && dl.holder.proc.Alive() {
		// Ignore stale errors: the VM may have aborted concurrently.
		_ = dl.holder.proc.VM().DeleteGlobalRef(dl.jgr)
	}
	dl.jgr = 0
}

// fire runs the recipient once and releases its JGR.
func (dl *DeathLink) fire() {
	if !dl.active {
		return
	}
	dl.active = false
	if dl.jgr != 0 && dl.holder.proc.Alive() {
		_ = dl.holder.proc.VM().DeleteGlobalRef(dl.jgr)
		dl.jgr = 0
	}
	dl.fn()
}

// BinderRef is a binder object materialized in a reading process by
// ReadStrongBinder (or handed out by the ServiceManager). It couples the
// IBinder with the JNI global reference that keeps the proxy alive in the
// reader's runtime.
//
// A ref obtained inside a transaction starts unretained: when the
// transaction ends the framework marks it collectable and the next GC
// frees the JGR — the innocent patterns of paper §III-C3. A service that
// stores the binder must call Retain, which is exactly the operation that
// makes an IPC interface a JGRE risk.
type BinderRef struct {
	ctx      *procContext
	binder   IBinder
	jgr      art.IndirectRef
	retained bool
	closed   bool
}

// Binder returns the underlying IBinder.
func (r *BinderRef) Binder() IBinder { return r.binder }

// HasJGR reports whether this ref holds a JNI global reference (false for
// same-process binders).
func (r *BinderRef) HasJGR() bool { return r.jgr != 0 }

// Retained reports whether the ref has been pinned beyond its transaction.
func (r *BinderRef) Retained() bool { return r.retained }

// Retain pins the reference beyond the current transaction, preventing GC
// from reclaiming its JGR. Retaining an already-closed ref panics: it
// indicates a use-after-release bug in a service.
func (r *BinderRef) Retain() {
	if r.closed {
		panic("binder: Retain on released BinderRef")
	}
	r.retained = true
}

// Release explicitly drops the reference, deleting its JGR immediately.
// Releasing twice is a no-op.
func (r *BinderRef) Release() {
	if r.closed {
		return
	}
	r.closed = true
	r.retained = false
	if r.jgr == 0 {
		return
	}
	if r.ctx.proc.Alive() {
		// The ctx JGR hook observes the delete and finalizes the proxy
		// (node remote-ref bookkeeping).
		_ = r.ctx.proc.VM().DeleteGlobalRef(r.jgr)
	}
}

// endOfTransaction marks an unretained ref collectable: the Java-side
// proxy became unreachable when onTransact returned, so the next GC cycle
// reclaims the global reference.
func (r *BinderRef) endOfTransaction() {
	if r.retained || r.closed || r.jgr == 0 {
		return
	}
	r.closed = true
	if r.ctx.proc.Alive() {
		_ = r.ctx.proc.VM().MarkCollectable(r.jgr)
	}
	// Drop from the proxy cache now: a later read of the same node
	// materializes a fresh proxy, as javaObjectForIBinder would after
	// the BinderProxy is finalized.
	delete(r.ctx.proxies, r.node().handle)
}

// node returns the driver node behind a proxy-backed ref.
func (r *BinderRef) node() *node {
	if p, ok := r.binder.(*proxy); ok {
		return p.node
	}
	panic(fmt.Sprintf("binder: BinderRef over %T has no node", r.binder))
}
