package binder

import "testing"

// FuzzParseIPCRecord hardens the procfs log parser against arbitrary
// input: it must never panic, and anything it accepts must re-serialize
// to a line it parses back to the same record.
func FuzzParseIPCRecord(f *testing.F) {
	f.Add("1 100 10 10061 2 7 3 512")
	f.Add("")
	f.Add("not a record at all")
	f.Add("1 2 3 4 5 6 7")
	f.Add("-1 -2 -3 -4 -5 -6 -7 -8")
	f.Add("99999999999999999999 1 1 1 1 1 1 1")
	f.Fuzz(func(t *testing.T, line string) {
		r, err := ParseIPCRecord(line)
		if err != nil {
			return
		}
		again, err := ParseIPCRecord(r.String())
		if err != nil {
			t.Fatalf("accepted %q but re-parse failed: %v", line, err)
		}
		if again != r {
			t.Fatalf("round trip mismatch: %+v vs %+v", r, again)
		}
	})
}
