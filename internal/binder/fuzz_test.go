package binder

import (
	"strings"
	"testing"
	"time"
)

// FuzzParseIPCRecord hardens the procfs log parser against arbitrary
// input: it must never panic, it rejects anything that is not exactly
// eight in-range decimal fields, and anything it accepts must
// re-serialize to a line it parses back to the same record — the
// defender depends on the log being a lossless serialization of what
// the driver wrote.
func FuzzParseIPCRecord(f *testing.F) {
	f.Add("1 100 10 10061 2 7 3 512")
	f.Add("18446744073709551615 0 0 0 0 4294967295 4294967295 1048576")
	f.Add(IPCRecord{Seq: 9, Time: 88 * time.Millisecond, FromPid: 301, FromUid: 10042,
		ToPid: 17, Handle: 12, Code: 1, Size: 4096}.String())
	f.Add("")
	f.Add("not a record at all")
	f.Add("1 2 3 4 5 6 7")
	f.Add("-1 -2 -3 -4 -5 -6 -7 -8")
	f.Add("99999999999999999999 1 1 1 1 1 1 1")
	f.Add("1 9223372036854775807 3 4 5 6 7 8")
	f.Add("1 100 10 10061 2 7 3 512 trailing")
	f.Fuzz(func(t *testing.T, line string) {
		r, err := ParseIPCRecord(line)
		if err != nil {
			return
		}
		again, err := ParseIPCRecord(r.String())
		if err != nil {
			t.Fatalf("accepted %q but re-parse failed: %v", line, err)
		}
		if again != r {
			t.Fatalf("round trip mismatch: %+v vs %+v", r, again)
		}
		// Accepted values must sit inside the driver's own domain.
		if r.Time < 0 || r.Time%time.Microsecond != 0 {
			t.Fatalf("accepted timestamp %v not a non-negative microsecond multiple", r.Time)
		}
		if r.Size < 0 || r.Size > MaxTransactionBytes {
			t.Fatalf("accepted out-of-range size %d", r.Size)
		}
		if len(strings.Fields(line)) != 8 {
			t.Fatalf("accepted line %q without exactly 8 fields", line)
		}
	})
}
