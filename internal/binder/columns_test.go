package binder

import (
	"errors"
	"reflect"
	"testing"

	"repro/internal/faults"
	"repro/internal/kernel"
)

// TestLogColumnsRoundTrip pins the SoA view as a lossless encoding:
// appending records and materializing them back yields the originals,
// and Reset retains capacity while emptying every column.
func TestLogColumnsRoundTrip(t *testing.T) {
	r := newFaultRig(t, faults.Config{}, 1)
	r.flood(t, 50)
	if _, err := r.d.FlushLog(); err != nil {
		t.Fatal(err)
	}
	recs, err := r.d.ReadLog(kernel.SystemUid)
	if err != nil {
		t.Fatal(err)
	}
	var w LogColumns
	for _, rec := range recs {
		w.Append(rec)
	}
	if w.Len() != len(recs) {
		t.Fatalf("Len = %d, want %d", w.Len(), len(recs))
	}
	for i, rec := range recs {
		if got := w.Record(i); got != rec {
			t.Fatalf("Record(%d) = %+v, want %+v", i, got, rec)
		}
	}
	if got := w.Rows(nil); !reflect.DeepEqual(got, recs) {
		t.Fatalf("Rows diverged from the appended records")
	}
	before := cap(w.Seq)
	w.Reset()
	if w.Len() != 0 || cap(w.Seq) != before {
		t.Fatalf("Reset: len=%d cap=%d, want len=0 cap=%d", w.Len(), cap(w.Seq), before)
	}
}

// TestLogColumnsFilter checks in-place compaction keeps exactly the
// selected rows, in order, across every column.
func TestLogColumnsFilter(t *testing.T) {
	r := newFaultRig(t, faults.Config{}, 1)
	r.flood(t, 40)
	if _, err := r.d.FlushLog(); err != nil {
		t.Fatal(err)
	}
	recs, err := r.d.ReadLog(kernel.SystemUid)
	if err != nil {
		t.Fatal(err)
	}
	var w LogColumns
	for _, rec := range recs {
		w.Append(rec)
	}
	w.Filter(func(i int) bool { return w.Seq[i]%3 == 0 })
	var want []IPCRecord
	for _, rec := range recs {
		if rec.Seq%3 == 0 {
			want = append(want, rec)
		}
	}
	if got := w.Rows(nil); !reflect.DeepEqual(got, want) {
		t.Fatalf("Filter kept %d rows, want %d matching rows in order", w.Len(), len(want))
	}
}

// TestAppendLogColumnsSinceMatchesRows is the equivalence contract for
// the defender's columnar read: for any afterSeq cut, the columnar view
// holds exactly the rows ReadLogSince returns.
func TestAppendLogColumnsSinceMatchesRows(t *testing.T) {
	r := newFaultRig(t, faults.Config{}, 1)
	r.flood(t, 120)
	if _, err := r.d.FlushLog(); err != nil {
		t.Fatal(err)
	}
	victim := r.server.Pid()
	all, err := r.d.ReadLogSince(kernel.SystemUid, victim, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) == 0 {
		t.Fatal("no records for victim")
	}
	cuts := []uint64{0, all[0].Seq, all[len(all)/2].Seq, all[len(all)-1].Seq}
	for _, cut := range cuts {
		want, err := r.d.ReadLogSince(kernel.SystemUid, victim, cut)
		if err != nil {
			t.Fatal(err)
		}
		var w LogColumns
		n, err := r.d.AppendLogColumnsSince(kernel.SystemUid, victim, cut, &w)
		if err != nil {
			t.Fatal(err)
		}
		if n != len(want) || w.Len() != len(want) {
			t.Fatalf("cut %d: appended %d rows (len %d), want %d", cut, n, w.Len(), len(want))
		}
		if len(want) > 0 && !reflect.DeepEqual(w.Rows(nil), want) {
			t.Fatalf("cut %d: columnar window diverged from ReadLogSince", cut)
		}
	}
	// The second append lands behind the first: the columnar read is an
	// append, not a replace, so a poll loop can accumulate one window
	// across retries of disjoint cuts.
	var w LogColumns
	mid := all[len(all)/2].Seq
	if _, err := r.d.AppendLogColumnsSince(kernel.SystemUid, victim, mid, &w); err != nil {
		t.Fatal(err)
	}
	head := w.Len()
	if _, err := r.d.AppendLogColumnsSince(kernel.SystemUid, victim, mid, &w); err != nil {
		t.Fatal(err)
	}
	if w.Len() != 2*head {
		t.Fatalf("second append: len = %d, want %d", w.Len(), 2*head)
	}
}

// TestAppendLogColumnsSinceGauntlet pins the read-side behaviour shared
// with ReadLog: app uids are denied by the procfs ACL and injected read
// faults surface before any data is copied.
func TestAppendLogColumnsSinceGauntlet(t *testing.T) {
	r := newFaultRig(t, faults.Config{}, 1)
	r.flood(t, 10)
	if _, err := r.d.FlushLog(); err != nil {
		t.Fatal(err)
	}
	var w LogColumns
	if _, err := r.d.AppendLogColumnsSince(r.app.Uid(), r.server.Pid(), 0, &w); !errors.Is(err, kernel.ErrPermissionDenied) {
		t.Fatalf("app read error = %v, want ErrPermissionDenied", err)
	}
	if w.Len() != 0 {
		t.Fatalf("denied read leaked %d rows into the window", w.Len())
	}

	faulty := newFaultRig(t, faults.Config{ReadFailEvery: 1}, 99)
	faulty.flood(t, 10)
	if _, err := faulty.d.AppendLogColumnsSince(kernel.SystemUid, faulty.server.Pid(), 0, &w); !errors.Is(err, faults.ErrInjectedRead) {
		t.Fatalf("faulted read error = %v, want ErrInjectedRead", err)
	}
	if w.Len() != 0 {
		t.Fatalf("faulted read leaked %d rows into the window", w.Len())
	}
}
