package parallel

import (
	"context"
	"errors"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestMapOrderedResults(t *testing.T) {
	items := make([]int, 100)
	for i := range items {
		items[i] = i
	}
	for _, workers := range []int{0, 1, 3, 8, 200} {
		got, err := Map(context.Background(), items, workers, func(_ context.Context, idx int, item int) (int, error) {
			if idx != item {
				t.Errorf("workers=%d: idx %d paired with item %d", workers, idx, item)
			}
			// Stagger completion so later shards finish before earlier ones.
			if idx%2 == 0 {
				time.Sleep(time.Duration(idx%5) * time.Millisecond)
			}
			return item * item, nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(got) != len(items) {
			t.Fatalf("workers=%d: %d results", workers, len(got))
		}
		for i, r := range got {
			if r != i*i {
				t.Errorf("workers=%d: result[%d] = %d, want %d", workers, i, r, i*i)
			}
		}
	}
}

func TestMapEmptyInput(t *testing.T) {
	got, err := Map(context.Background(), nil, 4, func(context.Context, int, int) (int, error) {
		t.Fatal("fn called for empty input")
		return 0, nil
	})
	if err != nil || len(got) != 0 {
		t.Fatalf("got %v, %v", got, err)
	}
}

func TestMapPanicBecomesError(t *testing.T) {
	for _, workers := range []int{1, 4} {
		_, err := Map(context.Background(), []int{0, 1, 2, 3}, workers, func(_ context.Context, idx int, _ int) (int, error) {
			if idx == 2 {
				panic("shard exploded")
			}
			return 0, nil
		})
		var pe *PanicError
		if !errors.As(err, &pe) {
			t.Fatalf("workers=%d: err = %v, want *PanicError", workers, err)
		}
		if pe.Index != 2 || pe.Value != "shard exploded" {
			t.Errorf("workers=%d: PanicError = index %d value %v", workers, pe.Index, pe.Value)
		}
		if !strings.Contains(pe.Error(), "shard 2 panicked") || len(pe.Stack) == 0 {
			t.Errorf("workers=%d: error lacks context: %v", workers, pe)
		}
	}
}

func TestMapFailFast(t *testing.T) {
	shardErr := errors.New("shard 0 failed")
	var started atomic.Int64
	_, err := Map(context.Background(), make([]int, 1000), 2, func(ctx context.Context, idx int, _ int) (int, error) {
		started.Add(1)
		if idx == 0 {
			return 0, shardErr
		}
		// Give the cancellation a moment to propagate so unstarted shards
		// are actually skipped.
		select {
		case <-ctx.Done():
		case <-time.After(time.Millisecond):
		}
		return 0, nil
	})
	if !errors.Is(err, shardErr) {
		t.Fatalf("err = %v, want %v", err, shardErr)
	}
	if n := started.Load(); n == 1000 {
		t.Error("every shard ran despite fail-fast cancellation")
	}
}

func TestMapSequentialStopsAtFirstError(t *testing.T) {
	shardErr := errors.New("boom")
	ran := 0
	_, err := Map(context.Background(), make([]int, 10), 1, func(_ context.Context, idx int, _ int) (int, error) {
		ran++
		if idx == 3 {
			return 0, shardErr
		}
		return 0, nil
	})
	if !errors.Is(err, shardErr) {
		t.Fatalf("err = %v", err)
	}
	if ran != 4 {
		t.Errorf("ran %d shards, want 4", ran)
	}
}

func TestMapContextCancellation(t *testing.T) {
	for _, workers := range []int{1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		var ran atomic.Int64
		_, err := Map(ctx, make([]int, 1000), workers, func(ctx context.Context, idx int, _ int) (int, error) {
			if ran.Add(1) == 3 {
				cancel()
			}
			return 0, nil
		})
		cancel()
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
		if n := ran.Load(); n == 1000 {
			t.Errorf("workers=%d: every shard ran despite cancellation", workers)
		}
	}
}

func TestDefaultWorkersPositive(t *testing.T) {
	if DefaultWorkers() < 1 {
		t.Fatalf("DefaultWorkers() = %d", DefaultWorkers())
	}
}
