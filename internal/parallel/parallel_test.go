package parallel

import (
	"context"
	"errors"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestMapOrderedResults(t *testing.T) {
	items := make([]int, 100)
	for i := range items {
		items[i] = i
	}
	for _, workers := range []int{0, 1, 3, 8, 200} {
		got, err := Map(context.Background(), items, workers, func(_ context.Context, idx int, item int) (int, error) {
			if idx != item {
				t.Errorf("workers=%d: idx %d paired with item %d", workers, idx, item)
			}
			// Stagger completion so later shards finish before earlier ones.
			if idx%2 == 0 {
				time.Sleep(time.Duration(idx%5) * time.Millisecond)
			}
			return item * item, nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(got) != len(items) {
			t.Fatalf("workers=%d: %d results", workers, len(got))
		}
		for i, r := range got {
			if r != i*i {
				t.Errorf("workers=%d: result[%d] = %d, want %d", workers, i, r, i*i)
			}
		}
	}
}

func TestMapEmptyInput(t *testing.T) {
	got, err := Map(context.Background(), nil, 4, func(context.Context, int, int) (int, error) {
		t.Fatal("fn called for empty input")
		return 0, nil
	})
	if err != nil || len(got) != 0 {
		t.Fatalf("got %v, %v", got, err)
	}
}

func TestMapPanicBecomesError(t *testing.T) {
	for _, workers := range []int{1, 4} {
		_, err := Map(context.Background(), []int{0, 1, 2, 3}, workers, func(_ context.Context, idx int, _ int) (int, error) {
			if idx == 2 {
				panic("shard exploded")
			}
			return 0, nil
		})
		var pe *PanicError
		if !errors.As(err, &pe) {
			t.Fatalf("workers=%d: err = %v, want *PanicError", workers, err)
		}
		if pe.Index != 2 || pe.Value != "shard exploded" {
			t.Errorf("workers=%d: PanicError = index %d value %v", workers, pe.Index, pe.Value)
		}
		if !strings.Contains(pe.Error(), "shard 2 panicked") || len(pe.Stack) == 0 {
			t.Errorf("workers=%d: error lacks context: %v", workers, pe)
		}
	}
}

func TestMapFailFast(t *testing.T) {
	shardErr := errors.New("shard 0 failed")
	var started atomic.Int64
	_, err := Map(context.Background(), make([]int, 1000), 2, func(ctx context.Context, idx int, _ int) (int, error) {
		started.Add(1)
		if idx == 0 {
			return 0, shardErr
		}
		// Give the cancellation a moment to propagate so unstarted shards
		// are actually skipped.
		select {
		case <-ctx.Done():
		case <-time.After(time.Millisecond):
		}
		return 0, nil
	})
	if !errors.Is(err, shardErr) {
		t.Fatalf("err = %v, want %v", err, shardErr)
	}
	if n := started.Load(); n == 1000 {
		t.Error("every shard ran despite fail-fast cancellation")
	}
}

func TestMapSequentialStopsAtFirstError(t *testing.T) {
	shardErr := errors.New("boom")
	ran := 0
	_, err := Map(context.Background(), make([]int, 10), 1, func(_ context.Context, idx int, _ int) (int, error) {
		ran++
		if idx == 3 {
			return 0, shardErr
		}
		return 0, nil
	})
	if !errors.Is(err, shardErr) {
		t.Fatalf("err = %v", err)
	}
	if ran != 4 {
		t.Errorf("ran %d shards, want 4", ran)
	}
}

func TestMapContextCancellation(t *testing.T) {
	for _, workers := range []int{1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		var ran atomic.Int64
		_, err := Map(ctx, make([]int, 1000), workers, func(ctx context.Context, idx int, _ int) (int, error) {
			if ran.Add(1) == 3 {
				cancel()
			}
			return 0, nil
		})
		cancel()
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
		if n := ran.Load(); n == 1000 {
			t.Errorf("workers=%d: every shard ran despite cancellation", workers)
		}
	}
}

func TestDefaultWorkersPositive(t *testing.T) {
	if DefaultWorkers() < 1 {
		t.Fatalf("DefaultWorkers() = %d", DefaultWorkers())
	}
}

// TestMapChunkedEquivalence pins the chunked claiming path: for item
// counts that exercise partial tail chunks and worker counts above and
// below the chunk divisor, every item must be processed exactly once and
// the result slice must be byte-identical to the workers=1 run.
func TestMapChunkedEquivalence(t *testing.T) {
	for _, n := range []int{1, 7, 64, 257, 1000} {
		items := make([]int64, n)
		for i := range items {
			items[i] = int64(i)*2654435761 + 12345
		}
		shard := func(_ context.Context, idx int, item int64) (string, error) {
			// A value depending on both index and item content, so any
			// misrouted shard shows up as a mismatch, not a coincidence.
			v := item ^ int64(idx)<<32
			return strings.Repeat("x", idx%3) + "|" + time.Duration(v).String(), nil
		}
		want, err := Map(context.Background(), items, 1, shard)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{2, 4, 16, 200} {
			seen := make([]atomic.Int32, n)
			got, err := Map(context.Background(), items, workers, func(ctx context.Context, idx int, item int64) (string, error) {
				seen[idx].Add(1)
				return shard(ctx, idx, item)
			})
			if err != nil {
				t.Fatalf("n=%d workers=%d: %v", n, workers, err)
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("n=%d workers=%d: result[%d] = %q, want %q", n, workers, i, got[i], want[i])
				}
			}
			for i := range seen {
				if c := seen[i].Load(); c != 1 {
					t.Fatalf("n=%d workers=%d: item %d processed %d times", n, workers, i, c)
				}
			}
		}
	}
}

// TestMapChunkedFailFast: an error inside a chunk must stop the sweep,
// surface the lowest-indexed failure, and not run the failing worker's
// remaining chunk items.
func TestMapChunkedFailFast(t *testing.T) {
	items := make([]int, 512)
	var after atomic.Int32
	boom := errors.New("boom")
	_, err := Map(context.Background(), items, 4, func(_ context.Context, idx int, _ int) (int, error) {
		if idx == 100 {
			return 0, boom
		}
		if idx > 100 {
			after.Add(1)
		}
		return 0, nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	// Everything after the failing shard in its own chunk must be skipped;
	// other workers may legitimately have been mid-chunk.
	if after.Load() >= 512-100 {
		t.Fatalf("fail-fast did not stop the sweep (%d later shards ran)", after.Load())
	}
}
