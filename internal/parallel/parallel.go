// Package parallel is the deterministic fan-out engine behind every
// experiment sweep. Each shard of a sweep is fully isolated — it boots its
// own device with its own virtual clock and seeded PRNGs — so shards can
// run on any number of workers in any completion order and the merged
// output is byte-identical to a sequential run: Map always returns results
// in input order.
//
// The engine is deliberately generic (it knows nothing about devices or
// experiments) so the analysis pipeline's dynamic verification stage and
// any future sweep can reuse it.
package parallel

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
)

// DefaultWorkers is the pool size used when Map is given workers <= 0:
// one worker per available CPU.
func DefaultWorkers() int { return runtime.GOMAXPROCS(0) }

// PanicError converts a shard panic into an error carrying the shard's
// input index, the panic value and the goroutine stack, so one corrupt
// shard fails its sweep with full context instead of crashing the process.
type PanicError struct {
	Index int
	Value any
	Stack []byte
}

// Error implements error.
func (e *PanicError) Error() string {
	return fmt.Sprintf("parallel: shard %d panicked: %v\n%s", e.Index, e.Value, e.Stack)
}

// Map runs fn over every item on a pool of workers and returns the
// results in input order, regardless of completion order.
//
//   - workers <= 0 uses DefaultWorkers(); workers == 1 runs the shards
//     inline on the calling goroutine (the legacy sequential path).
//   - A shard panic is recovered into a *PanicError.
//   - The first failing shard cancels the context passed to the remaining
//     shards and stops new shards from starting (fail-fast); shards
//     already running are waited for. On failure Map returns a nil slice
//     and the error of the lowest-indexed shard that ran and failed.
//   - Cancelling ctx stops the sweep the same way and surfaces ctx.Err().
//
// fn must not retain item or share mutable state across shards; with
// isolated shards, the result of Map is independent of the worker count.
func Map[T, R any](ctx context.Context, items []T, workers int, fn func(ctx context.Context, index int, item T) (R, error)) ([]R, error) {
	if workers <= 0 {
		workers = DefaultWorkers()
	}
	if workers > len(items) {
		workers = len(items)
	}
	if len(items) == 0 {
		return []R{}, nil
	}
	results := make([]R, len(items))
	if workers == 1 {
		for i, item := range items {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			r, err := run(ctx, i, item, fn)
			if err != nil {
				return nil, err
			}
			results[i] = r
		}
		return results, nil
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	errs := make([]error, len(items))
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(items) || ctx.Err() != nil {
					return
				}
				r, err := run(ctx, i, items[i], fn)
				if err != nil {
					errs[i] = err
					cancel() // fail fast: stop handing out shards
					continue
				}
				results[i] = r
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	// No shard failed, so any cancellation came from the caller's context.
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return results, nil
}

// run invokes fn on one shard with panic recovery.
func run[T, R any](ctx context.Context, i int, item T, fn func(context.Context, int, T) (R, error)) (r R, err error) {
	defer func() {
		if p := recover(); p != nil {
			err = &PanicError{Index: i, Value: p, Stack: debug.Stack()}
		}
	}()
	return fn(ctx, i, item)
}
