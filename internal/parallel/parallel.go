// Package parallel is the deterministic fan-out engine behind every
// experiment sweep. Each shard of a sweep is fully isolated — it boots its
// own device with its own virtual clock and seeded PRNGs — so shards can
// run on any number of workers in any completion order and the merged
// output is byte-identical to a sequential run: Map always returns results
// in input order.
//
// The engine is deliberately generic (it knows nothing about devices or
// experiments) so the analysis pipeline's dynamic verification stage and
// any future sweep can reuse it.
package parallel

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"

	"repro/internal/telemetry"
)

// DefaultWorkers is the pool size used when Map is given workers <= 0:
// one worker per available CPU.
func DefaultWorkers() int { return runtime.GOMAXPROCS(0) }

// engineMetrics is the engine's view into the process-global telemetry
// registry. Handles are resolved per Map call (a few mutex-guarded map
// lookups against whole-device shard runs) so a test's ResetGlobal is
// always honored.
type engineMetrics struct {
	shards        *telemetry.Counter
	errors        *telemetry.Counter
	panics        *telemetry.Counter
	cancellations *telemetry.Counter
	active        *telemetry.Gauge
	queued        *telemetry.Gauge
}

func newEngineMetrics() engineMetrics {
	reg := telemetry.Global()
	return engineMetrics{
		shards: reg.Counter("jgre_parallel_shards_total",
			"Sweep shards handed to the worker pool."),
		errors: reg.Counter("jgre_parallel_shard_errors_total",
			"Shards that returned an error (panics included)."),
		panics: reg.Counter("jgre_parallel_shard_panics_total",
			"Shards that panicked and were recovered into PanicError."),
		cancellations: reg.Counter("jgre_parallel_cancellations_total",
			"Sweeps cut short by fail-fast cancellation or caller context."),
		active: reg.Gauge("jgre_parallel_workers_active",
			"Workers currently executing a shard."),
		queued: reg.Gauge("jgre_parallel_queue_depth",
			"Shards accepted but not yet started."),
	}
}

// PanicError converts a shard panic into an error carrying the shard's
// input index, the panic value and the goroutine stack, so one corrupt
// shard fails its sweep with full context instead of crashing the process.
type PanicError struct {
	Index int
	Value any
	Stack []byte
}

// Error implements error.
func (e *PanicError) Error() string {
	return fmt.Sprintf("parallel: shard %d panicked: %v\n%s", e.Index, e.Value, e.Stack)
}

// Map runs fn over every item on a pool of workers and returns the
// results in input order, regardless of completion order.
//
//   - workers <= 0 uses DefaultWorkers(); workers == 1 runs the shards
//     inline on the calling goroutine (the legacy sequential path).
//   - A shard panic is recovered into a *PanicError.
//   - The first failing shard cancels the context passed to the remaining
//     shards and stops new shards from starting (fail-fast); shards
//     already running are waited for. On failure Map returns a nil slice
//     and the error of the lowest-indexed shard that ran and failed.
//   - Cancelling ctx stops the sweep the same way and surfaces ctx.Err().
//
// fn must not retain item or share mutable state across shards; with
// isolated shards, the result of Map is independent of the worker count.
func Map[T, R any](ctx context.Context, items []T, workers int, fn func(ctx context.Context, index int, item T) (R, error)) ([]R, error) {
	if workers <= 0 {
		workers = DefaultWorkers()
	}
	if workers > len(items) {
		workers = len(items)
	}
	if len(items) == 0 {
		return []R{}, nil
	}
	m := newEngineMetrics()
	m.shards.Add(uint64(len(items)))
	m.queued.Add(float64(len(items)))
	// Shards never dispatched (fail-fast, caller cancel) still drain from
	// the queue gauge when the sweep returns.
	defer m.queued.Set(0)
	results := make([]R, len(items))
	if workers == 1 {
		for i, item := range items {
			if err := ctx.Err(); err != nil {
				m.cancellations.Inc()
				return nil, err
			}
			m.queued.Add(-1)
			r, err := run(ctx, m, i, item, fn)
			if err != nil {
				m.errors.Inc()
				return nil, err
			}
			results[i] = r
		}
		return results, nil
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	errs := make([]error, len(items))
	var failed atomic.Bool
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	// Workers claim fixed-length runs of adjacent shards instead of single
	// items: one atomic claim amortizes across the run and adjacent shards
	// write adjacent result slots, which is what makes fine-grained sweeps
	// (hundreds of sub-millisecond shards) profitable to parallelize at
	// all. Results are position-addressed, so the chunk size can never
	// influence the output — only who computes it.
	chunk := len(items) / (workers * 4)
	if chunk < 1 {
		chunk = 1
	} else if chunk > 64 {
		chunk = 64
	}
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				start := int(next.Add(int64(chunk))) - chunk
				if start >= len(items) || ctx.Err() != nil {
					return
				}
				end := start + chunk
				if end > len(items) {
					end = len(items)
				}
				for i := start; i < end; i++ {
					if ctx.Err() != nil {
						return
					}
					m.queued.Add(-1)
					r, err := run(ctx, m, i, items[i], fn)
					if err != nil {
						errs[i] = err
						m.errors.Inc()
						if failed.CompareAndSwap(false, true) {
							m.cancellations.Inc()
						}
						cancel() // fail fast: stop handing out shards
						return
					}
					results[i] = r
				}
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	// No shard failed, so any cancellation came from the caller's context.
	if err := ctx.Err(); err != nil {
		m.cancellations.Inc()
		return nil, err
	}
	return results, nil
}

// run invokes fn on one shard with panic recovery.
func run[T, R any](ctx context.Context, m engineMetrics, i int, item T, fn func(context.Context, int, T) (R, error)) (r R, err error) {
	m.active.Add(1)
	defer func() {
		m.active.Add(-1)
		if p := recover(); p != nil {
			m.panics.Inc()
			err = &PanicError{Index: i, Value: p, Stack: debug.Stack()}
		}
	}()
	return fn(ctx, i, item)
}
