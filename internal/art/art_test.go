package art

import (
	"errors"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/simclock"
)

func newTestVM(t *testing.T, cfg Config) (*VM, *simclock.Clock) {
	t.Helper()
	clock := simclock.New()
	return NewVM("test_proc", clock, cfg), clock
}

func obj(id uint64) *Object { return &Object{ID: ObjectID(id), Class: "android.os.Binder"} }

func TestAddDeleteGlobalRef(t *testing.T) {
	vm, _ := newTestVM(t, Config{})
	ref, err := vm.AddGlobalRef(obj(1))
	if err != nil {
		t.Fatalf("AddGlobalRef: %v", err)
	}
	if got := vm.GlobalRefCount(); got != 1 {
		t.Fatalf("GlobalRefCount = %d, want 1", got)
	}
	if ref.Kind() != KindGlobal {
		t.Fatalf("ref kind = %v, want global", ref.Kind())
	}
	if err := vm.DeleteGlobalRef(ref); err != nil {
		t.Fatalf("DeleteGlobalRef: %v", err)
	}
	if got := vm.GlobalRefCount(); got != 0 {
		t.Fatalf("GlobalRefCount = %d, want 0", got)
	}
}

func TestDefaultCapIs51200(t *testing.T) {
	vm, _ := newTestVM(t, Config{})
	if got := vm.MaxGlobal(); got != 51200 {
		t.Fatalf("MaxGlobal = %d, want 51200 (AOSP java_vm_ext.cc constant)", got)
	}
}

func TestOverflowAbortsRuntime(t *testing.T) {
	var abortReason string
	clock := simclock.New()
	vm := NewVM("system_server", clock, Config{
		MaxGlobalRefs: 8,
		OnAbort:       func(r string) { abortReason = r },
	})
	for i := 0; i < 8; i++ {
		if _, err := vm.AddGlobalRef(obj(uint64(i))); err != nil {
			t.Fatalf("add %d: %v", i, err)
		}
	}
	_, err := vm.AddGlobalRef(obj(99))
	var oe *OverflowError
	if !errors.As(err, &oe) {
		t.Fatalf("overflow add error = %v, want OverflowError", err)
	}
	if oe.Kind != KindGlobal || oe.Max != 8 || oe.Process != "system_server" {
		t.Fatalf("unexpected overflow detail: %+v", oe)
	}
	if !vm.Aborted() {
		t.Fatal("runtime did not abort on JGR overflow")
	}
	if abortReason == "" {
		t.Fatal("abort callback not invoked")
	}
	// All further table operations fail.
	if _, err := vm.AddGlobalRef(obj(100)); !errors.Is(err, ErrRuntimeAborted) {
		t.Fatalf("post-abort add error = %v, want ErrRuntimeAborted", err)
	}
}

func TestAbortCallbackFiresOnce(t *testing.T) {
	calls := 0
	clock := simclock.New()
	vm := NewVM("p", clock, Config{MaxGlobalRefs: 1, OnAbort: func(string) { calls++ }})
	if _, err := vm.AddGlobalRef(obj(1)); err != nil {
		t.Fatal(err)
	}
	vm.AddGlobalRef(obj(2))
	vm.AddGlobalRef(obj(3))
	if calls != 1 {
		t.Fatalf("abort callback fired %d times, want 1", calls)
	}
}

func TestDeleteStaleRef(t *testing.T) {
	vm, _ := newTestVM(t, Config{})
	ref, _ := vm.AddGlobalRef(obj(1))
	if err := vm.DeleteGlobalRef(ref); err != nil {
		t.Fatal(err)
	}
	var se *StaleRefError
	if err := vm.DeleteGlobalRef(ref); !errors.As(err, &se) {
		t.Fatalf("double delete error = %v, want StaleRefError", err)
	}
	// Deleting a local ref through the global API is also stale.
	lref, _ := vm.AddLocalRef(obj(2))
	if err := vm.DeleteGlobalRef(lref); !errors.As(err, &se) {
		t.Fatalf("cross-kind delete error = %v, want StaleRefError", err)
	}
}

func TestGCFreesOnlyCollectable(t *testing.T) {
	vm, _ := newTestVM(t, Config{})
	retained, _ := vm.AddGlobalRef(obj(1))
	dropped1, _ := vm.AddGlobalRef(obj(2))
	dropped2, _ := vm.AddGlobalRef(obj(3))
	if err := vm.MarkCollectable(dropped1); err != nil {
		t.Fatal(err)
	}
	if err := vm.MarkCollectable(dropped2); err != nil {
		t.Fatal(err)
	}
	if freed := vm.GC(); freed != 2 {
		t.Fatalf("GC freed %d, want 2", freed)
	}
	if got := vm.GlobalRefCount(); got != 1 {
		t.Fatalf("GlobalRefCount = %d, want 1", got)
	}
	// The retained ref survives GC and is still deletable.
	if err := vm.DeleteGlobalRef(retained); err != nil {
		t.Fatalf("retained ref was collected: %v", err)
	}
	if vm.GCCycles() != 1 {
		t.Fatalf("GCCycles = %d, want 1", vm.GCCycles())
	}
}

func TestLocalFrames(t *testing.T) {
	vm, _ := newTestVM(t, Config{})
	if _, err := vm.AddLocalRef(obj(1)); err != nil {
		t.Fatal(err)
	}
	vm.PushLocalFrame()
	vm.AddLocalRef(obj(2))
	vm.AddLocalRef(obj(3))
	if got := vm.LocalRefCount(); got != 2 {
		t.Fatalf("inner LocalRefCount = %d, want 2", got)
	}
	if freed := vm.PopLocalFrame(); freed != 2 {
		t.Fatalf("PopLocalFrame freed %d, want 2", freed)
	}
	if got := vm.LocalRefCount(); got != 1 {
		t.Fatalf("outer LocalRefCount = %d, want 1", got)
	}
}

func TestPopRootFramePanics(t *testing.T) {
	vm, _ := newTestVM(t, Config{})
	defer func() {
		if recover() == nil {
			t.Fatal("PopLocalFrame on root frame did not panic")
		}
	}()
	vm.PopLocalFrame()
}

func TestWeakGlobalRefs(t *testing.T) {
	vm, _ := newTestVM(t, Config{MaxWeakGlobalRefs: 2})
	r1, err := vm.AddWeakGlobalRef(obj(1))
	if err != nil {
		t.Fatal(err)
	}
	if r1.Kind() != KindWeakGlobal {
		t.Fatalf("kind = %v, want weak-global", r1.Kind())
	}
	if _, err := vm.AddWeakGlobalRef(obj(2)); err != nil {
		t.Fatal(err)
	}
	if _, err := vm.AddWeakGlobalRef(obj(3)); err == nil {
		t.Fatal("weak table overflow not detected")
	}
}

func TestJGRHookObservesAddRemove(t *testing.T) {
	vm, clock := newTestVM(t, Config{})
	var events []JGREvent
	vm.AddJGRHook(func(ev JGREvent) { events = append(events, ev) })

	clock.Advance(10 * time.Millisecond)
	ref, _ := vm.AddGlobalRef(obj(7))
	clock.Advance(5 * time.Millisecond)
	vm.DeleteGlobalRef(ref)

	if len(events) != 2 {
		t.Fatalf("got %d events, want 2", len(events))
	}
	add, rem := events[0], events[1]
	if add.Op != OpAdd || add.Time != 10*time.Millisecond || add.Count != 1 || add.Obj != 7 {
		t.Fatalf("add event = %+v", add)
	}
	if rem.Op != OpRemove || rem.Time != 15*time.Millisecond || rem.Count != 0 || rem.Obj != 7 {
		t.Fatalf("remove event = %+v", rem)
	}
}

func TestRefAge(t *testing.T) {
	vm, clock := newTestVM(t, Config{})
	ref, _ := vm.AddGlobalRef(obj(1))
	clock.Advance(42 * time.Second)
	age, ok := vm.RefAge(ref)
	if !ok || age != 42*time.Second {
		t.Fatalf("RefAge = %v, %v; want 42s, true", age, ok)
	}
	vm.DeleteGlobalRef(ref)
	if _, ok := vm.RefAge(ref); ok {
		t.Fatal("RefAge reported a deleted ref")
	}
}

func TestStatistics(t *testing.T) {
	vm, _ := newTestVM(t, Config{})
	var refs []IndirectRef
	for i := 0; i < 10; i++ {
		r, _ := vm.AddGlobalRef(obj(uint64(i)))
		refs = append(refs, r)
	}
	for _, r := range refs[:4] {
		vm.DeleteGlobalRef(r)
	}
	if got := vm.TotalGlobalAdds(); got != 10 {
		t.Errorf("TotalGlobalAdds = %d, want 10", got)
	}
	if got := vm.TotalGlobalRemoves(); got != 4 {
		t.Errorf("TotalGlobalRemoves = %d, want 4", got)
	}
	if got := vm.PeakGlobalRefCount(); got != 10 {
		t.Errorf("PeakGlobalRefCount = %d, want 10", got)
	}
	if got := vm.GlobalRefCount(); got != 6 {
		t.Errorf("GlobalRefCount = %d, want 6", got)
	}
}

// Property: for any interleaving of adds and deletes that stays within the
// cap, count == adds - removes, and the table never exceeds its cap.
func TestQuickConservation(t *testing.T) {
	f := func(ops []bool) bool {
		clock := simclock.New()
		vm := NewVM("p", clock, Config{MaxGlobalRefs: 64})
		var live []IndirectRef
		adds, removes := 0, 0
		for i, isAdd := range ops {
			if isAdd && len(live) < 64 {
				r, err := vm.AddGlobalRef(obj(uint64(i)))
				if err != nil {
					return false
				}
				live = append(live, r)
				adds++
			} else if len(live) > 0 {
				r := live[len(live)-1]
				live = live[:len(live)-1]
				if err := vm.DeleteGlobalRef(r); err != nil {
					return false
				}
				removes++
			}
			if vm.GlobalRefCount() != adds-removes {
				return false
			}
			if vm.GlobalRefCount() > 64 {
				return false
			}
		}
		return !vm.Aborted()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestRefKindString(t *testing.T) {
	cases := map[RefKind]string{
		KindLocal:      "local",
		KindGlobal:     "global",
		KindWeakGlobal: "weak-global",
		RefKind(9):     "RefKind(9)",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(k), got, want)
		}
	}
}

func BenchmarkAddDeleteGlobalRef(b *testing.B) {
	clock := simclock.New()
	vm := NewVM("bench", clock, Config{})
	o := obj(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := vm.AddGlobalRef(o)
		if err != nil {
			b.Fatal(err)
		}
		if err := vm.DeleteGlobalRef(r); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAddGlobalRefWithHook(b *testing.B) {
	clock := simclock.New()
	vm := NewVM("bench", clock, Config{})
	var sink int
	vm.AddJGRHook(func(ev JGREvent) { sink = ev.Count })
	o := obj(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := vm.AddGlobalRef(o)
		if err != nil {
			b.Fatal(err)
		}
		vm.DeleteGlobalRef(r)
	}
	_ = sink
}
