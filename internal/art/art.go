// Package art simulates the Android Runtime's JNI reference machinery: the
// per-process indirect reference tables for local, global and weak-global
// references, the hard 51,200-entry cap on JNI global references (JGR), and
// the runtime abort that a table overflow triggers.
//
// This is the substrate of the paper's attack: every Android process runs
// its own runtime with its own JGR table, and when a victim process is made
// to exceed MaxGlobalRefs entries, its runtime aborts
// (art/runtime/java_vm_ext.cc in AOSP 6.0.1). Because most system services
// run as threads of system_server and share a single table, one vulnerable
// IPC interface can take down the whole system (paper §II-A).
package art

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/simclock"
	"repro/internal/trace"
)

// MaxGlobalRefs is the hard upper bound on JNI global references per
// runtime, matching the constant hard-coded in AOSP 6.0.1's
// art/runtime/java_vm_ext.cc (paper §I, §II-A).
const MaxGlobalRefs = 51200

// DefaultMaxWeakGlobalRefs mirrors ART's weak-global table capacity.
const DefaultMaxWeakGlobalRefs = 51200

// DefaultGCTrigger is how many collectable global references may pile up
// before the runtime garbage-collects on its own, approximating ART's
// heap-pressure-driven GC. Without it, unretained binder proxies would
// accumulate between explicit GC cycles forever.
const DefaultGCTrigger = 512

// DefaultMaxLocalRefs is the per-frame local reference budget. ART's local
// table is growable, but well-behaved native code stays within 512 entries
// per JNI frame; we enforce that to catch simulator bugs.
const DefaultMaxLocalRefs = 8192

// RefKind distinguishes the three JNI indirect reference kinds.
type RefKind int

// Reference kinds. Values start at one so the zero value is invalid
// (an uninitialized RefKind is a bug, not a local reference).
const (
	KindLocal RefKind = iota + 1
	KindGlobal
	KindWeakGlobal
)

// String returns the JNI name of the kind.
func (k RefKind) String() string {
	switch k {
	case KindLocal:
		return "local"
	case KindGlobal:
		return "global"
	case KindWeakGlobal:
		return "weak-global"
	default:
		return fmt.Sprintf("RefKind(%d)", int(k))
	}
}

// ObjectID uniquely identifies a simulated Java object within a device.
type ObjectID uint64

// Object is a simulated Java heap object. Objects are created by the
// binder layer (binder proxies, listener records) and by services.
type Object struct {
	ID    ObjectID
	Class string
}

// IndirectRef is an opaque handle into one of a runtime's reference
// tables, as returned to "native code". The top bits encode the kind so
// that a ref can never be deleted from the wrong table.
type IndirectRef uint64

const refKindShift = 62

// Kind extracts the table kind encoded in the reference.
func (r IndirectRef) Kind() RefKind { return RefKind(r >> refKindShift) }

func makeRef(kind RefKind, serial uint64) IndirectRef {
	return IndirectRef(uint64(kind)<<refKindShift | serial)
}

// RefOp is the operation recorded in a JGREvent.
type RefOp int

// Operations observable through JGR hooks.
const (
	OpAdd RefOp = iota + 1
	OpRemove
)

// String returns "add" or "remove".
func (op RefOp) String() string {
	switch op {
	case OpAdd:
		return "add"
	case OpRemove:
		return "remove"
	default:
		return fmt.Sprintf("RefOp(%d)", int(op))
	}
}

// JGREvent describes one mutation of the global reference table. The
// defense's runtime extension (paper §V-B) consumes these events.
type JGREvent struct {
	Time  time.Duration // virtual time of the operation
	Op    RefOp
	Ref   IndirectRef
	Obj   ObjectID
	Count int // table size immediately after the operation
}

// JGRHook observes global reference table mutations.
type JGRHook func(JGREvent)

// ErrRuntimeAborted is returned by table operations after the runtime has
// aborted.
var ErrRuntimeAborted = errors.New("art: runtime has aborted")

// OverflowError reports an indirect reference table overflow; for the
// global table this is the JGRE condition itself.
type OverflowError struct {
	Process string
	Kind    RefKind
	Max     int
}

func (e *OverflowError) Error() string {
	return fmt.Sprintf("art: %s reference table overflow in %q (max=%d)", e.Kind, e.Process, e.Max)
}

// StaleRefError reports a delete of a reference that is not in the table.
type StaleRefError struct {
	Ref IndirectRef
}

func (e *StaleRefError) Error() string {
	return fmt.Sprintf("art: use of stale or foreign %s reference %#x", e.Ref.Kind(), uint64(e.Ref))
}

// refEntry is one slot of an indirect reference table.
type refEntry struct {
	obj     ObjectID
	addedAt time.Duration
	// collectable marks an entry whose referent became unreachable from
	// managed code; the next GC cycle frees the entry. This models
	// references dropped by garbage collection rather than by an explicit
	// DeleteGlobalRef (sift rules 2 and 3, paper §III-C3).
	collectable bool
}

// table is a single indirect reference table. Entries are stored by
// value: a refEntry is three words, so the map holds the slots inline the
// way ART's IRT segment array does, instead of one heap allocation per
// reference.
type table struct {
	kind    RefKind
	max     int
	serial  uint64
	entries map[IndirectRef]refEntry
	// shared marks the entry map as copy-on-write: it is owned by a
	// snapshot template and referenced read-only by any number of clones.
	// Every mutation path unshares first, so a clone pays for its private
	// copy only if (and when) it actually touches the table — the
	// system_server boot table is ~1,500 entries most shards never mutate.
	shared bool

	// Rewind support for recycled device slots. A recycled VM is rewound
	// to its template over and over; re-sharing the template map on every
	// rewind would make each trial's first mutation pay a fresh full COW
	// copy. Instead, when a table is armed (rewindArm set by resetFrom),
	// the next unshare starts logging every mutation's pre-image, and the
	// following resetFrom undoes the log in O(mutations) — keeping the
	// private map, already equal to the template, for the next trial.
	//
	// rewindArm is set on a shared table: the base to start logging
	// against at unshare time. rewindBase marks an owned map as "base +
	// rewindLog". rewindOff records a log overflow (a trial that mutated
	// more than half the base table — an exhaustion attack, say): the
	// next resetFrom falls back to plain re-sharing.
	rewindArm  *table
	rewindBase *table
	rewindLog  []rewindOp
	rewindOff  bool
}

// rewindOp is one undoable table mutation: the entry's pre-image (or its
// absence) at the mutated reference.
type rewindOp struct {
	ref  IndirectRef
	prev refEntry
	had  bool
}

// rewindCap bounds the mutation log: past half the base table, undoing
// stops being cheaper than the COW copy the log exists to avoid.
func rewindCap(base int) int {
	if c := base / 2; c > 64 {
		return c
	}
	return 64
}

func newTable(kind RefKind, max int) *table {
	return &table{kind: kind, max: max, entries: make(map[IndirectRef]refEntry)}
}

// unshare materializes a private copy of a COW-shared entry map. On an
// armed table the copy doubles as the rewind baseline: mutation logging
// starts here.
func (t *table) unshare() {
	if !t.shared {
		return
	}
	entries := make(map[IndirectRef]refEntry, len(t.entries))
	for k, v := range t.entries {
		entries[k] = v
	}
	t.entries = entries
	t.shared = false
	if t.rewindArm != nil {
		t.rewindBase = t.rewindArm
		t.rewindArm = nil
		t.rewindOff = false
		t.rewindLog = t.rewindLog[:0]
	}
}

// touch records ref's pre-mutation state into the rewind log. Callers
// invoke it after unshare and before the mutation itself. Once the log
// overflows its cap the table stops logging and the next resetFrom falls
// back to re-sharing.
func (t *table) touch(ref IndirectRef) {
	if t.rewindBase == nil || t.rewindOff {
		return
	}
	if len(t.rewindLog) >= rewindCap(len(t.rewindBase.entries)) {
		t.rewindOff = true
		return
	}
	prev, had := t.entries[ref]
	t.rewindLog = append(t.rewindLog, rewindOp{ref: ref, prev: prev, had: had})
}

// resetFrom rewinds t to the frozen base table. When the owned map's
// deviation from base is covered by the mutation log, the log is undone
// in place (newest first) and the map is kept; otherwise t re-shares
// base's map copy-on-write and arms logging for the next unshare.
func (t *table) resetFrom(base *table) {
	if t.rewindBase == base && !t.rewindOff && !t.shared {
		for i := len(t.rewindLog) - 1; i >= 0; i-- {
			op := t.rewindLog[i]
			if op.had {
				t.entries[op.ref] = op.prev
			} else {
				delete(t.entries, op.ref)
			}
		}
		t.rewindLog = t.rewindLog[:0]
		t.kind = base.kind
		t.max = base.max
		t.serial = base.serial
		return
	}
	*t = table{kind: base.kind, max: base.max, serial: base.serial,
		entries: base.entries, shared: true,
		rewindArm: base, rewindLog: t.rewindLog[:0]}
}

// Config parameterizes a VM. The zero value selects the AOSP 6.0.1
// defaults for every field.
type Config struct {
	// MaxGlobalRefs overrides the global table capacity; 0 means
	// MaxGlobalRefs (51,200). Tests use small caps to exercise overflow
	// quickly.
	MaxGlobalRefs int
	// MaxWeakGlobalRefs overrides the weak-global capacity; 0 means
	// DefaultMaxWeakGlobalRefs.
	MaxWeakGlobalRefs int
	// GCTrigger overrides the collectable-entry count that starts an
	// automatic GC cycle; 0 means DefaultGCTrigger, negative disables
	// automatic collection (tests that count entries exactly).
	GCTrigger int
	// OnAbort, if non-nil, is invoked exactly once when the runtime
	// aborts, with a human-readable reason. The kernel layer uses this to
	// reap the owning process (and soft-reboot if it is system_server).
	OnAbort func(reason string)
}

// VM is one process's Android runtime. Each simulated process owns exactly
// one VM (paper §II-A: "each process has its own dedicated Android runtime
// along with individual runtime resource management").
//
// VM is not safe for concurrent use; the simulation core is
// single-threaded for determinism.
type VM struct {
	process string
	clock   *simclock.Clock

	globals *table
	weaks   *table
	frames  []*table // local reference frame stack
	// framePool recycles popped local frames (their cleared entry maps
	// keep their buckets), so the push/pop around every transaction stops
	// allocating once the frame stack has reached its working depth.
	framePool []*table

	hooks         []JGRHook
	collectable   int
	gcTrigger     int
	aborted       bool
	abortedReason string
	onAbort       func(reason string)

	// rec is the device's flight recorder (nil = tracing off). Unlike
	// JGR hooks — which are append-only and must stay inert through
	// defender dead-flags — the recorder slot is settable, so the device
	// layer re-points it across clones and slot recycles. recPid labels
	// the emitted spans with the owning process.
	rec    *trace.Recorder
	recPid int32

	// statistics
	totalGlobalAdds    uint64
	totalGlobalRemoves uint64
	peakGlobals        int
	gcCycles           uint64
	framePushes        uint64
	framePoolHits      uint64
}

// NewVM creates the runtime for the named process. clock must not be nil.
func NewVM(process string, clock *simclock.Clock, cfg Config) *VM {
	if clock == nil {
		panic("art: NewVM requires a clock")
	}
	maxG := cfg.MaxGlobalRefs
	if maxG == 0 {
		maxG = MaxGlobalRefs
	}
	maxW := cfg.MaxWeakGlobalRefs
	if maxW == 0 {
		maxW = DefaultMaxWeakGlobalRefs
	}
	trigger := cfg.GCTrigger
	if trigger == 0 {
		trigger = DefaultGCTrigger
	}
	vm := &VM{
		process:   process,
		clock:     clock,
		globals:   newTable(KindGlobal, maxG),
		weaks:     newTable(KindWeakGlobal, maxW),
		gcTrigger: trigger,
		onAbort:   cfg.OnAbort,
	}
	vm.frames = []*table{newTable(KindLocal, DefaultMaxLocalRefs)}
	return vm
}

// Process returns the owning process name.
func (vm *VM) Process() string { return vm.process }

// Aborted reports whether the runtime has aborted.
func (vm *VM) Aborted() bool { return vm.aborted }

// AbortReason returns the abort reason, or "" if the runtime is alive.
func (vm *VM) AbortReason() string { return vm.abortedReason }

// MaxGlobal returns the global table capacity.
func (vm *VM) MaxGlobal() int { return vm.globals.max }

// GlobalRefCount returns the current number of JGR entries.
func (vm *VM) GlobalRefCount() int { return len(vm.globals.entries) }

// WeakGlobalRefCount returns the current number of weak-global entries.
func (vm *VM) WeakGlobalRefCount() int { return len(vm.weaks.entries) }

// LocalRefCount returns the number of local references in the current frame.
func (vm *VM) LocalRefCount() int { return len(vm.frames[len(vm.frames)-1].entries) }

// PeakGlobalRefCount returns the historical maximum JGR table size.
func (vm *VM) PeakGlobalRefCount() int { return vm.peakGlobals }

// TotalGlobalAdds returns the cumulative number of AddGlobalRef calls that
// succeeded.
func (vm *VM) TotalGlobalAdds() uint64 { return vm.totalGlobalAdds }

// TotalGlobalRemoves returns the cumulative number of removed JGR entries
// (explicit deletes plus GC collections).
func (vm *VM) TotalGlobalRemoves() uint64 { return vm.totalGlobalRemoves }

// GCCycles returns how many GC cycles have run.
func (vm *VM) GCCycles() uint64 { return vm.gcCycles }

// FramePushes returns the cumulative number of JNI local frames entered —
// one per dispatched transaction, so it doubles as this runtime's
// inbound-call count and is the "local-frame churn" series telemetry
// exposes.
func (vm *VM) FramePushes() uint64 { return vm.framePushes }

// FramePoolHits returns how many frame pushes were served from the
// recycled-frame pool rather than allocating a fresh table.
func (vm *VM) FramePoolHits() uint64 { return vm.framePoolHits }

// AddJGRHook registers a hook observing global-table mutations. Hooks run
// synchronously in table-operation order. This is the attachment point of
// the defense's extended runtime (paper §V-B).
func (vm *VM) AddJGRHook(h JGRHook) {
	vm.hooks = append(vm.hooks, h)
}

// SetTraceRecorder installs (or, with nil, removes) the flight recorder
// global-table mutations are mirrored into as point spans, labelled with
// the owning process's pid. The recorder inherits whatever causal
// context the binder driver set, which is how a JGR add is attributed to
// the transaction that caused it.
func (vm *VM) SetTraceRecorder(r *trace.Recorder, pid int32) {
	vm.rec = r
	vm.recPid = pid
}

func (vm *VM) emit(op RefOp, ref IndirectRef, obj ObjectID) {
	if vm.rec.Enabled() {
		vm.rec.EmitJGR(op == OpAdd, vm.clock.Now(), vm.recPid, len(vm.globals.entries))
	}
	if len(vm.hooks) == 0 {
		return
	}
	ev := JGREvent{
		Time:  vm.clock.Now(),
		Op:    op,
		Ref:   ref,
		Obj:   obj,
		Count: len(vm.globals.entries),
	}
	for _, h := range vm.hooks {
		h(ev)
	}
}

// AddGlobalRef takes a JNI global reference on obj. If the table is full
// the runtime aborts — this is the JGRE condition — and the overflow error
// is returned. obj must not be nil.
func (vm *VM) AddGlobalRef(obj *Object) (IndirectRef, error) {
	if obj == nil {
		panic("art: AddGlobalRef(nil)")
	}
	if vm.aborted {
		return 0, ErrRuntimeAborted
	}
	if len(vm.globals.entries) >= vm.globals.max {
		err := &OverflowError{Process: vm.process, Kind: KindGlobal, Max: vm.globals.max}
		vm.abort(err.Error())
		return 0, err
	}
	vm.globals.unshare()
	vm.globals.serial++
	ref := makeRef(KindGlobal, vm.globals.serial)
	vm.globals.touch(ref)
	vm.globals.entries[ref] = refEntry{obj: obj.ID, addedAt: vm.clock.Now()}
	vm.totalGlobalAdds++
	if n := len(vm.globals.entries); n > vm.peakGlobals {
		vm.peakGlobals = n
	}
	vm.emit(OpAdd, ref, obj.ID)
	return ref, nil
}

// DeleteGlobalRef releases a global reference. Deleting a stale reference
// returns a StaleRefError (CheckJNI would abort; we surface the error so
// the simulator's own bugs are loud but recoverable in tests).
func (vm *VM) DeleteGlobalRef(ref IndirectRef) error {
	if vm.aborted {
		return ErrRuntimeAborted
	}
	if ref.Kind() != KindGlobal {
		return &StaleRefError{Ref: ref}
	}
	e, ok := vm.globals.entries[ref]
	if !ok {
		return &StaleRefError{Ref: ref}
	}
	vm.globals.unshare()
	vm.globals.touch(ref)
	delete(vm.globals.entries, ref)
	vm.totalGlobalRemoves++
	vm.emit(OpRemove, ref, e.obj)
	return nil
}

// MarkCollectable flags a global reference whose referent is no longer
// reachable from managed code, so the next GC cycle will free it. This
// models the paper's "innocent" IPC patterns (sift rules 2 and 3, §III-C3)
// where the Binder object is collected by the garbage collector after the
// IPC method ends, as opposed to vulnerable patterns where the service
// retains the object indefinitely.
func (vm *VM) MarkCollectable(ref IndirectRef) error {
	if vm.aborted {
		return ErrRuntimeAborted
	}
	e, ok := vm.globals.entries[ref]
	if !ok {
		return &StaleRefError{Ref: ref}
	}
	vm.globals.unshare()
	vm.globals.touch(ref)
	e.collectable = true
	vm.globals.entries[ref] = e
	vm.collectable++
	if vm.gcTrigger > 0 && vm.collectable >= vm.gcTrigger {
		vm.GC()
	}
	return nil
}

// GC runs one garbage collection cycle, freeing every collectable global
// reference, and returns how many entries were freed. The dynamic JGRE
// verifier triggers GC periodically (paper §III-D uses DDMS for this).
func (vm *VM) GC() int {
	if vm.aborted {
		return 0
	}
	vm.gcCycles++
	vm.collectable = 0
	freed := 0
	// Unshare before the delete-while-ranging loop: deleting from a map
	// that clones still read would corrupt them mid-iteration.
	vm.globals.unshare()
	for ref, e := range vm.globals.entries {
		if !e.collectable {
			continue
		}
		vm.globals.touch(ref)
		delete(vm.globals.entries, ref)
		vm.totalGlobalRemoves++
		freed++
		vm.emit(OpRemove, ref, e.obj)
	}
	return freed
}

// AddLocalRef takes a local reference in the current JNI frame.
func (vm *VM) AddLocalRef(obj *Object) (IndirectRef, error) {
	if obj == nil {
		panic("art: AddLocalRef(nil)")
	}
	if vm.aborted {
		return 0, ErrRuntimeAborted
	}
	fr := vm.frames[len(vm.frames)-1]
	if len(fr.entries) >= fr.max {
		err := &OverflowError{Process: vm.process, Kind: KindLocal, Max: fr.max}
		vm.abort(err.Error())
		return 0, err
	}
	fr.serial++
	ref := makeRef(KindLocal, fr.serial)
	fr.entries[ref] = refEntry{obj: obj.ID, addedAt: vm.clock.Now()}
	return ref, nil
}

// PushLocalFrame enters a new native method frame. Local references taken
// afterwards are freed en masse by the matching PopLocalFrame, which is
// exactly why local references cannot be exhausted across calls (paper
// §II-A: "JNI local references ... are automatically freed after the
// native method returns").
func (vm *VM) PushLocalFrame() {
	vm.framePushes++
	if n := len(vm.framePool); n > 0 {
		vm.framePoolHits++
		fr := vm.framePool[n-1]
		vm.framePool[n-1] = nil
		vm.framePool = vm.framePool[:n-1]
		vm.frames = append(vm.frames, fr)
		return
	}
	vm.frames = append(vm.frames, newTable(KindLocal, DefaultMaxLocalRefs))
}

// PopLocalFrame leaves the current native frame, freeing all its local
// references, and returns how many were freed. Popping the root frame
// panics: it indicates an unbalanced push/pop in the simulator.
func (vm *VM) PopLocalFrame() int {
	if len(vm.frames) == 1 {
		panic("art: PopLocalFrame on root frame")
	}
	top := vm.frames[len(vm.frames)-1]
	vm.frames[len(vm.frames)-1] = nil
	vm.frames = vm.frames[:len(vm.frames)-1]
	n := len(top.entries)
	clear(top.entries)
	vm.framePool = append(vm.framePool, top)
	return n
}

// AddWeakGlobalRef takes a weak global reference on obj.
func (vm *VM) AddWeakGlobalRef(obj *Object) (IndirectRef, error) {
	if obj == nil {
		panic("art: AddWeakGlobalRef(nil)")
	}
	if vm.aborted {
		return 0, ErrRuntimeAborted
	}
	if len(vm.weaks.entries) >= vm.weaks.max {
		err := &OverflowError{Process: vm.process, Kind: KindWeakGlobal, Max: vm.weaks.max}
		vm.abort(err.Error())
		return 0, err
	}
	vm.weaks.unshare()
	vm.weaks.serial++
	ref := makeRef(KindWeakGlobal, vm.weaks.serial)
	vm.weaks.touch(ref)
	vm.weaks.entries[ref] = refEntry{obj: obj.ID, addedAt: vm.clock.Now()}
	return ref, nil
}

// DeleteWeakGlobalRef releases a weak global reference.
func (vm *VM) DeleteWeakGlobalRef(ref IndirectRef) error {
	if vm.aborted {
		return ErrRuntimeAborted
	}
	if ref.Kind() != KindWeakGlobal {
		return &StaleRefError{Ref: ref}
	}
	if _, ok := vm.weaks.entries[ref]; !ok {
		return &StaleRefError{Ref: ref}
	}
	vm.weaks.unshare()
	vm.weaks.touch(ref)
	delete(vm.weaks.entries, ref)
	return nil
}

// RefAge returns how long ago the given global reference was created.
func (vm *VM) RefAge(ref IndirectRef) (time.Duration, bool) {
	e, ok := vm.globals.entries[ref]
	if !ok {
		return 0, false
	}
	return vm.clock.Now() - e.addedAt, true
}

// Clone creates a copy of the runtime for a snapshot clone of its
// device. The global and weak tables share their entry maps with the
// receiver copy-on-write: both sides are marked shared, and whichever
// mutates first materializes its own copy. The clone gets a fresh root
// local frame (the template's is empty at snapshot), no hooks (the
// clone's binder layer re-installs its own), and the supplied clock and
// abort callback. Statistics carry over.
// Freeze marks the VM's reference tables copy-on-write shared. A
// snapshot template calls this once, single-threaded, so that later
// concurrent Clone calls only read the shared flags and never write
// template state.
func (vm *VM) Freeze() {
	vm.globals.shared = true
	vm.weaks.shared = true
}

func (vm *VM) Clone(clock *simclock.Clock, onAbort func(reason string)) *VM {
	if clock == nil {
		panic("art: Clone requires a clock")
	}
	// Mark the template tables shared (skipping the write when Freeze
	// already did it, so concurrent Clones of a frozen VM never race).
	if !vm.globals.shared {
		vm.globals.shared = true
	}
	if !vm.weaks.shared {
		vm.weaks.shared = true
	}
	nv := &VM{
		process: vm.process,
		clock:   clock,
		globals: &table{kind: KindGlobal, max: vm.globals.max, serial: vm.globals.serial,
			entries: vm.globals.entries, shared: true},
		weaks: &table{kind: KindWeakGlobal, max: vm.weaks.max, serial: vm.weaks.serial,
			entries: vm.weaks.entries, shared: true},
		collectable:        vm.collectable,
		gcTrigger:          vm.gcTrigger,
		aborted:            vm.aborted,
		abortedReason:      vm.abortedReason,
		onAbort:            onAbort,
		totalGlobalAdds:    vm.totalGlobalAdds,
		totalGlobalRemoves: vm.totalGlobalRemoves,
		peakGlobals:        vm.peakGlobals,
		gcCycles:           vm.gcCycles,
	}
	nv.frames = []*table{newTable(KindLocal, DefaultMaxLocalRefs)}
	return nv
}

// ResetFromTemplate rewinds vm in place to the state Clone(tmpl) would
// return — fresh copy-on-write views of the frozen template's tables —
// reusing the table structs, frame stack, frame pool and local-frame map
// storage. The abort hook is preserved: it was bound to this VM's owning
// process at materialization, and a recycled process keeps its identity.
// The caller must guarantee nothing references the VM's retired state.
func (vm *VM) ResetFromTemplate(tmpl *VM, clock *simclock.Clock) {
	if clock == nil {
		panic("art: ResetFromTemplate requires a clock")
	}
	if !tmpl.globals.shared || !tmpl.weaks.shared {
		panic("art: ResetFromTemplate of an unfrozen template")
	}
	g, w := vm.globals, vm.weaks
	g.resetFrom(tmpl.globals)
	w.resetFrom(tmpl.weaks)
	var local *table
	if len(vm.frames) > 0 {
		local = vm.frames[0]
		ents := local.entries
		clear(ents)
		*local = table{kind: KindLocal, max: DefaultMaxLocalRefs, entries: ents}
	} else {
		local = newTable(KindLocal, DefaultMaxLocalRefs)
	}
	frames := append(vm.frames[:0], local)
	onAbort := vm.onAbort
	framePool := vm.framePool[:0]
	*vm = VM{
		process:            tmpl.process,
		clock:              clock,
		globals:            g,
		weaks:              w,
		frames:             frames,
		framePool:          framePool,
		collectable:        tmpl.collectable,
		gcTrigger:          tmpl.gcTrigger,
		aborted:            tmpl.aborted,
		abortedReason:      tmpl.abortedReason,
		onAbort:            onAbort,
		totalGlobalAdds:    tmpl.totalGlobalAdds,
		totalGlobalRemoves: tmpl.totalGlobalRemoves,
		peakGlobals:        tmpl.peakGlobals,
		gcCycles:           tmpl.gcCycles,
	}
}

// abort marks the runtime dead and fires the abort callback once.
func (vm *VM) abort(reason string) {
	if vm.aborted {
		return
	}
	vm.aborted = true
	vm.abortedReason = reason
	if vm.onAbort != nil {
		vm.onAbort(reason)
	}
}
