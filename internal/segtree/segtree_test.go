package segtree

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewInvalidSizePanics(t *testing.T) {
	for _, n := range []int{0, -1, -100} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d) did not panic", n)
				}
			}()
			New(n)
		}()
	}
}

func TestSinglePoint(t *testing.T) {
	tr := New(1)
	if got := tr.GlobalMax(); got != 0 {
		t.Fatalf("fresh GlobalMax = %d, want 0", got)
	}
	tr.Add(0, 0, 7)
	tr.Add(0, 0, -2)
	if got := tr.Get(0); got != 5 {
		t.Fatalf("Get(0) = %d, want 5", got)
	}
}

func TestRangeAddAndMax(t *testing.T) {
	tr := New(10)
	tr.Add(2, 6, 3)
	tr.Add(4, 9, 2)

	wants := []int64{0, 0, 3, 3, 5, 5, 5, 2, 2, 2}
	for i, want := range wants {
		if got := tr.Get(i); got != want {
			t.Errorf("Get(%d) = %d, want %d", i, got, want)
		}
	}
	if got := tr.Max(0, 3); got != 3 {
		t.Errorf("Max(0,3) = %d, want 3", got)
	}
	if got := tr.Max(7, 9); got != 2 {
		t.Errorf("Max(7,9) = %d, want 2", got)
	}
	if got := tr.GlobalMax(); got != 5 {
		t.Errorf("GlobalMax = %d, want 5", got)
	}
}

func TestClamping(t *testing.T) {
	tr := New(5)
	tr.Add(-10, 2, 1) // clamps to [0,2]
	tr.Add(3, 100, 4) // clamps to [3,4]
	tr.Add(50, 60, 9) // entirely out of domain: no-op
	wants := []int64{1, 1, 1, 4, 4}
	for i, want := range wants {
		if got := tr.Get(i); got != want {
			t.Errorf("Get(%d) = %d, want %d", i, got, want)
		}
	}
}

func TestArgMaxSmallestPosition(t *testing.T) {
	tr := New(8)
	tr.Add(1, 3, 5)
	tr.Add(5, 6, 5)
	pos, max := tr.ArgMax()
	if max != 5 {
		t.Fatalf("ArgMax max = %d, want 5", max)
	}
	if pos != 1 {
		t.Fatalf("ArgMax pos = %d, want 1 (smallest winner)", pos)
	}
}

func TestNegativeValues(t *testing.T) {
	tr := New(4)
	tr.Add(0, 3, -5)
	tr.Add(2, 2, 10)
	if got := tr.GlobalMax(); got != 5 {
		t.Fatalf("GlobalMax = %d, want 5", got)
	}
	pos, _ := tr.ArgMax()
	if pos != 2 {
		t.Fatalf("ArgMax pos = %d, want 2", pos)
	}
}

// naive is an array-based oracle implementing the same operations.
type naive []int64

func (a naive) add(lo, hi int, v int64) {
	for i := max(lo, 0); i <= hi && i < len(a); i++ {
		a[i] += v
	}
}

func (a naive) max(lo, hi int) int64 {
	lo, hi = max(lo, 0), min(hi, len(a)-1)
	m := a[lo]
	for i := lo + 1; i <= hi; i++ {
		if a[i] > m {
			m = a[i]
		}
	}
	return m
}

func TestAgainstNaiveOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	const n = 257 // deliberately not a power of two
	tr := New(n)
	oracle := make(naive, n)

	for step := 0; step < 5000; step++ {
		lo, hi := rng.Intn(n), rng.Intn(n)
		if lo > hi {
			lo, hi = hi, lo
		}
		switch rng.Intn(3) {
		case 0:
			v := int64(rng.Intn(41) - 20)
			tr.Add(lo, hi, v)
			oracle.add(lo, hi, v)
		case 1:
			if got, want := tr.Max(lo, hi), oracle.max(lo, hi); got != want {
				t.Fatalf("step %d: Max(%d,%d) = %d, oracle %d", step, lo, hi, got, want)
			}
		case 2:
			i := rng.Intn(n)
			if got, want := tr.Get(i), oracle[i]; got != want {
				t.Fatalf("step %d: Get(%d) = %d, oracle %d", step, i, got, want)
			}
		}
	}
	// Final full sweep.
	for i := 0; i < n; i++ {
		if got, want := tr.Get(i), oracle[i]; got != want {
			t.Fatalf("final: Get(%d) = %d, oracle %d", i, got, want)
		}
	}
	pos, m := tr.ArgMax()
	if want := oracle.max(0, n-1); m != want {
		t.Fatalf("ArgMax max = %d, oracle %d", m, want)
	}
	if oracle[pos] != m {
		t.Fatalf("ArgMax pos %d holds %d, want %d", pos, oracle[pos], m)
	}
}

// TestQuickRangeAddMax property: after a batch of adds, GlobalMax equals the
// oracle's max, for arbitrary small batches.
func TestQuickRangeAddMax(t *testing.T) {
	type op struct {
		Lo, Hi uint8
		V      int16
	}
	f := func(ops []op) bool {
		const n = 256
		tr := New(n)
		oracle := make(naive, n)
		for _, o := range ops {
			lo, hi := int(o.Lo), int(o.Hi)
			if lo > hi {
				lo, hi = hi, lo
			}
			tr.Add(lo, hi, int64(o.V))
			oracle.add(lo, hi, int64(o.V))
		}
		return tr.GlobalMax() == oracle.max(0, n-1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkRangeAdd(b *testing.B) {
	tr := New(1 << 20)
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lo := rng.Intn(1 << 20)
		tr.Add(lo, lo+1000, 1)
	}
}

func BenchmarkGlobalMax(b *testing.B) {
	tr := New(1 << 20)
	for i := 0; i < 10000; i++ {
		tr.Add(i*7%(1<<20), i*7%(1<<20)+500, 1)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.GlobalMax()
	}
}

// BenchmarkAlgorithm1ShapeSegtree measures the range-add/global-max
// workload Algorithm 1 issues (≈10k candidate-delay intervals of Δ width
// over a 2,500-bucket domain) on the segment tree...
func BenchmarkAlgorithm1ShapeSegtree(b *testing.B) {
	const domain, intervals, width = 2502, 10000, 18
	rng := rand.New(rand.NewSource(9))
	starts := make([]int, intervals)
	for i := range starts {
		starts[i] = rng.Intn(domain - width)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr := New(domain)
		for _, s := range starts {
			tr.Add(s, s+width, 1)
		}
		if tr.GlobalMax() == 0 {
			b.Fatal("no max")
		}
	}
}

// ...and BenchmarkAlgorithm1ShapeNaive on a plain array — the ablation
// behind the paper's §V-D2 choice of a segment tree.
func BenchmarkAlgorithm1ShapeNaive(b *testing.B) {
	const domain, intervals, width = 2502, 10000, 18
	rng := rand.New(rand.NewSource(9))
	starts := make([]int, intervals)
	for i := range starts {
		starts[i] = rng.Intn(domain - width)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		arr := make(naive, domain)
		for _, s := range starts {
			arr.add(s, s+width, 1)
		}
		if arr.max(0, domain-1) == 0 {
			b.Fatal("no max")
		}
	}
}

// The fine-granularity variant: 1 µs delay buckets over a 250 ms window
// (250k-bucket domain) with Δ = 1,800-bucket intervals — the regime where
// the paper's segment tree beats the flat array decisively.
func BenchmarkAlgorithm1FineSegtree(b *testing.B) {
	const domain, intervals, width = 250000, 10000, 1800
	rng := rand.New(rand.NewSource(9))
	starts := make([]int, intervals)
	for i := range starts {
		starts[i] = rng.Intn(domain - width)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr := New(domain)
		for _, s := range starts {
			tr.Add(s, s+width, 1)
		}
		if tr.GlobalMax() == 0 {
			b.Fatal("no max")
		}
	}
}

func BenchmarkAlgorithm1FineNaive(b *testing.B) {
	const domain, intervals, width = 250000, 10000, 1800
	rng := rand.New(rand.NewSource(9))
	starts := make([]int, intervals)
	for i := range starts {
		starts[i] = rng.Intn(domain - width)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		arr := make(naive, domain)
		for _, s := range starts {
			arr.add(s, s+width, 1)
		}
		if arr.max(0, domain-1) == 0 {
			b.Fatal("no max")
		}
	}
}
