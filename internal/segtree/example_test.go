package segtree_test

import (
	"fmt"

	"repro/internal/segtree"
)

// Example accumulates candidate-delay intervals the way Algorithm 1 does
// and reads off the best-supported delay.
func Example() {
	// Delay axis: 10 buckets; three IPC calls whose candidate delays are
	// [2,4], [3,5] and [3,6].
	tr := segtree.New(10)
	tr.Add(2, 4, 1)
	tr.Add(3, 5, 1)
	tr.Add(3, 6, 1)
	pos, votes := tr.ArgMax()
	fmt.Printf("best delay bucket %d with %d supporting calls\n", pos, votes)
	// Output:
	// best delay bucket 3 with 3 supporting calls
}
