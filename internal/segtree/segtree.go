// Package segtree implements a lazy-propagation segment tree supporting
// range addition and range maximum queries over a fixed integer domain.
//
// The JGRE Defender's scoring algorithm (paper §V-A, Algorithm 1) must, for
// every (IPC call, JGR creation) pair, increment a whole interval of
// candidate delay values [JGRTime-IPCTime, JGRTime-IPCTime+Δ] and finally
// take the best-supported delay — i.e. the maximum bucket. A naive array
// makes each increment O(Δ); the paper reports using a segment tree
// (§V-D.2) to keep both the range update and the max query logarithmic.
//
// The live defender no longer scores through this tree: its streaming
// correlator (internal/defense, DESIGN.md §11) replaces the per-pair
// range-adds with a difference-array sweep that does the same
// accumulation in O(1) per pair. The tree remains the reference
// implementation of the paper's published data structure, and the
// defense package's differential fuzz pins the streaming scorer against
// it byte-for-byte.
package segtree

import "fmt"

// Tree is a segment tree over the domain [0, n) with range-add updates and
// range-max queries. It must be created with New.
type Tree struct {
	n    int
	max  []int64 // max over the node's segment, excluding pending adds above it
	lazy []int64 // pending add applying to the whole segment
}

// New returns a tree over the domain [0, n). All values start at zero.
// It panics if n <= 0.
func New(n int) *Tree {
	if n <= 0 {
		panic(fmt.Sprintf("segtree: domain size must be positive, got %d", n))
	}
	return &Tree{
		n:    n,
		max:  make([]int64, 4*n),
		lazy: make([]int64, 4*n),
	}
}

// Len returns the domain size n.
func (t *Tree) Len() int { return t.n }

// Reset returns the tree to the all-zero state of a freshly built tree
// over the same domain, without reallocating its node arrays. The
// defender's incremental correlator reuses one tree across interface
// types and polling windows; zeroing both the aggregate and the pending
// lazy adds is exactly equivalent to New(n), since every query path
// reads only those two arrays.
func (t *Tree) Reset() {
	clear(t.max)
	clear(t.lazy)
}

// Add adds v to every position in [lo, hi] (inclusive). Positions outside
// [0, n) are clamped; an empty interval after clamping is a no-op.
func (t *Tree) Add(lo, hi int, v int64) {
	if lo < 0 {
		lo = 0
	}
	if hi >= t.n {
		hi = t.n - 1
	}
	if lo > hi {
		return
	}
	t.add(1, 0, t.n-1, lo, hi, v)
}

// Max returns the maximum value over [lo, hi] (inclusive), clamped to the
// domain. It panics if the clamped interval is empty.
func (t *Tree) Max(lo, hi int) int64 {
	if lo < 0 {
		lo = 0
	}
	if hi >= t.n {
		hi = t.n - 1
	}
	if lo > hi {
		panic(fmt.Sprintf("segtree: Max over empty interval [%d, %d]", lo, hi))
	}
	return t.query(1, 0, t.n-1, lo, hi)
}

// GlobalMax returns the maximum value over the whole domain.
func (t *Tree) GlobalMax() int64 { return t.Max(0, t.n-1) }

// Get returns the value at position i.
func (t *Tree) Get(i int) int64 {
	if i < 0 || i >= t.n {
		panic(fmt.Sprintf("segtree: Get(%d) out of domain [0, %d)", i, t.n))
	}
	return t.query(1, 0, t.n-1, i, i)
}

// ArgMax returns the smallest position holding the global maximum, along
// with that maximum.
func (t *Tree) ArgMax() (pos int, max int64) {
	max = t.GlobalMax()
	node, lo, hi := 1, 0, t.n-1
	for lo < hi {
		mid := (lo + hi) / 2
		t.push(node)
		if t.max[2*node] >= t.max[2*node+1] {
			node, hi = 2*node, mid
		} else {
			node, lo = 2*node+1, mid+1
		}
	}
	return lo, max
}

func (t *Tree) add(node, lo, hi, qlo, qhi int, v int64) {
	if qlo <= lo && hi <= qhi {
		t.max[node] += v
		t.lazy[node] += v
		return
	}
	t.push(node)
	mid := (lo + hi) / 2
	if qlo <= mid {
		t.add(2*node, lo, mid, qlo, min(qhi, mid), v)
	}
	if qhi > mid {
		t.add(2*node+1, mid+1, hi, max(qlo, mid+1), qhi, v)
	}
	t.max[node] = maxi64(t.max[2*node], t.max[2*node+1])
}

func (t *Tree) query(node, lo, hi, qlo, qhi int) int64 {
	if qlo <= lo && hi <= qhi {
		return t.max[node]
	}
	t.push(node)
	mid := (lo + hi) / 2
	if qhi <= mid {
		return t.query(2*node, lo, mid, qlo, qhi)
	}
	if qlo > mid {
		return t.query(2*node+1, mid+1, hi, qlo, qhi)
	}
	return maxi64(
		t.query(2*node, lo, mid, qlo, mid),
		t.query(2*node+1, mid+1, hi, mid+1, qhi),
	)
}

// push propagates node's pending add to its children.
func (t *Tree) push(node int) {
	if l := t.lazy[node]; l != 0 {
		for _, ch := range [2]int{2 * node, 2*node + 1} {
			t.max[ch] += l
			t.lazy[ch] += l
		}
		t.lazy[node] = 0
	}
}

func maxi64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
