package corpus

import (
	"strings"
	"testing"

	"repro/internal/catalog"
	"repro/internal/code"
	"repro/internal/services"
)

func TestNativeFunnelExact(t *testing.T) {
	c := Generate(Options{})
	s := c.Program.SummarizeNativePaths(AddTarget)
	if s.TotalPaths != catalog.NativeAddPaths {
		t.Errorf("total paths = %d, want %d", s.TotalPaths, catalog.NativeAddPaths)
	}
	if s.InitOnlyPaths != catalog.NativeInitOnlyPaths {
		t.Errorf("init-only = %d, want %d", s.InitOnlyPaths, catalog.NativeInitOnlyPaths)
	}
}

func TestEveryJavaServiceModelled(t *testing.T) {
	c := Generate(Options{})
	for _, meta := range catalog.Services() {
		if meta.Native {
			continue
		}
		cls, ok := c.Program.Classes[meta.Class]
		if !ok {
			t.Errorf("service %s: class %s missing", meta.Name, meta.Class)
			continue
		}
		iface := InterfaceNameFor(meta.Name)
		if !c.Program.ImplementsTransitively(meta.Class, iface) {
			t.Errorf("service %s: class does not implement %s", meta.Name, iface)
		}
		// Every catalogued method plus the innocent set is present.
		names := make(map[string]bool)
		for _, m := range cls.Methods {
			names[m.Name] = true
		}
		for _, row := range catalog.InterfacesForService(meta.Name) {
			if !names[row.Method] {
				t.Errorf("%s: catalogued method %s not modelled", meta.Name, row.Method)
			}
			if !names[services.UnregisterPrefix+row.Method] {
				t.Errorf("%s: unregister pair for %s missing", meta.Name, row.Method)
			}
		}
		for _, in := range services.InnocentMethods {
			if !names[in.Name] {
				t.Errorf("%s: innocent method %s not modelled", meta.Name, in.Name)
			}
		}
	}
}

func TestMethodNamesMatchServiceEngine(t *testing.T) {
	// The corpus and the executable service engine must agree on method
	// names, or dynamic verification could not drive statically found
	// candidates.
	c := Generate(Options{})
	for _, meta := range catalog.Services() {
		if meta.Native {
			continue
		}
		engineNames := services.MethodNamesFor(catalog.InterfacesForService(meta.Name))
		cls := c.Program.Classes[meta.Class]
		modelled := make(map[string]bool)
		for _, m := range cls.Methods {
			modelled[m.Name] = true
		}
		for _, n := range engineNames {
			if !modelled[n] {
				t.Errorf("%s: engine method %s missing from corpus model", meta.Name, n)
			}
		}
	}
}

func TestRegistrationsCoverAllServices(t *testing.T) {
	c := Generate(Options{})
	registrar := c.Program.Method(code.MakeMethodID("com.android.server.SystemServer", "startOtherServices"))
	if registrar == nil {
		t.Fatal("SystemServer registrar missing")
	}
	registered := make(map[string]bool)
	for _, cs := range registrar.Calls {
		if cs.Callee == ServiceManagerAdd {
			registered[cs.StringArg] = true
		}
	}
	nativeRegs := 0
	for _, f := range c.Program.Natives {
		if f.RegistersService != "" {
			registered[f.RegistersService] = true
			nativeRegs++
		}
	}
	if len(registered) != 104 {
		t.Errorf("registered services = %d, want 104", len(registered))
	}
	if nativeRegs != 5 {
		t.Errorf("native registrations = %d, want 5", nativeRegs)
	}
}

func TestVulnerableRowsHaveCollectionSink(t *testing.T) {
	c := Generate(Options{})
	for _, row := range catalog.Interfaces() {
		meta, _ := catalog.ServiceByName(row.Service)
		m := c.Program.Method(code.MakeMethodID(meta.Class, row.Method))
		if m == nil {
			t.Fatalf("%s not modelled", row.FullName())
		}
		hasCollection := false
		for _, f := range m.Flows {
			if f.Sink == code.SinkCollection {
				hasCollection = true
			}
		}
		if !hasCollection {
			t.Errorf("%s: vulnerable row lacks a collection sink", row.FullName())
		}
		// List-typed scenarios must carry the manual annotation.
		for i, pt := range m.Params {
			if pt == code.ParamList && !c.Program.ListCarriesBinder[m.ID] {
				t.Errorf("%s: List param %d without manual annotation", row.FullName(), i)
			}
		}
	}
}

func TestPermissionMapMirrorsCatalog(t *testing.T) {
	c := Generate(Options{})
	for _, row := range catalog.Interfaces() {
		meta, _ := catalog.ServiceByName(row.Service)
		id := code.MakeMethodID(meta.Class, row.Method)
		got := c.Program.PermissionMap[id]
		if got != string(row.Permission) {
			t.Errorf("%s: permission map %q, catalog %q", row.FullName(), got, row.Permission)
		}
	}
}

func TestThirdPartyPopulation(t *testing.T) {
	c := Generate(Options{ThirdPartyApps: 1000})
	if len(c.ThirdPartyVulnerable) != 3 {
		t.Fatalf("planted vulnerable apps = %d, want 3", len(c.ThirdPartyVulnerable))
	}
	for _, cls := range c.ThirdPartyVulnerable {
		if _, ok := c.Program.Classes[cls]; !ok {
			t.Errorf("vulnerable class %s missing", cls)
		}
	}
	// The population is large and mostly inert.
	playApps := 0
	for name := range c.Program.Classes {
		if strings.HasPrefix(name, "com.play.app") {
			playApps++
		}
	}
	if playApps < 900 {
		t.Errorf("play population classes = %d, want ≈1000", playApps)
	}
}

func TestPrebuiltBaseClassInheritance(t *testing.T) {
	c := Generate(Options{})
	pico := c.Program.Classes["com.svox.pico.PicoService"]
	if pico == nil {
		t.Fatal("PicoService missing")
	}
	if pico.Super != "android.speech.tts.TextToSpeechService" {
		t.Fatalf("PicoService super = %s", pico.Super)
	}
	// PicoService has no own methods: the vulnerable setCallback is the
	// inherited default, exactly the paper's point (§IV-D).
	if len(pico.Methods) != 0 {
		t.Fatalf("PicoService defines %d methods, want 0 (inherits all)", len(pico.Methods))
	}
	base := c.Program.Classes["android.speech.tts.TextToSpeechService"]
	if base == nil || !base.Abstract || base.AsBinderReturns == "" {
		t.Fatal("TTS base class malformed")
	}
}

func TestDeterministicGeneration(t *testing.T) {
	a := Generate(Options{ThirdPartyApps: 50})
	b := Generate(Options{ThirdPartyApps: 50})
	if a.Program.MethodCount() != b.Program.MethodCount() {
		t.Fatal("generation not deterministic in method count")
	}
	if len(a.Program.Classes) != len(b.Program.Classes) {
		t.Fatal("generation not deterministic in class count")
	}
}

func TestInterfaceNameForEdgeCases(t *testing.T) {
	cases := map[string]string{
		"media.player":       "IMediaPlayer",
		"country_detector":   "ICountryDetector",
		"a":                  "IA",
		"network_management": "INetworkManagement",
	}
	for in, want := range cases {
		if got := InterfaceNameFor(in); got != want {
			t.Errorf("InterfaceNameFor(%q) = %q, want %q", in, got, want)
		}
	}
}
