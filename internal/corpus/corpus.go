// Package corpus synthesizes an AOSP-6.0.1-like program in the
// internal/code model: framework classes (Parcel, BinderProxy,
// RemoteCallbackList, Thread), the ART native layer with its 147 call
// paths into IndirectReferenceTable::Add (67 of them init-only), all 104
// system services with their AIDL interfaces and registrations, the
// prebuilt core apps of Table IV, and an optional 1,000-app third-party
// population for Table V.
//
// The catalog is the ground truth the corpus encodes; the analysis
// pipeline (internal/analysis) is validated by recovering that truth from
// the synthesized program without consulting the catalog.
package corpus

import (
	"fmt"
	"strings"

	"repro/internal/catalog"
	"repro/internal/code"
	"repro/internal/services"
)

// Well-known model names shared with the analysis package.
const (
	// AddTarget is the JGR table insertion routine every relevant native
	// path ends at (§III-B).
	AddTarget = "IndirectReferenceTable::Add"

	ServiceManagerAdd  = code.MethodID("android.os.ServiceManager#addService")
	PublishBinderSvc   = code.MethodID("com.android.server.SystemService#publishBinderService")
	HandlerSendMessage = code.MethodID("android.os.Handler#sendMessage")

	ParcelReadStrongBinder  = code.MethodID("android.os.Parcel#nativeReadStrongBinder")
	ParcelWriteStrongBinder = code.MethodID("android.os.Parcel#nativeWriteStrongBinder")
	ThreadNativeCreate      = code.MethodID("java.lang.Thread#nativeCreate")
	LinkToDeathNative       = code.MethodID("android.os.BinderProxy#linkToDeathNative")

	// SignatureDistractorPermission guards the planted risky-but-
	// unreachable methods the permission sifter must discard.
	SignatureDistractorPermission = "BIND_DEVICE_ADMIN"
)

// DistractorMethodsPerService is the number of plain (binder-free)
// methods each service exposes besides its catalogued and innocent ones,
// sized so the whole program offers the "thousands of IPC methods" the
// paper reports.
const DistractorMethodsPerService = 12

// Options selects corpus parts.
type Options struct {
	// ThirdPartyApps adds a Google-Play-like population of this many
	// apps (3 of them vulnerable, per Table V). 0 adds none.
	ThirdPartyApps int
}

// Corpus is a generated program plus the name tables tests and the
// verifier need.
type Corpus struct {
	Program *code.Program
	// SystemStubClasses maps service registry names to impl classes.
	SystemStubClasses map[string]string
	// ThirdPartyVulnerable lists the class names of planted Table V
	// vulnerabilities (for tests).
	ThirdPartyVulnerable []string
}

// InterfaceNameFor derives the AIDL interface name of a service
// ("telephony.registry" → "ITelephonyRegistry").
func InterfaceNameFor(service string) string {
	var b strings.Builder
	b.WriteByte('I')
	up := true
	for _, r := range service {
		switch {
		case r == '.' || r == '_':
			up = true
		case up:
			b.WriteString(strings.ToUpper(string(r)))
			up = false
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// Generate builds the corpus deterministically.
func Generate(opts Options) *Corpus {
	c := &Corpus{
		Program:           code.NewProgram(),
		SystemStubClasses: make(map[string]string),
	}
	c.addNativeLayer()
	c.addFramework()
	c.addSystemServices()
	c.addPrebuiltApps()
	if opts.ThirdPartyApps > 0 {
		c.addThirdPartyApps(opts.ThirdPartyApps)
	}
	return c
}

// jniRoot describes one native root with its path count into AddTarget.
type jniRoot struct {
	name  string
	via   string // intermediate helper ("" for a direct chain)
	paths int
	init  bool
}

// nativeRoots fixes the §III-B1 funnel: JNI-entry roots summing to 80
// reachable paths and init-only roots summing to 67.
var nativeRoots = []jniRoot{
	{name: "android_os_Parcel_readStrongBinder", via: "javaObjectForIBinder", paths: 6},
	{name: "android_os_Parcel_writeStrongBinder", via: "ibinderForJavaObject", paths: 4},
	{name: "android_os_BinderProxy_linkToDeath", via: "JavaDeathRecipient::JavaDeathRecipient", paths: 3},
	{name: "Thread_nativeCreate", via: "Thread::CreateNativeThread", paths: 2},
	{name: "android_media_MediaPlayer_native_setup", paths: 5},
	{name: "android_view_Surface_nativeCreateFromSurfaceTexture", paths: 4},
	{name: "android_hardware_Camera_native_setup", paths: 5},
	{name: "android_os_MessageQueue_nativeInit", paths: 2},
	{name: "android_graphics_Bitmap_nativeCreate", paths: 3},
	{name: "android_database_CursorWindow_nativeCreate", paths: 2},
	{name: "android_media_AudioTrack_native_setup", paths: 4},
	{name: "android_media_AudioRecord_native_setup", paths: 4},
	{name: "android_net_LocalSocketImpl_connectLocal", paths: 2},
	{name: "android_view_inputmethod_InputMethodManager_nativeInit", paths: 2},
	{name: "android_opengl_EGL14_eglCreateContext", paths: 3},
	{name: "android_app_NativeActivity_loadNativeCode", paths: 4},
	{name: "android_webkit_WebViewFactory_nativeCreate", paths: 3},
	{name: "android_ddm_DdmHandle_nativeInit", paths: 2},
	{name: "libcore_io_Posix_socket", paths: 2},
	{name: "android_content_res_AssetManager_nativeCreate", paths: 3},
	{name: "android_text_StaticLayout_nativeInit", paths: 2},
	{name: "android_os_SELinux_getContext", paths: 1},
	{name: "android_security_Keystore_nativeBind", paths: 3},
	{name: "android_nfc_NativeNfcManager_initialize", paths: 4},
	{name: "android_media_JetPlayer_native_setup", paths: 3},
	{name: "android_speech_srec_Recognizer_nativeInit", paths: 2},

	// Runtime-initialization roots: reachable only while the runtime
	// boots, filtered by the JGR entry extractor (§III-B1's 67).
	{name: "WellKnownClasses::CacheClass", paths: 24, init: true},
	{name: "WellKnownClasses::CachePrimitive", paths: 11, init: true},
	{name: "Runtime::InitNativeMethods", paths: 9, init: true},
	{name: "JavaVMExt::LoadNativeLibrary", paths: 8, init: true},
	{name: "ClassLinker::InitFromBootImage", paths: 7, init: true},
	{name: "Thread::Startup", paths: 5, init: true},
	{name: "InternTable::PreZygoteFork", paths: 3, init: true},
}

// addNativeLayer builds the native call graph and JNI registrations.
func (c *Corpus) addNativeLayer() {
	p := c.Program
	p.AddNative(&code.NativeFunc{Name: AddTarget})
	p.AddNative(&code.NativeFunc{
		Name:  "art::JavaVMExt::AddGlobalRef",
		Calls: []string{AddTarget},
	})
	for _, r := range nativeRoots {
		entry := r.name
		if r.via != "" {
			// root → helper → AddGlobalRef×n. Multiple call sites into
			// the same helper model the multiple code paths the static
			// search counts.
			calls := make([]string, r.paths)
			for i := range calls {
				calls[i] = "art::JavaVMExt::AddGlobalRef"
			}
			p.AddNative(&code.NativeFunc{Name: r.via, Calls: calls})
			p.AddNative(&code.NativeFunc{Name: entry, JNIEntry: !r.init, InitOnly: r.init, Calls: []string{r.via}})
			continue
		}
		calls := make([]string, r.paths)
		for i := range calls {
			calls[i] = "art::JavaVMExt::AddGlobalRef"
		}
		p.AddNative(&code.NativeFunc{Name: entry, JNIEntry: !r.init, InitOnly: r.init, Calls: calls})
	}
	// Negative roots: JNI entries with no route into the JGR table.
	for _, name := range []string{
		"android_os_Parcel_nativeWriteInt32",
		"android_os_Parcel_nativeReadInt32",
		"android_os_SystemClock_uptimeMillis",
		"android_util_Log_println_native",
	} {
		p.AddNative(&code.NativeFunc{Name: name, JNIEntry: true})
	}
	// Native service registrations (§III-A's five native services).
	for _, s := range catalog.NativeServices() {
		fn := fmt.Sprintf("register_%s", strings.ReplaceAll(s.Name, ".", "_"))
		p.AddNative(&code.NativeFunc{
			Name:             fn,
			RegistersService: s.Name,
			RegistersClass:   s.Class,
		})
	}

	// JNI registrations binding Java native methods to roots.
	regs := []code.JNIRegistration{
		{JavaClass: "android.os.Parcel", JavaMethod: "nativeReadStrongBinder", NativeFunc: "android_os_Parcel_readStrongBinder"},
		{JavaClass: "android.os.Parcel", JavaMethod: "nativeWriteStrongBinder", NativeFunc: "android_os_Parcel_writeStrongBinder"},
		{JavaClass: "android.os.BinderProxy", JavaMethod: "linkToDeathNative", NativeFunc: "android_os_BinderProxy_linkToDeath"},
		{JavaClass: "java.lang.Thread", JavaMethod: "nativeCreate", NativeFunc: "Thread_nativeCreate"},
		// Negative registrations: native methods that never touch the
		// JGR table.
		{JavaClass: "android.os.Parcel", JavaMethod: "nativeWriteInt32", NativeFunc: "android_os_Parcel_nativeWriteInt32"},
		{JavaClass: "android.os.Parcel", JavaMethod: "nativeReadInt32", NativeFunc: "android_os_Parcel_nativeReadInt32"},
		{JavaClass: "android.os.SystemClock", JavaMethod: "uptimeMillis", NativeFunc: "android_os_SystemClock_uptimeMillis"},
	}
	p.JNI = append(p.JNI, regs...)
}

// addFramework creates the framework Java classes the services call into.
func (c *Corpus) addFramework() {
	p := c.Program
	mk := func(class string, methods ...*code.Method) {
		p.AddClass(&code.Class{Name: class, Methods: methods})
	}
	m := func(class, name string, calls ...code.CallSite) *code.Method {
		return &code.Method{
			ID: code.MakeMethodID(class, name), Class: class, Name: name,
			Params: []code.ParamType{code.ParamOther}, Calls: calls,
		}
	}
	nativeM := func(class, name string) *code.Method {
		mm := m(class, name)
		mm.NativeDecl = true
		return mm
	}

	mk("android.os.ServiceManager", m("android.os.ServiceManager", "addService"))
	mk("com.android.server.SystemService", m("com.android.server.SystemService", "publishBinderService"))
	mk("android.os.Parcel",
		m("android.os.Parcel", "readStrongBinder", code.CallSite{Callee: ParcelReadStrongBinder}),
		m("android.os.Parcel", "writeStrongBinder", code.CallSite{Callee: ParcelWriteStrongBinder}),
		nativeM("android.os.Parcel", "nativeReadStrongBinder"),
		nativeM("android.os.Parcel", "nativeWriteStrongBinder"),
		nativeM("android.os.Parcel", "nativeWriteInt32"),
		nativeM("android.os.Parcel", "nativeReadInt32"),
	)
	mk("android.os.BinderProxy",
		m("android.os.BinderProxy", "linkToDeath", code.CallSite{Callee: LinkToDeathNative}),
		nativeM("android.os.BinderProxy", "linkToDeathNative"),
	)
	mk("android.os.RemoteCallbackList",
		m("android.os.RemoteCallbackList", "register",
			code.CallSite{Callee: code.MakeMethodID("android.os.BinderProxy", "linkToDeath")}),
		m("android.os.RemoteCallbackList", "unregister"),
	)
	mk("java.lang.Thread",
		m("java.lang.Thread", "start", code.CallSite{Callee: ThreadNativeCreate}),
		nativeM("java.lang.Thread", "nativeCreate"),
	)
	mk("android.os.Handler", m("android.os.Handler", "sendMessage"))
	mk("android.os.SystemClock", nativeM("android.os.SystemClock", "uptimeMillis"))
}

// paramScenarioFor spreads the four strong-binder transmission scenarios
// of §III-C2 across the catalogued interfaces deterministically.
func paramScenarioFor(full string) code.ParamType {
	switch len(full) % 5 {
	case 0:
		return code.ParamBinder
	case 1:
		return code.ParamInterface
	case 2:
		return code.ParamObjectWithBinder
	case 3:
		return code.ParamBinderArray
	default:
		return code.ParamList
	}
}

// addSystemServices emits the 104 services: AIDL interfaces, impl
// classes, handlers, registrations, permission map entries.
func (c *Corpus) addSystemServices() {
	p := c.Program
	registrar := &code.Method{
		ID:    code.MakeMethodID("com.android.server.SystemServer", "startOtherServices"),
		Class: "com.android.server.SystemServer", Name: "startOtherServices",
	}

	for _, meta := range catalog.Services() {
		if meta.Native {
			// Registered from native code; no Java model.
			continue
		}
		ifaces := catalog.InterfacesForService(meta.Name)
		ifaceName := InterfaceNameFor(meta.Name)
		implClass := meta.Class
		c.SystemStubClasses[meta.Name] = implClass

		var declared []string
		var methods []*code.Method

		// Catalogued vulnerable rows.
		useHandler := 0
		for _, row := range ifaces {
			declared = append(declared, row.Method)
			id := code.MakeMethodID(implClass, row.Method)
			scenario := paramScenarioFor(row.FullName())
			m := &code.Method{
				ID: id, Class: implClass, Name: row.Method,
				Params: []code.ParamType{code.ParamOther, scenario},
				Flows:  []code.BinderFlow{{Param: 1, Sink: code.SinkCollection}},
			}
			if scenario == code.ParamList {
				// Resolved by the manual-annotation table (§III-C2).
				p.ListCarriesBinder[id] = true
			}
			useHandler++
			if useHandler%3 == 0 {
				// Indirect dispatch through a message handler.
				m.Calls = []code.CallSite{{Callee: HandlerSendMessage, HandlerClass: implClass + "$H"}}
			} else {
				m.Calls = []code.CallSite{{Callee: code.MakeMethodID("android.os.RemoteCallbackList", "register")}}
			}
			if row.Permission != "" {
				p.PermissionMap[id] = string(row.Permission)
			}
			methods = append(methods, m)

			// Paired unregister: takes the binder but only to look it up
			// (sift rule 3 discards it).
			un := services.UnregisterPrefix + row.Method
			declared = append(declared, un)
			methods = append(methods, &code.Method{
				ID: code.MakeMethodID(implClass, un), Class: implClass, Name: un,
				Params: []code.ParamType{code.ParamOther, code.ParamBinder},
				Flows:  []code.BinderFlow{{Param: 1, Sink: code.SinkReadOnlyQuery}},
				Calls:  []code.CallSite{{Callee: code.MakeMethodID("android.os.RemoteCallbackList", "unregister")}},
			})
		}

		// The fixed innocent set (names shared with the service engine).
		for _, in := range services.InnocentMethods {
			declared = append(declared, in.Name)
			id := code.MakeMethodID(implClass, in.Name)
			m := &code.Method{ID: id, Class: implClass, Name: in.Name, Params: []code.ParamType{code.ParamOther}}
			switch in.Behaviour {
			case services.BehaviourThreadOnly:
				m.Calls = []code.CallSite{{Callee: code.MakeMethodID("java.lang.Thread", "start")}}
			case services.BehaviourLocalUse:
				m.Params = append(m.Params, code.ParamBinder)
				m.Flows = []code.BinderFlow{{Param: 1, Sink: code.SinkNone}}
			case services.BehaviourReadOnly:
				m.Params = append(m.Params, code.ParamBinder)
				m.Flows = []code.BinderFlow{{Param: 1, Sink: code.SinkReadOnlyQuery}}
			case services.BehaviourMemberOverwrite:
				m.Params = append(m.Params, code.ParamInterface)
				m.Flows = []code.BinderFlow{{Param: 1, Sink: code.SinkMemberField}}
			}
			methods = append(methods, m)
		}

		// Plain distractors.
		for i := 0; i < DistractorMethodsPerService; i++ {
			name := fmt.Sprintf("getInfo%d", i)
			declared = append(declared, name)
			methods = append(methods, &code.Method{
				ID: code.MakeMethodID(implClass, name), Class: implClass, Name: name,
				Params: []code.ParamType{code.ParamOther},
			})
		}

		// Every fourth service plants a signature-gated retaining method:
		// risky-looking but unreachable to third-party apps, so the
		// permission sifter must discard it (§III-C3).
		if len(meta.Name)%4 == 0 {
			name := "setDeviceAdminCallback"
			declared = append(declared, name)
			id := code.MakeMethodID(implClass, name)
			methods = append(methods, &code.Method{
				ID: id, Class: implClass, Name: name,
				Params: []code.ParamType{code.ParamOther, code.ParamInterface},
				Flows:  []code.BinderFlow{{Param: 1, Sink: code.SinkCollection}},
				Calls:  []code.CallSite{{Callee: code.MakeMethodID("android.os.RemoteCallbackList", "register")}},
			})
			p.PermissionMap[id] = SignatureDistractorPermission
		}

		p.AddInterface(&code.Interface{Name: ifaceName, Methods: declared})
		p.AddClass(&code.Class{Name: implClass, Implements: []string{ifaceName}, Methods: methods})
		p.AddClass(&code.Class{Name: implClass + "$H", Methods: []*code.Method{{
			ID: code.MakeMethodID(implClass+"$H", "handleMessage"), Class: implClass + "$H", Name: "handleMessage",
			Params: []code.ParamType{code.ParamOther},
			Calls:  []code.CallSite{{Callee: code.MakeMethodID("android.os.RemoteCallbackList", "register")}},
		}}})

		registrar.Calls = append(registrar.Calls, code.CallSite{
			Callee: ServiceManagerAdd, StringArg: meta.Name, ClassArg: implClass,
		})
	}
	p.AddClass(&code.Class{Name: "com.android.server.SystemServer", Methods: []*code.Method{registrar}})
}

// addPrebuiltApps emits the Table IV application layer: the TTS base
// class with its vulnerable default setCallback, PicoTts extending it, and
// the two Bluetooth profile services.
func (c *Corpus) addPrebuiltApps() {
	p := c.Program

	// android.speech.tts.TextToSpeechService: the framework base class.
	p.AddInterface(&code.Interface{
		Name:    "ITextToSpeechService",
		Methods: []string{"setCallback", "speak", "stop", "isLanguageAvailable"},
	})
	p.AddClass(&code.Class{Name: "ITextToSpeechService$Stub", AIDLGenerated: true, Implements: []string{"ITextToSpeechService"}})
	p.AddClass(&code.Class{
		Name:            "android.speech.tts.TextToSpeechService",
		Abstract:        true,
		AsBinderReturns: "ITextToSpeechService$Stub",
		Methods: []*code.Method{
			{
				ID:    code.MakeMethodID("android.speech.tts.TextToSpeechService", "setCallback"),
				Class: "android.speech.tts.TextToSpeechService", Name: "setCallback",
				Params: []code.ParamType{code.ParamInterface},
				Flows:  []code.BinderFlow{{Param: 0, Sink: code.SinkCollection}},
				Calls:  []code.CallSite{{Callee: code.MakeMethodID("android.os.RemoteCallbackList", "register")}},
			},
			{ID: code.MakeMethodID("android.speech.tts.TextToSpeechService", "speak"), Class: "android.speech.tts.TextToSpeechService", Name: "speak", Params: []code.ParamType{code.ParamOther}},
			{ID: code.MakeMethodID("android.speech.tts.TextToSpeechService", "stop"), Class: "android.speech.tts.TextToSpeechService", Name: "stop", Params: []code.ParamType{code.ParamOther}},
			{ID: code.MakeMethodID("android.speech.tts.TextToSpeechService", "isLanguageAvailable"), Class: "android.speech.tts.TextToSpeechService", Name: "isLanguageAvailable", Params: []code.ParamType{code.ParamOther}},
		},
	})
	// PicoTts: extends the base, inheriting the vulnerable default.
	p.AddClass(&code.Class{Name: "com.svox.pico.PicoService", Super: "android.speech.tts.TextToSpeechService"})

	// Bluetooth's Gatt and Adapter services.
	addBt := func(iface, base, concrete, vulnMethod string, extra ...string) {
		p.AddInterface(&code.Interface{Name: iface, Methods: append([]string{vulnMethod}, extra...)})
		p.AddClass(&code.Class{Name: iface + "$Stub", AIDLGenerated: true, Implements: []string{iface}})
		p.AddClass(&code.Class{Name: base, Abstract: true, AsBinderReturns: iface + "$Stub"})
		var methods []*code.Method
		methods = append(methods, &code.Method{
			ID: code.MakeMethodID(concrete, vulnMethod), Class: concrete, Name: vulnMethod,
			Params: []code.ParamType{code.ParamInterface},
			Flows:  []code.BinderFlow{{Param: 0, Sink: code.SinkCollection}},
			Calls:  []code.CallSite{{Callee: code.MakeMethodID("android.os.RemoteCallbackList", "register")}},
		})
		for _, name := range extra {
			methods = append(methods, &code.Method{
				ID: code.MakeMethodID(concrete, name), Class: concrete, Name: name,
				Params: []code.ParamType{code.ParamOther},
			})
		}
		p.AddClass(&code.Class{Name: concrete, Super: base, Methods: methods})
	}
	addBt("IBluetoothGatt", "com.android.bluetooth.gatt.GattServiceBase",
		"com.android.bluetooth.gatt.GattService", "registerServer", "readCharacteristic", "unregisterServer")
	addBt("IBluetooth", "com.android.bluetooth.btservice.AdapterServiceBase",
		"com.android.bluetooth.btservice.AdapterService", "registerCallback", "getState", "getName")
}

// addThirdPartyApps emits a Google-Play-like population for Table V: n
// apps, three of which expose vulnerable IPC interfaces.
func (c *Corpus) addThirdPartyApps(n int) {
	p := c.Program

	// Google Text-to-speech: vulnerable by extending the same base class
	// as PicoTts.
	p.AddClass(&code.Class{Name: "com.google.android.tts.GoogleTTSService", Super: "android.speech.tts.TextToSpeechService"})
	c.ThirdPartyVulnerable = append(c.ThirdPartyVulnerable, "com.google.android.tts.GoogleTTSService")

	// Supernet VPN: its own AIDL service retaining status callbacks.
	p.AddInterface(&code.Interface{Name: "IOpenVPNAPIService", Methods: []string{"registerStatusCallback", "disconnect"}})
	p.AddClass(&code.Class{Name: "IOpenVPNAPIService$Stub", AIDLGenerated: true, Implements: []string{"IOpenVPNAPIService"}})
	p.AddClass(&code.Class{
		Name:            "com.supernet.vpn.ExternalOpenVPNService",
		AsBinderReturns: "IOpenVPNAPIService$Stub",
		Methods: []*code.Method{
			{
				ID:    code.MakeMethodID("com.supernet.vpn.ExternalOpenVPNService", "registerStatusCallback"),
				Class: "com.supernet.vpn.ExternalOpenVPNService", Name: "registerStatusCallback",
				Params: []code.ParamType{code.ParamInterface},
				Flows:  []code.BinderFlow{{Param: 0, Sink: code.SinkCollection}},
				Calls:  []code.CallSite{{Callee: code.MakeMethodID("android.os.RemoteCallbackList", "register")}},
			},
			{ID: code.MakeMethodID("com.supernet.vpn.ExternalOpenVPNService", "disconnect"), Class: "com.supernet.vpn.ExternalOpenVPNService", Name: "disconnect", Params: []code.ParamType{code.ParamOther}},
		},
	})
	c.ThirdPartyVulnerable = append(c.ThirdPartyVulnerable, "com.supernet.vpn.ExternalOpenVPNService")

	// SnapMovie: an obfuscated service with method "a".
	p.AddInterface(&code.Interface{Name: "IMainService", Methods: []string{"a", "b"}})
	p.AddClass(&code.Class{Name: "IMainService$Stub", AIDLGenerated: true, Implements: []string{"IMainService"}})
	p.AddClass(&code.Class{
		Name:            "com.snapmovie.app.MainService",
		AsBinderReturns: "IMainService$Stub",
		Methods: []*code.Method{
			{
				ID:    code.MakeMethodID("com.snapmovie.app.MainService", "a"),
				Class: "com.snapmovie.app.MainService", Name: "a",
				Params: []code.ParamType{code.ParamBinder},
				Flows:  []code.BinderFlow{{Param: 0, Sink: code.SinkCollection}},
			},
			{ID: code.MakeMethodID("com.snapmovie.app.MainService", "b"), Class: "com.snapmovie.app.MainService", Name: "b", Params: []code.ParamType{code.ParamOther}},
		},
	})
	c.ThirdPartyVulnerable = append(c.ThirdPartyVulnerable, "com.snapmovie.app.MainService")

	// The rest of the population: every 16th app exposes an innocent
	// bound service; the others have no IPC surface at all (paper §IV-D:
	// "few apps open IPC interface to other third-party apps").
	for i := len(c.ThirdPartyVulnerable); i < n; i++ {
		pkg := fmt.Sprintf("com.play.app%04d", i)
		if i%16 != 0 {
			p.AddClass(&code.Class{Name: pkg + ".MainActivity"})
			continue
		}
		iface := fmt.Sprintf("IApp%04dService", i)
		svcClass := pkg + ".BoundService"
		p.AddInterface(&code.Interface{Name: iface, Methods: []string{"ping", "query"}})
		p.AddClass(&code.Class{Name: iface + "$Stub", AIDLGenerated: true, Implements: []string{iface}})
		p.AddClass(&code.Class{
			Name:            svcClass,
			AsBinderReturns: iface + "$Stub",
			Methods: []*code.Method{
				{ID: code.MakeMethodID(svcClass, "ping"), Class: svcClass, Name: "ping", Params: []code.ParamType{code.ParamOther}},
				{
					ID: code.MakeMethodID(svcClass, "query"), Class: svcClass, Name: "query",
					Params: []code.ParamType{code.ParamOther, code.ParamBinder},
					Flows:  []code.BinderFlow{{Param: 1, Sink: code.SinkNone}},
				},
			},
		})
	}
}
