// Package services implements executable Android system services on top of
// the binder/kernel/art substrates. A single catalog-driven engine
// instantiates all 104 services of the census: every interface row from
// Tables I–III behaves as the paper describes (retaining caller binders,
// enforcing — or failing to enforce — its shipped guard), and each service
// additionally exposes the "innocent" IPC patterns of §III-C3 so the
// static and dynamic analyses have real negatives to discriminate.
package services

import (
	"errors"
	"fmt"
	"hash/fnv"
	"math/rand"
	"sort"
	"time"

	"repro/internal/art"
	"repro/internal/binder"
	"repro/internal/catalog"
	"repro/internal/kernel"
	"repro/internal/permissions"
	"repro/internal/simclock"
	"repro/internal/xrand"
)

// Errors returned to callers through failed transactions.
var (
	// ErrQuotaExceeded reports a per-process (or per-package) constraint
	// refusing the request — Table III behaviour.
	ErrQuotaExceeded = errors.New("services: per-process quota exceeded")
	// ErrNoSuchMethod reports an unknown transaction code.
	ErrNoSuchMethod = errors.New("services: no such method")
	// ErrNoEntry reports an unregister with nothing registered.
	ErrNoEntry = errors.New("services: no registered entry for caller")
)

// Behaviour classifies how an IPC method treats a caller-supplied binder,
// mirroring the paper's vulnerability condition and the four sift rules of
// §III-C3.
type Behaviour int

const (
	// BehaviourRetain stores the binder indefinitely — the vulnerable
	// pattern. The entry is freed on explicit unregister or caller death.
	BehaviourRetain Behaviour = iota + 1
	// BehaviourThreadOnly only spawns a worker (Thread.nativeCreate);
	// its JGR is released immediately (sift rule 1).
	BehaviourThreadOnly
	// BehaviourLocalUse uses the binder inside the call only; GC
	// reclaims it afterwards (sift rule 2).
	BehaviourLocalUse
	// BehaviourReadOnly consults the binder as a read-only key of a
	// container; GC reclaims it afterwards (sift rule 3).
	BehaviourReadOnly
	// BehaviourMemberOverwrite stores the binder in a single member
	// field, revoking the previous one on each call (sift rule 4).
	BehaviourMemberOverwrite
	// BehaviourPlain takes no binder at all.
	BehaviourPlain
)

// String names the behaviour.
func (b Behaviour) String() string {
	switch b {
	case BehaviourRetain:
		return "retain"
	case BehaviourThreadOnly:
		return "thread-only"
	case BehaviourLocalUse:
		return "local-use"
	case BehaviourReadOnly:
		return "read-only"
	case BehaviourMemberOverwrite:
		return "member-overwrite"
	case BehaviourPlain:
		return "plain"
	default:
		return fmt.Sprintf("Behaviour(%d)", int(b))
	}
}

// InnocentSpec describes one generated non-vulnerable method. Every
// service exposes this fixed set (in addition to its catalogued rows), so
// the analysis pipeline sees thousands of IPC methods of which only the
// catalogued ones are real findings.
type InnocentSpec struct {
	Name      string
	Behaviour Behaviour
}

// InnocentMethods is the per-service set of generated innocent methods.
// The corpus generator (internal/corpus) emits matching code-model
// entries; the names must stay in sync.
var InnocentMethods = []InnocentSpec{
	{Name: "getState", Behaviour: BehaviourPlain},
	{Name: "startTask", Behaviour: BehaviourThreadOnly},
	{Name: "checkAccess", Behaviour: BehaviourLocalUse},
	{Name: "noteEvent", Behaviour: BehaviourReadOnly},
	{Name: "setSingleCallback", Behaviour: BehaviourMemberOverwrite},
}

// UnregisterPrefix prefixes the paired release method generated for every
// retaining interface.
const UnregisterPrefix = "unregister:"

// method is one dispatchable IPC method of a service instance.
type method struct {
	name          string
	behaviour     Behaviour
	spec          catalog.Interface // zero for innocent methods
	catalogued    bool
	unregisterFor string // set on generated unregister methods
}

// entry is one retained listener registration.
type entry struct {
	ref    *binder.BinderRef
	link   *binder.DeathLink
	caller kernel.Pid
	uid    kernel.Uid
	pkg    string
}

// Service is one instantiated system service.
type Service struct {
	meta   catalog.Service
	host   *kernel.Process
	driver *binder.Driver
	clock  *simclock.Clock
	perms  *permissions.Manager

	// rng is seeded lazily on the first jitter draw: with 104 services per
	// device, eager seeding dominates both boot and clone cost, and most
	// services in a run are never called. rngSeed is the full mixed seed;
	// seedMix is the per-service component, kept so a clone onto a
	// different device seed can recompute rngSeed without rehashing.
	rng     *rand.Rand
	rngSeed int64
	seedMix int64

	stub *binder.LocalBinder
	// transactor caches the dispatch closure handed to the driver. It
	// binds only the Service pointer, which is stable for a slab entry,
	// so a recycled clone (CloneInto onto the same dst) reuses it instead
	// of allocating one closure per service per trial.
	transactor binder.Transactor
	methods    map[binder.TxCode]*method
	codes      map[string]binder.TxCode

	// entries holds retained registrations per catalogued method name.
	entries map[string][]*entry
	// member holds the single member-field slot per caller for
	// BehaviourMemberOverwrite methods (keyed method|pid).
	member map[string]*entry

	calls  uint64
	objSeq uint64
	quota  int
}

// Config assembles a Service.
type Config struct {
	Meta   catalog.Service
	Ifaces []catalog.Interface
	Host   *kernel.Process
	Driver *binder.Driver
	Clock  *simclock.Clock
	Perms  *permissions.Manager
	// Seed makes per-call jitter deterministic per device run.
	Seed int64
	// UniversalQuota, when positive, enforces a per-caller-pid cap on
	// every catalogued (retaining) interface — the hypothetical
	// "fix everything with per-process constraints" patch whose
	// usability trade-off the paper's §IV-B discusses. 0 disables it.
	UniversalQuota int
	// ExtraBootRefs pins this many JGR entries at construction,
	// modelling the service's long-lived internal callbacks; the sum
	// across services yields system_server's 1,000–3,000 baseline
	// (Fig. 4).
	ExtraBootRefs int
}

// New instantiates a service and registers its binder with sm.
func New(cfg Config, sm *binder.ServiceManager) (*Service, error) {
	if cfg.Host == nil || cfg.Driver == nil || cfg.Clock == nil || cfg.Perms == nil {
		return nil, errors.New("services: incomplete config")
	}
	h := fnv.New64a()
	h.Write([]byte(cfg.Meta.Name))
	mix := int64(h.Sum64())
	s := &Service{
		meta:    cfg.Meta,
		host:    cfg.Host,
		driver:  cfg.Driver,
		clock:   cfg.Clock,
		perms:   cfg.Perms,
		rngSeed: cfg.Seed ^ mix,
		seedMix: mix,
		methods: make(map[binder.TxCode]*method),
		codes:   make(map[string]binder.TxCode),
	}
	s.quota = cfg.UniversalQuota
	s.buildMethodTable(cfg.Ifaces)
	s.transactor = binder.TransactorFunc(s.onTransact)
	s.stub = cfg.Driver.NewLocalBinder(cfg.Host, cfg.Meta.Class, s.transactor)
	if err := sm.AddService(cfg.Meta.Name, s.stub); err != nil {
		return nil, err
	}
	for i := 0; i < cfg.ExtraBootRefs; i++ {
		obj := s.newObject(fmt.Sprintf("boot#%d", i))
		if _, err := cfg.Host.VM().AddGlobalRef(obj); err != nil {
			return nil, fmt.Errorf("services: boot refs for %s: %w", cfg.Meta.Name, err)
		}
	}
	return s, nil
}

// buildMethodTable assigns the transaction codes computed by MethodCodes,
// so that clients compiled against the same catalog agree on the numbers.
func (s *Service) buildMethodTable(ifaces []catalog.Interface) {
	byName := make(map[string]*method)
	for _, spec := range ifaces {
		byName[spec.Method] = &method{name: spec.Method, behaviour: BehaviourRetain, spec: spec, catalogued: true}
		un := UnregisterPrefix + spec.Method
		byName[un] = &method{name: un, behaviour: BehaviourPlain, unregisterFor: spec.Method}
	}
	for _, in := range InnocentMethods {
		if _, taken := byName[in.Name]; !taken {
			byName[in.Name] = &method{name: in.Name, behaviour: in.Behaviour}
		}
	}
	for name, code := range MethodCodes(ifaces) {
		s.methods[code] = byName[name]
		s.codes[name] = code
	}
}

// rand returns the jitter rng, seeding it on first use. The draw
// sequence is identical to an eagerly seeded rng, so lazy seeding is
// invisible to byte-identity.
func (s *Service) rand() *rand.Rand {
	if s.rng == nil {
		s.rng = xrand.New(s.rngSeed)
	}
	return s.rng
}

// CloneInto populates dst as a boot-state clone of s for a snapshot
// clone of its device: immutable method/code tables are shared, the
// retained-entry maps start empty (the template is frozen at boot
// quiescence, before any transaction), and the jitter rng is re-keyed
// lazily from the clone's device seed. The caller supplies the clone's
// substrate (host process, driver, clock, perms) and mints the stub's
// driver node in boot order; no ServiceManager registration runs — the
// clone's registry resolves names through the shared frozen table.
func (s *Service) CloneInto(dst *Service, host *kernel.Process, driver *binder.Driver, clock *simclock.Clock, perms *permissions.Manager, seed int64) {
	tr := dst.transactor
	*dst = Service{
		meta:    s.meta,
		host:    host,
		driver:  driver,
		clock:   clock,
		perms:   perms,
		rngSeed: seed ^ s.seedMix,
		seedMix: s.seedMix,
		methods: s.methods,
		codes:   s.codes,
		calls:   s.calls,
		objSeq:  s.objSeq,
		quota:   s.quota,
	}
	if tr == nil {
		tr = binder.TransactorFunc(dst.onTransact)
	}
	dst.transactor = tr
	dst.stub = driver.NewLocalBinder(host, s.meta.Class, tr)
}

// Name returns the ServiceManager name.
func (s *Service) Name() string { return s.meta.Name }

// Host returns the hosting process.
func (s *Service) Host() *kernel.Process { return s.host }

// Stub returns the service's local binder (used to resolve its driver
// handle for the defender's record attribution).
func (s *Service) Stub() *binder.LocalBinder { return s.stub }

// Code returns the transaction code for a method name.
func (s *Service) Code(methodName string) (binder.TxCode, bool) {
	c, ok := s.codes[methodName]
	return c, ok
}

// MethodName resolves a transaction code back to its method name.
func (s *Service) MethodName(code binder.TxCode) (string, bool) {
	m, ok := s.methods[code]
	if !ok {
		return "", false
	}
	return m.name, true
}

// MethodNames returns all dispatchable method names, sorted.
func (s *Service) MethodNames() []string {
	out := make([]string, 0, len(s.codes))
	for n := range s.codes {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// EntryCount returns the retained registrations for a method.
func (s *Service) EntryCount(methodName string) int { return len(s.entries[methodName]) }

// TotalEntries returns all retained registrations of the service.
func (s *Service) TotalEntries() int {
	n := 0
	for _, es := range s.entries {
		n += len(es)
	}
	return n
}

// Calls returns how many transactions the service has handled.
func (s *Service) Calls() uint64 { return s.calls }

// onTransact is the service stub dispatch.
func (s *Service) onTransact(call *binder.Call) error {
	m, ok := s.methods[call.Code]
	if !ok {
		return fmt.Errorf("%w: %s code %d", ErrNoSuchMethod, s.meta.Name, call.Code)
	}
	s.calls++
	if m.catalogued {
		if err := s.perms.Enforce(call.SenderUid, m.spec.Permission); err != nil {
			return err
		}
		return s.handleCatalogued(m, call)
	}
	if m.unregisterFor != "" {
		return s.handleUnregister(m.unregisterFor, call)
	}
	return s.handleInnocent(m, call)
}

// chargeExec advances the clock for the pre-JGR part of the handler and
// returns the post-JGR remainder. The elapsed time before the JGR add is
// the paper's Delay + Δ (Observation 2): a stable floor plus a small
// bounded deviation.
func (s *Service) chargeExec(c catalog.CostModel, stored int) (post time.Duration) {
	jitter := time.Duration(s.rand().Int63n(int64(c.Jitter) + 1))
	pre := c.ExecBase/2 + jitter
	post = c.ExecBase/2 + time.Duration(stored)*c.ExecSlope
	s.clock.Advance(pre)
	return post
}

// PathShift is the extra pre-JGR execution time each code-path variant of
// a multi-path interface adds (paper §VI: "attackers may exploit the
// vulnerabilities via multiple attack paths", shifting the IPC→JGR delay
// per path).
const PathShift = 3 * time.Millisecond

// handleCatalogued implements a Table I–III row: enforce the guard it
// ships with (if any), then retain the caller's binder.
func (s *Service) handleCatalogued(m *method, call *binder.Call) error {
	pkg, err := call.Data.ReadString()
	if err != nil {
		return fmt.Errorf("%s.%s: reading caller package: %w", s.meta.Name, m.name, err)
	}
	// Optional leading int32: the execution-path selector. Different
	// paths run different branches of the handler before the binder is
	// materialized, so the IPC→JGR delay shifts per path.
	var variant int32
	if call.Data.NextIsInt32() {
		if variant, err = call.Data.ReadInt32(); err != nil {
			return err
		}
		if variant < 0 || variant > 8 {
			return fmt.Errorf("%s.%s: invalid path variant %d", s.meta.Name, m.name, variant)
		}
		// Path-dependent argument payload (failed reads do not consume,
		// so plain calls are unaffected).
		if _, err := call.Data.ReadBytes(); err != nil && !errors.Is(err, binder.ErrParcelExhausted) {
			var tm *binder.TypeMismatchError
			if !errors.As(err, &tm) {
				return err
			}
		}
	}
	post := s.chargeExec(m.spec.Cost, len(s.entries[m.name]))
	if variant > 0 {
		s.clock.Advance(time.Duration(variant) * PathShift)
	}

	// The hypothetical universal patch: a pid-keyed quota on every
	// retaining interface, checked before (and regardless of) whatever
	// guard the interface shipped with.
	if s.quota > 0 && s.countByPid(m.name, call.SenderPid) >= s.quota {
		s.clock.Advance(post)
		return fmt.Errorf("%w: pid %d at universal quota %d for %s",
			ErrQuotaExceeded, call.SenderPid, s.quota, m.name)
	}

	switch m.spec.Protection {
	case catalog.PerProcessGuard:
		if s.meta.Name == "notification" && m.name == "enqueueToast" {
			// Code-Snippet 3: the quota exempts "system toasts", but
			// system-ness is judged from the caller-supplied package
			// string — spoofing "android" bypasses the limit.
			isSystemToast := pkg == "android"
			if !isSystemToast && s.countByPackage(m.name, pkg) >= m.spec.GuardLimit {
				s.clock.Advance(post)
				return fmt.Errorf("%w: package %q has already posted %d toasts",
					ErrQuotaExceeded, pkg, m.spec.GuardLimit)
			}
		} else {
			// The correctly implemented guards key the quota on the
			// kernel-reported caller identity, which cannot be spoofed.
			if s.countByPid(m.name, call.SenderPid) >= m.spec.GuardLimit {
				s.clock.Advance(post)
				return fmt.Errorf("%w: pid %d at limit %d for %s",
					ErrQuotaExceeded, call.SenderPid, m.spec.GuardLimit, m.name)
			}
		}
	case catalog.HelperGuard, catalog.Unprotected:
		// No service-side check: Table II's guards live in the helper
		// class inside the caller's process, Table I has none at all.
	}

	ref, err := call.Data.ReadStrongBinder()
	if err != nil {
		return fmt.Errorf("%s.%s: reading callback binder: %w", s.meta.Name, m.name, err)
	}
	if ref == nil {
		s.clock.Advance(post)
		return nil
	}
	if err := s.retain(m.name, ref, call, pkg); err != nil {
		return err
	}
	s.clock.Advance(post)
	call.Reply.WriteInt32(0)
	return nil
}

// retain stores a registration: pin the proxy's JGR and link the caller's
// death so the entry is reclaimed when the client exits — which is why
// clipboard listeners "will not be released until the corresponding app
// process exits" (paper §II-A).
func (s *Service) retain(methodName string, ref *binder.BinderRef, call *binder.Call, pkg string) error {
	ref.Retain()
	e := &entry{ref: ref, caller: call.SenderPid, uid: call.SenderUid, pkg: pkg}
	link, err := ref.Binder().LinkToDeath(func() { s.dropEntry(methodName, e) })
	if err != nil && !errors.Is(err, binder.ErrLocalBinder) {
		ref.Release()
		return fmt.Errorf("%s.%s: linkToDeath: %w", s.meta.Name, methodName, err)
	}
	e.link = link
	if s.entries == nil {
		s.entries = make(map[string][]*entry)
	}
	s.entries[methodName] = append(s.entries[methodName], e)
	return nil
}

func (s *Service) dropEntry(methodName string, e *entry) {
	es := s.entries[methodName]
	for i, cur := range es {
		if cur == e {
			s.entries[methodName] = append(es[:i], es[i+1:]...)
			break
		}
	}
	if e.link != nil {
		e.link.Unlink()
	}
	e.ref.Release()
}

func (s *Service) countByPid(methodName string, pid kernel.Pid) int {
	n := 0
	for _, e := range s.entries[methodName] {
		if e.caller == pid {
			n++
		}
	}
	return n
}

func (s *Service) countByPackage(methodName, pkg string) int {
	n := 0
	for _, e := range s.entries[methodName] {
		if e.pkg == pkg {
			n++
		}
	}
	return n
}

// handleUnregister releases the caller's oldest registration.
func (s *Service) handleUnregister(methodName string, call *binder.Call) error {
	for _, e := range s.entries[methodName] {
		if e.caller == call.SenderPid {
			s.dropEntry(methodName, e)
			call.Reply.WriteInt32(0)
			return nil
		}
	}
	return fmt.Errorf("%w: %s.%s pid %d", ErrNoEntry, s.meta.Name, methodName, call.SenderPid)
}

// innocentCost is the uniform cost model of generated innocent methods.
var innocentCost = catalog.CostModel{
	ExecBase: 300 * time.Microsecond,
	Jitter:   200 * time.Microsecond,
}

// handleInnocent implements the non-vulnerable patterns.
func (s *Service) handleInnocent(m *method, call *binder.Call) error {
	post := s.chargeExec(innocentCost, 0)
	defer s.clock.Advance(post)
	// Every client call leads with the caller package string.
	if _, err := call.Data.ReadString(); err != nil && !errors.Is(err, binder.ErrParcelExhausted) {
		return err
	}
	switch m.behaviour {
	case BehaviourPlain:
		call.Reply.WriteInt32(int32(len(s.entries[m.name])))
		return nil
	case BehaviourThreadOnly:
		// Thread.nativeCreate takes a JGR and Thread::CreateNativeThread
		// releases it before returning (sift rule 1).
		ref, err := s.host.VM().AddGlobalRef(s.newObject("thread"))
		if err != nil {
			return err
		}
		return s.host.VM().DeleteGlobalRef(ref)
	case BehaviourLocalUse, BehaviourReadOnly:
		// The binder is read (JGR added) but never retained: the
		// framework marks it collectable at end of call and GC frees it.
		if _, err := call.Data.ReadStrongBinder(); err != nil && !errors.Is(err, binder.ErrParcelExhausted) {
			return err
		}
		call.Reply.WriteInt32(0)
		return nil
	case BehaviourMemberOverwrite:
		ref, err := call.Data.ReadStrongBinder()
		if err != nil {
			return err
		}
		if ref == nil {
			return nil
		}
		ref.Retain()
		key := m.name + "|" + fmt.Sprint(call.SenderPid)
		if prev, ok := s.member[key]; ok {
			if prev.link != nil {
				prev.link.Unlink()
			}
			prev.ref.Release()
		}
		e := &entry{ref: ref, caller: call.SenderPid, uid: call.SenderUid}
		if link, err := ref.Binder().LinkToDeath(func() { s.dropMember(key, e) }); err == nil {
			e.link = link
		}
		if s.member == nil {
			s.member = make(map[string]*entry)
		}
		s.member[key] = e
		return nil
	default:
		return fmt.Errorf("services: unhandled behaviour %v", m.behaviour)
	}
}

func (s *Service) dropMember(key string, e *entry) {
	if cur, ok := s.member[key]; ok && cur == e {
		delete(s.member, key)
		e.ref.Release()
	}
}

// newObject mints a heap object for boot-time pins and worker threads.
func (s *Service) newObject(tag string) *art.Object {
	s.objSeq++
	return &art.Object{ID: art.ObjectID(s.objSeq), Class: fmt.Sprintf("internal/%s/%s", s.meta.Name, tag)}
}

// NotifyListeners delivers a callback transaction to every listener
// registered on a retaining method — the reverse direction the listeners
// exist for (a clipboard change notifying addPrimaryClipChangedListener
// registrants). Dead or token-only callbacks are skipped; the count of
// successful deliveries is returned.
func (s *Service) NotifyListeners(methodName string, payload string) int {
	delivered := 0
	// Copy: a callback erroring can trigger death handling that mutates
	// the entry list.
	entries := append([]*entry(nil), s.entries[methodName]...)
	data, reply := binder.ObtainParcel(), binder.ObtainParcel()
	defer data.Recycle()
	defer reply.Recycle()
	for _, e := range entries {
		data.Reset()
		reply.Reset()
		data.WriteString(payload)
		if err := e.ref.Binder().Transact(1, data, reply); err != nil {
			continue // token binders and dead clients are expected
		}
		delivered++
	}
	return delivered
}
