package services

import (
	"math/rand"
	"testing"

	"repro/internal/art"
	"repro/internal/binder"
	"repro/internal/catalog"
	"repro/internal/kernel"
	"repro/internal/permissions"
	"repro/internal/simclock"
)

// TestServiceJGRAccountingInvariant drives a randomized sequence of
// register / unregister / client-death operations against a service and
// checks the central bookkeeping invariant after every step: the victim's
// JGR table holds exactly
//
//	2 × retained entries (proxy + death recipient)
//	+ 1 JavaBBinder owner-pin on the service stub while any client holds
//	  its proxy (the pin is per binder node, not per client)
//
// The invariant is what makes the whole reproduction trustworthy: every
// attack curve, baseline band and defender recovery is derived from it.
func TestServiceJGRAccountingInvariant(t *testing.T) {
	clock := simclock.New()
	k := kernel.New(clock, kernel.Config{})
	d := binder.New(k, binder.Config{})
	sm := binder.NewServiceManager(d)
	perms := permissions.NewManager()
	server := k.Spawn(kernel.SpawnConfig{
		Name: kernel.SystemServerName, Uid: kernel.SystemUid, OomScoreAdj: kernel.SystemAdj,
		// Disable auto-GC so the count is exact at every step.
		VM: art.Config{GCTrigger: -1},
	})
	meta, _ := catalog.ServiceByName("clipboard")
	svc, err := New(Config{
		Meta: meta, Ifaces: catalog.InterfacesForService("clipboard"),
		Host: server, Driver: d, Clock: clock, Perms: perms, Seed: 1,
	}, sm)
	if err != nil {
		t.Fatal(err)
	}

	const method = "addPrimaryClipChangedListener"
	type clientState struct {
		proc   *kernel.Process
		client *Client
	}
	rng := rand.New(rand.NewSource(99))
	var clients []*clientState
	nextUid := kernel.Uid(10100)

	check := func(step int) {
		t.Helper()
		server.VM().GC() // collect any transient refs before counting
		want := 2 * svc.TotalEntries()
		if len(clients) > 0 {
			want++ // the stub node's owner pin, held while any proxy lives
		}
		if got := server.VM().GlobalRefCount(); got != want {
			t.Fatalf("step %d: server JGR = %d, want %d (entries=%d, clients=%d)",
				step, got, want, svc.TotalEntries(), len(clients))
		}
	}

	for step := 0; step < 600; step++ {
		switch op := rng.Intn(10); {
		case op < 5: // register from a (possibly new) client
			if len(clients) == 0 || rng.Intn(3) == 0 {
				proc := k.Spawn(kernel.SpawnConfig{Name: "app", Uid: nextUid})
				nextUid++
				c, err := NewClient(sm, d, proc, "app", "clipboard")
				if err != nil {
					t.Fatal(err)
				}
				clients = append(clients, &clientState{proc: proc, client: c})
			}
			cs := clients[rng.Intn(len(clients))]
			if err := cs.client.Register(method); err != nil {
				t.Fatal(err)
			}
		case op < 8: // unregister (may be a no-op)
			if len(clients) > 0 {
				cs := clients[rng.Intn(len(clients))]
				_ = cs.client.Unregister(method) // ErrNoEntry is fine
			}
		default: // client process dies
			if len(clients) > 0 {
				i := rng.Intn(len(clients))
				k.Kill(clients[i].proc.Pid(), "random death")
				clients = append(clients[:i], clients[i+1:]...)
			}
		}
		check(step)
	}
	if svc.Calls() == 0 {
		t.Fatal("no calls made")
	}
}
