package services

import (
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/art"
	"repro/internal/binder"
	"repro/internal/catalog"
	"repro/internal/kernel"
	"repro/internal/permissions"
	"repro/internal/simclock"
)

// svcRig wires a single catalogued service with one app process.
type svcRig struct {
	clock  *simclock.Clock
	k      *kernel.Kernel
	d      *binder.Driver
	sm     *binder.ServiceManager
	perms  *permissions.Manager
	server *kernel.Process
	app    *kernel.Process
	svc    *Service
}

func newSvcRig(t *testing.T, serviceName string, vm art.Config) *svcRig {
	t.Helper()
	clock := simclock.New()
	k := kernel.New(clock, kernel.Config{})
	d := binder.New(k, binder.Config{})
	sm := binder.NewServiceManager(d)
	perms := permissions.NewManager()
	for p, l := range catalog.PermissionLevels {
		perms.Define(p, l)
	}
	server := k.Spawn(kernel.SpawnConfig{
		Name: kernel.SystemServerName, Uid: kernel.SystemUid,
		OomScoreAdj: kernel.SystemAdj, VM: vm,
	})
	app := k.Spawn(kernel.SpawnConfig{Name: "com.evil.app", Uid: 10061})

	meta, ok := catalog.ServiceByName(serviceName)
	if !ok {
		t.Fatalf("unknown service %s", serviceName)
	}
	svc, err := New(Config{
		Meta:   meta,
		Ifaces: catalog.InterfacesForService(serviceName),
		Host:   server,
		Driver: d,
		Clock:  clock,
		Perms:  perms,
		Seed:   1,
	}, sm)
	if err != nil {
		t.Fatal(err)
	}
	return &svcRig{clock: clock, k: k, d: d, sm: sm, perms: perms, server: server, app: app, svc: svc}
}

func (r *svcRig) client(t *testing.T, pkg string) *Client {
	t.Helper()
	c, err := NewClient(r.sm, r.d, r.app, pkg, r.svc.Name())
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestRegisterRetainsJGR(t *testing.T) {
	r := newSvcRig(t, "clipboard", art.Config{})
	c := r.client(t, "com.evil.app")
	base := r.server.VM().GlobalRefCount()
	for i := 0; i < 5; i++ {
		if err := c.Register("addPrimaryClipChangedListener"); err != nil {
			t.Fatal(err)
		}
	}
	if got := r.svc.EntryCount("addPrimaryClipChangedListener"); got != 5 {
		t.Fatalf("EntryCount = %d, want 5", got)
	}
	r.server.VM().GC()
	// Each registration pins 2 refs (proxy + death recipient).
	if got := r.server.VM().GlobalRefCount(); got != base+10 {
		t.Fatalf("server JGR = %d, want %d", got, base+10)
	}
}

func TestUnregisterReleases(t *testing.T) {
	r := newSvcRig(t, "clipboard", art.Config{})
	c := r.client(t, "com.evil.app")
	base := r.server.VM().GlobalRefCount()
	for i := 0; i < 3; i++ {
		if err := c.Register("addPrimaryClipChangedListener"); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 3; i++ {
		if err := c.Unregister("addPrimaryClipChangedListener"); err != nil {
			t.Fatal(err)
		}
	}
	if got := r.svc.EntryCount("addPrimaryClipChangedListener"); got != 0 {
		t.Fatalf("EntryCount = %d, want 0", got)
	}
	if got := r.server.VM().GlobalRefCount(); got != base {
		t.Fatalf("server JGR = %d, want %d", got, base)
	}
	if err := c.Unregister("addPrimaryClipChangedListener"); !errors.Is(err, ErrNoEntry) {
		t.Fatalf("extra unregister error = %v, want ErrNoEntry", err)
	}
}

func TestCallerDeathReleasesEntries(t *testing.T) {
	r := newSvcRig(t, "clipboard", art.Config{})
	c := r.client(t, "com.evil.app")
	for i := 0; i < 4; i++ {
		if err := c.Register("addPrimaryClipChangedListener"); err != nil {
			t.Fatal(err)
		}
	}
	r.k.Kill(r.app.Pid(), "exit")
	if got := r.svc.EntryCount("addPrimaryClipChangedListener"); got != 0 {
		t.Fatalf("entries after caller death = %d, want 0", got)
	}
	if got := r.server.VM().GlobalRefCount(); got != 0 {
		t.Fatalf("server JGR after caller death = %d, want 0", got)
	}
}

func TestPermissionEnforced(t *testing.T) {
	r := newSvcRig(t, "telephony.registry", art.Config{})
	c := r.client(t, "com.evil.app")
	err := c.Register("listenForSubscriber")
	var de *permissions.DeniedError
	if !errors.As(err, &de) {
		t.Fatalf("ungranted call error = %v, want DeniedError", err)
	}
	if r.svc.EntryCount("listenForSubscriber") != 0 {
		t.Fatal("denied call still registered an entry")
	}
	if err := r.perms.Grant(r.app.Uid(), "READ_PHONE_STATE"); err != nil {
		t.Fatal(err)
	}
	if err := c.Register("listenForSubscriber"); err != nil {
		t.Fatalf("granted call failed: %v", err)
	}
}

func TestPerProcessGuardHolds(t *testing.T) {
	r := newSvcRig(t, "input", art.Config{})
	c := r.client(t, "com.evil.app")
	// registerInputDevicesChangedListener has GuardLimit 1, keyed on the
	// kernel-reported pid — unspoofable.
	if err := c.Register("registerInputDevicesChangedListener"); err != nil {
		t.Fatal(err)
	}
	err := c.Register("registerInputDevicesChangedListener")
	if !errors.Is(err, ErrQuotaExceeded) {
		t.Fatalf("second register error = %v, want ErrQuotaExceeded", err)
	}
	// Spoofing the package string does not help: the guard keys on pid.
	if err := c.RegisterAs("registerInputDevicesChangedListener", "android", c.NewToken()); !errors.Is(err, ErrQuotaExceeded) {
		t.Fatalf("spoofed register error = %v, want ErrQuotaExceeded", err)
	}
	if got := r.svc.EntryCount("registerInputDevicesChangedListener"); got != 1 {
		t.Fatalf("entries = %d, want 1", got)
	}
}

func TestEnqueueToastQuotaAndBypass(t *testing.T) {
	r := newSvcRig(t, "notification", art.Config{})
	c := r.client(t, "com.evil.app")
	spec, _ := catalog.InterfaceByName("notification.enqueueToast")

	// Honest package name: capped at GuardLimit.
	for i := 0; i < spec.GuardLimit; i++ {
		if err := c.Register("enqueueToast"); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Register("enqueueToast"); !errors.Is(err, ErrQuotaExceeded) {
		t.Fatalf("over-quota error = %v, want ErrQuotaExceeded", err)
	}
	// The Code-Snippet 3 bypass: claim to be "android".
	for i := 0; i < 3*spec.GuardLimit; i++ {
		if err := c.RegisterAs("enqueueToast", "android", c.NewToken()); err != nil {
			t.Fatalf("spoofed toast %d failed: %v", i, err)
		}
	}
	if got := r.svc.EntryCount("enqueueToast"); got != 4*spec.GuardLimit {
		t.Fatalf("entries = %d, want %d", got, 4*spec.GuardLimit)
	}
}

func TestHelperGuardIsClientSideOnly(t *testing.T) {
	r := newSvcRig(t, "wifi", art.Config{})
	r.perms.Grant(r.app.Uid(), "WAKE_LOCK")
	c := r.client(t, "com.evil.app")
	spec, _ := catalog.InterfaceByName("wifi.acquireWifiLock")

	// Through the helper: capped at MAX_ACTIVE_LOCKS = 50.
	h := NewHelper(c, spec)
	for i := 0; i < spec.GuardLimit; i++ {
		if err := h.Acquire(); err != nil {
			t.Fatal(err)
		}
	}
	err := h.Acquire()
	if err == nil || !strings.Contains(err.Error(), "maximum number") {
		t.Fatalf("helper over-limit error = %v", err)
	}
	if got := r.svc.EntryCount("acquireWifiLock"); got != spec.GuardLimit {
		t.Fatalf("service entries = %d, want %d (helper released the extra)", got, spec.GuardLimit)
	}

	// Bypassing the helper: the service itself never checks.
	for i := 0; i < 100; i++ {
		if err := c.Register("acquireWifiLock"); err != nil {
			t.Fatalf("direct register %d failed: %v", i, err)
		}
	}
	if got := r.svc.EntryCount("acquireWifiLock"); got != spec.GuardLimit+100 {
		t.Fatalf("service entries = %d, want %d", got, spec.GuardLimit+100)
	}
}

func TestHelperRelease(t *testing.T) {
	r := newSvcRig(t, "wifi", art.Config{})
	r.perms.Grant(r.app.Uid(), "WAKE_LOCK")
	c := r.client(t, "com.evil.app")
	spec, _ := catalog.InterfaceByName("wifi.acquireWifiLock")
	h := NewHelper(c, spec)
	if err := h.Acquire(); err != nil {
		t.Fatal(err)
	}
	if err := h.Release(); err != nil {
		t.Fatal(err)
	}
	if h.Active() != 0 {
		t.Fatalf("Active = %d, want 0", h.Active())
	}
	if err := h.Release(); !errors.Is(err, ErrNoEntry) {
		t.Fatalf("empty release error = %v", err)
	}
}

func TestInnocentBehavioursLeaveNoResidue(t *testing.T) {
	r := newSvcRig(t, "clipboard", art.Config{})
	c := r.client(t, "com.benign.app")
	base := r.server.VM().GlobalRefCount()
	for _, m := range []string{"getState", "startTask", "checkAccess", "noteEvent"} {
		for i := 0; i < 10; i++ {
			if err := c.Call(m); err != nil {
				t.Fatalf("%s: %v", m, err)
			}
		}
	}
	r.server.VM().GC()
	if got := r.server.VM().GlobalRefCount(); got != base {
		t.Fatalf("JGR after innocent calls + GC = %d, want %d", got, base)
	}
}

func TestMemberOverwriteIsBounded(t *testing.T) {
	r := newSvcRig(t, "clipboard", art.Config{})
	c := r.client(t, "com.benign.app")
	base := r.server.VM().GlobalRefCount()
	for i := 0; i < 50; i++ {
		if err := c.Call("setSingleCallback"); err != nil {
			t.Fatal(err)
		}
	}
	r.server.VM().GC()
	// One retained slot (proxy + death recipient), regardless of calls.
	if got := r.server.VM().GlobalRefCount(); got != base+2 {
		t.Fatalf("JGR after 50 overwrites = %d, want %d", got, base+2)
	}
}

func TestExhaustionThroughGenericService(t *testing.T) {
	r := newSvcRig(t, "audio", art.Config{MaxGlobalRefs: 120})
	c := r.client(t, "com.evil.app")
	calls := 0
	for r.server.Alive() {
		if err := c.Register("startWatchingRoutes"); err != nil && !r.server.Alive() {
			break
		}
		if calls++; calls > 200 {
			t.Fatal("server survived beyond its cap")
		}
	}
	if r.k.SoftReboots() != 1 {
		t.Fatalf("SoftReboots = %d, want 1", r.k.SoftReboots())
	}
}

func TestExecCostAdvancesClock(t *testing.T) {
	r := newSvcRig(t, "audio", art.Config{})
	c := r.client(t, "com.evil.app")
	spec, _ := catalog.InterfaceByName("audio.startWatchingRoutes")

	t0 := r.clock.Now()
	if err := c.Register("startWatchingRoutes"); err != nil {
		t.Fatal(err)
	}
	elapsed := r.clock.Now() - t0
	min := spec.Cost.ExecBase
	max := spec.Cost.ExecBase + spec.Cost.Jitter + time.Millisecond // + driver latency
	if elapsed < min || elapsed > max {
		t.Fatalf("call took %v, want within [%v, %v]", elapsed, min, max)
	}
}

func TestFig5CostGrowsWithEntries(t *testing.T) {
	r := newSvcRig(t, "telephony.registry", art.Config{})
	r.perms.Grant(r.app.Uid(), "READ_PHONE_STATE")
	c := r.client(t, "com.evil.app")

	measure := func() time.Duration {
		t0 := r.clock.Now()
		if err := c.Register("listenForSubscriber"); err != nil {
			t.Fatal(err)
		}
		return r.clock.Now() - t0
	}
	early := measure()
	for i := 0; i < 2000; i++ {
		c.Register("listenForSubscriber")
	}
	late := measure()
	if late <= early+time.Millisecond {
		t.Fatalf("per-call cost did not grow: early=%v late=%v", early, late)
	}
}

func TestMethodNameRoundTrip(t *testing.T) {
	r := newSvcRig(t, "midi", art.Config{})
	for _, name := range r.svc.MethodNames() {
		code, ok := r.svc.Code(name)
		if !ok {
			t.Fatalf("Code(%q) missing", name)
		}
		back, ok := r.svc.MethodName(code)
		if !ok || back != name {
			t.Fatalf("MethodName(%d) = %q, want %q", code, back, name)
		}
	}
	// midi: 4 catalogued + 4 unregister + 5 innocent.
	if got := len(r.svc.MethodNames()); got != 13 {
		t.Fatalf("method count = %d, want 13", got)
	}
}

func TestUnknownCodeRejected(t *testing.T) {
	r := newSvcRig(t, "midi", art.Config{})
	svcRef, err := r.sm.GetService("midi", r.app)
	if err != nil {
		t.Fatal(err)
	}
	err = svcRef.Binder().Transact(9999, binder.NewParcel(), binder.NewParcel())
	if !errors.Is(err, ErrNoSuchMethod) {
		t.Fatalf("error = %v, want ErrNoSuchMethod", err)
	}
}

func TestCodeForMatchesEngine(t *testing.T) {
	r := newSvcRig(t, "wifi", art.Config{})
	for _, name := range r.svc.MethodNames() {
		want, _ := r.svc.Code(name)
		got, ok := CodeFor("wifi", name)
		if !ok || got != want {
			t.Fatalf("CodeFor(wifi, %s) = %d, engine says %d", name, got, want)
		}
	}
}

func TestBootRefsPinBaseline(t *testing.T) {
	clock := simclock.New()
	k := kernel.New(clock, kernel.Config{})
	d := binder.New(k, binder.Config{})
	sm := binder.NewServiceManager(d)
	perms := permissions.NewManager()
	server := k.Spawn(kernel.SpawnConfig{Name: kernel.SystemServerName, Uid: kernel.SystemUid, OomScoreAdj: kernel.SystemAdj})
	meta, _ := catalog.ServiceByName("clipboard")
	if _, err := New(Config{
		Meta: meta, Host: server, Driver: d, Clock: clock, Perms: perms, ExtraBootRefs: 17,
	}, sm); err != nil {
		t.Fatal(err)
	}
	if got := server.VM().GlobalRefCount(); got != 17 {
		t.Fatalf("boot JGR = %d, want 17", got)
	}
}

func TestPathVariantShiftsDelay(t *testing.T) {
	r := newSvcRig(t, "audio", art.Config{})
	c := r.client(t, "com.evil.app")

	measure := func(variant int32) time.Duration {
		t0 := r.clock.Now()
		if err := c.RegisterPath("startWatchingRoutes", "com.evil.app", variant, c.NewToken()); err != nil {
			t.Fatal(err)
		}
		return r.clock.Now() - t0
	}
	base := measure(0)
	shifted := measure(2)
	// Variant 2 adds 2×PathShift of pre-JGR execution time.
	if shifted < base+PathShift || shifted > base+3*PathShift {
		t.Fatalf("variant delay shift = %v - %v, want ≈ %v", shifted, base, 2*PathShift)
	}
	// Both calls still register entries.
	if got := r.svc.EntryCount("startWatchingRoutes"); got != 2 {
		t.Fatalf("entries = %d, want 2", got)
	}
}

func TestPathVariantRejectsOutOfRange(t *testing.T) {
	r := newSvcRig(t, "audio", art.Config{})
	c := r.client(t, "com.evil.app")
	if err := c.RegisterPath("startWatchingRoutes", "com.evil.app", 99, c.NewToken()); err == nil {
		t.Fatal("out-of-range variant accepted")
	}
}

// TestNotifyListenersRoundTrip registers real callback stubs (not mere
// tokens) and checks the service can deliver events back to them — the
// listener pattern working in its intended direction.
func TestNotifyListenersRoundTrip(t *testing.T) {
	r := newSvcRig(t, "clipboard", art.Config{})
	c := r.client(t, "com.listener.app")

	var got []string
	cb := r.d.NewLocalBinder(r.app, "ClipChangedCallback", binder.TransactorFunc(func(call *binder.Call) error {
		s, err := call.Data.ReadString()
		if err != nil {
			return err
		}
		got = append(got, s)
		return nil
	}))
	if err := c.RegisterToken("addPrimaryClipChangedListener", cb); err != nil {
		t.Fatal(err)
	}
	// A second registration with a dumb token: delivery must skip it.
	if err := c.Register("addPrimaryClipChangedListener"); err != nil {
		t.Fatal(err)
	}
	if n := r.svc.NotifyListeners("addPrimaryClipChangedListener", "clip changed"); n != 1 {
		t.Fatalf("delivered = %d, want 1", n)
	}
	if len(got) != 1 || got[0] != "clip changed" {
		t.Fatalf("callback got %v", got)
	}
	// Dead client: delivery cleanly skips (death recipient already
	// removed the entries).
	r.k.Kill(r.app.Pid(), "gone")
	if n := r.svc.NotifyListeners("addPrimaryClipChangedListener", "x"); n != 0 {
		t.Fatalf("delivered to dead client: %d", n)
	}
}
