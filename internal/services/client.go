package services

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/binder"
	"repro/internal/catalog"
	"repro/internal/kernel"
)

// ErrRetryExhausted reports that a transaction kept hitting dead
// handles past its retry deadline. It deliberately does NOT wrap
// binder.ErrDeadObject: workload actors treat a dead object as a
// permanent stop, while an exhausted retry is a recoverable outage the
// restart-aware actors handle themselves.
var ErrRetryExhausted = errors.New("services: transaction retry deadline exceeded")

// RetryPolicy makes a client survive service restarts: a transaction
// failing with binder.ErrDeadObject is retried — re-resolving the
// service through the ServiceManager each attempt — with exponential
// backoff until the per-call Deadline of virtual time is spent. The
// zero value disables retry entirely (the pre-chaos behaviour).
type RetryPolicy struct {
	// Deadline bounds the total virtual time one call may spend
	// retrying. 0 disables retry.
	Deadline time.Duration
	// Backoff is the first retry delay; it doubles per attempt.
	// 0 with a non-zero Deadline defaults to 10ms.
	Backoff time.Duration
}

// Client is an app-side handle on a catalogued system service: the app's
// retained proxy plus the compiled-in transaction-code table. It is the
// *raw* binder interface — what a malicious app uses to bypass helper
// classes (Code-Snippet 2 builds exactly this against "wifi").
type Client struct {
	serviceName string
	proc        *kernel.Process
	driver      *binder.Driver
	sm          *binder.ServiceManager
	ref         *binder.BinderRef
	codes       map[string]binder.TxCode
	pkg         string
	retry       RetryPolicy
	retries     int
}

// NewClient looks the service up in the ServiceManager on behalf of proc.
// pkg is the caller's package name, passed as the first argument of every
// call (and spoofable — nothing verifies it, which is the enqueueToast
// hole).
func NewClient(sm *binder.ServiceManager, d *binder.Driver, proc *kernel.Process, pkg, serviceName string) (*Client, error) {
	ref, err := sm.GetService(serviceName, proc)
	if err != nil {
		return nil, err
	}
	return &Client{
		serviceName: serviceName,
		proc:        proc,
		driver:      d,
		sm:          sm,
		ref:         ref,
		codes:       MethodCodes(catalog.InterfacesForService(serviceName)),
		pkg:         pkg,
	}, nil
}

// SetRetry installs (or clears, with the zero value) the client's
// dead-handle retry policy.
func (c *Client) SetRetry(p RetryPolicy) { c.retry = p }

// Retries returns how many dead-handle retries the client has burned
// across all calls.
func (c *Client) Retries() int { return c.retries }

// transact sends one transaction through the retained proxy, applying
// the retry policy on dead handles. The binder driver checks liveness
// before consuming parcels, so a failed attempt leaves data/reply intact
// for verbatim re-submission. Each retry advances the virtual clock by
// the current backoff and re-resolves the service, picking up the
// supervisor's replacement stub once it re-registers.
func (c *Client) transact(code binder.TxCode, data, reply *binder.Parcel) error {
	err := c.ref.Binder().Transact(code, data, reply)
	if err == nil || !errors.Is(err, binder.ErrDeadObject) || c.retry.Deadline <= 0 {
		return err
	}
	clock := c.driver.Kernel().Clock()
	deadline := clock.Now() + c.retry.Deadline
	backoff := c.retry.Backoff
	if backoff <= 0 {
		backoff = 10 * time.Millisecond
	}
	for {
		if clock.Now()+backoff > deadline {
			return fmt.Errorf("%w: %s after %d retries", ErrRetryExhausted, c.serviceName, c.retries)
		}
		clock.Advance(backoff)
		backoff *= 2
		c.retries++
		ref, rerr := c.sm.GetService(c.serviceName, c.proc)
		if rerr != nil {
			// Service not re-registered yet: burn the backoff and try
			// again within the deadline.
			continue
		}
		c.ref.Release()
		c.ref = ref
		if err = c.ref.Binder().Transact(code, data, reply); err == nil || !errors.Is(err, binder.ErrDeadObject) {
			return err
		}
	}
}

// ServiceName returns the target service's registry name.
func (c *Client) ServiceName() string { return c.serviceName }

// Proc returns the calling process.
func (c *Client) Proc() *kernel.Process { return c.proc }

// code resolves a method name.
func (c *Client) code(method string) (binder.TxCode, error) {
	code, ok := c.codes[method]
	if !ok {
		return 0, fmt.Errorf("services: %s has no method %q", c.serviceName, method)
	}
	return code, nil
}

// NewToken mints a fresh Binder token owned by the calling process — the
// `new Binder()` of the attack loop.
func (c *Client) NewToken() *binder.LocalBinder {
	return c.driver.NewLocalBinder(c.proc, "android.os.Binder", nil)
}

// Register invokes a retaining method with a fresh token, using the
// client's own package name.
func (c *Client) Register(method string) error {
	return c.RegisterAs(method, c.pkg, c.NewToken())
}

// RegisterToken invokes a retaining method with the given token.
func (c *Client) RegisterToken(method string, token binder.IBinder) error {
	return c.RegisterAs(method, c.pkg, token)
}

// RegisterAs invokes a retaining method claiming the given package name —
// the spoofing primitive behind the enqueueToast bypass ("android").
func (c *Client) RegisterAs(method, pkg string, token binder.IBinder) error {
	code, err := c.code(method)
	if err != nil {
		return err
	}
	data, reply := binder.ObtainParcel(), binder.ObtainParcel()
	defer data.Recycle()
	defer reply.Recycle()
	data.WriteString(pkg)
	data.WriteStrongBinder(token)
	return c.transact(code, data, reply)
}

// RegisterPath invokes a retaining method selecting an execution-path
// variant (paper §VI's multi-path attack primitive). The variant rides as
// an int32 between the package name and the callback binder and also
// changes the transaction size, which is what lets the defender classify
// calls by code path.
func (c *Client) RegisterPath(method, pkg string, variant int32, token binder.IBinder) error {
	code, err := c.code(method)
	if err != nil {
		return err
	}
	data, reply := binder.ObtainParcel(), binder.ObtainParcel()
	defer data.Recycle()
	defer reply.Recycle()
	data.WriteString(pkg)
	data.WriteInt32(variant)
	// Path-dependent extra payload: different branches marshal different
	// argument structures.
	data.WriteBytes(make([]byte, int(variant)*64))
	data.WriteStrongBinder(token)
	return c.transact(code, data, reply)
}

// Unregister releases the caller's oldest registration on method.
func (c *Client) Unregister(method string) error {
	code, err := c.code(UnregisterPrefix + method)
	if err != nil {
		return err
	}
	data, reply := binder.ObtainParcel(), binder.ObtainParcel()
	defer data.Recycle()
	defer reply.Recycle()
	data.WriteString(c.pkg)
	return c.transact(code, data, reply)
}

// Call invokes a non-retaining method. Methods that read a binder
// argument (local-use, read-only) receive a fresh token.
func (c *Client) Call(method string) error {
	code, err := c.code(method)
	if err != nil {
		return err
	}
	data, reply := binder.ObtainParcel(), binder.ObtainParcel()
	defer data.Recycle()
	defer reply.Recycle()
	data.WriteString(c.pkg)
	data.WriteStrongBinder(c.NewToken())
	return c.transact(code, data, reply)
}

// Close releases the client's proxy on the service.
func (c *Client) Close() { c.ref.Release() }

// Helper is a service helper class (Table II): the developer-friendly
// wrapper that encapsulates the raw interface AND carries Android's only
// guard for nine vulnerable interfaces — a client-side quota. Because the
// quota executes in the app's own process, it protects against
// *accidental* exhaustion only; a malicious app simply skips the helper
// (paper §IV-C1).
type Helper struct {
	client *Client
	iface  catalog.Interface
	active int
}

// NewHelper wraps client with the helper guard of the catalogued
// interface. It panics if the interface is not helper-guarded: that would
// be a misuse of the API, not a runtime condition.
func NewHelper(client *Client, iface catalog.Interface) *Helper {
	if iface.Protection != catalog.HelperGuard {
		panic(fmt.Sprintf("services: %s is not helper-guarded", iface.FullName()))
	}
	if iface.Service != client.ServiceName() {
		panic(fmt.Sprintf("services: helper for %s wrapping client of %s", iface.FullName(), client.ServiceName()))
	}
	return &Helper{client: client, iface: iface}
}

// Acquire performs the guarded registration. Mirroring Code-Snippet 1
// (WifiManager.acquire), the helper first issues the IPC and only then
// checks its local count, releasing and failing once MAX_ACTIVE_LOCKS is
// exceeded.
func (h *Helper) Acquire() error {
	if err := h.client.Register(h.iface.Method); err != nil {
		return err
	}
	h.active++
	if h.active > h.iface.GuardLimit {
		// Release what we just acquired and refuse, exactly as
		// WifiManager throws after mService.releaseWifiLock(mBinder).
		if err := h.client.Unregister(h.iface.Method); err != nil {
			return err
		}
		h.active--
		return fmt.Errorf("services: exceeded maximum number of %s locks (%d)",
			h.iface.Service, h.iface.GuardLimit)
	}
	return nil
}

// Release undoes one registration.
func (h *Helper) Release() error {
	if h.active == 0 {
		return ErrNoEntry
	}
	if err := h.client.Unregister(h.iface.Method); err != nil {
		return err
	}
	h.active--
	return nil
}

// Active returns the helper-tracked registration count.
func (h *Helper) Active() int { return h.active }
