package services

import (
	"fmt"

	"repro/internal/binder"
	"repro/internal/catalog"
	"repro/internal/kernel"
)

// Client is an app-side handle on a catalogued system service: the app's
// retained proxy plus the compiled-in transaction-code table. It is the
// *raw* binder interface — what a malicious app uses to bypass helper
// classes (Code-Snippet 2 builds exactly this against "wifi").
type Client struct {
	serviceName string
	proc        *kernel.Process
	driver      *binder.Driver
	ref         *binder.BinderRef
	codes       map[string]binder.TxCode
	pkg         string
}

// NewClient looks the service up in the ServiceManager on behalf of proc.
// pkg is the caller's package name, passed as the first argument of every
// call (and spoofable — nothing verifies it, which is the enqueueToast
// hole).
func NewClient(sm *binder.ServiceManager, d *binder.Driver, proc *kernel.Process, pkg, serviceName string) (*Client, error) {
	ref, err := sm.GetService(serviceName, proc)
	if err != nil {
		return nil, err
	}
	return &Client{
		serviceName: serviceName,
		proc:        proc,
		driver:      d,
		ref:         ref,
		codes:       MethodCodes(catalog.InterfacesForService(serviceName)),
		pkg:         pkg,
	}, nil
}

// ServiceName returns the target service's registry name.
func (c *Client) ServiceName() string { return c.serviceName }

// Proc returns the calling process.
func (c *Client) Proc() *kernel.Process { return c.proc }

// code resolves a method name.
func (c *Client) code(method string) (binder.TxCode, error) {
	code, ok := c.codes[method]
	if !ok {
		return 0, fmt.Errorf("services: %s has no method %q", c.serviceName, method)
	}
	return code, nil
}

// NewToken mints a fresh Binder token owned by the calling process — the
// `new Binder()` of the attack loop.
func (c *Client) NewToken() *binder.LocalBinder {
	return c.driver.NewLocalBinder(c.proc, "android.os.Binder", nil)
}

// Register invokes a retaining method with a fresh token, using the
// client's own package name.
func (c *Client) Register(method string) error {
	return c.RegisterAs(method, c.pkg, c.NewToken())
}

// RegisterToken invokes a retaining method with the given token.
func (c *Client) RegisterToken(method string, token binder.IBinder) error {
	return c.RegisterAs(method, c.pkg, token)
}

// RegisterAs invokes a retaining method claiming the given package name —
// the spoofing primitive behind the enqueueToast bypass ("android").
func (c *Client) RegisterAs(method, pkg string, token binder.IBinder) error {
	code, err := c.code(method)
	if err != nil {
		return err
	}
	data, reply := binder.ObtainParcel(), binder.ObtainParcel()
	defer data.Recycle()
	defer reply.Recycle()
	data.WriteString(pkg)
	data.WriteStrongBinder(token)
	return c.ref.Binder().Transact(code, data, reply)
}

// RegisterPath invokes a retaining method selecting an execution-path
// variant (paper §VI's multi-path attack primitive). The variant rides as
// an int32 between the package name and the callback binder and also
// changes the transaction size, which is what lets the defender classify
// calls by code path.
func (c *Client) RegisterPath(method, pkg string, variant int32, token binder.IBinder) error {
	code, err := c.code(method)
	if err != nil {
		return err
	}
	data, reply := binder.ObtainParcel(), binder.ObtainParcel()
	defer data.Recycle()
	defer reply.Recycle()
	data.WriteString(pkg)
	data.WriteInt32(variant)
	// Path-dependent extra payload: different branches marshal different
	// argument structures.
	data.WriteBytes(make([]byte, int(variant)*64))
	data.WriteStrongBinder(token)
	return c.ref.Binder().Transact(code, data, reply)
}

// Unregister releases the caller's oldest registration on method.
func (c *Client) Unregister(method string) error {
	code, err := c.code(UnregisterPrefix + method)
	if err != nil {
		return err
	}
	data, reply := binder.ObtainParcel(), binder.ObtainParcel()
	defer data.Recycle()
	defer reply.Recycle()
	data.WriteString(c.pkg)
	return c.ref.Binder().Transact(code, data, reply)
}

// Call invokes a non-retaining method. Methods that read a binder
// argument (local-use, read-only) receive a fresh token.
func (c *Client) Call(method string) error {
	code, err := c.code(method)
	if err != nil {
		return err
	}
	data, reply := binder.ObtainParcel(), binder.ObtainParcel()
	defer data.Recycle()
	defer reply.Recycle()
	data.WriteString(c.pkg)
	data.WriteStrongBinder(c.NewToken())
	return c.ref.Binder().Transact(code, data, reply)
}

// Close releases the client's proxy on the service.
func (c *Client) Close() { c.ref.Release() }

// Helper is a service helper class (Table II): the developer-friendly
// wrapper that encapsulates the raw interface AND carries Android's only
// guard for nine vulnerable interfaces — a client-side quota. Because the
// quota executes in the app's own process, it protects against
// *accidental* exhaustion only; a malicious app simply skips the helper
// (paper §IV-C1).
type Helper struct {
	client *Client
	iface  catalog.Interface
	active int
}

// NewHelper wraps client with the helper guard of the catalogued
// interface. It panics if the interface is not helper-guarded: that would
// be a misuse of the API, not a runtime condition.
func NewHelper(client *Client, iface catalog.Interface) *Helper {
	if iface.Protection != catalog.HelperGuard {
		panic(fmt.Sprintf("services: %s is not helper-guarded", iface.FullName()))
	}
	if iface.Service != client.ServiceName() {
		panic(fmt.Sprintf("services: helper for %s wrapping client of %s", iface.FullName(), client.ServiceName()))
	}
	return &Helper{client: client, iface: iface}
}

// Acquire performs the guarded registration. Mirroring Code-Snippet 1
// (WifiManager.acquire), the helper first issues the IPC and only then
// checks its local count, releasing and failing once MAX_ACTIVE_LOCKS is
// exceeded.
func (h *Helper) Acquire() error {
	if err := h.client.Register(h.iface.Method); err != nil {
		return err
	}
	h.active++
	if h.active > h.iface.GuardLimit {
		// Release what we just acquired and refuse, exactly as
		// WifiManager throws after mService.releaseWifiLock(mBinder).
		if err := h.client.Unregister(h.iface.Method); err != nil {
			return err
		}
		h.active--
		return fmt.Errorf("services: exceeded maximum number of %s locks (%d)",
			h.iface.Service, h.iface.GuardLimit)
	}
	return nil
}

// Release undoes one registration.
func (h *Helper) Release() error {
	if h.active == 0 {
		return ErrNoEntry
	}
	if err := h.client.Unregister(h.iface.Method); err != nil {
		return err
	}
	h.active--
	return nil
}

// Active returns the helper-tracked registration count.
func (h *Helper) Active() int { return h.active }
