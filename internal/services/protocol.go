package services

import (
	"sort"

	"repro/internal/binder"
	"repro/internal/catalog"
)

// MethodCodes computes the transaction-code table for a service exposing
// the given catalogued interfaces: the catalogued methods, their generated
// unregister pairs, and the fixed innocent set, numbered 1..n in sorted
// name order. The assignment is a pure function of the catalog, so clients
// (whose stubs would be compiled from the same AIDL in real Android) can
// derive codes without talking to the service.
func MethodCodes(ifaces []catalog.Interface) map[string]binder.TxCode {
	names := MethodNamesFor(ifaces)
	codes := make(map[string]binder.TxCode, len(names))
	for i, n := range names {
		codes[n] = binder.TxCode(i + 1)
	}
	return codes
}

// MethodNamesFor returns the sorted dispatchable method names for a
// service exposing the given catalogued interfaces.
func MethodNamesFor(ifaces []catalog.Interface) []string {
	seen := make(map[string]bool)
	var names []string
	add := func(n string) {
		if !seen[n] {
			seen[n] = true
			names = append(names, n)
		}
	}
	for _, spec := range ifaces {
		add(spec.Method)
	}
	for _, spec := range ifaces {
		add(UnregisterPrefix + spec.Method)
	}
	for _, in := range InnocentMethods {
		add(in.Name)
	}
	sort.Strings(names)
	return names
}

// CodeFor returns the transaction code of method on the named (catalogued)
// service.
func CodeFor(serviceName, method string) (binder.TxCode, bool) {
	codes := MethodCodes(catalog.InterfacesForService(serviceName))
	c, ok := codes[method]
	return c, ok
}
