package telemetry

import "sync"

var (
	globalMu  sync.Mutex
	globalReg *Registry
)

// Global returns the process-wide registry shared by cross-device
// machinery: the parallel experiment engine's worker pool, the binder
// parcel/call pools, anything that outlives a single simulated device.
// Per-device metrics live on each device's own registry instead (see
// device.Boot), so two devices in one process never alias series.
func Global() *Registry {
	globalMu.Lock()
	defer globalMu.Unlock()
	if globalReg == nil {
		globalReg = NewRegistry()
	}
	return globalReg
}

// ResetGlobal replaces the process-global registry with a fresh one and
// returns it. Tests use this to isolate global-series assertions; the
// scenario runner uses it so `-metrics-json` exports only the sweep it
// ran, not counters left over from a previous command in the same
// process.
func ResetGlobal() *Registry {
	globalMu.Lock()
	defer globalMu.Unlock()
	globalReg = NewRegistry()
	return globalReg
}
