package telemetry

import (
	"math"
	"testing"
	"time"
)

func TestSamplerTicks(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("jgre_tx_total", "tx")
	s := NewSampler(r, time.Second, 8)
	s.Track("jgre_tx_total")

	if !s.MaybeSample(0) {
		t.Fatal("first call must prime a sample at t=0")
	}
	c.Add(10)
	if s.MaybeSample(500 * time.Millisecond) {
		t.Fatal("sampled inside the interval")
	}
	if !s.MaybeSample(time.Second) {
		t.Fatal("did not sample at the tick boundary")
	}
	c.Add(5)
	// A big virtual-time jump takes one snapshot at now, not backfill.
	if !s.MaybeSample(10 * time.Second) {
		t.Fatal("did not sample after multi-interval jump")
	}
	got := s.Series("jgre_tx_total")
	want := []Sample{{0, 0}, {time.Second, 10}, {10 * time.Second, 15}}
	if len(got) != len(want) {
		t.Fatalf("series = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sample[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	if vals := s.Values("jgre_tx_total"); len(vals) != 3 || vals[2] != 15 {
		t.Fatalf("Values = %v", vals)
	}
}

func TestSamplerRingWrap(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("jgre_g", "g")
	s := NewSampler(r, time.Second, 3)
	s.Track("jgre_g")
	for i := 0; i < 5; i++ {
		g.Set(float64(i))
		s.MaybeSample(time.Duration(i) * time.Second)
	}
	got := s.Values("jgre_g")
	want := []float64{2, 3, 4}
	if len(got) != len(want) {
		t.Fatalf("Values = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Values = %v, want %v", got, want)
		}
	}
}

func TestSamplerUnknownAndNaNSeries(t *testing.T) {
	r := NewRegistry()
	r.GaugeFunc("jgre_nan", "nan", func() float64 { return math.NaN() })
	s := NewSampler(r, 0, 0) // defaults
	if s.Interval() != time.Second {
		t.Fatalf("default interval = %v", s.Interval())
	}
	s.Track("jgre_notyet", "jgre_nan")
	s.Track("jgre_notyet") // duplicate track is a no-op
	if got := s.Tracked(); len(got) != 2 {
		t.Fatalf("Tracked = %v", got)
	}
	s.MaybeSample(0)
	if got := s.Series("jgre_notyet"); len(got) != 0 {
		t.Fatalf("unknown series produced samples: %v", got)
	}
	if got := s.Series("jgre_nan"); len(got) != 0 {
		t.Fatalf("NaN samples recorded: %v", got)
	}
	if s.Series("jgre_untracked") != nil {
		t.Fatal("untracked series returned non-nil")
	}
	// The series registers later and starts sampling.
	r.Counter("jgre_notyet", "late").Add(4)
	s.MaybeSample(time.Second)
	if got := s.Values("jgre_notyet"); len(got) != 1 || got[0] != 4 {
		t.Fatalf("late-registered series = %v", got)
	}
}

func TestRate(t *testing.T) {
	if Rate(nil) != nil || Rate([]Sample{{0, 1}}) != nil {
		t.Fatal("Rate of short series must be nil")
	}
	samples := []Sample{
		{0, 0},
		{time.Second, 10},
		{3 * time.Second, 30},
		{3 * time.Second, 99}, // zero dt → zero rate, not a divide
	}
	got := Rate(samples)
	want := []float64{10, 10, 0}
	if len(got) != len(want) {
		t.Fatalf("Rate = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Rate = %v, want %v", got, want)
		}
	}
}
