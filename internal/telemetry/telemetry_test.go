package telemetry

import (
	"math"
	"strconv"
	"strings"
	"testing"
)

func TestCounter(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("jgre_test_total", "test counter")
	c.Inc()
	c.Add(41)
	if got := c.Value(); got != 42 {
		t.Fatalf("Value = %d, want 42", got)
	}
	// Same name returns the same handle.
	if r.Counter("jgre_test_total", "test counter").Value() != 42 {
		t.Fatal("re-lookup did not return the same counter")
	}
}

func TestGauge(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("jgre_test_gauge", "test gauge")
	g.Set(3.5)
	g.Add(-1.25)
	if got := g.Value(); got != 2.25 {
		t.Fatalf("Value = %v, want 2.25", got)
	}
}

func TestGaugeFuncReplace(t *testing.T) {
	r := NewRegistry()
	r.GaugeFunc("jgre_fn", "pull gauge", func() float64 { return 1 })
	if v, ok := r.Value("jgre_fn"); !ok || v != 1 {
		t.Fatalf("Value = %v,%v want 1,true", v, ok)
	}
	// Re-registering re-points the callback (soft-reboot semantics).
	r.GaugeFunc("jgre_fn", "pull gauge", func() float64 { return 7 })
	if v, _ := r.Value("jgre_fn"); v != 7 {
		t.Fatalf("after replace Value = %v, want 7", v)
	}
}

func TestHistogram(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("jgre_lat_seconds", "latency", []float64{1, 2, 4})
	for _, v := range []float64{0.5, 1, 1.5, 3, 100, math.NaN()} {
		h.Observe(v)
	}
	if got := h.Count(); got != 5 {
		t.Fatalf("Count = %d, want 5 (NaN dropped)", got)
	}
	if got := h.Sum(); got != 106 {
		t.Fatalf("Sum = %v, want 106", got)
	}
	wantBuckets := []uint64{2, 1, 1, 1} // ≤1, ≤2, ≤4, +Inf
	got := h.BucketCounts()
	if len(got) != len(wantBuckets) {
		t.Fatalf("BucketCounts len = %d, want %d", len(got), len(wantBuckets))
	}
	for i, w := range wantBuckets {
		if got[i] != w {
			t.Fatalf("bucket[%d] = %d, want %d (all: %v)", i, got[i], w, got)
		}
	}
	if b := h.Bounds(); len(b) != 3 || b[2] != 4 {
		t.Fatalf("Bounds = %v", b)
	}
}

func TestHistogramDefaultBounds(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("jgre_dur_seconds", "durations", nil)
	if got, want := len(h.Bounds()), len(DurationBuckets); got != want {
		t.Fatalf("default bounds len = %d, want %d", got, want)
	}
}

func TestRegistrationPanics(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		fn()
	}
	r := NewRegistry()
	r.Counter("jgre_a", "a")
	mustPanic("kind mismatch", func() { r.Gauge("jgre_a", "a") })
	mustPanic("empty name", func() { r.Counter("", "x") })
	mustPanic("non-ascending bounds", func() {
		r.Histogram("jgre_bad", "x", []float64{2, 1})
	})
}

func TestGaugeOverGaugeFuncTolerated(t *testing.T) {
	// Looking up a GaugeFunc name with Gauge must not panic (device code
	// probes by name), though the returned gauge is the placeholder.
	r := NewRegistry()
	r.GaugeFunc("jgre_fn2", "pull", func() float64 { return 9 })
	defer func() {
		if p := recover(); p != nil {
			t.Fatalf("unexpected panic: %v", p)
		}
	}()
	r.Gauge("jgre_fn2", "pull")
}

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		KindCounter:   "counter",
		KindGauge:     "gauge",
		KindGaugeFunc: "gauge",
		KindHistogram: "histogram",
		Kind(99):      "kind(99)",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", int(k), got, want)
		}
	}
}

func TestRenderProm(t *testing.T) {
	r := NewRegistry()
	r.Counter("jgre_tx_total", "transactions").Add(3)
	r.Gauge("jgre_occupancy", "ring occupancy").Set(0.5)
	r.GaugeFunc("jgre_pull", "pull gauge", func() float64 { return 2 })
	h := r.Histogram("jgre_lat_seconds", "latency", []float64{1, 2})
	h.Observe(0.5)
	h.Observe(1.5)
	h.Observe(9)
	// Labeled series of one family share HELP/TYPE headers.
	r.Counter(`jgre_kills_total{verdict="guilty"}`, "kills").Inc()
	r.Counter(`jgre_kills_total{verdict="innocent"}`, "kills")

	text := string(r.RenderProm())
	want := strings.Join([]string{
		`# HELP jgre_kills_total kills`,
		`# TYPE jgre_kills_total counter`,
		`jgre_kills_total{verdict="guilty"} 1`,
		`jgre_kills_total{verdict="innocent"} 0`,
		`# HELP jgre_lat_seconds latency`,
		`# TYPE jgre_lat_seconds histogram`,
		`jgre_lat_seconds_bucket{le="1"} 1`,
		`jgre_lat_seconds_bucket{le="2"} 2`,
		`jgre_lat_seconds_bucket{le="+Inf"} 3`,
		`jgre_lat_seconds_sum 11`,
		`jgre_lat_seconds_count 3`,
		`# HELP jgre_occupancy ring occupancy`,
		`# TYPE jgre_occupancy gauge`,
		`jgre_occupancy 0.5`,
		`# HELP jgre_pull pull gauge`,
		`# TYPE jgre_pull gauge`,
		`jgre_pull 2`,
		`# HELP jgre_tx_total transactions`,
		`# TYPE jgre_tx_total counter`,
		`jgre_tx_total 3`,
		``,
	}, "\n")
	if text != want {
		t.Fatalf("RenderProm mismatch:\ngot:\n%s\nwant:\n%s", text, want)
	}
	validatePromText(t, text)
}

func TestRenderPromNonFinite(t *testing.T) {
	r := NewRegistry()
	r.GaugeFunc("jgre_nan", "nan", func() float64 { return math.NaN() })
	r.GaugeFunc("jgre_pinf", "pinf", func() float64 { return math.Inf(1) })
	r.GaugeFunc("jgre_ninf", "ninf", func() float64 { return math.Inf(-1) })
	r.GaugeFunc("jgre_nilfn", "never set", nil)
	text := string(r.RenderProm())
	for _, want := range []string{"jgre_nan NaN\n", "jgre_pinf +Inf\n", "jgre_ninf -Inf\n", "jgre_nilfn NaN\n"} {
		if !strings.Contains(text, want) {
			t.Errorf("missing %q in:\n%s", want, text)
		}
	}
	validatePromText(t, text)
}

func TestRenderPromDeterministic(t *testing.T) {
	build := func() *Registry {
		r := NewRegistry()
		// Register in different orders; output must not care.
		names := []string{"jgre_c", "jgre_a", "jgre_b"}
		for _, n := range names {
			r.Counter(n, "x").Add(2)
		}
		return r
	}
	a := build()
	if string(a.RenderProm()) != string(a.RenderProm()) {
		t.Fatal("render is not idempotent")
	}
	if string(a.RenderProm()) != string(build().RenderProm()) {
		t.Fatal("identical registries rendered different bytes")
	}
	// Late registration after a render re-sorts correctly.
	a.Counter("jgre_0_first", "late").Inc()
	text := string(a.RenderProm())
	if !strings.HasPrefix(text, "# HELP jgre_0_first late\n") {
		t.Fatalf("late registration not re-sorted:\n%s", text)
	}
}

// validatePromText is a minimal checker for the text exposition format:
// every non-comment line is `<series> <value>`, the value parses as a
// float (NaN/±Inf included), and each sample's family has TYPE and HELP
// headers that precede it.
func validatePromText(t *testing.T, text string) {
	t.Helper()
	typed := map[string]bool{}
	for ln, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		if line == "" {
			t.Fatalf("line %d: empty line inside exposition", ln+1)
		}
		if strings.HasPrefix(line, "# HELP ") || strings.HasPrefix(line, "# TYPE ") {
			f := strings.Fields(line)
			if len(f) < 4 {
				t.Fatalf("line %d: malformed header %q", ln+1, line)
			}
			if f[1] == "TYPE" {
				switch f[3] {
				case "counter", "gauge", "histogram":
				default:
					t.Fatalf("line %d: bad TYPE %q", ln+1, f[3])
				}
				typed[f[2]] = true
			}
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("line %d: no value separator in %q", ln+1, line)
		}
		series, val := line[:sp], line[sp+1:]
		if _, err := strconv.ParseFloat(val, 64); err != nil {
			t.Fatalf("line %d: unparseable value %q: %v", ln+1, val, err)
		}
		fam := baseName(series)
		fam = strings.TrimSuffix(fam, "_bucket")
		fam = strings.TrimSuffix(fam, "_sum")
		fam = strings.TrimSuffix(fam, "_count")
		if !typed[fam] && !typed[baseName(series)] {
			t.Fatalf("line %d: sample %q has no preceding TYPE header", ln+1, series)
		}
	}
}

func TestSnapshotAndValue(t *testing.T) {
	r := NewRegistry()
	r.Counter("jgre_c_total", "c").Add(5)
	r.Gauge("jgre_g", "g").Set(1.5)
	r.GaugeFunc("jgre_f", "f", func() float64 { return 8 })
	r.GaugeFunc("jgre_f_nan", "f", func() float64 { return math.NaN() })
	h := r.Histogram(`jgre_h_seconds{phase="read"}`, "h", []float64{1})
	h.Observe(0.25)
	h.Observe(2)

	snap := r.Snapshot()
	want := map[string]float64{
		"jgre_c_total": 5,
		"jgre_g":       1.5,
		"jgre_f":       8,
		`jgre_h_seconds_count{phase="read"}`: 2,
		`jgre_h_seconds_sum{phase="read"}`:   2.25,
	}
	for k, wv := range want {
		if gv, ok := snap[k]; !ok || gv != wv {
			t.Errorf("snapshot[%q] = %v,%v want %v", k, gv, ok, wv)
		}
	}
	if _, ok := snap["jgre_f_nan"]; ok {
		t.Error("NaN gauge func leaked into snapshot")
	}

	if v, ok := r.Value("jgre_c_total"); !ok || v != 5 {
		t.Errorf("Value(counter) = %v,%v", v, ok)
	}
	if v, ok := r.Value(`jgre_h_seconds{phase="read"}`); !ok || v != 2 {
		t.Errorf("Value(histogram) = %v,%v want count 2", v, ok)
	}
	if _, ok := r.Value("jgre_missing"); ok {
		t.Error("Value(missing) reported ok")
	}
	names := r.Names()
	if len(names) != 5 {
		t.Fatalf("Names = %v", names)
	}
	for i := 1; i < len(names); i++ {
		if names[i] < names[i-1] {
			t.Fatalf("Names not sorted: %v", names)
		}
	}
}

func TestGlobalRegistry(t *testing.T) {
	g := ResetGlobal()
	if Global() != g {
		t.Fatal("Global() did not return the reset registry")
	}
	g.Counter("jgre_global_total", "x").Inc()
	g2 := ResetGlobal()
	if g2 == g {
		t.Fatal("ResetGlobal returned the old registry")
	}
	if _, ok := g2.Value("jgre_global_total"); ok {
		t.Fatal("reset registry kept old series")
	}
}

// TestHotPathAllocs pins the zero-alloc contract: recording into an
// already-registered instrument must not allocate.
func TestHotPathAllocs(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("jgre_allocs_total", "x")
	g := r.Gauge("jgre_allocs_g", "x")
	h := r.Histogram("jgre_allocs_h", "x", []float64{1, 2, 4, 8})
	if n := testing.AllocsPerRun(100, func() { c.Inc(); c.Add(2) }); n != 0 {
		t.Errorf("Counter allocs/op = %v, want 0", n)
	}
	if n := testing.AllocsPerRun(100, func() { g.Set(1); g.Add(0.5) }); n != 0 {
		t.Errorf("Gauge allocs/op = %v, want 0", n)
	}
	if n := testing.AllocsPerRun(100, func() { h.Observe(3) }); n != 0 {
		t.Errorf("Histogram allocs/op = %v, want 0", n)
	}
}
