package telemetry

import (
	"math"
	"time"
)

// Sample is one (virtual time, value) reading of a tracked series.
type Sample struct {
	T time.Duration
	V float64
}

// ring is a bounded sample buffer; older samples are overwritten.
type ring struct {
	buf   []Sample
	start int
	n     int
}

func (r *ring) push(s Sample) {
	if r.n < len(r.buf) {
		r.buf[(r.start+r.n)%len(r.buf)] = s
		r.n++
		return
	}
	r.buf[r.start] = s
	r.start = (r.start + 1) % len(r.buf)
}

func (r *ring) slice() []Sample {
	out := make([]Sample, r.n)
	for i := 0; i < r.n; i++ {
		out[i] = r.buf[(r.start+i)%len(r.buf)]
	}
	return out
}

// Sampler periodically snapshots selected registry series on the
// virtual clock, keeping a bounded history per series — the data source
// behind jgre-top's sparklines. It is pull-driven: the owner calls
// MaybeSample(now) from its scheduling loop, and the sampler takes one
// snapshot per elapsed tick boundary. Nothing here reads a wall clock or
// advances the virtual one, so attaching a sampler never perturbs a
// run's trajectory.
type Sampler struct {
	reg      *Registry
	interval time.Duration
	capacity int
	tracked  []string
	rings    map[string]*ring
	lastTick time.Duration
	primed   bool
}

// DefaultSampleCapacity bounds each tracked series' history.
const DefaultSampleCapacity = 240

// NewSampler creates a sampler over reg taking one snapshot per
// interval of virtual time (0 selects one second), holding up to
// capacity samples per series (0 selects DefaultSampleCapacity).
func NewSampler(reg *Registry, interval time.Duration, capacity int) *Sampler {
	if interval <= 0 {
		interval = time.Second
	}
	if capacity <= 0 {
		capacity = DefaultSampleCapacity
	}
	return &Sampler{
		reg:      reg,
		interval: interval,
		capacity: capacity,
		rings:    make(map[string]*ring),
	}
}

// Track adds series (by registry name) to the sampled set. Unknown
// names are tolerated — they start producing samples the moment the
// series registers.
func (s *Sampler) Track(names ...string) {
	for _, name := range names {
		if _, ok := s.rings[name]; ok {
			continue
		}
		s.tracked = append(s.tracked, name)
		s.rings[name] = &ring{buf: make([]Sample, s.capacity)}
	}
}

// Interval returns the virtual-time sampling period.
func (s *Sampler) Interval() time.Duration { return s.interval }

// MaybeSample snapshots every tracked series if now has crossed the next
// tick boundary, and reports whether a snapshot was taken. The virtual
// clock advances in jumps, so a single call can cover several elapsed
// intervals; one snapshot (at now) is taken for the whole jump — the
// sampler records the state that actually existed, not interpolations.
func (s *Sampler) MaybeSample(now time.Duration) bool {
	if s.primed && now < s.lastTick+s.interval {
		return false
	}
	s.primed = true
	s.lastTick = now - (now % s.interval)
	for _, name := range s.tracked {
		v, ok := s.reg.Value(name)
		if !ok || math.IsNaN(v) {
			continue
		}
		s.rings[name].push(Sample{T: now, V: v})
	}
	return true
}

// Series returns the sampled history of one tracked series, oldest
// first.
func (s *Sampler) Series(name string) []Sample {
	r, ok := s.rings[name]
	if !ok {
		return nil
	}
	return r.slice()
}

// Values returns just the values of a tracked series, oldest first —
// the shape sparkline renderers take.
func (s *Sampler) Values(name string) []float64 {
	samples := s.Series(name)
	out := make([]float64, len(samples))
	for i, sm := range samples {
		out[i] = sm.V
	}
	return out
}

// Rate converts a cumulative series' history into per-second deltas
// (len-1 points): the growth-rate view of a counter like JGR adds or
// binder transactions. Non-positive time steps yield a zero rate rather
// than dividing by zero.
func Rate(samples []Sample) []float64 {
	if len(samples) < 2 {
		return nil
	}
	out := make([]float64, len(samples)-1)
	for i := 1; i < len(samples); i++ {
		dt := samples[i].T - samples[i-1].T
		if dt <= 0 {
			continue
		}
		out[i-1] = (samples[i].V - samples[i-1].V) / dt.Seconds()
	}
	return out
}

// Tracked returns the tracked series names in tracking order.
func (s *Sampler) Tracked() []string {
	return append([]string(nil), s.tracked...)
}
