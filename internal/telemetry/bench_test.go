package telemetry

import "testing"

// BenchmarkCounterInc pins the single-atomic-op cost of the hot-path
// counter increment (the per-transaction instrumentation unit).
func BenchmarkCounterInc(b *testing.B) {
	c := NewRegistry().Counter("jgre_bench_total", "bench")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

// BenchmarkHistogramObserve measures the bounded-scan histogram record —
// the most expensive instrument allowed on the hot path.
func BenchmarkHistogramObserve(b *testing.B) {
	h := NewRegistry().Histogram("jgre_bench_seconds", "bench", nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(float64(i%1000) * 0.0001)
	}
}

// BenchmarkRenderProm measures the lazy /proc/jgre_metrics render over a
// registry of realistic size.
func BenchmarkRenderProm(b *testing.B) {
	r := NewRegistry()
	for i := 0; i < 40; i++ {
		r.Counter(string(rune('a'+i%26))+"_jgre_total", "c").Add(uint64(i))
	}
	h := r.Histogram("jgre_bench_seconds", "h", nil)
	for i := 0; i < 1000; i++ {
		h.Observe(float64(i) * 0.001)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if out := r.RenderProm(); len(out) == 0 {
			b.Fatal("empty render")
		}
	}
}
