// Package telemetry is the simulator's unified metrics layer: a
// deterministic registry of counters, gauges and fixed-bucket histograms
// that every subsystem — binder driver, ART runtimes, the JGRE defender,
// the fault injector, the parallel experiment engine — instruments
// itself into.
//
// Two properties shape the design, both driven by the repo-wide
// determinism contract (equal seeds ⇒ byte-identical envelopes, for any
// worker count):
//
//   - No wall-clock reads, ever. Instruments record only values the
//     caller hands them — virtual-time durations, counts, sizes — so a
//     faulted or parallel run observes exactly what a sequential one
//     does. Rates and trends come from the virtual-tick Sampler, not
//     from timestamps taken inside the registry.
//   - Zero allocation on the hot path. Instrument handles are resolved
//     once at wiring time (Registry.Counter and friends may allocate);
//     Inc/Add/Set/Observe are single atomic operations on pre-sized
//     storage. The logged-transact micro-benchmark holds the
//     instrumented path within a few percent of the bare one.
//
// Values use atomics not because the simulation core is concurrent (it
// is single-threaded per device) but because the process-global registry
// is shared by the parallel engine's worker pool, and the procfs
// provider file may render while a sweep is mid-flight.
package telemetry

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Kind distinguishes the instrument types a registry can hold.
type Kind int

// Instrument kinds.
const (
	KindCounter Kind = iota + 1
	KindGauge
	KindGaugeFunc
	KindHistogram
)

// String returns the Prometheus TYPE name of the kind.
func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge, KindGaugeFunc:
		return "gauge"
	case KindHistogram:
		return "histogram"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Counter is a monotonically increasing cumulative metric.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a metric that can go up and down. Values are float64s stored
// as bits, so Set is one atomic store.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add shifts the gauge by delta (CAS loop; the simulation core is
// single-threaded per device, so contention is the rare cross-sweep
// case).
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current gauge value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a fixed-bucket cumulative histogram. Bucket bounds are
// chosen at registration and never change, so Observe is a linear scan
// over a handful of bounds plus two atomic adds — no allocation, no
// sorting, no dynamic resize.
type Histogram struct {
	bounds  []float64 // upper bounds, ascending; +Inf implicit
	buckets []atomic.Uint64
	count   atomic.Uint64
	sumBits atomic.Uint64 // float64 sum as bits
}

// Observe records one sample. NaN observations are dropped (they would
// poison the sum and render as unparseable exposition text).
func (h *Histogram) Observe(v float64) {
	if math.IsNaN(v) {
		return
	}
	for i, b := range h.bounds {
		if v <= b {
			h.buckets[i].Add(1)
			break
		}
	}
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// Bounds returns the bucket upper bounds (the +Inf bucket is implicit).
func (h *Histogram) Bounds() []float64 { return append([]float64(nil), h.bounds...) }

// BucketCounts returns the per-bucket counts in bound order, with the
// implicit +Inf bucket last (observations above every bound).
func (h *Histogram) BucketCounts() []uint64 {
	out := make([]uint64, len(h.bounds)+1)
	var below uint64
	for i := range h.buckets {
		out[i] = h.buckets[i].Load()
		below += out[i]
	}
	out[len(h.bounds)] = h.count.Load() - below
	return out
}

// DurationBuckets is the default virtual-duration bucket ladder in
// seconds, spanning the sub-millisecond IPC costs up to multi-second
// analysis runs.
var DurationBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
	0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// SizeBuckets is the default payload-size bucket ladder in bytes.
var SizeBuckets = []float64{64, 256, 1024, 4096, 16384, 65536, 262144, 1 << 20}

// instrument is one registered metric.
type instrument struct {
	name string
	help string
	kind Kind

	counter *Counter
	gauge   *Gauge
	fn      func() float64
	hist    *Histogram
}

// Registry holds a named set of instruments. Each simulated device owns
// one; the process additionally has a Global registry for cross-device
// machinery (the parallel engine, pools). The zero value is not usable;
// create with NewRegistry.
type Registry struct {
	mu    sync.Mutex
	byKey map[string]*instrument
	order []string // sorted lazily at render time
	dirty bool
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byKey: make(map[string]*instrument)}
}

// lookup returns the named instrument, creating it with mk on first use.
// Re-registering an existing name with a different kind panics — a
// wiring bug caught at boot, like the scenario registry's duplicate
// check.
func (r *Registry) lookup(name, help string, kind Kind, mk func() *instrument) *instrument {
	if name == "" {
		panic("telemetry: empty metric name")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if in, ok := r.byKey[name]; ok {
		if in.kind != kind && !(in.kind == KindGaugeFunc && kind == KindGauge) {
			panic(fmt.Sprintf("telemetry: %s re-registered as %v (was %v)", name, kind, in.kind))
		}
		return in
	}
	in := mk()
	in.name, in.help, in.kind = name, help, kind
	r.byKey[name] = in
	r.dirty = true
	return in
}

// Counter returns (registering on first use) the named counter.
// Metric names follow the Prometheus convention, with an optional
// {label="value"} suffix baked into the name — the registry treats the
// whole string as the series key.
func (r *Registry) Counter(name, help string) *Counter {
	return r.lookup(name, help, KindCounter, func() *instrument {
		return &instrument{counter: &Counter{}}
	}).counter
}

// Gauge returns (registering on first use) the named gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.lookup(name, help, KindGauge, func() *instrument {
		return &instrument{gauge: &Gauge{}}
	}).gauge
}

// GaugeFunc registers a pull gauge: fn is invoked at render/snapshot
// time, so producers that already keep their own counters (the binder
// driver's LogStats, an ART VM's table sizes) pay nothing on their hot
// path. Re-registering the same name replaces the callback — a service
// restarting after a soft reboot re-points the gauge at its new
// incarnation.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	in := r.lookup(name, help, KindGaugeFunc, func() *instrument { return &instrument{} })
	r.mu.Lock()
	in.fn = fn
	r.mu.Unlock()
}

// Histogram returns (registering on first use) the named fixed-bucket
// histogram. bounds must be ascending; nil selects DurationBuckets.
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	return r.lookup(name, help, KindHistogram, func() *instrument {
		if bounds == nil {
			bounds = DurationBuckets
		}
		for i := 1; i < len(bounds); i++ {
			if bounds[i] <= bounds[i-1] {
				panic(fmt.Sprintf("telemetry: %s bucket bounds not ascending", name))
			}
		}
		h := &Histogram{bounds: append([]float64(nil), bounds...)}
		h.buckets = make([]atomic.Uint64, len(h.bounds))
		return &instrument{hist: h}
	}).hist
}

// sortedInstruments returns the instruments in name order, re-sorting
// only when a registration happened since the last call.
func (r *Registry) sortedInstruments() []*instrument {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.dirty {
		r.order = r.order[:0]
		for name := range r.byKey {
			r.order = append(r.order, name)
		}
		sort.Strings(r.order)
		r.dirty = false
	}
	out := make([]*instrument, len(r.order))
	for i, name := range r.order {
		out[i] = r.byKey[name]
	}
	return out
}

// baseName strips a {label="..."} suffix, returning the metric family
// name HELP/TYPE headers apply to.
func baseName(name string) string {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i]
	}
	return name
}

// labelSuffix returns the {…} part of a series name, or "".
func labelSuffix(name string) string {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[i:]
	}
	return ""
}

// formatValue renders a sample the way Prometheus text exposition does;
// NaN and ±Inf from misbehaving gauge callbacks render as their
// exposition spellings rather than breaking the scrape.
func formatValue(v float64) string {
	switch {
	case math.IsNaN(v):
		return "NaN"
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case v == math.Trunc(v) && math.Abs(v) < 1e15:
		return fmt.Sprintf("%d", int64(v))
	default:
		return fmt.Sprintf("%g", v)
	}
}

// RenderProm renders the registry in the Prometheus text exposition
// format (version 0.0.4): HELP and TYPE headers per metric family,
// series sorted by name, histograms expanded into cumulative _bucket
// series plus _sum and _count. The output is a pure function of the
// instrument values, so two identical runs render identical bytes —
// which is what lets /proc/jgre_metrics be diffed across runs like any
// other simulator artifact.
func (r *Registry) RenderProm() []byte {
	var b strings.Builder
	b.Grow(1 << 12)
	lastFamily := ""
	for _, in := range r.sortedInstruments() {
		fam := baseName(in.name)
		if fam != lastFamily {
			fmt.Fprintf(&b, "# HELP %s %s\n", fam, in.help)
			fmt.Fprintf(&b, "# TYPE %s %s\n", fam, in.kind)
			lastFamily = fam
		}
		switch in.kind {
		case KindCounter:
			fmt.Fprintf(&b, "%s %d\n", in.name, in.counter.Value())
		case KindGauge:
			fmt.Fprintf(&b, "%s %s\n", in.name, formatValue(in.gauge.Value()))
		case KindGaugeFunc:
			v := math.NaN()
			if in.fn != nil {
				v = in.fn()
			}
			fmt.Fprintf(&b, "%s %s\n", in.name, formatValue(v))
		case KindHistogram:
			labels := labelSuffix(in.name)
			counts := in.hist.BucketCounts()
			var cum uint64
			for i, bound := range in.hist.bounds {
				cum += counts[i]
				fmt.Fprintf(&b, "%s_bucket%s %d\n", fam, mergeLabel(labels, "le", formatValue(bound)), cum)
			}
			fmt.Fprintf(&b, "%s_bucket%s %d\n", fam, mergeLabel(labels, "le", "+Inf"), in.hist.Count())
			fmt.Fprintf(&b, "%s_sum%s %s\n", fam, labels, formatValue(in.hist.Sum()))
			fmt.Fprintf(&b, "%s_count%s %d\n", fam, labels, in.hist.Count())
		}
	}
	return []byte(b.String())
}

// mergeLabel inserts label="value" into an existing {…} suffix (or
// creates one).
func mergeLabel(labels, key, value string) string {
	pair := fmt.Sprintf(`%s=%q`, key, value)
	if labels == "" {
		return "{" + pair + "}"
	}
	return labels[:len(labels)-1] + "," + pair + "}"
}

// Snapshot flattens the registry into name → value, the JSON-friendly
// form the scenario envelope's optional telemetry block carries.
// Histograms flatten to _count and _sum entries.
func (r *Registry) Snapshot() map[string]float64 {
	out := make(map[string]float64)
	for _, in := range r.sortedInstruments() {
		switch in.kind {
		case KindCounter:
			out[in.name] = float64(in.counter.Value())
		case KindGauge:
			out[in.name] = in.gauge.Value()
		case KindGaugeFunc:
			if in.fn != nil {
				if v := in.fn(); !math.IsNaN(v) {
					out[in.name] = v
				}
			}
		case KindHistogram:
			fam, labels := baseName(in.name), labelSuffix(in.name)
			out[fam+"_count"+labels] = float64(in.hist.Count())
			out[fam+"_sum"+labels] = in.hist.Sum()
		}
	}
	return out
}

// Value returns one series' current value by name (histograms return
// their count) and whether the series exists — the Sampler's read path.
func (r *Registry) Value(name string) (float64, bool) {
	r.mu.Lock()
	in, ok := r.byKey[name]
	r.mu.Unlock()
	if !ok {
		return 0, false
	}
	switch in.kind {
	case KindCounter:
		return float64(in.counter.Value()), true
	case KindGauge:
		return in.gauge.Value(), true
	case KindGaugeFunc:
		if in.fn == nil {
			return 0, false
		}
		return in.fn(), true
	case KindHistogram:
		return float64(in.hist.Count()), true
	}
	return 0, false
}

// Names returns every registered series name in sorted order.
func (r *Registry) Names() []string {
	ins := r.sortedInstruments()
	out := make([]string, len(ins))
	for i, in := range ins {
		out[i] = in.name
	}
	return out
}
