// Package faults is the deterministic fault-injection layer for the
// binder/defender telemetry path. The paper's §V defense assumes a
// perfect evidence chain — every transaction lands in
// /proc/jgre_ipc_log, timestamps deviate from JGR creation by at most
// Δ, and Algorithm 1 always runs to completion. Real system services
// face dropped, reordered and malformed IPC (BinderCracker) and
// defenses that degrade badly under imperfect observation get bypassed,
// so the robustness experiments perturb the substrate along five axes:
// record drops (rate + bursts), bounded ring-buffer overflow, timestamp
// jitter/clock skew, log-read errors, and mid-analysis defender
// failures.
//
// Every decision is a pure function of (injector seed, record sequence
// number) or of a monotone per-injector counter, never of wall time or
// shared PRNG consumption order, so equal device seeds give
// byte-identical runs for any worker count — the same guarantee the
// parallel experiment engine makes. Keying record drops on the sequence
// number alone has a second property the degradation sweeps rely on:
// for the same seed, the records surviving at drop rate p₂ are a
// subset of those surviving at p₁ whenever p₁ < p₂, which makes
// correlation scores provably non-increasing along the drop axis.
package faults

import (
	"errors"
	"fmt"
	"time"
)

// ErrInjectedRead is the failure surfaced for an injected log-read
// fault, standing in for the transient EIO/EAGAIN a real procfs read
// can return under memory pressure.
var ErrInjectedRead = errors.New("faults: injected log read failure")

// Config declares the fault model. The zero value reproduces the
// paper's idealized lossless chain; every field perturbs one axis.
type Config struct {
	// DropRate in [0, 1) is the per-record probability that the binder
	// driver's IPC log write is lost before reaching the procfs file.
	DropRate float64
	// BurstEvery / BurstLen inject deterministic loss bursts on top of
	// DropRate: of every BurstEvery consecutive log sequence numbers,
	// the first BurstLen are dropped (BurstEvery 0 disables bursts).
	BurstEvery int
	BurstLen   int
	// RingCapacity bounds the driver's pending-record buffer like a
	// real kernel ring: when full, the oldest record is evicted and the
	// driver's visible overflow counter increments. 0 means unbounded.
	RingCapacity int
	// MaxJitter perturbs each logged timestamp by a per-record offset
	// drawn uniformly from (-MaxJitter, +MaxJitter]; large values
	// exceed the defender's Δ and break naive delay correlation.
	MaxJitter time.Duration
	// ClockSkew is a constant offset added to every logged timestamp —
	// the driver's clock domain drifting from the runtime's.
	ClockSkew time.Duration
	// ReadFailEvery makes log reads fail deterministically: 1 fails
	// every read (a persistent fault); n > 1 fails the first read of
	// every n (so a retry lands on a healthy read). 0 never fails.
	ReadFailEvery int
	// AnalysisFailEvery kills the defender's Algorithm-1 run mid-flight
	// with the same cadence as ReadFailEvery: 1 always, n > 1 the first
	// of every n attempts, 0 never.
	AnalysisFailEvery int
}

// Enabled reports whether any fault axis is active.
func (c Config) Enabled() bool { return c != (Config{}) }

// Validate rejects configurations outside the model's domain.
func (c Config) Validate() error {
	if c.DropRate < 0 || c.DropRate >= 1 {
		return fmt.Errorf("faults: DropRate %v outside [0, 1)", c.DropRate)
	}
	if c.BurstEvery < 0 || c.BurstLen < 0 || (c.BurstEvery > 0 && c.BurstLen >= c.BurstEvery) {
		return fmt.Errorf("faults: burst %d/%d must satisfy 0 <= len < every", c.BurstLen, c.BurstEvery)
	}
	if c.RingCapacity < 0 {
		return fmt.Errorf("faults: negative RingCapacity %d", c.RingCapacity)
	}
	if c.MaxJitter < 0 {
		return fmt.Errorf("faults: negative MaxJitter %v", c.MaxJitter)
	}
	if c.ReadFailEvery < 0 || c.AnalysisFailEvery < 0 {
		return fmt.Errorf("faults: negative failure cadence")
	}
	return nil
}

// Injector makes the per-record and per-attempt fault decisions for one
// device. It is not safe for concurrent use; like the rest of the
// simulation core it is driven from a single goroutine per device.
type Injector struct {
	cfg      Config
	seed     uint64
	reads    uint64
	analyses uint64

	recordDrops    uint64
	readFaults     uint64
	analysisFaults uint64
}

// Stats is the injector's own ledger of what it did: decisions that
// actually injected a fault versus the attempts it was consulted on.
// Together with the binder driver's LogStats (the delivered side) this
// gives the injected-vs-delivered view the telemetry layer exports.
type Stats struct {
	// RecordDrops counts DropRecord decisions that dropped the record.
	RecordDrops uint64
	// ReadAttempts / ReadFaults count log-read attempts and how many the
	// injector failed.
	ReadAttempts uint64
	ReadFaults   uint64
	// AnalysisAttempts / AnalysisFaults count defender analysis attempts
	// and injected mid-run deaths.
	AnalysisAttempts uint64
	AnalysisFaults   uint64
}

// Stats returns the injector's cumulative fault ledger. Counting is
// observational only — it never feeds back into a fault decision, so
// the injected fault sequence for a given seed is unchanged by who
// reads the stats.
func (in *Injector) Stats() Stats {
	return Stats{
		RecordDrops:      in.recordDrops,
		ReadAttempts:     in.reads,
		ReadFaults:       in.readFaults,
		AnalysisAttempts: in.analyses,
		AnalysisFaults:   in.analysisFaults,
	}
}

// New builds an injector keyed off the device seed. It panics on an
// invalid configuration — a programming error in the experiment, caught
// at boot like the registry's duplicate-registration check.
func New(cfg Config, deviceSeed int64) *Injector {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	// Decorrelate from the device's other seed consumers (services and
	// workloads hash the same seed) with a fixed tweak.
	return &Injector{cfg: cfg, seed: splitmix(uint64(deviceSeed) ^ 0x6a67726566617568)}
}

// Config returns the injector's fault model.
func (in *Injector) Config() Config { return in.cfg }

// RingCapacity returns the bounded log-buffer size (0 = unbounded).
func (in *Injector) RingCapacity() int { return in.cfg.RingCapacity }

// DropRecord reports whether the log record with sequence number seq is
// lost. The decision is stateless in seq, so two runs that log the same
// sequence prefix agree on every drop regardless of what else happened.
func (in *Injector) DropRecord(seq uint64) bool {
	if in.cfg.BurstEvery > 0 && int((seq-1)%uint64(in.cfg.BurstEvery)) < in.cfg.BurstLen {
		in.recordDrops++
		return true
	}
	if in.cfg.DropRate > 0 && unit(in.seed, seq, 0x01) < in.cfg.DropRate {
		in.recordDrops++
		return true
	}
	return false
}

// LogTimestamp perturbs a record's true timestamp with the configured
// jitter and clock skew, clamped at zero (the log cannot predate boot).
func (in *Injector) LogTimestamp(t time.Duration, seq uint64) time.Duration {
	t += in.cfg.ClockSkew
	if j := in.cfg.MaxJitter; j > 0 {
		// Uniform in (-j, +j]: u in [0,1) maps to (2u-1)·j shifted off
		// the open lower bound.
		t += time.Duration((2*unit(in.seed, seq, 0x02) - 1) * float64(j))
	}
	if t < 0 {
		t = 0
	}
	return t
}

// ReadError consumes one log-read attempt and returns the injected
// failure, if any. Cadence semantics are documented on Config.
func (in *Injector) ReadError() error {
	in.reads++
	if cadenceFault(in.cfg.ReadFailEvery, in.reads) {
		in.readFaults++
		return ErrInjectedRead
	}
	return nil
}

// AnalysisFault consumes one analysis attempt and reports whether it
// dies mid-run.
func (in *Injector) AnalysisFault() bool {
	in.analyses++
	if cadenceFault(in.cfg.AnalysisFailEvery, in.analyses) {
		in.analysisFaults++
		return true
	}
	return false
}

// cadenceFault implements the shared failure cadence: every=1 always
// fails, every=n>1 fails the first attempt of each n, every=0 never.
func cadenceFault(every int, attempt uint64) bool {
	if every <= 0 {
		return false
	}
	if every == 1 {
		return true
	}
	return attempt%uint64(every) == 1
}

// unit hashes (seed, seq, salt) to a uniform float64 in [0, 1).
func unit(seed, seq, salt uint64) float64 {
	h := splitmix(seed ^ splitmix(seq) ^ salt)
	return float64(h>>11) / (1 << 53)
}

// splitmix is the splitmix64 finalizer — a full-avalanche hash, so
// consecutive sequence numbers give uncorrelated decisions.
func splitmix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
