package faults

import (
	"math"
	"testing"
	"time"
)

func TestZeroConfigInjectsNothing(t *testing.T) {
	in := New(Config{}, 42)
	for seq := uint64(1); seq <= 10000; seq++ {
		if in.DropRecord(seq) {
			t.Fatalf("seq %d dropped with zero config", seq)
		}
		if got := in.LogTimestamp(time.Duration(seq)*time.Millisecond, seq); got != time.Duration(seq)*time.Millisecond {
			t.Fatalf("seq %d timestamp perturbed with zero config", seq)
		}
	}
	for i := 0; i < 100; i++ {
		if err := in.ReadError(); err != nil {
			t.Fatal("read error with zero config")
		}
		if in.AnalysisFault() {
			t.Fatal("analysis fault with zero config")
		}
	}
	if in.RingCapacity() != 0 {
		t.Fatal("ring bounded with zero config")
	}
}

func TestDeterministicAcrossInstances(t *testing.T) {
	cfg := Config{DropRate: 0.3, MaxJitter: 2 * time.Millisecond, ReadFailEvery: 3, AnalysisFailEvery: 2}
	a, b := New(cfg, 7), New(cfg, 7)
	for seq := uint64(1); seq <= 5000; seq++ {
		if a.DropRecord(seq) != b.DropRecord(seq) {
			t.Fatalf("drop decision diverged at seq %d", seq)
		}
		if a.LogTimestamp(time.Second, seq) != b.LogTimestamp(time.Second, seq) {
			t.Fatalf("jitter diverged at seq %d", seq)
		}
	}
	for i := 0; i < 50; i++ {
		ea, eb := a.ReadError(), b.ReadError()
		if (ea == nil) != (eb == nil) {
			t.Fatalf("read fault cadence diverged at attempt %d", i)
		}
		if a.AnalysisFault() != b.AnalysisFault() {
			t.Fatalf("analysis fault cadence diverged at attempt %d", i)
		}
	}
}

func TestSeedChangesDecisions(t *testing.T) {
	cfg := Config{DropRate: 0.5}
	a, b := New(cfg, 1), New(cfg, 2)
	same := 0
	for seq := uint64(1); seq <= 1000; seq++ {
		if a.DropRecord(seq) == b.DropRecord(seq) {
			same++
		}
	}
	if same == 1000 {
		t.Fatal("different seeds produced identical drop patterns")
	}
}

// TestDropSubsetAcrossRates pins the property the degradation sweeps
// rely on: with a fixed seed, every record dropped at rate p1 is also
// dropped at any rate p2 >= p1, so surviving evidence shrinks
// monotonically along the drop axis.
func TestDropSubsetAcrossRates(t *testing.T) {
	rates := []float64{0.1, 0.25, 0.5, 0.75, 0.95}
	for i := 1; i < len(rates); i++ {
		lo := New(Config{DropRate: rates[i-1]}, 11)
		hi := New(Config{DropRate: rates[i]}, 11)
		for seq := uint64(1); seq <= 20000; seq++ {
			if lo.DropRecord(seq) && !hi.DropRecord(seq) {
				t.Fatalf("seq %d dropped at %.2f but kept at %.2f", seq, rates[i-1], rates[i])
			}
		}
	}
}

func TestDropRateConverges(t *testing.T) {
	const n = 100000
	for _, rate := range []float64{0.1, 0.5, 0.9} {
		in := New(Config{DropRate: rate}, 3)
		dropped := 0
		for seq := uint64(1); seq <= n; seq++ {
			if in.DropRecord(seq) {
				dropped++
			}
		}
		got := float64(dropped) / n
		if math.Abs(got-rate) > 0.01 {
			t.Errorf("rate %.2f: empirical drop fraction %.4f", rate, got)
		}
	}
}

func TestBurstDrops(t *testing.T) {
	in := New(Config{BurstEvery: 100, BurstLen: 5}, 9)
	for seq := uint64(1); seq <= 1000; seq++ {
		inBurst := (seq-1)%100 < 5
		if in.DropRecord(seq) != inBurst {
			t.Fatalf("seq %d: burst drop = %v, want %v", seq, !inBurst, inBurst)
		}
	}
}

func TestJitterBoundedAndClamped(t *testing.T) {
	j := 3 * time.Millisecond
	in := New(Config{MaxJitter: j}, 5)
	sawShift := false
	for seq := uint64(1); seq <= 5000; seq++ {
		base := 10 * time.Millisecond
		got := in.LogTimestamp(base, seq)
		if got < base-j || got > base+j {
			t.Fatalf("seq %d: jittered %v outside ±%v of %v", seq, got, j, base)
		}
		if got != base {
			sawShift = true
		}
		// Near boot, jitter must clamp at zero rather than go negative.
		if early := in.LogTimestamp(time.Microsecond, seq); early < 0 {
			t.Fatalf("seq %d: negative timestamp %v", seq, early)
		}
	}
	if !sawShift {
		t.Fatal("jitter never moved a timestamp")
	}
}

func TestClockSkew(t *testing.T) {
	in := New(Config{ClockSkew: 5 * time.Millisecond}, 5)
	if got := in.LogTimestamp(time.Second, 1); got != time.Second+5*time.Millisecond {
		t.Fatalf("skewed timestamp %v", got)
	}
	neg := New(Config{ClockSkew: -5 * time.Millisecond}, 5)
	if got := neg.LogTimestamp(time.Millisecond, 1); got != 0 {
		t.Fatalf("negative skew should clamp at 0, got %v", got)
	}
}

func TestReadAndAnalysisCadence(t *testing.T) {
	always := New(Config{ReadFailEvery: 1, AnalysisFailEvery: 1}, 4)
	for i := 0; i < 10; i++ {
		if always.ReadError() == nil || !always.AnalysisFault() {
			t.Fatal("cadence 1 must always fail")
		}
	}
	every3 := New(Config{ReadFailEvery: 3}, 4)
	var pattern []bool
	for i := 0; i < 6; i++ {
		pattern = append(pattern, every3.ReadError() != nil)
	}
	want := []bool{true, false, false, true, false, false}
	for i := range want {
		if pattern[i] != want[i] {
			t.Fatalf("cadence 3 pattern %v, want %v", pattern, want)
		}
	}
}

func TestValidate(t *testing.T) {
	bad := []Config{
		{DropRate: -0.1},
		{DropRate: 1.0},
		{BurstEvery: 4, BurstLen: 4},
		{RingCapacity: -1},
		{MaxJitter: -time.Second},
		{ReadFailEvery: -2},
	}
	for _, cfg := range bad {
		if cfg.Validate() == nil {
			t.Errorf("Validate accepted %+v", cfg)
		}
	}
	good := Config{DropRate: 0.99, BurstEvery: 10, BurstLen: 9, RingCapacity: 1, MaxJitter: time.Hour, ClockSkew: -time.Hour}
	if err := good.Validate(); err != nil {
		t.Errorf("Validate rejected %+v: %v", good, err)
	}
	if !good.Enabled() || (Config{}).Enabled() {
		t.Error("Enabled misreports")
	}
}
