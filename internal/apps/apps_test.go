package apps

import (
	"errors"
	"testing"

	"repro/internal/art"
	"repro/internal/binder"
	"repro/internal/catalog"
	"repro/internal/kernel"
	"repro/internal/permissions"
	"repro/internal/simclock"
)

type appRig struct {
	clock *simclock.Clock
	k     *kernel.Kernel
	d     *binder.Driver
	perms *permissions.Manager
	mgr   *Manager
	reg   *ServiceRegistry
}

func newAppRig(t *testing.T) *appRig {
	t.Helper()
	clock := simclock.New()
	k := kernel.New(clock, kernel.Config{})
	d := binder.New(k, binder.Config{})
	perms := permissions.NewManager()
	for p, l := range catalog.PermissionLevels {
		perms.Define(p, l)
	}
	return &appRig{clock: clock, k: k, d: d, perms: perms, mgr: NewManager(k, perms), reg: NewServiceRegistry(d)}
}

func TestInstallAssignsSequentialUids(t *testing.T) {
	r := newAppRig(t)
	a, err := r.mgr.Install("com.a")
	if err != nil {
		t.Fatal(err)
	}
	b, _ := r.mgr.Install("com.b")
	if a.Uid() != FirstInstalledUid || b.Uid() != FirstInstalledUid+1 {
		t.Fatalf("uids = %d, %d; want %d, %d", a.Uid(), b.Uid(), FirstInstalledUid, FirstInstalledUid+1)
	}
	if _, err := r.mgr.Install("com.a"); !errors.Is(err, ErrAlreadyInstalled) {
		t.Fatalf("duplicate install error = %v", err)
	}
	if r.mgr.ByPackage("com.a") != a || r.mgr.ByUid(b.Uid()) != b {
		t.Fatal("lookup maps wrong")
	}
	got := r.mgr.Installed()
	if len(got) != 2 || got[0] != a || got[1] != b {
		t.Fatalf("Installed = %v", got)
	}
}

func TestInstallGrantsPermissions(t *testing.T) {
	r := newAppRig(t)
	a, err := r.mgr.Install("com.phone.reader", "READ_PHONE_STATE", "WAKE_LOCK")
	if err != nil {
		t.Fatal(err)
	}
	if !r.perms.Check(a.Uid(), "READ_PHONE_STATE") || !r.perms.Check(a.Uid(), "WAKE_LOCK") {
		t.Fatal("requested permissions not granted")
	}
	// Signature permissions cannot be requested by third-party installs.
	if _, err := r.mgr.Install("com.sig", "NOT_A_DEFINED_PERMISSION"); err == nil {
		t.Fatal("signature-level grant succeeded")
	}
}

func TestStartStopRestart(t *testing.T) {
	r := newAppRig(t)
	a, _ := r.mgr.Install("com.a")
	if a.Running() {
		t.Fatal("app running before Start")
	}
	p1 := a.Start()
	if !a.Running() || a.Proc() != p1 {
		t.Fatal("Start did not produce a live process")
	}
	if again := a.Start(); again != p1 {
		t.Fatal("Start respawned a live app")
	}
	a.ForceStop("defender")
	if a.Running() {
		t.Fatal("ForceStop left the app running")
	}
	p2 := a.Start()
	if p2 == p1 || !a.Running() {
		t.Fatal("restart did not spawn a fresh process")
	}
	if p2.Uid() != a.Uid() {
		t.Fatal("restarted process has wrong uid")
	}
}

func TestBackgroundForeground(t *testing.T) {
	r := newAppRig(t)
	a, _ := r.mgr.Install("com.a")
	p := a.Start()
	a.SetBackground()
	if p.OomScoreAdj() != kernel.CachedAppMinAdj {
		t.Fatalf("adj = %d, want cached", p.OomScoreAdj())
	}
	a.SetForeground()
	if p.OomScoreAdj() != kernel.ForegroundAppAdj {
		t.Fatalf("adj = %d, want foreground", p.OomScoreAdj())
	}
}

func TestAppServiceRetainsUntilCallerDies(t *testing.T) {
	r := newAppRig(t)
	pico, _ := r.mgr.Install("com.svox.pico")
	attacker, _ := r.mgr.Install("com.evil")

	rows := catalog.PrebuiltAppInterfaces()[:1] // PicoService.setCallback()
	svc, err := NewAppService(pico, r.d, r.clock, r.reg, rows, 7)
	if err != nil {
		t.Fatal(err)
	}
	ap := attacker.Start()
	ref, err := r.reg.Bind(AppServiceName(rows[0]), ap)
	if err != nil {
		t.Fatal(err)
	}
	code, ok := svc.Code("setCallback")
	if !ok {
		t.Fatal("setCallback code missing")
	}
	base := pico.Proc().VM().GlobalRefCount()
	for i := 0; i < 8; i++ {
		data := binder.NewParcel()
		data.WriteStrongBinder(r.d.NewLocalBinder(ap, "android.os.Binder", nil))
		if err := ref.Binder().Transact(code, data, nil); err != nil {
			t.Fatal(err)
		}
	}
	if got := svc.EntryCount("setCallback"); got != 8 {
		t.Fatalf("entries = %d, want 8", got)
	}
	pico.Proc().VM().GC()
	if got := pico.Proc().VM().GlobalRefCount(); got <= base {
		t.Fatal("no retained JGR growth in the app process")
	}
	// Caller exits → everything released (§IV-D).
	attacker.ForceStop("exit")
	if got := svc.EntryCount("setCallback"); got != 0 {
		t.Fatalf("entries after caller death = %d, want 0", got)
	}
}

func TestAppServiceExhaustionCrashesApp(t *testing.T) {
	clock := simclock.New()
	k := kernel.New(clock, kernel.Config{})
	d := binder.New(k, binder.Config{})
	perms := permissions.NewManager()
	mgr := NewManager(k, perms)
	reg := NewServiceRegistry(d)

	victim, _ := mgr.Install("com.svox.pico")
	// Spawn the victim with a tiny JGR cap for a fast test.
	victim.proc = k.Spawn(kernel.SpawnConfig{Name: victim.pkg, Uid: victim.uid, VM: artSmall()})
	attacker, _ := mgr.Install("com.evil")

	rows := catalog.PrebuiltAppInterfaces()[:1]
	svc, err := NewAppService(victim, d, clock, reg, rows, 7)
	if err != nil {
		t.Fatal(err)
	}
	ap := attacker.Start()
	ref, _ := reg.Bind(AppServiceName(rows[0]), ap)
	code, _ := svc.Code("setCallback")
	for i := 0; i < 200 && victim.Running(); i++ {
		data := binder.NewParcel()
		data.WriteStrongBinder(d.NewLocalBinder(ap, "android.os.Binder", nil))
		ref.Binder().Transact(code, data, nil)
	}
	if victim.Running() {
		t.Fatal("victim app survived JGRE attack")
	}
	// App (not system_server) death: no soft reboot.
	if k.SoftReboots() != 0 {
		t.Fatalf("SoftReboots = %d, want 0", k.SoftReboots())
	}
}

func TestRegistryBindAndDeath(t *testing.T) {
	r := newAppRig(t)
	owner, _ := r.mgr.Install("com.owner")
	client, _ := r.mgr.Install("com.client")
	p := owner.Start()
	b := r.d.NewLocalBinder(p, "X", nil)
	if err := r.reg.Publish("com.owner/X", b); err != nil {
		t.Fatal(err)
	}
	if err := r.reg.Publish("com.owner/X", b); err == nil {
		t.Fatal("duplicate publish succeeded")
	}
	if _, err := r.reg.Bind("missing", client.Start()); err == nil {
		t.Fatal("bind to missing service succeeded")
	}
	if got := r.reg.Names(); len(got) != 1 || got[0] != "com.owner/X" {
		t.Fatalf("Names = %v", got)
	}
	owner.ForceStop("gone")
	if _, err := r.reg.Bind("com.owner/X", client.Start()); !errors.Is(err, binder.ErrDeadObject) {
		t.Fatalf("bind to dead service error = %v", err)
	}
	r.reg.Unpublish("com.owner/X")
	if len(r.reg.Names()) != 0 {
		t.Fatal("Unpublish failed")
	}
}

func TestMethodNameParsing(t *testing.T) {
	cases := map[string][2]string{
		"PicoService.setCallback()":    {"PicoService", "setCallback"},
		"GattService.registerServer()": {"GattService", "registerServer"},
		"IMainService.a()":             {"IMainService", "a"},
		"bare":                         {"bare", "bare"},
	}
	for in, want := range cases {
		if got := serviceClassOf(in); got != want[0] {
			t.Errorf("serviceClassOf(%q) = %q, want %q", in, got, want[0])
		}
		if got := methodNameOf(in); got != want[1] {
			t.Errorf("methodNameOf(%q) = %q, want %q", in, got, want[1])
		}
	}
}

// artSmall returns a tiny-JGR runtime config for fast exhaustion tests.
func artSmall() art.Config { return art.Config{MaxGlobalRefs: 64} }
