// Package apps models Android applications: installed packages with their
// own uid and process, permission grants, and — for the paper's Tables IV
// and V — apps that themselves expose vulnerable IPC interfaces (prebuilt
// core apps like Bluetooth and PicoTts, whose services extend framework
// base classes such as android.speech.tts.TextToSpeechService, and
// vulnerable third-party apps found on Google Play).
package apps

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"time"

	"repro/internal/binder"
	"repro/internal/catalog"
	"repro/internal/kernel"
	"repro/internal/permissions"
	"repro/internal/simclock"
	"repro/internal/xrand"
)

// FirstInstalledUid is the uid of the first installed app. The paper's
// Fig. 9 experiment shows colluding apps with uids 10059–10065; starting
// the installer here makes the reproduction's uids line up.
const FirstInstalledUid kernel.Uid = 10059

// App is one installed application.
type App struct {
	pkg  string
	uid  kernel.Uid
	proc *kernel.Process
	mgr  *Manager
}

// Package returns the app's package name.
func (a *App) Package() string { return a.pkg }

// Uid returns the app's uid.
func (a *App) Uid() kernel.Uid { return a.uid }

// Proc returns the app's current process (nil if not running).
func (a *App) Proc() *kernel.Process {
	if a.proc != nil && a.proc.Alive() {
		return a.proc
	}
	return nil
}

// Running reports whether the app has a live process.
func (a *App) Running() bool { return a.Proc() != nil }

// LastExitReason returns the kill reason of the app's most recent dead
// process ("" while running or never started). Restart-aware workload
// actors use it to distinguish lifecycle-chaos deaths, which they
// recover from, from LMK or defender kills, which they do not.
func (a *App) LastExitReason() string {
	if a.proc == nil || a.proc.Alive() {
		return ""
	}
	return a.proc.ExitReason()
}

// Start (re)launches the app's process if needed and returns it. Apps are
// restartable after LMK kills, defender force-stops, or soft reboots.
func (a *App) Start() *kernel.Process {
	if p := a.Proc(); p != nil {
		return p
	}
	a.proc = a.mgr.k.Spawn(kernel.SpawnConfig{
		Name:        a.pkg,
		Uid:         a.uid,
		OomScoreAdj: kernel.ForegroundAppAdj,
	})
	return a.proc
}

// SetBackground moves the app to a cached LMK priority, as pressing HOME
// does in the paper's MonkeyRunner workload.
func (a *App) SetBackground() {
	if p := a.Proc(); p != nil {
		p.SetOomScoreAdj(kernel.CachedAppMinAdj)
	}
}

// SetForeground gives the app foreground priority.
func (a *App) SetForeground() {
	if p := a.Proc(); p != nil {
		p.SetOomScoreAdj(kernel.ForegroundAppAdj)
	}
}

// ForceStop kills the app's process — the "am force-stop" the JGRE
// Defender issues against top-ranked suspects (paper §V-B).
func (a *App) ForceStop(reason string) {
	if p := a.Proc(); p != nil {
		a.mgr.k.Kill(p.Pid(), reason)
	}
}

// Manager installs apps and tracks them by uid and package.
type Manager struct {
	k       *kernel.Kernel
	perms   *permissions.Manager
	nextUid kernel.Uid
	byPkg   map[string]*App
	byUid   map[kernel.Uid]*App
	// appSlab backs the App headers CloneInto mints for a clone; a
	// recycled clone rewinds and refills it in place.
	appSlab []App
}

// NewManager creates an installer.
func NewManager(k *kernel.Kernel, perms *permissions.Manager) *Manager {
	return &Manager{
		k:       k,
		perms:   perms,
		nextUid: FirstInstalledUid,
		byPkg:   make(map[string]*App),
		byUid:   make(map[kernel.Uid]*App),
	}
}

// CloneInto populates dst as a copy of the installer for a snapshot
// clone: every App is re-minted against the clone's kernel (resolving
// its process by pid, which materializes it copy-on-write) and the
// clone's permission manager. Map iteration order is safe here — no
// sequential ids are minted during the copy. A dst carrying maps from
// a retired clone (the fleet slot recycle path) has them rewound and
// reused in place.
func (m *Manager) CloneInto(dst *Manager, k *kernel.Kernel, perms *permissions.Manager) {
	byPkg, byUid := dst.byPkg, dst.byUid
	if byPkg == nil {
		byPkg = make(map[string]*App, len(m.byPkg))
		byUid = make(map[kernel.Uid]*App, len(m.byUid))
	} else {
		clear(byPkg)
		clear(byUid)
	}
	slab := dst.appSlab[:0]
	if cap(slab) < len(m.byPkg) {
		slab = make([]App, 0, len(m.byPkg))
	}
	*dst = Manager{
		k:       k,
		perms:   perms,
		nextUid: m.nextUid,
		byPkg:   byPkg,
		byUid:   byUid,
	}
	for pkg, a := range m.byPkg {
		slab = append(slab, App{pkg: pkg, uid: a.uid, mgr: dst})
		na := &slab[len(slab)-1]
		if p := a.proc; p != nil && p.Alive() {
			na.proc = k.Process(p.Pid())
		}
		dst.byPkg[pkg] = na
		dst.byUid[na.uid] = na
	}
	dst.appSlab = slab
}

// ErrAlreadyInstalled reports a duplicate package install.
var ErrAlreadyInstalled = errors.New("apps: package already installed")

// Install registers a package, assigns it the next uid, and grants the
// requested permissions (normal ones silently, dangerous ones as if the
// user approved — the paper's attacker model allows both levels).
func (m *Manager) Install(pkg string, wants ...permissions.Permission) (*App, error) {
	if pkg == "" {
		return nil, errors.New("apps: empty package name")
	}
	if _, ok := m.byPkg[pkg]; ok {
		return nil, fmt.Errorf("install %s: %w", pkg, ErrAlreadyInstalled)
	}
	a := &App{pkg: pkg, uid: m.nextUid, mgr: m}
	m.nextUid++
	for _, p := range wants {
		if err := m.perms.Grant(a.uid, p); err != nil {
			return nil, fmt.Errorf("install %s: %w", pkg, err)
		}
	}
	m.byPkg[pkg] = a
	m.byUid[a.uid] = a
	return a, nil
}

// ByPackage returns the installed app, or nil.
func (m *Manager) ByPackage(pkg string) *App { return m.byPkg[pkg] }

// ByUid returns the installed app owning uid, or nil.
func (m *Manager) ByUid(uid kernel.Uid) *App { return m.byUid[uid] }

// Installed returns all installed apps sorted by uid.
func (m *Manager) Installed() []*App {
	out := make([]*App, 0, len(m.byPkg))
	for _, a := range m.byPkg {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].uid < out[j].uid })
	return out
}

// ServiceRegistry resolves app-exported services, standing in for the
// bindService/intent-resolution path through which third-party apps reach
// a prebuilt app's IPC interfaces (e.g. ITextToSpeechService).
type ServiceRegistry struct {
	driver *binder.Driver
	byName map[string]*binder.LocalBinder
}

// NewServiceRegistry creates an empty registry.
func NewServiceRegistry(d *binder.Driver) *ServiceRegistry {
	return &ServiceRegistry{driver: d, byName: make(map[string]*binder.LocalBinder)}
}

// ResetFor rewinds the registry for reuse against a new driver, keeping
// the name map's storage. The fleet slot recycle path uses it to carry a
// retired clone's registry into the next trial.
func (r *ServiceRegistry) ResetFor(d *binder.Driver) {
	r.driver = d
	clear(r.byName)
}

// Publish exports an app service binder under "pkg/Class".
func (r *ServiceRegistry) Publish(name string, b *binder.LocalBinder) error {
	if _, ok := r.byName[name]; ok {
		return fmt.Errorf("apps: service %q already published", name)
	}
	r.byName[name] = b
	return nil
}

// Bind returns client's proxy on the named app service.
func (r *ServiceRegistry) Bind(name string, client *kernel.Process) (*binder.BinderRef, error) {
	b, ok := r.byName[name]
	if !ok {
		return nil, fmt.Errorf("apps: no service %q", name)
	}
	if !b.IsAlive() {
		return nil, binder.ErrDeadObject
	}
	return r.driver.Materialize(client, b)
}

// Names lists published services, sorted.
func (r *ServiceRegistry) Names() []string {
	out := make([]string, 0, len(r.byName))
	for n := range r.byName {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Unpublish removes a registration (on app death/reinstall).
func (r *ServiceRegistry) Unpublish(name string) { delete(r.byName, name) }

// AppService is an IPC service exported by an app. Its vulnerable methods
// come from the catalog's Table IV/V rows; like
// TextToSpeechService.setCallback, each call retains the caller's binder
// until the *calling* app exits.
type AppService struct {
	owner *App
	clock *simclock.Clock

	// rng seeds lazily on the first jitter draw (see services.Service);
	// seedMix is the per-service seed component for re-keying clones.
	rng     *rand.Rand
	rngSeed int64
	seedMix int64

	stub *binder.LocalBinder
	// transactor caches the dispatch closure handed to the driver; it
	// binds only the AppService pointer, stable for a slab entry, so a
	// recycled clone reuses it (see services.Service.transactor).
	transactor binder.Transactor
	regName    string
	methods    map[binder.TxCode]catalog.AppInterface
	codes      map[string]binder.TxCode
	entries    map[string][]*appEntry
	calls      uint64
}

type appEntry struct {
	ref  *binder.BinderRef
	link *binder.DeathLink
	pid  kernel.Pid
}

// AppServiceName returns the registry name an app interface is published
// under.
func AppServiceName(ai catalog.AppInterface) string {
	return ai.Package + "/" + serviceClassOf(ai.Method)
}

// serviceClassOf extracts "PicoService" from "PicoService.setCallback()".
func serviceClassOf(method string) string {
	for i := 0; i < len(method); i++ {
		if method[i] == '.' {
			return method[:i]
		}
	}
	return method
}

// methodNameOf extracts "setCallback" from "PicoService.setCallback()".
func methodNameOf(method string) string {
	name := method
	for i := 0; i < len(name); i++ {
		if name[i] == '.' {
			name = name[i+1:]
			break
		}
	}
	if n := len(name); n >= 2 && name[n-2] == '(' && name[n-1] == ')' {
		name = name[:n-2]
	}
	return name
}

// NewAppService builds and publishes one app service exposing the given
// catalogued rows (all rows must share the same Package and class).
func NewAppService(owner *App, d *binder.Driver, clock *simclock.Clock, reg *ServiceRegistry, rows []catalog.AppInterface, seed int64) (*AppService, error) {
	if len(rows) == 0 {
		return nil, errors.New("apps: service needs at least one interface row")
	}
	proc := owner.Start()
	mix := int64(len(rows))
	s := &AppService{
		owner:   owner,
		clock:   clock,
		rngSeed: seed ^ mix,
		seedMix: mix,
		methods: make(map[binder.TxCode]catalog.AppInterface),
		codes:   make(map[string]binder.TxCode),
	}
	var names []string
	byName := make(map[string]catalog.AppInterface)
	for _, r := range rows {
		n := methodNameOf(r.Method)
		byName[n] = r
		names = append(names, n)
	}
	sort.Strings(names)
	for i, n := range names {
		code := binder.TxCode(i + 1)
		s.methods[code] = byName[n]
		s.codes[n] = code
	}
	s.transactor = binder.TransactorFunc(s.onTransact)
	s.stub = d.NewLocalBinder(proc, serviceClassOf(rows[0].Method), s.transactor)
	s.regName = AppServiceName(rows[0])
	if err := reg.Publish(s.regName, s.stub); err != nil {
		return nil, err
	}
	return s, nil
}

// CloneInto populates dst as a boot-state clone of s: immutable method
// tables are shared, retained entries start empty (the template froze at
// boot quiescence), and the stub is re-minted and re-published in boot
// order so driver ids replay identically. owner must be the clone
// device's corresponding App.
func (s *AppService) CloneInto(dst *AppService, owner *App, d *binder.Driver, clock *simclock.Clock, reg *ServiceRegistry, seed int64) error {
	tr := dst.transactor
	*dst = AppService{
		owner:   owner,
		clock:   clock,
		rngSeed: seed ^ s.seedMix,
		seedMix: s.seedMix,
		regName: s.regName,
		methods: s.methods,
		codes:   s.codes,
		calls:   s.calls,
	}
	if tr == nil {
		tr = binder.TransactorFunc(dst.onTransact)
	}
	dst.transactor = tr
	dst.stub = d.NewLocalBinder(owner.Start(), s.stub.Class(), tr)
	return reg.Publish(dst.regName, dst.stub)
}

// rand returns the jitter rng, seeding it on first use.
func (s *AppService) rand() *rand.Rand {
	if s.rng == nil {
		s.rng = xrand.New(s.rngSeed)
	}
	return s.rng
}

// Owner returns the exporting app.
func (s *AppService) Owner() *App { return s.owner }

// Stub returns the service's local binder.
func (s *AppService) Stub() *binder.LocalBinder { return s.stub }

// Code resolves a short method name ("setCallback").
func (s *AppService) Code(method string) (binder.TxCode, bool) {
	c, ok := s.codes[method]
	return c, ok
}

// MethodName resolves a code back to the short method name.
func (s *AppService) MethodName(code binder.TxCode) (string, bool) {
	ai, ok := s.methods[code]
	if !ok {
		return "", false
	}
	return methodNameOf(ai.Method), true
}

// EntryCount returns retained registrations for a short method name.
func (s *AppService) EntryCount(method string) int { return len(s.entries[method]) }

func (s *AppService) onTransact(call *binder.Call) error {
	ai, ok := s.methods[call.Code]
	if !ok {
		return fmt.Errorf("apps: %s: unknown code %d", s.stub.Class(), call.Code)
	}
	s.calls++
	jitter := time.Duration(s.rand().Int63n(int64(ai.Cost.Jitter) + 1))
	s.clock.Advance(ai.Cost.ExecBase/2 + jitter)
	ref, err := call.Data.ReadStrongBinder()
	if err != nil {
		return err
	}
	if ref == nil {
		s.clock.Advance(ai.Cost.ExecBase / 2)
		return nil
	}
	// The default base-class implementation retains the callback for the
	// life of the calling app (paper §IV-D: "all the JGR entries can be
	// revoked only when the requesting third-party app exits").
	ref.Retain()
	name := methodNameOf(ai.Method)
	e := &appEntry{ref: ref, pid: call.SenderPid}
	if link, lerr := ref.Binder().LinkToDeath(func() { s.drop(name, e) }); lerr == nil {
		e.link = link
	}
	if s.entries == nil {
		s.entries = make(map[string][]*appEntry)
	}
	s.entries[name] = append(s.entries[name], e)
	s.clock.Advance(ai.Cost.ExecBase / 2)
	call.Reply.WriteInt32(0)
	return nil
}

func (s *AppService) drop(method string, e *appEntry) {
	es := s.entries[method]
	for i, cur := range es {
		if cur == e {
			s.entries[method] = append(es[:i], es[i+1:]...)
			break
		}
	}
	if e.link != nil {
		e.link.Unlink()
	}
	e.ref.Release()
}

// InstallWithUid registers a package under a fixed uid — used for prebuilt
// core apps, which own reserved uids (e.g. Bluetooth's AID_BLUETOOTH) and
// must not consume the sequential third-party uid space.
func (m *Manager) InstallWithUid(pkg string, uid kernel.Uid, wants ...permissions.Permission) (*App, error) {
	if pkg == "" {
		return nil, errors.New("apps: empty package name")
	}
	if _, ok := m.byPkg[pkg]; ok {
		return nil, fmt.Errorf("install %s: %w", pkg, ErrAlreadyInstalled)
	}
	if _, ok := m.byUid[uid]; ok {
		return nil, fmt.Errorf("install %s: uid %d already taken", pkg, uid)
	}
	a := &App{pkg: pkg, uid: uid, mgr: m}
	for _, p := range wants {
		if err := m.perms.Grant(a.uid, p); err != nil {
			return nil, fmt.Errorf("install %s: %w", pkg, err)
		}
	}
	m.byPkg[pkg] = a
	m.byUid[a.uid] = a
	return a, nil
}
