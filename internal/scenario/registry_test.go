package scenario

import (
	"context"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/telemetry"
)

// TestBuiltinCoverage pins the registry's surface: every table, figure
// and study of the evaluation is registered, groups are complete, and
// the sweep-style scenarios advertise their parallel engine.
func TestBuiltinCoverage(t *testing.T) {
	all := List()
	if len(all) < 20 {
		t.Fatalf("registered scenarios = %d, want ≥ 20", len(all))
	}
	want := []string{
		"headline", "audit-static", "table-i", "table-ii", "table-iii", "table-iv", "table-v",
		"fig3", "fig5", "fig6", "obs2", "bypass",
		"fig4",
		"fig8", "fig9", "fig10", "delays", "thresholds",
		"multipath", "limitations", "patch",
	}
	for _, name := range want {
		if _, ok := Lookup(name); !ok {
			t.Errorf("scenario %q not registered", name)
		}
	}
	groups := make(map[string]int)
	parallel := 0
	for _, s := range all {
		groups[s.Group]++
		if s.Parallelizable {
			parallel++
			if s.Shards == nil {
				t.Errorf("%s: parallelizable but no Shards", s.Name)
			}
		}
		if s.Description == "" {
			t.Errorf("%s: empty description", s.Name)
		}
	}
	for _, g := range []string{GroupAnalysis, GroupAttack, GroupBaseline, GroupDefense, GroupExtension} {
		if groups[g] == 0 {
			t.Errorf("group %s has no scenarios", g)
		}
	}
	if parallel < 9 {
		t.Errorf("parallelizable scenarios = %d, want ≥ 9", parallel)
	}
}

// TestListSorted: List returns a stable group-then-name order, so front
// ends (jgre-run list, jgre-bench) enumerate deterministically.
func TestListSorted(t *testing.T) {
	all := List()
	for i := 1; i < len(all); i++ {
		a, b := all[i-1], all[i]
		if a.Group > b.Group || (a.Group == b.Group && a.Name >= b.Name) {
			t.Errorf("List not sorted at %d: %s/%s before %s/%s", i, a.Group, a.Name, b.Group, b.Name)
		}
	}
}

func TestRegisterRejectsDuplicatesAndIncomplete(t *testing.T) {
	mustPanic := func(name string, s Scenario) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: Register did not panic", name)
			}
		}()
		Register(s)
	}
	run := func(ctx context.Context, p Params) (any, error) { return nil, nil }
	mustPanic("duplicate", Scenario{Name: "fig3", Group: "attack", Run: run})
	mustPanic("no name", Scenario{Group: "attack", Run: run})
	mustPanic("no run", Scenario{Name: "x-no-run", Group: "attack"})
}

func TestExecuteUnknownScenario(t *testing.T) {
	if _, err := Execute(context.Background(), "no-such-scenario", Params{}); err == nil {
		t.Fatal("no error for unknown scenario")
	}
}

func TestParseScale(t *testing.T) {
	for name, want := range map[string]Scale{"quick": Quick, "": Quick, "full": Full} {
		got, err := ParseScale(name)
		if err != nil || got != want {
			t.Errorf("ParseScale(%q) = %v, %v", name, got, err)
		}
	}
	if _, err := ParseScale("huge"); err == nil {
		t.Error("ParseScale accepted an unknown scale")
	}
	if Quick.String() != "quick" || Full.String() != "full" {
		t.Error("Scale.String mismatch")
	}
}

// TestEnvelopeShape runs a cheap scenario end to end and checks the
// shared envelope: identity fields, wall time, and the canonical
// rendering that zeroes the run metadata.
func TestEnvelopeShape(t *testing.T) {
	env, err := Execute(context.Background(), "table-i",
		Params{Scale: Quick, Workers: 3, Seed: 42, Filter: []string{"x"}})
	if err != nil {
		t.Fatal(err)
	}
	if env.Scenario != "table-i" || env.Group != GroupAnalysis || env.Scale != "quick" ||
		env.Seed != 42 || env.Workers != 3 {
		t.Fatalf("envelope identity wrong: %+v", env)
	}
	text, ok := env.Result.(string)
	if !ok || !strings.Contains(text, "Table I") {
		t.Fatalf("table-i result = %T", env.Result)
	}

	out, err := env.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var decoded map[string]any
	if err := json.Unmarshal(out, &decoded); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"scenario", "group", "scale", "seed", "filter", "workers", "wall_ms", "result"} {
		if _, ok := decoded[key]; !ok {
			t.Errorf("envelope JSON missing %q", key)
		}
	}

	canon, err := env.CanonicalJSON()
	if err != nil {
		t.Fatal(err)
	}
	var c Envelope
	if err := json.Unmarshal(canon, &c); err != nil {
		t.Fatal(err)
	}
	if c.WallMS != 0 || c.Workers != 0 {
		t.Errorf("canonical JSON kept run metadata: wall=%v workers=%d", c.WallMS, c.Workers)
	}
	if c.Scenario != "table-i" || c.Seed != 42 {
		t.Errorf("canonical JSON lost identity: %+v", c)
	}
}

// TestTelemetryExport checks the Params.Metrics path: the envelope
// carries a snapshot of the global registry, and the canonical bytes —
// the equivalence currency — never see it.
func TestTelemetryExport(t *testing.T) {
	telemetry.ResetGlobal()
	env, err := Execute(context.Background(), "delays",
		Params{Scale: Quick, Workers: 2, Metrics: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(env.Telemetry) == 0 {
		t.Fatal("Metrics=true produced no telemetry snapshot")
	}
	if v, ok := env.Telemetry["jgre_parallel_shards_total"]; !ok || v == 0 {
		t.Fatalf("snapshot missing worker-pool counters: %v", env.Telemetry)
	}
	out, err := env.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(out), `"telemetry"`) {
		t.Fatal("JSON envelope missing telemetry block")
	}

	// The snapshot must not leak into the equivalence bytes: the same
	// run without export is canonically identical.
	telemetry.ResetGlobal()
	plain, err := Execute(context.Background(), "delays",
		Params{Scale: Quick, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if plain.Telemetry != nil {
		t.Fatal("Metrics=false still exported telemetry")
	}
	a, err := env.CanonicalJSON()
	if err != nil {
		t.Fatal(err)
	}
	b, err := plain.CanonicalJSON()
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Fatalf("telemetry export changed canonical bytes:\n%s\n%s", a, b)
	}
	if strings.Contains(string(a), "telemetry") {
		t.Fatal("canonical bytes contain the telemetry block")
	}
}
