package scenario

import "testing"

func TestSuggest(t *testing.T) {
	cases := []struct {
		typed, want string
	}{
		{"fig33", "fig3"},
		{"figg8", "fig8"},
		{"table-1", "table-i"},
		{"deg-drip", "deg-drop"},
		{"headlin", "headline"},
		{"delay", "delays"},
		{"zzzzzzzzzz", ""},
		{"", ""},
	}
	for _, c := range cases {
		if got := Suggest(c.typed); got != c.want {
			t.Errorf("Suggest(%q) = %q, want %q", c.typed, got, c.want)
		}
	}
}

func TestEditDistance(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"", "", 0},
		{"fig3", "fig3", 0},
		{"fig3", "fig8", 1},
		{"abc", "", 3},
		{"kitten", "sitting", 3},
	}
	for _, c := range cases {
		if got := editDistance(c.a, c.b); got != c.want {
			t.Errorf("editDistance(%q, %q) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

// TestRobustnessGroupRegistered: the degradation scenarios must be present
// and correctly flagged for the registry-driven front ends.
func TestRobustnessGroupRegistered(t *testing.T) {
	for _, name := range []string{"deg-drop", "deg-jitter", "deg-ring"} {
		s, ok := Lookup(name)
		if !ok {
			t.Fatalf("%s not registered", name)
		}
		if s.Group != GroupRobustness {
			t.Errorf("%s group = %q, want %q", name, s.Group, GroupRobustness)
		}
		if !s.Parallelizable || !s.Slow {
			t.Errorf("%s flags = parallelizable %v slow %v, want both true", name, s.Parallelizable, s.Slow)
		}
		if s.Shards == nil {
			t.Errorf("%s missing Shards", name)
		}
	}
}
