package scenario

import (
	"context"

	"repro/internal/experiments"
)

// GroupChaos holds the lifecycle chaos / recovery studies.
const GroupChaos = "chaos"

// chaosShards counts a chaos sweep's fan-out: one device per
// (point, trial) pair.
func chaosShards(result any) int {
	res, _ := result.(*experiments.ChaosResult)
	if res == nil {
		return 0
	}
	n := 0
	for _, p := range res.Points {
		n += p.Trials
	}
	return n
}

func init() {
	axes := []struct {
		axis, description string
	}{
		{"crash", "lifecycle chaos sweep: detection rate vs. service/app crash rate under supervised restart"},
		{"backoff", "lifecycle chaos sweep: detection rate vs. supervisor restart backoff at fixed churn"},
		{"checkpoint", "lifecycle chaos sweep: detection under defender kill/restore across checkpoint modes (none/sync/warm/cold)"},
	}
	for _, a := range axes {
		axis := a.axis
		Register(Scenario{
			Name:           "chaos-" + axis,
			Group:          GroupChaos,
			Description:    a.description,
			Parallelizable: true,
			Slow:           true,
			Run: func(ctx context.Context, p Params) (any, error) {
				return experiments.ChaosSweep(ctx, expScale(p.Scale), axis, p.Workers)
			},
			Shards: chaosShards,
		})
	}
}
