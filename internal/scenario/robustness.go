package scenario

import (
	"context"

	"repro/internal/experiments"
)

// GroupRobustness holds the fault-injection degradation studies.
const GroupRobustness = "robustness"

// degShards counts a degradation sweep's fan-out: one device per
// (point, trial) pair.
func degShards(result any) int {
	res, _ := result.(*experiments.DegradationResult)
	if res == nil {
		return 0
	}
	n := 0
	for _, p := range res.Points {
		n += p.Trials
	}
	return n
}

func init() {
	axes := []struct {
		axis, description string
	}{
		{"drop", "degradation sweep: defender accuracy and response delay vs. IPC-log record drop rate"},
		{"jitter", "degradation sweep: defender accuracy vs. log timestamp jitter, with adaptive-Δ widening"},
		{"ring", "degradation sweep: defender accuracy vs. kernel ring-buffer capacity (oldest-first eviction)"},
	}
	for _, a := range axes {
		axis := a.axis
		Register(Scenario{
			Name:           "deg-" + axis,
			Group:          GroupRobustness,
			Description:    a.description,
			Parallelizable: true,
			Slow:           true,
			Run: func(ctx context.Context, p Params) (any, error) {
				return experiments.DegradationSweep(ctx, expScale(p.Scale), axis, p.Workers)
			},
			Shards: degShards,
		})
	}
}
