package scenario

import (
	"bytes"
	"context"
	"testing"

	"repro/internal/device"
)

// TestCloneBootEquivalence asserts the snapshot/clone core's guarantee
// over the whole registry: every scenario produces a byte-identical
// canonical envelope whether its devices are fresh boots or
// copy-on-write clones of a sealed template (wall time is the only run
// metadata allowed to differ). The list comes from List(), so new
// scenarios are covered the moment they register. The test is serial —
// SetCloneBoot is a process-global toggle — but each pass is cheap at
// Quick scale.
func TestCloneBootEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every scenario twice; skipped under -short")
	}
	defer device.SetCloneBoot(true)
	for _, sc := range List() {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			run := func(cloneBoot bool) []byte {
				device.SetCloneBoot(cloneBoot)
				env, err := sc.Execute(context.Background(), Params{Scale: Quick, Workers: 1})
				if err != nil {
					t.Fatalf("cloneBoot=%v: %v", cloneBoot, err)
				}
				b, err := env.CanonicalJSON()
				if err != nil {
					t.Fatal(err)
				}
				return b
			}
			fresh, cloned := run(false), run(true)
			if !bytes.Equal(fresh, cloned) {
				t.Errorf("fresh-boot and clone-boot envelopes differ\nfresh: %.400s\nclone: %.400s", fresh, cloned)
			}
		})
	}
}
