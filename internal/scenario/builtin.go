package scenario

import (
	"context"

	"repro/internal/analysis"
	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/experiments"
)

// expScale converts the registry's Scale to the experiments package's.
func expScale(s Scale) experiments.Scale {
	if s == Full {
		return experiments.Full
	}
	return experiments.Quick
}

// HeadlineSummary is the headline scenario's envelope payload: the §IV
// funnel plus the dynamic stage's verdicts, without the multi-megabyte
// program model the pipeline result drags along.
type HeadlineSummary struct {
	Funnel           analysis.Funnel
	ZeroPermServices int
	Confirmed        []analysis.Finding
	Rejected         []analysis.Rejection
}

// Scenario groups.
const (
	GroupAnalysis  = "analysis"
	GroupAttack    = "attack"
	GroupBaseline  = "baseline"
	GroupDefense   = "defense"
	GroupExtension = "extension"
)

// rowCount is the Shards implementation for slice-valued results.
func rowCount[T any](result any) int {
	rows, _ := result.([]T)
	return len(rows)
}

func init() {
	// --- analysis: the §III/§IV pipeline and the paper's tables.
	Register(Scenario{
		Name:           "headline",
		Group:          GroupAnalysis,
		Description:    "four-step pipeline over the synthesized corpus; §IV headline numbers (54 interfaces, 32 services)",
		Parallelizable: true,
		Slow:           true,
		Run: func(ctx context.Context, p Params) (any, error) {
			res, err := experiments.Headline(ctx, expScale(p.Scale), p.Workers)
			if err != nil {
				return nil, err
			}
			return &HeadlineSummary{
				Funnel:           res.Funnel,
				ZeroPermServices: res.ZeroPermServices,
				Confirmed:        res.Pipeline.Verify.Confirmed,
				Rejected:         res.Pipeline.Verify.Rejected,
			}, nil
		},
		Shards: func(result any) int {
			s, _ := result.(*HeadlineSummary)
			if s == nil {
				return 0
			}
			return len(s.Confirmed) + len(s.Rejected)
		},
	})
	Register(Scenario{
		Name:        "audit-static",
		Group:       GroupAnalysis,
		Description: "static stages only (extract, JGR entries, detect, sift); the candidate funnel without a device",
		Run: func(ctx context.Context, p Params) (any, error) {
			res, err := core.Audit(core.AuditConfig{ThirdPartyApps: catalog.ThirdPartyScanCount})
			if err != nil {
				return nil, err
			}
			return res.Funnel(), nil
		},
	})
	tables := []struct {
		name, description string
		format            func() string
	}{
		{"table-i", "Table I: unprotected vulnerable IPC interfaces with their permissions", core.FormatTableI},
		{"table-ii", "Table II: interfaces protected only by service helper classes", core.FormatTableII},
		{"table-iii", "Table III: interfaces with per-process constraints", core.FormatTableIII},
		{"table-iv", "Table IV: vulnerable prebuilt core apps", core.FormatTableIV},
		{"table-v", "Table V: vulnerable third-party apps", core.FormatTableV},
	}
	for _, tb := range tables {
		format := tb.format
		Register(Scenario{
			Name:        tb.name,
			Group:       GroupAnalysis,
			Description: tb.description,
			Run: func(ctx context.Context, p Params) (any, error) {
				return format(), nil
			},
		})
	}

	// --- attack: the exhaustion dynamics (Fig. 3, 5, 6) and bypasses.
	Register(Scenario{
		Name:           "fig3",
		Group:          GroupAttack,
		Description:    "Fig. 3: per-interface JGR growth curves to exhaustion (Filter restricts the interface set)",
		Parallelizable: true,
		Slow:           true,
		Run: func(ctx context.Context, p Params) (any, error) {
			return experiments.Fig3AttackCurves(ctx, expScale(p.Scale), p.Filter, p.Workers)
		},
		Shards: rowCount[experiments.AttackCurve],
	})
	Register(Scenario{
		Name:        "fig5",
		Group:       GroupAttack,
		Description: "Fig. 5: execution-time growth of telephony.registry.listenForSubscriber under attack",
		Run: func(ctx context.Context, p Params) (any, error) {
			return experiments.Fig5ExecutionGrowth(expScale(p.Scale))
		},
	})
	Register(Scenario{
		Name:           "fig6",
		Group:          GroupAttack,
		Description:    "Fig. 6: per-interface execution-time distributions (min/p50/p90/max)",
		Parallelizable: true,
		Slow:           true,
		Run: func(ctx context.Context, p Params) (any, error) {
			return experiments.Fig6LatencyCDF(ctx, expScale(p.Scale), p.Workers)
		},
		Shards: func(result any) int {
			res, _ := result.(*experiments.Fig6Result)
			if res == nil {
				return 0
			}
			return len(res.PerInterface)
		},
	})
	Register(Scenario{
		Name:        "obs2",
		Group:       GroupAttack,
		Description: "Observation 2: per-interface IPC→JGR delay = Delay + Δ, and the fleet-wide mean Δ",
		Run: func(ctx context.Context, p Params) (any, error) {
			return experiments.Observation2(expScale(p.Scale))
		},
	})
	Register(Scenario{
		Name:           "bypass",
		Group:          GroupAttack,
		Description:    "Table II/III bypass study: helper guards and per-process constraints vs. direct binder access",
		Parallelizable: true,
		Run: func(ctx context.Context, p Params) (any, error) {
			return experiments.ProtectedBypass(ctx, p.Workers)
		},
		Shards: rowCount[experiments.BypassRow],
	})

	// --- baseline: the benign workload (Fig. 4, Observation 1).
	Register(Scenario{
		Name:        "fig4",
		Group:       GroupBaseline,
		Description: "Fig. 4: system_server JGR size and process count under the benign top-app workload",
		Run: func(ctx context.Context, p Params) (any, error) {
			return experiments.Fig4BenignBaseline(expScale(p.Scale))
		},
	})

	// --- defense: the §V defender evaluation.
	Register(Scenario{
		Name:           "fig8",
		Group:          GroupDefense,
		Description:    "Fig. 8: per-vulnerability suspicious-call scores, malicious vs. top benign app",
		Parallelizable: true,
		Run: func(ctx context.Context, p Params) (any, error) {
			return experiments.Fig8SingleAttacker(ctx, expScale(p.Scale), p.Workers)
		},
		Shards: rowCount[experiments.Fig8Row],
	})
	Register(Scenario{
		Name:           "fig9",
		Group:          GroupDefense,
		Description:    "Fig. 9: colluding-apps attack, top-app scores across the Δ sweep",
		Parallelizable: true,
		Run: func(ctx context.Context, p Params) (any, error) {
			return experiments.Fig9Colluders(ctx, expScale(p.Scale), p.Workers)
		},
		Shards: func(result any) int {
			res, _ := result.(*experiments.Fig9Result)
			if res == nil {
				return 0
			}
			return len(res.Deltas)
		},
	})
	Register(Scenario{
		Name:        "fig10",
		Group:       GroupDefense,
		Description: "Fig. 10: IPC latency vs. payload, stock vs. defense framework",
		Run: func(ctx context.Context, p Params) (any, error) {
			return experiments.Fig10IPCOverhead(expScale(p.Scale))
		},
	})
	Register(Scenario{
		Name:           "delays",
		Group:          GroupDefense,
		Description:    "§V-D1: per-vulnerability response delays of attack-source identification",
		Parallelizable: true,
		Run: func(ctx context.Context, p Params) (any, error) {
			return experiments.ResponseDelays(ctx, expScale(p.Scale), p.Workers)
		},
		Shards: rowCount[experiments.DelayRow],
	})
	Register(Scenario{
		Name:           "thresholds",
		Group:          GroupDefense,
		Description:    "alarm/engage threshold ablation around the paper's 4,000/12,000",
		Parallelizable: true,
		Run: func(ctx context.Context, p Params) (any, error) {
			return experiments.ThresholdAblation(ctx, p.Workers)
		},
		Shards: rowCount[experiments.ThresholdRow],
	})

	// --- extension: the §VI studies beyond the paper's evaluation.
	Register(Scenario{
		Name:        "multipath",
		Group:       GroupExtension,
		Description: "§VI multi-path evasion study: path smearing vs. Algorithm 1's classification",
		Run: func(ctx context.Context, p Params) (any, error) {
			return experiments.MultiPathStudy(expScale(p.Scale))
		},
	})
	Register(Scenario{
		Name:        "limitations",
		Group:       GroupExtension,
		Description: "§VI covert-channel limitation study: exhaustion without binder evidence",
		Run: func(ctx context.Context, p Params) (any, error) {
			return experiments.LimitationStudy(expScale(p.Scale))
		},
	})
	Register(Scenario{
		Name:           "patch",
		Group:          GroupExtension,
		Description:    "§IV-B counterfactual: a universal per-process quota, its usability cost and collusion ceiling",
		Parallelizable: true,
		Slow:           true,
		Run: func(ctx context.Context, p Params) (any, error) {
			return experiments.PatchStudy(ctx, p.Workers)
		},
		Shards: rowCount[experiments.PatchRow],
	})
}
