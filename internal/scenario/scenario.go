// Package scenario is the experiment registry: every table, figure and
// study of the paper's evaluation registers itself here under a stable
// name, and every front end (the cmd tools, the unified jgre-run, the
// jgre-bench timing harness and the equivalence/cancellation tests)
// drives the same registry instead of maintaining its own experiment
// list. A scenario couples a Run function to the metadata the front ends
// need: its group, whether its sweep fans out over a worker pool with
// worker-count-independent results, and how to count its shards.
package scenario

import (
	"context"
	"encoding/json"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/telemetry"
)

// Scale selects the experiment size. Quick shrinks the paper's
// parameters for tests and benchmarks while preserving every qualitative
// result; Full reproduces them on virtual time.
type Scale int

// Available scales.
const (
	Quick Scale = iota
	Full
)

// String returns "quick" or "full".
func (s Scale) String() string {
	if s == Full {
		return "full"
	}
	return "quick"
}

// ParseScale maps the cmd tools' -scale flag values to a Scale.
func ParseScale(name string) (Scale, error) {
	switch name {
	case "quick", "":
		return Quick, nil
	case "full":
		return Full, nil
	default:
		return Quick, fmt.Errorf("scenario: unknown scale %q (want quick or full)", name)
	}
}

// Params are the shared knobs every scenario accepts. Scenarios ignore
// the fields they have no use for (most experiments pin their own boot
// seeds to stay reproducible).
type Params struct {
	Scale Scale
	// Workers sizes the sweep's worker pool (0 = one per CPU, 1 =
	// sequential). Parallelizable scenarios produce identical results
	// for any value; the rest ignore it.
	Workers int
	// Seed is recorded in the envelope for provenance. Registered
	// scenarios pin their own device seeds, so today it only labels the
	// run.
	Seed int64
	// Filter restricts a sweep to the named targets (scenario-specific;
	// fig3 takes interface names like "audio.startWatchingRoutes"). Nil
	// means the full sweep.
	Filter []string
	// Metrics exports a snapshot of the process-global telemetry registry
	// (worker-pool and object-pool counters) into the envelope after the
	// run. Export never perturbs the result: the canonical bytes zero the
	// snapshot out, so runs with and without it stay equivalent.
	Metrics bool
}

// Scenario is one registered experiment.
type Scenario struct {
	// Name is the stable registry key ("fig3", "table-i", "delays", …).
	Name string
	// Group buckets scenarios by subsystem: "analysis", "attack",
	// "baseline", "defense" or "extension".
	Group string
	// Description is the one-line human summary jgre-run list prints.
	Description string
	// Parallelizable marks scenarios whose Run fans out over
	// Params.Workers with byte-identical results for any worker count —
	// the engine guarantee jgre-bench and the equivalence tests verify.
	Parallelizable bool
	// Slow marks scenarios too expensive to run twice under -short; the
	// registry-driven equivalence tests skip them in short mode.
	Slow bool
	// Run executes the experiment and returns its result (a
	// JSON-marshalable value).
	Run func(ctx context.Context, p Params) (any, error)
	// Shards reports the fan-out width of a result (how many independent
	// devices the sweep booted), for jgre-bench's report. Nil means
	// unknown.
	Shards func(result any) int
}

var (
	mu       sync.RWMutex
	registry = make(map[string]Scenario)
)

// Register adds a scenario to the registry. It panics on a duplicate or
// incomplete registration — both are programming errors caught at init.
func Register(s Scenario) {
	if s.Name == "" || s.Group == "" || s.Run == nil {
		panic(fmt.Sprintf("scenario: incomplete registration %+v", s))
	}
	mu.Lock()
	defer mu.Unlock()
	if _, dup := registry[s.Name]; dup {
		panic(fmt.Sprintf("scenario: duplicate registration %q", s.Name))
	}
	registry[s.Name] = s
}

// Lookup returns the named scenario.
func Lookup(name string) (Scenario, bool) {
	mu.RLock()
	defer mu.RUnlock()
	s, ok := registry[name]
	return s, ok
}

// List returns every registered scenario, sorted by group then name, so
// front ends enumerate a stable order.
func List() []Scenario {
	mu.RLock()
	defer mu.RUnlock()
	out := make([]Scenario, 0, len(registry))
	for _, s := range registry {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Group != out[j].Group {
			return out[i].Group < out[j].Group
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// Envelope is the common JSON result wrapper every front end emits: the
// scenario's identity, the parameters it ran under, the wall-clock time
// it took and its result.
type Envelope struct {
	Scenario string   `json:"scenario"`
	Group    string   `json:"group"`
	Scale    string   `json:"scale"`
	Seed     int64    `json:"seed,omitempty"`
	Filter   []string `json:"filter,omitempty"`
	Workers  int      `json:"workers"`
	// FleetDevices is the fleet width of a fleet scenario's sweep (how
	// many devices the rollup folded), sniffed from the result via the
	// FleetDevices() interface. Zero for non-fleet scenarios.
	FleetDevices int     `json:"fleet_devices,omitempty"`
	WallMS       float64 `json:"wall_ms"`
	Result       any     `json:"result"`
	// Telemetry is the process-global metrics snapshot taken after the
	// run when Params.Metrics was set (series name → value).
	Telemetry map[string]float64 `json:"telemetry,omitempty"`
}

// Execute runs the scenario and wraps its result in the envelope.
func (s Scenario) Execute(ctx context.Context, p Params) (*Envelope, error) {
	start := time.Now()
	res, err := s.Run(ctx, p)
	if err != nil {
		return nil, fmt.Errorf("scenario: %s: %w", s.Name, err)
	}
	env := &Envelope{
		Scenario: s.Name,
		Group:    s.Group,
		Scale:    p.Scale.String(),
		Seed:     p.Seed,
		Filter:   p.Filter,
		Workers:  p.Workers,
		WallMS:   float64(time.Since(start)) / float64(time.Millisecond),
		Result:   res,
	}
	if fd, ok := res.(interface{ FleetDevices() int }); ok {
		env.FleetDevices = fd.FleetDevices()
	}
	if p.Metrics {
		env.Telemetry = telemetry.Global().Snapshot()
	}
	return env, nil
}

// Execute looks the scenario up by name and runs it.
func Execute(ctx context.Context, name string, p Params) (*Envelope, error) {
	s, ok := Lookup(name)
	if !ok {
		return nil, fmt.Errorf("scenario: unknown scenario %q", name)
	}
	return s.Execute(ctx, p)
}

// JSON renders the envelope indented, newline-terminated — the -json
// output of every cmd tool.
func (e *Envelope) JSON() ([]byte, error) {
	b, err := json.MarshalIndent(e, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("scenario: marshalling %s envelope: %w", e.Scenario, err)
	}
	return append(b, '\n'), nil
}

// CanonicalJSON renders the envelope with the run metadata that
// legitimately varies between runs — wall-clock time, the worker count
// and the telemetry snapshot (whose pool/worker counters depend on
// both) — zeroed out. Two runs of the same scenario are equivalent iff
// their canonical bytes match; this is the equality the workers=1-vs-N
// tests and jgre-bench assert.
func (e *Envelope) CanonicalJSON() ([]byte, error) {
	c := *e
	c.WallMS = 0
	c.Workers = 0
	c.Telemetry = nil
	b, err := json.Marshal(&c)
	if err != nil {
		return nil, fmt.Errorf("scenario: marshalling %s envelope: %w", e.Scenario, err)
	}
	return b, nil
}
