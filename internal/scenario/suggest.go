package scenario

// Suggest returns the registered scenario name closest to the (unknown)
// name the user typed, or "" when nothing is plausibly close. Closeness is
// Levenshtein edit distance, capped at 3 edits and at half the typed
// name's length so short typos still match ("fig → fig3") while garbage
// does not. Ties break toward the lexicographically smaller name, keeping
// the suggestion deterministic.
func Suggest(name string) string {
	if name == "" {
		return ""
	}
	limit := len(name) / 2
	if limit > 3 {
		limit = 3
	}
	if limit == 0 {
		limit = 1
	}
	best, bestDist := "", limit+1
	for _, s := range List() {
		if d := editDistance(name, s.Name); d < bestDist {
			best, bestDist = s.Name, d
		}
	}
	return best
}

// editDistance is the classic two-row Levenshtein distance.
func editDistance(a, b string) int {
	if a == b {
		return 0
	}
	prev := make([]int, len(b)+1)
	cur := make([]int, len(b)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(a); i++ {
		cur[0] = i
		for j := 1; j <= len(b); j++ {
			cost := 1
			if a[i-1] == b[j-1] {
				cost = 0
			}
			cur[j] = min3(prev[j]+1, cur[j-1]+1, prev[j-1]+cost)
		}
		prev, cur = cur, prev
	}
	return prev[len(b)]
}

func min3(a, b, c int) int {
	if b < a {
		a = b
	}
	if c < a {
		a = c
	}
	return a
}
