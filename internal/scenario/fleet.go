package scenario

import (
	"context"

	"repro/internal/fleet"
)

// GroupFleet buckets the fleet-scale scenarios: sharded sweeps over
// hundreds to thousands of recycled device slots with streaming,
// bounded-memory rollups.
const GroupFleet = "fleet"

// fleetWidth is the fleet size per scale. Quick already runs a
// four-figure fleet — the whole point of slot recycling is that a
// thousand devices cost tens of milliseconds, not minutes.
func fleetWidth(s Scale) int {
	if s == Full {
		return 4096
	}
	return 1024
}

// fleetParams maps registry params onto a fleet config. The fleet seed
// is pinned (like every registered scenario's device seeds) so envelopes
// are reproducible; Params.Seed stays a provenance label.
func fleetParams(p Params, devices int) fleet.Config {
	return fleet.Config{
		Devices: devices,
		Workers: p.Workers,
		Seed:    1042,
	}
}

// fleetShards reports the fleet width as the sweep's fan-out.
func fleetShards(result any) int {
	r, _ := result.(*fleet.Result)
	if r == nil {
		return 0
	}
	return r.Devices
}

func init() {
	Register(Scenario{
		Name:           "fleet-baseline",
		Group:          GroupFleet,
		Description:    "benign probe across a 1k+ device fleet on recycled slots; devices/sec headline and health rollup",
		Parallelizable: true,
		Run: func(ctx context.Context, p Params) (any, error) {
			return fleet.Run(ctx, fleetParams(p, fleetWidth(p.Scale)), fleet.BaselineProbe())
		},
		Shards: fleetShards,
	})
	Register(Scenario{
		Name:           "fleet-attack-rollout",
		Group:          GroupFleet,
		Description:    "staged JGRE infection ramping 0→100% across the fleet; detection-rate and time-to-recovery rollups",
		Parallelizable: true,
		Slow:           true,
		Run: func(ctx context.Context, p Params) (any, error) {
			devices := fleetWidth(p.Scale)
			return fleet.Run(ctx, fleetParams(p, devices), fleet.AttackRollout(devices))
		},
		Shards: fleetShards,
	})
	Register(Scenario{
		Name:           "fleet-colluders",
		Group:          GroupFleet,
		Description:    "two-app colluder cells on a quarter of the fleet; attribution split of colluders caught vs innocents killed",
		Parallelizable: true,
		Slow:           true,
		Run: func(ctx context.Context, p Params) (any, error) {
			return fleet.Run(ctx, fleetParams(p, fleetWidth(p.Scale)), fleet.Colluders())
		},
		Shards: fleetShards,
	})
}
