package scenario

import (
	"bytes"
	"context"
	"errors"
	"testing"
	"time"
)

// TestParallelEquivalence asserts the engine's core guarantee over the
// whole registry: for every Parallelizable scenario, workers=1 and
// workers=8 produce byte-identical canonical envelopes (wall time and
// the worker count are the only run metadata allowed to differ). The
// scenario list comes from List(), not a hand-maintained table, so a new
// parallel sweep is covered the moment it registers.
func TestParallelEquivalence(t *testing.T) {
	for _, sc := range List() {
		if !sc.Parallelizable {
			continue
		}
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			if sc.Slow && testing.Short() {
				t.Skip("slow sweep runs twice; skipped under -short")
			}
			t.Parallel()
			run := func(workers int) []byte {
				env, err := sc.Execute(context.Background(), Params{Scale: Quick, Workers: workers})
				if err != nil {
					t.Fatalf("workers=%d: %v", workers, err)
				}
				b, err := env.CanonicalJSON()
				if err != nil {
					t.Fatal(err)
				}
				return b
			}
			seq, par := run(1), run(8)
			if !bytes.Equal(seq, par) {
				t.Errorf("workers=1 and workers=8 envelopes differ\nseq: %.400s\npar: %.400s", seq, par)
			}
		})
	}
}

// TestShardCounts: every Parallelizable scenario reports a positive
// fan-out width, the number jgre-bench prints per sweep.
func TestShardCounts(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every parallel sweep once")
	}
	for _, sc := range List() {
		if !sc.Parallelizable || sc.Shards == nil {
			continue
		}
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			t.Parallel()
			env, err := sc.Execute(context.Background(), Params{Scale: Quick})
			if err != nil {
				t.Fatal(err)
			}
			if n := sc.Shards(env.Result); n <= 0 {
				t.Errorf("Shards = %d, want > 0", n)
			}
		})
	}
}

// TestCancellationPropagates: cancelling the context mid-sweep makes Run
// return promptly with ctx.Err() in the chain, for at least one
// parallelizable scenario in every group that has one (the baseline
// group's only scenario is sequential). The pool's fail-fast semantics
// mean no full sweep runs after the cancel.
func TestCancellationPropagates(t *testing.T) {
	picked := make(map[string]Scenario)
	for _, sc := range List() {
		if sc.Parallelizable {
			if _, ok := picked[sc.Group]; !ok {
				picked[sc.Group] = sc
			}
		}
	}
	if len(picked) < 4 {
		t.Fatalf("parallelizable coverage spans %d groups, want ≥ 4", len(picked))
	}
	for _, sc := range picked {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			t.Parallel()
			ctx, cancel := context.WithCancel(context.Background())
			go func() {
				time.Sleep(time.Millisecond)
				cancel()
			}()
			start := time.Now()
			env, err := sc.Execute(ctx, Params{Scale: Quick, Workers: 4})
			elapsed := time.Since(start)
			if err == nil {
				// The sweep's first shards can legitimately win the race
				// against a 1 ms cancel only if the whole run is near-instant;
				// anything else must surface the cancellation.
				if elapsed > 100*time.Millisecond {
					t.Fatalf("no error despite cancellation (ran %v)", elapsed)
				}
				t.Skipf("sweep finished in %v before the cancel landed", elapsed)
			}
			if env != nil {
				t.Errorf("envelope returned alongside error: %+v", env)
			}
			if !errors.Is(err, context.Canceled) {
				t.Errorf("error does not wrap context.Canceled: %v", err)
			}
			// "Promptly": a cancelled sweep must not run anywhere near a
			// full one (the slowest full sweeps take seconds).
			if elapsed > 30*time.Second {
				t.Errorf("cancelled sweep still ran %v", elapsed)
			}
		})
	}
}
