package event

import (
	"math/rand"
	"sort"
	"testing"
	"time"
)

func TestQueueOrdersByTime(t *testing.T) {
	var q Queue[string]
	q.Push(30, 0, "c")
	q.Push(10, 0, "a")
	q.Push(20, 0, "b")
	if q.Len() != 3 {
		t.Fatalf("Len = %d, want 3", q.Len())
	}
	if at, ok := q.Peek(); !ok || at != 10 {
		t.Fatalf("Peek = (%v, %v), want (10, true)", at, ok)
	}
	for _, want := range []string{"a", "b", "c"} {
		v, _, ok := q.Pop()
		if !ok || v != want {
			t.Fatalf("Pop = (%q, %v), want (%q, true)", v, ok, want)
		}
	}
	if _, _, ok := q.Pop(); ok {
		t.Fatal("Pop on empty queue reported ok")
	}
	if _, ok := q.Peek(); ok {
		t.Fatal("Peek on empty queue reported ok")
	}
}

func TestQueueTieBreaksByPriThenSeq(t *testing.T) {
	var q Queue[int]
	// Same time: pri decides; same pri: insertion order decides.
	q.Push(5, 2, 0)
	q.Push(5, 1, 1)
	q.Push(5, 1, 2)
	q.Push(5, 0, 3)
	var got []int
	for q.Len() > 0 {
		v, _, _ := q.Pop()
		got = append(got, v)
	}
	want := []int{3, 1, 2, 0}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("pop order %v, want %v", got, want)
		}
	}
}

// refItem mirrors the queue's ordering key for the model-based tests.
type refItem struct {
	at  time.Duration
	pri uint64
	seq int
	v   int
}

type refQueue []refItem

func (r refQueue) popMin() (refItem, bool) {
	if len(r) == 0 {
		return refItem{}, false
	}
	min := 0
	for i := 1; i < len(r); i++ {
		a, b := r[i], r[min]
		if a.at != b.at {
			if a.at < b.at {
				min = i
			}
			continue
		}
		if a.pri != b.pri {
			if a.pri < b.pri {
				min = i
			}
			continue
		}
		if a.seq < b.seq {
			min = i
		}
	}
	return r[min], true
}

func (r *refQueue) remove(it refItem) {
	for i := range *r {
		if (*r)[i].seq == it.seq {
			*r = append((*r)[:i], (*r)[i+1:]...)
			return
		}
	}
}

// TestQueueMatchesReference drives the heap and a linear-scan reference
// model with the same random push/pop schedule and requires identical
// pop sequences.
func TestQueueMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var q Queue[int]
	var ref refQueue
	seq := 0
	for op := 0; op < 5000; op++ {
		if q.Len() == 0 || rng.Intn(3) != 0 {
			at := time.Duration(rng.Intn(50))
			pri := uint64(rng.Intn(4))
			seq++
			q.Push(at, pri, seq)
			ref = append(ref, refItem{at: at, pri: pri, seq: seq, v: seq})
		} else {
			v, at, ok := q.Pop()
			want, wantOK := ref.popMin()
			if ok != wantOK || v != want.v || at != want.at {
				t.Fatalf("op %d: Pop = (%d, %v, %v), reference (%d, %v, %v)",
					op, v, at, ok, want.v, want.at, wantOK)
			}
			ref.remove(want)
		}
	}
	// Drain: the remaining pops must come out fully sorted.
	var drained []refItem
	for q.Len() > 0 {
		v, at, _ := q.Pop()
		drained = append(drained, refItem{at: at, v: v})
	}
	if !sort.SliceIsSorted(drained, func(i, j int) bool { return drained[i].at < drained[j].at }) {
		t.Fatal("drained items not time-sorted")
	}
	if len(ref) != len(drained) {
		t.Fatalf("drained %d items, reference holds %d", len(drained), len(ref))
	}
}

// FuzzEventQueue differentially fuzzes the heap against the linear-scan
// reference: every byte pair of the input encodes one push (time, pri)
// or a pop, and the two implementations must agree on every pop.
func FuzzEventQueue(f *testing.F) {
	f.Add([]byte{0x01, 0x02, 0xff, 0x03, 0x04, 0xff, 0xff})
	f.Add([]byte{0x10, 0x00, 0x10, 0x01, 0xff, 0x10, 0x02, 0xff, 0xff, 0xff})
	f.Fuzz(func(t *testing.T, data []byte) {
		var q Queue[int]
		var ref refQueue
		seq := 0
		for i := 0; i < len(data); i++ {
			if data[i] == 0xff { // pop
				v, at, ok := q.Pop()
				want, wantOK := ref.popMin()
				if ok != wantOK {
					t.Fatalf("pop presence diverged: heap %v, reference %v", ok, wantOK)
				}
				if !ok {
					continue
				}
				if v != want.v || at != want.at {
					t.Fatalf("pop diverged: heap (%d at %v), reference (%d at %v)", v, at, want.v, want.at)
				}
				ref.remove(want)
				continue
			}
			if i+1 >= len(data) {
				break
			}
			at := time.Duration(data[i] % 32)
			pri := uint64(data[i+1] % 4)
			i++
			seq++
			q.Push(at, pri, seq)
			ref = append(ref, refItem{at: at, pri: pri, seq: seq, v: seq})
		}
		if q.Len() != len(ref) {
			t.Fatalf("length diverged: heap %d, reference %d", q.Len(), len(ref))
		}
	})
}
