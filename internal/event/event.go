// Package event provides the deterministic priority queue at the heart
// of the discrete-event simulation core. Items are ordered by virtual
// time; ties are broken first by a caller-assigned priority (the workload
// scheduler uses actor registration order, preserving the semantics of
// the old linear min-Due scan, where the earlier-registered actor won a
// tie) and then by insertion sequence, so a run replays byte-identically
// regardless of heap-internal layout.
package event

import "time"

// Queue is a deterministic min-heap over (at, pri, seq). The zero value
// is an empty queue ready to use. Queue is not safe for concurrent use;
// the simulation core drives it from a single goroutine.
type Queue[T any] struct {
	items []item[T]
	seq   uint64
}

type item[T any] struct {
	at  time.Duration
	pri uint64
	seq uint64
	v   T
}

// less orders the heap: earliest time first, then lowest priority number,
// then earliest insertion. The triple is a total order over live items
// (seq is unique), which is what makes Pop deterministic.
func (q *Queue[T]) less(i, j int) bool {
	a, b := &q.items[i], &q.items[j]
	if a.at != b.at {
		return a.at < b.at
	}
	if a.pri != b.pri {
		return a.pri < b.pri
	}
	return a.seq < b.seq
}

// Len returns the number of queued items.
func (q *Queue[T]) Len() int { return len(q.items) }

// Push schedules v at virtual time at. pri breaks same-time ties (lower
// fires first); items equal on both fire in Push order.
func (q *Queue[T]) Push(at time.Duration, pri uint64, v T) {
	q.seq++
	q.items = append(q.items, item[T]{at: at, pri: pri, seq: q.seq, v: v})
	q.up(len(q.items) - 1)
}

// Peek returns the virtual time of the next item without removing it.
// ok is false when the queue is empty.
func (q *Queue[T]) Peek() (at time.Duration, ok bool) {
	if len(q.items) == 0 {
		return 0, false
	}
	return q.items[0].at, true
}

// Pop removes and returns the earliest item. ok is false when the queue
// is empty.
func (q *Queue[T]) Pop() (v T, at time.Duration, ok bool) {
	if len(q.items) == 0 {
		var zero T
		return zero, 0, false
	}
	top := q.items[0]
	last := len(q.items) - 1
	q.items[0] = q.items[last]
	var zero item[T]
	q.items[last] = zero // release v for GC
	q.items = q.items[:last]
	if last > 0 {
		q.down(0)
	}
	return top.v, top.at, true
}

func (q *Queue[T]) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !q.less(i, parent) {
			return
		}
		q.items[i], q.items[parent] = q.items[parent], q.items[i]
		i = parent
	}
}

func (q *Queue[T]) down(i int) {
	n := len(q.items)
	for {
		left := 2*i + 1
		if left >= n {
			return
		}
		min := left
		if right := left + 1; right < n && q.less(right, left) {
			min = right
		}
		if !q.less(min, i) {
			return
		}
		q.items[i], q.items[min] = q.items[min], q.items[i]
		i = min
	}
}
