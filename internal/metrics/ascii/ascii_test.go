package ascii

import (
	"math"
	"strings"
	"testing"
)

func TestSparkline(t *testing.T) {
	nan, inf := math.NaN(), math.Inf(1)
	cases := []struct {
		name   string
		values []float64
		width  int
		want   string
	}{
		{"empty", nil, 10, "(no data)"},
		{"all NaN", []float64{nan, nan}, 10, "(no data)"},
		{"all Inf", []float64{inf, -inf}, 10, "(no data)"},
		{"single point", []float64{42}, 10, "▁"},
		{"flat series", []float64{5, 5, 5}, 10, "▁▁▁"},
		{"ramp", []float64{0, 1, 2, 3, 4, 5, 6, 7}, 10, "▁▂▃▄▅▆▇█"},
		{"NaN skipped mid-series", []float64{0, nan, 7}, 10, "▁█"},
		{"Inf skipped mid-series", []float64{0, inf, 7, -inf}, 10, "▁█"},
		{"negative values", []float64{-7, 0}, 10, "▁█"},
		{"downsampled keeps spike", []float64{0, 0, 0, 9, 0, 0, 0, 0}, 4, "▁█▁▁"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := Sparkline(tc.values, tc.width); got != tc.want {
				t.Fatalf("Sparkline(%v, %d) = %q, want %q", tc.values, tc.width, got, tc.want)
			}
		})
	}
}

func TestSparklineDefaultWidth(t *testing.T) {
	values := make([]float64, 500)
	for i := range values {
		values[i] = float64(i)
	}
	got := Sparkline(values, 0)
	if n := len([]rune(got)); n != 60 {
		t.Fatalf("default-width sparkline has %d cells, want 60", n)
	}
}

func TestHistogramBars(t *testing.T) {
	cases := []struct {
		name   string
		bounds []float64
		counts []uint64
		want   []string // substrings that must appear
		exact  string   // full expected output when non-empty
	}{
		{
			name: "empty", bounds: []float64{1, 2}, counts: []uint64{0, 0, 0},
			exact: "(no observations)",
		},
		{
			name: "mismatched", bounds: []float64{1}, counts: []uint64{1},
			exact: "(malformed histogram: 1 bounds, 1 counts)",
		},
		{
			name: "basic", bounds: []float64{1, 10}, counts: []uint64{4, 2, 0},
			want: []string{"<=1 |", "<=10 |", "<=+Inf |", "| 4\n", "| 2\n", "| 0\n"},
		},
		{
			name: "fractional bound label", bounds: []float64{0.005}, counts: []uint64{1, 0},
			want: []string{"<=0.005"},
		},
		{
			name: "tiny count still visible", bounds: []float64{1}, counts: []uint64{1000, 1},
			want: []string{"<=+Inf |#", "| 1\n"},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := HistogramBars(tc.bounds, tc.counts, 20)
			if tc.exact != "" {
				if got != tc.exact {
					t.Fatalf("got %q, want %q", got, tc.exact)
				}
				return
			}
			for _, w := range tc.want {
				if !strings.Contains(got, w) {
					t.Fatalf("output missing %q:\n%s", w, got)
				}
			}
		})
	}
}

func TestHistogramBarsScaling(t *testing.T) {
	out := HistogramBars([]float64{1}, []uint64{10, 5}, 10)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("lines = %d, want 2", len(lines))
	}
	if !strings.Contains(lines[0], strings.Repeat("#", 10)) {
		t.Fatalf("max bucket not full width: %q", lines[0])
	}
	if !strings.Contains(lines[1], strings.Repeat("#", 5)) || strings.Contains(lines[1], strings.Repeat("#", 6)) {
		t.Fatalf("half bucket not half width: %q", lines[1])
	}
}

func TestMeter(t *testing.T) {
	nan := math.NaN()
	cases := []struct {
		name       string
		value, max float64
		want       string
	}{
		{"half", 5, 10, "[#####.....] 50.0%"},
		{"overflow clamps", 15, 10, "[##########] 100.0%"},
		{"negative clamps", -3, 10, "[..........] 0.0%"},
		{"zero max falls back", 7, 0, "7"},
		{"NaN max falls back", 7, nan, "7"},
		{"NaN value falls back", nan, 10, "NaN"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := Meter(tc.value, tc.max, 10); got != tc.want {
				t.Fatalf("Meter(%v, %v) = %q, want %q", tc.value, tc.max, got, tc.want)
			}
		})
	}
}
