// Package ascii renders compact terminal visualisations for telemetry
// series: one-line sparklines for sampled gauges and horizontal bar
// charts for histogram buckets. It is the drawing layer behind
// cmd/jgre-top's dumpsys-style dashboard, kept free of any dependency on
// the registry so tests can feed it raw values.
package ascii

import (
	"fmt"
	"math"
	"strings"
)

// sparkRunes are the eight block-element levels a sparkline cell can
// take, lowest to highest.
var sparkRunes = []rune("▁▂▃▄▅▆▇█")

// Sparkline renders values as a one-line block-character graph at most
// width cells wide (width <= 0 selects 60). Longer inputs are
// downsampled by bucket-maximum so short spikes stay visible; NaN and
// ±Inf samples are skipped. An empty or all-unplottable input renders
// "(no data)"; a flat series renders at the lowest level.
func Sparkline(values []float64, width int) string {
	if width <= 0 {
		width = 60
	}
	clean := values[:0:0]
	for _, v := range values {
		if !math.IsNaN(v) && !math.IsInf(v, 0) {
			clean = append(clean, v)
		}
	}
	if len(clean) == 0 {
		return "(no data)"
	}
	if len(clean) > width {
		clean = downsampleMax(clean, width)
	}
	lo, hi := clean[0], clean[0]
	for _, v := range clean {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	span := hi - lo
	var b strings.Builder
	for _, v := range clean {
		level := 0
		if span > 0 {
			level = int((v - lo) / span * float64(len(sparkRunes)-1))
		}
		b.WriteRune(sparkRunes[level])
	}
	return b.String()
}

// downsampleMax reduces values to width buckets, keeping each bucket's
// maximum.
func downsampleMax(values []float64, width int) []float64 {
	out := make([]float64, 0, width)
	for i := 0; i < width; i++ {
		start := i * len(values) / width
		end := (i + 1) * len(values) / width
		if end <= start {
			end = start + 1
		}
		max := values[start]
		for _, v := range values[start+1 : end] {
			if v > max {
				max = v
			}
		}
		out = append(out, max)
	}
	return out
}

// HistogramBars renders one horizontal bar per histogram bucket,
// labelled with its upper bound, the longest bar width cells wide
// (width <= 0 selects 40). bounds carries the finite upper bounds;
// counts must have len(bounds)+1 entries (the last is the +Inf
// overflow). Empty histograms render "(no observations)"; mismatched
// inputs render an error marker rather than panicking mid-dashboard.
func HistogramBars(bounds []float64, counts []uint64, width int) string {
	if width <= 0 {
		width = 40
	}
	if len(counts) != len(bounds)+1 {
		return fmt.Sprintf("(malformed histogram: %d bounds, %d counts)", len(bounds), len(counts))
	}
	var total, max uint64
	for _, c := range counts {
		total += c
		if c > max {
			max = c
		}
	}
	if total == 0 {
		return "(no observations)"
	}
	var b strings.Builder
	for i, c := range counts {
		label := "+Inf"
		if i < len(bounds) {
			label = formatBound(bounds[i])
		}
		bar := int(math.Round(float64(c) / float64(max) * float64(width)))
		if c > 0 && bar == 0 {
			bar = 1
		}
		fmt.Fprintf(&b, "%10s |%-*s| %d\n", "<="+label, width, strings.Repeat("#", bar), c)
	}
	return b.String()
}

// formatBound prints a bucket bound compactly (no trailing zeros, no
// scientific notation for the ranges the registry uses).
func formatBound(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%.0f", v)
	}
	return fmt.Sprintf("%g", v)
}

// Meter renders a bounded gauge as a filled bar with a percentage, e.g.
// "[#####.....] 50.0%". A non-positive or unplottable max renders the
// raw value alone.
func Meter(value, max float64, width int) string {
	if width <= 0 {
		width = 20
	}
	if max <= 0 || math.IsNaN(max) || math.IsInf(max, 0) || math.IsNaN(value) || math.IsInf(value, 0) {
		return fmt.Sprintf("%g", value)
	}
	frac := value / max
	if frac < 0 {
		frac = 0
	}
	if frac > 1 {
		frac = 1
	}
	fill := int(math.Round(frac * float64(width)))
	return fmt.Sprintf("[%s%s] %.1f%%", strings.Repeat("#", fill), strings.Repeat(".", width-fill), 100*frac)
}
