package metrics

import (
	"fmt"
	"math"
	"strings"
)

// ASCIIChart renders one or two series as a fixed-size terminal scatter
// chart — enough to eyeball the shape of Fig. 3's growth curves or
// Fig. 10's two latency lines without leaving the terminal. The first
// series plots as '*', the second as '+' (overlaps show '#').
func ASCIIChart(title string, width, height int, series ...*Series) string {
	if width < 16 {
		width = 16
	}
	if height < 4 {
		height = 4
	}
	var plotted []*Series
	for _, s := range series {
		if s != nil && s.Len() > 0 {
			plotted = append(plotted, s)
		}
	}
	if len(plotted) == 0 {
		return title + "\n(no data)\n"
	}
	if len(plotted) > 2 {
		plotted = plotted[:2]
	}

	minT, maxT := plotted[0].Points[0].T, plotted[0].Points[0].T
	minV, maxV := plotted[0].Points[0].V, plotted[0].Points[0].V
	for _, s := range plotted {
		for _, p := range s.Points {
			if p.T < minT {
				minT = p.T
			}
			if p.T > maxT {
				maxT = p.T
			}
			if p.V < minV {
				minV = p.V
			}
			if p.V > maxV {
				maxV = p.V
			}
		}
	}
	tSpan := float64(maxT - minT)
	vSpan := maxV - minV
	if tSpan == 0 {
		tSpan = 1
	}
	if vSpan == 0 {
		vSpan = 1
	}

	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	marks := []byte{'*', '+'}
	for si, s := range plotted {
		for _, p := range s.Points {
			x := int(math.Round(float64(p.T-minT) / tSpan * float64(width-1)))
			y := height - 1 - int(math.Round((p.V-minV)/vSpan*float64(height-1)))
			if x < 0 || x >= width || y < 0 || y >= height {
				continue
			}
			switch grid[y][x] {
			case ' ':
				grid[y][x] = marks[si]
			case marks[1-si]:
				grid[y][x] = '#'
			}
		}
	}

	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	for i, row := range grid {
		label := "        "
		switch i {
		case 0:
			label = fmt.Sprintf("%8.0f", maxV)
		case height - 1:
			label = fmt.Sprintf("%8.0f", minV)
		}
		fmt.Fprintf(&b, "%s |%s|\n", label, string(row))
	}
	fmt.Fprintf(&b, "%9s %-*.1fs%*.1fs\n", "", width/2, minT.Seconds(), width-width/2, maxT.Seconds())
	if len(plotted) == 2 {
		fmt.Fprintf(&b, "          * %s   + %s\n", plotted[0].Name, plotted[1].Name)
	}
	return b.String()
}
