// Package metrics provides the small measurement toolkit the experiments
// share: time series sampled on the virtual clock, summary statistics,
// and empirical CDFs.
package metrics

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"strings"
	"time"
)

// Point is one (virtual time, value) sample.
type Point struct {
	T time.Duration
	V float64
}

// Series is an append-only time series.
type Series struct {
	Name   string
	Points []Point
}

// Add appends a sample.
func (s *Series) Add(t time.Duration, v float64) {
	s.Points = append(s.Points, Point{T: t, V: v})
}

// Len returns the sample count.
func (s *Series) Len() int { return len(s.Points) }

// Min returns the smallest value (0 for an empty series).
func (s *Series) Min() float64 {
	if len(s.Points) == 0 {
		return 0
	}
	m := s.Points[0].V
	for _, p := range s.Points[1:] {
		if p.V < m {
			m = p.V
		}
	}
	return m
}

// Max returns the largest value (0 for an empty series).
func (s *Series) Max() float64 {
	if len(s.Points) == 0 {
		return 0
	}
	m := s.Points[0].V
	for _, p := range s.Points[1:] {
		if p.V > m {
			m = p.V
		}
	}
	return m
}

// Last returns the final value (0 for an empty series).
func (s *Series) Last() float64 {
	if len(s.Points) == 0 {
		return 0
	}
	return s.Points[len(s.Points)-1].V
}

// TSV renders the series as "t_seconds\tvalue" lines for plotting.
func (s *Series) TSV() string {
	var b strings.Builder
	for _, p := range s.Points {
		fmt.Fprintf(&b, "%.3f\t%.3f\n", p.T.Seconds(), p.V)
	}
	return b.String()
}

// Summary holds order statistics of a sample.
type Summary struct {
	N             int
	Min, Max      float64
	Mean, Stddev  float64
	P50, P90, P99 float64
}

// Summarize computes summary statistics; an empty input gives a zero
// Summary.
func Summarize(values []float64) Summary {
	if len(values) == 0 {
		return Summary{}
	}
	sorted := append([]float64(nil), values...)
	sort.Float64s(sorted)
	var sum, sumSq float64
	for _, v := range sorted {
		sum += v
		sumSq += v * v
	}
	n := float64(len(sorted))
	mean := sum / n
	variance := sumSq/n - mean*mean
	if variance < 0 {
		variance = 0
	}
	return Summary{
		N:      len(sorted),
		Min:    sorted[0],
		Max:    sorted[len(sorted)-1],
		Mean:   mean,
		Stddev: math.Sqrt(variance),
		P50:    quantile(sorted, 0.50),
		P90:    quantile(sorted, 0.90),
		P99:    quantile(sorted, 0.99),
	}
}

// quantile returns the q-quantile of sorted values via linear
// interpolation.
func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	if len(sorted) == 1 {
		return sorted[0]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(pos)
	if lo >= len(sorted)-1 {
		return sorted[len(sorted)-1]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// CDF is an empirical cumulative distribution.
type CDF struct {
	sorted []float64
}

// NewCDF builds a CDF from a sample.
func NewCDF(values []float64) *CDF {
	s := append([]float64(nil), values...)
	sort.Float64s(s)
	return &CDF{sorted: s}
}

// MarshalJSON emits the full sorted sample, so two CDFs encode equal JSON
// exactly when they hold the same distribution (the parallel-equivalence
// tests and jgre-bench compare results this way).
func (c *CDF) MarshalJSON() ([]byte, error) {
	return json.Marshal(c.sorted)
}

// UnmarshalJSON restores a CDF marshalled by MarshalJSON.
func (c *CDF) UnmarshalJSON(b []byte) error {
	if err := json.Unmarshal(b, &c.sorted); err != nil {
		return err
	}
	sort.Float64s(c.sorted)
	return nil
}

// At returns P(X <= x).
func (c *CDF) At(x float64) float64 {
	if len(c.sorted) == 0 {
		return 0
	}
	i := sort.SearchFloat64s(c.sorted, x)
	for i < len(c.sorted) && c.sorted[i] <= x {
		i++
	}
	return float64(i) / float64(len(c.sorted))
}

// Quantile returns the q-quantile.
func (c *CDF) Quantile(q float64) float64 { return quantile(c.sorted, q) }

// Steps renders the CDF as n evenly spaced (x, P) pairs across the value
// range, for plotting.
func (c *CDF) Steps(n int) []Point {
	if len(c.sorted) == 0 || n <= 0 {
		return nil
	}
	lo, hi := c.sorted[0], c.sorted[len(c.sorted)-1]
	out := make([]Point, 0, n)
	for i := 0; i < n; i++ {
		x := lo + (hi-lo)*float64(i)/float64(maxInt(n-1, 1))
		out = append(out, Point{T: time.Duration(x), V: c.At(x)})
	}
	return out
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Durations converts a duration sample to float64 microseconds, the unit
// the paper's figures use.
func Durations(ds []time.Duration) []float64 {
	out := make([]float64, len(ds))
	for i, d := range ds {
		out[i] = float64(d.Microseconds())
	}
	return out
}
