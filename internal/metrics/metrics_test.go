package metrics

import (
	"math"
	"sort"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestSeriesBasics(t *testing.T) {
	var s Series
	if s.Min() != 0 || s.Max() != 0 || s.Last() != 0 || s.Len() != 0 {
		t.Fatal("empty series not zero")
	}
	s.Add(time.Second, 3)
	s.Add(2*time.Second, 1)
	s.Add(3*time.Second, 2)
	if s.Min() != 1 || s.Max() != 3 || s.Last() != 2 || s.Len() != 3 {
		t.Fatalf("series stats wrong: %+v", s)
	}
	tsv := s.TSV()
	if tsv != "1.000\t3.000\n2.000\t1.000\n3.000\t2.000\n" {
		t.Fatalf("TSV = %q", tsv)
	}
}

func TestSummarize(t *testing.T) {
	sum := Summarize([]float64{1, 2, 3, 4, 5})
	if sum.N != 5 || sum.Min != 1 || sum.Max != 5 {
		t.Fatalf("summary = %+v", sum)
	}
	if sum.Mean != 3 {
		t.Fatalf("mean = %v", sum.Mean)
	}
	if math.Abs(sum.Stddev-math.Sqrt(2)) > 1e-9 {
		t.Fatalf("stddev = %v", sum.Stddev)
	}
	if sum.P50 != 3 {
		t.Fatalf("p50 = %v", sum.P50)
	}
	if empty := Summarize(nil); empty.N != 0 {
		t.Fatal("empty summary not zero")
	}
}

func TestCDF(t *testing.T) {
	c := NewCDF([]float64{1, 2, 2, 3})
	cases := []struct {
		x    float64
		want float64
	}{
		{0.5, 0}, {1, 0.25}, {2, 0.75}, {2.5, 0.75}, {3, 1}, {10, 1},
	}
	for _, tc := range cases {
		if got := c.At(tc.x); got != tc.want {
			t.Errorf("At(%v) = %v, want %v", tc.x, got, tc.want)
		}
	}
	if q := c.Quantile(0); q != 1 {
		t.Errorf("Quantile(0) = %v", q)
	}
	if q := c.Quantile(1); q != 3 {
		t.Errorf("Quantile(1) = %v", q)
	}
	steps := c.Steps(5)
	if len(steps) != 5 || steps[0].V <= 0 || steps[4].V != 1 {
		t.Errorf("Steps = %v", steps)
	}
}

func TestCDFEmpty(t *testing.T) {
	c := NewCDF(nil)
	if c.At(1) != 0 || c.Quantile(0.5) != 0 || c.Steps(3) != nil {
		t.Fatal("empty CDF misbehaves")
	}
}

// Property: CDF is monotone and bounded by [0, 1].
func TestQuickCDFMonotone(t *testing.T) {
	f := func(values []float64, probes []float64) bool {
		for i, v := range values {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				values[i] = 0
			}
		}
		c := NewCDF(values)
		sort.Float64s(probes)
		prev := 0.0
		for _, x := range probes {
			if math.IsNaN(x) {
				continue
			}
			p := c.At(x)
			if p < prev || p < 0 || p > 1 {
				return false
			}
			prev = p
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: Summarize min/max/quantiles are consistent with the sample.
func TestQuickSummaryBounds(t *testing.T) {
	f := func(values []float64) bool {
		clean := values[:0]
		for _, v := range values {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				clean = append(clean, v)
			}
		}
		if len(clean) == 0 {
			return true
		}
		s := Summarize(clean)
		return s.Min <= s.P50 && s.P50 <= s.P90 && s.P90 <= s.P99 && s.P99 <= s.Max
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestDurations(t *testing.T) {
	got := Durations([]time.Duration{time.Millisecond, 2500 * time.Microsecond})
	if len(got) != 2 || got[0] != 1000 || got[1] != 2500 {
		t.Fatalf("Durations = %v", got)
	}
}

func TestASCIIChart(t *testing.T) {
	var a, b Series
	a.Name = "stock"
	b.Name = "defended"
	for i := 0; i <= 10; i++ {
		a.Add(time.Duration(i)*time.Second, float64(i*10))
		b.Add(time.Duration(i)*time.Second, float64(i*15))
	}
	out := ASCIIChart("latency", 40, 10, &a, &b)
	for _, want := range []string{"latency", "*", "+", "stock", "defended", "150", "0"} {
		if !strings.Contains(out, want) {
			t.Errorf("chart missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// title + height rows + axis + legend
	if len(lines) != 1+10+1+1 {
		t.Fatalf("chart has %d lines:\n%s", len(lines), out)
	}
}

func TestASCIIChartEmptyAndClamped(t *testing.T) {
	if out := ASCIIChart("x", 40, 10); !strings.Contains(out, "(no data)") {
		t.Fatalf("empty chart = %q", out)
	}
	var s Series
	s.Add(0, 5) // single flat point: spans clamp to 1
	out := ASCIIChart("one", 1, 1, &s)
	if !strings.Contains(out, "*") {
		t.Fatalf("single-point chart missing mark:\n%s", out)
	}
}
