package device

import (
	"bytes"
	"sync"
	"testing"

	"repro/internal/kernel"
)

// TestCloneMetricsConcurrentMaterialization races the lazy-telemetry
// materialization on a fresh clone: a dashboard goroutine scraping
// /proc/jgre_metrics, another calling Metrics().RenderProm directly,
// and a third reading gauge values, all before the simulation side has
// ever touched the registry. Every observer must see one coherent,
// fully-registered registry (run under -race via `make race`).
func TestCloneMetricsConcurrentMaterialization(t *testing.T) {
	base, err := BootFresh(Config{Seed: 31})
	if err != nil {
		t.Fatal(err)
	}
	base.Snapshot()
	clone, err := base.CloneWithSeed(32)
	if err != nil {
		t.Fatal(err)
	}

	const readers = 4
	var wg sync.WaitGroup
	outs := make([][]byte, readers)
	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			switch i % 3 {
			case 0:
				out, err := clone.Kernel().ProcFS().Read(MetricsPath, kernel.SystemUid)
				if err != nil {
					t.Errorf("procfs scrape: %v", err)
					return
				}
				outs[i] = out
			case 1:
				outs[i] = clone.Metrics().RenderProm()
			default:
				if _, ok := clone.Metrics().Value("jgre_device_processes"); !ok {
					t.Error("jgre_device_processes missing from materialized registry")
				}
			}
		}(i)
	}
	wg.Wait()

	// Every rendered snapshot came from the same fully-built registry:
	// nothing half-registered, and the canonical series are present.
	for i, out := range outs {
		if out == nil {
			continue
		}
		for _, want := range []string{
			"jgre_device_uptime_seconds",
			"jgre_binder_transactions_total",
			`jgre_jgr_table_cap{process="system_server"}`,
		} {
			if !bytes.Contains(out, []byte(want)) {
				t.Fatalf("reader %d saw a registry missing %q", i, want)
			}
		}
	}
}
