package device

import (
	"fmt"

	"repro/internal/art"
	"repro/internal/kernel"
	"repro/internal/telemetry"
)

// MetricsPath is the procfs file exposing the device's telemetry
// registry in Prometheus text form. Like /proc/jgre_ipc_log it is
// provider-backed (rendered lazily on read) and ACL'd to the system:
// app uids are denied, so a malicious app cannot watch the defender's
// own vital signs to time its attack.
const MetricsPath = "/proc/jgre_metrics"

// DefenderHealth is the defense layer's self-reported health, surfaced
// through device.Stats so dumpsys/jgre-report show one coherent block.
// The device package defines the type (rather than importing defense,
// which imports device) and the defender installs the provider via
// SetDefenderHealth.
type DefenderHealth struct {
	// Detections is the number of engagements so far.
	Detections int
	// Coverage is the delivered/generated record fraction of the most
	// recent engagement window (1 on a lossless chain, 0 before any
	// engagement).
	Coverage float64
	// FallbackUsed marks whether the most recent engagement blended in
	// retained-ref fallback attribution.
	FallbackUsed bool
	// ReadRetries / AnalysisRestarts / GuardStops are cumulative across
	// all engagements.
	ReadRetries      int
	AnalysisRestarts int
	GuardStops       int
}

// Metrics returns the device's telemetry registry. A fresh boot builds
// it eagerly; clones defer it — the registry is created and the binder
// driver's instruments attached on first call, so clone-heavy sweeps
// that never scrape metrics skip the ~130 registrations entirely.
// Envelopes and Stats never read through here, so deferral cannot
// change simulation output.
//
// The first materialization is guarded by metricsMu: a dashboard
// scraping /proc/jgre_metrics can race the simulation goroutine's first
// Metrics() call on a clone, and both must observe one fully-registered
// registry rather than a half-built one. The registry's own operations
// are already goroutine-safe; only this lazy init needed the lock.
func (d *Device) Metrics() *telemetry.Registry {
	d.metricsMu.Lock()
	defer d.metricsMu.Unlock()
	if d.metrics == nil {
		reg := telemetry.NewRegistry()
		d.driver.AttachMetrics(reg)
		d.metrics = reg
		d.registerMetrics()
	}
	return d.metrics
}

// SetDefenderHealth installs the defender's health provider. The
// defense package calls this when a Defender attaches; Stats and the
// defender-health gauges read through it.
func (d *Device) SetDefenderHealth(fn func() DefenderHealth) {
	d.defenderHealth = fn
}

// registerMetrics wires the device-level pull gauges: uptime, process
// census, per-process JGR tables for the monitored hosts, ART
// local-frame churn, trace-journal health and the fault injector's
// ledger. Everything reads state the layers already maintain, so the
// only cost is at render/snapshot time.
func (d *Device) registerMetrics() {
	reg := d.metrics
	reg.GaugeFunc("jgre_device_uptime_seconds",
		"Virtual time since first boot.",
		func() float64 { return d.clock.Now().Seconds() })
	reg.GaugeFunc("jgre_device_processes",
		"Running processes.",
		func() float64 { return float64(d.kern.RunningCount()) })
	reg.GaugeFunc("jgre_device_running_apps",
		"Installed apps currently running.",
		func() float64 {
			n := 0
			for _, a := range d.apps.Installed() {
				if a.Running() {
					n++
				}
			}
			return float64(n)
		})
	reg.GaugeFunc("jgre_device_soft_reboots_total",
		"Soft reboots survived.",
		func() float64 { return float64(d.bootCount) })
	reg.GaugeFunc("jgre_device_lmk_kills_total",
		"Low-memory-killer evictions.",
		func() float64 { return float64(d.kern.LMKKills()) })
	reg.GaugeFunc("jgre_trace_events",
		"Events currently held by the trace journal.",
		func() float64 { return float64(d.journal.Len()) })
	reg.GaugeFunc("jgre_trace_dropped_total",
		"Journal events discarded by capacity eviction.",
		func() float64 { return float64(d.journal.Dropped()) })
	// Flight-recorder gauges read 0 when tracing is off (nil recorder);
	// jgre-top's TRACE panel renders them with an explicit placeholder
	// when the family is absent entirely.
	reg.GaugeFunc("jgre_trace_spans",
		"Spans currently held by the causal flight recorder (0 when tracing is off).",
		func() float64 { return float64(d.rec.Len()) })
	reg.GaugeFunc("jgre_trace_span_drops_total",
		"Flight-recorder spans overwritten by ring eviction.",
		func() float64 { return float64(d.rec.Dropped()) })
	reg.GaugeFunc("jgre_trace_flight_dumps_total",
		"Flight-recorder dumps captured (detections, chaos crashes).",
		func() float64 { return float64(d.flightDumpsTotal) })

	// Per-process JGR and frame-churn series for the monitored hosts:
	// system_server plus the dedicated service hosts (~10 processes, not
	// all 382 — the filler daemons would explode series cardinality for
	// tables that are empty by construction). Closures read d.hosts at
	// render time, so a soft reboot transparently re-points every series
	// at the host's new incarnation.
	d.registerHostMetrics(kernel.SystemServerName)
	for name := range d.hosts {
		if name != kernel.SystemServerName {
			d.registerHostMetrics(name)
		}
	}

	if in := d.FaultInjector(); in != nil {
		reg.GaugeFunc("jgre_faults_record_drops_total",
			"IPC log records the injector decided to drop.",
			func() float64 { return float64(in.Stats().RecordDrops) })
		reg.GaugeFunc("jgre_faults_read_attempts_total",
			"Log-read attempts the injector was consulted on.",
			func() float64 { return float64(in.Stats().ReadAttempts) })
		reg.GaugeFunc("jgre_faults_read_faults_total",
			"Log reads the injector failed.",
			func() float64 { return float64(in.Stats().ReadFaults) })
		reg.GaugeFunc("jgre_faults_analysis_attempts_total",
			"Defender analysis attempts the injector was consulted on.",
			func() float64 { return float64(in.Stats().AnalysisAttempts) })
		reg.GaugeFunc("jgre_faults_analysis_faults_total",
			"Defender analysis runs the injector killed mid-flight.",
			func() float64 { return float64(in.Stats().AnalysisFaults) })
	}

	reg.GaugeFunc("jgre_defender_attached",
		"1 when a JGRE defender is attached to this device.",
		func() float64 {
			if d.defenderHealth != nil {
				return 1
			}
			return 0
		})
	reg.GaugeFunc("jgre_defender_coverage_last",
		"Delivered/generated record fraction of the most recent defender engagement (NaN before one).",
		func() float64 {
			if d.defenderHealth == nil {
				return 0
			}
			return d.defenderHealth().Coverage
		})
}

// registerHostMetrics wires one monitored host process's runtime series.
func (d *Device) registerHostMetrics(name string) {
	vm := func() *art.VM {
		if p, ok := d.hosts[name]; ok {
			return p.VM()
		}
		return nil
	}
	label := fmt.Sprintf("{process=%q}", name)
	g := func(metric, help string, fn func() float64) {
		d.metrics.GaugeFunc(metric+label, help, fn)
	}
	g("jgre_jgr_table_size", "Current JGR table entries.", func() float64 {
		if v := vm(); v != nil {
			return float64(v.GlobalRefCount())
		}
		return 0
	})
	g("jgre_jgr_table_peak", "Historical maximum JGR table size of the current incarnation.", func() float64 {
		if v := vm(); v != nil {
			return float64(v.PeakGlobalRefCount())
		}
		return 0
	})
	g("jgre_jgr_table_cap", "JGR table capacity (the abort threshold).", func() float64 {
		if v := vm(); v != nil {
			return float64(v.MaxGlobal())
		}
		return 0
	})
	g("jgre_jgr_adds_total", "Cumulative successful AddGlobalRef calls.", func() float64 {
		if v := vm(); v != nil {
			return float64(v.TotalGlobalAdds())
		}
		return 0
	})
	g("jgre_jgr_removes_total", "Cumulative JGR entries removed (deletes plus GC).", func() float64 {
		if v := vm(); v != nil {
			return float64(v.TotalGlobalRemoves())
		}
		return 0
	})
	g("jgre_art_gc_cycles_total", "GC cycles run by this runtime.", func() float64 {
		if v := vm(); v != nil {
			return float64(v.GCCycles())
		}
		return 0
	})
	g("jgre_art_frame_pushes_total", "JNI local frames entered (per-transaction churn).", func() float64 {
		if v := vm(); v != nil {
			return float64(v.FramePushes())
		}
		return 0
	})
	g("jgre_art_frame_pool_hits_total", "Frame pushes served from the recycled-frame pool.", func() float64 {
		if v := vm(); v != nil {
			return float64(v.FramePoolHits())
		}
		return 0
	})
}
