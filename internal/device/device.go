// Package device assembles the full simulated Android 6.0.1 system: the
// kernel, the binder driver, the ServiceManager with all 104 system
// services from the catalog census, the prebuilt core apps of Table IV,
// and the soft-reboot recovery path. It is the top-level substrate every
// experiment runs on.
package device

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/apps"
	"repro/internal/art"
	"repro/internal/binder"
	"repro/internal/catalog"
	"repro/internal/faults"
	"repro/internal/kernel"
	"repro/internal/permissions"
	"repro/internal/services"
	"repro/internal/simclock"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// Well-known prebuilt-app uids.
const (
	BluetoothUid kernel.Uid = 1002  // AID_BLUETOOTH
	PicoTtsUid   kernel.Uid = 10035 // an app uid below the installer range
)

// DefaultBaselineProcesses matches the paper's Fig. 4 observation: "There
// are 382 processes running on stock Android that has not installed any
// third-party apps."
const DefaultBaselineProcesses = 382

// Config parameterizes a device boot.
type Config struct {
	// Seed drives all randomized cost jitter; equal seeds give identical
	// runs.
	Seed int64
	// ServerVM overrides the system_server runtime config (tests use
	// small JGR caps to exhaust quickly). The abort hook is always
	// chained to the kernel.
	ServerVM art.Config
	// Kernel and Driver pass through to the respective layers.
	Kernel kernel.Config
	Driver binder.Config
	// Faults declares the telemetry fault model. The zero value is the
	// paper's lossless chain. Boot derives the injector from this and
	// Seed, so BootConfig round trips cleanly: the stored config never
	// carries injector state, and a re-boot gets a fresh injector making
	// the same seeded decisions.
	Faults faults.Config
	// BaselineProcesses is the stock-Android process count to simulate;
	// 0 means DefaultBaselineProcesses.
	BaselineProcesses int
	// SkipBaselineRefs disables the per-service boot-time JGR pins (unit
	// tests that count references exactly set this).
	SkipBaselineRefs bool
	// UniversalQuota applies a per-caller-pid cap to every catalogued
	// interface on every service — the §IV-B "patch all services"
	// counterfactual. 0 disables it.
	UniversalQuota int
	// InstallThirdPartyApps additionally installs the Table V vulnerable
	// Google Play apps and publishes their services, so the pipeline's
	// dynamic stage can verify them.
	InstallThirdPartyApps bool
	// Trace configures the causal flight recorder (see trace.Config). The
	// zero value is off: no recorder is allocated and scenario output is
	// byte-identical to a build without the tracing layer.
	Trace trace.Config
}

// Fixed uids for the Table V apps (below the sequential installer range
// so experiment attacker uids still start at 10059).
var thirdPartyUids = map[string]kernel.Uid{
	"com.google.android.tts": 10040,
	"com.supernet.vpn":       10041,
	"com.snapmovie.app":      10042,
}

// IPCTarget identifies what a logged IPC record was aimed at.
type IPCTarget struct {
	// Kind is "system" for system services, "app" for app services.
	Kind string
	// Service is the ServiceManager name (system) or the published
	// registry name (app).
	Service string
	// Method is the resolved method name.
	Method string
	// Catalogued is the catalog row when the method is a known
	// vulnerable interface.
	Catalogued *catalog.Interface
	// AppRow is the catalog row for app-service interfaces.
	AppRow *catalog.AppInterface
}

// FullName returns "service.method".
func (t IPCTarget) FullName() string { return t.Service + "." + t.Method }

// Device is a booted simulated Android system.
type Device struct {
	cfg    Config
	clock  *simclock.Clock
	kern   *kernel.Kernel
	driver *binder.Driver
	sm     *binder.ServiceManager
	perms  *permissions.Manager
	apps   *apps.Manager
	appReg *apps.ServiceRegistry

	systemServer *kernel.Process
	hosts        map[string]*kernel.Process
	services     map[string]*services.Service
	appServices  map[string]*apps.AppService
	// svcOrder and appOrder record the service creation/publish order so
	// a snapshot clone can replay the stubs and reproduce the template's
	// driver ids without consulting (and copying) the catalog census.
	svcOrder    []string
	appOrder    []string
	handleIndex map[binder.Handle]handleEntry
	// svcSlab and appSlab are the clone replay's backing arrays (the
	// services/appServices maps point into them); a slot recycle rewinds
	// and refills them in place instead of allocating new slabs.
	svcSlab []services.Service
	appSlab []apps.AppService

	// sealed marks the device as an immutable snapshot template (see
	// Snapshot); it must not run workloads from then on, only clone.
	sealed bool

	// resolveMu guards resolveMemo, the (handle, code) → IPCTarget cache
	// behind Resolve. The lock exists for Resolve's concurrent readers
	// (the Δ-sweep scores windows across a worker pool); every
	// handleIndex mutation invalidates the whole memo. Safe because the
	// driver never reuses handles.
	resolveMu   sync.RWMutex
	resolveMemo map[resolveKey]resolveResult

	bootCount    int
	broadcastSeq uint64
	onReboot     []func(reason string)
	journal      *trace.Journal

	// rec is the causal flight recorder (nil = tracing off); flightDumps
	// retains the most recent MaxFlightDumps snapshots (see flight.go).
	rec              *trace.Recorder
	flightDumps      []FlightDump
	flightDumpsTotal int

	// onServiceRestart observers fire after RestartHost/RestartAppService
	// completes a re-registration; clientRetry, when non-zero, is applied
	// to every client NewClient opens (the chaos sweeps set it so benign
	// actors ride out service restarts).
	onServiceRestart []func(kind, name string)
	clientRetry      services.RetryPolicy

	// metrics is the device's telemetry registry, rendered on demand
	// through /proc/jgre_metrics; metricsMu guards its lazy
	// materialization on clones (see Metrics); defenderHealth is the
	// defense layer's health provider (nil until a defender attaches).
	metricsMu      sync.Mutex
	metrics        *telemetry.Registry
	defenderHealth func() DefenderHealth
}

type handleEntry struct {
	kind string
	sys  *services.Service
	app  *apps.AppService
	name string
}

// resolveKey addresses one memoized Resolve result; the record's other
// fields never influence the target attribution.
type resolveKey struct {
	handle binder.Handle
	code   binder.TxCode
}

type resolveResult struct {
	target IPCTarget
	ok     bool
}

// invalidateResolve drops the Resolve memo; callers must do this after
// every handleIndex mutation (service starts, reboots, republication).
func (d *Device) invalidateResolve() {
	d.resolveMu.Lock()
	d.resolveMemo = nil
	d.resolveMu.Unlock()
}

// Boot returns a booted device. When the configuration is cacheable —
// no caller-supplied hooks, injectors or registries — the device is a
// microsecond copy-on-write clone of a snapshot template that was booted
// once per configuration shape and sealed (see Snapshot/CloneWithSeed);
// otherwise it falls through to BootFresh. Clones are byte-identical to
// fresh boots: the seed only feeds lazily-initialized jitter rngs, which
// CloneWithSeed re-keys. SetCloneBoot(false) disables the cache.
func Boot(cfg Config) (*Device, error) {
	tmpl, err := Template(cfg)
	if err != nil {
		return nil, err
	}
	if tmpl == nil {
		return BootFresh(cfg)
	}
	// Every caller — including the one that just paid for the template —
	// gets a clone; the sealed template never leaves the cache.
	return tmpl.CloneWithSeed(cfg.Seed)
}

// BootFresh builds and starts a device from scratch, bypassing the
// clone-template cache (benchmarks comparing boot vs clone use this).
func BootFresh(cfg Config) (*Device, error) {
	if cfg.BaselineProcesses == 0 {
		cfg.BaselineProcesses = DefaultBaselineProcesses
	}
	applyCapture(&cfg)
	d := &Device{cfg: cfg}
	d.clock = simclock.New()
	d.rec = newRecorder(cfg)

	kcfg := cfg.Kernel
	userReboot := kcfg.OnSystemServerDeath
	kcfg.OnSystemServerDeath = func(reason string) {
		if userReboot != nil {
			userReboot(reason)
		}
		d.restartSystem(reason)
	}
	d.kern = kernel.New(d.clock, kcfg)
	d.journal = trace.New(0)
	d.kern.OnKill(func(p *kernel.Process, reason string) {
		kind := trace.KindKill
		if reason == "lmk" {
			kind = trace.KindLMK
		}
		d.journal.Add(d.clock.Now(), kind, p.Name(), reason)
	})
	dcfg := cfg.Driver
	if cfg.Faults.Enabled() {
		if dcfg.Faults != nil {
			return nil, fmt.Errorf("device: both Config.Faults and Driver.Faults set")
		}
		if err := cfg.Faults.Validate(); err != nil {
			return nil, err
		}
		dcfg.Faults = faults.New(cfg.Faults, cfg.Seed)
	}
	// The registry lives on the local copy of the driver config so the
	// stored BootConfig round-trips without carrying registry state.
	d.metrics = telemetry.NewRegistry()
	if dcfg.Metrics == nil {
		dcfg.Metrics = d.metrics
	}
	d.driver = binder.New(d.kern, dcfg)
	d.driver.SetRecorder(d.rec)
	d.sm = binder.NewServiceManager(d.driver)
	d.perms = permissions.NewManager()
	for p, l := range catalog.PermissionLevels {
		d.perms.Define(p, l)
	}
	d.apps = apps.NewManager(d.kern, d.perms)
	d.appReg = apps.NewServiceRegistry(d.driver)

	if err := d.startSystem(); err != nil {
		return nil, err
	}
	if err := d.installPrebuilts(); err != nil {
		return nil, err
	}
	if cfg.InstallThirdPartyApps {
		if err := d.installThirdParty(); err != nil {
			return nil, err
		}
	}
	d.spawnBaselineFillers()
	d.attachTraceVMs()
	registerCapture(d)
	d.registerMetrics()
	if err := d.kern.ProcFS().CreateProvider(MetricsPath, kernel.RootUid, false, d.metrics.RenderProm); err != nil {
		return nil, err
	}
	return d, nil
}

// installThirdParty installs the Table V apps and publishes their
// vulnerable services.
func (d *Device) installThirdParty() error {
	for _, row := range catalog.ThirdPartyAppInterfaces() {
		if d.apps.ByPackage(row.Package) == nil {
			uid, ok := thirdPartyUids[row.Package]
			if !ok {
				return fmt.Errorf("device: no reserved uid for %s", row.Package)
			}
			if _, err := d.apps.InstallWithUid(row.Package, uid); err != nil {
				return err
			}
		}
	}
	return d.publishThirdPartyServices()
}

func (d *Device) publishThirdPartyServices() error {
	for _, row := range catalog.ThirdPartyAppInterfaces() {
		name := apps.AppServiceName(row)
		owner := d.apps.ByPackage(row.Package)
		if owner == nil {
			return fmt.Errorf("device: third-party %s not installed", row.Package)
		}
		d.appReg.Unpublish(name)
		svc, err := apps.NewAppService(owner, d.driver, d.clock, d.appReg, []catalog.AppInterface{row}, d.cfg.Seed)
		if err != nil {
			return fmt.Errorf("device: publishing %s: %w", name, err)
		}
		d.appServices[name] = svc
		d.appOrder = append(d.appOrder, name)
		d.handleIndex[d.driver.HandleOf(svc.Stub())] = handleEntry{kind: "app", app: svc, name: name}
	}
	d.invalidateResolve()
	return nil
}

// startSystem spawns system_server and the dedicated host processes, then
// instantiates all census services.
func (d *Device) startSystem() error {
	d.hosts = make(map[string]*kernel.Process)
	d.services = make(map[string]*services.Service)
	d.svcOrder = nil
	d.handleIndex = make(map[binder.Handle]handleEntry)
	d.invalidateResolve()

	d.systemServer = d.kern.Spawn(kernel.SpawnConfig{
		Name:        kernel.SystemServerName,
		Uid:         kernel.SystemUid,
		OomScoreAdj: kernel.SystemAdj,
		MemoryKB:    180 * 1024,
		VM:          d.cfg.ServerVM,
	})
	d.hosts[kernel.SystemServerName] = d.systemServer

	for _, meta := range catalog.Services() {
		hostName := meta.HostProcess()
		host, ok := d.hosts[hostName]
		if !ok {
			host = d.kern.Spawn(kernel.SpawnConfig{
				Name:        hostName,
				Uid:         kernel.SystemUid,
				OomScoreAdj: kernel.PersistentProcAdj,
				MemoryKB:    30 * 1024,
			})
			d.hosts[hostName] = host
		}
		bootRefs := 0
		if !d.cfg.SkipBaselineRefs {
			// 8–20 long-lived internal pins per service: across 104
			// services this yields the 1,000–3,000 baseline JGR table of
			// Fig. 4.
			bootRefs = int(8 + spreadByte(meta.Name)%13)
		}
		svc, err := services.New(services.Config{
			Meta:           meta,
			Ifaces:         catalog.InterfacesForService(meta.Name),
			Host:           host,
			Driver:         d.driver,
			Clock:          d.clock,
			Perms:          d.perms,
			Seed:           d.cfg.Seed,
			UniversalQuota: d.cfg.UniversalQuota,
			ExtraBootRefs:  bootRefs,
		}, d.sm)
		if err != nil {
			return fmt.Errorf("device: starting %s: %w", meta.Name, err)
		}
		d.services[meta.Name] = svc
		d.svcOrder = append(d.svcOrder, meta.Name)
		d.handleIndex[d.driver.HandleOf(svc.Stub())] = handleEntry{kind: "system", sys: svc, name: meta.Name}
	}
	d.invalidateResolve()
	return nil
}

// installPrebuilts installs the Table IV core apps and publishes their
// vulnerable services. (Re)publication also runs after soft reboots.
func (d *Device) installPrebuilts() error {
	if d.apps.ByPackage("com.android.bluetooth") == nil {
		if _, err := d.apps.InstallWithUid("com.android.bluetooth", BluetoothUid); err != nil {
			return err
		}
		if _, err := d.apps.InstallWithUid("com.svox.pico", PicoTtsUid); err != nil {
			return err
		}
	}
	return d.publishPrebuiltServices()
}

func (d *Device) publishPrebuiltServices() error {
	d.appServices = make(map[string]*apps.AppService)
	d.appOrder = nil
	grouped := make(map[string][]catalog.AppInterface)
	var order []string
	for _, row := range catalog.PrebuiltAppInterfaces() {
		name := apps.AppServiceName(row)
		if _, ok := grouped[name]; !ok {
			order = append(order, name)
		}
		grouped[name] = append(grouped[name], row)
	}
	for _, name := range order {
		rows := grouped[name]
		owner := d.apps.ByPackage(rows[0].Package)
		if owner == nil {
			return fmt.Errorf("device: prebuilt %s not installed", rows[0].Package)
		}
		d.appReg.Unpublish(name)
		svc, err := apps.NewAppService(owner, d.driver, d.clock, d.appReg, rows, d.cfg.Seed)
		if err != nil {
			return fmt.Errorf("device: publishing %s: %w", name, err)
		}
		d.appServices[name] = svc
		d.appOrder = append(d.appOrder, name)
		d.handleIndex[d.driver.HandleOf(svc.Stub())] = handleEntry{kind: "app", app: svc, name: name}
	}
	d.invalidateResolve()
	return nil
}

// spawnBaselineFillers brings the process count up to the stock-Android
// level (Fig. 4's 382) with inert native daemons.
func (d *Device) spawnBaselineFillers() {
	for i := d.kern.RunningCount(); i < d.cfg.BaselineProcesses; i++ {
		d.kern.Spawn(kernel.SpawnConfig{
			Name:        fmt.Sprintf("daemon%d", i),
			Uid:         kernel.RootUid,
			OomScoreAdj: kernel.PersistentProcAdj,
			MemoryKB:    1024,
		})
	}
}

// restartSystem is the soft-reboot recovery: after system_server dies the
// ServiceManager registry is rebuilt with fresh service instances (and
// fresh, empty JGR tables).
func (d *Device) restartSystem(reason string) {
	d.bootCount++
	d.journal.Add(d.clock.Now(), trace.KindReboot, kernel.SystemServerName, reason)
	d.sm.Clear()
	if err := d.startSystem(); err != nil {
		panic(fmt.Sprintf("device: soft reboot failed: %v", err))
	}
	// Prebuilt app processes died with the reboot; restart and republish.
	if err := d.publishPrebuiltServices(); err != nil {
		panic(fmt.Sprintf("device: republishing prebuilts failed: %v", err))
	}
	if d.cfg.InstallThirdPartyApps {
		if err := d.publishThirdPartyServices(); err != nil {
			panic(fmt.Sprintf("device: republishing third-party apps failed: %v", err))
		}
	}
	d.spawnBaselineFillers()
	d.attachTraceVMs()
	for _, fn := range d.onReboot {
		fn(reason)
	}
}

// Accessors.

// Clock returns the device's virtual clock.
func (d *Device) Clock() *simclock.Clock { return d.clock }

// BootConfig returns the (defaults-resolved) configuration this device was
// booted with. Boot(dev.BootConfig()) yields an identical fresh device —
// the isolation primitive behind the parallel experiment engine.
func (d *Device) BootConfig() Config { return d.cfg }

// Journal returns the device's event journal (process lifecycle, LMK,
// reboots; the defender adds detections when attached through
// core.NewProtectedDevice).
func (d *Device) Journal() *trace.Journal { return d.journal }

// Kernel returns the simulated kernel.
func (d *Device) Kernel() *kernel.Kernel { return d.kern }

// Driver returns the binder driver.
func (d *Device) Driver() *binder.Driver { return d.driver }

// FaultInjector returns the telemetry fault injector, nil on an
// unfaulted device.
func (d *Device) FaultInjector() *faults.Injector { return d.driver.FaultInjector() }

// ServiceManager returns the binder registry.
func (d *Device) ServiceManager() *binder.ServiceManager { return d.sm }

// Permissions returns the permission manager.
func (d *Device) Permissions() *permissions.Manager { return d.perms }

// Apps returns the app installer.
func (d *Device) Apps() *apps.Manager { return d.apps }

// AppServices returns the app-service registry.
func (d *Device) AppServices() *apps.ServiceRegistry { return d.appReg }

// SystemServer returns the current system_server process.
func (d *Device) SystemServer() *kernel.Process { return d.systemServer }

// Service returns a running system service by registry name.
func (d *Device) Service(name string) *services.Service { return d.services[name] }

// AppService returns a published app service by registry name.
func (d *Device) AppService(name string) *apps.AppService { return d.appServices[name] }

// SoftReboots returns how many soft reboots the device has survived.
func (d *Device) SoftReboots() int { return d.bootCount }

// OnReboot registers fn to run after each completed soft-reboot recovery.
func (d *Device) OnReboot(fn func(reason string)) { d.onReboot = append(d.onReboot, fn) }

// NewClient opens a raw binder client on a system service for app,
// pre-configured with the device's client retry policy when one is set.
func (d *Device) NewClient(a *apps.App, serviceName string) (*services.Client, error) {
	c, err := services.NewClient(d.sm, d.driver, a.Start(), a.Package(), serviceName)
	if err != nil {
		return nil, err
	}
	if d.clientRetry != (services.RetryPolicy{}) {
		c.SetRetry(d.clientRetry)
	}
	return c, nil
}

// SetClientRetry installs a dead-handle retry policy applied to every
// client subsequently opened through NewClient. The zero value restores
// the fail-fast default.
func (d *Device) SetClientRetry(p services.RetryPolicy) { d.clientRetry = p }

// HostNames returns the dedicated service host processes (sorted,
// excluding system_server) — the supervisor's restart targets.
func (d *Device) HostNames() []string {
	out := make([]string, 0, len(d.hosts))
	for name := range d.hosts {
		if name == kernel.SystemServerName {
			continue
		}
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Host returns a service host process by name (nil if unknown).
func (d *Device) Host(name string) *kernel.Process { return d.hosts[name] }

// OnServiceRestart registers fn to run after each completed service
// re-registration (kind is "host" or "app", name the host process or
// app-service registry name). The defense layer uses it to re-attach
// JGR monitors to replacement host processes.
func (d *Device) OnServiceRestart(fn func(kind, name string)) {
	d.onServiceRestart = append(d.onServiceRestart, fn)
}

func (d *Device) fireServiceRestart(kind, name string) {
	for _, fn := range d.onServiceRestart {
		fn(kind, name)
	}
}

// RestartHost revives a crashed dedicated host process and re-registers
// every census service it carries — the supervisor's recovery action,
// modelling init respawning a persistent service. system_server is not
// restartable this way (that path is the soft reboot); a host that is
// still alive is a no-op. Old handle-index entries are retained so IPC
// records from before the crash still resolve to the dead incarnation.
func (d *Device) RestartHost(name string) error {
	if name == kernel.SystemServerName {
		return fmt.Errorf("device: %s restarts via soft reboot, not RestartHost", name)
	}
	host, ok := d.hosts[name]
	if !ok {
		return fmt.Errorf("device: unknown host %s", name)
	}
	if host.Alive() {
		return nil
	}
	host = d.kern.Spawn(kernel.SpawnConfig{
		Name:        name,
		Uid:         kernel.SystemUid,
		OomScoreAdj: kernel.PersistentProcAdj,
		MemoryKB:    30 * 1024,
	})
	d.hosts[name] = host
	for _, meta := range catalog.Services() {
		if meta.HostProcess() != name {
			continue
		}
		bootRefs := 0
		if !d.cfg.SkipBaselineRefs {
			bootRefs = int(8 + spreadByte(meta.Name)%13)
		}
		d.sm.RemoveService(meta.Name)
		svc, err := services.New(services.Config{
			Meta:           meta,
			Ifaces:         catalog.InterfacesForService(meta.Name),
			Host:           host,
			Driver:         d.driver,
			Clock:          d.clock,
			Perms:          d.perms,
			Seed:           d.cfg.Seed,
			UniversalQuota: d.cfg.UniversalQuota,
			ExtraBootRefs:  bootRefs,
		}, d.sm)
		if err != nil {
			return fmt.Errorf("device: restarting %s on %s: %w", meta.Name, name, err)
		}
		d.services[meta.Name] = svc
		d.handleIndex[d.driver.HandleOf(svc.Stub())] = handleEntry{kind: "system", sys: svc, name: meta.Name}
	}
	d.invalidateResolve()
	if d.rec != nil {
		host.VM().SetTraceRecorder(d.rec, int32(host.Pid()))
	}
	d.journal.Add(d.clock.Now(), trace.KindNote, name, "supervisor restart")
	d.fireServiceRestart("host", name)
	return nil
}

// RestartAppService revives a crashed app service: the owning app is
// relaunched and the stub re-published under the same registry name. A
// still-alive stub is a no-op.
func (d *Device) RestartAppService(name string) error {
	old, ok := d.appServices[name]
	if !ok {
		return fmt.Errorf("device: unknown app service %s", name)
	}
	if old.Stub().IsAlive() {
		return nil
	}
	var rows []catalog.AppInterface
	for _, row := range catalog.PrebuiltAppInterfaces() {
		if apps.AppServiceName(row) == name {
			rows = append(rows, row)
		}
	}
	if d.cfg.InstallThirdPartyApps {
		for _, row := range catalog.ThirdPartyAppInterfaces() {
			if apps.AppServiceName(row) == name {
				rows = append(rows, row)
			}
		}
	}
	if len(rows) == 0 {
		return fmt.Errorf("device: no catalog rows for app service %s", name)
	}
	owner := d.apps.ByPackage(rows[0].Package)
	if owner == nil {
		return fmt.Errorf("device: app %s not installed", rows[0].Package)
	}
	d.appReg.Unpublish(name)
	svc, err := apps.NewAppService(owner, d.driver, d.clock, d.appReg, rows, d.cfg.Seed)
	if err != nil {
		return fmt.Errorf("device: republishing %s: %w", name, err)
	}
	d.appServices[name] = svc
	d.handleIndex[d.driver.HandleOf(svc.Stub())] = handleEntry{kind: "app", app: svc, name: name}
	d.invalidateResolve()
	d.journal.Add(d.clock.Now(), trace.KindNote, name, "supervisor restart")
	d.fireServiceRestart("app", name)
	return nil
}

// Resolve attributes a logged IPC record to its target interface. The
// defender uses this exactly as the paper's defender uses the
// servicemanager + framework metadata: handle → service, code → method.
// Results (hits and misses alike) are memoized per (handle, code); the
// memo is dropped whenever the handle index changes, so a record from
// before a service restart resolves exactly as it did uncached.
func (d *Device) Resolve(rec binder.IPCRecord) (IPCTarget, bool) {
	key := resolveKey{handle: rec.Handle, code: rec.Code}
	d.resolveMu.RLock()
	res, hit := d.resolveMemo[key]
	d.resolveMu.RUnlock()
	if hit {
		return res.target, res.ok
	}
	t, ok := d.resolveUncached(rec)
	d.resolveMu.Lock()
	if d.resolveMemo == nil {
		d.resolveMemo = make(map[resolveKey]resolveResult)
	}
	d.resolveMemo[key] = resolveResult{target: t, ok: ok}
	d.resolveMu.Unlock()
	return t, ok
}

func (d *Device) resolveUncached(rec binder.IPCRecord) (IPCTarget, bool) {
	he, ok := d.handleIndex[rec.Handle]
	if !ok {
		return IPCTarget{}, false
	}
	t := IPCTarget{Kind: he.kind, Service: he.name}
	switch he.kind {
	case "system":
		m, ok := he.sys.MethodName(rec.Code)
		if !ok {
			return IPCTarget{}, false
		}
		t.Method = m
		if row, ok := catalog.InterfaceByName(he.name + "." + m); ok {
			t.Catalogued = &row
		}
	case "app":
		m, ok := he.app.MethodName(rec.Code)
		if !ok {
			return IPCTarget{}, false
		}
		t.Method = m
		for _, row := range catalog.PrebuiltAppInterfaces() {
			if apps.AppServiceName(row) == he.name && row.FullName() != "" {
				r := row
				t.AppRow = &r
				break
			}
		}
	}
	return t, true
}

// spreadByte gives a small deterministic per-name value.
func spreadByte(name string) uint32 {
	var h uint32 = 2166136261
	for i := 0; i < len(name); i++ {
		h = (h ^ uint32(name[i])) * 16777619
	}
	return h
}

// RegisterBroadcastReceiver models the non-Binder IPC surfaces the paper's
// §VI lists as analysis blind spots (unprotected broadcast receivers,
// ASHMEM, sockets): the registration pins JGR entries in system_server
// without any binder transaction, so neither the static pipeline (which
// enumerates binder IPC methods) nor the defender's IPC log sees the
// cause. Entries are released when the registering process dies.
func (d *Device) RegisterBroadcastReceiver(proc *kernel.Process) error {
	if proc == nil || !proc.Alive() {
		return fmt.Errorf("device: dead registrant")
	}
	d.broadcastSeq++
	obj := &art.Object{ID: art.ObjectID(1<<40 + d.broadcastSeq), Class: "android.content.BroadcastReceiver"}
	ref, err := d.systemServer.VM().AddGlobalRef(obj)
	if err != nil {
		return err
	}
	ss := d.systemServer
	proc.NotifyDeath(func(*kernel.Process) {
		if ss.Alive() {
			_ = ss.VM().DeleteGlobalRef(ref)
		}
	})
	return nil
}
