package device

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/trace"
)

// Flight-recorder wiring: the device owns the per-device span ring
// (trace.Recorder), points the binder driver and the monitored host
// runtimes at it, and snapshots it — a "flight dump" — at forensically
// interesting moments: defender detections and chaos crashes. Tracing is
// off by default; an off device allocates no recorder and every
// instrumented layer pays one nil check.

// MaxFlightDumps bounds how many dump snapshots a device retains; older
// dumps are discarded first (the count of all dumps ever taken is kept).
const MaxFlightDumps = 8

// FlightDump is one flight-recorder snapshot.
type FlightDump struct {
	// T is the virtual time the dump was taken.
	T time.Duration
	// Reason says what triggered it ("detection: <victim>",
	// "chaos: crash <proc>", ...).
	Reason string
	// Spans is the ring content at dump time, oldest first.
	Spans []trace.SpanRecord
}

// Recorder returns the device's flight recorder — nil when tracing is
// off, which every trace.Recorder method tolerates.
func (d *Device) Recorder() *trace.Recorder { return d.rec }

// newRecorder builds the flight recorder cfg asks for (nil when off).
func newRecorder(cfg Config) *trace.Recorder {
	if !cfg.Trace.Enabled {
		return nil
	}
	return trace.NewRecorder(cfg.Trace.Capacity, cfg.Trace.Sample, cfg.Seed)
}

// attachTraceVMs points the monitored host runtimes (system_server and
// the dedicated service hosts — the processes whose JGR tables matter)
// at the flight recorder. Runs after every path that creates host
// processes: boot, clone replay, soft reboot, supervisor host restart.
// VM clones deliberately do not inherit the recorder pointer, so
// re-attachment here is what keeps tracing alive across reboots.
func (d *Device) attachTraceVMs() {
	if d.rec == nil {
		return
	}
	for _, p := range d.hosts {
		if p != nil && p.Alive() {
			p.VM().SetTraceRecorder(d.rec, int32(p.Pid()))
		}
	}
}

// DumpFlightRecorder snapshots the span ring with a reason, bounded by
// MaxFlightDumps, and journals the dump so the forensic timeline shows
// when (and why) trace evidence was captured. No-op when tracing is off.
func (d *Device) DumpFlightRecorder(reason string) {
	if d.rec == nil {
		return
	}
	dump := FlightDump{T: d.clock.Now(), Reason: reason, Spans: d.rec.Spans()}
	d.flightDumpsTotal++
	if len(d.flightDumps) == MaxFlightDumps {
		copy(d.flightDumps, d.flightDumps[1:])
		d.flightDumps = d.flightDumps[:MaxFlightDumps-1]
	}
	d.flightDumps = append(d.flightDumps, dump)
	d.journal.Add(dump.T, trace.KindNote, "flight-recorder",
		fmt.Sprintf("dump: %s (%d spans, %d evicted)", reason, len(dump.Spans), d.rec.Dropped()))
}

// FlightDumps returns the retained dump snapshots, oldest first.
func (d *Device) FlightDumps() []FlightDump { return d.flightDumps }

// FlightDumpsTotal returns how many dumps were ever taken (retention may
// have discarded some).
func (d *Device) FlightDumpsTotal() int { return d.flightDumpsTotal }

// ProcNames maps the pids that appear in flight-recorder spans to
// display names for the exporter's process tracks: the host processes
// plus the running apps (transaction senders).
func (d *Device) ProcNames() map[int32]string {
	names := make(map[int32]string, len(d.hosts)+8)
	for name, p := range d.hosts {
		names[int32(p.Pid())] = name
	}
	for _, a := range d.apps.Installed() {
		if a.Running() {
			names[int32(a.Proc().Pid())] = a.Package()
		}
	}
	return names
}

// Trace capture: a package-level sink for tooling (jgre-run -trace-out)
// that cannot thread a trace config through scenario construction. While
// active, every device booted or cloned gets a flight recorder, and each
// device's spans are harvested when its slot is recycled (the device is
// retired) or when the capture is collected. The total is bounded by
// maxSpans with an explicit dropped count — no silent caps.
var (
	captureMu      sync.Mutex
	captureActive  bool
	captureCfg     trace.Config
	captureSpans   []trace.SpanRecord
	captureNames   map[int32]string
	captureLive    map[*Device]bool
	captureMax     int
	captureDropped uint64
)

// DefaultCaptureMaxSpans bounds a capture's retained spans (~28 MiB).
const DefaultCaptureMaxSpans = 1 << 19

// StartTraceCapture turns the capture on: subsequently booted devices
// trace with cfg (Enabled is forced). maxSpans <= 0 selects
// DefaultCaptureMaxSpans. Call CollectCapturedTraces to stop and drain.
func StartTraceCapture(cfg trace.Config, maxSpans int) {
	captureMu.Lock()
	defer captureMu.Unlock()
	if maxSpans <= 0 {
		maxSpans = DefaultCaptureMaxSpans
	}
	cfg.Enabled = true
	captureActive = true
	captureCfg = cfg
	captureSpans = nil
	captureNames = make(map[int32]string)
	captureLive = make(map[*Device]bool)
	captureMax = maxSpans
	captureDropped = 0
}

// CollectCapturedTraces stops the capture and returns every harvested
// span, the pid display names, and how many spans were dropped (ring
// eviction on the devices plus capture-cap overflow).
func CollectCapturedTraces() ([]trace.SpanRecord, map[int32]string, uint64) {
	captureMu.Lock()
	defer captureMu.Unlock()
	for dev := range captureLive {
		captureFlushLocked(dev)
	}
	spans, names, dropped := captureSpans, captureNames, captureDropped
	captureActive = false
	captureSpans, captureNames, captureLive = nil, nil, nil
	return spans, names, dropped
}

// applyCapture forces the capture's trace config onto a boot config that
// doesn't already trace. Runs at the entry of BootFresh and Template, so
// both fresh boots and clone templates (and thus clones) pick it up.
func applyCapture(cfg *Config) {
	captureMu.Lock()
	defer captureMu.Unlock()
	if captureActive && !cfg.Trace.Enabled {
		cfg.Trace = captureCfg
	}
}

// registerCapture enrolls a freshly built tracing device in the live
// set. Safe to call for every device; off-capture or untraced devices
// are ignored. A recycled slot re-registers the same pointer.
func registerCapture(d *Device) {
	if d.rec == nil {
		return
	}
	captureMu.Lock()
	defer captureMu.Unlock()
	if captureActive {
		captureLive[d] = true
	}
}

// retireCapture harvests a device's spans before its recorder is rewound
// for a new trial (the slot-recycle path).
func retireCapture(d *Device) {
	if d.rec == nil {
		return
	}
	captureMu.Lock()
	defer captureMu.Unlock()
	if !captureActive || !captureLive[d] {
		return
	}
	captureFlushLocked(d)
	delete(captureLive, d)
}

func captureFlushLocked(d *Device) {
	spans := d.rec.Spans()
	captureDropped += d.rec.Dropped()
	if room := captureMax - len(captureSpans); len(spans) > room {
		captureDropped += uint64(len(spans) - room)
		spans = spans[:room]
	}
	captureSpans = append(captureSpans, spans...)
	for pid, name := range d.ProcNames() {
		captureNames[pid] = name
	}
}
