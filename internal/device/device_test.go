package device

import (
	"strings"
	"testing"

	"repro/internal/art"
	"repro/internal/binder"
	"repro/internal/catalog"
	"repro/internal/kernel"
	"repro/internal/trace"
)

func boot(t *testing.T, cfg Config) *Device {
	t.Helper()
	d, err := Boot(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestBootRegistersAllServices(t *testing.T) {
	d := boot(t, Config{Seed: 1})
	names := d.ServiceManager().ListServices()
	if len(names) != 104 {
		t.Fatalf("registered services = %d, want 104", len(names))
	}
	for _, meta := range catalog.Services() {
		svc := d.Service(meta.Name)
		if svc == nil {
			t.Fatalf("service %s not instantiated", meta.Name)
		}
		if svc.Host().Name() != meta.HostProcess() {
			t.Errorf("%s hosted in %s, want %s", meta.Name, svc.Host().Name(), meta.HostProcess())
		}
	}
}

func TestBaselineProcessCount(t *testing.T) {
	d := boot(t, Config{Seed: 1})
	if got := d.Kernel().RunningCount(); got != DefaultBaselineProcesses {
		t.Fatalf("RunningCount = %d, want %d (stock Android, Fig. 4)", got, DefaultBaselineProcesses)
	}
}

func TestBaselineJGRBand(t *testing.T) {
	d := boot(t, Config{Seed: 1})
	got := d.SystemServer().VM().GlobalRefCount()
	if got < 1000 || got > 3000 {
		t.Fatalf("system_server baseline JGR = %d, want within Fig. 4's 1,000–3,000 band", got)
	}
}

func TestPrebuiltServicesPublished(t *testing.T) {
	d := boot(t, Config{Seed: 1})
	names := d.AppServices().Names()
	// PicoService + GattService + AdapterService.
	if len(names) != 3 {
		t.Fatalf("published app services = %v, want 3", names)
	}
	for _, row := range catalog.PrebuiltAppInterfaces() {
		if d.AppService("") != nil {
			t.Fatal("empty name resolved")
		}
		if svc := d.AppService(appServiceNameOf(row)); svc == nil {
			t.Errorf("app service for %s not published", row.FullName())
		}
	}
}

func appServiceNameOf(row catalog.AppInterface) string {
	// mirrors apps.AppServiceName without re-importing it in each test
	return row.Package + "/" + row.Method[:indexByte(row.Method, '.')]
}

func indexByte(s string, b byte) int {
	for i := 0; i < len(s); i++ {
		if s[i] == b {
			return i
		}
	}
	return len(s)
}

func TestEndToEndAttackAndSoftReboot(t *testing.T) {
	d := boot(t, Config{Seed: 1, ServerVM: art.Config{MaxGlobalRefs: 2200}})
	attacker, err := d.Apps().Install("com.evil.app")
	if err != nil {
		t.Fatal(err)
	}
	c, err := d.NewClient(attacker, "clipboard")
	if err != nil {
		t.Fatal(err)
	}
	ss := d.SystemServer()
	for i := 0; i < 5000 && ss.Alive(); i++ {
		c.Register("addPrimaryClipChangedListener")
	}
	if ss.Alive() {
		t.Fatal("attack did not exhaust system_server")
	}
	if d.SoftReboots() != 1 {
		t.Fatalf("SoftReboots = %d, want 1", d.SoftReboots())
	}
	// After recovery the device is functional again: fresh system_server,
	// services re-registered, fresh JGR table.
	if d.SystemServer() == ss || !d.SystemServer().Alive() {
		t.Fatal("system_server not restarted")
	}
	if got := len(d.ServiceManager().ListServices()); got != 104 {
		t.Fatalf("services after reboot = %d, want 104", got)
	}
	if got := d.Kernel().RunningCount(); got != DefaultBaselineProcesses {
		t.Fatalf("processes after reboot = %d, want %d", got, DefaultBaselineProcesses)
	}
	// The attacker's process died in the reboot but can come back.
	if attacker.Running() {
		t.Fatal("attacker survived the soft reboot")
	}
	c2, err := d.NewClient(attacker, "clipboard")
	if err != nil {
		t.Fatal(err)
	}
	if err := c2.Register("addPrimaryClipChangedListener"); err != nil {
		t.Fatalf("post-reboot register failed: %v", err)
	}
}

func TestOnRebootCallback(t *testing.T) {
	d := boot(t, Config{Seed: 1, ServerVM: art.Config{MaxGlobalRefs: 1800}})
	var reasons []string
	d.OnReboot(func(r string) { reasons = append(reasons, r) })
	attacker, _ := d.Apps().Install("com.evil.app")
	c, _ := d.NewClient(attacker, "audio")
	for i := 0; i < 3000 && d.Kernel().SoftReboots() == 0; i++ {
		c.Register("startWatchingRoutes")
	}
	if len(reasons) != 1 {
		t.Fatalf("OnReboot fired %d times, want 1", len(reasons))
	}
}

func TestResolveSystemRecord(t *testing.T) {
	d := boot(t, Config{Seed: 1})
	attacker, _ := d.Apps().Install("com.evil.app")
	if err := d.Driver().EnableIPCLogging(); err != nil {
		t.Fatal(err)
	}
	c, _ := d.NewClient(attacker, "clipboard")
	if err := c.Register("addPrimaryClipChangedListener"); err != nil {
		t.Fatal(err)
	}
	d.Driver().FlushLog()
	recs, err := d.Driver().ReadLog(kernel.SystemUid)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) == 0 {
		t.Fatal("no records logged")
	}
	target, ok := d.Resolve(recs[len(recs)-1])
	if !ok {
		t.Fatal("record did not resolve")
	}
	if target.Kind != "system" || target.FullName() != "clipboard.addPrimaryClipChangedListener" {
		t.Fatalf("target = %+v", target)
	}
	if target.Catalogued == nil || !target.Catalogued.Exploitable() {
		t.Fatal("catalogued row not attached")
	}
}

func TestResolveUnknownRecord(t *testing.T) {
	d := boot(t, Config{Seed: 1})
	if _, ok := d.Resolve(binder.IPCRecord{Handle: 0xFFFF}); ok {
		t.Fatal("unknown handle resolved")
	}
}

func TestDeterministicBoot(t *testing.T) {
	d1 := boot(t, Config{Seed: 42})
	d2 := boot(t, Config{Seed: 42})
	if d1.SystemServer().VM().GlobalRefCount() != d2.SystemServer().VM().GlobalRefCount() {
		t.Fatal("boots with equal seeds differ in baseline JGR")
	}
	if d1.Kernel().RunningCount() != d2.Kernel().RunningCount() {
		t.Fatal("boots with equal seeds differ in process count")
	}
}

func TestStatsAndDump(t *testing.T) {
	d := boot(t, Config{Seed: 12})
	attacker, _ := d.Apps().Install("com.evil.app")
	c, err := d.NewClient(attacker, "clipboard")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 7; i++ {
		if err := c.Register("addPrimaryClipChangedListener"); err != nil {
			t.Fatal(err)
		}
	}
	s := d.Stats()
	if s.Services != 104 || s.Processes != DefaultBaselineProcesses+1 {
		t.Fatalf("stats = %+v", s)
	}
	// Three running apps: the attacker plus the two prebuilt core apps.
	if s.RunningApps != 3 || s.Transactions == 0 || s.JGRCap != 51200 {
		t.Fatalf("stats = %+v", s)
	}
	var buf strings.Builder
	d.DumpState(&buf)
	out := buf.String()
	for _, want := range []string{"DEVICE STATE", "clipboard", "com.evil.app", "system_server JGR"} {
		if !strings.Contains(out, want) {
			t.Errorf("dump missing %q:\n%s", want, out)
		}
	}
}

func TestBroadcastChannelBypassesBinderAccounting(t *testing.T) {
	d := boot(t, Config{Seed: 13})
	d.Driver().EnableIPCLogging()
	app, _ := d.Apps().Install("com.covert.app")
	proc := app.Start()
	base := d.SystemServer().VM().GlobalRefCount()
	for i := 0; i < 25; i++ {
		if err := d.RegisterBroadcastReceiver(proc); err != nil {
			t.Fatal(err)
		}
	}
	if got := d.SystemServer().VM().GlobalRefCount(); got != base+25 {
		t.Fatalf("JGR growth = %d, want 25", got-base)
	}
	// No binder evidence exists for the covert channel.
	d.Driver().FlushLog()
	recs, err := d.Driver().ReadLog(kernel.SystemUid)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		if r.FromUid == app.Uid() {
			t.Fatalf("covert channel left a binder record: %+v", r)
		}
	}
	// Registrant death releases the pins.
	app.ForceStop("gone")
	if got := d.SystemServer().VM().GlobalRefCount(); got != base {
		t.Fatalf("JGR after registrant death = %d, want %d", got, base)
	}
}

func TestThirdPartyInstallAndResolve(t *testing.T) {
	d := boot(t, Config{Seed: 14, InstallThirdPartyApps: true})
	// All three Table V services published alongside the prebuilt three.
	if got := len(d.AppServices().Names()); got != 6 {
		t.Fatalf("published app services = %d, want 6", got)
	}
	tts := d.Apps().ByPackage("com.google.android.tts")
	if tts == nil || !tts.Running() {
		t.Fatal("Google TTS app not installed/running")
	}
	// Drive one call and resolve its record to the app row.
	d.Driver().EnableIPCLogging()
	client, _ := d.Apps().Install("com.caller.app")
	cp := client.Start()
	row := catalog.ThirdPartyAppInterfaces()[0]
	ref, err := d.AppServices().Bind("com.google.android.tts/TextToSpeechService", cp)
	if err != nil {
		t.Fatal(err)
	}
	svc := d.AppService("com.google.android.tts/TextToSpeechService")
	code, ok := svc.Code("setCallback")
	if !ok {
		t.Fatal("setCallback missing")
	}
	data := binder.NewParcel()
	data.WriteStrongBinder(d.Driver().NewLocalBinder(cp, "android.os.Binder", nil))
	if err := ref.Binder().Transact(code, data, nil); err != nil {
		t.Fatal(err)
	}
	d.Driver().FlushLog()
	recs, _ := d.Driver().ReadLog(kernel.SystemUid)
	var found bool
	for _, r := range recs {
		tgt, ok := d.Resolve(r)
		if ok && tgt.Kind == "app" && tgt.Method == "setCallback" {
			found = true
			if tgt.AppRow == nil && row.Package != "" {
				// Third-party rows are not in PrebuiltAppInterfaces; the
				// resolver attaches no catalog row, which is fine.
				_ = row
			}
		}
	}
	if !found {
		t.Fatal("app-service record did not resolve")
	}
	// Survives a soft reboot: republished.
	evil, _ := d.Apps().Install("com.evil.app")
	c, _ := d.NewClient(evil, "audio")
	for i := 0; i < 60000 && d.SoftReboots() == 0; i++ {
		c.Register("startWatchingRoutes")
	}
	if d.SoftReboots() != 1 {
		t.Fatal("no reboot")
	}
	if got := len(d.AppServices().Names()); got != 6 {
		t.Fatalf("app services after reboot = %d, want 6", got)
	}
}

func TestJournalRecordsLifecycle(t *testing.T) {
	d := boot(t, Config{Seed: 15, ServerVM: art.Config{MaxGlobalRefs: 2000}})
	evil, _ := d.Apps().Install("com.evil.app")
	c, _ := d.NewClient(evil, "clipboard")
	for i := 0; i < 3000 && d.SoftReboots() == 0; i++ {
		c.Register("addPrimaryClipChangedListener")
	}
	j := d.Journal()
	if len(j.Filter(trace.KindReboot)) != 1 {
		t.Fatalf("journal reboots = %d, want 1", len(j.Filter(trace.KindReboot)))
	}
	kills := j.Filter(trace.KindKill)
	foundAttacker := false
	for _, e := range kills {
		if e.Subject == "com.evil.app" {
			foundAttacker = true
		}
	}
	if !foundAttacker {
		t.Fatal("attacker's death not journalled")
	}
}
