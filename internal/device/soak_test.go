package device

import (
	"testing"

	"repro/internal/art"
	"repro/internal/catalog"
	"repro/internal/kernel"
)

// TestSoakRepeatedReboots hammers an undefended device through several
// full exhaustion → soft-reboot → recovery cycles, re-launching the
// attacker each time: the device must come back fully functional every
// round (all services registered, baseline restored, fresh JGR table).
func TestSoakRepeatedReboots(t *testing.T) {
	d, err := Boot(Config{Seed: 77, ServerVM: art.Config{MaxGlobalRefs: 2200}})
	if err != nil {
		t.Fatal(err)
	}
	attacker, err := d.Apps().Install("com.evil.app")
	if err != nil {
		t.Fatal(err)
	}
	const rounds = 4
	for round := 1; round <= rounds; round++ {
		c, err := d.NewClient(attacker, "clipboard")
		if err != nil {
			t.Fatalf("round %d: client: %v", round, err)
		}
		for i := 0; i < 5000 && d.SoftReboots() < round; i++ {
			c.Register("addPrimaryClipChangedListener")
		}
		if d.SoftReboots() != round {
			t.Fatalf("round %d: SoftReboots = %d", round, d.SoftReboots())
		}
		// Post-reboot invariants.
		if got := len(d.ServiceManager().ListServices()); got != 104 {
			t.Fatalf("round %d: services = %d", round, got)
		}
		if got := d.Kernel().RunningCount(); got != DefaultBaselineProcesses {
			t.Fatalf("round %d: processes = %d", round, got)
		}
		if !d.SystemServer().Alive() {
			t.Fatalf("round %d: system_server dead after recovery", round)
		}
		if got := d.SystemServer().VM().GlobalRefCount(); got >= 2200 {
			t.Fatalf("round %d: fresh JGR table already at %d", round, got)
		}
		// App-service publications came back too.
		for _, row := range catalog.PrebuiltAppInterfaces() {
			name := row.Package + "/" + row.Method[:indexByte(row.Method, '.')]
			if d.AppService(name) == nil {
				t.Fatalf("round %d: app service %s not republished", round, name)
			}
		}
	}
}

// TestRebootDuringHeavyBenignLoad: a soft reboot that lands while dozens
// of benign apps hold live clients and listeners must not corrupt driver
// or kernel state.
func TestRebootDuringHeavyBenignLoad(t *testing.T) {
	d, err := Boot(Config{Seed: 78, ServerVM: art.Config{MaxGlobalRefs: 4000}})
	if err != nil {
		t.Fatal(err)
	}
	// 20 benign apps, each holding clients and a couple of listeners.
	for i := 0; i < 20; i++ {
		app, err := d.Apps().Install("com.bg.app" + string(rune('a'+i)))
		if err != nil {
			t.Fatal(err)
		}
		c, err := d.NewClient(app, "window")
		if err != nil {
			t.Fatal(err)
		}
		if err := c.Register("watchRotation"); err != nil {
			t.Fatal(err)
		}
	}
	attacker, _ := d.Apps().Install("com.evil.app")
	c, _ := d.NewClient(attacker, "audio")
	for i := 0; i < 5000 && d.SoftReboots() == 0; i++ {
		c.Register("startWatchingRoutes")
	}
	if d.SoftReboots() != 1 {
		t.Fatal("no reboot")
	}
	// Everything restarts cleanly and the restored services accept work.
	fresh, err := d.Apps().Install("com.fresh.app")
	if err != nil {
		t.Fatal(err)
	}
	c2, err := d.NewClient(fresh, "window")
	if err != nil {
		t.Fatal(err)
	}
	if err := c2.Register("watchRotation"); err != nil {
		t.Fatalf("post-reboot register: %v", err)
	}
	if got := d.Service("window").EntryCount("watchRotation"); got != 1 {
		t.Fatalf("fresh window listeners = %d, want 1 (old state discarded)", got)
	}
}

// TestSystemUidProcessesSurviveReboot: persistent system daemons are not
// app processes and must survive the userspace teardown only as respawns
// (the kernel model kills all non-system_server processes; the device
// layer restores the baseline population).
func TestSystemUidProcessesSurviveReboot(t *testing.T) {
	d, err := Boot(Config{Seed: 79, ServerVM: art.Config{MaxGlobalRefs: 2000}})
	if err != nil {
		t.Fatal(err)
	}
	attacker, _ := d.Apps().Install("com.evil.app")
	c, _ := d.NewClient(attacker, "clipboard")
	for i := 0; i < 3000 && d.SoftReboots() == 0; i++ {
		c.Register("addPrimaryClipChangedListener")
	}
	if d.SoftReboots() != 1 {
		t.Fatal("no reboot")
	}
	// mediaserver and the nfc host are back.
	for _, name := range []string{"mediaserver", "com.android.nfc"} {
		if d.Kernel().FindProcess(name) == nil {
			t.Errorf("host %s missing after reboot", name)
		}
	}
	if d.Kernel().FindProcess(kernel.SystemServerName) == nil {
		t.Error("system_server missing after reboot")
	}
}
