package device

import (
	"strings"
	"testing"
	"time"

	"repro/internal/kernel"
	"repro/internal/trace"
)

func TestTraceDroppedSurfacesInStats(t *testing.T) {
	d := boot(t, Config{Seed: 21})
	if got := d.Stats().TraceDropped; got != 0 {
		t.Fatalf("TraceDropped at boot = %d, want 0", got)
	}
	// Overflow the bounded journal so eviction kicks in.
	for i := 0; i < trace.DefaultCapacity+50; i++ {
		d.Journal().Add(time.Duration(i), trace.KindNote, "filler", "spam")
	}
	s := d.Stats()
	if s.TraceDropped < 50 {
		t.Fatalf("TraceDropped = %d, want >= 50", s.TraceDropped)
	}
	if s.TraceDropped != d.Journal().Dropped() {
		t.Fatalf("TraceDropped = %d, journal reports %d", s.TraceDropped, d.Journal().Dropped())
	}
	var b strings.Builder
	d.DumpState(&b)
	if !strings.Contains(b.String(), "trace journal:") {
		t.Fatal("DumpState does not flag the incomplete timeline")
	}
	// The registry gauge tracks the same counter.
	if v, ok := d.Metrics().Value("jgre_trace_dropped_total"); !ok || int(v) != s.TraceDropped {
		t.Fatalf("jgre_trace_dropped_total = %v (ok=%v), want %d", v, ok, s.TraceDropped)
	}
}

func TestMetricsProcFileRegisteredAtBoot(t *testing.T) {
	d := boot(t, Config{Seed: 22})
	out, err := d.Kernel().ProcFS().Read(MetricsPath, kernel.SystemUid)
	if err != nil {
		t.Fatalf("system uid read: %v", err)
	}
	text := string(out)
	for _, want := range []string{
		"jgre_device_uptime_seconds",
		"jgre_device_processes",
		"jgre_binder_transactions_total",
		`jgre_jgr_table_cap{process="system_server"} 51200`,
		"jgre_defender_attached 0",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("%s missing %q", MetricsPath, want)
		}
	}
	if _, err := d.Kernel().ProcFS().Read(MetricsPath, kernel.FirstAppUid); err == nil {
		t.Fatalf("app uid could read %s; want ACL denial", MetricsPath)
	}
	// Gauges follow live state: uptime advances with the virtual clock.
	d.Clock().Advance(5 * time.Second)
	if v, _ := d.Metrics().Value("jgre_device_uptime_seconds"); v < 5 {
		t.Fatalf("uptime gauge = %v, want >= 5", v)
	}
}

func TestHostMetricsSurviveSoftReboot(t *testing.T) {
	d := boot(t, Config{Seed: 23})
	before, _ := d.Metrics().Value(`jgre_jgr_table_size{process="system_server"}`)
	if before == 0 {
		t.Fatal("baseline JGR gauge reads 0")
	}
	// Exhaust the table to force a soft reboot; the gauge must re-point
	// at the new incarnation rather than keep reading the dead VM.
	evil, _ := d.Apps().Install("com.evil.app")
	c, err := d.NewClient(evil, "audio")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 60000 && d.SoftReboots() == 0; i++ {
		c.Register("startWatchingRoutes")
	}
	if d.SoftReboots() == 0 {
		t.Fatal("no soft reboot")
	}
	after, ok := d.Metrics().Value(`jgre_jgr_table_size{process="system_server"}`)
	if !ok {
		t.Fatal("gauge vanished after reboot")
	}
	if got := float64(d.SystemServer().VM().GlobalRefCount()); after != got {
		t.Fatalf("gauge = %v, new incarnation holds %v", after, got)
	}
	if v, _ := d.Metrics().Value("jgre_device_soft_reboots_total"); v != 1 {
		t.Fatalf("soft_reboots_total = %v, want 1", v)
	}
}
