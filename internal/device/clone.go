package device

import (
	"fmt"
	"sync"

	"repro/internal/apps"
	"repro/internal/binder"
	"repro/internal/faults"
	"repro/internal/kernel"
	"repro/internal/permissions"
	"repro/internal/services"
	"repro/internal/simclock"
	"repro/internal/trace"
)

// The clone-template cache behind Boot: one sealed, fully-booted device
// per configuration shape. Booting a device costs milliseconds (104
// services, ~382 processes); cloning one costs microseconds, because
// every layer shares the template's state copy-on-write. The cache is
// deliberately tiny — experiment sweeps use a handful of configuration
// shapes with many seeds each.
var (
	cloneBootMu   sync.Mutex
	cloneBootOff  bool
	templates     = map[templateKey]*Device{}
	templateOrder []templateKey
)

const maxTemplates = 4

// templateKey is the comparable, seed-independent shape of a Config.
// Seed is deliberately excluded: boot consumes no random draws (jitter
// rngs seed lazily on first use), so devices differing only by seed can
// share one template and be re-keyed at clone time.
type templateKey struct {
	maxGlobalRefs     int
	maxWeakGlobalRefs int
	gcTrigger         int
	appMemoryBudgetKB int
	latency           binder.LatencyModel
	logCost           binder.LatencyModel
	faults            faults.Config
	baselineProcesses int
	skipBaselineRefs  bool
	universalQuota    int
	installThirdParty bool
	traceCfg          trace.Config
}

// templateKeyOf reduces cfg to its template key. Configurations carrying
// caller-supplied hooks, injectors or registries are not cacheable —
// those pointers are per-device state a template cannot share.
func templateKeyOf(cfg Config) (templateKey, bool) {
	if cfg.ServerVM.OnAbort != nil || cfg.Kernel.OnSystemServerDeath != nil ||
		cfg.Driver.Faults != nil || cfg.Driver.Metrics != nil {
		return templateKey{}, false
	}
	return templateKey{
		maxGlobalRefs:     cfg.ServerVM.MaxGlobalRefs,
		maxWeakGlobalRefs: cfg.ServerVM.MaxWeakGlobalRefs,
		gcTrigger:         cfg.ServerVM.GCTrigger,
		appMemoryBudgetKB: cfg.Kernel.AppMemoryBudgetKB,
		latency:           cfg.Driver.Latency,
		logCost:           cfg.Driver.LogCost,
		faults:            cfg.Faults,
		baselineProcesses: cfg.BaselineProcesses,
		skipBaselineRefs:  cfg.SkipBaselineRefs,
		universalQuota:    cfg.UniversalQuota,
		installThirdParty: cfg.InstallThirdPartyApps,
		traceCfg:          cfg.Trace,
	}, true
}

// SetCloneBoot enables or disables the clone-template cache behind Boot
// and clears it. Disabled, every Boot builds a device from scratch
// (equivalence tests use this to compare clone against fresh boots).
func SetCloneBoot(enabled bool) {
	cloneBootMu.Lock()
	defer cloneBootMu.Unlock()
	cloneBootOff = !enabled
	templates = map[templateKey]*Device{}
	templateOrder = nil
}

// Snapshot seals the device as an immutable clone template: the kernel
// rejects further Spawn/Kill, every process VM's reference tables are
// frozen copy-on-write, and the permission definition map is marked
// shared. Snapshot is meant for a boot-quiescent device (no transactions
// run yet); it is idempotent, one-way, and must not race with clones —
// call it once before handing the template to concurrent cloners.
func (d *Device) Snapshot() {
	if d.sealed {
		return
	}
	d.sealed = true
	d.kern.Seal()
	d.perms.Freeze()
}

// Clone returns a copy-on-write clone of the device with the same seed.
// See CloneWithSeed.
func (d *Device) Clone() (*Device, error) { return d.CloneWithSeed(d.cfg.Seed) }

// Template resolves the sealed clone template for cfg through the same
// cache Boot uses, booting and sealing one if the shape is new. It
// returns (nil, nil) when no template is possible — the configuration
// carries uncacheable hooks, or SetCloneBoot(false) is in effect — in
// which case callers must fall back to BootFresh. The fleet Slot uses
// this to pin a template once per worker instead of re-consulting the
// cache on every trial.
func Template(cfg Config) (*Device, error) {
	if cfg.BaselineProcesses == 0 {
		cfg.BaselineProcesses = DefaultBaselineProcesses
	}
	applyCapture(&cfg)
	key, cacheable := templateKeyOf(cfg)
	if !cacheable {
		return nil, nil
	}
	cloneBootMu.Lock()
	defer cloneBootMu.Unlock()
	if cloneBootOff {
		return nil, nil
	}
	tmpl := templates[key]
	if tmpl == nil {
		var err error
		tmpl, err = BootFresh(cfg)
		if err != nil {
			return nil, err
		}
		tmpl.Snapshot()
		if len(templateOrder) >= maxTemplates {
			delete(templates, templateOrder[0])
			templateOrder = templateOrder[1:]
		}
		templates[key] = tmpl
		templateOrder = append(templateOrder, key)
	}
	return tmpl, nil
}

// CloneWithSeed builds a device sharing this (sealed) device's boot
// state copy-on-write: the process table and every VM's reference tables
// come from the kernel snapshot, immutable service metadata is shared,
// and only the mutable shells — driver, service manager, stubs, per-run
// rng seeds — are rebuilt, in boot order, so driver ids and handles
// replay identically. The clone runs on its own virtual clock and is
// byte-for-byte equivalent to BootFresh with the same config and seed.
// Snapshot is taken automatically on first use; taking it here is not
// safe against concurrent clones, so pre-Snapshot templates that fan
// out across goroutines.
func (d *Device) CloneWithSeed(seed int64) (*Device, error) {
	return d.cloneWithSeed(seed, nil)
}

// cloneWithSeed is CloneWithSeed with allocation recycling: prev, when
// non-nil, must be a retired clone of this same sealed template whose
// device is no longer referenced anywhere. Its maps, slabs, journal,
// kernel and driver storage are rewound and the new device is rebuilt in
// place through the same boot-order replay as a cold clone, so the
// result is byte-identical to one — this is the fleet Slot's per-trial
// reseed path. Passing a prev that is still in use corrupts both
// devices.
func (d *Device) cloneWithSeed(seed int64, prev *Device) (*Device, error) {
	if !d.sealed {
		d.Snapshot()
	}
	nd := prev
	if nd != nil {
		if nd.sealed {
			return nil, fmt.Errorf("device: recycling a sealed template")
		}
		// Harvest the retired clone's storage, rewound in place; the
		// zeroing assignment below drops everything else. The trace
		// capture, when active, drains the retiring trial's spans first.
		retireCapture(nd)
		hosts, svcMap, appSvcMap, handleIdx := nd.hosts, nd.services, nd.appServices, nd.handleIndex
		clear(hosts)
		clear(svcMap)
		clear(appSvcMap)
		clear(handleIdx)
		nd.journal.Reset()
		*nd = Device{
			cfg:         d.cfg,
			kern:        nd.kern,
			driver:      nd.driver,
			perms:       nd.perms,
			apps:        nd.apps,
			appReg:      nd.appReg,
			journal:     nd.journal,
			rec:         nd.rec,
			hosts:       hosts,
			services:    svcMap,
			appServices: appSvcMap,
			handleIndex: handleIdx,
			svcSlab:     nd.svcSlab[:0],
			appSlab:     nd.appSlab[:0],
			appOrder:    nd.appOrder[:0],
		}
	} else {
		nd = &Device{cfg: d.cfg, journal: trace.New(0)}
	}
	nd.cfg.Seed = seed
	nd.clock = simclock.New()
	nd.clock.AdvanceTo(d.clock.Now())

	// Flight recorder: the recycle path rewinds the harvested ring in
	// place and re-keys the trace-ID mint; a cold clone allocates one.
	// Either way the clone's span stream is a pure function of (cfg, seed)
	// — what the cross-slot-mode byte-identity suite asserts.
	if nd.cfg.Trace.Enabled {
		if nd.rec != nil {
			nd.rec.Reset(seed)
		} else {
			nd.rec = newRecorder(nd.cfg)
		}
	} else {
		nd.rec = nil
	}

	userReboot := nd.cfg.Kernel.OnSystemServerDeath
	nd.kern = d.kern.CloneReusing(nd.kern, nd.clock, func(reason string) {
		if userReboot != nil {
			userReboot(reason)
		}
		nd.restartSystem(reason)
	})
	// Kill observers re-register in boot order: journal first, then the
	// binder driver (inside binder.NewReusing).
	nd.kern.OnKill(func(p *kernel.Process, reason string) {
		kind := trace.KindKill
		if reason == "lmk" {
			kind = trace.KindLMK
		}
		nd.journal.Add(nd.clock.Now(), kind, p.Name(), reason)
	})

	dcfg := nd.cfg.Driver
	if nd.cfg.Faults.Enabled() {
		if dcfg.Faults != nil {
			return nil, fmt.Errorf("device: both Config.Faults and Driver.Faults set")
		}
		if err := nd.cfg.Faults.Validate(); err != nil {
			return nil, err
		}
		dcfg.Faults = faults.New(nd.cfg.Faults, seed)
	}
	// Telemetry is deferred: Metrics() builds the registry and attaches
	// the driver's instruments on first use, keeping the clone path free
	// of the ~120 gauge registrations a boot pays eagerly.
	dcfg.Metrics = nil
	nd.driver = binder.NewReusing(nd.driver, nd.kern, dcfg)
	nd.driver.SetRecorder(nd.rec)
	nd.sm = d.sm.Clone(nd.driver)

	if nd.perms == nil {
		nd.perms = new(permissions.Manager)
	}
	d.perms.CloneInto(nd.perms)
	if nd.apps == nil {
		nd.apps = new(apps.Manager)
	}
	d.apps.CloneInto(nd.apps, nd.kern, nd.perms)
	if nd.appReg == nil {
		nd.appReg = apps.NewServiceRegistry(nd.driver)
	} else {
		nd.appReg.ResetFor(nd.driver)
	}

	if nd.hosts == nil {
		nd.hosts = make(map[string]*kernel.Process, len(d.hosts))
	}
	for name, p := range d.hosts {
		nd.hosts[name] = nd.kern.Process(p.Pid())
	}
	nd.systemServer = nd.hosts[kernel.SystemServerName]

	// System services replay in recorded creation order — the same order
	// startSystem walked the catalog — into one slab allocation. The
	// template's own bookkeeping (svcOrder, Host().Name()) stands in for
	// the census so the hot path never copies it.
	if nd.services == nil {
		nd.services = make(map[string]*services.Service, len(d.services))
		nd.handleIndex = make(map[binder.Handle]handleEntry, len(d.handleIndex))
	}
	nd.svcOrder = d.svcOrder
	if cap(nd.svcSlab) < len(d.svcOrder) {
		nd.svcSlab = make([]services.Service, len(d.svcOrder))
	} else {
		nd.svcSlab = nd.svcSlab[:len(d.svcOrder)]
	}
	for i, name := range d.svcOrder {
		tmpl := d.services[name]
		if tmpl == nil {
			return nil, fmt.Errorf("device: clone template missing service %s", name)
		}
		svc := &nd.svcSlab[i]
		tmpl.CloneInto(svc, nd.hosts[tmpl.Host().Name()], nd.driver, nd.clock, nd.perms, seed)
		nd.services[name] = svc
		nd.handleIndex[nd.driver.HandleOf(svc.Stub())] = handleEntry{kind: "system", sys: svc, name: name}
	}

	// App services replay in recorded publish order.
	if nd.appServices == nil {
		nd.appServices = make(map[string]*apps.AppService, len(d.appServices))
	}
	nd.appOrder = append(nd.appOrder, d.appOrder...)
	if cap(nd.appSlab) < len(d.appOrder) {
		nd.appSlab = make([]apps.AppService, len(d.appOrder))
	} else {
		nd.appSlab = nd.appSlab[:len(d.appOrder)]
	}
	for i, name := range d.appOrder {
		tmpl := d.appServices[name]
		owner := nd.apps.ByPackage(tmpl.Owner().Package())
		if owner == nil {
			return nil, fmt.Errorf("device: clone template missing app %s", tmpl.Owner().Package())
		}
		svc := &nd.appSlab[i]
		if err := tmpl.CloneInto(svc, owner, nd.driver, nd.clock, nd.appReg, seed); err != nil {
			return nil, fmt.Errorf("device: cloning app service %s: %w", name, err)
		}
		nd.appServices[name] = svc
		nd.handleIndex[nd.driver.HandleOf(svc.Stub())] = handleEntry{kind: "app", app: svc, name: name}
	}

	if got, want := nd.driver.NodeCount(), d.driver.NodeCount(); got != want {
		return nil, fmt.Errorf("device: clone replay minted %d binder nodes, template has %d", got, want)
	}

	nd.bootCount = d.bootCount
	nd.broadcastSeq = d.broadcastSeq
	nd.attachTraceVMs()
	registerCapture(nd)

	if err := nd.kern.ProcFS().CreateProvider(MetricsPath, kernel.RootUid, false, func() []byte {
		return nd.Metrics().RenderProm()
	}); err != nil {
		return nil, err
	}
	return nd, nil
}
