package device

import (
	"fmt"
	"sync"

	"repro/internal/apps"
	"repro/internal/binder"
	"repro/internal/faults"
	"repro/internal/kernel"
	"repro/internal/permissions"
	"repro/internal/services"
	"repro/internal/simclock"
	"repro/internal/trace"
)

// The clone-template cache behind Boot: one sealed, fully-booted device
// per configuration shape. Booting a device costs milliseconds (104
// services, ~382 processes); cloning one costs microseconds, because
// every layer shares the template's state copy-on-write. The cache is
// deliberately tiny — experiment sweeps use a handful of configuration
// shapes with many seeds each.
var (
	cloneBootMu   sync.Mutex
	cloneBootOff  bool
	templates     = map[templateKey]*Device{}
	templateOrder []templateKey
)

const maxTemplates = 4

// templateKey is the comparable, seed-independent shape of a Config.
// Seed is deliberately excluded: boot consumes no random draws (jitter
// rngs seed lazily on first use), so devices differing only by seed can
// share one template and be re-keyed at clone time.
type templateKey struct {
	maxGlobalRefs     int
	maxWeakGlobalRefs int
	gcTrigger         int
	appMemoryBudgetKB int
	latency           binder.LatencyModel
	logCost           binder.LatencyModel
	faults            faults.Config
	baselineProcesses int
	skipBaselineRefs  bool
	universalQuota    int
	installThirdParty bool
}

// templateKeyOf reduces cfg to its template key. Configurations carrying
// caller-supplied hooks, injectors or registries are not cacheable —
// those pointers are per-device state a template cannot share.
func templateKeyOf(cfg Config) (templateKey, bool) {
	if cfg.ServerVM.OnAbort != nil || cfg.Kernel.OnSystemServerDeath != nil ||
		cfg.Driver.Faults != nil || cfg.Driver.Metrics != nil {
		return templateKey{}, false
	}
	return templateKey{
		maxGlobalRefs:     cfg.ServerVM.MaxGlobalRefs,
		maxWeakGlobalRefs: cfg.ServerVM.MaxWeakGlobalRefs,
		gcTrigger:         cfg.ServerVM.GCTrigger,
		appMemoryBudgetKB: cfg.Kernel.AppMemoryBudgetKB,
		latency:           cfg.Driver.Latency,
		logCost:           cfg.Driver.LogCost,
		faults:            cfg.Faults,
		baselineProcesses: cfg.BaselineProcesses,
		skipBaselineRefs:  cfg.SkipBaselineRefs,
		universalQuota:    cfg.UniversalQuota,
		installThirdParty: cfg.InstallThirdPartyApps,
	}, true
}

// SetCloneBoot enables or disables the clone-template cache behind Boot
// and clears it. Disabled, every Boot builds a device from scratch
// (equivalence tests use this to compare clone against fresh boots).
func SetCloneBoot(enabled bool) {
	cloneBootMu.Lock()
	defer cloneBootMu.Unlock()
	cloneBootOff = !enabled
	templates = map[templateKey]*Device{}
	templateOrder = nil
}

// Snapshot seals the device as an immutable clone template: the kernel
// rejects further Spawn/Kill, every process VM's reference tables are
// frozen copy-on-write, and the permission definition map is marked
// shared. Snapshot is meant for a boot-quiescent device (no transactions
// run yet); it is idempotent, one-way, and must not race with clones —
// call it once before handing the template to concurrent cloners.
func (d *Device) Snapshot() {
	if d.sealed {
		return
	}
	d.sealed = true
	d.kern.Seal()
	d.perms.Freeze()
}

// Clone returns a copy-on-write clone of the device with the same seed.
// See CloneWithSeed.
func (d *Device) Clone() (*Device, error) { return d.CloneWithSeed(d.cfg.Seed) }

// CloneWithSeed builds a device sharing this (sealed) device's boot
// state copy-on-write: the process table and every VM's reference tables
// come from the kernel snapshot, immutable service metadata is shared,
// and only the mutable shells — driver, service manager, stubs, per-run
// rng seeds — are rebuilt, in boot order, so driver ids and handles
// replay identically. The clone runs on its own virtual clock and is
// byte-for-byte equivalent to BootFresh with the same config and seed.
// Snapshot is taken automatically on first use; taking it here is not
// safe against concurrent clones, so pre-Snapshot templates that fan
// out across goroutines.
func (d *Device) CloneWithSeed(seed int64) (*Device, error) {
	if !d.sealed {
		d.Snapshot()
	}
	nd := &Device{cfg: d.cfg}
	nd.cfg.Seed = seed
	nd.clock = simclock.New()
	nd.clock.AdvanceTo(d.clock.Now())

	userReboot := nd.cfg.Kernel.OnSystemServerDeath
	nd.kern = d.kern.Clone(nd.clock, func(reason string) {
		if userReboot != nil {
			userReboot(reason)
		}
		nd.restartSystem(reason)
	})
	// Kill observers re-register in boot order: journal first, then the
	// binder driver (inside binder.New).
	nd.journal = trace.New(0)
	nd.kern.OnKill(func(p *kernel.Process, reason string) {
		kind := trace.KindKill
		if reason == "lmk" {
			kind = trace.KindLMK
		}
		nd.journal.Add(nd.clock.Now(), kind, p.Name(), reason)
	})

	dcfg := nd.cfg.Driver
	if nd.cfg.Faults.Enabled() {
		if dcfg.Faults != nil {
			return nil, fmt.Errorf("device: both Config.Faults and Driver.Faults set")
		}
		if err := nd.cfg.Faults.Validate(); err != nil {
			return nil, err
		}
		dcfg.Faults = faults.New(nd.cfg.Faults, seed)
	}
	// Telemetry is deferred: Metrics() builds the registry and attaches
	// the driver's instruments on first use, keeping the clone path free
	// of the ~120 gauge registrations a boot pays eagerly.
	dcfg.Metrics = nil
	nd.driver = binder.New(nd.kern, dcfg)
	nd.sm = d.sm.Clone(nd.driver)

	nd.perms = new(permissions.Manager)
	d.perms.CloneInto(nd.perms)
	nd.apps = new(apps.Manager)
	d.apps.CloneInto(nd.apps, nd.kern, nd.perms)
	nd.appReg = apps.NewServiceRegistry(nd.driver)

	nd.hosts = make(map[string]*kernel.Process, len(d.hosts))
	for name, p := range d.hosts {
		nd.hosts[name] = nd.kern.Process(p.Pid())
	}
	nd.systemServer = nd.hosts[kernel.SystemServerName]

	// System services replay in recorded creation order — the same order
	// startSystem walked the catalog — into one slab allocation. The
	// template's own bookkeeping (svcOrder, Host().Name()) stands in for
	// the census so the hot path never copies it.
	nd.services = make(map[string]*services.Service, len(d.services))
	nd.handleIndex = make(map[binder.Handle]handleEntry, len(d.handleIndex))
	nd.svcOrder = d.svcOrder
	svcSlab := make([]services.Service, len(d.svcOrder))
	for i, name := range d.svcOrder {
		tmpl := d.services[name]
		if tmpl == nil {
			return nil, fmt.Errorf("device: clone template missing service %s", name)
		}
		svc := &svcSlab[i]
		tmpl.CloneInto(svc, nd.hosts[tmpl.Host().Name()], nd.driver, nd.clock, nd.perms, seed)
		nd.services[name] = svc
		nd.handleIndex[nd.driver.HandleOf(svc.Stub())] = handleEntry{kind: "system", sys: svc, name: name}
	}

	// App services replay in recorded publish order.
	nd.appServices = make(map[string]*apps.AppService, len(d.appServices))
	nd.appOrder = append([]string(nil), d.appOrder...)
	appSlab := make([]apps.AppService, len(d.appOrder))
	for i, name := range d.appOrder {
		tmpl := d.appServices[name]
		owner := nd.apps.ByPackage(tmpl.Owner().Package())
		if owner == nil {
			return nil, fmt.Errorf("device: clone template missing app %s", tmpl.Owner().Package())
		}
		svc := &appSlab[i]
		if err := tmpl.CloneInto(svc, owner, nd.driver, nd.clock, nd.appReg, seed); err != nil {
			return nil, fmt.Errorf("device: cloning app service %s: %w", name, err)
		}
		nd.appServices[name] = svc
		nd.handleIndex[nd.driver.HandleOf(svc.Stub())] = handleEntry{kind: "app", app: svc, name: name}
	}

	if got, want := nd.driver.NodeCount(), d.driver.NodeCount(); got != want {
		return nil, fmt.Errorf("device: clone replay minted %d binder nodes, template has %d", got, want)
	}

	nd.bootCount = d.bootCount
	nd.broadcastSeq = d.broadcastSeq

	if err := nd.kern.ProcFS().CreateProvider(MetricsPath, kernel.RootUid, false, func() []byte {
		return nd.Metrics().RenderProm()
	}); err != nil {
		return nil, err
	}
	return nd, nil
}
