package device

import (
	"fmt"
	"io"
	"sort"
)

// Stats is a point-in-time snapshot of the device, for monitoring and
// examples.
type Stats struct {
	// Uptime is the virtual time since (first) boot.
	UptimeSeconds float64
	Processes     int
	RunningApps   int
	Services      int
	SoftReboots   int
	LMKKills      int
	// SystemServerJGR is the current table size; SystemServerPeakJGR the
	// historical maximum of the current incarnation.
	SystemServerJGR     int
	SystemServerPeakJGR int
	JGRCap              int
	Transactions        uint64
	// IPC-log telemetry health (see binder.LogStats): how many records
	// the extended driver generated, how many were lost to injected
	// drops or ring overflow, and how many log reads failed.
	IPCLogSeq         uint64
	IPCLogDropped     uint64
	IPCLogRingDropped uint64
	IPCLogReadErrors  uint64
	// TraceDropped is how many journal events the bounded trace ring
	// silently evicted — nonzero means the forensic timeline is
	// incomplete and post-mortem tooling should say so.
	TraceDropped int
	// Flight-recorder health (all zero when tracing is off): spans
	// currently retained, spans ring eviction overwrote, and how many
	// flight dumps (detections, chaos crashes) were captured. Like
	// TraceDropped, TraceSpanDrops is a "no silent caps" counter —
	// nonzero means exported traces are missing their oldest spans.
	TraceSpans     int
	TraceSpanDrops uint64
	FlightDumps    int
	// Defender carries the defense layer's self-reported health when one
	// is attached (nil otherwise): last-window coverage, whether fallback
	// attribution was used, and the cumulative degradation counters.
	Defender *DefenderHealth
}

// Stats snapshots the device.
func (d *Device) Stats() Stats {
	running := 0
	for _, a := range d.apps.Installed() {
		if a.Running() {
			running++
		}
	}
	ls := d.driver.LogStats()
	var health *DefenderHealth
	if d.defenderHealth != nil {
		h := d.defenderHealth()
		health = &h
	}
	return Stats{
		UptimeSeconds:       d.clock.Now().Seconds(),
		Processes:           d.kern.RunningCount(),
		RunningApps:         running,
		Services:            len(d.services),
		SoftReboots:         d.bootCount,
		LMKKills:            d.kern.LMKKills(),
		SystemServerJGR:     d.systemServer.VM().GlobalRefCount(),
		SystemServerPeakJGR: d.systemServer.VM().PeakGlobalRefCount(),
		JGRCap:              d.systemServer.VM().MaxGlobal(),
		Transactions:        d.driver.TotalTransactions(),
		IPCLogSeq:           ls.Seq,
		IPCLogDropped:       ls.DroppedRate,
		IPCLogRingDropped:   ls.DroppedRing,
		IPCLogReadErrors:    ls.ReadErrors,
		TraceDropped:        d.journal.Dropped(),
		TraceSpans:          d.rec.Len(),
		TraceSpanDrops:      d.rec.Dropped(),
		FlightDumps:         d.flightDumpsTotal,
		Defender:            health,
	}
}

// DumpState writes a dumpsys-style report: device stats, the busiest
// services by retained registrations, and the process table summary.
func (d *Device) DumpState(w io.Writer) {
	s := d.Stats()
	fmt.Fprintf(w, "DEVICE STATE (t=%.1fs)\n", s.UptimeSeconds)
	fmt.Fprintf(w, "  processes: %d (%d user apps)  services: %d  soft reboots: %d  lmk kills: %d\n",
		s.Processes, s.RunningApps, s.Services, s.SoftReboots, s.LMKKills)
	fmt.Fprintf(w, "  system_server JGR: %d / %d (peak %d)  binder transactions: %d\n",
		s.SystemServerJGR, s.JGRCap, s.SystemServerPeakJGR, s.Transactions)
	if s.IPCLogSeq > 0 {
		fmt.Fprintf(w, "  ipc log: %d records, %d dropped, %d ring-evicted, %d read errors\n",
			s.IPCLogSeq, s.IPCLogDropped, s.IPCLogRingDropped, s.IPCLogReadErrors)
	}
	if s.TraceDropped > 0 {
		fmt.Fprintf(w, "  trace journal: %d events evicted (timeline incomplete)\n", s.TraceDropped)
	}
	if s.TraceSpans > 0 || s.TraceSpanDrops > 0 || s.FlightDumps > 0 {
		fmt.Fprintf(w, "  flight recorder: %d spans held, %d evicted, %d dumps\n",
			s.TraceSpans, s.TraceSpanDrops, s.FlightDumps)
	}
	if h := s.Defender; h != nil {
		fmt.Fprintf(w, "  defender: %d detections, last coverage %.2f, fallback %v, %d read retries, %d analysis restarts, %d guard stops\n",
			h.Detections, h.Coverage, h.FallbackUsed, h.ReadRetries, h.AnalysisRestarts, h.GuardStops)
	}

	type svcLoad struct {
		name    string
		entries int
		calls   uint64
	}
	var loads []svcLoad
	for name, svc := range d.services {
		if n := svc.TotalEntries(); n > 0 || svc.Calls() > 0 {
			loads = append(loads, svcLoad{name: name, entries: n, calls: svc.Calls()})
		}
	}
	sort.Slice(loads, func(i, j int) bool {
		if loads[i].entries != loads[j].entries {
			return loads[i].entries > loads[j].entries
		}
		return loads[i].name < loads[j].name
	})
	fmt.Fprintf(w, "  active services (retained registrations / calls):\n")
	for i, l := range loads {
		if i == 10 {
			fmt.Fprintf(w, "    ... and %d more\n", len(loads)-10)
			break
		}
		fmt.Fprintf(w, "    %-24s %6d entries %8d calls\n", l.name, l.entries, l.calls)
	}

	fmt.Fprintf(w, "  app processes:\n")
	apps := d.apps.Installed()
	shown := 0
	for _, a := range apps {
		if !a.Running() {
			continue
		}
		if shown == 10 {
			fmt.Fprintf(w, "    ... and more\n")
			break
		}
		p := a.Proc()
		fmt.Fprintf(w, "    uid %-6d %-28s pid %-5d adj %-4d JGR %d\n",
			a.Uid(), a.Package(), p.Pid(), p.OomScoreAdj(), p.VM().GlobalRefCount())
		shown++
	}
	if shown == 0 {
		fmt.Fprintf(w, "    (none running)\n")
	}
}
