package device

import (
	"strings"
	"testing"

	"repro/internal/art"
)

// slotFingerprint drives a deterministic workload and renders every
// observable surface — dumpsys report plus the full journal — so two
// devices can be compared byte-for-byte.
func slotFingerprint(t testing.TB, d *Device, registers int) string {
	t.Helper()
	atk, err := d.Apps().Install("com.evil.app")
	if err != nil {
		t.Fatal(err)
	}
	c, err := d.NewClient(atk, "clipboard")
	if err != nil {
		t.Fatal(err)
	}
	ss := d.SystemServer()
	for i := 0; i < registers && ss.Alive(); i++ {
		c.Register("addPrimaryClipChangedListener")
	}
	var sb strings.Builder
	d.DumpState(&sb)
	for _, ev := range d.Journal().Events() {
		sb.WriteString(ev.String())
		sb.WriteString("\n")
	}
	return sb.String()
}

// TestSlotRecycleEquivalence proves the tentpole property: a device
// recycled in place from a retired trial is byte-identical to a cold
// clone with the same seed, across several consecutive reseeds.
func TestSlotRecycleEquivalence(t *testing.T) {
	cfg := Config{ServerVM: art.Config{MaxGlobalRefs: 51200}}
	slot, err := NewSlot(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, seed := range []int64{1, 7, 42, 7} {
		d, err := slot.Acquire(seed)
		if err != nil {
			t.Fatal(err)
		}
		got := slotFingerprint(t, d, 200)

		ref := boot(t, Config{Seed: seed, ServerVM: art.Config{MaxGlobalRefs: 51200}})
		want := slotFingerprint(t, ref, 200)
		if got != want {
			t.Fatalf("seed %d: recycled device diverges from cold clone:\n--- recycled ---\n%s\n--- clone ---\n%s", seed, got, want)
		}
	}
	st := slot.Stats()
	if st.Clones != 1 || st.Recycles != 3 {
		t.Fatalf("slot stats = %+v, want 1 clone + 3 recycles", st)
	}
}

// TestSlotRecycleAfterSoftReboot recycles a device whose trial drove it
// through JGR exhaustion and a soft reboot — the dirtiest state a trial
// can retire with — and checks the next trial starts byte-identical to a
// cold clone.
func TestSlotRecycleAfterSoftReboot(t *testing.T) {
	cfg := Config{ServerVM: art.Config{MaxGlobalRefs: 2200}}
	slot, err := NewSlot(cfg)
	if err != nil {
		t.Fatal(err)
	}
	d, err := slot.Acquire(3)
	if err != nil {
		t.Fatal(err)
	}
	slotFingerprint(t, d, 5000)
	if d.SoftReboots() != 1 {
		t.Fatalf("SoftReboots = %d, want 1 (trial should exhaust)", d.SoftReboots())
	}

	d2, err := slot.Acquire(9)
	if err != nil {
		t.Fatal(err)
	}
	got := slotFingerprint(t, d2, 100)
	ref := boot(t, Config{Seed: 9, ServerVM: art.Config{MaxGlobalRefs: 2200}})
	want := slotFingerprint(t, ref, 100)
	if got != want {
		t.Fatalf("post-reboot recycle diverges from cold clone:\n--- recycled ---\n%s\n--- clone ---\n%s", got, want)
	}
}

// TestSlotFreshFallback: with clone-boot disabled a slot degrades to
// fresh boots, keeping slot-driven runs comparable to the equivalence
// tests' SetCloneBoot(false) mode.
func TestSlotFreshFallback(t *testing.T) {
	SetCloneBoot(false)
	defer SetCloneBoot(true)
	slot, err := NewSlot(Config{})
	if err != nil {
		t.Fatal(err)
	}
	for _, seed := range []int64{1, 2} {
		d, err := slot.Acquire(seed)
		if err != nil {
			t.Fatal(err)
		}
		if d.BootConfig().Seed != seed {
			t.Fatalf("seed = %d, want %d", d.BootConfig().Seed, seed)
		}
	}
	if st := slot.Stats(); st.Fresh != 2 || st.Clones != 0 || st.Recycles != 0 {
		t.Fatalf("slot stats = %+v, want 2 fresh boots", st)
	}
}

// BenchmarkSlotAcquireRecycle measures the per-trial reseed cost on a
// warm slot — the number to compare against BenchmarkDeviceClone's cold
// clone.
func BenchmarkSlotAcquireRecycle(b *testing.B) {
	slot, err := NewSlot(Config{})
	if err != nil {
		b.Fatal(err)
	}
	if _, err := slot.Acquire(0); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := slot.Acquire(int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}
