package device

// Slot is a long-lived device seat for fleet workers: the first Acquire
// pays one copy-on-write clone off the sealed template, and every later
// Acquire recycles that clone in place — maps cleared, slabs rewound,
// journal and driver storage reused — instead of allocating a new
// device per trial. A slot is owned by exactly one worker at a time.
//
// Contract: Acquire retires the previously returned device. The caller
// must have dropped every reference into it (schedulers, clients,
// defenders, attackers) before calling Acquire again; holding on to the
// old device corrupts both it and the new one, because they share
// storage. Results must therefore be extracted (copied out) before the
// next Acquire.
type Slot struct {
	tmpl *Device // sealed template; nil = fresh-boot fallback
	cfg  Config
	cur  *Device

	stats SlotStats
}

// SlotStats counts how a slot satisfied its Acquires; the fleet engine
// surfaces the totals through telemetry (they depend on worker count and
// so never enter a FleetResult).
type SlotStats struct {
	// Clones counts cold starts (a full CloneWithSeed).
	Clones int
	// Recycles counts in-place rewinds of the previous device.
	Recycles int
	// Fresh counts full BootFresh fallbacks (template unavailable).
	Fresh int
}

// NewSlot creates a slot for the configuration shape. The template is
// resolved once, up front: when the shape is cacheable and clone-boot is
// enabled the slot clones and recycles; otherwise every Acquire falls
// back to a fresh boot (which keeps slot-driven runs byte-identical to
// the equivalence tests' SetCloneBoot(false) mode).
func NewSlot(cfg Config) (*Slot, error) {
	if cfg.BaselineProcesses == 0 {
		cfg.BaselineProcesses = DefaultBaselineProcesses
	}
	tmpl, err := Template(cfg)
	if err != nil {
		return nil, err
	}
	return &Slot{tmpl: tmpl, cfg: cfg}, nil
}

// Acquire returns a device booted (equivalently: cloned) with the given
// seed, recycling the slot's previous device when possible. The returned
// device is byte-identical to Boot of the same config and seed.
func (s *Slot) Acquire(seed int64) (*Device, error) {
	if s.tmpl == nil {
		cfg := s.cfg
		cfg.Seed = seed
		d, err := BootFresh(cfg)
		if err != nil {
			return nil, err
		}
		s.stats.Fresh++
		s.cur = d
		return d, nil
	}
	if s.cur == nil {
		d, err := s.tmpl.CloneWithSeed(seed)
		if err != nil {
			return nil, err
		}
		s.stats.Clones++
		s.cur = d
		return d, nil
	}
	d, err := s.tmpl.cloneWithSeed(seed, s.cur)
	if err != nil {
		// The rewind may have already scrambled the retired device;
		// drop it so the next Acquire cold-starts.
		s.cur = nil
		return nil, err
	}
	s.stats.Recycles++
	s.cur = d
	return d, nil
}

// Stats returns the slot's acquire counters.
func (s *Slot) Stats() SlotStats { return s.stats }

// Release drops the slot's current device, forcing the next Acquire to
// cold-start. Workers call it when a trial leaves the device in a state
// recycling must not inherit (it never should — the rewind rebuilds
// everything — but a panic mid-trial is safest quarantined).
func (s *Slot) Release() { s.cur = nil }
