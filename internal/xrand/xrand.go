// Package xrand provides a splitmix64-backed math/rand source for the
// simulator's jitter draws. math/rand's default rngSource seeds a
// 607-word feedback register (~10 µs) — fine for a long-lived generator,
// but the engine lazily seeds one generator per touched service per
// cloned device, and at fleet turnaround rates the seeding dwarfed the
// draws. A splitmix64 state seeds in one store and passes the usual
// avalanche tests; the simulator needs deterministic, well-mixed jitter,
// not cryptographic quality.
package xrand

import "math/rand"

// Source is a rand.Source64 over a splitmix64 sequence.
type Source struct {
	state uint64
}

// NewSource returns a Source seeded with seed.
func NewSource(seed int64) *Source {
	return &Source{state: uint64(seed)}
}

// New returns a *rand.Rand drawing from a splitmix64 source — a drop-in
// for rand.New(rand.NewSource(seed)) with O(1) seeding.
func New(seed int64) *rand.Rand {
	return rand.New(NewSource(seed))
}

// Seed implements rand.Source.
func (s *Source) Seed(seed int64) { s.state = uint64(seed) }

// Uint64 implements rand.Source64: one splitmix64 step.
func (s *Source) Uint64() uint64 {
	s.state += 0x9E3779B97F4A7C15
	z := s.state
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Int63 implements rand.Source.
func (s *Source) Int63() int64 {
	return int64(s.Uint64() >> 1)
}
