package trace

import (
	"bytes"
	"encoding/binary"
	"testing"
	"time"
)

// spansFromBytes deterministically decodes arbitrary fuzz input into a
// slice of span records: 44 bytes per record, fields read little-endian
// with no rejection — every input maps to some span set, so coverage
// explores the exporter rather than a parser.
func spansFromBytes(data []byte) []SpanRecord {
	const stride = 44
	var out []SpanRecord
	for len(data) >= stride && len(out) < 256 {
		rec := SpanRecord{
			Trace:  TraceID(binary.LittleEndian.Uint64(data[0:])),
			ID:     SpanID(binary.LittleEndian.Uint64(data[8:])),
			Parent: SpanID(binary.LittleEndian.Uint64(data[16:])),
			Start:  time.Duration(int64(binary.LittleEndian.Uint32(data[24:]))),
			End:    time.Duration(int64(binary.LittleEndian.Uint32(data[28:]))),
			Pid:    int32(binary.LittleEndian.Uint32(data[32:])),
			Uid:    int32(binary.LittleEndian.Uint32(data[36:])),
			Kind:   SpanKind(data[40]),
			Code:   uint32(data[41]),
			Val:    int64(int16(binary.LittleEndian.Uint16(data[42:]))),
		}
		out = append(out, rec)
		data = data[stride:]
	}
	return out
}

// FuzzTraceExport asserts the exporter's safety contract over arbitrary
// span records — including unknown kinds, End < Start, negative pids and
// colliding IDs: ExportChrome never panics, never errors on an in-memory
// writer, always emits schema-valid trace-event JSON, and is a pure
// function of the span set (same input bytes, same output bytes).
func FuzzTraceExport(f *testing.F) {
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0}, 44))
	f.Add(bytes.Repeat([]byte{0xff}, 89))
	// One well-formed chain as a seed: a transact span plus a JGR add.
	seed := make([]byte, 88)
	binary.LittleEndian.PutUint64(seed[0:], 0xabc)  // Trace
	binary.LittleEndian.PutUint64(seed[8:], 1)      // ID
	binary.LittleEndian.PutUint32(seed[24:], 1000)  // Start
	binary.LittleEndian.PutUint32(seed[28:], 2000)  // End
	binary.LittleEndian.PutUint32(seed[32:], 10061) // Pid
	seed[40] = byte(SpanTransact)
	binary.LittleEndian.PutUint64(seed[44:], 0xabc)
	binary.LittleEndian.PutUint64(seed[52:], 2)
	binary.LittleEndian.PutUint64(seed[60:], 1) // Parent
	binary.LittleEndian.PutUint32(seed[68:], 1500)
	binary.LittleEndian.PutUint32(seed[72:], 1500)
	binary.LittleEndian.PutUint32(seed[76:], 901)
	seed[84] = byte(SpanJGRAdd)
	f.Add(seed)

	f.Fuzz(func(t *testing.T, data []byte) {
		spans := spansFromBytes(data)
		names := map[int32]string{901: "system_server"}
		var buf bytes.Buffer
		if err := ExportChrome(&buf, spans, names); err != nil {
			t.Fatalf("ExportChrome errored on in-memory writer: %v", err)
		}
		if err := ValidateChrome(buf.Bytes()); err != nil {
			t.Fatalf("export failed schema validation: %v\n%s", err, buf.Bytes())
		}
		var again bytes.Buffer
		if err := ExportChrome(&again, spans, names); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf.Bytes(), again.Bytes()) {
			t.Fatal("export is not deterministic for equal input")
		}
	})
}
