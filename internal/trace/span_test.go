package trace

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func TestMintTraceIDDeterministicAndNonZero(t *testing.T) {
	if got, want := MintTraceID(42, 7), MintTraceID(42, 7); got != want {
		t.Fatalf("MintTraceID not deterministic: %#x vs %#x", got, want)
	}
	if MintTraceID(42, 7) == MintTraceID(42, 8) {
		t.Fatal("adjacent sequence numbers minted the same trace ID")
	}
	if MintTraceID(42, 7) == MintTraceID(43, 7) {
		t.Fatal("different seeds minted the same trace ID")
	}
	// Zero is the untraced sentinel; scan a window of seeds/seqs to make
	// sure the mint never returns it.
	for seed := int64(-4); seed < 4; seed++ {
		for seq := uint64(0); seq < 1000; seq++ {
			if MintTraceID(seed, seq) == 0 {
				t.Fatalf("MintTraceID(%d, %d) = 0", seed, seq)
			}
		}
	}
}

func TestNilRecorderIsInert(t *testing.T) {
	var r *Recorder
	if r.Enabled() {
		t.Fatal("nil recorder reports enabled")
	}
	if r.SampleTx(0) {
		t.Fatal("nil recorder samples transactions")
	}
	r.Reset(9)
	r.SetContext(1, 2, 3)
	r.Emit(SpanRecord{Kind: SpanTransact})
	r.EmitJGR(true, 0, 1, 5)
	tr, sp, uid := r.Context()
	if tr != 0 || sp != 0 || uid != 0 {
		t.Fatalf("nil recorder context = (%d, %d, %d), want zeros", tr, sp, uid)
	}
	if r.Len() != 0 || r.Total() != 0 || r.Dropped() != 0 || r.Spans() != nil {
		t.Fatal("nil recorder holds state")
	}
}

func TestRecorderRingEvictionAndDropped(t *testing.T) {
	r := NewRecorder(4, 0, 1)
	for i := 0; i < 10; i++ {
		r.Emit(SpanRecord{ID: SpanID(i + 1), Kind: SpanTransact, Start: time.Duration(i)})
	}
	if r.Len() != 4 {
		t.Fatalf("Len = %d, want ring capacity 4", r.Len())
	}
	if r.Total() != 10 {
		t.Fatalf("Total = %d, want 10", r.Total())
	}
	if r.Dropped() != 6 {
		t.Fatalf("Dropped = %d, want 6 (no silent caps)", r.Dropped())
	}
	spans := r.Spans()
	if len(spans) != 4 {
		t.Fatalf("Spans returned %d records, want 4", len(spans))
	}
	// Oldest first, and the survivors are the newest four.
	for i, s := range spans {
		if want := SpanID(i + 7); s.ID != want {
			t.Fatalf("spans[%d].ID = %d, want %d (oldest-first window)", i, s.ID, want)
		}
	}
}

func TestRecorderResetRekeysMint(t *testing.T) {
	r := NewRecorder(8, 0, 1)
	r.Emit(SpanRecord{Kind: SpanTransact})
	r.SetContext(5, 6, 7)
	before := r.MintTrace(3)
	r.Reset(2)
	if r.Len() != 0 || r.Total() != 0 || r.Dropped() != 0 {
		t.Fatal("Reset kept span state")
	}
	if tr, sp, uid := r.Context(); tr != 0 || sp != 0 || uid != 0 {
		t.Fatalf("Reset kept context (%d, %d, %d)", tr, sp, uid)
	}
	if after := r.MintTrace(3); after == before {
		t.Fatal("Reset did not re-key the trace-ID mint to the new seed")
	}
	if got, want := r.MintTrace(3), MintTraceID(2, 3); got != want {
		t.Fatalf("post-Reset mint = %#x, want MintTraceID(2, 3) = %#x", got, want)
	}
	if r.NextSpanID() != 1 {
		t.Fatal("Reset did not rewind the span-ID counter")
	}
}

func TestSampleTx(t *testing.T) {
	for _, sample := range []uint64{0, 1} {
		r := NewRecorder(8, sample, 1)
		for seq := uint64(0); seq < 5; seq++ {
			if !r.SampleTx(seq) {
				t.Fatalf("sample=%d: SampleTx(%d) = false, want all traced", sample, seq)
			}
		}
	}
	r := NewRecorder(8, 4, 1)
	for seq := uint64(0); seq < 16; seq++ {
		if got, want := r.SampleTx(seq), seq%4 == 0; got != want {
			t.Fatalf("sample=4: SampleTx(%d) = %v, want %v", seq, got, want)
		}
	}
}

func TestEmitJGRInheritsContext(t *testing.T) {
	r := NewRecorder(8, 0, 1)
	r.SetContext(TraceID(0xabc), SpanID(11), 10061)
	r.EmitJGR(true, 5*time.Millisecond, 901, 1234)
	r.EmitJGR(false, 6*time.Millisecond, 901, 1233)
	spans := r.Spans()
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(spans))
	}
	add, del := spans[0], spans[1]
	if add.Kind != SpanJGRAdd || del.Kind != SpanJGRDel {
		t.Fatalf("kinds = %v, %v", add.Kind, del.Kind)
	}
	if add.Trace != 0xabc || add.Parent != 11 || add.Uid != 10061 {
		t.Fatalf("add span did not inherit context: %+v", add)
	}
	if add.Start != add.End {
		t.Fatal("JGR mutation is not a point span")
	}
	if add.Val != 1234 || del.Val != 1233 {
		t.Fatalf("Val = %d, %d, want table sizes 1234, 1233", add.Val, del.Val)
	}
	if add.ID == del.ID {
		t.Fatal("span IDs not unique")
	}
}

func TestSpanKindStrings(t *testing.T) {
	want := map[SpanKind]string{
		SpanTransact:       "binder.transact",
		SpanDispatch:       "binder.dispatch",
		SpanHandler:        "service.handler",
		SpanJGRAdd:         "jgr.add",
		SpanJGRDel:         "jgr.del",
		SpanDefenderWindow: "defender.window",
		SpanScore:          "defender.score",
		SpanDecision:       "defender.decision",
		SpanKind(99):       "span.unknown",
	}
	for k, name := range want {
		if k.String() != name {
			t.Fatalf("%d.String() = %q, want %q", k, k.String(), name)
		}
	}
}

func TestParseSpanDetailRoundTrip(t *testing.T) {
	in := Span{
		Name:  "defender.window",
		Start: 1500 * time.Millisecond,
		End:   1552300 * time.Microsecond,
		Phases: []Phase{
			{Name: "read", D: 0},
			{Name: "correlate", D: 52300 * time.Microsecond},
			{Name: "score", D: 0},
			{Name: "decide", D: 0},
		},
	}
	j := New(8)
	j.AddSpan(in)
	evs := j.Spans()
	if len(evs) != 1 {
		t.Fatalf("journal holds %d span events, want 1", len(evs))
	}
	out, err := ParseSpanDetail(evs[0])
	if err != nil {
		t.Fatalf("ParseSpanDetail: %v", err)
	}
	if out.Name != in.Name || out.Start != in.Start || out.End != in.End {
		t.Fatalf("round-trip changed the span: got %+v, want %+v", out, in)
	}
	if len(out.Phases) != len(in.Phases) {
		t.Fatalf("round-trip changed phase count: %d vs %d", len(out.Phases), len(in.Phases))
	}
	for i := range in.Phases {
		if out.Phases[i] != in.Phases[i] {
			t.Fatalf("phase %d changed: got %+v, want %+v", i, out.Phases[i], in.Phases[i])
		}
	}
	if out.Duration() != in.Duration() {
		t.Fatalf("Duration = %v, want %v", out.Duration(), in.Duration())
	}
}

func TestParseSpanDetailErrors(t *testing.T) {
	if _, err := ParseSpanDetail(Event{Kind: KindNote, Detail: "dur=1s"}); err == nil {
		t.Fatal("accepted a non-span event")
	}
	if _, err := ParseSpanDetail(Event{Kind: KindSpan, Detail: "dur=1s junk"}); err == nil {
		t.Fatal("accepted a field with no '='")
	}
	if _, err := ParseSpanDetail(Event{Kind: KindSpan, Detail: "dur=notaduration"}); err == nil {
		t.Fatal("accepted an unparsable duration")
	}
	if _, err := ParseSpanDetail(Event{Kind: KindSpan, Detail: "=1s"}); err == nil {
		t.Fatal("accepted an empty key")
	}
	// Empty detail is a zero-extent span, not an error.
	s, err := ParseSpanDetail(Event{T: time.Second, Kind: KindSpan, Subject: "x"})
	if err != nil {
		t.Fatalf("empty detail: %v", err)
	}
	if s.Start != time.Second || s.End != time.Second || len(s.Phases) != 0 {
		t.Fatalf("empty detail parsed as %+v", s)
	}
}

// TestExportOrderTotalUnderEqualTimestamps pins the exporter's
// determinism under identical virtual timestamps: span IDs are unique
// per recorder, so (Start, Kind, ID) is a total order and shuffled
// input yields byte-identical output.
func TestExportOrderTotalUnderEqualTimestamps(t *testing.T) {
	at := 10 * time.Millisecond
	spans := []SpanRecord{
		{Trace: 3, ID: 5, Kind: SpanHandler, Start: at, End: at + time.Millisecond, Pid: 901},
		{Trace: 3, ID: 4, Kind: SpanDispatch, Start: at, End: at, Pid: 901},
		{Trace: 3, ID: 6, Kind: SpanTransact, Start: at, End: at + 2*time.Millisecond, Pid: 10061},
		{Trace: 3, ID: 7, Kind: SpanJGRAdd, Start: at, End: at, Pid: 901, Val: 40},
		{Trace: 3, ID: 8, Kind: SpanJGRAdd, Start: at, End: at, Pid: 901, Val: 41},
	}
	names := map[int32]string{901: "system_server"}

	var want bytes.Buffer
	if err := ExportChrome(&want, spans, names); err != nil {
		t.Fatal(err)
	}
	// Every rotation of the input must export the same bytes.
	for rot := 1; rot < len(spans); rot++ {
		shuffled := append(append([]SpanRecord(nil), spans[rot:]...), spans[:rot]...)
		var got bytes.Buffer
		if err := ExportChrome(&got, shuffled, names); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got.Bytes(), want.Bytes()) {
			t.Fatalf("rotation %d changed the export", rot)
		}
	}
	if err := ValidateChrome(want.Bytes()); err != nil {
		t.Fatal(err)
	}
	// binder.transact sorts before binder.dispatch at the same timestamp
	// (kind order mirrors causal order: the transaction encloses its
	// dispatch), and the two same-kind JGR adds break the tie on span ID.
	out := want.String()
	if ti, di := strings.Index(out, "binder.transact"), strings.Index(out, "binder.dispatch"); ti < 0 || di < 0 || ti > di {
		t.Fatalf("kind tie-break violated: transact at %d, dispatch at %d", ti, di)
	}
	if i40, i41 := strings.Index(out, `"refs":40`), strings.Index(out, `"refs":41`); i40 < 0 || i41 < 0 || i40 > i41 {
		t.Fatalf("ID tie-break violated: refs=40 at %d, refs=41 at %d", i40, i41)
	}
}

func TestExportChromeShape(t *testing.T) {
	spans := []SpanRecord{
		{Trace: 1, ID: 1, Kind: SpanTransact, Start: time.Millisecond, End: 3 * time.Millisecond, Pid: 10061, Uid: 10061, Code: 2, Val: 64},
		{Trace: 1, ID: 2, Parent: 1, Kind: SpanJGRAdd, Start: 2 * time.Millisecond, End: 2 * time.Millisecond, Pid: 901, Uid: 10061, Val: 17},
		{Trace: 0, ID: 3, Kind: SpanJGRDel, Start: 4 * time.Millisecond, End: 4 * time.Millisecond, Pid: 901, Val: 16},
		// Defender span with End < Start: the exporter clamps the
		// duration to zero rather than emitting an invalid event.
		{Trace: 1, ID: 4, Kind: SpanDefenderWindow, Start: 5 * time.Millisecond, End: 4 * time.Millisecond, Pid: 901},
	}
	var buf bytes.Buffer
	if err := ExportChrome(&buf, spans, map[int32]string{901: "system_server"}); err != nil {
		t.Fatal(err)
	}
	if err := ValidateChrome(buf.Bytes()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	// Named and unnamed process metadata tracks.
	if !strings.Contains(out, `"name":"system_server"`) {
		t.Fatal("missing named process track")
	}
	if !strings.Contains(out, `"name":"pid10061"`) {
		t.Fatal("missing placeholder name for unnamed pid")
	}
	// The traced JGR add yields both a counter sample and an instant; the
	// untraced del yields only the counter.
	if got := strings.Count(out, `"ph":"C"`); got != 2 {
		t.Fatalf("%d counter events, want 2", got)
	}
	if got := strings.Count(out, `"ph":"i"`); got != 1 {
		t.Fatalf("%d instant events, want 1 (untraced mutations emit none)", got)
	}
	if !strings.Contains(out, `"dur":0`) {
		t.Fatal("negative duration was not clamped to zero")
	}
	if !strings.Contains(out, `"trace":"0x`) {
		t.Fatal("missing hex trace ID in args")
	}
}

func TestExportChromeEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := ExportChrome(&buf, nil, nil); err != nil {
		t.Fatal(err)
	}
	if err := ValidateChrome(buf.Bytes()); err != nil {
		t.Fatal(err)
	}
}

func TestValidateChromeRejects(t *testing.T) {
	for _, bad := range []string{
		`not json`,
		`{}`,
		`{"traceEvents":[{"ph":"Z","pid":1,"name":"x","ts":0}]}`,
		`{"traceEvents":[{"ph":"X","name":"x","ts":0,"dur":1}]}`,
		`{"traceEvents":[{"ph":"X","pid":1,"ts":0,"dur":1}]}`,
		`{"traceEvents":[{"ph":"X","pid":1,"name":"x","dur":1}]}`,
		`{"traceEvents":[{"ph":"X","pid":1,"name":"x","ts":0,"dur":-1}]}`,
		`{"traceEvents":[{"ph":"X","pid":1,"name":"x","ts":0}]}`,
	} {
		if err := ValidateChrome([]byte(bad)); err == nil {
			t.Fatalf("ValidateChrome accepted %q", bad)
		}
	}
}
