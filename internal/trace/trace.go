// Package trace provides a bounded, virtual-time-stamped event journal
// for the device simulation: process lifecycle, LMK evictions, soft
// reboots and defender engagements land here, giving examples and
// post-mortem tooling a forensic timeline (the `logcat` of the
// simulator).
package trace

import (
	"fmt"
	"io"
	"time"
)

// Kind classifies journal events.
type Kind int

// Event kinds.
const (
	KindSpawn Kind = iota + 1
	KindKill
	KindLMK
	KindReboot
	KindDetection
	KindNote
	// KindSpan marks a structured operation span — a named interval of
	// virtual time with per-phase breakdowns (the defender's poll windows
	// record read/correlate/score/decide phases this way).
	KindSpan
)

// String returns the logcat-style tag.
func (k Kind) String() string {
	switch k {
	case KindSpawn:
		return "SPAWN"
	case KindKill:
		return "KILL"
	case KindLMK:
		return "LMK"
	case KindReboot:
		return "REBOOT"
	case KindDetection:
		return "JGRE"
	case KindNote:
		return "NOTE"
	case KindSpan:
		return "SPAN"
	default:
		return fmt.Sprintf("KIND(%d)", int(k))
	}
}

// Event is one journal entry.
type Event struct {
	T       time.Duration
	Kind    Kind
	Subject string // process/package/service concerned
	Detail  string
}

// String renders one logcat-style line.
func (e Event) String() string {
	return fmt.Sprintf("%10.3f %-6s %-28s %s", e.T.Seconds(), e.Kind, e.Subject, e.Detail)
}

// DefaultCapacity bounds the journal; older events are dropped first.
const DefaultCapacity = 4096

// Journal is a bounded event ring. The zero value is not usable; create
// with New.
type Journal struct {
	cap    int
	events []Event
	// dropped counts events discarded to honour the capacity.
	dropped int
}

// New creates a journal holding up to capacity events (0 selects
// DefaultCapacity).
func New(capacity int) *Journal {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Journal{cap: capacity}
}

// Reset empties the journal in place, keeping its event storage — the
// fleet slot recycle path rewinds a retired device's journal instead of
// allocating a fresh one per trial.
func (j *Journal) Reset() {
	j.events = j.events[:0]
	j.dropped = 0
}

// Record appends an event, evicting the oldest entry when full.
func (j *Journal) Record(ev Event) {
	if len(j.events) == j.cap {
		copy(j.events, j.events[1:])
		j.events = j.events[:j.cap-1]
		j.dropped++
	}
	j.events = append(j.events, ev)
}

// Add is Record with the fields spelled out.
func (j *Journal) Add(t time.Duration, kind Kind, subject, detail string) {
	j.Record(Event{T: t, Kind: kind, Subject: subject, Detail: detail})
}

// Phase is one named sub-interval of a Span. Durations are virtual
// time; a phase that advanced no virtual time honestly measures zero.
type Phase struct {
	Name string
	D    time.Duration
}

// Span is a named virtual-time interval with an ordered phase
// breakdown. The defender's poll windows are the canonical producer:
// one span per engagement, phases read/correlate/score/decide.
type Span struct {
	Name   string
	Start  time.Duration
	End    time.Duration
	Phases []Phase
}

// Duration returns the span's total virtual-time extent.
func (s Span) Duration() time.Duration { return s.End - s.Start }

// Detail renders the span's timing breakdown as the event detail line:
// "dur=52.3ms read=0s correlate=52.3ms score=0s decide=0s".
func (s Span) Detail() string {
	out := fmt.Sprintf("dur=%v", s.Duration())
	for _, p := range s.Phases {
		out += fmt.Sprintf(" %s=%v", p.Name, p.D)
	}
	return out
}

// AddSpan journals a completed span as a KindSpan event stamped at the
// span's start time, with the phase breakdown in the detail line.
func (j *Journal) AddSpan(s Span) {
	j.Record(Event{T: s.Start, Kind: KindSpan, Subject: s.Name, Detail: s.Detail()})
}

// ParseSpanDetail reconstructs a Span from a KindSpan journal event —
// the inverse of AddSpan's Detail encoding. The event's timestamp is the
// span's start; "dur=" fixes the extent; the remaining key=value pairs
// become the ordered phase breakdown.
func ParseSpanDetail(ev Event) (Span, error) {
	if ev.Kind != KindSpan {
		return Span{}, fmt.Errorf("trace: ParseSpanDetail on %s event", ev.Kind)
	}
	s := Span{Name: ev.Subject, Start: ev.T, End: ev.T}
	rest := ev.Detail
	for rest != "" {
		field := rest
		if i := indexByte(rest, ' '); i >= 0 {
			field, rest = rest[:i], rest[i+1:]
		} else {
			rest = ""
		}
		if field == "" {
			continue
		}
		eq := indexByte(field, '=')
		if eq <= 0 {
			return Span{}, fmt.Errorf("trace: malformed span field %q", field)
		}
		key, val := field[:eq], field[eq+1:]
		d, err := time.ParseDuration(val)
		if err != nil {
			return Span{}, fmt.Errorf("trace: span field %q: %w", field, err)
		}
		if key == "dur" {
			s.End = s.Start + d
			continue
		}
		s.Phases = append(s.Phases, Phase{Name: key, D: d})
	}
	return s, nil
}

// indexByte avoids importing strings for two single-byte scans.
func indexByte(s string, b byte) int {
	for i := 0; i < len(s); i++ {
		if s[i] == b {
			return i
		}
	}
	return -1
}

// Spans returns the journal's span events (in order); a convenience
// over Filter(KindSpan) for trace consumers.
func (j *Journal) Spans() []Event { return j.Filter(KindSpan) }

// Len returns the current event count.
func (j *Journal) Len() int { return len(j.events) }

// Dropped returns how many events capacity eviction discarded.
func (j *Journal) Dropped() int { return j.dropped }

// Events returns a copy of the journal in order.
func (j *Journal) Events() []Event {
	out := make([]Event, len(j.events))
	copy(out, j.events)
	return out
}

// Filter returns the events of one kind, in order.
func (j *Journal) Filter(kind Kind) []Event {
	var out []Event
	for _, e := range j.events {
		if e.Kind == kind {
			out = append(out, e)
		}
	}
	return out
}

// Since returns the events at or after t.
func (j *Journal) Since(t time.Duration) []Event {
	var out []Event
	for _, e := range j.events {
		if e.T >= t {
			out = append(out, e)
		}
	}
	return out
}

// Dump writes the journal (optionally only the last n events; n <= 0
// writes everything).
func (j *Journal) Dump(w io.Writer, n int) {
	evs := j.events
	if n > 0 && len(evs) > n {
		evs = evs[len(evs)-n:]
	}
	if j.dropped > 0 {
		fmt.Fprintf(w, "(%d older events dropped)\n", j.dropped)
	}
	for _, e := range evs {
		fmt.Fprintln(w, e)
	}
}
