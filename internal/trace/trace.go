// Package trace provides a bounded, virtual-time-stamped event journal
// for the device simulation: process lifecycle, LMK evictions, soft
// reboots and defender engagements land here, giving examples and
// post-mortem tooling a forensic timeline (the `logcat` of the
// simulator).
package trace

import (
	"fmt"
	"io"
	"time"
)

// Kind classifies journal events.
type Kind int

// Event kinds.
const (
	KindSpawn Kind = iota + 1
	KindKill
	KindLMK
	KindReboot
	KindDetection
	KindNote
)

// String returns the logcat-style tag.
func (k Kind) String() string {
	switch k {
	case KindSpawn:
		return "SPAWN"
	case KindKill:
		return "KILL"
	case KindLMK:
		return "LMK"
	case KindReboot:
		return "REBOOT"
	case KindDetection:
		return "JGRE"
	case KindNote:
		return "NOTE"
	default:
		return fmt.Sprintf("KIND(%d)", int(k))
	}
}

// Event is one journal entry.
type Event struct {
	T       time.Duration
	Kind    Kind
	Subject string // process/package/service concerned
	Detail  string
}

// String renders one logcat-style line.
func (e Event) String() string {
	return fmt.Sprintf("%10.3f %-6s %-28s %s", e.T.Seconds(), e.Kind, e.Subject, e.Detail)
}

// DefaultCapacity bounds the journal; older events are dropped first.
const DefaultCapacity = 4096

// Journal is a bounded event ring. The zero value is not usable; create
// with New.
type Journal struct {
	cap    int
	events []Event
	// dropped counts events discarded to honour the capacity.
	dropped int
}

// New creates a journal holding up to capacity events (0 selects
// DefaultCapacity).
func New(capacity int) *Journal {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Journal{cap: capacity}
}

// Record appends an event, evicting the oldest entry when full.
func (j *Journal) Record(ev Event) {
	if len(j.events) == j.cap {
		copy(j.events, j.events[1:])
		j.events = j.events[:j.cap-1]
		j.dropped++
	}
	j.events = append(j.events, ev)
}

// Add is Record with the fields spelled out.
func (j *Journal) Add(t time.Duration, kind Kind, subject, detail string) {
	j.Record(Event{T: t, Kind: kind, Subject: subject, Detail: detail})
}

// Len returns the current event count.
func (j *Journal) Len() int { return len(j.events) }

// Dropped returns how many events capacity eviction discarded.
func (j *Journal) Dropped() int { return j.dropped }

// Events returns a copy of the journal in order.
func (j *Journal) Events() []Event {
	out := make([]Event, len(j.events))
	copy(out, j.events)
	return out
}

// Filter returns the events of one kind, in order.
func (j *Journal) Filter(kind Kind) []Event {
	var out []Event
	for _, e := range j.events {
		if e.Kind == kind {
			out = append(out, e)
		}
	}
	return out
}

// Since returns the events at or after t.
func (j *Journal) Since(t time.Duration) []Event {
	var out []Event
	for _, e := range j.events {
		if e.T >= t {
			out = append(out, e)
		}
	}
	return out
}

// Dump writes the journal (optionally only the last n events; n <= 0
// writes everything).
func (j *Journal) Dump(w io.Writer, n int) {
	evs := j.events
	if n > 0 && len(evs) > n {
		evs = evs[len(evs)-n:]
	}
	if j.dropped > 0 {
		fmt.Fprintf(w, "(%d older events dropped)\n", j.dropped)
	}
	for _, e := range evs {
		fmt.Fprintln(w, e)
	}
}
