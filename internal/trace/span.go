// Causal transaction tracing: deterministic trace/span identifiers and
// the bounded per-device flight recorder that stores them. A trace links
// one binder transaction to everything it caused — driver dispatch, the
// service handler, every JGR table mutation made on its behalf, and the
// defender window/score/decision chain it may have tripped — as a tree
// of virtual-time spans.
//
// Determinism contract: trace IDs are minted from (device seed,
// transaction sequence) with a splitmix64 finalizer and span IDs from a
// per-recorder counter; neither ever consults wall-clock time, so a
// device's span stream is a pure function of its boot config and seed —
// byte-identical across worker counts and fleet slot modes.
package trace

import "time"

// TraceID identifies one causal chain (one traced binder transaction and
// everything it caused). Zero means "not part of a sampled trace".
type TraceID uint64

// SpanID identifies one span within a recorder's stream. Zero means "no
// parent" (a root span).
type SpanID uint64

// MintTraceID derives the trace ID for the transaction with sequence
// number seq on a device booted with seed — a splitmix64 finalizer over
// the pair, never wall-clock, so equal (seed, seq) always yields the
// same ID. The result is never zero (zero is the "untraced" sentinel).
func MintTraceID(seed int64, seq uint64) TraceID {
	x := uint64(seed) ^ (seq+1)*0x9E3779B97F4A7C15
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	if x == 0 {
		x = 1
	}
	return TraceID(x)
}

// SpanKind classifies flight-recorder spans along the causal chain.
type SpanKind uint8

// Span kinds, in causal order along one chain.
const (
	// SpanTransact covers one cross-process binder transaction end to
	// end (sender side: latency + log + dispatch + handler).
	SpanTransact SpanKind = iota + 1
	// SpanDispatch covers the driver's share of a transaction: latency
	// charge, IPC log write, node pinning — everything before the
	// handler runs.
	SpanDispatch
	// SpanHandler covers the service handler's execution inside its JNI
	// local frame.
	SpanHandler
	// SpanJGRAdd / SpanJGRDel are point spans (Start == End) marking one
	// global-reference table mutation; Val carries the table size after
	// the operation, which is what the exporter's occupancy counter
	// track reads.
	SpanJGRAdd
	SpanJGRDel
	// SpanDefenderWindow covers a defender engagement's poll window
	// (evidence read + correlation); SpanScore the Algorithm-1 scoring
	// phase; SpanDecision the kill/engage decision and recovery loop.
	SpanDefenderWindow
	SpanScore
	SpanDecision
)

// String names the kind as the exporter's slice title.
func (k SpanKind) String() string {
	switch k {
	case SpanTransact:
		return "binder.transact"
	case SpanDispatch:
		return "binder.dispatch"
	case SpanHandler:
		return "service.handler"
	case SpanJGRAdd:
		return "jgr.add"
	case SpanJGRDel:
		return "jgr.del"
	case SpanDefenderWindow:
		return "defender.window"
	case SpanScore:
		return "defender.score"
	case SpanDecision:
		return "defender.decision"
	default:
		return "span.unknown"
	}
}

// SpanRecord is one fixed-size flight-recorder entry. All fields are
// scalars so the recorder ring stores values, never pointers — emitting
// a span allocates nothing.
type SpanRecord struct {
	Trace  TraceID
	ID     SpanID
	Parent SpanID
	// Start/End are virtual time; point spans have Start == End.
	Start time.Duration
	End   time.Duration
	// Pid is the process the span executed in (the victim service for
	// handler/JGR spans, the sender for transact spans); Uid is the
	// originating app uid carried along the chain for attribution.
	Pid int32
	Uid int32
	// Kind classifies the span; Code carries the transaction code for
	// binder spans; Val is kind-dependent (payload bytes for transact,
	// JGR table size after the op for JGR spans, top score / kill count
	// for defender spans).
	Kind SpanKind
	Code uint32
	Val  int64
}

// DefaultSpanCapacity bounds a flight recorder; oldest spans are
// overwritten first. At 56 bytes per record this is ~460 KiB per traced
// device — the documented memory bound (DESIGN.md §15).
const DefaultSpanCapacity = 8192

// Config is the comparable tracing knob a device boots with. The zero
// value (tracing off) is the default: no recorder is built, the hot path
// pays one nil check, and scenario envelopes are untouched.
type Config struct {
	// Enabled turns the flight recorder on.
	Enabled bool
	// Capacity bounds the span ring (0 selects DefaultSpanCapacity).
	Capacity int
	// Sample keeps one in every Sample transactions as a full causal
	// trace (0 or 1 traces all). JGR occupancy and defender spans are
	// always recorded; sampling only thins the per-transaction chains.
	Sample uint64
}

// Recorder is the per-device flight recorder: a bounded ring of span
// records plus the current causal context (which trace the device is
// executing right now). It is single-goroutine like the device it
// belongs to. A nil *Recorder is valid and inert — every method
// nil-checks, which is how tracing-off devices pay only a branch.
type Recorder struct {
	seed   int64
	sample uint64
	buf    []SpanRecord
	// start/n are the ring window: buf[start..start+n) modulo len(buf)
	// holds the retained spans, oldest first.
	start int
	n     int
	// total counts spans ever emitted; total - n is the dropped count
	// ("no silent caps": eviction is always accounted).
	total uint64
	// spanSeq mints span IDs; it survives ring eviction so IDs stay
	// unique per device lifetime.
	spanSeq uint64

	ctxTrace TraceID
	ctxSpan  SpanID
	ctxUid   int32
}

// NewRecorder builds a flight recorder for a device booted with seed.
// capacity <= 0 selects DefaultSpanCapacity; sample as in Config.Sample.
func NewRecorder(capacity int, sample uint64, seed int64) *Recorder {
	if capacity <= 0 {
		capacity = DefaultSpanCapacity
	}
	return &Recorder{seed: seed, sample: sample, buf: make([]SpanRecord, capacity)}
}

// Enabled reports whether spans are being recorded; safe on nil.
func (r *Recorder) Enabled() bool { return r != nil }

// Reset rewinds the recorder for a recycled device slot, keeping the
// ring storage and re-keying the trace-ID mint to the new trial's seed.
func (r *Recorder) Reset(seed int64) {
	if r == nil {
		return
	}
	r.seed = seed
	r.start, r.n, r.total, r.spanSeq = 0, 0, 0, 0
	r.ctxTrace, r.ctxSpan, r.ctxUid = 0, 0, 0
}

// SampleTx reports whether the transaction with sequence seq is traced
// under the sampling knob.
func (r *Recorder) SampleTx(seq uint64) bool {
	if r == nil {
		return false
	}
	return r.sample <= 1 || seq%r.sample == 0
}

// MintTrace mints the trace ID for transaction sequence seq.
func (r *Recorder) MintTrace(seq uint64) TraceID { return MintTraceID(r.seed, seq) }

// NextSpanID mints the next span ID.
func (r *Recorder) NextSpanID() SpanID {
	r.spanSeq++
	return SpanID(r.spanSeq)
}

// SetContext installs the causal context subsequent JGR and defender
// spans attach to: the active trace, the span acting as their parent,
// and the originating uid.
func (r *Recorder) SetContext(t TraceID, parent SpanID, uid int32) {
	if r == nil {
		return
	}
	r.ctxTrace, r.ctxSpan, r.ctxUid = t, parent, uid
}

// Context returns the current causal context (zeros outside any traced
// transaction).
func (r *Recorder) Context() (TraceID, SpanID, int32) {
	if r == nil {
		return 0, 0, 0
	}
	return r.ctxTrace, r.ctxSpan, r.ctxUid
}

// Emit stores one span record, overwriting the oldest when the ring is
// full. Zero-alloc: the record is copied by value into preallocated
// storage.
func (r *Recorder) Emit(rec SpanRecord) {
	if r == nil {
		return
	}
	r.total++
	if r.n < len(r.buf) {
		r.buf[(r.start+r.n)%len(r.buf)] = rec
		r.n++
		return
	}
	r.buf[r.start] = rec
	r.start = (r.start + 1) % len(r.buf)
}

// EmitJGR records a global-reference table mutation as a point span in
// the current causal context. count is the table size after the op.
func (r *Recorder) EmitJGR(add bool, t time.Duration, pid int32, count int) {
	if r == nil {
		return
	}
	k := SpanJGRDel
	if add {
		k = SpanJGRAdd
	}
	r.spanSeq++
	r.Emit(SpanRecord{
		Trace: r.ctxTrace, ID: SpanID(r.spanSeq), Parent: r.ctxSpan,
		Kind: k, Start: t, End: t, Pid: pid, Uid: r.ctxUid, Val: int64(count),
	})
}

// Len returns how many spans the ring currently holds.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	return r.n
}

// Total returns how many spans were ever emitted.
func (r *Recorder) Total() uint64 {
	if r == nil {
		return 0
	}
	return r.total
}

// Dropped returns how many spans ring eviction discarded — the "no
// silent caps" counter device.Stats and the fleet rollup surface.
func (r *Recorder) Dropped() uint64 {
	if r == nil {
		return 0
	}
	return r.total - uint64(r.n)
}

// Spans returns a copy of the retained spans, oldest first.
func (r *Recorder) Spans() []SpanRecord {
	if r == nil || r.n == 0 {
		return nil
	}
	out := make([]SpanRecord, r.n)
	head := len(r.buf) - r.start
	if r.n <= head {
		copy(out, r.buf[r.start:r.start+r.n])
	} else {
		copy(out, r.buf[r.start:])
		copy(out[head:], r.buf[:r.n-head])
	}
	return out
}
