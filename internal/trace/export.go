// Chrome trace-event JSON export for flight-recorder spans. The output
// loads in Perfetto (ui.perfetto.dev) and chrome://tracing: one track
// per process, binder transact/dispatch/handler chains and defender poll
// windows as nested slices, JGR table occupancy as a counter track, and
// JGR mutations belonging to a sampled trace as instant markers.
//
// Export is deterministic: spans are ordered by (Start, Kind, ID, Trace,
// Pid) — a total order even under identical virtual timestamps, because
// span IDs are unique per recorder — and every event is rendered through
// encoding/json with fixed field order. Equal span sets yield equal
// bytes, which is what the cross-worker/slot-mode byte-identity suite
// asserts.
package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"
)

// Exporter thread IDs: binder activity and defender activity get their
// own named track per process so their slices nest among themselves.
const (
	tidBinder   = 1
	tidDefender = 2
)

type chromeEvent struct {
	Ph   string     `json:"ph"`
	Pid  int64      `json:"pid"`
	Tid  int64      `json:"tid,omitempty"`
	Ts   float64    `json:"ts"`
	Dur  *float64   `json:"dur,omitempty"`
	Name string     `json:"name"`
	S    string     `json:"s,omitempty"`
	Args chromeArgs `json:"args,omitempty"`
}

type chromeArgs struct {
	Name   string `json:"name,omitempty"`
	Trace  string `json:"trace,omitempty"`
	Span   uint64 `json:"span,omitempty"`
	Parent uint64 `json:"parent,omitempty"`
	Uid    int32  `json:"uid,omitempty"`
	Code   uint32 `json:"code,omitempty"`
	Val    *int64 `json:"val,omitempty"`
	Refs   *int64 `json:"refs,omitempty"`
}

// micros renders virtual time as trace-event microseconds.
func micros(d time.Duration) float64 { return float64(d) / float64(time.Microsecond) }

// exportOrder is the deterministic total order: virtual start time
// first, then kind, then the unique span ID as the final tie-break.
func exportOrder(a, b SpanRecord) bool {
	if a.Start != b.Start {
		return a.Start < b.Start
	}
	if a.Kind != b.Kind {
		return a.Kind < b.Kind
	}
	if a.ID != b.ID {
		return a.ID < b.ID
	}
	if a.Trace != b.Trace {
		return a.Trace < b.Trace
	}
	return a.Pid < b.Pid
}

// ExportChrome writes the spans as Chrome trace-event JSON. procNames
// maps pids to display names for the per-process tracks; unnamed pids
// render as "pid<N>". spans may be in any order and are not mutated.
func ExportChrome(w io.Writer, spans []SpanRecord, procNames map[int32]string) error {
	sorted := make([]SpanRecord, len(spans))
	copy(sorted, spans)
	sort.Slice(sorted, func(i, j int) bool { return exportOrder(sorted[i], sorted[j]) })

	// Process metadata tracks: every pid seen in a span or named by the
	// caller, in ascending pid order.
	pids := make(map[int32]bool, len(procNames))
	for _, s := range sorted {
		pids[s.Pid] = true
	}
	for pid := range procNames {
		pids[pid] = true
	}
	order := make([]int32, 0, len(pids))
	for pid := range pids {
		order = append(order, pid)
	}
	sort.Slice(order, func(i, j int) bool { return order[i] < order[j] })

	var events []chromeEvent
	for _, pid := range order {
		name := procNames[pid]
		if name == "" {
			name = fmt.Sprintf("pid%d", pid)
		}
		events = append(events,
			chromeEvent{Ph: "M", Pid: int64(pid), Name: "process_name", Args: chromeArgs{Name: name}},
			chromeEvent{Ph: "M", Pid: int64(pid), Tid: tidBinder, Name: "thread_name", Args: chromeArgs{Name: "binder"}},
			chromeEvent{Ph: "M", Pid: int64(pid), Tid: tidDefender, Name: "thread_name", Args: chromeArgs{Name: "defender"}},
		)
	}

	for _, s := range sorted {
		args := chromeArgs{
			Span:   uint64(s.ID),
			Parent: uint64(s.Parent),
			Uid:    s.Uid,
			Code:   s.Code,
		}
		if s.Trace != 0 {
			args.Trace = fmt.Sprintf("%#016x", uint64(s.Trace))
		}
		ts := micros(s.Start)
		switch s.Kind {
		case SpanJGRAdd, SpanJGRDel:
			// Occupancy counter track (one per process), plus an instant
			// marker on the binder track when the mutation belongs to a
			// sampled causal chain.
			refs := s.Val
			events = append(events, chromeEvent{
				Ph: "C", Pid: int64(s.Pid), Ts: ts, Name: "jgr_occupancy",
				Args: chromeArgs{Refs: &refs},
			})
			if s.Trace != 0 {
				val := s.Val
				args.Val = &val
				events = append(events, chromeEvent{
					Ph: "i", Pid: int64(s.Pid), Tid: tidBinder, Ts: ts,
					Name: s.Kind.String(), S: "t", Args: args,
				})
			}
		default:
			dur := micros(s.End - s.Start)
			if dur < 0 {
				dur = 0
			}
			tid := int64(tidBinder)
			switch s.Kind {
			case SpanDefenderWindow, SpanScore, SpanDecision:
				tid = tidDefender
			}
			val := s.Val
			args.Val = &val
			events = append(events, chromeEvent{
				Ph: "X", Pid: int64(s.Pid), Tid: tid, Ts: ts, Dur: &dur,
				Name: s.Kind.String(), Args: args,
			})
		}
	}

	if _, err := io.WriteString(w, "{\"traceEvents\":[\n"); err != nil {
		return err
	}
	for i, ev := range events {
		b, err := json.Marshal(ev)
		if err != nil {
			return err
		}
		if i > 0 {
			if _, err := io.WriteString(w, ",\n"); err != nil {
				return err
			}
		}
		if _, err := w.Write(b); err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, "\n]}\n")
	return err
}

// ValidateChrome checks that b is well-formed trace-event JSON: a
// traceEvents array whose members all carry a known phase, a pid, a
// numeric timestamp and a name, with non-negative durations on complete
// events. The fuzz harness and the golden-trace test both gate on it.
func ValidateChrome(b []byte) error {
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(b, &doc); err != nil {
		return fmt.Errorf("trace: export is not valid JSON: %w", err)
	}
	if doc.TraceEvents == nil {
		return fmt.Errorf("trace: export has no traceEvents array")
	}
	for i, ev := range doc.TraceEvents {
		ph, _ := ev["ph"].(string)
		switch ph {
		case "M", "X", "C", "i":
		default:
			return fmt.Errorf("trace: event %d has unknown phase %q", i, ph)
		}
		if _, ok := ev["pid"].(float64); !ok {
			return fmt.Errorf("trace: event %d has no pid", i)
		}
		if name, _ := ev["name"].(string); name == "" {
			return fmt.Errorf("trace: event %d has no name", i)
		}
		if ph == "M" {
			continue
		}
		if _, ok := ev["ts"].(float64); !ok {
			return fmt.Errorf("trace: event %d has no timestamp", i)
		}
		if ph == "X" {
			dur, ok := ev["dur"].(float64)
			if !ok || dur < 0 {
				return fmt.Errorf("trace: complete event %d has bad duration", i)
			}
		}
	}
	return nil
}
