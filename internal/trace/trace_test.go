package trace

import (
	"strings"
	"testing"
	"time"
)

func TestRecordAndAccessors(t *testing.T) {
	j := New(0)
	j.Add(time.Second, KindSpawn, "system_server", "boot")
	j.Add(2*time.Second, KindKill, "com.evil.app", "jgre-defender")
	j.Add(3*time.Second, KindReboot, "system_server", "runtime abort")
	if j.Len() != 3 {
		t.Fatalf("Len = %d", j.Len())
	}
	if got := j.Filter(KindKill); len(got) != 1 || got[0].Subject != "com.evil.app" {
		t.Fatalf("Filter = %v", got)
	}
	if got := j.Since(2 * time.Second); len(got) != 2 {
		t.Fatalf("Since = %v", got)
	}
	evs := j.Events()
	evs[0].Subject = "mutated"
	if j.Events()[0].Subject != "system_server" {
		t.Fatal("Events leaked internal storage")
	}
}

func TestCapacityEviction(t *testing.T) {
	j := New(3)
	for i := 0; i < 5; i++ {
		j.Add(time.Duration(i)*time.Second, KindNote, "s", "d")
	}
	if j.Len() != 3 || j.Dropped() != 2 {
		t.Fatalf("Len = %d, Dropped = %d", j.Len(), j.Dropped())
	}
	if got := j.Events()[0].T; got != 2*time.Second {
		t.Fatalf("oldest retained = %v, want 2s", got)
	}
}

func TestDump(t *testing.T) {
	j := New(2)
	j.Add(time.Second, KindLMK, "com.bg.app", "evicted")
	j.Add(2*time.Second, KindDetection, "system_server", "killed [com.evil.app]")
	j.Add(3*time.Second, KindNote, "x", "y")
	var sb strings.Builder
	j.Dump(&sb, 0)
	out := sb.String()
	if !strings.Contains(out, "(1 older events dropped)") {
		t.Errorf("dropped marker missing:\n%s", out)
	}
	if !strings.Contains(out, "JGRE") || !strings.Contains(out, "NOTE") {
		t.Errorf("tags missing:\n%s", out)
	}
	var tail strings.Builder
	j.Dump(&tail, 1)
	if strings.Contains(tail.String(), "JGRE") {
		t.Error("Dump(1) printed more than the last event")
	}
}

func TestKindStrings(t *testing.T) {
	for k, want := range map[Kind]string{
		KindSpawn: "SPAWN", KindKill: "KILL", KindLMK: "LMK",
		KindReboot: "REBOOT", KindDetection: "JGRE", KindNote: "NOTE",
		Kind(42): "KIND(42)",
	} {
		if got := k.String(); got != want {
			t.Errorf("%d = %q, want %q", int(k), got, want)
		}
	}
}
