package workload

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/art"
	"repro/internal/catalog"
	"repro/internal/device"
)

func bootDev(t *testing.T, cfg device.Config) *device.Device {
	t.Helper()
	d, err := device.Boot(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestAttackerPacingMatchesCatalog(t *testing.T) {
	dev := bootDev(t, device.Config{Seed: 1})
	evil, _ := dev.Apps().Install("com.evil.app")
	atk, err := NewAttacker(dev, evil, "audio.startWatchingRoutes")
	if err != nil {
		t.Fatal(err)
	}
	iface := atk.Target()

	// Run 1,000 calls and extrapolate to full exhaustion: the projected
	// duration must land near the catalogued AttackSeconds.
	start := dev.Clock().Now()
	for i := 0; i < 1000; i++ {
		if atk.Due() > dev.Clock().Now() {
			dev.Clock().Set(atk.Due())
		}
		if err := atk.Step(); err != nil {
			t.Fatal(err)
		}
	}
	elapsed := dev.Clock().Now() - start
	callsNeeded := (catalog.JGRThreshold - typicalBaseline) / refsPerCall
	projected := elapsed / 1000 * time.Duration(callsNeeded)
	want := time.Duration(iface.Cost.AttackSeconds) * time.Second
	if projected < want*7/10 || projected > want*13/10 {
		t.Fatalf("projected attack duration %v, want ≈%v", projected, want)
	}
}

func TestAttackerGrantsObtainablePermission(t *testing.T) {
	dev := bootDev(t, device.Config{Seed: 1})
	evil, _ := dev.Apps().Install("com.evil.app")
	atk, err := NewAttacker(dev, evil, "telephony.registry.listenForSubscriber")
	if err != nil {
		t.Fatal(err)
	}
	if err := atk.Step(); err != nil {
		t.Fatalf("granted attacker failed: %v", err)
	}
	if !dev.Permissions().Check(evil.Uid(), "READ_PHONE_STATE") {
		t.Fatal("dangerous permission not granted at attacker setup")
	}
}

func TestAttackerUnknownInterface(t *testing.T) {
	dev := bootDev(t, device.Config{Seed: 1})
	evil, _ := dev.Apps().Install("com.evil.app")
	if _, err := NewAttacker(dev, evil, "nope.nothing"); err == nil {
		t.Fatal("unknown interface accepted")
	}
}

func TestAttackerExhaustsSmallDevice(t *testing.T) {
	dev := bootDev(t, device.Config{Seed: 1, ServerVM: art.Config{MaxGlobalRefs: 2400}})
	evil, _ := dev.Apps().Install("com.evil.app")
	atk, err := NewAttacker(dev, evil, "clipboard.addPrimaryClipChangedListener")
	if err != nil {
		t.Fatal(err)
	}
	sched := NewScheduler(dev)
	sched.Add(atk)
	sched.Run(func() bool { return dev.SoftReboots() > 0 }, 100000)
	if dev.SoftReboots() != 1 {
		t.Fatal("attack did not reboot the small device")
	}
	if atk.Calls() == 0 {
		t.Fatal("attacker made no calls")
	}
}

func TestEnqueueToastAttackerSpoofs(t *testing.T) {
	dev := bootDev(t, device.Config{Seed: 1})
	evil, _ := dev.Apps().Install("com.evil.app")
	atk, err := NewAttacker(dev, evil, "notification.enqueueToast")
	if err != nil {
		t.Fatal(err)
	}
	spec := atk.Target()
	// Push well past the per-package quota: the spoof keeps succeeding.
	for i := 0; i < 3*spec.GuardLimit; i++ {
		if err := atk.Step(); err != nil {
			t.Fatalf("spoofed toast %d failed: %v", i, err)
		}
	}
	if got := dev.Service("notification").EntryCount("enqueueToast"); got != 3*spec.GuardLimit {
		t.Fatalf("toast entries = %d, want %d", got, 3*spec.GuardLimit)
	}
}

func TestBenignAppsKeepSmallStableFootprint(t *testing.T) {
	// Observation 1: benign per-service JGR is small and stable.
	dev := bootDev(t, device.Config{Seed: 2})
	sched := NewScheduler(dev)
	apps, err := Population(dev, sched, 20, 2, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	base := dev.SystemServer().VM().GlobalRefCount()
	sched.Run(func() bool { return dev.Clock().Now() > 2*time.Minute }, 100000)
	grown := dev.SystemServer().VM().GlobalRefCount() - base
	if grown > 500 {
		t.Fatalf("benign population grew JGR table by %d; Observation 1 demands a small footprint", grown)
	}
	total := 0
	for _, b := range apps {
		total += b.Calls()
	}
	if total < 500 {
		t.Fatalf("population only made %d calls in 2 virtual minutes", total)
	}
}

func TestSchedulerOrdersActors(t *testing.T) {
	dev := bootDev(t, device.Config{Seed: 3})
	sched := NewScheduler(dev)
	app, _ := dev.Apps().Install("com.chatty.app")
	c, err := NewChattyApp(dev, app, 3)
	if err != nil {
		t.Fatal(err)
	}
	sched.Add(c)
	steps := sched.Run(nil, 50)
	if steps != 50 {
		t.Fatalf("steps = %d, want 50", steps)
	}
	if c.Calls() != 50 {
		t.Fatalf("calls = %d, want 50", c.Calls())
	}
}

func TestSchedulerUnlimitedSteps(t *testing.T) {
	dev := bootDev(t, device.Config{Seed: 3})
	sched := NewScheduler(dev)
	app, _ := dev.Apps().Install("com.chatty.app")
	c, err := NewChattyApp(dev, app, 3)
	if err != nil {
		t.Fatal(err)
	}
	sched.Add(c)
	// maxSteps <= 0 means "no step limit": the run is bounded only by the
	// stop condition (and actor completion), not silently zero steps.
	for _, maxSteps := range []int{0, -1} {
		start := c.Calls()
		steps := sched.Run(func() bool { return c.Calls() >= start+25 }, maxSteps)
		if steps != 25 {
			t.Fatalf("Run(stop, %d) = %d steps, want 25", maxSteps, steps)
		}
	}
}

func TestSchedulerEventOrderDeterministic(t *testing.T) {
	// Two schedulers over identically-seeded devices must interleave the
	// same actor sequence: the event queue's (due, registration, seq)
	// ordering is a total order, so the run replays exactly.
	trace := func() []int {
		dev := bootDev(t, device.Config{Seed: 11})
		sched := NewScheduler(dev)
		var order []int
		for i := 0; i < 3; i++ {
			app, _ := dev.Apps().Install(fmt.Sprintf("com.trace.app%d", i))
			c, err := NewChattyApp(dev, app, int64(20+i))
			if err != nil {
				t.Fatal(err)
			}
			i := i
			sched.Add(actorFunc{c, func() { order = append(order, i) }})
		}
		sched.Run(nil, 300)
		return order
	}
	a, b := trace(), trace()
	if len(a) != 300 || len(b) != 300 {
		t.Fatalf("trace lengths %d, %d, want 300", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("interleaving diverged at step %d: %d vs %d", i, a[i], b[i])
		}
	}
}

// actorFunc wraps an Actor, observing every Step.
type actorFunc struct {
	Actor
	observe func()
}

func (a actorFunc) Step() error {
	a.observe()
	return a.Actor.Step()
}

func TestAppAttackerAgainstPrebuilt(t *testing.T) {
	dev := bootDev(t, device.Config{Seed: 4})
	evil, _ := dev.Apps().Install("com.evil.app")
	row := catalog.PrebuiltAppInterfaces()[0] // PicoService.setCallback()
	atk, err := NewAppAttacker(dev, evil, row)
	if err != nil {
		t.Fatal(err)
	}
	pico := dev.Apps().ByPackage("com.svox.pico")
	base := pico.Proc().VM().GlobalRefCount()
	for i := 0; i < 50; i++ {
		if err := atk.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if got := pico.Proc().VM().GlobalRefCount() - base; got < 50 {
		t.Fatalf("pico JGR grew by %d, want ≥50", got)
	}
	if atk.Calls() != 50 {
		t.Fatalf("calls = %d", atk.Calls())
	}
}

func TestThinkTimeForSlowestInterface(t *testing.T) {
	toast, _ := catalog.InterfaceByName("notification.enqueueToast")
	routes, _ := catalog.InterfaceByName("audio.startWatchingRoutes")
	if ThinkTimeFor(toast) <= ThinkTimeFor(routes) {
		t.Fatal("slowest attack should have the longest think time")
	}
}

func TestWellBehavedAppStaysWithinQuotas(t *testing.T) {
	dev := bootDev(t, device.Config{Seed: 8})
	app, _ := dev.Apps().Install("com.goodcitizen.app")
	app.Start()
	w, err := NewWellBehavedApp(dev, app, 8)
	if err != nil {
		t.Fatal(err)
	}
	sched := NewScheduler(dev)
	sched.Add(w)
	sched.Run(nil, 3000)
	if w.Actions() != 3000 {
		t.Fatalf("actions = %d", w.Actions())
	}
	// Every helper-guarded interface stayed within its limit on the
	// service side.
	for _, row := range catalog.Interfaces() {
		if row.Protection != catalog.HelperGuard {
			continue
		}
		if got := dev.Service(row.Service).EntryCount(row.Method); got > row.GuardLimit {
			t.Errorf("%s: %d entries, limit %d", row.FullName(), got, row.GuardLimit)
		}
	}
	// And the app's JGR footprint in system_server stays bounded
	// (Observation 1 for the happy path).
	total := 0
	for _, row := range catalog.Interfaces() {
		if row.Protection == catalog.HelperGuard {
			total += dev.Service(row.Service).EntryCount(row.Method)
		}
	}
	if total != w.Holdings() {
		t.Fatalf("service entries %d != helper holdings %d", total, w.Holdings())
	}
}
