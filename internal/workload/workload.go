// Package workload drives the simulated device with the traffic patterns
// the paper's experiments use: single JGRE attackers paced per interface
// (Fig. 3), the MonkeyRunner-style benign population of Google Play top
// apps (Fig. 4, Observation 1), IPC-heavy-but-benign bystanders and
// colluding attacker groups (Figs. 8 and 9).
package workload

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"time"

	"repro/internal/apps"
	"repro/internal/binder"
	"repro/internal/catalog"
	"repro/internal/device"
	"repro/internal/event"
	"repro/internal/permissions"
	"repro/internal/services"
)

// Actor is a virtual-time participant: it wants to act at Due and acts via
// Step.
type Actor interface {
	// Due is the virtual time of the actor's next action.
	Due() time.Duration
	// Step performs one action (typically one IPC call); the action
	// itself advances the clock through driver/service costs.
	Step() error
	// Done reports that the actor has nothing further to do.
	Done() bool
}

// Scheduler is the discrete-event core: actors are events on a
// deterministic priority queue over virtual time, and every Step
// schedules the actor's own next firing from its per-class arrival
// process. Same-instant events fire in actor registration order (the
// queue's tie-break priority is the registration index), which is
// exactly the order the old linear min-Due scan produced, so envelopes
// are byte-identical across the rewrite.
//
// Besides actors the scheduler carries one-shot timers (At): the chaos
// engine and the supervisor schedule crashes and backoff restarts as
// plain events on the same queue, so fault timing is as deterministic as
// the workload itself. Timer priorities live above timerPriBase, which
// makes every same-instant timer fire after every same-instant actor —
// a run with zero timers is byte-identical to a run before timers
// existed.
type Scheduler struct {
	dev      *device.Device
	actors   []Actor
	queue    event.Queue[schedItem]
	timers   []*timerEvent
	timerSeq uint64
	running  bool
}

// schedItem is one queue entry: an actor (by registration index) or a
// one-shot timer.
type schedItem struct {
	actor int
	timer *timerEvent
}

// timerEvent is a one-shot callback at a fixed virtual time. The
// priority is assigned at creation and stays stable across Run-boundary
// queue rebuilds, so two timers created in order always fire in order.
type timerEvent struct {
	at    time.Duration
	pri   uint64
	fn    func()
	fired bool
}

// timerPriBase orders all timers after all same-instant actors: actor
// priorities are registration indexes, far below 1<<32.
const timerPriBase = uint64(1) << 32

// NewScheduler creates a scheduler on the device clock. The scheduler
// attaches its event queue as a clock horizon source and publishes
// queue-depth and virtual-time gauges into the device registry.
func NewScheduler(dev *device.Device) *Scheduler {
	s := &Scheduler{dev: dev}
	dev.Clock().AttachHorizon(s.queue.Peek)
	if reg := dev.Metrics(); reg != nil {
		reg.GaugeFunc("jgre_event_queue_depth",
			"Events pending in the workload scheduler's virtual-time queue.",
			func() float64 { return float64(s.queue.Len()) })
		reg.GaugeFunc("jgre_event_virtual_time_seconds",
			"Current virtual time of the device clock, in seconds since boot.",
			func() float64 { return dev.Clock().Now().Seconds() })
	}
	return s
}

// Add registers an actor. Same-due ties fire in registration order.
func (s *Scheduler) Add(a Actor) { s.actors = append(s.actors, a) }

// At schedules fn to run once at virtual time t (clamped to now if t is
// in the past). Timers created while Run is draining the queue are
// pushed live; timers created between runs are picked up by the next
// Run's rebuild. A timer firing counts as a step.
func (s *Scheduler) At(t time.Duration, fn func()) {
	if now := s.dev.Clock().Now(); t < now {
		t = now
	}
	s.timerSeq++
	ev := &timerEvent{at: t, pri: timerPriBase + s.timerSeq, fn: fn}
	s.timers = append(s.timers, ev)
	if s.running {
		s.queue.Push(ev.at, ev.pri, schedItem{timer: ev})
	}
}

// Run drains the event queue in (due, registration order) until stop
// returns true, every actor is done, or maxSteps actions have run; it
// returns the number of steps. maxSteps <= 0 means no step limit — the
// run is bounded only by stop and actor completion. Actor errors stop
// that actor for the remainder of the run (an attacker losing its victim
// is expected) but still count as a step, exactly as the pre-event-core
// scan loop counted them.
func (s *Scheduler) Run(stop func() bool, maxSteps int) int {
	clock := s.dev.Clock()
	// Rebuild the queue from current actor state: Due/Done may have been
	// driven externally between Run calls, and errored-but-not-Done actors
	// become eligible again on the next Run (the old loop's dead map was
	// Run-local too). Unfired timers carry over between runs; fired ones
	// are compacted away.
	s.queue = event.Queue[schedItem]{}
	for i, a := range s.actors {
		if a.Done() {
			continue
		}
		s.queue.Push(a.Due(), uint64(i), schedItem{actor: i})
	}
	live := s.timers[:0]
	for _, ev := range s.timers {
		if ev.fired {
			continue
		}
		live = append(live, ev)
		s.queue.Push(ev.at, ev.pri, schedItem{timer: ev})
	}
	s.timers = live
	s.running = true
	defer func() { s.running = false }()
	steps := 0
	for maxSteps <= 0 || steps < maxSteps {
		if stop != nil && stop() {
			break
		}
		it, at, ok := s.queue.Pop()
		if !ok {
			break
		}
		if ev := it.timer; ev != nil {
			if ev.fired {
				continue
			}
			clock.AdvanceTo(at)
			ev.fired = true
			ev.fn()
			steps++
			continue
		}
		a := s.actors[it.actor]
		// Done is re-checked at pop time with the clock still at the
		// previous event: actors whose Done depends on virtual time (a
		// StopAfter bound) must see the same clock the old scan showed
		// them, and a done event must not advance time or count a step.
		if a.Done() {
			continue
		}
		clock.AdvanceTo(at)
		err := a.Step()
		steps++
		if err == nil {
			s.queue.Push(a.Due(), uint64(it.actor), schedItem{actor: it.actor})
		}
	}
	return steps
}

// restartRetryInterval paces an auto-restarting actor that came back up
// before its target service did: the relaunch is retried on this fixed
// deterministic cadence until the supervisor has re-registered the
// service.
const restartRetryInterval = 50 * time.Millisecond

// chaosRestartable reports whether an exit reason is a lifecycle-chaos
// death an auto-restarting actor should recover from. Anything else
// (LMK, a defender kill, an explicit stop) keeps its pre-chaos
// semantics: the actor stays down.
func chaosRestartable(reason string) bool {
	return strings.HasPrefix(reason, "chaos:") || strings.HasPrefix(reason, "soft reboot")
}

// arrival is a per-class arrival process: given the current virtual
// time it yields the time of the actor's next firing. Each actor class
// owns one and schedules itself with it at the end of every Step, which
// is what turns the old step-loops into self-scheduling event handlers.
type arrival interface {
	next(now time.Duration) time.Duration
}

// fixedArrival fires at a constant think-time period — the attacker
// classes, paced from the catalogued AttackSeconds.
type fixedArrival struct {
	think time.Duration
}

func (f fixedArrival) next(now time.Duration) time.Duration { return now + f.think }

// uniformArrival fires after a uniform delay in [0, span) nanoseconds —
// the benign classes. The draw is a single rng.Int63n(span), sharing the
// actor's rng, so the rewrite consumes exactly the random sequence the
// old inline pacing expressions did (a BenignApp's span of interval+1
// keeps its closed upper bound).
type uniformArrival struct {
	rng  *rand.Rand
	span int64
}

func (u uniformArrival) next(now time.Duration) time.Duration {
	return now + time.Duration(u.rng.Int63n(u.span))
}

// Attacker floods one vulnerable interface from one app, paced so that a
// solo run exhausts the victim in roughly the catalogued AttackSeconds
// (Fig. 3's per-interface durations).
type Attacker struct {
	dev    *device.Device
	app    *apps.App
	target catalog.Interface
	// pkg is the package name sent with each call ("android" for the
	// enqueueToast spoof).
	pkg    string
	client *services.Client
	pace   arrival
	due    time.Duration
	calls  int
	failed error
	// paths > 1 makes the attacker rotate execution-path variants per
	// call — the §VI evasion attempt against delay-correlation scoring.
	paths int
	// autoRestart makes the attacker relaunch after lifecycle-chaos
	// deaths (a real JGRE author restarts too; see chaosRestartable).
	autoRestart bool
	restarts    int
}

// typicalBaseline approximates system_server's resting JGR table, used
// only to derive attack pacing.
const typicalBaseline = 1500

// refsPerCall is the victim-side JGR growth per retained registration
// (proxy + death recipient).
const refsPerCall = 2

// ThinkTimeFor derives the per-call idle time that makes a solo attack
// last about the catalogued AttackSeconds.
func ThinkTimeFor(iface catalog.Interface) time.Duration {
	calls := (catalog.JGRThreshold - typicalBaseline) / refsPerCall
	period := time.Duration(iface.Cost.AttackSeconds) * time.Second / time.Duration(calls)
	busy := binder.DefaultLatency.Base + iface.Cost.ExecBase + iface.Cost.Jitter/2
	if period <= busy {
		return 0
	}
	return period - busy
}

// NewAttacker installs (or reuses) the app and opens the raw binder
// client, granting whatever obtainable permission the interface demands —
// Code-Snippet 2 in executable form.
func NewAttacker(dev *device.Device, app *apps.App, ifaceFull string) (*Attacker, error) {
	iface, ok := catalog.InterfaceByName(ifaceFull)
	if !ok {
		return nil, fmt.Errorf("workload: unknown interface %s", ifaceFull)
	}
	if iface.Permission != "" {
		if !dev.Permissions().ObtainableByApp(iface.Permission) {
			return nil, fmt.Errorf("workload: %s needs unobtainable permission %s", ifaceFull, iface.Permission)
		}
		if err := dev.Permissions().Grant(app.Uid(), iface.Permission); err != nil {
			return nil, err
		}
	}
	client, err := dev.NewClient(app, iface.Service)
	if err != nil {
		return nil, err
	}
	pkg := app.Package()
	if iface.FullName() == "notification.enqueueToast" {
		pkg = "android" // the Code-Snippet 3 spoof
	}
	return &Attacker{
		dev: dev, app: app, target: iface, pkg: pkg, client: client,
		pace: fixedArrival{think: ThinkTimeFor(iface)}, due: dev.Clock().Now(),
	}, nil
}

// Target returns the attacked interface.
func (a *Attacker) Target() catalog.Interface { return a.target }

// SetPathCount makes the attacker rotate through n execution-path
// variants (n ≤ 1 restores single-path behaviour).
func (a *Attacker) SetPathCount(n int) { a.paths = n }

// App returns the attacking app.
func (a *Attacker) App() *apps.App { return a.app }

// Calls returns how many IPC calls the attacker has issued.
func (a *Attacker) Calls() int { return a.calls }

// Err returns the error that stopped the attacker, if any.
func (a *Attacker) Err() error { return a.failed }

// SetAutoRestart toggles relaunch-after-chaos: with it on, a process
// death whose reason is a chaos kill or a soft reboot relaunches the app
// and rebinds the client instead of permanently stopping the actor.
func (a *Attacker) SetAutoRestart(on bool) { a.autoRestart = on }

// Restarts returns how many times the attacker relaunched after a
// chaos death.
func (a *Attacker) Restarts() int { return a.restarts }

// relaunch restarts the app and rebinds the attack client. If the
// target service is itself down (awaiting its supervisor restart) the
// relaunch is retried on a fixed cadence rather than failing the actor.
func (a *Attacker) relaunch() error {
	a.app.Start()
	client, err := a.dev.NewClient(a.app, a.target.Service)
	if err != nil {
		a.due = a.dev.Clock().Now() + restartRetryInterval
		return nil
	}
	a.client = client
	a.restarts++
	a.due = a.pace.next(a.dev.Clock().Now())
	return nil
}

// Due implements Actor.
func (a *Attacker) Due() time.Duration { return a.due }

// Done implements Actor: an attacker only stops when its calls fail
// (victim gone, or it was killed).
func (a *Attacker) Done() bool { return a.failed != nil }

// Step issues one registration and schedules the next.
func (a *Attacker) Step() error {
	if !a.app.Running() {
		if a.autoRestart && chaosRestartable(a.app.LastExitReason()) {
			return a.relaunch()
		}
		a.failed = errors.New("workload: attacker process dead")
		return a.failed
	}
	var err error
	if a.paths > 1 {
		variant := int32(a.calls % a.paths)
		err = a.client.RegisterPath(a.target.Method, a.pkg, variant, a.client.NewToken())
	} else {
		err = a.client.RegisterAs(a.target.Method, a.pkg, a.client.NewToken())
	}
	switch {
	case err == nil, errors.Is(err, services.ErrQuotaExceeded):
		// Quota refusals keep the attacker hammering (it costs nothing).
	case errors.Is(err, binder.ErrDeadObject), errors.Is(err, services.ErrRetryExhausted):
		// The victim service died under the call. A restart-aware
		// attacker rebinds once the supervisor brings it back — exactly
		// the blind-window behaviour the chaos sweeps measure.
		if a.autoRestart {
			return a.relaunch()
		}
		a.failed = err
		return err
	default:
		if !a.app.Running() {
			a.failed = err
			return err
		}
		a.failed = err
		return err
	}
	a.calls++
	a.due = a.pace.next(a.dev.Clock().Now())
	return nil
}

// AppAttacker floods a published app service (Tables IV and V).
type AppAttacker struct {
	dev     *device.Device
	app     *apps.App
	regName string
	method  string
	ref     *binder.BinderRef
	code    binder.TxCode
	pace    arrival
	due     time.Duration
	calls   int
	failed  error
}

// NewAppAttacker binds the app service named by the catalog row.
func NewAppAttacker(dev *device.Device, app *apps.App, row catalog.AppInterface) (*AppAttacker, error) {
	regName := apps.AppServiceName(row)
	svc := dev.AppService(regName)
	if svc == nil {
		return nil, fmt.Errorf("workload: app service %s not published", regName)
	}
	proc := app.Start()
	ref, err := dev.AppServices().Bind(regName, proc)
	if err != nil {
		return nil, err
	}
	short := shortMethod(row.Method)
	code, ok := svc.Code(short)
	if !ok {
		return nil, fmt.Errorf("workload: %s has no method %s", regName, short)
	}
	calls := (catalog.JGRThreshold - 100) / refsPerCall
	period := time.Duration(row.Cost.AttackSeconds) * time.Second / time.Duration(calls)
	busy := binder.DefaultLatency.Base + row.Cost.ExecBase + row.Cost.Jitter/2
	think := time.Duration(0)
	if period > busy {
		think = period - busy
	}
	return &AppAttacker{
		dev: dev, app: app, regName: regName, method: short,
		ref: ref, code: code, pace: fixedArrival{think: think}, due: dev.Clock().Now(),
	}, nil
}

func shortMethod(m string) string {
	name := m
	for i := 0; i < len(name); i++ {
		if name[i] == '.' {
			name = name[i+1:]
			break
		}
	}
	if n := len(name); n >= 2 && name[n-2] == '(' {
		name = name[:n-2]
	}
	return name
}

// Due implements Actor.
func (a *AppAttacker) Due() time.Duration { return a.due }

// Done implements Actor.
func (a *AppAttacker) Done() bool { return a.failed != nil }

// Calls returns the number of issued calls.
func (a *AppAttacker) Calls() int { return a.calls }

// Step implements Actor.
func (a *AppAttacker) Step() error {
	if !a.app.Running() {
		a.failed = errors.New("workload: attacker process dead")
		return a.failed
	}
	data := binder.ObtainParcel()
	data.WriteStrongBinder(a.dev.Driver().NewLocalBinder(a.app.Proc(), "android.os.Binder", nil))
	err := a.ref.Binder().Transact(a.code, data, nil)
	data.Recycle()
	if err != nil {
		a.failed = err
		return err
	}
	a.calls++
	a.due = a.pace.next(a.dev.Clock().Now())
	return nil
}

// BenignApp models a Google Play top app: it opens clients on a few
// services, occasionally registers a listener through the proper helper
// path (bounded!), and otherwise issues innocent calls. Its per-service
// JGR footprint is small and stable — Observation 1.
type BenignApp struct {
	dev      *device.Device
	app      *apps.App
	rng      *rand.Rand
	services []string
	clients  map[string]*services.Client
	pace     arrival
	due      time.Duration
	calls    int
	regs     int
	maxRegs  int
	refusals int
	stopAt   time.Duration // 0 = forever
	failed   error

	autoRestart bool
	restarts    int
}

// benignServicePool is the set of services benign apps talk to.
var benignServicePool = []string{
	"clipboard", "audio", "window", "content", "power", "activity",
	"notification", "input_method", "connectivity", "wallpaper",
}

// NewBenignApp builds a benign actor with a deterministic per-app seed.
func NewBenignApp(dev *device.Device, app *apps.App, seed int64, interval time.Duration) (*BenignApp, error) {
	rng := rand.New(rand.NewSource(seed))
	n := 2 + rng.Intn(3)
	picked := make(map[string]bool)
	var svcNames []string
	for len(svcNames) < n {
		s := benignServicePool[rng.Intn(len(benignServicePool))]
		if !picked[s] {
			picked[s] = true
			svcNames = append(svcNames, s)
		}
	}
	// Draw order is load-bearing for byte-identity: the initial due draw
	// precedes the maxRegs draw, exactly as before the arrival-process
	// extraction.
	pace := uniformArrival{rng: rng, span: int64(interval) + 1}
	due := pace.next(dev.Clock().Now())
	b := &BenignApp{
		dev: dev, app: app, rng: rng, services: svcNames,
		clients: make(map[string]*services.Client),
		pace:    pace,
		due:     due,
		maxRegs: 1 + rng.Intn(3),
	}
	for _, svc := range svcNames {
		c, err := dev.NewClient(app, svc)
		if err != nil {
			return nil, err
		}
		b.clients[svc] = c
	}
	return b, nil
}

// App returns the underlying app.
func (b *BenignApp) App() *apps.App { return b.app }

// Calls returns how many IPC calls the app has issued.
func (b *BenignApp) Calls() int { return b.calls }

// Refusals returns how many of the app's legitimate registrations a
// service quota rejected — the usability cost of per-process constraints
// (paper §IV-B).
func (b *BenignApp) Refusals() int { return b.refusals }

// Registrations returns how many listeners the app holds.
func (b *BenignApp) Registrations() int { return b.regs }

// SetHeavy turns the app into a listener-heavy citizen (launchers, input
// methods and accessibility tools legitimately register dozens of
// callbacks), the population tail a one-size-fits-all quota tramples.
func (b *BenignApp) SetHeavy(maxRegs int) { b.maxRegs = maxRegs }

// StopAfter makes the actor stop at the given virtual time.
func (b *BenignApp) StopAfter(t time.Duration) { b.stopAt = t }

// SetAutoRestart toggles relaunch-after-chaos, mirroring the attacker's:
// chaos kills and soft reboots relaunch the app instead of stopping it.
func (b *BenignApp) SetAutoRestart(on bool) { b.autoRestart = on }

// Restarts returns how many times the app relaunched after chaos deaths.
func (b *BenignApp) Restarts() int { return b.restarts }

// relaunch restarts the app and rebuilds its service clients. Any
// service still down defers the whole relaunch to a fixed retry cadence;
// held registrations were torn down with the old process, so the
// registration count resets.
func (b *BenignApp) relaunch() error {
	b.app.Start()
	clients := make(map[string]*services.Client, len(b.services))
	for _, svc := range b.services {
		c, err := b.dev.NewClient(b.app, svc)
		if err != nil {
			b.due = b.dev.Clock().Now() + restartRetryInterval
			return nil
		}
		clients[svc] = c
	}
	b.clients = clients
	b.regs = 0
	b.restarts++
	b.due = b.pace.next(b.dev.Clock().Now())
	return nil
}

// Due implements Actor.
func (b *BenignApp) Due() time.Duration { return b.due }

// Done implements Actor.
func (b *BenignApp) Done() bool {
	if b.failed != nil {
		return true
	}
	return b.stopAt > 0 && b.dev.Clock().Now() >= b.stopAt
}

// Step implements Actor: one innocent call, or a bounded registration.
func (b *BenignApp) Step() error {
	if !b.app.Running() {
		if b.autoRestart && chaosRestartable(b.app.LastExitReason()) {
			return b.relaunch()
		}
		b.failed = errors.New("workload: benign app dead")
		return b.failed
	}
	svc := b.services[b.rng.Intn(len(b.services))]
	c := b.clients[svc]
	var err error
	if b.regs < b.maxRegs && b.rng.Intn(10) == 0 {
		// The app registers a long-lived listener the proper way — at
		// most maxRegs of them, like real apps do.
		row := firstExploitable(svc)
		if row != nil && permissionOK(b.dev, b.app, row.Permission) {
			err = c.Register(row.Method)
			switch {
			case err == nil:
				b.regs++
			case errors.Is(err, services.ErrQuotaExceeded):
				b.refusals++
				err = nil
			}
		}
	} else {
		switch b.rng.Intn(3) {
		case 0:
			err = c.Call("getState")
		case 1:
			err = c.Call("checkAccess")
		default:
			err = c.Call("noteEvent")
		}
	}
	if err != nil && (errors.Is(err, binder.ErrDeadObject) || errors.Is(err, services.ErrRetryExhausted)) {
		if b.autoRestart {
			return b.relaunch()
		}
		b.failed = err
		return err
	}
	b.calls++
	b.due = b.pace.next(b.dev.Clock().Now())
	return nil
}

func firstExploitable(svc string) *catalog.Interface {
	for _, row := range catalog.InterfacesForService(svc) {
		if row.Exploitable() && row.Permission == "" {
			r := row
			return &r
		}
	}
	return nil
}

func permissionOK(dev *device.Device, app *apps.App, p permissions.Permission) bool {
	return p == "" || dev.Permissions().Check(app.Uid(), p)
}

// ChattyApp is the Fig. 9 bystander: benign but IPC-heavy, firing
// innocent calls with intervals uniform in [0, 100 ms] (§V-C: "the benign
// app keeps triggering IPC calls with the interval between two IPC calls
// varying between 0 and 100 ms").
type ChattyApp struct {
	dev    *device.Device
	app    *apps.App
	client *services.Client
	pace   arrival
	due    time.Duration
	calls  int
	failed error
}

// NewChattyApp builds the bystander against the audio service.
func NewChattyApp(dev *device.Device, app *apps.App, seed int64) (*ChattyApp, error) {
	c, err := dev.NewClient(app, "audio")
	if err != nil {
		return nil, err
	}
	pace := uniformArrival{rng: rand.New(rand.NewSource(seed)), span: int64(100 * time.Millisecond)}
	return &ChattyApp{dev: dev, app: app, client: c, pace: pace, due: dev.Clock().Now()}, nil
}

// App returns the underlying app.
func (c *ChattyApp) App() *apps.App { return c.app }

// Calls returns the number of issued calls.
func (c *ChattyApp) Calls() int { return c.calls }

// Due implements Actor.
func (c *ChattyApp) Due() time.Duration { return c.due }

// Done implements Actor.
func (c *ChattyApp) Done() bool { return c.failed != nil }

// Step implements Actor.
func (c *ChattyApp) Step() error {
	if !c.app.Running() {
		c.failed = errors.New("workload: chatty app dead")
		return c.failed
	}
	if err := c.client.Call("getState"); err != nil {
		if errors.Is(err, binder.ErrDeadObject) {
			c.failed = err
			return err
		}
	}
	c.calls++
	c.due = c.pace.next(c.dev.Clock().Now())
	return nil
}

// Population installs and returns n benign apps as actors on a scheduler.
func Population(dev *device.Device, sched *Scheduler, n int, seed int64, interval time.Duration) ([]*BenignApp, error) {
	if interval == 0 {
		interval = 2 * time.Second
	}
	out := make([]*BenignApp, 0, n)
	for i := 0; i < n; i++ {
		app, err := dev.Apps().Install(fmt.Sprintf("com.play.top%03d", i))
		if err != nil {
			return nil, err
		}
		app.Start()
		b, err := NewBenignApp(dev, app, seed+int64(i), interval)
		if err != nil {
			return nil, err
		}
		out = append(out, b)
		if sched != nil {
			sched.Add(b)
		}
	}
	return out, nil
}

// WellBehavedApp models a developer following the SDK happy path: it only
// touches helper-guarded interfaces (Table II) through their helper
// classes, acquiring and releasing within the documented limits. It is
// the citizen Android's client-side quotas actually protect — and the
// contrast to the raw-binder attacker.
type WellBehavedApp struct {
	dev     *device.Device
	app     *apps.App
	rng     *rand.Rand
	pace    arrival
	helpers []*services.Helper
	due     time.Duration
	actions int
	failed  error
}

// NewWellBehavedApp opens helpers on every helper-guarded interface the
// app can obtain permissions for.
func NewWellBehavedApp(dev *device.Device, app *apps.App, seed int64) (*WellBehavedApp, error) {
	rng := rand.New(rand.NewSource(seed))
	w := &WellBehavedApp{
		dev: dev, app: app, rng: rng,
		pace: uniformArrival{rng: rng, span: int64(500 * time.Millisecond)},
		due:  dev.Clock().Now(),
	}
	clients := make(map[string]*services.Client)
	for _, row := range catalog.Interfaces() {
		if row.Protection != catalog.HelperGuard {
			continue
		}
		if row.Permission != "" {
			if !dev.Permissions().ObtainableByApp(row.Permission) {
				continue
			}
			if err := dev.Permissions().Grant(app.Uid(), row.Permission); err != nil {
				return nil, err
			}
		}
		c, ok := clients[row.Service]
		if !ok {
			var err error
			c, err = dev.NewClient(app, row.Service)
			if err != nil {
				return nil, err
			}
			clients[row.Service] = c
		}
		w.helpers = append(w.helpers, services.NewHelper(c, row))
	}
	return w, nil
}

// Actions returns how many acquire/release operations ran.
func (w *WellBehavedApp) Actions() int { return w.actions }

// Holdings returns the total helper-tracked registrations currently held.
func (w *WellBehavedApp) Holdings() int {
	n := 0
	for _, h := range w.helpers {
		n += h.Active()
	}
	return n
}

// Due implements Actor.
func (w *WellBehavedApp) Due() time.Duration { return w.due }

// Done implements Actor.
func (w *WellBehavedApp) Done() bool { return w.failed != nil }

// Step acquires or releases through a random helper. Helpers enforce the
// quota client-side, so over-limit acquires fail locally and are simply
// retried later — exactly the developer experience the guards were built
// for.
func (w *WellBehavedApp) Step() error {
	if !w.app.Running() {
		w.failed = errors.New("workload: well-behaved app dead")
		return w.failed
	}
	h := w.helpers[w.rng.Intn(len(w.helpers))]
	var err error
	if h.Active() > 0 && w.rng.Intn(2) == 0 {
		err = h.Release()
	} else {
		err = h.Acquire()
	}
	if err != nil && errors.Is(err, binder.ErrDeadObject) {
		w.failed = err
		return err
	}
	w.actions++
	w.due = w.pace.next(w.dev.Clock().Now())
	return nil
}
