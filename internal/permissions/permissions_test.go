package permissions

import (
	"errors"
	"testing"

	"repro/internal/kernel"
)

func TestDefineAndLevel(t *testing.T) {
	m := NewManager()
	m.Define("WAKE_LOCK", LevelNormal)
	m.Define("WAKE_LOCK", LevelNormal) // same level is fine
	if got := m.Level("WAKE_LOCK"); got != LevelNormal {
		t.Fatalf("Level = %v, want normal", got)
	}
	// Undefined permissions are treated as signature (unobtainable).
	if got := m.Level("MYSTERY"); got != LevelSignature {
		t.Fatalf("undefined Level = %v, want signature", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("conflicting redefinition did not panic")
		}
	}()
	m.Define("WAKE_LOCK", LevelDangerous)
}

func TestGrantCheckEnforce(t *testing.T) {
	m := NewManager()
	m.Define("READ_PHONE_STATE", LevelDangerous)
	const app kernel.Uid = 10061

	if m.Check(app, "READ_PHONE_STATE") {
		t.Fatal("ungranted permission passed Check")
	}
	var de *DeniedError
	if err := m.Enforce(app, "READ_PHONE_STATE"); !errors.As(err, &de) {
		t.Fatalf("Enforce error = %v, want DeniedError", err)
	}
	if err := m.Grant(app, "READ_PHONE_STATE"); err != nil {
		t.Fatal(err)
	}
	if err := m.Enforce(app, "READ_PHONE_STATE"); err != nil {
		t.Fatalf("Enforce after grant: %v", err)
	}
	m.Revoke(app, "READ_PHONE_STATE")
	if m.Check(app, "READ_PHONE_STATE") {
		t.Fatal("revoked permission still passes")
	}
}

func TestEmptyPermissionAlwaysPasses(t *testing.T) {
	m := NewManager()
	if err := m.Enforce(10001, ""); err != nil {
		t.Fatalf("empty permission enforced: %v", err)
	}
}

func TestSystemUidImplicitlyHoldsAll(t *testing.T) {
	m := NewManager()
	m.Define("X", LevelSignature)
	if !m.Check(kernel.SystemUid, "X") {
		t.Fatal("system uid denied")
	}
	if err := m.Enforce(kernel.SystemUid, "X"); err != nil {
		t.Fatal(err)
	}
}

func TestSignatureUnobtainableByApps(t *testing.T) {
	m := NewManager()
	m.Define("SIG_ONLY", LevelSignature)
	if err := m.Grant(10001, "SIG_ONLY"); err == nil {
		t.Fatal("signature permission granted to app uid")
	}
	if err := m.Grant(kernel.SystemUid, "SIG_ONLY"); err != nil {
		t.Fatalf("system grant failed: %v", err)
	}
	if m.ObtainableByApp("SIG_ONLY") {
		t.Fatal("signature permission reported obtainable")
	}
}

func TestObtainableByApp(t *testing.T) {
	m := NewManager()
	m.Define("N", LevelNormal)
	m.Define("D", LevelDangerous)
	for perm, want := range map[Permission]bool{"": true, "N": true, "D": true, "UNDEFINED": false} {
		if got := m.ObtainableByApp(perm); got != want {
			t.Errorf("ObtainableByApp(%q) = %v, want %v", perm, got, want)
		}
	}
}

func TestLevelString(t *testing.T) {
	cases := map[Level]string{
		LevelNone:      "none",
		LevelNormal:    "normal",
		LevelDangerous: "dangerous",
		LevelSignature: "signature",
		Level(42):      "Level(42)",
	}
	for l, want := range cases {
		if got := l.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(l), got, want)
		}
	}
}
