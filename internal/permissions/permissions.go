// Package permissions models Android's install-time permission system as
// far as the paper needs it: permission definitions with protection
// levels, per-uid grants, and enforcement. The paper's central point
// (§I, §II-B) is that this model is coarse-grained — it gates *whether* an
// app may call a service, never *how many* resources the calls consume —
// so a JGRE attack is possible even through fully "authorized" requests.
package permissions

import (
	"fmt"

	"repro/internal/kernel"
)

// Level is a permission protection level.
type Level int

// Protection levels, mirroring AndroidManifest protectionLevel values.
// LevelNone marks interfaces that require no permission at all.
const (
	LevelNone Level = iota
	LevelNormal
	LevelDangerous
	LevelSignature
)

// String returns the AOSP name of the level.
func (l Level) String() string {
	switch l {
	case LevelNone:
		return "none"
	case LevelNormal:
		return "normal"
	case LevelDangerous:
		return "dangerous"
	case LevelSignature:
		return "signature"
	default:
		return fmt.Sprintf("Level(%d)", int(l))
	}
}

// Permission names a permission, e.g. "WAKE_LOCK" (the paper's tables use
// the short form; the android.permission. prefix is implied).
type Permission string

// DeniedError reports a failed permission check.
type DeniedError struct {
	Uid  kernel.Uid
	Perm Permission
}

func (e *DeniedError) Error() string {
	return fmt.Sprintf("permission denial: uid %d lacks %s", e.Uid, e.Perm)
}

// Manager holds permission definitions and per-uid grants.
type Manager struct {
	levels map[Permission]Level
	// levelsShared marks levels as a copy-on-write map shared with a
	// snapshot template; Define materializes a private copy before the
	// first new definition.
	levelsShared bool
	grants       map[kernel.Uid]map[Permission]bool
}

// NewManager returns an empty manager.
func NewManager() *Manager {
	return &Manager{
		levels: make(map[Permission]Level),
		grants: make(map[kernel.Uid]map[Permission]bool),
	}
}

// Define registers a permission with its protection level. Redefinition
// with a different level panics: the definition set is static platform
// data.
func (m *Manager) Define(p Permission, l Level) {
	if old, ok := m.levels[p]; ok {
		if old != l {
			panic(fmt.Sprintf("permissions: %s redefined from %v to %v", p, old, l))
		}
		return // identical redefinition: no write, so a COW-shared map stays shared
	}
	if m.levelsShared {
		levels := make(map[Permission]Level, len(m.levels)+1)
		for dp, dl := range m.levels {
			levels[dp] = dl
		}
		m.levels = levels
		m.levelsShared = false
	}
	m.levels[p] = l
}

// Freeze marks the definition set copy-on-write shared ahead of
// concurrent CloneInto calls; a snapshot template calls it once,
// single-threaded.
func (m *Manager) Freeze() { m.levelsShared = true }

// CloneInto populates dst as a copy of a frozen manager: the (static)
// definition map is shared copy-on-write, grants are deep-copied. The
// receiver must have been Frozen first, so concurrent clones never
// write template state. A dst carrying grant maps from a retired clone
// (the fleet slot recycle path) has them rewound and reused in place.
func (m *Manager) CloneInto(dst *Manager) {
	if !m.levelsShared {
		panic("permissions: CloneInto before Freeze")
	}
	dst.levels = m.levels
	dst.levelsShared = true
	if dst.grants == nil {
		dst.grants = make(map[kernel.Uid]map[Permission]bool, len(m.grants))
	} else {
		clear(dst.grants)
	}
	for uid, g := range m.grants {
		ng := make(map[Permission]bool, len(g))
		for p, v := range g {
			ng[p] = v
		}
		dst.grants[uid] = ng
	}
}

// Level returns the protection level of p. Undefined permissions report
// LevelSignature: an unknown permission can never be granted to a
// third-party app, which is the safe default for the analysis.
func (m *Manager) Level(p Permission) Level {
	if l, ok := m.levels[p]; ok {
		return l
	}
	return LevelSignature
}

// Grant gives uid the permission. Granting a signature-level permission to
// an app uid fails: third-party apps cannot hold them, which is what makes
// signature-gated interfaces unreachable to the paper's attacker model.
func (m *Manager) Grant(uid kernel.Uid, p Permission) error {
	if m.Level(p) == LevelSignature && kernel.IsAppUid(uid) {
		return fmt.Errorf("grant %s to app uid %d: signature permission", p, uid)
	}
	g, ok := m.grants[uid]
	if !ok {
		g = make(map[Permission]bool)
		m.grants[uid] = g
	}
	g[p] = true
	return nil
}

// Revoke removes a grant.
func (m *Manager) Revoke(uid kernel.Uid, p Permission) {
	delete(m.grants[uid], p)
}

// Check reports whether uid holds p. System uids implicitly hold
// everything.
func (m *Manager) Check(uid kernel.Uid, p Permission) bool {
	if !kernel.IsAppUid(uid) {
		return true
	}
	return m.grants[uid][p]
}

// Enforce returns a DeniedError if uid does not hold p. An empty
// permission always passes (the interface is unguarded).
func (m *Manager) Enforce(uid kernel.Uid, p Permission) error {
	if p == "" {
		return nil
	}
	if !m.Check(uid, p) {
		return &DeniedError{Uid: uid, Perm: p}
	}
	return nil
}

// ObtainableByApp reports whether a third-party app can acquire the
// permission at all (normal: auto-granted at install; dangerous: user
// grant; signature: never). The risky-IPC sifter uses this to discard
// interfaces outside the attacker's reach (paper §III-C3).
func (m *Manager) ObtainableByApp(p Permission) bool {
	if p == "" {
		return true
	}
	switch m.Level(p) {
	case LevelNone, LevelNormal, LevelDangerous:
		return true
	default:
		return false
	}
}
