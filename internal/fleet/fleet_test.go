package fleet

import (
	"context"
	"encoding/json"
	"sync"
	"testing"
)

// resultBytes canonicalizes a fleet result for equality checks.
func resultBytes(t *testing.T, r *Result) string {
	t.Helper()
	b, err := json.Marshal(r)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	return string(b)
}

func runFleet(t *testing.T, cfg Config, w Workload) *Result {
	t.Helper()
	r, err := Run(context.Background(), cfg, w)
	if err != nil {
		t.Fatalf("fleet run (%s, workers=%d, mode=%s): %v", w.Name, cfg.Workers, cfg.Mode, err)
	}
	return r
}

// TestFleetBaselineDeterminism is the engine's core guarantee: the same
// fleet seed yields byte-identical rollups for any worker count and for
// recycled, cloned-per-device, and freshly-booted slots.
func TestFleetBaselineDeterminism(t *testing.T) {
	cfg := Config{Devices: 192, Workers: 1, Seed: 42, ChunkSize: 16}
	want := resultBytes(t, runFleet(t, cfg, BaselineProbe()))
	for _, workers := range []int{4, 16} {
		c := cfg
		c.Workers = workers
		if got := resultBytes(t, runFleet(t, c, BaselineProbe())); got != want {
			t.Errorf("workers=%d rollup differs:\n got %s\nwant %s", workers, got, want)
		}
	}
	for _, mode := range []Mode{ModeClone, ModeFresh} {
		c := cfg
		c.Workers = 4
		c.Mode = mode
		if got := resultBytes(t, runFleet(t, c, BaselineProbe())); got != want {
			t.Errorf("mode=%s rollup differs:\n got %s\nwant %s", mode, got, want)
		}
	}
	// Chunk size is part of the run's identity (it is recorded in the
	// result), but the aggregates it folds must match any chunking.
	c := cfg
	c.ChunkSize = 7
	odd := runFleet(t, c, BaselineProbe())
	odd.ChunkSize = cfg.ChunkSize
	if got := resultBytes(t, odd); got != want {
		t.Errorf("chunk=7 aggregates differ:\n got %s\nwant %s", got, want)
	}
}

// TestFleetAttackRolloutDeterminism runs the defender-bearing workload
// across worker counts and slot modes — the recycled-slot result must be
// byte-identical to clone-per-device.
func TestFleetAttackRolloutDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("defender fleet sweep is slow; skipping under -short")
	}
	devices := 64
	w := AttackRollout(devices)
	cfg := Config{Devices: devices, Workers: 1, Seed: 7, ChunkSize: 8}
	want := resultBytes(t, runFleet(t, cfg, w))
	c := cfg
	c.Workers = 4
	if got := resultBytes(t, runFleet(t, c, w)); got != want {
		t.Errorf("workers=4 rollup differs:\n got %s\nwant %s", got, want)
	}
	c = cfg
	c.Workers = 4
	c.Mode = ModeClone
	if got := resultBytes(t, runFleet(t, c, w)); got != want {
		t.Errorf("mode=clone rollup differs:\n got %s\nwant %s", got, want)
	}
}

// TestFleetAttackRolloutDetects sanity-checks the rollout physics: the
// ramp infects a growing share of the fleet, the quick-scale defender
// catches essentially all of them, and detection timing lands in the
// histograms.
func TestFleetAttackRolloutDetects(t *testing.T) {
	if testing.Short() {
		t.Skip("defender fleet sweep is slow; skipping under -short")
	}
	devices := 64
	r := runFleet(t, Config{Devices: devices, Seed: 7, ChunkSize: 8}, AttackRollout(devices))
	if r.Infected == 0 || r.Infected == int64(devices) {
		t.Fatalf("rollout ramp degenerate: %d/%d infected", r.Infected, devices)
	}
	if r.DetectionRate < 0.95 {
		t.Errorf("detection rate %.2f; want >= 0.95 (detected %d of %d)",
			r.DetectionRate, r.Detected, r.Infected)
	}
	if r.TimeToDetectMS.Count != uint64(r.Detected) || r.TimeToDetectMS.Max == 0 {
		t.Errorf("detect histogram not populated: %+v", r.TimeToDetectMS)
	}
}

// TestFleetColludersAttribution checks the colluder cells are engaged
// and the kill split distinguishes colluders from bystanders.
func TestFleetColludersAttribution(t *testing.T) {
	if testing.Short() {
		t.Skip("defender fleet sweep is slow; skipping under -short")
	}
	r := runFleet(t, Config{Devices: 48, Seed: 11, ChunkSize: 8}, Colluders())
	if r.Infected == 0 {
		t.Fatal("no colluder cells in 48 devices")
	}
	if r.Detected == 0 {
		t.Fatalf("no colluder cell engaged the defender: %+v", r)
	}
	if r.ColludersCaught == 0 {
		t.Errorf("engagements killed no colluders: %+v", r)
	}
}

// TestFleetErrors covers the engine's argument validation.
func TestFleetErrors(t *testing.T) {
	if _, err := Run(context.Background(), Config{}, BaselineProbe()); err == nil {
		t.Error("Devices=0 accepted")
	}
	if _, err := Run(context.Background(), Config{Devices: 1}, Workload{Name: "x"}); err == nil {
		t.Error("nil Run accepted")
	}
}

// TestFleetCancellation stops a sweep via the caller's context.
func TestFleetCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Run(ctx, Config{Devices: 64, Workers: 2}, BaselineProbe()); err == nil {
		t.Error("cancelled fleet run returned no error")
	}
}

// TestDeviceSeedDerivation pins the splitmix64 derivation: distinct per
// index, worker-independent, and stable across releases (rollups depend
// on it).
func TestDeviceSeedDerivation(t *testing.T) {
	seen := make(map[int64]int)
	for i := 0; i < 4096; i++ {
		s := DeviceSeed(42, i)
		if prev, dup := seen[s]; dup {
			t.Fatalf("seed collision: indices %d and %d both derive %d", prev, i, s)
		}
		seen[s] = i
	}
	if DeviceSeed(42, 0) == DeviceSeed(43, 0) {
		t.Error("fleet seed does not influence device seeds")
	}
	// Golden values: changing the derivation silently changes every
	// fleet rollup, so it must be deliberate.
	if got, want := DeviceSeed(42, 0), int64(-4767286540954276203); got != want {
		t.Errorf("DeviceSeed(42,0) = %d, want %d", got, want)
	}
}

// TestAccumulatorMergeRace exercises concurrent Add into per-worker
// accumulators plus merges into a mutex-guarded total — the engine's
// aggregation shape — under the race detector.
func TestAccumulatorMergeRace(t *testing.T) {
	total := NewAccumulator()
	var mu sync.Mutex
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			acc := NewAccumulator()
			for i := 0; i < 1000; i++ {
				acc.Add(Trial{
					Infected: i%2 == 0, Detected: i%4 == 0, Recovered: i%8 == 0,
					DetectMS: int64(i), RecoverMS: int64(2 * i),
					PeakJGR: int64(1000 + i), Steps: int64(g*1000 + i),
				})
			}
			mu.Lock()
			total.Merge(acc)
			mu.Unlock()
		}(g)
	}
	wg.Wait()
	if total.Devices != 8000 {
		t.Fatalf("merged %d devices, want 8000", total.Devices)
	}
	if total.PeakJGR.Count != 8000 || total.Steps.Count != 8000 {
		t.Fatalf("histogram counts %d/%d, want 8000", total.PeakJGR.Count, total.Steps.Count)
	}
}

// TestDistQuantiles pins the bucket-estimated percentiles on a known
// shape.
func TestDistQuantiles(t *testing.T) {
	d := newDist([]int64{10, 20, 30, 40, 50, 60, 70, 80, 90, 100})
	for v := int64(1); v <= 100; v++ {
		d.Observe(v)
	}
	s := d.summarize()
	if s.Count != 100 || s.Min != 1 || s.Max != 100 {
		t.Fatalf("summary %+v", s)
	}
	if s.Mean != 50.5 {
		t.Errorf("mean %v, want 50.5", s.Mean)
	}
	// The estimate is the upper edge of the bucket covering the rank:
	// the 51st value (51) lands in (50, 60].
	if s.P50 != 60 {
		t.Errorf("p50 %d, want bucket edge 60", s.P50)
	}
	if s.P99 != 100 {
		t.Errorf("p99 %d, want 100", s.P99)
	}
	// Outliers past the last bound land in the overflow bucket and clamp
	// to the exact max.
	d.Observe(100000)
	if got := d.quantile(0.999); got != 100000 {
		t.Errorf("overflow quantile %d, want 100000", got)
	}
}

// benchFleet prices one fleet sweep per iteration at the given mode.
func benchFleet(b *testing.B, mode Mode, devices int) {
	cfg := Config{Devices: devices, Workers: 1, Seed: 42, Mode: mode}
	w := BaselineProbe()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := Run(context.Background(), cfg, w)
		if err != nil {
			b.Fatal(err)
		}
		if r.Devices != devices {
			b.Fatalf("ran %d devices, want %d", r.Devices, devices)
		}
	}
	b.StopTimer()
	devSec := float64(devices) * float64(b.N) / b.Elapsed().Seconds()
	b.ReportMetric(devSec, "devices/sec")
}

func BenchmarkFleet(b *testing.B) {
	const devices = 256
	b.Run("recycle", func(b *testing.B) { benchFleet(b, ModeRecycle, devices) })
	b.Run("clone", func(b *testing.B) { benchFleet(b, ModeClone, devices) })
	b.Run("fresh", func(b *testing.B) { benchFleet(b, ModeFresh, devices) })
}
