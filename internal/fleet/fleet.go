// Package fleet is the sharded fleet execution engine: it runs a
// workload across hundreds to thousands of simulated devices on the
// parallel worker pool, with each worker owning a long-lived device slot
// that is recycled between trials (one cold clone from the boot-template
// cache per slot, then an in-place copy-on-write rewind per device)
// instead of booting a fresh device per trial.
//
// Determinism contract: a device's trial depends only on the fleet seed
// and its device index (per-device seeds are derived with splitmix64),
// devices are sharded into fixed-size chunks whose size never depends on
// the worker count, each chunk folds its trials into a private
// Accumulator, and the engine merges chunk accumulators in chunk-index
// order. The resulting Result is therefore byte-identical for any worker
// count and for recycled, cloned-per-device, or freshly-booted slots —
// the property the fleet determinism suite asserts.
package fleet

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/device"
	"repro/internal/parallel"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// Mode selects how a slot produces the next trial's device. The result
// of a fleet run is mode-independent; modes exist so the benchmark suite
// can price recycling against the alternatives.
type Mode int

const (
	// ModeRecycle clones once per slot from the template cache, then
	// rewinds the same device in place for every later trial (the fast
	// path and the default).
	ModeRecycle Mode = iota
	// ModeClone boots a fresh template clone per device — PR 7's
	// clone-per-trial behaviour, the benchmark comparison baseline.
	ModeClone
	// ModeFresh boots every device from scratch, bypassing the template
	// cache entirely.
	ModeFresh
)

// String names the mode for benchmark reports.
func (m Mode) String() string {
	switch m {
	case ModeClone:
		return "clone"
	case ModeFresh:
		return "fresh"
	default:
		return "recycle"
	}
}

// DefaultChunkSize is the shard width of the device index space. It is
// a per-run constant (never derived from the worker count): chunk
// boundaries are part of the deterministic shape of the run.
const DefaultChunkSize = 64

// Config parameterizes a fleet run.
type Config struct {
	// Devices is the fleet width.
	Devices int
	// Workers sizes the parallel.Map pool (0 = one per CPU).
	Workers int
	// Seed is the fleet seed; per-device seeds are splitmix64-derived
	// from it and the device index.
	Seed int64
	// ChunkSize overrides DefaultChunkSize (tests only — changing it
	// changes accumulator fold boundaries but not the merged result).
	ChunkSize int
	// Mode selects slot recycling, clone-per-device or fresh boots.
	Mode Mode
	// Device is the device shape every fleet member boots with. All
	// devices share one shape (and therefore one boot template); only
	// the seed varies.
	Device device.Config
}

// Workload is one fleet experiment: Run executes a single device's
// trial. Run must derive all randomness from seed (never from the slot's
// history) and must drop every reference to dev when it returns — the
// engine rewinds the device in place for the next trial.
type Workload struct {
	Name string
	Run  func(dev *device.Device, index int, seed int64) (Trial, error)
}

// WithTraceCapture wraps the workload so fn receives each trial's
// flight-recorder snapshot (with the device's pid display names) after
// the trial completes and before the slot is rewound. The snapshot is
// keyed by device index — a pure function of (fleet seed, index) —
// which is what lets callers merge per-device traces into a byte-
// identical export regardless of worker count or slot mode. fn runs on
// worker goroutines and must be safe for concurrent calls; it is not
// called for trials where tracing is off or Run failed.
func (w Workload) WithTraceCapture(fn func(index int, spans []trace.SpanRecord, names map[int32]string)) Workload {
	inner := w.Run
	w.Run = func(dev *device.Device, index int, seed int64) (Trial, error) {
		t, err := inner(dev, index, seed)
		if err == nil {
			if rec := dev.Recorder(); rec.Enabled() {
				fn(index, rec.Spans(), dev.ProcNames())
			}
		}
		return t, err
	}
	return w
}

// DeviceSeed derives the per-device boot seed from the fleet seed and
// the device index with a splitmix64 finalizer, so neighbouring indices
// get decorrelated seeds and the mapping is worker-independent.
func DeviceSeed(fleetSeed int64, index int) int64 {
	x := uint64(fleetSeed) + (uint64(index)+1)*0x9E3779B97F4A7C15
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return int64(x)
}

// slotPool hands long-lived device slots to workers. Slots outlive
// chunks: a worker grabs one per chunk and returns it, so at most
// min(workers, chunks) slots — and template clones — exist per run.
// Which slot serves which chunk is scheduling-dependent, but a slot
// carries no state that can leak into a trial (Acquire rewinds to the
// sealed template), so the pairing cannot affect results.
type slotPool struct {
	cfg  device.Config
	mode Mode
	mu   sync.Mutex
	free []*device.Slot
	all  []*device.Slot
}

func newSlotPool(cfg device.Config, mode Mode) *slotPool {
	return &slotPool{cfg: cfg, mode: mode}
}

func (p *slotPool) get() (*device.Slot, error) {
	if p.mode != ModeRecycle {
		return nil, nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if n := len(p.free); n > 0 {
		s := p.free[n-1]
		p.free = p.free[:n-1]
		return s, nil
	}
	s, err := device.NewSlot(p.cfg)
	if err != nil {
		return nil, err
	}
	p.all = append(p.all, s)
	return s, nil
}

func (p *slotPool) put(s *device.Slot) {
	if s == nil {
		return
	}
	p.mu.Lock()
	p.free = append(p.free, s)
	p.mu.Unlock()
}

// stats sums the slot counters across the pool.
func (p *slotPool) stats() device.SlotStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	var t device.SlotStats
	for _, s := range p.all {
		st := s.Stats()
		t.Clones += st.Clones
		t.Recycles += st.Recycles
		t.Fresh += st.Fresh
	}
	return t
}

// acquire produces the device for one trial according to the mode.
func (p *slotPool) acquire(s *device.Slot, seed int64) (*device.Device, error) {
	switch p.mode {
	case ModeClone:
		cfg := p.cfg
		cfg.Seed = seed
		return device.Boot(cfg)
	case ModeFresh:
		cfg := p.cfg
		cfg.Seed = seed
		return device.BootFresh(cfg)
	default:
		return s.Acquire(seed)
	}
}

// fleetMetrics are the process-global fleet counters (jgre-top's FLEET
// panel reads these). Slot clone/recycle counts are deliberately kept
// here and out of Result: they depend on the worker count.
type fleetMetrics struct {
	devices  *telemetry.Counter
	trials   *telemetry.Counter
	clones   *telemetry.Counter
	recycles *telemetry.Counter
	fresh    *telemetry.Counter
}

func newFleetMetrics() fleetMetrics {
	reg := telemetry.Global()
	return fleetMetrics{
		devices: reg.Counter("jgre_fleet_devices_total",
			"Devices dispatched to fleet workloads."),
		trials: reg.Counter("jgre_fleet_trials_total",
			"Fleet trials completed."),
		clones: reg.Counter("jgre_fleet_slot_clones_total",
			"Cold template clones performed by fleet slots."),
		recycles: reg.Counter("jgre_fleet_slot_recycles_total",
			"In-place device recycles performed by fleet slots."),
		fresh: reg.Counter("jgre_fleet_slot_fresh_total",
			"Full boots performed by fleet slots (template cache off)."),
	}
}

// Run executes the workload across cfg.Devices devices and returns the
// merged rollup. Memory is bounded: per-device envelopes are never
// materialized — each chunk folds into one Accumulator as trials finish.
func Run(ctx context.Context, cfg Config, w Workload) (*Result, error) {
	if cfg.Devices <= 0 {
		return nil, fmt.Errorf("fleet: %s: no devices (Devices=%d)", w.Name, cfg.Devices)
	}
	if w.Run == nil {
		return nil, fmt.Errorf("fleet: %s: workload has no Run", w.Name)
	}
	chunkSize := cfg.ChunkSize
	if chunkSize <= 0 {
		chunkSize = DefaultChunkSize
	}
	nchunks := (cfg.Devices + chunkSize - 1) / chunkSize
	chunks := make([]int, nchunks)
	for i := range chunks {
		chunks[i] = i
	}
	m := newFleetMetrics()
	pool := newSlotPool(cfg.Device, cfg.Mode)
	accs, err := parallel.Map(ctx, chunks, cfg.Workers,
		func(ctx context.Context, _ int, chunk int) (*Accumulator, error) {
			acc := NewAccumulator()
			slot, err := pool.get()
			if err != nil {
				return nil, fmt.Errorf("fleet: %s: slot: %w", w.Name, err)
			}
			defer pool.put(slot)
			lo := chunk * chunkSize
			hi := lo + chunkSize
			if hi > cfg.Devices {
				hi = cfg.Devices
			}
			for i := lo; i < hi; i++ {
				if err := ctx.Err(); err != nil {
					return nil, err
				}
				seed := DeviceSeed(cfg.Seed, i)
				m.devices.Inc()
				dev, err := pool.acquire(slot, seed)
				if err != nil {
					return nil, fmt.Errorf("fleet: %s: device %d: %w", w.Name, i, err)
				}
				trial, err := w.Run(dev, i, seed)
				if err != nil {
					return nil, fmt.Errorf("fleet: %s: device %d: %w", w.Name, i, err)
				}
				acc.Add(trial)
				m.trials.Inc()
			}
			return acc, nil
		})
	if err != nil {
		return nil, err
	}
	total := NewAccumulator()
	for _, acc := range accs {
		total.Merge(acc)
	}
	st := pool.stats()
	m.clones.Add(uint64(st.Clones))
	m.recycles.Add(uint64(st.Recycles))
	m.fresh.Add(uint64(st.Fresh))
	return total.result(w.Name, cfg.Devices, chunkSize, cfg.Seed), nil
}
