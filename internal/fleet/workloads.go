// The three fleet workloads: a thin benign probe (throughput headline),
// a staged attack rollout (detection rate / time-to-recovery at fleet
// scale), and colluding attacker cells (multi-app attribution at fleet
// scale). Every trial derives all randomness from its per-device seed,
// so a trial's outcome is a pure function of (device shape, seed) — the
// engine's determinism contract.
package fleet

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/catalog"
	"repro/internal/defense"
	"repro/internal/device"
	"repro/internal/trace"
	"repro/internal/workload"
)

// fleetDefense is the quick-scale defender shape every fleet trial uses
// (the delay experiments' thresholds: alarm at 400 new JGR entries,
// engage at 1,200).
func fleetDefense() defense.Config {
	return defense.Config{AlarmThreshold: 400, EngageThreshold: 1200}
}

// fleetTargets returns the n fastest-to-exhaust exploitable interfaces,
// one per service — the same selection the Fig. 9 colluder experiment
// makes.
func fleetTargets(n int) []string {
	rows := catalog.ExploitableInterfaces()
	sort.Slice(rows, func(i, j int) bool { return rows[i].Cost.AttackSeconds < rows[j].Cost.AttackSeconds })
	var out []string
	seen := make(map[string]bool)
	for _, r := range rows {
		if seen[r.Service] {
			continue
		}
		seen[r.Service] = true
		out = append(out, r.FullName())
		if len(out) == n {
			break
		}
	}
	return out
}

// trialBudget bounds any single trial's scheduler steps — a safety net,
// not a tuning knob; detections land orders of magnitude earlier.
const trialBudget = 400_000

// probeMethods are the innocent calls the baseline probe rotates
// through. None of them retains (or even transiently takes) a global
// reference, so a probe trial never dirties system_server's
// copy-on-write JGR table — the property that keeps device turnaround,
// not trial work, the dominant cost the recycle-vs-clone benchmark
// prices.
var probeMethods = [3]string{"getState", "checkAccess", "noteEvent"}

// BaselineProbe is the benign fleet workload: one probe app firing a
// handful of innocent IPC calls at two system services and reading the
// device health counters back — the steady-state fleet heartbeat (the
// paper's Observation 1: benign JGR footprints are small and stable), and
// the workload the devices/sec headline is measured on. Counts and
// method choice come straight from the device seed's bits; the probe is
// too thin to justify seeding a full math/rand state.
func BaselineProbe() Workload {
	return Workload{
		Name: "fleet-baseline",
		Run: func(dev *device.Device, index int, seed int64) (Trial, error) {
			app, err := dev.Apps().Install("com.fleet.probe")
			if err != nil {
				return Trial{}, err
			}
			app.Start()
			clip, err := dev.NewClient(app, "clipboard")
			if err != nil {
				return Trial{}, err
			}
			audio, err := dev.NewClient(app, "audio")
			if err != nil {
				return Trial{}, err
			}
			bits := uint64(seed)
			calls := 6 + int(bits>>40&7)
			for i := 0; i < calls; i++ {
				c := clip
				if bits>>(i&31)&1 == 1 {
					c = audio
				}
				if err := c.Call(probeMethods[(i+int(bits>>35))%3]); err != nil {
					return Trial{}, err
				}
			}
			st := dev.Stats()
			return Trial{
				PeakJGR: int64(st.SystemServerPeakJGR),
				Steps:   int64(calls),
			}, nil
		},
	}
}

// rolloutWave reports whether the device at index is infected: the
// infected fraction ramps linearly from 0% at the head of the fleet to
// ~100% at the tail (a staged malware rollout), and the within-wave
// draw comes from the device seed's high bits so it is decorrelated
// from the trial's rand stream.
func rolloutWave(index, devices int, seed int64) bool {
	wave := index * 100 / devices
	roll := int((uint64(seed) >> 33) % 100)
	return roll < wave
}

// AttackRollout is the staged-infection fleet workload over a fleet of
// the given width: each infected device runs a benign population plus
// one JGRE attacker under a quick-scale defender until the defender
// engages; clean devices run the population alone for a bounded virtual
// horizon (false-alarm watch).
func AttackRollout(devices int) Workload {
	target := fleetTargets(1)[0]
	return Workload{
		Name: "fleet-attack-rollout",
		Run: func(dev *device.Device, index int, seed int64) (Trial, error) {
			infected := rolloutWave(index, devices, seed)
			def, err := defense.New(dev, fleetDefense())
			if err != nil {
				return Trial{}, err
			}
			sched := workload.NewScheduler(dev)
			if _, err := workload.Population(dev, sched, 3, seed, 2*time.Second); err != nil {
				return Trial{}, err
			}
			var evil string
			var evilUids []int32
			if infected {
				app, err := dev.Apps().Install("com.evil.app")
				if err != nil {
					return Trial{}, err
				}
				app.Start()
				atk, err := workload.NewAttacker(dev, app, target)
				if err != nil {
					return Trial{}, err
				}
				evil = app.Package()
				evilUids = []int32{int32(app.Uid())}
				sched.Add(atk)
			}
			var steps int
			if infected {
				steps = sched.Run(func() bool { return len(def.History()) > 0 }, trialBudget)
			} else {
				horizon := dev.Clock().Now() + 20*time.Second
				steps = sched.Run(func() bool { return dev.Clock().Now() >= horizon }, trialBudget)
			}
			t := Trial{Infected: infected, Steps: int64(steps)}
			fillDetection(&t, def, func(pkg string) bool { return pkg == evil })
			t.PeakJGR = int64(dev.Stats().SystemServerPeakJGR)
			fillCausal(&t, dev, evilUids, t.ColludersCaught > 0)
			return t, nil
		},
	}
}

// colluderCell reports whether the device at index hosts a colluder
// cell (about a quarter of the fleet does).
func colluderCell(seed int64) bool {
	return (uint64(seed)>>33)%4 == 0
}

// Colluders is the Fig. 9 scenario at fleet scale: a quarter of the
// devices host a two-app colluder cell dripping registrations on the two
// fastest interfaces next to an IPC-heavy-but-benign bystander; the
// rollup separates colluders caught from innocent kills.
func Colluders() Workload {
	targets := fleetTargets(2)
	return Workload{
		Name: "fleet-colluders",
		Run: func(dev *device.Device, index int, seed int64) (Trial, error) {
			cell := colluderCell(seed)
			def, err := defense.New(dev, fleetDefense())
			if err != nil {
				return Trial{}, err
			}
			sched := workload.NewScheduler(dev)
			if _, err := workload.Population(dev, sched, 3, seed, 2*time.Second); err != nil {
				return Trial{}, err
			}
			var steps int
			var evilUids []int32
			if cell {
				for j, tgt := range targets {
					app, err := dev.Apps().Install(fmt.Sprintf("com.collude.app%d", j))
					if err != nil {
						return Trial{}, err
					}
					app.Start()
					atk, err := workload.NewAttacker(dev, app, tgt)
					if err != nil {
						return Trial{}, err
					}
					evilUids = append(evilUids, int32(app.Uid()))
					sched.Add(atk)
				}
				chatty, err := dev.Apps().Install("com.chatty.bystander")
				if err != nil {
					return Trial{}, err
				}
				chatty.Start()
				by, err := workload.NewChattyApp(dev, chatty, seed+1)
				if err != nil {
					return Trial{}, err
				}
				sched.Add(by)
				steps = sched.Run(func() bool { return len(def.History()) > 0 }, trialBudget)
			} else {
				horizon := dev.Clock().Now() + 20*time.Second
				steps = sched.Run(func() bool { return dev.Clock().Now() >= horizon }, trialBudget)
			}
			t := Trial{Infected: cell, Steps: int64(steps)}
			fillDetection(&t, def, func(pkg string) bool { return strings.HasPrefix(pkg, "com.collude.") })
			t.PeakJGR = int64(dev.Stats().SystemServerPeakJGR)
			fillCausal(&t, dev, evilUids, t.ColludersCaught > 0)
			return t, nil
		},
	}
}

// fillCausal derives the trial's causal-tracing stats from the device's
// flight recorder: the first malicious binder transaction (a transact
// span carrying an attacker uid), the first attacker-attributed JGR add,
// and the first defender engagement window. No-op (all fields zero) when
// tracing is off, so untraced fleet envelopes are unchanged. Ring
// eviction can lose the chain's head; the trial only claims TraceCausal
// when the full ordered chain survived.
func fillCausal(t *Trial, dev *device.Device, attackerUids []int32, attributed bool) {
	rec := dev.Recorder()
	if !rec.Enabled() {
		return
	}
	t.SpansDropped = int64(rec.Dropped())
	evilUid := func(uid int32) bool {
		for _, u := range attackerUids {
			if u == uid {
				return true
			}
		}
		return false
	}
	const unset = time.Duration(-1)
	firstTx, firstEv, firstWin := unset, unset, unset
	for _, s := range rec.Spans() {
		switch s.Kind {
		case trace.SpanTransact:
			if firstTx == unset && evilUid(s.Uid) {
				firstTx = s.Start
			}
		case trace.SpanJGRAdd:
			if firstEv == unset && evilUid(s.Uid) {
				firstEv = s.Start
			}
		case trace.SpanDefenderWindow:
			if firstWin == unset {
				firstWin = s.Start
			}
		}
	}
	if firstTx == unset || firstEv == unset || firstWin == unset ||
		firstEv < firstTx || firstWin < firstEv {
		return
	}
	t.TraceCausal = true
	t.AttackToEvidenceMS = int64((firstEv - firstTx) / time.Millisecond)
	t.EvidenceToDetectMS = int64((firstWin - firstEv) / time.Millisecond)
	t.AttackToDetectMS = int64((firstWin - firstTx) / time.Millisecond)
	t.Attributed = attributed
}

// fillDetection folds the defender's first engagement into the trial:
// detection and recovery timing, and the kill list split into guilty
// (per the workload's predicate) and innocent.
func fillDetection(t *Trial, def *defense.Defender, guilty func(pkg string) bool) {
	hist := def.History()
	if len(hist) == 0 {
		return
	}
	det := hist[0]
	if t.Infected {
		t.Detected = true
		t.DetectMS = int64(det.EngagedAt / time.Millisecond)
		if det.Recovered {
			t.Recovered = true
			t.RecoverMS = int64((det.EngagedAt + det.AnalysisTime) / time.Millisecond)
		}
	} else {
		t.FalseAlarm = true
	}
	for _, pkg := range det.Killed {
		if guilty(pkg) {
			t.ColludersCaught++
		} else {
			t.InnocentKills++
		}
	}
}
