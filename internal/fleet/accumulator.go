// Streaming aggregation for fleet sweeps. A fleet run never materializes
// per-device envelopes: each worker folds its chunk's trials into a
// mergeable Accumulator (integer counters plus fixed-bucket histograms),
// and the engine merges the per-chunk accumulators in chunk-index order
// into one Result. Everything is integer arithmetic until the final
// summary render, so the merged rollup is byte-identical for any worker
// count and any chunk completion order.
package fleet

// Trial is one device's outcome, produced by a Workload and folded into
// an Accumulator. All durations are virtual time in integer milliseconds
// so aggregation stays order-independent (no float sums).
type Trial struct {
	// Infected marks the device as carrying an attacker (rollout wave or
	// colluder cell); Detected/Recovered describe the defender's first
	// engagement on it.
	Infected  bool
	Detected  bool
	Recovered bool
	// FalseAlarm marks a defender engagement on a device with no
	// attacker.
	FalseAlarm bool
	// InnocentKills counts benign packages force-stopped by the
	// engagement; ColludersCaught counts colluding packages among the
	// kills.
	InnocentKills   int
	ColludersCaught int
	// DetectMS/RecoverMS are virtual milliseconds from boot to defender
	// engagement and to completed recovery (engagement + analysis).
	// Recorded only when Detected/Recovered.
	DetectMS  int64
	RecoverMS int64
	// PeakJGR is system_server's peak global-reference count; Steps is
	// how many scheduler events the trial ran.
	PeakJGR int64
	Steps   int64

	// Causal tracing stats, populated by fillCausal only when the fleet
	// runs with the flight recorder on (Config.Device.Trace.Enabled). A
	// trial with TraceCausal carries the full forensic chain: first
	// malicious transact → first attacker-attributed JGR add → defender
	// window, in virtual milliseconds.
	TraceCausal        bool
	AttackToEvidenceMS int64
	EvidenceToDetectMS int64
	AttackToDetectMS   int64
	// Attributed marks that the defender's kill list contained the
	// attacker (per-uid attribution was accurate); SpansDropped is the
	// recorder's ring-eviction count for this trial.
	Attributed   bool
	SpansDropped int64
}

// Dist is a fixed-bucket histogram with exact min/max/sum/count. Bounds
// are upper bucket edges; a value v lands in the first bucket with
// v <= bound, or the overflow bucket past the last bound. Merging two
// Dists over the same bounds is exact, which is what lets per-chunk
// rollups fold into a fleet-wide one without keeping samples.
type Dist struct {
	bounds  []int64
	Count   uint64
	Sum     int64
	Min     int64
	Max     int64
	Buckets []uint64
}

func newDist(bounds []int64) *Dist {
	return &Dist{bounds: bounds, Buckets: make([]uint64, len(bounds)+1)}
}

// Observe folds one sample into the histogram.
func (d *Dist) Observe(v int64) {
	if d.Count == 0 || v < d.Min {
		d.Min = v
	}
	if d.Count == 0 || v > d.Max {
		d.Max = v
	}
	d.Count++
	d.Sum += v
	for i, b := range d.bounds {
		if v <= b {
			d.Buckets[i]++
			return
		}
	}
	d.Buckets[len(d.bounds)]++
}

// Merge folds o into d. Both must share bounds (they always do: dists
// are only built by newAccumulator).
func (d *Dist) Merge(o *Dist) {
	if o.Count == 0 {
		return
	}
	if d.Count == 0 || o.Min < d.Min {
		d.Min = o.Min
	}
	if d.Count == 0 || o.Max > d.Max {
		d.Max = o.Max
	}
	d.Count += o.Count
	d.Sum += o.Sum
	for i, n := range o.Buckets {
		d.Buckets[i] += n
	}
}

// quantile returns the bucket-estimated q-quantile: the upper edge of
// the first bucket whose cumulative count reaches q·Count, clamped to
// the exact [Min, Max]. Deterministic, integer-only.
func (d *Dist) quantile(q float64) int64 {
	if d.Count == 0 {
		return 0
	}
	rank := uint64(q * float64(d.Count))
	if rank >= d.Count {
		rank = d.Count - 1
	}
	var cum uint64
	for i, n := range d.Buckets {
		cum += n
		if cum > rank {
			edge := d.Max
			if i < len(d.bounds) {
				edge = d.bounds[i]
			}
			if edge > d.Max {
				edge = d.Max
			}
			if edge < d.Min {
				edge = d.Min
			}
			return edge
		}
	}
	return d.Max
}

// Summary is the JSON rendering of a Dist: exact count/min/max/mean plus
// bucket-estimated percentiles. Mean is Sum/Count in float, computed
// from integers at render time, so equal rollups render equal bytes.
type Summary struct {
	Count uint64  `json:"count"`
	Min   int64   `json:"min"`
	Max   int64   `json:"max"`
	Mean  float64 `json:"mean"`
	P50   int64   `json:"p50"`
	P90   int64   `json:"p90"`
	P99   int64   `json:"p99"`
}

// summarize renders the histogram. A zero-count dist renders the zero
// Summary.
func (d *Dist) summarize() Summary {
	if d.Count == 0 {
		return Summary{}
	}
	return Summary{
		Count: d.Count,
		Min:   d.Min,
		Max:   d.Max,
		Mean:  float64(d.Sum) / float64(d.Count),
		P50:   d.quantile(0.50),
		P90:   d.quantile(0.90),
		P99:   d.quantile(0.99),
	}
}

// Histogram bounds. Milliseconds of virtual time for the defender
// latencies, reference counts for the JGR peak, event counts for steps.
var (
	boundsMS = []int64{1, 2, 5, 10, 20, 50, 100, 200, 500,
		1_000, 2_000, 5_000, 10_000, 30_000, 60_000, 300_000}
	boundsJGR = []int64{256, 512, 1_024, 1_536, 2_048, 3_072, 4_096,
		8_192, 16_384, 32_768, 65_536}
	boundsSteps = []int64{8, 16, 32, 64, 128, 256, 512, 1_024, 2_048,
		4_096, 8_192, 16_384, 65_536}
)

// Accumulator is one worker's running rollup: integer counters plus the
// four fleet histograms. Bounded memory — its size is independent of how
// many devices fold into it.
type Accumulator struct {
	Devices         int64
	Infected        int64
	Detected        int64
	Recovered       int64
	FalseAlarms     int64
	InnocentKills   int64
	ColludersCaught int64

	DetectMS  *Dist
	RecoverMS *Dist
	PeakJGR   *Dist
	Steps     *Dist

	// Causal tracing aggregates (all zero when the fleet traced nothing,
	// which is what keeps untraced envelopes unchanged).
	TraceTrials        int64
	Attributed         int64
	SpansDropped       int64
	AttackToEvidenceMS *Dist
	EvidenceToDetectMS *Dist
	AttackToDetectMS   *Dist
}

// NewAccumulator returns an empty rollup.
func NewAccumulator() *Accumulator {
	return &Accumulator{
		DetectMS:           newDist(boundsMS),
		RecoverMS:          newDist(boundsMS),
		PeakJGR:            newDist(boundsJGR),
		Steps:              newDist(boundsSteps),
		AttackToEvidenceMS: newDist(boundsMS),
		EvidenceToDetectMS: newDist(boundsMS),
		AttackToDetectMS:   newDist(boundsMS),
	}
}

// Add folds one trial in.
func (a *Accumulator) Add(t Trial) {
	a.Devices++
	if t.Infected {
		a.Infected++
	}
	if t.Detected {
		a.Detected++
		a.DetectMS.Observe(t.DetectMS)
	}
	if t.Recovered {
		a.Recovered++
		a.RecoverMS.Observe(t.RecoverMS)
	}
	if t.FalseAlarm {
		a.FalseAlarms++
	}
	a.InnocentKills += int64(t.InnocentKills)
	a.ColludersCaught += int64(t.ColludersCaught)
	a.PeakJGR.Observe(t.PeakJGR)
	a.Steps.Observe(t.Steps)
	if t.TraceCausal {
		a.TraceTrials++
		a.AttackToEvidenceMS.Observe(t.AttackToEvidenceMS)
		a.EvidenceToDetectMS.Observe(t.EvidenceToDetectMS)
		a.AttackToDetectMS.Observe(t.AttackToDetectMS)
		if t.Attributed {
			a.Attributed++
		}
	}
	a.SpansDropped += t.SpansDropped
}

// Merge folds another accumulator in. The engine calls it in chunk-index
// order; the merge itself is also commutative, so any fold order yields
// the same rollup.
func (a *Accumulator) Merge(b *Accumulator) {
	a.Devices += b.Devices
	a.Infected += b.Infected
	a.Detected += b.Detected
	a.Recovered += b.Recovered
	a.FalseAlarms += b.FalseAlarms
	a.InnocentKills += b.InnocentKills
	a.ColludersCaught += b.ColludersCaught
	a.DetectMS.Merge(b.DetectMS)
	a.RecoverMS.Merge(b.RecoverMS)
	a.PeakJGR.Merge(b.PeakJGR)
	a.Steps.Merge(b.Steps)
	a.TraceTrials += b.TraceTrials
	a.Attributed += b.Attributed
	a.SpansDropped += b.SpansDropped
	a.AttackToEvidenceMS.Merge(b.AttackToEvidenceMS)
	a.EvidenceToDetectMS.Merge(b.EvidenceToDetectMS)
	a.AttackToDetectMS.Merge(b.AttackToDetectMS)
}

// Result is the fleet-wide rollup — the envelope payload of the fleet-*
// scenarios. It carries only the run's deterministic identity (devices,
// seed, chunk size) and aggregates; nothing in it depends on the worker
// count or the slot recycling mode, which is exactly what the
// determinism suite asserts.
type Result struct {
	Workload  string `json:"workload"`
	Devices   int    `json:"devices"`
	ChunkSize int    `json:"chunk_size"`
	Seed      int64  `json:"seed"`

	Infected        int64 `json:"infected"`
	Detected        int64 `json:"detected"`
	Recovered       int64 `json:"recovered"`
	FalseAlarms     int64 `json:"false_alarms"`
	InnocentKills   int64 `json:"innocent_kills"`
	ColludersCaught int64 `json:"colluders_caught"`

	// DetectionRate is Detected/Infected; InnocentKillRate is innocent
	// kills per defender engagement; FalseAlarmRate is engagements on
	// clean devices over clean devices.
	DetectionRate    float64 `json:"detection_rate"`
	InnocentKillRate float64 `json:"innocent_kill_rate"`
	FalseAlarmRate   float64 `json:"false_alarm_rate"`

	TimeToDetectMS  Summary `json:"time_to_detect_ms"`
	TimeToRecoverMS Summary `json:"time_to_recover_ms"`
	PeakJGR         Summary `json:"peak_jgr"`
	Steps           Summary `json:"steps"`

	// Trace is the forensic rollup of causal tracing stats. It is present
	// only when the fleet ran with the flight recorder on, so tracing-off
	// envelopes are byte-identical to builds without the tracing layer.
	Trace *TraceRollup `json:"trace,omitempty"`
}

// TraceRollup aggregates the causal latencies the flight recorder
// measured across the fleet: how long the first malicious transaction
// took to leave JGR evidence, how long that evidence sat before the
// defender engaged, per-uid attribution accuracy, and the fleet-wide
// spans-dropped counter (no silent caps).
type TraceRollup struct {
	Trials             int64   `json:"trials"`
	Attributed         int64   `json:"attributed"`
	AttributionRate    float64 `json:"attribution_rate"`
	SpansDropped       int64   `json:"spans_dropped"`
	AttackToEvidenceMS Summary `json:"attack_to_evidence_ms"`
	EvidenceToDetectMS Summary `json:"evidence_to_detect_ms"`
	AttackToDetectMS   Summary `json:"attack_to_detect_ms"`
}

// FleetDevices reports the fleet width for the envelope's fleet_devices
// field (scenario.Execute sniffs this interface).
func (r *Result) FleetDevices() int { return r.Devices }

// result renders the merged accumulator.
func (a *Accumulator) result(workload string, devices, chunkSize int, seed int64) *Result {
	r := &Result{
		Workload:        workload,
		Devices:         devices,
		ChunkSize:       chunkSize,
		Seed:            seed,
		Infected:        a.Infected,
		Detected:        a.Detected,
		Recovered:       a.Recovered,
		FalseAlarms:     a.FalseAlarms,
		InnocentKills:   a.InnocentKills,
		ColludersCaught: a.ColludersCaught,
		TimeToDetectMS:  a.DetectMS.summarize(),
		TimeToRecoverMS: a.RecoverMS.summarize(),
		PeakJGR:         a.PeakJGR.summarize(),
		Steps:           a.Steps.summarize(),
	}
	if a.Infected > 0 {
		r.DetectionRate = float64(a.Detected) / float64(a.Infected)
	}
	if engagements := a.Detected + a.FalseAlarms; engagements > 0 {
		r.InnocentKillRate = float64(a.InnocentKills) / float64(engagements)
	}
	if clean := a.Devices - a.Infected; clean > 0 {
		r.FalseAlarmRate = float64(a.FalseAlarms) / float64(clean)
	}
	if a.TraceTrials > 0 || a.SpansDropped > 0 {
		tr := &TraceRollup{
			Trials:             a.TraceTrials,
			Attributed:         a.Attributed,
			SpansDropped:       a.SpansDropped,
			AttackToEvidenceMS: a.AttackToEvidenceMS.summarize(),
			EvidenceToDetectMS: a.EvidenceToDetectMS.summarize(),
			AttackToDetectMS:   a.AttackToDetectMS.summarize(),
		}
		if a.TraceTrials > 0 {
			tr.AttributionRate = float64(a.Attributed) / float64(a.TraceTrials)
		}
		r.Trace = tr
	}
	return r
}
