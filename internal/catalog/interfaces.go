package catalog

import (
	"time"

	"repro/internal/permissions"
)

// Permission short-hands for the tables below.
const (
	permAccessFineLocation = permissions.Permission("ACCESS_FINE_LOCATION")
	permUseSip             = permissions.Permission("USE_SIP")
	permBluetooth          = permissions.Permission("BLUETOOTH")
	permWakeLock           = permissions.Permission("WAKE_LOCK")
	permGetPackageSize     = permissions.Permission("GET_PACKAGE_SIZE")
	permReadPhoneState     = permissions.Permission("READ_PHONE_STATE")
	permChangeNetState     = permissions.Permission("CHANGE_NETWORK_STATE")
	permAccessNetState     = permissions.Permission("ACCESS_NETWORK_STATE")
	permChangeWifiMulti    = permissions.Permission("CHANGE_WIFI_MULTICAST_STATE")
	permAccessLauncherApps = permissions.Permission("ACCESS_LAUNCHER_APPS")
)

// PermissionLevels lists every permission the catalog references with its
// AOSP 6.0.1 protection level; the device installs these definitions at
// boot and the analysis's PScout-style permission map is derived from it.
var PermissionLevels = map[permissions.Permission]permissions.Level{
	permAccessFineLocation: permissions.LevelDangerous,
	permUseSip:             permissions.LevelDangerous,
	permReadPhoneState:     permissions.LevelDangerous,
	permBluetooth:          permissions.LevelNormal,
	permWakeLock:           permissions.LevelNormal,
	permGetPackageSize:     permissions.LevelNormal,
	permChangeNetState:     permissions.LevelNormal,
	permAccessNetState:     permissions.LevelNormal,
	permChangeWifiMulti:    permissions.LevelNormal,
	permAccessLauncherApps: permissions.LevelNormal,
}

// unprotectedRows transcribes Table I: the 44 unprotected vulnerable IPC
// interfaces across 26 system services, with the permission (and
// protection level) each requires in AOSP 6.0.1.
var unprotectedRows = []Interface{
	{Service: "location", Method: "addGpsStatusListener", Permission: permAccessFineLocation, PermLevel: permissions.LevelDangerous},
	{Service: "sip", Method: "open3", Permission: permUseSip, PermLevel: permissions.LevelDangerous,
		Cost: CostModel{AttackSeconds: 1600, AnalysisWeight: 2.6}},
	{Service: "sip", Method: "createSession", Permission: permUseSip, PermLevel: permissions.LevelDangerous},
	{Service: "midi", Method: "registerListener"},
	{Service: "midi", Method: "openDevice"},
	{Service: "midi", Method: "openBluetoothDevice"},
	{Service: "midi", Method: "registerDeviceServer",
		Cost: CostModel{AttackSeconds: 1750, AnalysisWeight: 9.5}},
	{Service: "content", Method: "registerContentObserver"},
	{Service: "content", Method: "addStatusChangeListener"},
	{Service: "mount", Method: "registerListener"},
	{Service: "appops", Method: "startWatchingMode"},
	{Service: "appops", Method: "getToken"},
	{Service: "bluetooth_manager", Method: "registerAdapter"},
	{Service: "bluetooth_manager", Method: "registerStateChangeCallback", Permission: permBluetooth, PermLevel: permissions.LevelNormal},
	{Service: "bluetooth_manager", Method: "bindBluetoothProfileService"},
	// Table I lists bindBluetoothProfileService twice: the service
	// exposes two vulnerable overloads.
	{Service: "bluetooth_manager", Method: "bindBluetoothProfileService(int)"},
	{Service: "audio", Method: "registerRemoteController"},
	{Service: "audio", Method: "startWatchingRoutes",
		// The fastest attack of Fig. 3: exhaustion in ≈100 s.
		Cost: CostModel{ExecBase: 1200 * time.Microsecond, Jitter: 600 * time.Microsecond, AttackSeconds: 100}},
	{Service: "country_detector", Method: "addCountryListener"},
	{Service: "power", Method: "acquireWakeLock", Permission: permWakeLock, PermLevel: permissions.LevelNormal},
	{Service: "input_method", Method: "addClient"},
	{Service: "accessibility", Method: "addAccessibilityInteractionConnection"},
	{Service: "print", Method: "print"},
	{Service: "print", Method: "addPrintJobStateChangeListener"},
	{Service: "print", Method: "createPrinterDiscoverySession"},
	{Service: "package", Method: "getPackageSizeInfo", Permission: permGetPackageSize, PermLevel: permissions.LevelNormal},
	{Service: "telephony.registry", Method: "addOnSubscriptionsChangedListener", Permission: permReadPhoneState, PermLevel: permissions.LevelDangerous},
	{Service: "telephony.registry", Method: "listen", Permission: permReadPhoneState, PermLevel: permissions.LevelDangerous},
	{Service: "telephony.registry", Method: "listenForSubscriber", Permission: permReadPhoneState, PermLevel: permissions.LevelDangerous,
		// Fig. 5's subject: the handler scans its stored registrations,
		// so per-call cost grows from ≈1 ms to ≈55 ms across a
		// 50,236-call attack.
		Cost: CostModel{ExecBase: 900 * time.Microsecond, ExecSlope: 1050 * time.Nanosecond, Jitter: 800 * time.Microsecond, AttackSeconds: 1400}},
	{Service: "media_session", Method: "registerCallbackListener"},
	{Service: "media_session", Method: "createSession"},
	{Service: "media_router", Method: "registerClientAsUser"},
	{Service: "media_projection", Method: "registerCallback"},
	{Service: "input", Method: "vibrate"},
	{Service: "window", Method: "watchRotation"},
	{Service: "wallpaper", Method: "getWallpaper"},
	{Service: "fingerprint", Method: "addLockoutResetCallback"},
	{Service: "textservices", Method: "getSpellCheckerService"},
	{Service: "network_management", Method: "registerNetworkActivityListener", Permission: permChangeNetState, PermLevel: permissions.LevelNormal},
	{Service: "connectivity", Method: "requestNetwork", Permission: permChangeNetState, PermLevel: permissions.LevelNormal},
	{Service: "connectivity", Method: "listenForNetwork", Permission: permAccessNetState, PermLevel: permissions.LevelNormal},
	{Service: "activity", Method: "registerTaskStackListener"},
	{Service: "activity", Method: "registerReceiver"},
	{Service: "activity", Method: "bindService"},
}

// helperGuardRows transcribes Table II: the 9 interfaces guarded only in
// their service helper classes. Every one is bypassable by talking to the
// raw binder (paper §IV-C1: "We verify that all 9 vulnerable interfaces in
// Table II still can be exploited").
var helperGuardRows = []Interface{
	{Service: "clipboard", Method: "addPrimaryClipChangedListener", HelperClass: "ClipboardManager", GuardLimit: 20},
	{Service: "accessibility", Method: "addClient", HelperClass: "AccessibilityManager", GuardLimit: 1},
	{Service: "launcherapps", Method: "addOnAppsChangedListener", HelperClass: "LauncherApps", GuardLimit: 16,
		Permission: permAccessLauncherApps, PermLevel: permissions.LevelNormal},
	{Service: "tv_input", Method: "registerCallback", HelperClass: "TvInputManager", GuardLimit: 8},
	{Service: "ethernet", Method: "addListener", HelperClass: "EthernetManager", GuardLimit: 8,
		Permission: permAccessNetState, PermLevel: permissions.LevelNormal},
	// WifiManager's MAX_ACTIVE_LOCKS = 50, added explicitly "to prevent
	// apps from creating a ridiculous number of locks and crashing the
	// system by overflowing the global ref table" (Code-Snippet 1).
	{Service: "wifi", Method: "acquireWifiLock", HelperClass: "WifiManager", GuardLimit: 50,
		Permission: permWakeLock, PermLevel: permissions.LevelNormal},
	{Service: "wifi", Method: "acquireMulticastLock", HelperClass: "WifiManager", GuardLimit: 50,
		Permission: permChangeWifiMulti, PermLevel: permissions.LevelNormal},
	{Service: "location", Method: "addGpsMeasurementsListener", HelperClass: "LocationManager", GuardLimit: 4,
		Permission: permAccessFineLocation, PermLevel: permissions.LevelDangerous},
	{Service: "location", Method: "addGpsNavigationMessageListener", HelperClass: "LocationManager", GuardLimit: 4,
		Permission: permAccessFineLocation, PermLevel: permissions.LevelDangerous},
}

// perProcessRows transcribes Table III: the 4 interfaces protected by a
// per-process constraint in the service itself. Three are implemented
// correctly; NotificationManagerService.enqueueToast exempts "system
// toasts" based on a caller-supplied package string, so passing "android"
// bypasses the quota (Code-Snippet 3).
var perProcessRows = []Interface{
	{Service: "notification", Method: "enqueueToast", GuardLimit: 50,
		Bypassable: true,
		BypassNote: `caller-supplied package name: passing "android" marks the toast as a system toast and skips the MAX_PACKAGE_NOTIFICATIONS check`,
		// The slowest attack of Fig. 3: ≈1,800 s to exhaustion.
		Cost: CostModel{ExecBase: 2500 * time.Microsecond, Jitter: 1800 * time.Microsecond, AttackSeconds: 1800, AnalysisWeight: 2.6}},
	{Service: "display", Method: "registerCallback", GuardLimit: 1},
	{Service: "input", Method: "registerInputDevicesChangedListener", GuardLimit: 1},
	{Service: "input", Method: "registerTabletModeChangedListener", GuardLimit: 1},
}

// ifaces is the assembled system-service interface ground truth.
var ifaces = assembleInterfaces()

func assembleInterfaces() []Interface {
	var out []Interface
	for _, r := range unprotectedRows {
		r.Protection = Unprotected
		r.RetainsBinder = true
		r.Bypassable = false
		out = append(out, finishCost(r))
	}
	for _, r := range helperGuardRows {
		r.Protection = HelperGuard
		r.RetainsBinder = true
		r.Bypassable = true
		if r.BypassNote == "" {
			r.BypassNote = "helper-class quota runs in the caller's process; call the binder interface directly (Code-Snippet 2)"
		}
		out = append(out, finishCost(r))
	}
	for _, r := range perProcessRows {
		r.Protection = PerProcessGuard
		r.RetainsBinder = true
		out = append(out, finishCost(r))
	}
	return out
}

// Interfaces returns all catalogued system-service interface rows
// (Tables I–III; 57 rows, of which 54 are exploitable).
func Interfaces() []Interface {
	out := make([]Interface, len(ifaces))
	copy(out, ifaces)
	return out
}

// InterfaceByName returns the row for "service.method".
func InterfaceByName(full string) (Interface, bool) {
	for _, i := range ifaces {
		if i.FullName() == full {
			return i, true
		}
	}
	return Interface{}, false
}

// ExploitableInterfaces returns the rows a third-party app can drive to
// exhaustion — the paper's 54.
func ExploitableInterfaces() []Interface {
	var out []Interface
	for _, i := range ifaces {
		if i.Exploitable() {
			out = append(out, i)
		}
	}
	return out
}

// VulnerableServiceNames returns the names of services with at least one
// exploitable interface — the paper's 32.
func VulnerableServiceNames() []string {
	seen := make(map[string]bool)
	var out []string
	for _, i := range ifaces {
		if i.Exploitable() && !seen[i.Service] {
			seen[i.Service] = true
			out = append(out, i.Service)
		}
	}
	return out
}

// InterfacesForService returns all catalogued rows of one service.
func InterfacesForService(service string) []Interface {
	var out []Interface
	for _, i := range ifaces {
		if i.Service == service {
			out = append(out, i)
		}
	}
	return out
}

// prebuiltAppRows transcribes Table IV: 3 vulnerable interfaces in 2 of
// the 88 prebuilt core apps.
var prebuiltAppRows = []AppInterface{
	{App: "PicoTts", Package: "com.svox.pico", CodePath: "external/svox/pico",
		Method: "PicoService.setCallback()", Prebuilt: true,
		Cost: CostModel{ExecBase: 700 * time.Microsecond, Jitter: 500 * time.Microsecond, AttackSeconds: 260, AnalysisWeight: 1}},
	{App: "Bluetooth", Package: "com.android.bluetooth", CodePath: "packages/apps/Bluetooth",
		Method: "GattService.registerServer()", Prebuilt: true,
		Cost: CostModel{ExecBase: 900 * time.Microsecond, Jitter: 700 * time.Microsecond, AttackSeconds: 340, AnalysisWeight: 1}},
	{App: "Bluetooth", Package: "com.android.bluetooth", CodePath: "packages/apps/Bluetooth",
		Method: "AdapterService.registerCallback()", Prebuilt: true,
		Cost: CostModel{ExecBase: 800 * time.Microsecond, Jitter: 650 * time.Microsecond, AttackSeconds: 300, AnalysisWeight: 1}},
}

// thirdPartyAppRows transcribes Table V: 3 vulnerable apps among 1,000
// scanned from Google Play.
var thirdPartyAppRows = []AppInterface{
	{App: "Google Text-to-speech", Package: "com.google.android.tts",
		Method: "TextToSpeechService.setCallback()", Downloads: "1e9–5e9",
		Cost: CostModel{ExecBase: 700 * time.Microsecond, Jitter: 500 * time.Microsecond, AttackSeconds: 270, AnalysisWeight: 1}},
	{App: "Supernet VPN", Package: "com.supernet.vpn",
		Method: "IOpenVPNAPIService.registerStatusCallback()", Downloads: "1e6–5e6",
		Cost: CostModel{ExecBase: 1100 * time.Microsecond, Jitter: 900 * time.Microsecond, AttackSeconds: 420, AnalysisWeight: 1}},
	{App: "SnapMovie", Package: "com.snapmovie.app",
		Method: "IMainService.a()", Downloads: "1e6–5e6",
		Cost: CostModel{ExecBase: 600 * time.Microsecond, Jitter: 400 * time.Microsecond, AttackSeconds: 210, AnalysisWeight: 1}},
}

// PrebuiltAppInterfaces returns Table IV.
func PrebuiltAppInterfaces() []AppInterface {
	out := make([]AppInterface, len(prebuiltAppRows))
	copy(out, prebuiltAppRows)
	return out
}

// ThirdPartyAppInterfaces returns Table V.
func ThirdPartyAppInterfaces() []AppInterface {
	out := make([]AppInterface, len(thirdPartyAppRows))
	copy(out, thirdPartyAppRows)
	return out
}

// PrebuiltAppCount is the number of prebuilt core apps on the studied
// build (paper §IV-D: "Among 88 prebuilt core apps...").
const PrebuiltAppCount = 88

// ThirdPartyScanCount is the number of Google Play apps the paper's scan
// covered (§IV-D).
const ThirdPartyScanCount = 1000

// JGRThreshold is the runtime's global-reference cap, re-exported here so
// report code does not need to import internal/art.
const JGRThreshold = 51200

// Native call-graph funnel constants (paper §III-B1): the static search
// finds 147 paths from JNI methods to IndirectReferenceTable::Add, of
// which 67 are reachable only during runtime initialization (class
// caching etc.) and are filtered out, leaving 80 exploitable entry paths.
const (
	NativeAddPaths       = 147
	NativeInitOnlyPaths  = 67
	NativeReachablePaths = NativeAddPaths - NativeInitOnlyPaths
)
