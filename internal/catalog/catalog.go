// Package catalog is the single source of truth for the Android 6.0.1
// inventory the paper studies: the 104 system services, the 57 vulnerable
// system-service IPC interfaces of Tables I–III, the per-interface
// protections Android had shipped (service-helper guards and per-process
// constraints), the vulnerable prebuilt apps of Table IV and third-party
// apps of Table V, and the per-interface cost-model parameters that drive
// the attack-dynamics figures (Figs. 3, 5, 6).
//
// Both sides of the reproduction derive from this package: the executable
// device simulation (internal/services, internal/apps) instantiates the
// services it describes, and the synthetic AOSP corpus
// (internal/corpus) generates the program model the static analysis
// pipeline is run against. The analysis is validated by recovering this
// catalog's ground truth without reading it.
package catalog

import (
	"fmt"
	"hash/fnv"
	"time"

	"repro/internal/permissions"
)

// Protection classifies Android's shipped defense for an interface
// (paper §IV-B, §IV-C).
type Protection int

const (
	// Unprotected interfaces have no JGR-related guard at all (Table I).
	Unprotected Protection = iota
	// HelperGuard interfaces are guarded only inside the service helper
	// class running in the *caller's* process (Table II) — trivially
	// bypassed by talking to the raw binder interface.
	HelperGuard
	// PerProcessGuard interfaces enforce a per-caller quota inside the
	// service itself (Table III) — effective unless the check has an
	// implementation flaw.
	PerProcessGuard
)

// String names the protection kind.
func (p Protection) String() string {
	switch p {
	case Unprotected:
		return "unprotected"
	case HelperGuard:
		return "helper-guard"
	case PerProcessGuard:
		return "per-process-guard"
	default:
		return fmt.Sprintf("Protection(%d)", int(p))
	}
}

// Service describes one entry of the 104-service census.
type Service struct {
	// Name is the ServiceManager registration name (e.g. "clipboard").
	Name string
	// Class is the implementing class, used by the synthetic corpus.
	Class string
	// Native marks the services implemented in native code and
	// registered through ServiceManager::addService (paper §III-A finds
	// 5 of them).
	Native bool
	// OwnProcess names a dedicated host process; empty means the service
	// runs as a thread of system_server and shares its JGR table.
	OwnProcess string
}

// HostProcess returns the process the service runs in.
func (s Service) HostProcess() string {
	if s.OwnProcess != "" {
		return s.OwnProcess
	}
	return "system_server"
}

// CostModel parameterizes the virtual-time behaviour of one interface.
type CostModel struct {
	// ExecBase is the service-side execution time of one call on an
	// empty listener table.
	ExecBase time.Duration
	// ExecSlope is the extra execution time per stored entry; non-zero
	// values reproduce Fig. 5's growth for interfaces whose handler
	// scans its stored data.
	ExecSlope time.Duration
	// Jitter bounds the uniform random deviation added per call — the
	// paper's Δ (§V, Observation 2). Δ averaged over all services is
	// ≈1.8 ms (§V-C).
	Jitter time.Duration
	// AttackSeconds is the Fig. 3 target: roughly how long a dedicated
	// attacker needs to drive the victim's JGR table from its baseline
	// to the 51,200 cap through this interface. The fastest observed is
	// ≈100 s, the slowest ≈1,800 s.
	AttackSeconds int
	// AnalysisWeight scales the defender's per-record correlation work
	// for calls of this interface (wider candidate-delay windows cost
	// more); it reproduces §V-D1's detection-delay outliers.
	AnalysisWeight float64
}

// Interface describes one IPC interface of a system service, with its
// vulnerability ground truth.
type Interface struct {
	// Service is the ServiceManager name of the owning service.
	Service string
	// Method is the IPC method name as the paper's tables print it.
	Method string
	// Permission is the permission required to call the interface; empty
	// means none. Short form, without the android.permission. prefix.
	Permission permissions.Permission
	// PermLevel is the permission's protection level in AOSP 6.0.1.
	PermLevel permissions.Level

	// RetainsBinder marks interfaces that keep a caller-supplied binder
	// alive after the call returns — the necessary condition for JGRE.
	RetainsBinder bool
	// Protection is Android's shipped guard for this interface.
	Protection Protection
	// HelperClass is the guard's helper class for HelperGuard rows
	// (Table II).
	HelperClass string
	// GuardLimit is the quota the guard enforces (e.g. WifiManager's
	// MAX_ACTIVE_LOCKS = 50, InputManagerService's 1 per process).
	GuardLimit int
	// Bypassable reports whether the shipped guard can be circumvented
	// by a malicious app. All HelperGuard rows are bypassable (call the
	// binder directly); of the PerProcessGuard rows only enqueueToast is
	// (spoof the "android" package name, Code-Snippet 3).
	Bypassable bool
	// BypassNote documents the circumvention for reports.
	BypassNote string

	// Cost drives the attack-dynamics simulation.
	Cost CostModel
}

// Exploitable reports whether a third-party app can actually drive this
// interface to JGR exhaustion: it must retain binders and its guard (if
// any) must be bypassable. Permission reachability is checked separately
// against the attacker's grants.
func (i Interface) Exploitable() bool {
	if !i.RetainsBinder {
		return false
	}
	switch i.Protection {
	case Unprotected:
		return true
	default:
		return i.Bypassable
	}
}

// FullName returns "service.method" for reports and map keys.
func (i Interface) FullName() string { return i.Service + "." + i.Method }

// AppInterface describes a vulnerable IPC interface exposed by an app
// (Table IV prebuilt apps, Table V third-party apps).
type AppInterface struct {
	// App is the application name as the paper prints it.
	App string
	// Package is the Android package / process name.
	Package string
	// CodePath is the AOSP path for prebuilt apps, "" for third-party.
	CodePath string
	// Method is the vulnerable IPC method (class-qualified).
	Method string
	// Prebuilt distinguishes Table IV (true) from Table V (false).
	Prebuilt bool
	// Downloads is the Google Play install-count range for Table V rows.
	Downloads string
	// Cost drives the attack simulation against the app's process.
	Cost CostModel
}

// FullName returns "package.Method".
func (a AppInterface) FullName() string { return a.Package + "." + a.Method }

// spread deterministically maps a name into [lo, hi], used to assign
// plausible per-interface parameters that are stable across runs.
func spread(name string, lo, hi int64) int64 {
	h := fnv.New64a()
	h.Write([]byte(name))
	span := hi - lo + 1
	return lo + int64(h.Sum64()%uint64(span))
}

// defaultCost fills a cost model for an interface without hand-tuned
// parameters: execution time in the few-hundred-µs-to-few-ms band of
// Fig. 6, Δ spread so the fleet averages ≈1.8 ms, and a Fig. 3 attack
// duration between the observed 100 s and 1,800 s envelope.
func defaultCost(fullName string) CostModel {
	return CostModel{
		ExecBase:       time.Duration(spread(fullName+"/base", 250, 2800)) * time.Microsecond,
		ExecSlope:      0,
		Jitter:         time.Duration(spread(fullName+"/jitter", 150, 3450)) * time.Microsecond,
		AttackSeconds:  int(spread(fullName+"/attack", 120, 1300)),
		AnalysisWeight: 1.0,
	}
}

// attackCallsEstimate is roughly how many retaining calls exhaust a
// system_server table from its resting baseline (two references — proxy
// plus death recipient — per call).
const attackCallsEstimate = (JGRThreshold - 1500) / 2

// withCost returns iface with its cost model defaulted (and the provided
// overrides applied when non-zero).
func finishCost(iface Interface) Interface {
	def := defaultCost(iface.FullName())
	c := &iface.Cost
	if c.ExecBase == 0 {
		c.ExecBase = def.ExecBase
	}
	if c.Jitter == 0 {
		c.Jitter = def.Jitter
	}
	if c.AttackSeconds == 0 {
		c.AttackSeconds = def.AttackSeconds
	}
	if c.AnalysisWeight == 0 {
		c.AnalysisWeight = def.AnalysisWeight
	}
	// An attack can never run faster than the interface's own busy time
	// per call allows; keep the Fig. 3 target reachable so the realized
	// durations respect the catalogued ordering (fastest ≈100 s).
	busyPerCall := 150*time.Microsecond + c.ExecBase + c.Jitter/2
	if floor := int(busyPerCall*attackCallsEstimate/time.Second) + 2; c.AttackSeconds < floor {
		c.AttackSeconds = floor
	}
	return iface
}
