package catalog

import (
	"testing"
	"time"

	"repro/internal/permissions"
)

// TestCensusTotals pins the paper's headline inventory numbers.
func TestCensusTotals(t *testing.T) {
	if got := len(Services()); got != 104 {
		t.Errorf("service census = %d, want 104", got)
	}
	if got := len(NativeServices()); got != 5 {
		t.Errorf("native services = %d, want 5 (paper §III-A)", got)
	}
	if got := len(Interfaces()); got != 57 {
		t.Errorf("catalogued system-service interfaces = %d, want 57 (44+9+4)", got)
	}
	if got := len(ExploitableInterfaces()); got != 54 {
		t.Errorf("exploitable interfaces = %d, want 54", got)
	}
	if got := len(VulnerableServiceNames()); got != 32 {
		t.Errorf("vulnerable services = %d, want 32", got)
	}
}

func TestProtectionBreakdown(t *testing.T) {
	var unprot, helper, perProc, protStillVuln int
	for _, i := range Interfaces() {
		switch i.Protection {
		case Unprotected:
			unprot++
		case HelperGuard:
			helper++
			if !i.Bypassable {
				t.Errorf("%s: helper guards are always bypassable", i.FullName())
			}
		case PerProcessGuard:
			perProc++
		}
		if i.Protection != Unprotected && i.Exploitable() {
			protStillVuln++
		}
	}
	if unprot != 44 {
		t.Errorf("unprotected (Table I) = %d, want 44", unprot)
	}
	if helper != 9 {
		t.Errorf("helper-guarded (Table II) = %d, want 9", helper)
	}
	if perProc != 4 {
		t.Errorf("per-process-guarded (Table III) = %d, want 4", perProc)
	}
	if protStillVuln != 10 {
		t.Errorf("protected-but-still-vulnerable = %d, want 10 (paper §I)", protStillVuln)
	}
}

// TestZeroPermissionServices pins "22 system services can be successfully
// attacked without any permission support" (paper abstract).
func TestZeroPermissionServices(t *testing.T) {
	seen := make(map[string]bool)
	for _, i := range Interfaces() {
		if i.Exploitable() && i.Permission == "" {
			seen[i.Service] = true
		}
	}
	if len(seen) != 22 {
		t.Errorf("zero-permission attackable services = %d, want 22 (%v)", len(seen), seen)
	}
}

// TestPermissionLevelBands pins Table I's summary: of the 26 unprotected
// vulnerable services, 19 need no permission, 4 need normal-level
// permissions and 3 need dangerous-level permissions.
func TestPermissionLevelBands(t *testing.T) {
	best := make(map[string]permissions.Level) // weakest requirement per service
	for _, i := range Interfaces() {
		if i.Protection != Unprotected {
			continue
		}
		lvl, ok := best[i.Service]
		if !ok || i.PermLevel < lvl {
			best[i.Service] = i.PermLevel
		}
	}
	if len(best) != 26 {
		t.Fatalf("unprotected vulnerable services = %d, want 26", len(best))
	}
	var none, normal, dangerous int
	for _, lvl := range best {
		switch lvl {
		case permissions.LevelNone:
			none++
		case permissions.LevelNormal:
			normal++
		case permissions.LevelDangerous:
			dangerous++
		}
	}
	if none != 19 || normal != 4 || dangerous != 3 {
		t.Errorf("bands = %d/%d/%d, want 19 none / 4 normal / 3 dangerous", none, normal, dangerous)
	}
}

func TestEveryInterfaceServiceExists(t *testing.T) {
	for _, i := range Interfaces() {
		if _, ok := ServiceByName(i.Service); !ok {
			t.Errorf("%s: service %q not in census", i.FullName(), i.Service)
		}
	}
}

func TestInterfaceKeysUnique(t *testing.T) {
	seen := make(map[string]bool)
	for _, i := range Interfaces() {
		if seen[i.FullName()] {
			t.Errorf("duplicate interface key %s", i.FullName())
		}
		seen[i.FullName()] = true
	}
}

func TestServiceNamesUnique(t *testing.T) {
	seen := make(map[string]bool)
	for _, s := range Services() {
		if seen[s.Name] {
			t.Errorf("duplicate service name %s", s.Name)
		}
		seen[s.Name] = true
	}
}

func TestPermissionConsistency(t *testing.T) {
	for _, i := range Interfaces() {
		if i.Permission == "" {
			if i.PermLevel != permissions.LevelNone {
				t.Errorf("%s: no permission but level %v", i.FullName(), i.PermLevel)
			}
			continue
		}
		want, ok := PermissionLevels[i.Permission]
		if !ok {
			t.Errorf("%s: permission %s not in PermissionLevels", i.FullName(), i.Permission)
			continue
		}
		if i.PermLevel != want {
			t.Errorf("%s: level %v, PermissionLevels says %v", i.FullName(), i.PermLevel, want)
		}
	}
}

func TestCostModelEnvelope(t *testing.T) {
	var fastest, slowest Interface
	var jitterSum time.Duration
	for _, i := range Interfaces() {
		c := i.Cost
		if c.ExecBase <= 0 || c.Jitter <= 0 || c.AttackSeconds <= 0 || c.AnalysisWeight <= 0 {
			t.Errorf("%s: incomplete cost model %+v", i.FullName(), c)
		}
		if c.AttackSeconds < 100 || c.AttackSeconds > 1800 {
			t.Errorf("%s: AttackSeconds %d outside Fig. 3 envelope [100, 1800]", i.FullName(), c.AttackSeconds)
		}
		if fastest.Service == "" || c.AttackSeconds < fastest.Cost.AttackSeconds {
			fastest = i
		}
		if slowest.Service == "" || c.AttackSeconds > slowest.Cost.AttackSeconds {
			slowest = i
		}
		jitterSum += c.Jitter
	}
	if fastest.FullName() != "audio.startWatchingRoutes" {
		t.Errorf("fastest attack = %s, want audio.startWatchingRoutes (paper §IV-A)", fastest.FullName())
	}
	if slowest.FullName() != "notification.enqueueToast" {
		t.Errorf("slowest attack = %s, want notification.enqueueToast (paper §IV-A)", slowest.FullName())
	}
	// §V-C sets Δ to the all-services average of 1.8 ms; the catalogued
	// jitters must average in that neighbourhood.
	avg := jitterSum / time.Duration(len(Interfaces()))
	if avg < 1200*time.Microsecond || avg > 2400*time.Microsecond {
		t.Errorf("average Δ = %v, want ≈1.8 ms", avg)
	}
}

func TestFig5SubjectHasGrowingCost(t *testing.T) {
	i, ok := InterfaceByName("telephony.registry.listenForSubscriber")
	if !ok {
		t.Fatal("listenForSubscriber missing")
	}
	if i.Cost.ExecSlope <= 0 {
		t.Fatal("listenForSubscriber needs a positive ExecSlope to reproduce Fig. 5")
	}
	// At 50,000 stored entries the per-call cost must be in the tens of
	// milliseconds, as Fig. 5 shows.
	at50k := i.Cost.ExecBase + 50000*i.Cost.ExecSlope
	if at50k < 30*time.Millisecond || at50k > 90*time.Millisecond {
		t.Errorf("cost at 50k entries = %v, want tens of ms", at50k)
	}
}

func TestWifiGuardMatchesCodeSnippet1(t *testing.T) {
	i, ok := InterfaceByName("wifi.acquireWifiLock")
	if !ok {
		t.Fatal("acquireWifiLock missing")
	}
	if i.Protection != HelperGuard || i.HelperClass != "WifiManager" || i.GuardLimit != 50 {
		t.Errorf("wifi guard = %+v, want WifiManager helper with MAX_ACTIVE_LOCKS=50", i)
	}
	if !i.Exploitable() {
		t.Error("acquireWifiLock must remain exploitable despite the helper guard")
	}
}

func TestEnqueueToastBypass(t *testing.T) {
	i, ok := InterfaceByName("notification.enqueueToast")
	if !ok {
		t.Fatal("enqueueToast missing")
	}
	if i.Protection != PerProcessGuard || !i.Bypassable || !i.Exploitable() {
		t.Errorf("enqueueToast = %+v, want bypassable per-process guard", i)
	}
	// The other three per-process rows hold.
	for _, name := range []string{
		"display.registerCallback",
		"input.registerInputDevicesChangedListener",
		"input.registerTabletModeChangedListener",
	} {
		j, ok := InterfaceByName(name)
		if !ok {
			t.Fatalf("%s missing", name)
		}
		if j.Exploitable() {
			t.Errorf("%s: correctly-implemented per-process guard must not be exploitable", name)
		}
	}
}

func TestAppTables(t *testing.T) {
	pre := PrebuiltAppInterfaces()
	if len(pre) != 3 {
		t.Fatalf("Table IV rows = %d, want 3", len(pre))
	}
	apps := make(map[string]bool)
	for _, a := range pre {
		if !a.Prebuilt {
			t.Errorf("%s: not marked prebuilt", a.FullName())
		}
		if a.CodePath == "" {
			t.Errorf("%s: prebuilt app needs an AOSP code path", a.FullName())
		}
		apps[a.App] = true
	}
	if len(apps) != 2 {
		t.Errorf("Table IV apps = %d, want 2 (PicoTts, Bluetooth)", len(apps))
	}
	tp := ThirdPartyAppInterfaces()
	if len(tp) != 3 {
		t.Fatalf("Table V rows = %d, want 3", len(tp))
	}
	for _, a := range tp {
		if a.Prebuilt || a.Downloads == "" {
			t.Errorf("%s: Table V row malformed: %+v", a.FullName(), a)
		}
	}
}

func TestInterfacesForService(t *testing.T) {
	midi := InterfacesForService("midi")
	if len(midi) != 4 {
		t.Fatalf("midi interfaces = %d, want 4", len(midi))
	}
	if got := InterfacesForService("no_such_service"); got != nil {
		t.Fatalf("unknown service returned %v", got)
	}
}

func TestNativeFunnelConstants(t *testing.T) {
	if NativeAddPaths != 147 || NativeInitOnlyPaths != 67 || NativeReachablePaths != 80 {
		t.Fatalf("native funnel constants = %d/%d/%d, want 147/67/80",
			NativeAddPaths, NativeInitOnlyPaths, NativeReachablePaths)
	}
}

func TestHostProcess(t *testing.T) {
	s, _ := ServiceByName("clipboard")
	if s.HostProcess() != "system_server" {
		t.Errorf("clipboard host = %s, want system_server", s.HostProcess())
	}
	m, _ := ServiceByName("media.player")
	if m.HostProcess() != "mediaserver" || !m.Native {
		t.Errorf("media.player = %+v, want native in mediaserver", m)
	}
}

func TestSpreadDeterministicAndBounded(t *testing.T) {
	a := spread("x", 10, 20)
	b := spread("x", 10, 20)
	if a != b {
		t.Fatal("spread not deterministic")
	}
	for _, name := range []string{"a", "b", "c", "longer.name", ""} {
		v := spread(name, 5, 9)
		if v < 5 || v > 9 {
			t.Fatalf("spread(%q) = %d outside [5, 9]", name, v)
		}
	}
}
