package catalog

// services is the 104-service census of AOSP 6.0.1 (paper §I: "among the
// 104 system services in Android 6.0.1, 32 system services have 54
// vulnerabilities"). Names follow `service list` on a 6.0.1 build; the
// implementing classes are the AOSP ones for the services the paper
// discusses and representative ones elsewhere. Five services are native
// (§III-A: "we discover 5 native system services whose classes provide
// IPC interfaces through the ServiceManager::addService native method");
// they run outside system_server in mediaserver or their own daemon.
var services = []Service{
	// Services with vulnerable interfaces (Tables I–III). All run in
	// system_server unless noted.
	{Name: "location", Class: "com.android.server.LocationManagerService"},
	{Name: "sip", Class: "com.android.server.sip.SipService"},
	{Name: "midi", Class: "com.android.server.midi.MidiService"},
	{Name: "content", Class: "com.android.server.content.ContentService"},
	{Name: "mount", Class: "com.android.server.MountService"},
	{Name: "appops", Class: "com.android.server.AppOpsService"},
	{Name: "bluetooth_manager", Class: "com.android.server.BluetoothManagerService"},
	{Name: "audio", Class: "com.android.server.audio.AudioService"},
	{Name: "country_detector", Class: "com.android.server.CountryDetectorService"},
	{Name: "power", Class: "com.android.server.power.PowerManagerService"},
	{Name: "input_method", Class: "com.android.server.InputMethodManagerService"},
	{Name: "accessibility", Class: "com.android.server.accessibility.AccessibilityManagerService"},
	{Name: "print", Class: "com.android.server.print.PrintManagerService"},
	{Name: "package", Class: "com.android.server.pm.PackageManagerService"},
	{Name: "telephony.registry", Class: "com.android.server.TelephonyRegistry"},
	{Name: "media_session", Class: "com.android.server.media.MediaSessionService"},
	{Name: "media_router", Class: "com.android.server.media.MediaRouterService"},
	{Name: "media_projection", Class: "com.android.server.media.projection.MediaProjectionManagerService"},
	{Name: "input", Class: "com.android.server.input.InputManagerService"},
	{Name: "window", Class: "com.android.server.wm.WindowManagerService"},
	{Name: "wallpaper", Class: "com.android.server.wallpaper.WallpaperManagerService"},
	{Name: "fingerprint", Class: "com.android.server.fingerprint.FingerprintService"},
	{Name: "textservices", Class: "com.android.server.TextServicesManagerService"},
	{Name: "network_management", Class: "com.android.server.NetworkManagementService"},
	{Name: "connectivity", Class: "com.android.server.ConnectivityService"},
	{Name: "activity", Class: "com.android.server.am.ActivityManagerService"},
	{Name: "clipboard", Class: "com.android.server.clipboard.ClipboardService"},
	{Name: "launcherapps", Class: "com.android.server.pm.LauncherAppsService"},
	{Name: "tv_input", Class: "com.android.server.tv.TvInputManagerService"},
	{Name: "ethernet", Class: "com.android.server.ethernet.EthernetServiceImpl"},
	{Name: "wifi", Class: "com.android.server.wifi.WifiServiceImpl"},
	{Name: "notification", Class: "com.android.server.notification.NotificationManagerService"},

	// Remaining (non-vulnerable) system_server services.
	{Name: "account", Class: "com.android.server.accounts.AccountManagerService"},
	{Name: "alarm", Class: "com.android.server.AlarmManagerService"},
	{Name: "appwidget", Class: "com.android.server.appwidget.AppWidgetServiceImpl"},
	{Name: "assetatlas", Class: "com.android.server.AssetAtlasService"},
	{Name: "backup", Class: "com.android.server.backup.BackupManagerService"},
	{Name: "battery", Class: "com.android.server.BatteryService"},
	{Name: "batteryproperties", Class: "com.android.server.BatteryPropertiesService"},
	{Name: "batterystats", Class: "com.android.server.am.BatteryStatsService"},
	{Name: "carrier_config", Class: "com.android.phone.CarrierConfigLoader"},
	{Name: "commontime_management", Class: "com.android.server.CommonTimeManagementService"},
	{Name: "consumer_ir", Class: "com.android.server.ConsumerIrService"},
	{Name: "cpuinfo", Class: "com.android.server.am.ActivityManagerService$CpuBinder"},
	{Name: "dbinfo", Class: "com.android.server.am.ActivityManagerService$DbBinder"},
	{Name: "device_policy", Class: "com.android.server.devicepolicy.DevicePolicyManagerService"},
	{Name: "deviceidle", Class: "com.android.server.DeviceIdleController"},
	{Name: "devicestoragemonitor", Class: "com.android.server.storage.DeviceStorageMonitorService"},
	{Name: "diskstats", Class: "com.android.server.DiskStatsService"},
	{Name: "display", Class: "com.android.server.display.DisplayManagerService"},
	{Name: "dreams", Class: "com.android.server.dreams.DreamManagerService"},
	{Name: "dropbox", Class: "com.android.server.DropBoxManagerService"},
	{Name: "gatekeeper", Class: "com.android.server.GateKeeperService"},
	{Name: "gfxinfo", Class: "com.android.server.am.ActivityManagerService$GraphicsBinder"},
	{Name: "graphicsstats", Class: "com.android.server.GraphicsStatsService"},
	{Name: "hdmi_control", Class: "com.android.server.hdmi.HdmiControlService"},
	{Name: "imms", Class: "com.android.internal.telephony.ImsSmsDispatcher"},
	{Name: "ims", Class: "com.android.ims.ImsManagerService"},
	{Name: "iphonesubinfo", Class: "com.android.phone.PhoneInterfaceManager$SubInfo"},
	{Name: "isms", Class: "com.android.internal.telephony.UiccSmsController"},
	{Name: "isub", Class: "com.android.internal.telephony.SubscriptionController"},
	{Name: "jobscheduler", Class: "com.android.server.job.JobSchedulerService"},
	{Name: "keystore", Class: "com.android.server.KeyStoreService"},
	{Name: "lock_settings", Class: "com.android.server.LockSettingsService"},
	{Name: "meminfo", Class: "com.android.server.am.ActivityManagerService$MemBinder"},
	{Name: "media.resource_manager", Class: "com.android.server.media.MediaResourceManagerService"},
	{Name: "netpolicy", Class: "com.android.server.net.NetworkPolicyManagerService"},
	{Name: "netstats", Class: "com.android.server.net.NetworkStatsService"},
	{Name: "network_score", Class: "com.android.server.NetworkScoreService"},
	{Name: "nfc", Class: "com.android.nfc.NfcService", OwnProcess: "com.android.nfc"},
	{Name: "pac_proxy", Class: "com.android.server.connectivity.PacManager"},
	{Name: "permission", Class: "com.android.server.am.ActivityManagerService$PermissionController"},
	{Name: "persistent_data_block", Class: "com.android.server.PersistentDataBlockService"},
	{Name: "phone", Class: "com.android.phone.PhoneInterfaceManager"},
	{Name: "processinfo", Class: "com.android.server.am.ProcessInfoService"},
	{Name: "procstats", Class: "com.android.server.am.ProcessStatsService"},
	{Name: "recovery", Class: "com.android.server.RecoverySystemService"},
	{Name: "restrictions", Class: "com.android.server.restrictions.RestrictionsManagerService"},
	{Name: "rttmanager", Class: "com.android.server.wifi.RttService"},
	{Name: "samplingprofiler", Class: "com.android.server.SamplingProfilerService"},
	{Name: "scheduling_policy", Class: "com.android.server.SchedulingPolicyService"},
	{Name: "search", Class: "com.android.server.search.SearchManagerService"},
	{Name: "serial", Class: "com.android.server.SerialService"},
	{Name: "servicediscovery", Class: "com.android.server.NsdService"},
	{Name: "simphonebook", Class: "com.android.internal.telephony.IccPhoneBookInterfaceManagerProxy"},
	{Name: "soundtrigger", Class: "com.android.server.soundtrigger.SoundTriggerService"},
	{Name: "statusbar", Class: "com.android.server.statusbar.StatusBarManagerService"},
	{Name: "telecom", Class: "com.android.server.telecom.TelecomServiceImpl"},
	{Name: "trust", Class: "com.android.server.trust.TrustManagerService"},
	{Name: "uimode", Class: "com.android.server.UiModeManagerService"},
	{Name: "updatelock", Class: "com.android.server.UpdateLockService"},
	{Name: "usagestats", Class: "com.android.server.usage.UsageStatsService"},
	{Name: "usb", Class: "com.android.server.usb.UsbService"},
	{Name: "user", Class: "com.android.server.pm.UserManagerService"},
	{Name: "vibrator", Class: "com.android.server.VibratorService"},
	{Name: "voiceinteraction", Class: "com.android.server.voiceinteraction.VoiceInteractionManagerService"},
	{Name: "webviewupdate", Class: "com.android.server.webkit.WebViewUpdateService"},
	{Name: "wifip2p", Class: "com.android.server.wifi.p2p.WifiP2pServiceImpl"},
	{Name: "wifiscanner", Class: "com.android.server.wifi.WifiScanningService"},

	// The five native services (registered via the native
	// ServiceManager::addService), hosted outside system_server.
	{Name: "media.player", Class: "android::MediaPlayerService", Native: true, OwnProcess: "mediaserver"},
	{Name: "media.camera", Class: "android::CameraService", Native: true, OwnProcess: "mediaserver"},
	{Name: "media.audio_flinger", Class: "android::AudioFlinger", Native: true, OwnProcess: "mediaserver"},
	{Name: "media.audio_policy", Class: "android::AudioPolicyService", Native: true, OwnProcess: "mediaserver"},
	{Name: "sensorservice", Class: "android::SensorService", Native: true, OwnProcess: "system_server"},
}

// Services returns the full 104-service census. The returned slice is a
// copy; callers may reorder it freely.
func Services() []Service {
	out := make([]Service, len(services))
	copy(out, services)
	return out
}

// ServiceByName returns the census entry for name.
func ServiceByName(name string) (Service, bool) {
	for _, s := range services {
		if s.Name == name {
			return s, true
		}
	}
	return Service{}, false
}

// NativeServices returns the native-code services.
func NativeServices() []Service {
	var out []Service
	for _, s := range services {
		if s.Native {
			out = append(out, s)
		}
	}
	return out
}
