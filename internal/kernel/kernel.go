// Package kernel simulates the slice of Linux/Android kernel behaviour the
// paper's attack and defense depend on: a process table with uids and
// oom_score_adj values, process death notification (the substrate of
// binder link-to-death), the low memory killer (LMK), an in-memory procfs
// with permission bits, and the soft reboot that follows a system_server
// runtime abort.
package kernel

import (
	"errors"
	"sort"
	"time"

	"repro/internal/art"
	"repro/internal/simclock"
)

// Pid identifies a process.
type Pid int

// Uid identifies a Linux user. Android maps each app to its own uid.
type Uid int

// Well-known Android uids.
const (
	RootUid   Uid = 0
	SystemUid Uid = 1000
	// FirstAppUid is the first uid handed to an installed application
	// (AID_APP in Android). Anything at or above this value is a
	// third-party app for permission purposes.
	FirstAppUid Uid = 10000
)

// IsAppUid reports whether uid belongs to an installed application rather
// than the system.
func IsAppUid(uid Uid) bool { return uid >= FirstAppUid }

// Common oom_score_adj values (Android's ProcessList).
const (
	SystemAdj         = -1000 // never killed by LMK
	PersistentProcAdj = -800
	ForegroundAppAdj  = 0
	VisibleAppAdj     = 100
	PerceptibleAppAdj = 200
	ServiceAdj        = 500
	CachedAppMinAdj   = 900
	CachedAppMaxAdj   = 906
)

// Process is one simulated process. Create via Kernel.Spawn.
type Process struct {
	pid         Pid
	uid         Uid
	name        string
	oomScoreAdj int
	memoryKB    int
	startedAt   time.Duration
	alive       bool
	exitReason  string

	vm       *art.VM
	deathFns []func(*Process)
	k        *Kernel
	// userAbort is the caller-supplied VM abort hook from SpawnConfig,
	// kept separately from the kernel-reaper wrapper installed on the VM
	// so a snapshot clone can rebuild the wrapper against its own kernel.
	userAbort func(reason string)
}

// Pid returns the process id.
func (p *Process) Pid() Pid { return p.pid }

// Uid returns the owning uid.
func (p *Process) Uid() Uid { return p.uid }

// Name returns the process (package) name.
func (p *Process) Name() string { return p.name }

// Alive reports whether the process is running.
func (p *Process) Alive() bool { return p.alive }

// ExitReason returns why the process died, or "" while alive.
func (p *Process) ExitReason() string { return p.exitReason }

// VM returns the process's Android runtime.
func (p *Process) VM() *art.VM { return p.vm }

// OomScoreAdj returns the current LMK priority.
func (p *Process) OomScoreAdj() int { return p.oomScoreAdj }

// SetOomScoreAdj updates the LMK priority, as ActivityManager does when an
// app moves between foreground and cached states.
func (p *Process) SetOomScoreAdj(adj int) { p.oomScoreAdj = adj }

// MemoryKB returns the simulated resident set size.
func (p *Process) MemoryKB() int { return p.memoryKB }

// StartedAt returns the virtual time the process started.
func (p *Process) StartedAt() time.Duration { return p.startedAt }

// NotifyDeath registers fn to run when the process dies. Binder
// link-to-death and the JGR release of a dead client are built on this.
func (p *Process) NotifyDeath(fn func(*Process)) {
	p.deathFns = append(p.deathFns, fn)
}

// SpawnConfig parameterizes Kernel.Spawn.
type SpawnConfig struct {
	Name        string
	Uid         Uid
	OomScoreAdj int
	// MemoryKB is the simulated RSS; 0 means DefaultAppMemoryKB.
	MemoryKB int
	// VM optionally overrides the runtime configuration (tests use small
	// JGR caps). The OnAbort hook is always chained to the kernel reaper.
	VM art.Config
}

// DefaultAppMemoryKB is the simulated RSS of an app process (≈40 MB),
// sized so that the LMK budget yields the ≈39 concurrently running user
// apps observed in the paper's Fig. 4 baseline.
const DefaultAppMemoryKB = 40 * 1024

// DefaultAppMemoryBudgetKB is the memory available to user-app processes
// before the LMK starts evicting cached apps (≈1.6 GB of the Nexus 5X's
// 2 GB, the rest held by the system).
const DefaultAppMemoryBudgetKB = 1600 * 1024

// Config parameterizes a Kernel.
type Config struct {
	// AppMemoryBudgetKB bounds total app-process memory; 0 means
	// DefaultAppMemoryBudgetKB.
	AppMemoryBudgetKB int
	// OnSystemServerDeath, if non-nil, runs after a process named
	// "system_server" dies (before the soft-reboot bookkeeping
	// completes). The device layer uses it to restart services.
	OnSystemServerDeath func(reason string)
}

// SystemServerName is the process name whose death soft-reboots Android.
const SystemServerName = "system_server"

// Kernel is the simulated kernel. Create with New, or clone a sealed
// kernel with Clone.
//
// A cloned kernel shares its template's process table as an immutable
// frozen base: processes materialize into the clone's own table (procs)
// only when a caller needs a mutable handle (Kill, Process, FindProcess,
// Processes). Read-only scans — LMK accounting, RunningCount — walk the
// frozen base directly, so a clone of a 400-process device costs a few
// map allocations rather than 400 process + VM constructions.
type Kernel struct {
	clock   *simclock.Clock
	cfg     Config
	nextPid Pid
	procs   map[Pid]*Process
	// frozen is the sealed template's process table (nil for a kernel
	// built with New). Entries are shared across every clone and must
	// never be mutated; a pid present in procs shadows its frozen entry.
	frozen map[Pid]*Process
	sealed bool
	procfs *ProcFS
	// running counts alive processes, maintained on every aliveness
	// transition so RunningCount is O(1) — it is a per-render telemetry
	// gauge and a post-clone sanity check, both of which would otherwise
	// scan the full process table.
	running int

	softReboots int
	lmkKills    int
	onKill      []func(*Process, string)
}

// New creates a kernel on the given clock.
func New(clock *simclock.Clock, cfg Config) *Kernel {
	if clock == nil {
		panic("kernel: New requires a clock")
	}
	if cfg.AppMemoryBudgetKB == 0 {
		cfg.AppMemoryBudgetKB = DefaultAppMemoryBudgetKB
	}
	return &Kernel{
		clock:   clock,
		cfg:     cfg,
		nextPid: 1,
		procs:   make(map[Pid]*Process),
		procfs:  NewProcFS(),
	}
}

// Seal freezes the kernel as a snapshot template: Spawn and Kill panic
// from here on, which guarantees the process table Clone shares stays
// immutable. Every process VM is frozen (reference tables marked
// copy-on-write) so concurrent clones never write template state.
// Sealing is one-way.
func (k *Kernel) Seal() {
	if k.sealed {
		return
	}
	k.sealed = true
	for _, p := range k.procs {
		p.vm.Freeze()
	}
}

// Clone creates a kernel that shares this sealed kernel's process table
// as a copy-on-write base. The clone runs on its own clock and fires its
// own OnSystemServerDeath hook; kill observers (OnKill) start empty and
// must be re-registered by the layers above, in the same order as at
// boot. Cloning an unsealed kernel, or re-cloning a clone, panics.
func (k *Kernel) Clone(clock *simclock.Clock, onSystemServerDeath func(reason string)) *Kernel {
	return k.CloneReusing(nil, clock, onSystemServerDeath)
}

// CloneReusing is Clone with allocation recycling: prev, when non-nil,
// must be a retired clone of this same sealed template whose device is
// no longer referenced anywhere. Its overlay process table, procfs and
// kill-observer slice are rewound and reused in place — materialized
// processes that shadow a frozen pid are reset to frozen state, keeping
// their Process and VM storage (valid because the kernel pointer, and
// hence every closure bound to it, stays the same across the rewind);
// processes spawned during the retired trial are dropped. A fleet slot
// that churns through thousands of per-trial devices thus stops paying
// the clone path's map, filesystem and materialization allocations after
// the first trial. Passing a prev that is still in use corrupts both
// devices.
func (k *Kernel) CloneReusing(prev *Kernel, clock *simclock.Clock, onSystemServerDeath func(reason string)) *Kernel {
	if !k.sealed {
		panic("kernel: Clone of unsealed kernel")
	}
	if k.frozen != nil {
		panic("kernel: Clone of a clone")
	}
	if clock == nil {
		panic("kernel: Clone requires a clock")
	}
	cfg := k.cfg
	cfg.OnSystemServerDeath = onSystemServerDeath
	var nk *Kernel
	var procs map[Pid]*Process
	var procfs *ProcFS
	var onKill []func(*Process, string)
	if prev != nil {
		if prev.frozen == nil {
			panic("kernel: CloneReusing prev is not a clone")
		}
		nk, procs, procfs, onKill = prev, prev.procs, prev.procfs, prev.onKill[:0]
		procfs.Reset()
	} else {
		nk = &Kernel{}
		procs = make(map[Pid]*Process)
		procfs = NewProcFS()
	}
	*nk = Kernel{
		clock:       clock,
		cfg:         cfg,
		nextPid:     k.nextPid,
		procs:       procs,
		frozen:      k.procs,
		procfs:      procfs,
		softReboots: k.softReboots,
		lmkKills:    k.lmkKills,
		running:     k.running,
		onKill:      onKill,
	}
	for pid, p := range procs {
		fp, ok := k.procs[pid]
		if !ok {
			// Spawned during the retired trial; not part of the template.
			delete(procs, pid)
			continue
		}
		p.resetFromFrozen(fp, nk)
	}
	k.procfs.CloneInto(nk.procfs)
	return nk
}

// resetFromFrozen rewinds a materialized clone process to its frozen
// template state in place, keeping its Process and VM storage. The
// identity-bound pieces — the kernel-reaper abort wrapper on the VM and
// the pid — are unchanged by construction: pid and the kernel pointer
// are the same before and after a kernel rewind.
func (p *Process) resetFromFrozen(fp *Process, k *Kernel) {
	vm := p.vm
	*p = Process{
		pid:         fp.pid,
		uid:         fp.uid,
		name:        fp.name,
		oomScoreAdj: fp.oomScoreAdj,
		memoryKB:    fp.memoryKB,
		startedAt:   fp.startedAt,
		alive:       fp.alive,
		exitReason:  fp.exitReason,
		vm:          vm,
		deathFns:    p.deathFns[:0],
		k:           k,
		userAbort:   fp.userAbort,
	}
	vm.ResetFromTemplate(fp.vm, k.clock)
}

// lookup returns the process for pid from the clone overlay or the
// frozen base, alive or dead, without materializing. The result must be
// treated as read-only unless it came from k.procs.
func (k *Kernel) lookup(pid Pid) *Process {
	if p, ok := k.procs[pid]; ok {
		return p
	}
	return k.frozen[pid] // nil-map lookup is fine for non-clones
}

// each calls fn for every process, overlay entries shadowing frozen ones.
func (k *Kernel) each(fn func(*Process)) {
	for _, p := range k.procs {
		fn(p)
	}
	for pid, p := range k.frozen {
		if _, shadowed := k.procs[pid]; !shadowed {
			fn(p)
		}
	}
}

// materialize returns a mutable, clone-owned process for pid, copying it
// out of the frozen base on first use. The copy gets its own VM built on
// the frozen VM's reference tables (copy-on-write, see art.VM.Clone) and
// an abort hook rebuilt against this kernel.
func (k *Kernel) materialize(pid Pid) *Process {
	if p, ok := k.procs[pid]; ok {
		return p
	}
	fp, ok := k.frozen[pid]
	if !ok {
		return nil
	}
	if len(fp.deathFns) > 0 {
		// Death callbacks are closures over template state; a booted
		// device has none registered, so hitting this means a snapshot
		// was taken after the template started running workloads.
		panic("kernel: cannot materialize a process with death notifications")
	}
	p := &Process{
		pid:         fp.pid,
		uid:         fp.uid,
		name:        fp.name,
		oomScoreAdj: fp.oomScoreAdj,
		memoryKB:    fp.memoryKB,
		startedAt:   fp.startedAt,
		alive:       fp.alive,
		exitReason:  fp.exitReason,
		k:           k,
		userAbort:   fp.userAbort,
	}
	p.vm = fp.vm.Clone(k.clock, func(reason string) {
		if p.userAbort != nil {
			p.userAbort(reason)
		}
		k.Kill(p.pid, "runtime abort: "+reason)
	})
	k.procs[pid] = p
	return p
}

// Clock returns the kernel's clock.
func (k *Kernel) Clock() *simclock.Clock { return k.clock }

// ProcFS returns the kernel's proc filesystem.
func (k *Kernel) ProcFS() *ProcFS { return k.procfs }

// SoftReboots returns how many times system_server death has soft-rebooted
// the device.
func (k *Kernel) SoftReboots() int { return k.softReboots }

// LMKKills returns how many processes the low memory killer has evicted.
func (k *Kernel) LMKKills() int { return k.lmkKills }

// OnKill registers an observer invoked whenever a process dies, with the
// reason string.
func (k *Kernel) OnKill(fn func(*Process, string)) {
	k.onKill = append(k.onKill, fn)
}

// Spawn creates a new process with its own Android runtime. A runtime
// abort (JGR exhaustion) automatically kills the process, which in turn
// soft-reboots the device if the process is system_server.
func (k *Kernel) Spawn(cfg SpawnConfig) *Process {
	if cfg.Name == "" {
		panic("kernel: Spawn requires a process name")
	}
	if k.sealed {
		panic("kernel: Spawn on kernel sealed by snapshot")
	}
	if cfg.MemoryKB == 0 {
		cfg.MemoryKB = DefaultAppMemoryKB
	}
	p := &Process{
		pid:         k.nextPid,
		uid:         cfg.Uid,
		name:        cfg.Name,
		oomScoreAdj: cfg.OomScoreAdj,
		memoryKB:    cfg.MemoryKB,
		startedAt:   k.clock.Now(),
		alive:       true,
		k:           k,
		userAbort:   cfg.VM.OnAbort,
	}
	k.nextPid++

	vmCfg := cfg.VM
	vmCfg.OnAbort = func(reason string) {
		if p.userAbort != nil {
			p.userAbort(reason)
		}
		// Runtime abort kills the owning process (paper §II-A: "the
		// victim process's runtime will abort").
		k.Kill(p.pid, "runtime abort: "+reason)
	}
	p.vm = art.NewVM(cfg.Name, k.clock, vmCfg)

	k.procs[p.pid] = p
	k.running++
	k.runLMK()
	return p
}

// Process returns the process with the given pid, or nil.
func (k *Kernel) Process(pid Pid) *Process {
	p := k.lookup(pid)
	if p == nil || !p.alive {
		return nil
	}
	return k.materialize(pid)
}

// FindProcess returns the first alive process with the given name, or nil.
func (k *Kernel) FindProcess(name string) *Process {
	var best *Process
	k.each(func(p *Process) {
		if p.alive && p.name == name && (best == nil || p.pid < best.pid) {
			best = p
		}
	})
	if best == nil {
		return nil
	}
	return k.materialize(best.pid)
}

// Processes returns all alive processes sorted by pid. On a clone this
// materializes the full table; it is a diagnostic path (dumpsys), not a
// hot one.
func (k *Kernel) Processes() []*Process {
	var pids []Pid
	k.each(func(p *Process) {
		if p.alive {
			pids = append(pids, p.pid)
		}
	})
	sort.Slice(pids, func(i, j int) bool { return pids[i] < pids[j] })
	out := make([]*Process, len(pids))
	for i, pid := range pids {
		out[i] = k.materialize(pid)
	}
	return out
}

// RunningCount returns the number of alive processes.
func (k *Kernel) RunningCount() int { return k.running }

// ErrNoSuchProcess is returned by Kill for a dead or unknown pid.
var ErrNoSuchProcess = errors.New("kernel: no such process")

// Kill terminates a process, firing its death notifications. Killing
// system_server triggers a soft reboot: every non-system process dies with
// it (their runtimes, and thus all their references, are discarded).
func (k *Kernel) Kill(pid Pid, reason string) error {
	if k.sealed {
		panic("kernel: Kill on kernel sealed by snapshot")
	}
	if p := k.lookup(pid); p == nil || !p.alive {
		return ErrNoSuchProcess
	}
	p := k.materialize(pid)
	p.alive = false
	k.running--
	p.exitReason = reason
	// Death notifications fire in registration order; recipients may kill
	// further processes (binder death cascades), which is safe because
	// each Kill is idempotent per pid.
	for _, fn := range p.deathFns {
		fn(p)
	}
	p.deathFns = nil
	for _, fn := range k.onKill {
		fn(p, reason)
	}
	if p.name == SystemServerName {
		k.softReboot("system_server died: " + reason)
	}
	return nil
}

// softReboot models Android's crash recovery: when system_server dies the
// whole user space is torn down and restarted (paper §II-A: "the entire
// Android system crashes, followed by a soft reboot").
func (k *Kernel) softReboot(reason string) {
	k.softReboots++
	// Collect victims before killing: death recipients may themselves kill
	// processes, and on a clone the kill path materializes into k.procs,
	// which must not happen while ranging over it.
	var pids []Pid
	k.each(func(p *Process) {
		if p.alive && p.name != SystemServerName {
			pids = append(pids, p.pid)
		}
	})
	for _, pid := range pids {
		p := k.materialize(pid)
		if !p.alive {
			continue // already killed by an earlier victim's death cascade
		}
		p.alive = false
		k.running--
		p.exitReason = "soft reboot: " + reason
		for _, fn := range p.deathFns {
			fn(p)
		}
		p.deathFns = nil
		for _, fn := range k.onKill {
			fn(p, p.exitReason)
		}
	}
	if cb := k.cfg.OnSystemServerDeath; cb != nil {
		cb(reason)
	}
}

// appMemoryKB sums the RSS of alive app-uid processes.
func (k *Kernel) appMemoryKB() int {
	total := 0
	k.each(func(p *Process) {
		if p.alive && IsAppUid(p.uid) {
			total += p.memoryKB
		}
	})
	return total
}

// runLMK applies the low memory killer policy: while app memory exceeds
// the budget, kill the app process with the highest oom_score_adj
// (breaking ties by oldest start time), never touching processes with
// adj <= 0. This mirrors Android's LMK victim selection (paper §VII).
func (k *Kernel) runLMK() {
	for k.appMemoryKB() > k.cfg.AppMemoryBudgetKB {
		victim := k.lmkVictim()
		if victim == nil {
			return // only unkillable processes left
		}
		k.lmkKills++
		k.Kill(victim.pid, "lmk")
	}
}

func (k *Kernel) lmkVictim() *Process {
	var victim *Process
	k.each(func(p *Process) {
		if !p.alive || !IsAppUid(p.uid) || p.oomScoreAdj <= 0 {
			return
		}
		if victim == nil ||
			p.oomScoreAdj > victim.oomScoreAdj ||
			(p.oomScoreAdj == victim.oomScoreAdj && p.startedAt < victim.startedAt) ||
			(p.oomScoreAdj == victim.oomScoreAdj && p.startedAt == victim.startedAt && p.pid < victim.pid) {
			victim = p
		}
	})
	return victim
}
