package kernel

import (
	"errors"
	"fmt"
	"sort"
	"sync"
)

// Access errors returned by ProcFS operations.
var (
	ErrPermissionDenied = errors.New("procfs: permission denied")
	ErrNoSuchFile       = errors.New("procfs: no such file")
	ErrFileExists       = errors.New("procfs: file exists")
)

// procFile is one in-memory procfs node.
type procFile struct {
	data []byte
	// render, when non-nil, marks a provider-backed file: contents are
	// produced by the kernel-side owner on every read instead of being
	// stored, the way real procfs seq_files render on open. Provider
	// files reject Write/Append — their contents are owned by the
	// provider.
	render func() []byte
	// worldReadable grants read access to app uids. The JGRE defense
	// creates /proc/jgre_ipc_log as system-only so that malicious apps
	// can neither observe nor tamper with the IPC evidence (paper §V-B:
	// "we set the permission of the file so that it can be only accessed
	// by system service but not third-party apps").
	worldReadable bool
	ownerUid      Uid
}

// ProcFS is a minimal in-memory proc filesystem with per-file read
// permissions. Writes are restricted to the file owner (the kernel-side
// producer); reads honour the world-readable bit.
type ProcFS struct {
	mu    sync.Mutex
	files map[string]*procFile
}

// NewProcFS returns an empty filesystem.
func NewProcFS() *ProcFS {
	return &ProcFS{files: make(map[string]*procFile)}
}

// Reset empties the filesystem in place, keeping the path map's
// storage. The fleet slot recycle path rewinds a retired clone's procfs
// before the template's data files are copied back in.
func (fs *ProcFS) Reset() {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	clear(fs.files)
}

// CloneInto copies the receiver's data files into dst. Provider-backed
// files are deliberately NOT carried over: their render closures are
// bound to the template's producers (metrics registry, log ring), and
// each producer re-registers its provider against the clone during
// device cloning.
func (fs *ProcFS) CloneInto(dst *ProcFS) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	for path, f := range fs.files {
		if f.render != nil {
			continue
		}
		dst.files[path] = &procFile{
			data:          append([]byte(nil), f.data...),
			worldReadable: f.worldReadable,
			ownerUid:      f.ownerUid,
		}
	}
}

// Create registers a new file owned by ownerUid. It fails if the path
// already exists.
func (fs *ProcFS) Create(path string, ownerUid Uid, worldReadable bool) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if _, ok := fs.files[path]; ok {
		return fmt.Errorf("create %s: %w", path, ErrFileExists)
	}
	fs.files[path] = &procFile{ownerUid: ownerUid, worldReadable: worldReadable}
	return nil
}

// CreateProvider registers a provider-backed file: reads invoke render
// (which must return bytes the caller may keep) instead of copying stored
// data, so producers with a cheaper native representation only pay for
// text rendering when somebody actually opens the file. The permission
// model is identical to Create; Write and Append are rejected.
func (fs *ProcFS) CreateProvider(path string, ownerUid Uid, worldReadable bool, render func() []byte) error {
	if render == nil {
		return fmt.Errorf("create %s: nil provider", path)
	}
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if _, ok := fs.files[path]; ok {
		return fmt.Errorf("create %s: %w", path, ErrFileExists)
	}
	fs.files[path] = &procFile{ownerUid: ownerUid, worldReadable: worldReadable, render: render}
	return nil
}

// Write replaces the file contents. Only the owner may write; provider
// files are owned by their render function and reject writes.
func (fs *ProcFS) Write(path string, uid Uid, data []byte) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	f, ok := fs.files[path]
	if !ok {
		return fmt.Errorf("write %s: %w", path, ErrNoSuchFile)
	}
	if uid != f.ownerUid && uid != RootUid {
		return fmt.Errorf("write %s by uid %d: %w", path, uid, ErrPermissionDenied)
	}
	if f.render != nil {
		return fmt.Errorf("write %s: provider file: %w", path, ErrPermissionDenied)
	}
	f.data = append([]byte(nil), data...)
	return nil
}

// Append appends to the file contents. Only the owner may append;
// provider files reject appends.
func (fs *ProcFS) Append(path string, uid Uid, data []byte) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	f, ok := fs.files[path]
	if !ok {
		return fmt.Errorf("append %s: %w", path, ErrNoSuchFile)
	}
	if uid != f.ownerUid && uid != RootUid {
		return fmt.Errorf("append %s by uid %d: %w", path, uid, ErrPermissionDenied)
	}
	if f.render != nil {
		return fmt.Errorf("append %s: provider file: %w", path, ErrPermissionDenied)
	}
	f.data = append(f.data, data...)
	return nil
}

// Read returns a copy of the file contents, enforcing read permission:
// the owner, root and the system uid always read; other uids only if the
// file is world-readable. Provider files render on demand.
func (fs *ProcFS) Read(path string, uid Uid) ([]byte, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	f, ok := fs.files[path]
	if !ok {
		return nil, fmt.Errorf("read %s: %w", path, ErrNoSuchFile)
	}
	if !f.worldReadable && uid != f.ownerUid && uid != RootUid && uid != SystemUid {
		return nil, fmt.Errorf("read %s by uid %d: %w", path, uid, ErrPermissionDenied)
	}
	if f.render != nil {
		return f.render(), nil
	}
	return append([]byte(nil), f.data...), nil
}

// CheckRead verifies that uid could read path — existence plus the same
// ACL Read enforces — without materializing the contents. Producers that
// hand out their native representation directly (the binder driver's
// struct-record log reads) use this so the permission model stays the
// procfs's even when no text is rendered.
func (fs *ProcFS) CheckRead(path string, uid Uid) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	f, ok := fs.files[path]
	if !ok {
		return fmt.Errorf("read %s: %w", path, ErrNoSuchFile)
	}
	if !f.worldReadable && uid != f.ownerUid && uid != RootUid && uid != SystemUid {
		return fmt.Errorf("read %s by uid %d: %w", path, uid, ErrPermissionDenied)
	}
	return nil
}

// Remove deletes a file. Only the owner or root may remove it.
func (fs *ProcFS) Remove(path string, uid Uid) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	f, ok := fs.files[path]
	if !ok {
		return fmt.Errorf("remove %s: %w", path, ErrNoSuchFile)
	}
	if uid != f.ownerUid && uid != RootUid {
		return fmt.Errorf("remove %s by uid %d: %w", path, uid, ErrPermissionDenied)
	}
	delete(fs.files, path)
	return nil
}

// List returns all paths in sorted order (no permission needed, matching
// procfs directory listings).
func (fs *ProcFS) List() []string {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	out := make([]string, 0, len(fs.files))
	for p := range fs.files {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}
