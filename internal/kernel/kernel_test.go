package kernel

import (
	"errors"
	"testing"
	"time"

	"repro/internal/art"
	"repro/internal/simclock"
)

func newKernel(t *testing.T, cfg Config) *Kernel {
	t.Helper()
	return New(simclock.New(), cfg)
}

func TestSpawnAndLookup(t *testing.T) {
	k := newKernel(t, Config{})
	p := k.Spawn(SpawnConfig{Name: "com.example.app", Uid: 10001})
	if p.Pid() == 0 {
		t.Fatal("pid not assigned")
	}
	if got := k.Process(p.Pid()); got != p {
		t.Fatal("Process(pid) did not return the spawned process")
	}
	if got := k.FindProcess("com.example.app"); got != p {
		t.Fatal("FindProcess(name) did not return the spawned process")
	}
	if !p.Alive() {
		t.Fatal("fresh process not alive")
	}
	if k.RunningCount() != 1 {
		t.Fatalf("RunningCount = %d, want 1", k.RunningCount())
	}
}

func TestSpawnRequiresName(t *testing.T) {
	k := newKernel(t, Config{})
	defer func() {
		if recover() == nil {
			t.Fatal("Spawn without name did not panic")
		}
	}()
	k.Spawn(SpawnConfig{})
}

func TestKillFiresDeathNotification(t *testing.T) {
	k := newKernel(t, Config{})
	p := k.Spawn(SpawnConfig{Name: "a", Uid: 10001})
	var notified []*Process
	p.NotifyDeath(func(dead *Process) { notified = append(notified, dead) })

	if err := k.Kill(p.Pid(), "test"); err != nil {
		t.Fatal(err)
	}
	if len(notified) != 1 || notified[0] != p {
		t.Fatalf("death notification = %v", notified)
	}
	if p.Alive() {
		t.Fatal("killed process still alive")
	}
	if p.ExitReason() != "test" {
		t.Fatalf("ExitReason = %q", p.ExitReason())
	}
	if err := k.Kill(p.Pid(), "again"); !errors.Is(err, ErrNoSuchProcess) {
		t.Fatalf("double kill error = %v, want ErrNoSuchProcess", err)
	}
	if k.Process(p.Pid()) != nil {
		t.Fatal("dead process still visible")
	}
}

func TestRuntimeAbortKillsProcess(t *testing.T) {
	k := newKernel(t, Config{})
	p := k.Spawn(SpawnConfig{
		Name: "victim", Uid: 10002,
		VM: art.Config{MaxGlobalRefs: 4},
	})
	for i := 0; i < 4; i++ {
		if _, err := p.VM().AddGlobalRef(&art.Object{ID: art.ObjectID(i)}); err != nil {
			t.Fatal(err)
		}
	}
	// Overflow: VM aborts, kernel reaps the process.
	p.VM().AddGlobalRef(&art.Object{ID: 99})
	if p.Alive() {
		t.Fatal("process survived runtime abort")
	}
	if p.ExitReason() == "" {
		t.Fatal("no exit reason after runtime abort")
	}
}

func TestSystemServerDeathSoftReboots(t *testing.T) {
	var rebootReason string
	k := newKernel(t, Config{OnSystemServerDeath: func(r string) { rebootReason = r }})
	ss := k.Spawn(SpawnConfig{
		Name: SystemServerName, Uid: SystemUid, OomScoreAdj: SystemAdj,
		VM: art.Config{MaxGlobalRefs: 3},
	})
	app := k.Spawn(SpawnConfig{Name: "bystander", Uid: 10005})

	// Exhaust system_server's JGR table — the canonical JGRE attack.
	for i := 0; i < 4; i++ {
		ss.VM().AddGlobalRef(&art.Object{ID: art.ObjectID(i)})
	}
	if ss.Alive() {
		t.Fatal("system_server survived JGR exhaustion")
	}
	if k.SoftReboots() != 1 {
		t.Fatalf("SoftReboots = %d, want 1", k.SoftReboots())
	}
	if app.Alive() {
		t.Fatal("bystander app survived the soft reboot")
	}
	if rebootReason == "" {
		t.Fatal("OnSystemServerDeath not invoked")
	}
}

func TestLMKEvictsCachedApps(t *testing.T) {
	// Budget fits exactly 2 default-size apps.
	k := newKernel(t, Config{AppMemoryBudgetKB: 2 * DefaultAppMemoryKB})
	clock := k.Clock()

	a := k.Spawn(SpawnConfig{Name: "a", Uid: 10001, OomScoreAdj: CachedAppMinAdj})
	clock.Advance(time.Second)
	b := k.Spawn(SpawnConfig{Name: "b", Uid: 10002, OomScoreAdj: CachedAppMinAdj})
	clock.Advance(time.Second)
	c := k.Spawn(SpawnConfig{Name: "c", Uid: 10003, OomScoreAdj: ForegroundAppAdj})

	// Spawning c exceeded the budget; the oldest cached app (a) dies.
	if a.Alive() {
		t.Fatal("LMK did not evict the oldest cached app")
	}
	if !b.Alive() || !c.Alive() {
		t.Fatal("LMK evicted the wrong process")
	}
	if a.ExitReason() != "lmk" {
		t.Fatalf("ExitReason = %q, want lmk", a.ExitReason())
	}
	if k.LMKKills() != 1 {
		t.Fatalf("LMKKills = %d, want 1", k.LMKKills())
	}
}

func TestLMKNeverKillsForegroundOrSystem(t *testing.T) {
	k := newKernel(t, Config{AppMemoryBudgetKB: DefaultAppMemoryKB})
	k.Spawn(SpawnConfig{Name: SystemServerName, Uid: SystemUid, OomScoreAdj: SystemAdj, MemoryKB: 1})
	fg1 := k.Spawn(SpawnConfig{Name: "fg1", Uid: 10001, OomScoreAdj: ForegroundAppAdj})
	fg2 := k.Spawn(SpawnConfig{Name: "fg2", Uid: 10002, OomScoreAdj: ForegroundAppAdj})
	// Over budget but nothing killable: both foreground apps survive.
	if !fg1.Alive() || !fg2.Alive() {
		t.Fatal("LMK killed a foreground app")
	}
	if k.LMKKills() != 0 {
		t.Fatalf("LMKKills = %d, want 0", k.LMKKills())
	}
}

func TestLMKPrefersHighestAdj(t *testing.T) {
	k := newKernel(t, Config{AppMemoryBudgetKB: 2 * DefaultAppMemoryKB})
	svc := k.Spawn(SpawnConfig{Name: "svc", Uid: 10001, OomScoreAdj: ServiceAdj})
	cached := k.Spawn(SpawnConfig{Name: "cached", Uid: 10002, OomScoreAdj: CachedAppMaxAdj})
	k.Spawn(SpawnConfig{Name: "fg", Uid: 10003, OomScoreAdj: ForegroundAppAdj})
	if cached.Alive() {
		t.Fatal("LMK did not pick the highest-adj victim")
	}
	if !svc.Alive() {
		t.Fatal("LMK killed a lower-adj process first")
	}
}

func TestProcessesSorted(t *testing.T) {
	k := newKernel(t, Config{})
	for i := 0; i < 5; i++ {
		k.Spawn(SpawnConfig{Name: "p", Uid: Uid(10001 + i)})
	}
	procs := k.Processes()
	if len(procs) != 5 {
		t.Fatalf("len(Processes) = %d, want 5", len(procs))
	}
	for i := 1; i < len(procs); i++ {
		if procs[i-1].Pid() >= procs[i].Pid() {
			t.Fatal("Processes not sorted by pid")
		}
	}
}

func TestOnKillObserver(t *testing.T) {
	k := newKernel(t, Config{})
	var killed []string
	k.OnKill(func(p *Process, reason string) { killed = append(killed, p.Name()+":"+reason) })
	p := k.Spawn(SpawnConfig{Name: "x", Uid: 10001})
	k.Kill(p.Pid(), "bye")
	if len(killed) != 1 || killed[0] != "x:bye" {
		t.Fatalf("killed = %v", killed)
	}
}

func TestProcFSPermissions(t *testing.T) {
	fs := NewProcFS()
	const path = "/proc/jgre_ipc_log"
	if err := fs.Create(path, RootUid, false); err != nil {
		t.Fatal(err)
	}
	if err := fs.Create(path, RootUid, false); !errors.Is(err, ErrFileExists) {
		t.Fatalf("duplicate create error = %v", err)
	}
	if err := fs.Append(path, RootUid, []byte("rec1\n")); err != nil {
		t.Fatal(err)
	}
	// Kernel-only file: app uid cannot write or read.
	if err := fs.Append(path, 10001, []byte("fake\n")); !errors.Is(err, ErrPermissionDenied) {
		t.Fatalf("app append error = %v, want permission denied", err)
	}
	if _, err := fs.Read(path, 10001); !errors.Is(err, ErrPermissionDenied) {
		t.Fatalf("app read error = %v, want permission denied", err)
	}
	// The system (JGRE Defender) can read it.
	data, err := fs.Read(path, SystemUid)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "rec1\n" {
		t.Fatalf("read = %q", data)
	}
}

func TestProcFSWorldReadable(t *testing.T) {
	fs := NewProcFS()
	if err := fs.Create("/proc/meminfo", RootUid, true); err != nil {
		t.Fatal(err)
	}
	if err := fs.Write("/proc/meminfo", RootUid, []byte("MemTotal: 2048")); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Read("/proc/meminfo", 10042); err != nil {
		t.Fatalf("world-readable read failed: %v", err)
	}
}

func TestProcFSMissingFile(t *testing.T) {
	fs := NewProcFS()
	if _, err := fs.Read("/proc/nope", RootUid); !errors.Is(err, ErrNoSuchFile) {
		t.Fatalf("read missing error = %v", err)
	}
	if err := fs.Write("/proc/nope", RootUid, nil); !errors.Is(err, ErrNoSuchFile) {
		t.Fatalf("write missing error = %v", err)
	}
	if err := fs.Remove("/proc/nope", RootUid); !errors.Is(err, ErrNoSuchFile) {
		t.Fatalf("remove missing error = %v", err)
	}
}

func TestProcFSRemoveAndList(t *testing.T) {
	fs := NewProcFS()
	fs.Create("/proc/b", RootUid, true)
	fs.Create("/proc/a", RootUid, true)
	got := fs.List()
	if len(got) != 2 || got[0] != "/proc/a" || got[1] != "/proc/b" {
		t.Fatalf("List = %v", got)
	}
	if err := fs.Remove("/proc/a", 10001); !errors.Is(err, ErrPermissionDenied) {
		t.Fatalf("non-owner remove error = %v", err)
	}
	if err := fs.Remove("/proc/a", RootUid); err != nil {
		t.Fatal(err)
	}
	if len(fs.List()) != 1 {
		t.Fatal("remove did not delete the file")
	}
}

func TestIsAppUid(t *testing.T) {
	if IsAppUid(SystemUid) {
		t.Fatal("system uid classified as app")
	}
	if !IsAppUid(FirstAppUid) || !IsAppUid(10061) {
		t.Fatal("app uid not classified as app")
	}
}
