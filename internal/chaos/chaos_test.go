package chaos

import (
	"reflect"
	"testing"
	"time"

	"repro/internal/device"
	"repro/internal/workload"
)

func bootT(t *testing.T, seed int64) *device.Device {
	t.Helper()
	dev, err := device.Boot(device.Config{Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return dev
}

// TestEngineDeterminism: equal seeds give identical fault schedules —
// same fault ledger and the same set of surviving apps — regardless of
// how many times the run repeats.
func TestEngineDeterminism(t *testing.T) {
	run := func() (Stats, []string) {
		dev := bootT(t, 5)
		sched := workload.NewScheduler(dev)
		if _, err := workload.Population(dev, sched, 8, 1, 500*time.Millisecond); err != nil {
			t.Fatal(err)
		}
		eng := New(dev, sched, Config{
			Seed:             9,
			CrashEvery:       100 * time.Millisecond,
			CrashApps:        true,
			CrashAppServices: true,
		}, nil)
		sched.Run(func() bool { return dev.Clock().Now() >= time.Second }, 200000)
		var alive []string
		for _, a := range dev.Apps().Installed() {
			if a.Running() {
				alive = append(alive, a.Package())
			}
		}
		return eng.Stats(), alive
	}
	s1, a1 := run()
	s2, a2 := run()
	if s1 != s2 {
		t.Fatalf("fault ledgers diverged: %+v vs %+v", s1, s2)
	}
	if s1.Crashes == 0 {
		t.Fatal("no crashes injected")
	}
	if !reflect.DeepEqual(a1, a2) {
		t.Fatalf("survivor sets diverged:\n %v\n %v", a1, a2)
	}
}

// TestZeroConfigInert: a zero-chaos engine plus an idle supervisor must
// not perturb the workload — same transaction count as a run without
// them. This is the envelope-preservation guarantee the scenario
// registry relies on.
func TestZeroConfigInert(t *testing.T) {
	run := func(withChaos bool) uint64 {
		dev := bootT(t, 6)
		sched := workload.NewScheduler(dev)
		if _, err := workload.Population(dev, sched, 10, 2, 500*time.Millisecond); err != nil {
			t.Fatal(err)
		}
		if withChaos {
			New(dev, sched, Config{}, nil)
			NewSupervisor(dev, sched, SupervisorConfig{})
		}
		sched.Run(func() bool { return dev.Clock().Now() >= 2*time.Second }, 200000)
		return dev.Stats().Transactions
	}
	plain, instrumented := run(false), run(true)
	if plain != instrumented {
		t.Fatalf("zero-chaos run diverged: %d vs %d transactions", plain, instrumented)
	}
}

// TestSupervisorRestartsCrashedHost: a chaos-crashed dedicated service
// host comes back as a new process after the backoff.
func TestSupervisorRestartsCrashedHost(t *testing.T) {
	dev := bootT(t, 3)
	hosts := dev.HostNames()
	if len(hosts) == 0 {
		t.Skip("device has no dedicated hosts")
	}
	name := hosts[0]
	oldPid := dev.Host(name).Pid()
	sched := workload.NewScheduler(dev)
	sup := NewSupervisor(dev, sched, SupervisorConfig{InitialBackoff: 100 * time.Millisecond})
	sched.At(10*time.Millisecond, func() {
		dev.Kernel().Kill(dev.Host(name).Pid(), ReasonCrash)
	})
	sched.Run(func() bool { return false }, 1000)

	if p := dev.Host(name); p == nil || !p.Alive() {
		t.Fatalf("host %s not restarted", name)
	}
	if dev.Host(name).Pid() == oldPid {
		t.Fatal("restart reused the dead pid")
	}
	st := sup.Stats()
	if st.Restarts != 1 || st.Failures != 0 || st.Pending != 0 {
		t.Fatalf("stats = %+v, want exactly one clean restart", st)
	}
	if st.TotalDowntime != 100*time.Millisecond {
		t.Fatalf("TotalDowntime = %v, want the 100ms backoff", st.TotalDowntime)
	}
}

// TestSupervisorBackoffDoubling: crash loops double the per-target
// backoff up to the cap; surviving past StableAfter resets it.
func TestSupervisorBackoffDoubling(t *testing.T) {
	dev := bootT(t, 3)
	hosts := dev.HostNames()
	if len(hosts) == 0 {
		t.Skip("device has no dedicated hosts")
	}
	name := hosts[0]
	sched := workload.NewScheduler(dev)
	sup := NewSupervisor(dev, sched, SupervisorConfig{
		InitialBackoff: 100 * time.Millisecond,
		MaxBackoff:     400 * time.Millisecond,
		StableAfter:    30 * time.Second,
	})
	kill := func(at time.Duration) {
		sched.At(at, func() {
			if p := dev.Host(name); p != nil && p.Alive() {
				dev.Kernel().Kill(p.Pid(), ReasonCrash)
			} else {
				t.Errorf("kill at %v: host already down", at)
			}
		})
	}
	// restarts land at 110ms (+100), 350ms (+200), 800ms (+400), then the
	// cap holds: 1300ms (+400).
	kill(10 * time.Millisecond)
	kill(150 * time.Millisecond)
	kill(400 * time.Millisecond)
	kill(900 * time.Millisecond)
	sched.Run(func() bool { return false }, 1000)

	st := sup.Stats()
	if st.Restarts != 4 {
		t.Fatalf("Restarts = %d, want 4 (stats %+v)", st.Restarts, st)
	}
	if st.LastBackoff != 400*time.Millisecond {
		t.Fatalf("LastBackoff = %v, want the 400ms cap", st.LastBackoff)
	}
	if !dev.Host(name).Alive() {
		t.Fatal("host not up after final restart")
	}

	// A target that stayed up past StableAfter re-enters at the initial
	// backoff.
	dev2 := bootT(t, 3)
	sched2 := workload.NewScheduler(dev2)
	sup2 := NewSupervisor(dev2, sched2, SupervisorConfig{
		InitialBackoff: 100 * time.Millisecond,
		MaxBackoff:     400 * time.Millisecond,
		StableAfter:    100 * time.Millisecond,
	})
	k2 := func(at time.Duration) {
		sched2.At(at, func() { dev2.Kernel().Kill(dev2.Host(name).Pid(), ReasonCrash) })
	}
	k2(10 * time.Millisecond)  // restart at 110 (+100)
	k2(150 * time.Millisecond) // 40ms uptime < stable: restart at 350 (+200)
	k2(600 * time.Millisecond) // 250ms uptime > stable: reset, restart at 700 (+100)
	sched2.Run(func() bool { return false }, 1000)
	if st := sup2.Stats(); st.Restarts != 3 || st.LastBackoff != 100*time.Millisecond {
		t.Fatalf("stats = %+v, want 3 restarts ending at the reset 100ms backoff", st)
	}
}

// TestSupervisorAbort: a cancelled run abandons pending restarts
// instead of touching the device mid-teardown.
func TestSupervisorAbort(t *testing.T) {
	dev := bootT(t, 3)
	hosts := dev.HostNames()
	if len(hosts) == 0 {
		t.Skip("device has no dedicated hosts")
	}
	name := hosts[0]
	sched := workload.NewScheduler(dev)
	sup := NewSupervisor(dev, sched, SupervisorConfig{InitialBackoff: 100 * time.Millisecond})
	sup.SetAbort(func() bool { return true })
	sched.At(10*time.Millisecond, func() {
		dev.Kernel().Kill(dev.Host(name).Pid(), ReasonCrash)
	})
	sched.Run(func() bool { return false }, 1000)
	if p := dev.Host(name); p != nil && p.Alive() {
		t.Fatal("aborted supervisor restarted the host anyway")
	}
	if st := sup.Stats(); st.Restarts != 0 || st.Pending != 0 {
		t.Fatalf("stats = %+v, want no restarts and drained pending", st)
	}
}

// fakeLifecycle records bounce calls with their virtual times.
type fakeLifecycle struct {
	dev      *device.Device
	kills    []time.Duration
	restores []time.Duration
}

func (f *fakeLifecycle) Kill()          { f.kills = append(f.kills, f.dev.Clock().Now()) }
func (f *fakeLifecycle) Restore() error { f.restores = append(f.restores, f.dev.Clock().Now()); return nil }

// TestDefenderBounceSchedule: the defender actor kills on its cadence,
// restores after the downtime, and MaxFaults bounds the total.
func TestDefenderBounceSchedule(t *testing.T) {
	dev := bootT(t, 4)
	sched := workload.NewScheduler(dev)
	lc := &fakeLifecycle{dev: dev}
	eng := New(dev, sched, Config{
		DefenderKillEvery: 300 * time.Millisecond,
		DefenderDowntime:  100 * time.Millisecond,
		MaxFaults:         2,
	}, lc)
	sched.Run(func() bool { return dev.Clock().Now() >= 2*time.Second }, 1000)

	wantKills := []time.Duration{300 * time.Millisecond, 600 * time.Millisecond}
	wantRestores := []time.Duration{400 * time.Millisecond, 700 * time.Millisecond}
	if !reflect.DeepEqual(lc.kills, wantKills) {
		t.Fatalf("kills at %v, want %v", lc.kills, wantKills)
	}
	if !reflect.DeepEqual(lc.restores, wantRestores) {
		t.Fatalf("restores at %v, want %v", lc.restores, wantRestores)
	}
	if st := eng.Stats(); st.DefenderKills != 2 || st.DefenderRestores != 2 {
		t.Fatalf("stats = %+v, want 2 bounces", st)
	}
}

// TestRebootAxis: the one-shot soft reboot fires, the device recovers
// by itself, and the supervisor stays out of the way (soft-reboot
// casualties are not supervised restarts).
func TestRebootAxis(t *testing.T) {
	dev := bootT(t, 8)
	sched := workload.NewScheduler(dev)
	if _, err := workload.Population(dev, sched, 5, 1, 500*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	sup := NewSupervisor(dev, sched, SupervisorConfig{InitialBackoff: 50 * time.Millisecond})
	eng := New(dev, sched, Config{RebootAt: 200 * time.Millisecond}, nil)
	sched.Run(func() bool { return dev.Clock().Now() >= time.Second }, 100000)

	if st := eng.Stats(); st.Reboots != 1 {
		t.Fatalf("Reboots = %d, want 1", st.Reboots)
	}
	if n := dev.SoftReboots(); n != 1 {
		t.Fatalf("device survived %d soft reboots, want 1", n)
	}
	if ss := dev.SystemServer(); ss == nil || !ss.Alive() {
		t.Fatal("system_server not back after soft reboot")
	}
	if st := sup.Stats(); st.Restarts != 0 {
		t.Fatalf("supervisor restarted %d soft-reboot casualties, want 0", st.Restarts)
	}
}
